GO ?= go

.PHONY: all build vet test test-short bench bench-json bench-compare cover fuzz experiments examples chaos-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json reruns the admission-control and predictor benchmarks and
# writes results/bench_new.txt plus the machine-readable comparison
# against the committed pre-optimization baseline (results/bench_seed.txt)
# into BENCH_admission.json.
bench-json:
	$(GO) test -run xxx -bench 'Admission|PredictorScaling|PolicyLibraRiskFullScale|PolicyLibraFullScale' \
		-benchmem -count 5 . | tee results/bench_new.txt
	$(GO) run ./cmd/benchjson -old results/bench_seed.txt -new results/bench_new.txt \
		> BENCH_admission.json
	@echo wrote BENCH_admission.json

# bench-compare renders the same old/new pair with benchstat when it is
# installed (no network installs here; `go install
# golang.org/x/perf/cmd/benchstat@latest` on a connected machine).
bench-compare:
	@command -v benchstat >/dev/null 2>&1 \
		&& benchstat results/bench_seed.txt results/bench_new.txt \
		|| { echo "benchstat not found; falling back to benchjson ratios"; \
		     $(GO) run ./cmd/benchjson -old results/bench_seed.txt -new results/bench_new.txt; }

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -run xxx -fuzz 'FuzzParse$$' -fuzztime 30s ./internal/swf/

experiments:
	$(GO) run ./cmd/experiments -csv results -svg results | tee results/experiments_full.txt
	$(GO) run ./cmd/experiments -exp extensions -csv results -svg results | tee results/extensions_full.txt
	$(GO) run ./cmd/experiments -replicate 5 | tee results/replication.txt

# chaos-smoke is a fast end-to-end fault-injection run with the invariant
# checker armed: crashes, stragglers and a correlated outage process over a
# small cluster, one run per recovery-capable policy. Any invariant
# violation or conservation leak fails the target.
chaos-smoke:
	@for pol in edf libra librarisk; do \
		echo "== chaos-smoke $$pol =="; \
		$(GO) run ./cmd/clustersim -policy $$pol -nodes 16 -jobs 200 \
			-check-invariants -fault-seed 7 -fault-mtbf 43200 -fault-mttr 3600 \
			-fault-straggler-mtbf 86400 -fault-correlated-mtbf 172800 \
			|| exit 1; \
	done

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/riskpolicy
	$(GO) run ./examples/capacityplan
	$(GO) run ./examples/riskmonitor

clean:
	$(GO) clean ./...
