GO ?= go

.PHONY: all build vet test test-short bench bench-json bench-serve bench-compare bench-gate cover fuzz experiments examples chaos-smoke resume-smoke shard-smoke trace-smoke serve-smoke spans-smoke crash-smoke clean

# bench-gate regression thresholds, overridable per invocation:
# allocs/op is nearly deterministic so the gate is tight; ns/op varies
# with the machine (CI runners differ from the baseline host), so its
# default only catches order-of-magnitude blowups. Tighten locally with
# e.g. `make bench-gate BENCH_MAX_NS_RATIO=1.3`.
BENCH_MAX_NS_RATIO ?= 3.0
BENCH_MAX_ALLOC_RATIO ?= 1.15

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-json reruns the admission-control and predictor benchmarks and
# writes results/bench_new.txt plus the machine-readable comparison
# against the committed pre-optimization baseline (results/bench_seed.txt)
# into BENCH_admission.json. The bench-serve prerequisite refreshes the
# end-to-end serving sweep in BENCH_serve.json alongside it.
bench-json: bench-serve
	$(GO) test -run xxx -bench 'Admission|PredictorScaling|PolicyLibraRiskFullScale|PolicyLibraFullScale|ShardedLibraRisk|ServeAdmit' \
		-benchmem -count 5 . | tee results/bench_new.txt
	$(GO) run ./cmd/benchjson -old results/bench_seed.txt -new results/bench_new.txt \
		> BENCH_admission.json
	@echo wrote BENCH_admission.json

# bench-gate reruns the benchmark group behind BENCH_admission.json and
# fails if any shared benchmark regressed beyond the thresholds above
# relative to the committed baseline's "new" side. CI runs this as the
# bench smoke, so an accidental allocation regression on the admission
# hot path fails the build instead of landing silently.
bench-gate:
	$(GO) test -run xxx -bench 'Admission|PredictorScaling|PolicyLibraRiskFullScale|PolicyLibraFullScale|ShardedLibraRisk|ServeAdmit' \
		-benchmem -count 2 . | tee results/bench_gate.txt
	$(GO) run ./cmd/benchjson -gate BENCH_admission.json -new results/bench_gate.txt \
		-max-ns-ratio $(BENCH_MAX_NS_RATIO) -max-alloc-ratio $(BENCH_MAX_ALLOC_RATIO)

# bench-serve sweeps the live serving path on the real binaries:
# GOMAXPROCS ∈ {1,4,8} × -serve-shards ∈ {1,4,8} × durable off/on, 2000
# virtual-time requests per cell through admitload, writing every cell's
# throughput and latency percentiles to BENCH_serve.json. On a
# single-core host the shard axis measures coordination overhead only;
# the speedup needs real cores.
bench-serve:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/admissiond ./cmd/admissiond; \
	$(GO) build -o $$tmp/admitload ./cmd/admitload; \
	out=BENCH_serve.json; \
	printf '{\n  "benchmark": "serve_admit_sweep",\n  "jobs": 2000,\n  "nodes": 64,\n  "runs": [' > $$out; \
	first=1; \
	for g in 1 4 8; do for k in 1 4 8; do for d in 0 1; do \
		dargs=""; dj=false; \
		if [ $$d -eq 1 ]; then rm -rf $$tmp/wal; dargs="-durable $$tmp/wal"; dj=true; fi; \
		GOMAXPROCS=$$g $$tmp/admissiond -addr 127.0.0.1:0 -nodes 64 -time-scale 0 \
			-queue-depth 1024 -serve-shards $$k $$dargs > $$tmp/daemon.out 2>&1 & pid=$$!; \
		for i in $$(seq 100); do grep -q 'listening on' $$tmp/daemon.out 2>/dev/null && break; sleep 0.1; done; \
		url=$$(sed -n 's/^admissiond: listening on //p' $$tmp/daemon.out); \
		[ -n "$$url" ] || { echo "bench-serve: daemon never listened (g=$$g k=$$k durable=$$dj)"; cat $$tmp/daemon.out; exit 1; }; \
		$$tmp/admitload -url $$url -jobs 2000 -concurrency 8 -virtual -adf 0.05 \
			-out $$tmp/run.json >/dev/null; \
		kill -TERM $$pid; wait $$pid || true; \
		[ $$first -eq 1 ] || printf ',' >> $$out; first=0; \
		printf '\n    {"gomaxprocs": %s, "shards": %s, "durable": %s, "summary": ' $$g $$k $$dj >> $$out; \
		tr -d '\n' < $$tmp/run.json | sed 's/  */ /g' >> $$out; \
		printf '}' >> $$out; \
		echo "bench-serve: gomaxprocs=$$g shards=$$k durable=$$dj done"; \
	done; done; done; \
	printf '\n  ]\n}\n' >> $$out; \
	echo "wrote BENCH_serve.json"

# bench-compare renders the same old/new pair with benchstat when it is
# installed (no network installs here; `go install
# golang.org/x/perf/cmd/benchstat@latest` on a connected machine).
bench-compare:
	@command -v benchstat >/dev/null 2>&1 \
		&& benchstat results/bench_seed.txt results/bench_new.txt \
		|| { echo "benchstat not found; falling back to benchjson ratios"; \
		     $(GO) run ./cmd/benchjson -old results/bench_seed.txt -new results/bench_new.txt; }

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -run xxx -fuzz 'FuzzParse$$' -fuzztime 30s ./internal/swf/

experiments:
	$(GO) run ./cmd/experiments -csv results -svg results | tee results/experiments_full.txt
	$(GO) run ./cmd/experiments -exp extensions -csv results -svg results | tee results/extensions_full.txt
	$(GO) run ./cmd/experiments -replicate 5 | tee results/replication.txt

# chaos-smoke is a fast end-to-end fault-injection run with the invariant
# checker armed: crashes, stragglers and a correlated outage process over a
# small cluster, one run per recovery-capable policy. Any invariant
# violation or conservation leak fails the target.
chaos-smoke:
	@for pol in edf libra librarisk; do \
		echo "== chaos-smoke $$pol =="; \
		$(GO) run ./cmd/clustersim -policy $$pol -nodes 16 -jobs 200 \
			-check-invariants -fault-seed 7 -fault-mtbf 43200 -fault-mttr 3600 \
			-fault-straggler-mtbf 86400 -fault-correlated-mtbf 172800 \
			|| exit 1; \
	done

# shard-smoke proves the sharded parallel engine byte-identical to the
# sequential one under the race detector: the K = 1/2/4/8 differential
# tests (paper figures, chaos sweep, fault/cancellation edge cases) plus
# the shard-pool and shard-routing unit tests, and a real-binary K=4
# differential on cmd/clustersim with faults and the invariant checker.
shard-smoke:
	$(GO) test -race -run 'TestShard|TestSharded|TestPeekNext|TestSetHorizonKey|TestAttachShards' \
		./internal/sim/ ./internal/cluster/ ./internal/experiment/
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	args="-policy librarisk -nodes 64 -jobs 800 -check-invariants \
		-fault-seed 7 -fault-mtbf 1000000 -fault-correlated-mtbf 2000000"; \
	$(GO) run ./cmd/clustersim $$args > $$tmp/seq.txt; \
	$(GO) run ./cmd/clustersim $$args -shards 4 > $$tmp/sharded.txt; \
	diff -u $$tmp/seq.txt $$tmp/sharded.txt \
		|| { echo "shard-smoke: sharded output differs from sequential"; exit 1; }; \
	echo "shard-smoke: ok"

# resume-smoke proves interrupt-then-resume end to end on the real
# binary: a journaled figure regeneration is SIGINT'd once the first
# sweep cells are checkpointed, must exit 130, and the resumed run must
# print byte-identical output to an uninterrupted reference run (only
# the wall-clock "[... regenerated in ...]" lines are filtered).
resume-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments; \
	args="-exp fig1 -jobs 2000 -nodes 32"; \
	$$tmp/experiments $$args | grep -v ' regenerated in ' > $$tmp/reference.txt; \
	$$tmp/experiments $$args -resume $$tmp/run.jsonl \
		> $$tmp/interrupted.txt 2> $$tmp/interrupted.err & pid=$$!; \
	while [ ! -s $$tmp/run.jsonl ]; do \
		kill -0 $$pid 2>/dev/null || { echo "resume-smoke: run finished before it could be interrupted; raise -jobs"; exit 1; }; \
		sleep 0.1; \
	done; \
	kill -INT $$pid; \
	code=0; wait $$pid || code=$$?; \
	[ $$code -eq 130 ] || { echo "resume-smoke: interrupted exit code $$code, want 130"; exit 1; }; \
	[ -s $$tmp/run.jsonl ] || { echo "resume-smoke: no journal after interrupt"; exit 1; }; \
	before=$$(wc -l < $$tmp/run.jsonl); \
	$$tmp/experiments $$args -resume $$tmp/run.jsonl | grep -v ' regenerated in ' > $$tmp/resumed.txt; \
	diff -u $$tmp/reference.txt $$tmp/resumed.txt || { echo "resume-smoke: resumed output differs from uninterrupted run"; exit 1; }; \
	echo "resume-smoke: ok ($$before cells journaled before interrupt, $$(wc -l < $$tmp/run.jsonl) total)"

# trace-smoke proves the observability layer end to end on the real
# binaries: a figure regeneration with tracing, metrics and the admission
# audit armed must print byte-identical figures to an unobserved run, the
# audit log must cross-check against the event trace (tracedump exits
# nonzero on any admit/reject disagreement), and the Chrome trace export
# must validate.
trace-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/experiments ./cmd/experiments; \
	$(GO) build -o $$tmp/tracedump ./cmd/tracedump; \
	args="-exp fig2 -jobs 500 -nodes 16"; \
	$$tmp/experiments $$args | grep -v ' regenerated in ' > $$tmp/plain.txt; \
	$$tmp/experiments $$args -trace $$tmp/ev.jsonl -trace-format jsonl \
		-metrics $$tmp/metrics.prom -audit $$tmp/audit.jsonl \
		| grep -v ' regenerated in ' > $$tmp/observed.txt; \
	diff -u $$tmp/plain.txt $$tmp/observed.txt \
		|| { echo "trace-smoke: figures differ with observability on"; exit 1; }; \
	$$tmp/tracedump -trace $$tmp/ev.jsonl -audit $$tmp/audit.jsonl; \
	grep -q '^sim_jobs_rejected_total ' $$tmp/metrics.prom \
		|| { echo "trace-smoke: metrics export missing rejection counter"; exit 1; }; \
	$$tmp/experiments $$args -trace $$tmp/trace.json -trace-format chrome >/dev/null; \
	$$tmp/tracedump -chrome $$tmp/trace.json; \
	echo "trace-smoke: ok"

# serve-smoke proves the online admission daemon end to end on the real
# binaries: race-run the serve overload/quota/shed/drain/shard tests,
# boot admissiond with a sharded serving cluster (-serve-shards 4),
# drive 1k requests through admitload, scrape /metrics, SIGTERM-drain
# (must exit 0 and checkpoint), then resume a fresh SEQUENTIAL daemon
# from the checkpoint and drain it again (exit 0) — the resumed audit
# stream must be byte-identical to the sharded run's, which is the
# sharded-apply determinism pin on the real binaries.
serve-smoke:
	$(GO) test -race -run 'TestAdmit|TestQuota|TestShed|TestOverload|TestDrain|TestResume|TestNoGoroutineLeak|TestShard' \
		./internal/serve/
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/admissiond ./cmd/admissiond; \
	$(GO) build -o $$tmp/admitload ./cmd/admitload; \
	$$tmp/admissiond -addr 127.0.0.1:0 -nodes 16 -time-scale 0 -serve-shards 4 \
		-audit $$tmp/audit1.jsonl -checkpoint $$tmp/drain.ckpt \
		> $$tmp/daemon1.out 2>&1 & pid=$$!; \
	for i in $$(seq 100); do grep -q 'listening on' $$tmp/daemon1.out 2>/dev/null && break; sleep 0.1; done; \
	url=$$(sed -n 's/^admissiond: listening on //p' $$tmp/daemon1.out); \
	[ -n "$$url" ] || { echo "serve-smoke: daemon never listened"; cat $$tmp/daemon1.out; exit 1; }; \
	$$tmp/admitload -url $$url -jobs 1000 -concurrency 8 -virtual -adf 0.05; \
	$$tmp/admitload -url $$url -scrape /metrics > $$tmp/metrics.prom; \
	grep -q '^serve_requests_total 1000$$' $$tmp/metrics.prom \
		|| { echo "serve-smoke: metrics scrape missing the 1000-request count"; exit 1; }; \
	grep -q '^serve_admission_latency_seconds_count ' $$tmp/metrics.prom \
		|| { echo "serve-smoke: metrics scrape missing the latency histogram"; exit 1; }; \
	kill -TERM $$pid; \
	code=0; wait $$pid || code=$$?; \
	[ $$code -eq 0 ] || { echo "serve-smoke: drained daemon exit code $$code, want 0"; cat $$tmp/daemon1.out; exit 1; }; \
	[ -s $$tmp/drain.ckpt ] || { echo "serve-smoke: no drain checkpoint"; exit 1; }; \
	$$tmp/admissiond -addr 127.0.0.1:0 -nodes 16 -time-scale 0 \
		-audit $$tmp/audit2.jsonl -checkpoint $$tmp/drain.ckpt -resume \
		> $$tmp/daemon2.out 2>&1 & pid=$$!; \
	for i in $$(seq 100); do grep -q 'listening on' $$tmp/daemon2.out 2>/dev/null && break; sleep 0.1; done; \
	kill -TERM $$pid; \
	code=0; wait $$pid || code=$$?; \
	[ $$code -eq 0 ] || { echo "serve-smoke: resumed daemon exit code $$code, want 0"; cat $$tmp/daemon2.out; exit 1; }; \
	cmp $$tmp/audit1.jsonl $$tmp/audit2.jsonl \
		|| { echo "serve-smoke: resumed audit stream differs from the original"; exit 1; }; \
	echo "serve-smoke: ok"

# spans-smoke proves serving-path request tracing end to end: race-run
# the span/debug/tenant-metric test suites, then boot admissiond with
# -spans over the durable sharded pipeline, flood 1k deterministic
# virtual-time requests, scrape /debug/spans and /metrics, and run
# servetrace with the 95% stage-coverage gate plus a validated Chrome
# export. A second daemon replays the identical load with spans OFF and
# the two audit streams (and WALs) must be byte-identical — tracing is
# a read-only tap on the real binaries too. -concurrency 1 keeps the
# request order (and so the decision sequence) deterministic.
spans-smoke:
	$(GO) test -race -run 'TestSpan|TestDebug|TestTenant|TestShedTransition|TestRecorder|TestNilRecorder|TestWire|TestStageNames' \
		./internal/serve/ ./internal/obs/span/
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/admissiond ./cmd/admissiond; \
	$(GO) build -o $$tmp/admitload ./cmd/admitload; \
	$(GO) build -o $$tmp/servetrace ./cmd/servetrace; \
	$(GO) build -o $$tmp/tracedump ./cmd/tracedump; \
	for spans in on off; do \
		sarg=""; [ $$spans = on ] && sarg="-spans"; \
		$$tmp/admissiond -addr 127.0.0.1:0 -nodes 16 -time-scale 0 -serve-shards 4 \
			-durable $$tmp/wal_$$spans -audit $$tmp/audit_$$spans.jsonl $$sarg \
			> $$tmp/daemon_$$spans.out 2> $$tmp/daemon_$$spans.err & pid=$$!; \
		for i in $$(seq 100); do grep -q 'listening on' $$tmp/daemon_$$spans.out 2>/dev/null && break; sleep 0.1; done; \
		url=$$(sed -n 's/^admissiond: listening on //p' $$tmp/daemon_$$spans.out); \
		[ -n "$$url" ] || { echo "spans-smoke: daemon ($$spans) never listened"; cat $$tmp/daemon_$$spans.out; exit 1; }; \
		$$tmp/admitload -url $$url -jobs 1000 -concurrency 1 -virtual -adf 0.05 > $$tmp/load_$$spans.txt; \
		if [ $$spans = on ]; then \
			$$tmp/admitload -url $$url -scrape '/debug/spans?n=1024' > $$tmp/spans.json; \
			$$tmp/admitload -url $$url -scrape /metrics > $$tmp/metrics.prom; \
		fi; \
		kill -TERM $$pid; \
		code=0; wait $$pid || code=$$?; \
		[ $$code -eq 0 ] || { echo "spans-smoke: daemon ($$spans) exit code $$code, want 0"; cat $$tmp/daemon_$$spans.out; exit 1; }; \
	done; \
	grep -q '^serve_spans_recorded_total ' $$tmp/metrics.prom \
		|| { echo "spans-smoke: metrics missing the span counter"; exit 1; }; \
	grep -q '^serve_stage_commit_seconds_count ' $$tmp/metrics.prom \
		|| { echo "spans-smoke: metrics missing the commit-stage histogram"; exit 1; }; \
	grep -q 'serve_tenant_admits_total{tenant="tenant-0"}' $$tmp/metrics.prom \
		|| { echo "spans-smoke: metrics missing per-tenant counters"; exit 1; }; \
	grep -q '^serve_shed_level ' $$tmp/metrics.prom \
		|| { echo "spans-smoke: metrics missing the shed-level gauge"; exit 1; }; \
	$$tmp/servetrace -min-coverage 0.95 -chrome $$tmp/pipeline.json $$tmp/spans.json; \
	$$tmp/tracedump -chrome $$tmp/pipeline.json; \
	cmp $$tmp/audit_on.jsonl $$tmp/audit_off.jsonl \
		|| { echo "spans-smoke: audit stream differs between spans on and off"; exit 1; }; \
	cat $$tmp/wal_on/*.wal > $$tmp/wal_on.cat; cat $$tmp/wal_off/*.wal > $$tmp/wal_off.cat; \
	cmp $$tmp/wal_on.cat $$tmp/wal_off.cat \
		|| { echo "spans-smoke: WAL bytes differ between spans on and off"; exit 1; }; \
	echo "spans-smoke: ok"

# crash-smoke proves crash-consistent durability end to end: race-run
# the WAL, checkpoint and durable-serve test suites, then build the real
# binaries and let crashfuzz SIGKILL admissiond mid-flood five times
# (seeded), restarting with -resume each time and asserting that no
# acknowledged admission is lost, no sequence is reused, the audit
# stream is prefix-consistent across every crash, and the serve_wal_*
# metrics are live — finishing with a graceful SIGTERM drain. The
# daemon runs with -serve-shards 4, so every SIGKILL lands on the
# sharded apply path with the pipelined committer's fsync in flight.
crash-smoke:
	$(GO) test -race -run 'TestWAL|TestCheckpoint|TestDurable|TestJournal|TestReadFile' \
		./internal/wal/ ./internal/checkpoint/ ./internal/serve/
	$(GO) test ./cmd/crashfuzz/
	@set -e; \
	tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/admissiond ./cmd/admissiond; \
	$(GO) build -o $$tmp/admitload ./cmd/admitload; \
	$(GO) build -o $$tmp/crashfuzz ./cmd/crashfuzz; \
	$$tmp/crashfuzz -admissiond $$tmp/admissiond -admitload $$tmp/admitload \
		-cycles 5 -seed 7 -serve-shards 4 -dir $$tmp/fuzz; \
	echo "crash-smoke: ok"

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/riskpolicy
	$(GO) run ./examples/capacityplan
	$(GO) run ./examples/riskmonitor

clean:
	$(GO) clean ./...
