GO ?= go

.PHONY: all build vet test test-short bench cover fuzz experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -run xxx -fuzz 'FuzzParse$$' -fuzztime 30s ./internal/swf/

experiments:
	$(GO) run ./cmd/experiments -csv results -svg results | tee results/experiments_full.txt
	$(GO) run ./cmd/experiments -exp extensions -csv results -svg results | tee results/extensions_full.txt
	$(GO) run ./cmd/experiments -replicate 5 | tee results/replication.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tracereplay
	$(GO) run ./examples/riskpolicy
	$(GO) run ./examples/capacityplan
	$(GO) run ./examples/riskmonitor

clean:
	$(GO) clean ./...
