package clustersched

import (
	"bytes"
	"strings"
	"testing"
)

// fastOptions returns a scaled-down configuration for quick API tests.
func fastOptions() Options {
	o := DefaultOptions()
	o.Nodes = 16
	o.Jobs = 200
	return o
}

func TestSimulateDefaultsShapedResult(t *testing.T) {
	o := fastOptions()
	res, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != PolicyLibraRisk {
		t.Fatalf("Policy = %q", res.Policy)
	}
	s := res.Summary
	if s.Submitted != o.Jobs {
		t.Fatalf("Submitted = %d, want %d", s.Submitted, o.Jobs)
	}
	if s.Met+s.Missed+s.Rejected+s.Unfinished != s.Submitted {
		t.Fatalf("outcome counts do not add up: %+v", s)
	}
	if len(res.Jobs) != o.Jobs {
		t.Fatalf("Jobs = %d", len(res.Jobs))
	}
	if s.PctFulfilled <= 0 || s.PctFulfilled > 100 {
		t.Fatalf("PctFulfilled = %v", s.PctFulfilled)
	}
}

func TestSimulateEachPolicy(t *testing.T) {
	for _, pol := range AllPolicies() {
		o := fastOptions()
		o.Policy = pol
		o.QoPSSlackFactor = 2
		res, err := Simulate(o)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Summary.Met == 0 {
			t.Fatalf("%s: no jobs met", pol)
		}
		if res.Summary.Unfinished != 0 {
			t.Fatalf("%s: %d unfinished jobs", pol, res.Summary.Unfinished)
		}
	}
}

func TestBackfillBeatsFCFSOnFulfilment(t *testing.T) {
	o := fastOptions()
	o.InaccuracyPct = 0
	o.Policy = PolicyFCFS
	fcfs, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Policy = PolicyBackfillEASY
	easy, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if easy.Summary.PctFulfilled < fcfs.Summary.PctFulfilled {
		t.Fatalf("EASY %.1f%% should be at least FCFS %.1f%%",
			easy.Summary.PctFulfilled, fcfs.Summary.PctFulfilled)
	}
}

func TestEstimatorOptionWiresPredictor(t *testing.T) {
	o := fastOptions()
	// Enough history per user for the predictor to learn, and a cluster
	// size that keeps the default workload near its calibrated load
	// (heavily overloaded clusters punish any loosening of estimates).
	o.Nodes = 64
	o.Jobs = 800
	o.Policy = PolicyLibra
	o.UserModel = true
	o.InaccuracyPct = 100
	raw, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Estimator = "scaling"
	corrected, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if corrected.Summary.PctFulfilled <= raw.Summary.PctFulfilled {
		t.Fatalf("scaling estimator %.1f%% should lift Libra above raw estimates %.1f%%",
			corrected.Summary.PctFulfilled, raw.Summary.PctFulfilled)
	}
	// Unknown estimator is rejected.
	o.Estimator = "oracle"
	if _, err := Simulate(o); err == nil {
		t.Fatal("unknown estimator accepted")
	}
}

func TestHeterogeneousRatings(t *testing.T) {
	o := fastOptions()
	o.Nodes = 0 // derived from NodeRatings
	o.NodeRatings = make([]float64, 16)
	for i := range o.NodeRatings {
		o.NodeRatings[i] = 168
		if i%2 == 0 {
			o.NodeRatings[i] = 336 // half the cluster twice as fast
		}
	}
	if o.NodeCount() != 16 {
		t.Fatalf("NodeCount = %d", o.NodeCount())
	}
	for _, pol := range []Policy{PolicyEDF, PolicyLibra, PolicyLibraRisk} {
		o.Policy = pol
		res, err := Simulate(o)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if res.Summary.Met == 0 {
			t.Fatalf("%s: no jobs met on heterogeneous cluster", pol)
		}
	}
	// Faster nodes must help: compare against an all-slow cluster.
	slow := o
	slow.Policy = PolicyLibraRisk
	for i := range slow.NodeRatings {
		slow.NodeRatings[i] = 168
	}
	o.Policy = PolicyLibraRisk
	fast, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	slower, err := Simulate(slow)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Summary.PctFulfilled < slower.Summary.PctFulfilled {
		t.Fatalf("faster cluster fulfilled %.1f%% < slower %.1f%%",
			fast.Summary.PctFulfilled, slower.Summary.PctFulfilled)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	o := fastOptions()
	o.NodeRatings = []float64{168, -5}
	if err := o.Validate(); err == nil {
		t.Fatal("negative node rating accepted")
	}
}

func TestMonitorThroughFacade(t *testing.T) {
	o := fastOptions()
	o.Policy = PolicyLibraRisk
	o.MonitorInterval = 3600
	res, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Monitor) == 0 {
		t.Fatal("no monitor samples collected")
	}
	var sawBusy bool
	for _, s := range res.Monitor {
		if s.Utilization < 0 || s.Utilization > 1+1e-9 {
			t.Fatalf("utilization out of range: %+v", s)
		}
		if s.RunningJobs > 0 {
			sawBusy = true
		}
	}
	if !sawBusy {
		t.Fatal("monitor never saw a running job on a loaded cluster")
	}
	// Monitoring off by default.
	o.MonitorInterval = 0
	res, err = Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Monitor) != 0 {
		t.Fatal("monitor samples present without MonitorInterval")
	}
	// Negative interval rejected.
	o.MonitorInterval = -1
	if _, err := Simulate(o); err == nil {
		t.Fatal("negative MonitorInterval accepted")
	}
}

func TestBuildFigurePrediction(t *testing.T) {
	o := fastOptions()
	o.Jobs = 80
	f, err := BuildFigure("prediction", o)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "prediction" || len(f.Panels) != 4 {
		t.Fatalf("figure = %q with %d panels", f.ID, len(f.Panels))
	}
}

func TestGenerateCalibratedWorkload(t *testing.T) {
	o := fastOptions()
	o.Jobs = 800
	src, err := GenerateWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSWF(&buf, src, o.Nodes); err != nil {
		t.Fatal(err)
	}
	clone, err := GenerateCalibratedWorkload(&buf, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(clone) != o.Jobs {
		t.Fatalf("clone size = %d", len(clone))
	}
	var srcMean, cloneMean float64
	for _, j := range src {
		srcMean += j.Runtime
	}
	for _, j := range clone {
		cloneMean += j.Runtime
	}
	srcMean /= float64(len(src))
	cloneMean /= float64(len(clone))
	if rel := (cloneMean - srcMean) / srcMean; rel > 0.35 || rel < -0.35 {
		t.Fatalf("clone mean runtime %.0f too far from source %.0f", cloneMean, srcMean)
	}
	for _, j := range clone {
		if j.Deadline <= 0 {
			t.Fatal("clone missing deadlines")
		}
	}
	// The clone must be simulatable.
	if _, err := SimulateJobs(o, clone); err != nil {
		t.Fatal(err)
	}
	// Garbage input fails cleanly.
	if _, err := GenerateCalibratedWorkload(strings.NewReader("1 2 3\n"), o); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

func TestSimulateManyMatchesSequential(t *testing.T) {
	var batch []Options
	for _, pol := range []Policy{PolicyEDF, PolicyLibra, PolicyLibraRisk} {
		o := fastOptions()
		o.Policy = pol
		batch = append(batch, o)
	}
	results, err := SimulateMany(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(batch) {
		t.Fatalf("results = %d", len(results))
	}
	for i, o := range batch {
		want, err := Simulate(o)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Summary != want.Summary {
			t.Fatalf("batch[%d] %+v != sequential %+v", i, results[i].Summary, want.Summary)
		}
		if results[i].Policy != o.Policy {
			t.Fatalf("batch[%d] order broken", i)
		}
	}
	// Validation failure aborts.
	bad := fastOptions()
	bad.Policy = "zap"
	if _, err := SimulateMany([]Options{fastOptions(), bad}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	// Empty batch is fine.
	if out, err := SimulateMany(nil); err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestProviderEconomicsThroughFacade(t *testing.T) {
	o := fastOptions()
	o.InaccuracyPct = 0
	acc, err := ProviderEconomics(o)
	if err != nil {
		t.Fatal(err)
	}
	if acc.Revenue <= 0 || acc.Profit != acc.Revenue-acc.Penalties {
		t.Fatalf("economy = %+v", acc)
	}
	if acc.Penalties != 0 {
		t.Fatalf("accurate estimates should incur no penalties: %+v", acc)
	}
	o.InaccuracyPct = 100
	tr, err := ProviderEconomics(o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Profit >= acc.Profit {
		t.Fatalf("trace estimates should cost profit: %.0f vs %.0f", tr.Profit, acc.Profit)
	}
	bad := o
	bad.Jobs = 0
	if _, err := ProviderEconomics(bad); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestReportThroughFacade(t *testing.T) {
	o := fastOptions()
	o.UserModel = true
	out, err := Report(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fulfilled", "slowdown", "class", "Jain index"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	o.UserModel = false
	out, err = Report(o)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "Jain index") {
		t.Fatal("fairness line should need the user model")
	}
	bad := o
	bad.Jobs = 0
	if _, err := Report(bad); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestReplicateThroughFacade(t *testing.T) {
	o := fastOptions()
	o.Jobs = 150
	rep, err := Replicate(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seeds != 3 {
		t.Fatalf("Seeds = %d", rep.Seeds)
	}
	if rep.FulfilledMean <= 0 || rep.FulfilledMean > 100 {
		t.Fatalf("FulfilledMean = %v", rep.FulfilledMean)
	}
	if rep.FulfilledCI95 < 0 || rep.SlowdownCI95 < 0 {
		t.Fatalf("negative CI: %+v", rep)
	}
	if _, err := Replicate(o, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	bad := o
	bad.Policy = "nope"
	if _, err := Replicate(bad, 2); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestBuildExtensionFigures(t *testing.T) {
	o := fastOptions()
	o.Jobs = 80
	for _, id := range ExtensionFigureIDs() {
		f, err := BuildFigure(id, o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if f.ID != id || len(f.Panels) == 0 {
			t.Fatalf("%s: figure = %+v", id, f.ID)
		}
	}
}

func TestQoPSSlackTradesMissesForAcceptance(t *testing.T) {
	hard := fastOptions()
	hard.Policy = PolicyQoPS
	hard.QoPSSlackFactor = 0
	soft := hard
	soft.QoPSSlackFactor = 3
	a, err := Simulate(hard)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(soft)
	if err != nil {
		t.Fatal(err)
	}
	if b.Summary.AcceptanceRate < a.Summary.AcceptanceRate {
		t.Fatalf("slack 3 acceptance %.2f below slack 0 %.2f",
			b.Summary.AcceptanceRate, a.Summary.AcceptanceRate)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	o := fastOptions()
	a, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Fatalf("summaries differ: %+v vs %+v", a.Summary, b.Summary)
	}
}

func TestSimulateAccurateVsTraceEstimates(t *testing.T) {
	o := fastOptions()
	o.InaccuracyPct = 0
	acc, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	o.InaccuracyPct = 100
	tr, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Summary.PctFulfilled >= acc.Summary.PctFulfilled {
		t.Fatalf("trace estimates (%.1f%%) should fulfil fewer jobs than accurate (%.1f%%)",
			tr.Summary.PctFulfilled, acc.Summary.PctFulfilled)
	}
	if acc.Summary.Missed != 0 {
		t.Fatalf("accurate estimates should not miss: %+v", acc.Summary)
	}
}

func TestOptionsValidate(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Options)
	}{
		{"zero nodes", func(o *Options) { o.Nodes = 0 }},
		{"zero rating", func(o *Options) { o.Rating = 0 }},
		{"zero jobs", func(o *Options) { o.Jobs = 0 }},
		{"negative adf", func(o *Options) { o.ArrivalDelayFactor = -1 }},
		{"bad urgency", func(o *Options) { o.HighUrgencyFraction = 2 }},
		{"bad ratio", func(o *Options) { o.DeadlineRatio = 0.5 }},
		{"bad inaccuracy", func(o *Options) { o.InaccuracyPct = 150 }},
		{"bad policy", func(o *Options) { o.Policy = "magic" }},
		{"bad selection", func(o *Options) { o.NodeSelection = "zigzag" }},
		{"negative sigma", func(o *Options) { o.RiskSigmaThreshold = -1 }},
	}
	for _, m := range mutations {
		o := DefaultOptions()
		m.mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: accepted", m.name)
		}
		if _, err := Simulate(o); err == nil {
			t.Errorf("%s: Simulate accepted", m.name)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
}

func TestGenerateWorkloadAndSimulateJobs(t *testing.T) {
	o := fastOptions()
	jobs, err := GenerateWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != o.Jobs {
		t.Fatalf("generated %d jobs", len(jobs))
	}
	for _, j := range jobs {
		if j.Runtime <= 0 || j.Deadline <= j.Runtime*1.0 {
			t.Fatalf("bad job %+v", j)
		}
	}
	res, err := SimulateJobs(o, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Must equal the all-in-one path.
	direct, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary != direct.Summary {
		t.Fatalf("SimulateJobs %+v != Simulate %+v", res.Summary, direct.Summary)
	}
}

func TestSWFRoundTripThroughPublicAPI(t *testing.T) {
	o := fastOptions()
	jobs, err := GenerateWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSWF(&buf, jobs, o.Nodes); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSWF(&buf, o, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(jobs) {
		t.Fatalf("loaded %d of %d jobs", len(loaded), len(jobs))
	}
	// Deadlines are re-assigned on load; runtimes survive modulo rounding.
	for i := range jobs {
		if d := loaded[i].Runtime - jobs[i].Runtime; d > 1 || d < -1 {
			t.Fatalf("job %d runtime drifted: %v vs %v", i, loaded[i].Runtime, jobs[i].Runtime)
		}
		if loaded[i].Deadline <= 0 {
			t.Fatalf("job %d lost its deadline", i)
		}
	}
	if _, err := SimulateJobs(o, loaded); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSWFLastN(t *testing.T) {
	o := fastOptions()
	jobs, err := GenerateWorkload(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSWF(&buf, jobs, o.Nodes); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSWF(&buf, o, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 50 {
		t.Fatalf("LastN kept %d", len(loaded))
	}
	if loaded[0].Submit != 0 {
		t.Fatalf("LastN must rebase: first submit %v", loaded[0].Submit)
	}
}

func TestBuildFigureSmall(t *testing.T) {
	o := fastOptions()
	o.Jobs = 80
	f, err := BuildFigure("figure2", o)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID != "figure2" || len(f.Panels) != 4 {
		t.Fatalf("figure = %q with %d panels", f.ID, len(f.Panels))
	}
	var buf bytes.Buffer
	if err := RenderFigure(&buf, f); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"figure2", "EDF", "Libra", "LibraRisk", "deadline high:low ratio"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out[:min(len(out), 800)])
		}
	}
	buf.Reset()
	if err := RenderFigureCSV(&buf, f); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "figure,panel,policy,x,y\n") {
		t.Fatal("CSV header missing")
	}
}

func TestBuildFigureUnknownID(t *testing.T) {
	if _, err := BuildFigure("figure9", fastOptions()); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestFigureIDs(t *testing.T) {
	ids := FigureIDs()
	if len(ids) != 4 || ids[0] != "figure1" || ids[3] != "figure4" {
		t.Fatalf("FigureIDs = %v", ids)
	}
}

func TestRenderWorkloadTable(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderWorkloadTable(&buf, fastOptions()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "workload characteristics") {
		t.Fatalf("table output:\n%s", buf.String())
	}
}

func TestNodeSelectionAffectsLibra(t *testing.T) {
	best := fastOptions()
	best.Policy = PolicyLibra
	best.NodeSelection = SelectBestFit
	worst := best
	worst.NodeSelection = SelectWorstFit
	a, err := Simulate(best)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(worst)
	if err != nil {
		t.Fatal(err)
	}
	// They need not produce identical outcomes; just both run and record.
	if a.Summary.Submitted != b.Summary.Submitted {
		t.Fatalf("submitted differ: %d vs %d", a.Summary.Submitted, b.Summary.Submitted)
	}
}

func TestRiskSigmaThresholdLoosensAdmission(t *testing.T) {
	strict := fastOptions()
	strict.Policy = PolicyLibraRisk
	loose := strict
	loose.RiskSigmaThreshold = 1e9
	a, err := Simulate(strict)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(loose)
	if err != nil {
		t.Fatal(err)
	}
	if b.Summary.Rejected > a.Summary.Rejected {
		t.Fatalf("looser threshold rejected more: %d vs %d", b.Summary.Rejected, a.Summary.Rejected)
	}
}
