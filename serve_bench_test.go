package clustersched

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"clustersched/internal/serve"
)

// BenchmarkServeAdmit measures the full HTTP admission path — JSON
// decode, shed/quota checks, queue round-trip through the apply
// worker, virtual-time advance, policy Submit — without a network in
// the way (requests go straight to the handler). Virtual time advances
// one second per request so the cluster reaches a steady state instead
// of filling up.
func BenchmarkServeAdmit(b *testing.B) {
	s, err := serve.New(serve.Config{
		Policy:     "librarisk",
		Nodes:      128,
		TimeScale:  0, // request-driven clock: deterministic, no wall coupling
		QueueDepth: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i)
		body, _ := json.Marshal(serve.AdmitRequest{
			NumProc:  1,
			Runtime:  30,
			Deadline: 300,
			T:        &t,
		})
		req := httptest.NewRequest(http.MethodPost, "/admit", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("request %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	b.StopTimer()
	if got := s.OpsApplied(); got != b.N {
		b.Fatalf("applied %d ops, want %d", got, b.N)
	}
}
