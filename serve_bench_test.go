package clustersched

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"clustersched/internal/serve"
)

// benchServeAdmit drives b.N admissions straight through the handler of
// a server built from cfg — JSON decode, shed/quota checks, queue
// round-trip through the apply worker, virtual-time advance, policy
// Submit — without a network in the way. Virtual time advances one
// second per request so the cluster reaches a steady state instead of
// filling up.
func benchServeAdmit(b *testing.B, cfg serve.Config) {
	b.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i)
		body, _ := json.Marshal(serve.AdmitRequest{
			NumProc:  1,
			Runtime:  30,
			Deadline: 300,
			T:        &t,
		})
		req := httptest.NewRequest(http.MethodPost, "/admit", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("request %d: status %d: %s", i, rr.Code, rr.Body.String())
		}
	}
	b.StopTimer()
	if got := s.OpsApplied(); got != b.N {
		b.Fatalf("applied %d ops, want %d", got, b.N)
	}
}

// benchServeConfig is the shared 128-node request-driven baseline every
// ServeAdmit variant starts from, so their numbers compare directly.
func benchServeConfig() serve.Config {
	return serve.Config{
		Policy:     "librarisk",
		Nodes:      128,
		TimeScale:  0, // request-driven clock: deterministic, no wall coupling
		QueueDepth: 1024,
	}
}

// BenchmarkServeAdmit measures the sequential full HTTP admission path.
// The name is pinned: bench-gate compares it against the committed
// baseline in BENCH_admission.json.
func BenchmarkServeAdmit(b *testing.B) {
	benchServeAdmit(b, benchServeConfig())
}

// BenchmarkServeAdmitSharded is the same path with the serving cluster
// partitioned across 4 shard engines: the admit scan and completion
// advancement fan out, the apply worker keeps single-writer ordering.
// On a single-core host this measures pure coordination overhead; the
// speedup only shows with GOMAXPROCS > 1.
func BenchmarkServeAdmitSharded(b *testing.B) {
	cfg := benchServeConfig()
	cfg.Shards = 4
	benchServeAdmit(b, cfg)
}

// BenchmarkServeAdmitDurable adds the write-ahead log: every op is
// fsynced before its response through the two-stage pipeline (decide
// overlaps the previous batch's group-commit fsync). Dominated by
// fsync latency on real disks.
func BenchmarkServeAdmitDurable(b *testing.B) {
	cfg := benchServeConfig()
	cfg.WALDir = b.TempDir()
	benchServeAdmit(b, cfg)
}

// BenchmarkServeAdmitShardedDurable combines both: the sharded apply
// path feeding the pipelined group commit.
func BenchmarkServeAdmitShardedDurable(b *testing.B) {
	cfg := benchServeConfig()
	cfg.Shards = 4
	cfg.WALDir = b.TempDir()
	benchServeAdmit(b, cfg)
}

// BenchmarkServeAdmitSpans measures the sequential path with request
// tracing on: one span allocation per request, contiguous stage stamps,
// a lock-free ring publish, and the stage-histogram fold. Its delta
// against BenchmarkServeAdmit is the whole cost of observability; the
// spans-OFF cost is pinned at zero by TestSpanHelpersZeroAllocWhenDisabled.
func BenchmarkServeAdmitSpans(b *testing.B) {
	cfg := benchServeConfig()
	cfg.Spans = true
	benchServeAdmit(b, cfg)
}

// BenchmarkServeAdmitDurableSpans traces the full durable pipeline:
// gather/append/commit stamps ride the group-commit batches.
func BenchmarkServeAdmitDurableSpans(b *testing.B) {
	cfg := benchServeConfig()
	cfg.Spans = true
	cfg.WALDir = b.TempDir()
	benchServeAdmit(b, cfg)
}
