package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersched/internal/cli"
)

// stripTiming drops the "[figureN regenerated in ...]" wall-clock lines,
// the only nondeterministic part of the output.
func stripTiming(out string) string {
	var kept []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "[") && strings.Contains(line, " regenerated in ") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

// TestRunCanceledContext pins the interrupt contract: a canceled context
// surfaces as a context.Canceled chain, which cli maps to exit code 130.
func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var sb strings.Builder
	err := run(ctx, []string{"-exp", "fig1", "-jobs", "80", "-nodes", "8"}, &sb)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
	if code := cli.ExitCode(err); code != 130 {
		t.Fatalf("exit code = %d, want 130", code)
	}
}

// TestRunResumeJournalByteIdentical wires the -resume flag end to end: a
// journaled figure run, then a second run resuming from the journal,
// must print the same bytes (timing lines aside) as a plain run.
func TestRunResumeJournalByteIdentical(t *testing.T) {
	args := []string{"-exp", "fig1", "-jobs", "100", "-nodes", "8"}
	var plain strings.Builder
	if err := run(context.Background(), args, &plain); err != nil {
		t.Fatal(err)
	}
	journal := filepath.Join(t.TempDir(), "run.jsonl")
	var first strings.Builder
	if err := run(context.Background(), append(args, "-resume", journal), &first); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run(context.Background(), append(args, "-resume", journal), &resumed); err != nil {
		t.Fatal(err)
	}
	if stripTiming(first.String()) != stripTiming(plain.String()) {
		t.Fatal("journaled run output differs from plain run")
	}
	if stripTiming(resumed.String()) != stripTiming(plain.String()) {
		t.Fatal("resumed run output differs from plain run")
	}
}

func TestRunTableOnly(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "table", "-jobs", "300", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "workload characteristics") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunSingleFigureWithOutputs(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-exp", "fig2", "-jobs", "120", "-nodes", "16",
		"-csv", dir, "-svg", dir,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "figure2") || !strings.Contains(out, "LibraRisk") {
		t.Fatalf("output:\n%s", out[:min(len(out), 500)])
	}
	csv, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "figure,panel,policy,x,y\n") {
		t.Fatal("csv header missing")
	}
	svg, err := os.ReadFile(filepath.Join(dir, "figure2.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("svg root missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "fig9"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunReplicateMode(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-replicate", "2", "-jobs", "100", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "± ") || !strings.Contains(out, "librarisk") {
		t.Fatalf("replication output:\n%s", out)
	}
}

func TestRunEconomicsMode(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-exp", "economics", "-jobs", "100", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"provider economics", "librarisk", "profit", "qops"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-zap"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
