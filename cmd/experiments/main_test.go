package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTableOnly(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "table", "-jobs", "300", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "workload characteristics") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunSingleFigureWithOutputs(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	err := run([]string{
		"-exp", "fig2", "-jobs", "120", "-nodes", "16",
		"-csv", dir, "-svg", dir,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "figure2") || !strings.Contains(out, "LibraRisk") {
		t.Fatalf("output:\n%s", out[:min(len(out), 500)])
	}
	csv, err := os.ReadFile(filepath.Join(dir, "figure2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "figure,panel,policy,x,y\n") {
		t.Fatal("csv header missing")
	}
	svg, err := os.ReadFile(filepath.Join(dir, "figure2.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Fatal("svg root missing")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "fig9"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunReplicateMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-replicate", "2", "-jobs", "100", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "± ") || !strings.Contains(out, "librarisk") {
		t.Fatalf("replication output:\n%s", out)
	}
}

func TestRunEconomicsMode(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-exp", "economics", "-jobs", "100", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"provider economics", "librarisk", "profit", "qops"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-zap"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
