// Command experiments regenerates the paper's evaluation — the workload
// characteristics table (§4) and figures 1-4 — plus the extension
// experiments, each as aligned tables with ASCII plots and optional CSV
// and SVG output, or a multi-seed replication of the headline comparison.
//
// A long regeneration is supervised: SIGINT (or SIGTERM) stops admitting
// sweep cells, drains the in-flight simulations, and exits 130; -resume
// checkpoints every completed cell to a journal file so the next
// invocation with the same journal picks up where the interrupted one
// stopped, with byte-identical output.
//
// Examples:
//
//	experiments                       # everything at paper scale
//	experiments -exp fig4             # one figure
//	experiments -exp extensions       # allpolicies + hetero + prediction + chaos
//	experiments -exp chaos            # node-failure sweep (fault injection)
//	experiments -jobs 500 -nodes 32   # quick scaled-down pass
//	experiments -csv out/ -svg out/   # also write data files and charts
//	experiments -replicate 5          # headline numbers with 95% CIs
//	experiments -resume run.jsonl     # checkpoint cells; resume after ^C
//	experiments -timeout 5m -progress # per-run watchdog, live cell count
//	experiments -exp fig1 -cpuprofile cpu.out -memprofile mem.out
//	experiments -exp fig2 -audit audit.jsonl    # admission audit log
//	experiments -trace trace.json               # Chrome trace of every run
//	experiments -metrics metrics.prom           # Prometheus-format metrics
//	experiments -summary-format json            # machine-readable figures
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"clustersched"
	"clustersched/internal/cli"
)

func main() {
	cli.Main("experiments", run)
}

func run(ctx context.Context, args []string, stdout io.Writer) (err error) {
	o := clustersched.DefaultOptions()
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	exp := fs.String("exp", "all", "which experiment: all | table | fig1 | fig2 | fig3 | fig4 | predict | allpolicies | hetero | chaos | economics | extensions")
	jobs := fs.Int("jobs", o.Jobs, "workload size")
	nodes := fs.Int("nodes", o.Nodes, "cluster size")
	seed := fs.Uint64("seed", o.Seed, "workload seed")
	csvDir := fs.String("csv", "", "directory to also write per-figure CSV files into")
	svgDir := fs.String("svg", "", "directory to also write per-figure SVG charts into")
	replicate := fs.Int("replicate", 0, "instead of figures, print the headline comparison across N workload seeds with 95% confidence intervals")
	timeout := fs.Duration("timeout", 0, "per-simulation watchdog: abort any single run exceeding this wall-clock time (0 = off)")
	resume := fs.String("resume", "", "checkpoint journal file: record completed sweep cells and reuse the ones already there")
	progress := fs.Bool("progress", false, "report sweep progress per completed cell on stderr")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the regeneration to `file`")
	memprofile := fs.String("memprofile", "", "write a post-GC heap profile to `file` on exit")
	traceOut := fs.String("trace", "", "record simulation traces (job lifecycle, node state, faults) to `file`; paper figures and chaos only")
	traceFormat := fs.String("trace-format", "chrome", "trace output format: chrome (trace_event JSON for chrome://tracing) | jsonl")
	metricsOut := fs.String("metrics", "", "record merged simulation metrics to `file`; paper figures and chaos only")
	metricsFormat := fs.String("metrics-format", "prom", "metrics output format: prom (Prometheus text) | json")
	auditOut := fs.String("audit", "", "record every admission decision (per-node σ/share, rejection reason) to `file` as JSONL; paper figures and chaos only")
	summaryFormat := fs.String("summary-format", "text", "figure and table output format on stdout: text | json (timing chatter moves to stderr)")
	shards := fs.Int("shards", 0, "run time-shared policies on N parallel engine shards (0/1 = sequential; results are identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *traceFormat {
	case "chrome", "jsonl":
	default:
		return fmt.Errorf("unknown -trace-format %q (want chrome or jsonl)", *traceFormat)
	}
	switch *metricsFormat {
	case "prom", "json":
	default:
		return fmt.Errorf("unknown -metrics-format %q (want prom or json)", *metricsFormat)
	}
	switch *summaryFormat {
	case "text", "json":
	default:
		return fmt.Errorf("unknown -summary-format %q (want text or json)", *summaryFormat)
	}
	jsonSummary := *summaryFormat == "json"

	stopProfiles, err := cli.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	o.Jobs = *jobs
	o.Nodes = *nodes
	o.Seed = *seed
	o.Shards = *shards

	if *replicate > 0 {
		return runReplication(ctx, stdout, o, *replicate)
	}
	if *exp == "economics" {
		return runEconomics(ctx, stdout, o)
	}

	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}

	wantTable := *exp == "all" || *exp == "table"
	var wantFigs []string
	switch *exp {
	case "all":
		wantFigs = clustersched.FigureIDs()
	case "table":
	case "fig1", "fig2", "fig3", "fig4":
		wantFigs = []string{"figure" + (*exp)[3:]}
	case "predict":
		wantFigs = []string{"prediction"}
	case "allpolicies", "hetero", "chaos":
		wantFigs = []string{*exp}
	case "extensions":
		wantFigs = clustersched.ExtensionFigureIDs()
	default:
		return fmt.Errorf("unknown -exp %q", *exp)
	}

	// One builder for the whole run: the base workload is generated once
	// and shared by the table and the paper figures.
	builder, err := clustersched.NewFigureBuilder(o)
	if err != nil {
		return err
	}
	builder.SetRunTimeout(*timeout)
	if *resume != "" {
		loaded, err := builder.OpenJournal(*resume)
		if err != nil {
			return err
		}
		// Resume chatter goes to stderr: stdout stays figure-only so an
		// interrupted-then-resumed run matches an uninterrupted one.
		fmt.Fprintf(os.Stderr, "experiments: journal %s: %d cells on file\n", *resume, loaded)
	}
	var obsv *clustersched.Observation
	if *traceOut != "" || *metricsOut != "" || *auditOut != "" {
		obsv = builder.Observe(clustersched.ObserveConfig{
			Trace:   *traceOut != "",
			Metrics: *metricsOut != "",
			Audit:   *auditOut != "",
		})
		if *resume != "" {
			// A journal-satisfied cell is not re-run and records nothing;
			// warn so a partially-resumed trace isn't mistaken for complete.
			fmt.Fprintln(os.Stderr, "experiments: note: cells satisfied from the journal contribute no trace/metrics/audit output")
		}
	}
	if *progress {
		builder.SetProgress(func(p clustersched.BuildProgress) {
			state := "ran"
			switch {
			case p.Err != nil:
				state = "failed"
			case p.FromJournal:
				state = "journal"
			}
			fmt.Fprintf(os.Stderr, "experiments: [%d/%d] %s (%s)\n", p.Done, p.Total, p.Cell, state)
		})
	}
	// In JSON summary mode every timing/bookkeeping line moves to stderr so
	// stdout is a clean concatenation of JSON documents.
	chatter := io.Writer(stdout)
	if jsonSummary {
		chatter = os.Stderr
	}
	if wantTable {
		writeTable := builder.WriteWorkloadTable
		if jsonSummary {
			writeTable = builder.WriteWorkloadTableJSON
		}
		if err := writeTable(stdout); err != nil {
			return err
		}
	}
	renderFig := clustersched.RenderFigure
	if jsonSummary {
		renderFig = clustersched.RenderFigureJSON
	}
	for _, id := range wantFigs {
		start := time.Now()
		fig, err := builder.BuildContext(ctx, id)
		if err != nil {
			return err
		}
		if err := renderFig(stdout, fig); err != nil {
			return err
		}
		fmt.Fprintf(chatter, "[%s regenerated in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, id+".csv")
			if err := writeFile(path, fig, clustersched.RenderFigureCSV); err != nil {
				return err
			}
			fmt.Fprintf(chatter, "[wrote %s]\n\n", path)
		}
		if *svgDir != "" {
			path := filepath.Join(*svgDir, id+".svg")
			if err := writeFile(path, fig, clustersched.RenderFigureSVG); err != nil {
				return err
			}
			fmt.Fprintf(chatter, "[wrote %s]\n\n", path)
		}
	}
	if obsv != nil {
		if err := writeObservation(obsv, *traceOut, *traceFormat, *metricsOut, *metricsFormat, *auditOut); err != nil {
			return err
		}
		// Observability bookkeeping goes to stderr unconditionally, so
		// stdout stays byte-identical to a run without these flags.
		if *traceOut != "" {
			fmt.Fprintf(os.Stderr, "experiments: wrote %s: %d trace events\n", *traceOut, obsv.EventCount())
		}
		if *metricsOut != "" {
			fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", *metricsOut)
		}
		if *auditOut != "" {
			fmt.Fprintf(os.Stderr, "experiments: wrote %s: %d admission decisions\n", *auditOut, obsv.DecisionCount())
		}
	}
	return nil
}

// writeObservation flushes the recorded observability layers to their
// output files in the selected formats.
func writeObservation(obsv *clustersched.Observation, traceOut, traceFormat, metricsOut, metricsFormat, auditOut string) error {
	write := func(path string, fn func(io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if traceOut != "" {
		fn := obsv.WriteChromeTrace
		if traceFormat == "jsonl" {
			fn = obsv.WriteTraceJSONL
		}
		if err := write(traceOut, fn); err != nil {
			return err
		}
	}
	if metricsOut != "" {
		fn := obsv.WritePrometheus
		if metricsFormat == "json" {
			fn = obsv.WriteMetricsJSON
		}
		if err := write(metricsOut, fn); err != nil {
			return err
		}
	}
	if auditOut != "" {
		if err := write(auditOut, obsv.WriteAuditJSONL); err != nil {
			return err
		}
	}
	return nil
}

// writeFile renders a figure into path with the given renderer.
func writeFile(path string, fig clustersched.Figure, render func(io.Writer, clustersched.Figure) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f, fig); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runEconomics prices every policy's outcomes under the default SLA
// economy, for both estimate regimes. Cancellation is honored between
// runs (each one is seconds at most).
func runEconomics(ctx context.Context, stdout io.Writer, o clustersched.Options) error {
	fmt.Fprintln(stdout, "provider economics per policy (default SLA pricing):")
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "%-22s %-9s %12s %12s %12s %14s\n",
		"policy", "estimates", "revenue", "penalties", "profit", "forgone")
	for _, pol := range clustersched.AllPolicies() {
		for _, mode := range []struct {
			label string
			pct   float64
		}{{"accurate", 0}, {"trace", 100}} {
			if err := ctx.Err(); err != nil {
				return err
			}
			eo := o
			eo.Policy = pol
			eo.InaccuracyPct = mode.pct
			eo.QoPSSlackFactor = 2
			eco, err := clustersched.ProviderEconomics(eo)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-22s %-9s %12.0f %12.0f %12.0f %14.0f\n",
				pol, mode.label, eco.Revenue, eco.Penalties, eco.Profit, eco.ForgoneRevenue)
		}
	}
	return nil
}

// runReplication prints the paper's headline comparison (all three
// policies, accurate vs trace estimates) as mean ± 95 % CI over n seeds.
// Cancellation is honored between replication batches.
func runReplication(ctx context.Context, stdout io.Writer, o clustersched.Options, n int) error {
	fmt.Fprintf(stdout, "headline comparison across %d workload seeds (mean ± 95%% CI):\n\n", n)
	fmt.Fprintln(stdout, "policy      estimates  deadlines fulfilled      avg slowdown")
	for _, pol := range []clustersched.Policy{
		clustersched.PolicyEDF, clustersched.PolicyLibra, clustersched.PolicyLibraRisk,
	} {
		for _, mode := range []struct {
			label string
			pct   float64
		}{{"accurate", 0}, {"trace", 100}} {
			if err := ctx.Err(); err != nil {
				return err
			}
			ro := o
			ro.Policy = pol
			ro.InaccuracyPct = mode.pct
			rep, err := clustersched.Replicate(ro, n)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%-11s %-9s  %6.2f %% ± %5.2f       %6.2f ± %5.2f\n",
				pol, mode.label, rep.FulfilledMean, rep.FulfilledCI95,
				rep.SlowdownMean, rep.SlowdownCI95)
		}
	}
	return nil
}
