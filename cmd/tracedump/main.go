// Command tracedump inspects the observability output of cmd/experiments:
// event traces (-trace, JSONL as written by -trace-format jsonl), admission
// audit logs (-audit) and Chrome trace_event documents (-chrome).
//
// For a trace it prints event counts by kind; for an audit log it prints
// the accept/reject totals, a per-policy rejection-reason breakdown (digit
// runs are normalized so "only 3 of 17 ..." and "only 5 of 8 ..." count as
// one reason), and the top-K riskiest accepted jobs by admission-time node
// risk σ. Given both a trace and an audit log of the same run, it
// cross-checks that every traced rejection has exactly one audit decision,
// and exits nonzero on mismatch.
//
// Examples:
//
//	experiments -exp fig2 -trace ev.jsonl -trace-format jsonl -audit audit.jsonl
//	tracedump -trace ev.jsonl -audit audit.jsonl
//	tracedump -audit audit.jsonl -policy LibraRisk -top 10
//	tracedump -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"clustersched/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracedump:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracedump", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "event trace `file` (JSONL)")
	auditPath := fs.String("audit", "", "admission audit log `file` (JSONL)")
	chromePath := fs.String("chrome", "", "Chrome trace_event `file` to validate")
	policy := fs.String("policy", "", "only events/decisions of this policy (e.g. LibraRisk)")
	runFilter := fs.String("run", "", "only events/decisions whose run tag contains this substring")
	kindFilter := fs.String("kind", "", "only trace events of this kind (e.g. reject; see list in output)")
	jobFilter := fs.Int("job", -1, "only events/decisions for this job ID (-1 = all)")
	top := fs.Int("top", 5, "how many riskiest admissions to list from the audit log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" && *auditPath == "" && *chromePath == "" {
		return fmt.Errorf("nothing to do: pass -trace, -audit and/or -chrome (-h for help)")
	}
	if *kindFilter != "" {
		if err := new(obs.Kind).UnmarshalText([]byte(*kindFilter)); err != nil {
			return fmt.Errorf("-kind: %w (want one of %s)", err, strings.Join(obs.KindNames(), ", "))
		}
	}

	var events []obs.Event
	if *tracePath != "" {
		evs, err := readEvents(*tracePath)
		if err != nil {
			return err
		}
		events = filterEvents(evs, *policy, *runFilter, *kindFilter, *jobFilter)
		if err := dumpTrace(stdout, events, len(evs)); err != nil {
			return err
		}
	}
	var decisions []obs.Decision
	if *auditPath != "" {
		all, err := readDecisions(*auditPath)
		if err != nil {
			return err
		}
		decisions = filterDecisions(all, *policy, *runFilter, *jobFilter)
		if err := dumpAudit(stdout, decisions, len(all), *top); err != nil {
			return err
		}
	}
	if *tracePath != "" && *auditPath != "" {
		if err := crossCheck(stdout, events, decisions); err != nil {
			return err
		}
	}
	if *chromePath != "" {
		f, err := os.Open(*chromePath)
		if err != nil {
			return err
		}
		n, err := obs.ValidateChromeTrace(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "chrome trace %s: valid, %d trace events\n", *chromePath, n)
	}
	return nil
}

func readEvents(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadJSONL(f)
}

func readDecisions(path string) ([]obs.Decision, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return obs.ReadAuditJSONL(f)
}

func filterEvents(evs []obs.Event, policy, run, kind string, job int) []obs.Event {
	out := evs[:0:0]
	for _, ev := range evs {
		if policy != "" && ev.Policy != policy {
			continue
		}
		if run != "" && !strings.Contains(ev.Run, run) {
			continue
		}
		if kind != "" && ev.Kind.String() != kind {
			continue
		}
		if job >= 0 && ev.Job != job {
			continue
		}
		out = append(out, ev)
	}
	return out
}

func filterDecisions(ds []obs.Decision, policy, run string, job int) []obs.Decision {
	out := ds[:0:0]
	for _, d := range ds {
		if policy != "" && d.Policy != policy {
			continue
		}
		if run != "" && !strings.Contains(d.Run, run) {
			continue
		}
		if job >= 0 && d.Job != job {
			continue
		}
		out = append(out, d)
	}
	return out
}

func dumpTrace(w io.Writer, events []obs.Event, total int) error {
	if _, err := fmt.Fprintf(w, "trace: %d events (of %d in file)\n", len(events), total); err != nil {
		return err
	}
	byKind := map[string]int{}
	runs := map[string]bool{}
	for _, ev := range events {
		byKind[ev.Kind.String()]++
		runs[ev.Run] = true
	}
	for _, name := range obs.KindNames() {
		if n := byKind[name]; n > 0 {
			if _, err := fmt.Fprintf(w, "  %-14s %d\n", name, n); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "  runs: %d\n\n", len(runs))
	return err
}

// normalizeReason collapses every run of digits to N so parameterized
// reasons ("only 3 of 17 required nodes have zero risk") aggregate.
func normalizeReason(s string) string {
	var b strings.Builder
	inDigits := false
	for _, r := range s {
		if r >= '0' && r <= '9' {
			if !inDigits {
				b.WriteByte('N')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteRune(r)
	}
	return b.String()
}

// maxSigma returns the admission-time risk σ of an accepted decision: the
// largest per-node σ among the chosen nodes (falling back to all evaluated
// nodes when the chosen ones carry no evaluations, e.g. fast-path admits).
func maxSigma(d obs.Decision) float64 {
	chosen := make(map[int]bool, len(d.Chosen))
	for _, id := range d.Chosen {
		chosen[id] = true
	}
	best, found := 0.0, false
	for _, ev := range d.Nodes {
		if !chosen[ev.Node] {
			continue
		}
		found = true
		if ev.Sigma > best {
			best = ev.Sigma
		}
	}
	if !found {
		for _, ev := range d.Nodes {
			if ev.Sigma > best {
				best = ev.Sigma
			}
		}
	}
	return best
}

func dumpAudit(w io.Writer, ds []obs.Decision, total, top int) error {
	accepted, rejected := 0, 0
	type reasonKey struct{ policy, reason string }
	reasons := map[reasonKey]int{}
	for _, d := range ds {
		if d.Accepted {
			accepted++
			continue
		}
		rejected++
		reasons[reasonKey{d.Policy, normalizeReason(d.Reason)}]++
	}
	if _, err := fmt.Fprintf(w, "audit: %d decisions (of %d in file): %d accepted, %d rejected\n",
		len(ds), total, accepted, rejected); err != nil {
		return err
	}
	keys := make([]reasonKey, 0, len(reasons))
	for k := range reasons {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].policy != keys[j].policy {
			return keys[i].policy < keys[j].policy
		}
		if reasons[keys[i]] != reasons[keys[j]] {
			return reasons[keys[i]] > reasons[keys[j]]
		}
		return keys[i].reason < keys[j].reason
	})
	if len(keys) > 0 {
		if _, err := fmt.Fprintln(w, "rejection reasons by policy:"); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := fmt.Fprintf(w, "  %-10s %6d  %s\n", k.policy, reasons[k], k.reason); err != nil {
				return err
			}
		}
	}
	if top > 0 {
		risky := make([]obs.Decision, 0, len(ds))
		for _, d := range ds {
			if d.Accepted && maxSigma(d) > 0 {
				risky = append(risky, d)
			}
		}
		sort.Slice(risky, func(i, j int) bool {
			si, sj := maxSigma(risky[i]), maxSigma(risky[j])
			if si != sj {
				return si > sj
			}
			if risky[i].Run != risky[j].Run {
				return risky[i].Run < risky[j].Run
			}
			return risky[i].Seq < risky[j].Seq
		})
		if len(risky) > top {
			risky = risky[:top]
		}
		if len(risky) > 0 {
			if _, err := fmt.Fprintf(w, "top %d riskiest admissions (max node σ at admission):\n", len(risky)); err != nil {
				return err
			}
			for _, d := range risky {
				if _, err := fmt.Fprintf(w, "  σ=%-10.2f job %-6d t=%-12.0f %s\n",
					maxSigma(d), d.Job, d.Time, d.Run); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// crossCheck verifies that the trace and the audit log agree: every
// traced reject/admit event must have exactly one audit decision (the
// policies emit both from the same code path, so a mismatch means the
// two files are from different runs or one is truncated).
func crossCheck(w io.Writer, events []obs.Event, decisions []obs.Decision) error {
	evRejects, evAdmits := 0, 0
	for _, ev := range events {
		switch ev.Kind {
		case obs.KindReject:
			evRejects++
		case obs.KindAdmit:
			evAdmits++
		}
	}
	auRejects, auAdmits := 0, 0
	for _, d := range decisions {
		if d.Accepted {
			auAdmits++
		} else {
			auRejects++
		}
	}
	if evRejects != auRejects || evAdmits != auAdmits {
		return fmt.Errorf("trace/audit mismatch: trace has %d rejects / %d admits, audit has %d / %d",
			evRejects, evAdmits, auRejects, auAdmits)
	}
	_, err := fmt.Fprintf(w, "cross-check: trace and audit agree (%d rejects, %d admits)\n", evRejects, evAdmits)
	return err
}
