package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersched/internal/obs"
)

// writeSample writes a small paired trace + audit log: two admits (one
// risky), one reject, across two policies.
func writeSample(t *testing.T) (tracePath, auditPath string) {
	t.Helper()
	dir := t.TempDir()

	events := []obs.Event{
		{Seq: 1, Time: 0, Kind: obs.KindArrive, Job: 1, Node: -1, Run: "r0", Policy: "LibraRisk"},
		{Seq: 2, Time: 0, Kind: obs.KindAdmit, Job: 1, Node: 0, Value: 3.5, Run: "r0", Policy: "LibraRisk"},
		{Seq: 3, Time: 5, Kind: obs.KindArrive, Job: 2, Node: -1, Run: "r0", Policy: "LibraRisk"},
		{Seq: 4, Time: 5, Kind: obs.KindReject, Job: 2, Node: -1, Detail: "only 1 of 2 required nodes have zero risk", Run: "r0", Policy: "LibraRisk"},
		{Seq: 1, Time: 0, Kind: obs.KindArrive, Job: 1, Node: -1, Run: "r1", Policy: "Libra"},
		{Seq: 2, Time: 0, Kind: obs.KindAdmit, Job: 1, Node: 1, Value: 0.4, Run: "r1", Policy: "Libra"},
	}
	tracePath = filepath.Join(dir, "events.jsonl")
	tf, err := os.Create(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSONL(tf, events); err != nil {
		t.Fatal(err)
	}
	tf.Close()

	decisions := []obs.Decision{
		{Seq: 1, Time: 0, Run: "r0", Policy: "LibraRisk", Job: 1, NumProc: 1, Accepted: true,
			Chosen: []int{0}, Nodes: []obs.NodeEval{{Node: 0, Sigma: 3.5, Mu: 1.2, Suitable: true}}},
		{Seq: 2, Time: 5, Run: "r0", Policy: "LibraRisk", Job: 2, NumProc: 2, Accepted: false,
			Reason: "only 1 of 2 required nodes have zero risk",
			Nodes:  []obs.NodeEval{{Node: 0, Sigma: 0, Suitable: true}, {Node: 1, Sigma: 9.9, Suitable: false}}},
		{Seq: 1, Time: 0, Run: "r1", Policy: "Libra", Job: 1, NumProc: 1, Accepted: true,
			Chosen: []int{1}, Nodes: []obs.NodeEval{{Node: 1, Share: 0.4, Suitable: true}}},
	}
	auditPath = filepath.Join(dir, "audit.jsonl")
	af, err := os.Create(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteAuditJSONL(af, decisions); err != nil {
		t.Fatal(err)
	}
	af.Close()
	return tracePath, auditPath
}

func TestDumpAndCrossCheck(t *testing.T) {
	tracePath, auditPath := writeSample(t)
	var sb strings.Builder
	if err := run([]string{"-trace", tracePath, "-audit", auditPath}, &sb); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"trace: 6 events (of 6 in file)",
		"admit          2",
		"reject         1",
		"runs: 2",
		"audit: 3 decisions (of 3 in file): 2 accepted, 1 rejected",
		"LibraRisk       1  only N of N required nodes have zero risk",
		"σ=3.50",
		"cross-check: trace and audit agree (1 rejects, 2 admits)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFilters(t *testing.T) {
	tracePath, auditPath := writeSample(t)
	var sb strings.Builder
	if err := run([]string{"-trace", tracePath, "-audit", auditPath, "-policy", "Libra"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace: 2 events (of 6 in file)") {
		t.Errorf("policy filter not applied to trace:\n%s", out)
	}
	if !strings.Contains(out, "audit: 1 decisions (of 3 in file)") {
		t.Errorf("policy filter not applied to audit:\n%s", out)
	}

	sb.Reset()
	if err := run([]string{"-trace", tracePath, "-kind", "reject"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "trace: 1 events (of 6 in file)") {
		t.Errorf("kind filter not applied:\n%s", sb.String())
	}

	if err := run([]string{"-trace", tracePath, "-kind", "nonsense"}, &sb); err == nil {
		t.Error("expected error for unknown -kind")
	}
}

func TestCrossCheckMismatch(t *testing.T) {
	tracePath, auditPath := writeSample(t)
	// Filtering only the trace by job drops its reject while the audit keeps
	// it, so the cross-check must fail.
	var sb strings.Builder
	err := run([]string{"-trace", tracePath, "-audit", auditPath, "-job", "1"}, &sb)
	if err != nil {
		t.Fatalf("job filter applies to both files, want agreement: %v", err)
	}
	// Truncate the audit file to force a real mismatch.
	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(auditPath, []byte(strings.Join(lines[:1], "")), 0o644); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-trace", tracePath, "-audit", auditPath}, &sb); err == nil {
		t.Error("expected cross-check mismatch error for truncated audit log")
	}
}

func TestNormalizeReason(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"only 3 of 17 required nodes have zero risk", "only N of N required nodes have zero risk"},
		{"needs 128 processors, cluster has 64", "needs N processors, cluster has N"},
		{"deadline expired while queued", "deadline expired while queued"},
	} {
		if got := normalizeReason(tc.in); got != tc.want {
			t.Errorf("normalizeReason(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestNoInputsIsError(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("expected error when no inputs given")
	}
}
