// Command admitload drives an admissiond instance with an SWF-derived
// workload: closed-loop (fixed concurrency) or open-loop (fixed request
// rate), with configurable estimate inaccuracy, optional virtual-time
// submission, node-kill chaos, and a latency/status summary.
//
// Examples:
//
//	admitload -url http://127.0.0.1:8080 -jobs 1000 -concurrency 8
//	admitload -url http://127.0.0.1:8080 -jobs 500 -rate 50 -inaccuracy 100
//	admitload -url http://127.0.0.1:8080 -jobs 200 -virtual -adf 0.1
//	admitload -url http://127.0.0.1:8080 -kill 3@0.5,3@2.0
//	admitload -url http://127.0.0.1:8080 -scrape /metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersched/internal/cli"
	"clustersched/internal/workload"
)

func main() {
	cli.Main("admitload", run)
}

// admitRequest mirrors serve.AdmitRequest without importing the server
// package: the load generator talks to the daemon only over the wire,
// like any real client would.
type admitRequest struct {
	Tenant   string   `json:"tenant,omitempty"`
	NumProc  int      `json:"numproc"`
	Runtime  float64  `json:"runtime"`
	Estimate float64  `json:"estimate,omitempty"`
	Deadline float64  `json:"deadline"`
	Class    string   `json:"class,omitempty"`
	T        *float64 `json:"t,omitempty"`
}

type admitResponse struct {
	Job      int     `json:"job"`
	T        float64 `json:"t"`
	Accepted bool    `json:"accepted"`
	Reason   string  `json:"reason,omitempty"`
}

// result is one request's outcome.
type result struct {
	status   int
	job      int
	t        float64
	accepted bool
	latency  time.Duration
}

// ackRecord is one line of the -ack-log: a decision the daemon actually
// acknowledged (status 200). Crash harnesses replay this log to check
// that no acknowledged admission is lost across a kill.
type ackRecord struct {
	Job      int     `json:"job"`
	T        float64 `json:"t"`
	Accepted bool    `json:"accepted"`
}

// ackLogger appends acknowledged decisions to a JSONL file. Writes go
// straight to the file descriptor — no userspace buffer — so the log
// holds every ack the moment the HTTP response was read.
type ackLogger struct {
	mu sync.Mutex
	f  *os.File
}

func (a *ackLogger) log(r result) {
	if a == nil || r.status != http.StatusOK {
		return
	}
	line, err := json.Marshal(ackRecord{Job: r.job, T: r.t, Accepted: r.accepted})
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _ = a.f.Write(line)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("admitload", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "admissiond base URL")
	jobs := fs.Int("jobs", 1000, "workload size")
	seed := fs.Uint64("seed", 1, "workload seed")
	inacc := fs.Float64("inaccuracy", 0, "estimate inaccuracy % (0=accurate, 100=trace)")
	adf := fs.Float64("adf", 1, "arrival delay factor (<1 = heavier load; shapes -virtual times)")
	rate := fs.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
	concurrency := fs.Int("concurrency", 8, "closed-loop worker count")
	tenants := fs.Int("tenants", 4, "spread requests across this many tenants")
	virtual := fs.Bool("virtual", false, "send the workload's submit times as explicit t")
	tOffset := fs.Float64("t-offset", 0, "added to every -virtual submit time (restart harnesses advance it per run)")
	kills := fs.String("kill", "", "node-kill chaos: comma-separated node@seconds wall-clock offsets")
	scrape := fs.String("scrape", "", "GET this path (e.g. /metrics), print the body and exit")
	ackLog := fs.String("ack-log", "", "append every acknowledged (status-200) decision to this JSONL file")
	abortAfter := fs.Int("abort-after-errors", 0, "stop after this many consecutive transport errors (0 = keep going); still exits 0")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}

	if *scrape != "" {
		return doScrape(ctx, client, *url, *scrape, stdout)
	}

	var acks *ackLogger
	if *ackLog != "" {
		f, err := os.OpenFile(*ackLog, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("admitload: %w", err)
		}
		defer f.Close()
		acks = &ackLogger{f: f}
	}

	// loadCtx is cancelled when the consecutive-transport-error budget is
	// spent: the daemon is gone (a crash harness just killed it), so stop
	// generating instead of timing out on every remaining request.
	loadCtx, loadCancel := context.WithCancel(ctx)
	defer loadCancel()
	var consecErrs atomic.Int64

	gcfg := workload.DefaultGeneratorConfig()
	gcfg.Jobs = *jobs
	gcfg.Seed = *seed
	gcfg.MaxProcs = 16 // keep requests inside small daemon clusters too
	wjobs, err := workload.Generate(gcfg)
	if err != nil {
		return err
	}
	dcfg := workload.DefaultDeadlineConfig()
	dcfg.Seed = *seed + 1
	wjobs, err = workload.AssignDeadlines(wjobs, dcfg)
	if err != nil {
		return err
	}
	workload.ScaleArrivalsInPlace(wjobs, *adf)

	chaos, err := parseKills(*kills)
	if err != nil {
		return err
	}
	for _, k := range chaos {
		k := k
		go func() {
			select {
			case <-time.After(k.after):
				body, _ := json.Marshal(map[string]any{"node": k.node, "down": true})
				resp, err := client.Post(*url+"/node", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			case <-ctx.Done():
			}
		}()
	}

	reqs := make(chan admitRequest, 64)
	go func() {
		defer close(reqs)
		var tick *time.Ticker
		if *rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer tick.Stop()
		}
		for i, j := range wjobs {
			r := admitRequest{
				Tenant:   "tenant-" + strconv.Itoa(i%*tenants),
				NumProc:  j.NumProc,
				Runtime:  j.Runtime,
				Estimate: j.EstimateAt(*inacc),
				Deadline: j.Deadline,
			}
			if j.Class == workload.LowUrgency {
				r.Class = "low"
			}
			if *virtual {
				t := j.Submit + *tOffset
				r.T = &t
			}
			if tick != nil {
				select {
				case <-tick.C:
				case <-loadCtx.Done():
					return
				}
			}
			select {
			case reqs <- r:
			case <-loadCtx.Done():
				return
			}
		}
	}()

	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var results []result
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range reqs {
				if loadCtx.Err() != nil {
					return
				}
				res := post(loadCtx, client, *url, r)
				if res.status == -1 {
					if n := consecErrs.Add(1); *abortAfter > 0 && n >= int64(*abortAfter) {
						loadCancel()
					}
				} else {
					consecErrs.Store(0)
					acks.log(res)
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	summarize(stdout, results)
	if loadCtx.Err() != nil && ctx.Err() == nil {
		fmt.Fprintf(stdout, "admitload: aborted after %d consecutive transport errors\n", *abortAfter)
	}
	// A deliberate abort is a clean exit; only the caller's own
	// cancellation propagates.
	return ctx.Err()
}

func post(ctx context.Context, client *http.Client, base string, r admitRequest) result {
	body, _ := json.Marshal(r)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/admit", bytes.NewReader(body))
	if err != nil {
		return result{status: -1}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return result{status: -1, latency: lat}
	}
	defer resp.Body.Close()
	var ar admitResponse
	_ = json.NewDecoder(resp.Body).Decode(&ar)
	return result{status: resp.StatusCode, job: ar.Job, t: ar.T, accepted: ar.Accepted, latency: lat}
}

func doScrape(ctx context.Context, client *http.Client, base, path string, stdout io.Writer) error {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("admitload: scrape %s: %w", path, err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admitload: scrape %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// chaosKill is one scheduled node kill.
type chaosKill struct {
	node  int
	after time.Duration
}

// parseKills parses "node@seconds,node@seconds".
func parseKills(s string) ([]chaosKill, error) {
	if s == "" {
		return nil, nil
	}
	var out []chaosKill
	for _, part := range strings.Split(s, ",") {
		node, after, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("admitload: bad -kill entry %q, want node@seconds", part)
		}
		n, err := strconv.Atoi(node)
		if err != nil {
			return nil, fmt.Errorf("admitload: bad -kill node %q: %w", node, err)
		}
		sec, err := strconv.ParseFloat(after, 64)
		if err != nil || sec < 0 {
			return nil, fmt.Errorf("admitload: bad -kill offset %q", after)
		}
		out = append(out, chaosKill{node: n, after: time.Duration(sec * float64(time.Second))})
	}
	return out, nil
}

// summarize prints status counts, the accept/reject split and latency
// percentiles over the completed requests.
func summarize(w io.Writer, results []result) {
	counts := map[int]int{}
	accepted, rejected := 0, 0
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		counts[r.status]++
		if r.status == http.StatusOK {
			if r.accepted {
				accepted++
			} else {
				rejected++
			}
		}
		if r.status > 0 {
			lats = append(lats, r.latency)
		}
	}
	fmt.Fprintf(w, "admitload: %d requests\n", len(results))
	statuses := make([]int, 0, len(counts))
	for st := range counts {
		statuses = append(statuses, st)
	}
	sort.Ints(statuses)
	for _, st := range statuses {
		label := strconv.Itoa(st)
		if st == -1 {
			label = "transport-error"
		}
		fmt.Fprintf(w, "  status %s: %d\n", label, counts[st])
	}
	fmt.Fprintf(w, "  decided: %d accepted, %d rejected\n", accepted, rejected)
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) time.Duration {
			k := int(p * float64(len(lats)-1))
			return lats[k]
		}
		fmt.Fprintf(w, "  latency p50 %v p90 %v p99 %v max %v\n",
			pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
			pct(0.99).Round(time.Microsecond), lats[len(lats)-1].Round(time.Microsecond))
	}
}
