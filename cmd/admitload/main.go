// Command admitload drives an admissiond instance with an SWF-derived
// workload: closed-loop (fixed concurrency) or open-loop (fixed request
// rate), with configurable estimate inaccuracy, optional virtual-time
// submission, node-kill chaos, and a latency/status summary.
//
// Examples:
//
//	admitload -url http://127.0.0.1:8080 -jobs 1000 -concurrency 8
//	admitload -url http://127.0.0.1:8080 -jobs 500 -rate 50 -inaccuracy 100
//	admitload -url http://127.0.0.1:8080 -jobs 200 -virtual -adf 0.1
//	admitload -url http://127.0.0.1:8080 -kill 3@0.5,3@2.0
//	admitload -url http://127.0.0.1:8080 -scrape /metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"clustersched/internal/cli"
	"clustersched/internal/workload"
)

func main() {
	cli.Main("admitload", run)
}

// admitRequest mirrors serve.AdmitRequest without importing the server
// package: the load generator talks to the daemon only over the wire,
// like any real client would.
type admitRequest struct {
	Tenant   string   `json:"tenant,omitempty"`
	NumProc  int      `json:"numproc"`
	Runtime  float64  `json:"runtime"`
	Estimate float64  `json:"estimate,omitempty"`
	Deadline float64  `json:"deadline"`
	Class    string   `json:"class,omitempty"`
	T        *float64 `json:"t,omitempty"`
}

type admitResponse struct {
	Job      int     `json:"job"`
	T        float64 `json:"t"`
	Accepted bool    `json:"accepted"`
	Reason   string  `json:"reason,omitempty"`
}

// result is one request's outcome.
type result struct {
	status   int
	job      int
	t        float64
	tenant   string
	accepted bool
	latency  time.Duration
}

// ackRecord is one line of the -ack-log: a decision the daemon actually
// acknowledged (status 200). Crash harnesses replay this log to check
// that no acknowledged admission is lost across a kill.
type ackRecord struct {
	Job      int     `json:"job"`
	T        float64 `json:"t"`
	Accepted bool    `json:"accepted"`
}

// ackLogger appends acknowledged decisions to a JSONL file. Writes go
// straight to the file descriptor — no userspace buffer — so the log
// holds every ack the moment the HTTP response was read.
type ackLogger struct {
	mu sync.Mutex
	f  *os.File
}

func (a *ackLogger) log(r result) {
	if a == nil || r.status != http.StatusOK {
		return
	}
	line, err := json.Marshal(ackRecord{Job: r.job, T: r.t, Accepted: r.accepted})
	if err != nil {
		return
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _ = a.f.Write(line)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("admitload", flag.ContinueOnError)
	url := fs.String("url", "http://127.0.0.1:8080", "admissiond base URL")
	jobs := fs.Int("jobs", 1000, "workload size")
	seed := fs.Uint64("seed", 1, "workload seed")
	inacc := fs.Float64("inaccuracy", 0, "estimate inaccuracy % (0=accurate, 100=trace)")
	adf := fs.Float64("adf", 1, "arrival delay factor (<1 = heavier load; shapes -virtual times)")
	rate := fs.Float64("rate", 0, "open-loop request rate per second (0 = closed loop)")
	concurrency := fs.Int("concurrency", 8, "closed-loop worker count")
	tenants := fs.Int("tenants", 4, "spread requests across this many tenants")
	virtual := fs.Bool("virtual", false, "send the workload's submit times as explicit t")
	tOffset := fs.Float64("t-offset", 0, "added to every -virtual submit time (restart harnesses advance it per run)")
	kills := fs.String("kill", "", "node-kill chaos: comma-separated node@seconds wall-clock offsets")
	scrape := fs.String("scrape", "", "GET this path (e.g. /metrics), print the body and exit")
	ackLog := fs.String("ack-log", "", "append every acknowledged (status-200) decision to this JSONL file")
	outPath := fs.String("out", "", "write a machine-readable JSON summary of the run to this file")
	abortAfter := fs.Int("abort-after-errors", 0, "stop after this many consecutive transport errors (0 = keep going); still exits 0")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	client := &http.Client{Timeout: *timeout}

	if *scrape != "" {
		return doScrape(ctx, client, *url, *scrape, stdout)
	}

	var acks *ackLogger
	if *ackLog != "" {
		f, err := os.OpenFile(*ackLog, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("admitload: %w", err)
		}
		defer f.Close()
		acks = &ackLogger{f: f}
	}

	// loadCtx is cancelled when the consecutive-transport-error budget is
	// spent: the daemon is gone (a crash harness just killed it), so stop
	// generating instead of timing out on every remaining request.
	loadCtx, loadCancel := context.WithCancel(ctx)
	defer loadCancel()
	var consecErrs atomic.Int64

	gcfg := workload.DefaultGeneratorConfig()
	gcfg.Jobs = *jobs
	gcfg.Seed = *seed
	gcfg.MaxProcs = 16 // keep requests inside small daemon clusters too
	wjobs, err := workload.Generate(gcfg)
	if err != nil {
		return err
	}
	dcfg := workload.DefaultDeadlineConfig()
	dcfg.Seed = *seed + 1
	wjobs, err = workload.AssignDeadlines(wjobs, dcfg)
	if err != nil {
		return err
	}
	workload.ScaleArrivalsInPlace(wjobs, *adf)

	chaos, err := parseKills(*kills)
	if err != nil {
		return err
	}
	for _, k := range chaos {
		k := k
		go func() {
			select {
			case <-time.After(k.after):
				body, _ := json.Marshal(map[string]any{"node": k.node, "down": true})
				resp, err := client.Post(*url+"/node", "application/json", bytes.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			case <-ctx.Done():
			}
		}()
	}

	reqs := make(chan admitRequest, 64)
	go func() {
		defer close(reqs)
		var tick *time.Ticker
		if *rate > 0 {
			tick = time.NewTicker(time.Duration(float64(time.Second) / *rate))
			defer tick.Stop()
		}
		for i, j := range wjobs {
			r := admitRequest{
				Tenant:   "tenant-" + strconv.Itoa(i%*tenants),
				NumProc:  j.NumProc,
				Runtime:  j.Runtime,
				Estimate: j.EstimateAt(*inacc),
				Deadline: j.Deadline,
			}
			if j.Class == workload.LowUrgency {
				r.Class = "low"
			}
			if *virtual {
				t := j.Submit + *tOffset
				r.T = &t
			}
			if tick != nil {
				select {
				case <-tick.C:
				case <-loadCtx.Done():
					return
				}
			}
			select {
			case reqs <- r:
			case <-loadCtx.Done():
				return
			}
		}
	}()

	workers := *concurrency
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var results []result
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range reqs {
				if loadCtx.Err() != nil {
					return
				}
				res := post(loadCtx, client, *url, r)
				if res.status == -1 {
					if n := consecErrs.Add(1); *abortAfter > 0 && n >= int64(*abortAfter) {
						loadCancel()
					}
				} else {
					consecErrs.Store(0)
					acks.log(res)
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	sum := buildSummary(results, elapsed)
	summarize(stdout, sum)
	if *outPath != "" {
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("admitload: %w", err)
		}
	}
	if loadCtx.Err() != nil && ctx.Err() == nil {
		fmt.Fprintf(stdout, "admitload: aborted after %d consecutive transport errors\n", *abortAfter)
	}
	// A deliberate abort is a clean exit; only the caller's own
	// cancellation propagates.
	return ctx.Err()
}

func post(ctx context.Context, client *http.Client, base string, r admitRequest) result {
	body, _ := json.Marshal(r)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/admit", bytes.NewReader(body))
	if err != nil {
		return result{status: -1, tenant: r.Tenant}
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return result{status: -1, tenant: r.Tenant, latency: lat}
	}
	defer resp.Body.Close()
	var ar admitResponse
	_ = json.NewDecoder(resp.Body).Decode(&ar)
	return result{status: resp.StatusCode, job: ar.Job, t: ar.T, tenant: r.Tenant, accepted: ar.Accepted, latency: lat}
}

func doScrape(ctx context.Context, client *http.Client, base, path string, stdout io.Writer) error {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+path, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("admitload: scrape %s: %w", path, err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(stdout, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("admitload: scrape %s: status %d", path, resp.StatusCode)
	}
	return nil
}

// chaosKill is one scheduled node kill.
type chaosKill struct {
	node  int
	after time.Duration
}

// parseKills parses "node@seconds,node@seconds".
func parseKills(s string) ([]chaosKill, error) {
	if s == "" {
		return nil, nil
	}
	var out []chaosKill
	for _, part := range strings.Split(s, ",") {
		node, after, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("admitload: bad -kill entry %q, want node@seconds", part)
		}
		n, err := strconv.Atoi(node)
		if err != nil {
			return nil, fmt.Errorf("admitload: bad -kill node %q: %w", node, err)
		}
		sec, err := strconv.ParseFloat(after, 64)
		if err != nil || sec < 0 {
			return nil, fmt.Errorf("admitload: bad -kill offset %q", after)
		}
		out = append(out, chaosKill{node: n, after: time.Duration(sec * float64(time.Second))})
	}
	return out, nil
}

// loadSummary is the machine-readable run summary behind -out: status
// counts, the accept/reject split, wall-clock throughput and latency
// percentiles. The bench-serve sweep collects one per configuration
// into BENCH_serve.json.
type loadSummary struct {
	Requests      int                      `json:"requests"`
	Statuses      map[string]int           `json:"statuses"`
	Accepted      int                      `json:"accepted"`
	Rejected      int                      `json:"rejected"`
	Tenants       map[string]tenantOutcome `json:"tenants,omitempty"`
	WallSeconds   float64                  `json:"wall_seconds"`
	ThroughputRPS float64                  `json:"throughput_rps"`
	LatencyP50    float64                  `json:"latency_p50_seconds"`
	LatencyP90    float64                  `json:"latency_p90_seconds"`
	LatencyP95    float64                  `json:"latency_p95_seconds"`
	LatencyP99    float64                  `json:"latency_p99_seconds"`
	LatencyMax    float64                  `json:"latency_max_seconds"`
}

// tenantOutcome is one tenant's request mix — the client-side view to
// hold against the daemon's serve_tenant_* counters.
type tenantOutcome struct {
	Requests int `json:"requests"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Denied   int `json:"denied"` // 429s (quota) and 503s (shed/queue-full)
	Errors   int `json:"errors,omitempty"`
}

// buildSummary folds the per-request results into a loadSummary.
// Latency percentiles cover every request that got an HTTP response;
// transport errors count under status "transport-error" only.
func buildSummary(results []result, elapsed time.Duration) loadSummary {
	sum := loadSummary{
		Requests: len(results),
		Statuses: map[string]int{},
		Tenants:  map[string]tenantOutcome{},
	}
	lats := make([]time.Duration, 0, len(results))
	for _, r := range results {
		label := strconv.Itoa(r.status)
		if r.status == -1 {
			label = "transport-error"
		}
		sum.Statuses[label]++
		to := sum.Tenants[r.tenant]
		to.Requests++
		switch {
		case r.status == http.StatusOK && r.accepted:
			sum.Accepted++
			to.Accepted++
		case r.status == http.StatusOK:
			sum.Rejected++
			to.Rejected++
		case r.status == -1:
			to.Errors++
		default:
			to.Denied++
		}
		sum.Tenants[r.tenant] = to
		if r.status > 0 {
			lats = append(lats, r.latency)
		}
	}
	sum.WallSeconds = elapsed.Seconds()
	if sum.WallSeconds > 0 {
		sum.ThroughputRPS = float64(len(results)) / sum.WallSeconds
	}
	if len(lats) > 0 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pct := func(p float64) float64 {
			return lats[int(p*float64(len(lats)-1))].Seconds()
		}
		sum.LatencyP50 = pct(0.50)
		sum.LatencyP90 = pct(0.90)
		sum.LatencyP95 = pct(0.95)
		sum.LatencyP99 = pct(0.99)
		sum.LatencyMax = lats[len(lats)-1].Seconds()
	}
	return sum
}

// summarize prints status counts, the accept/reject split and latency
// percentiles over the completed requests.
func summarize(w io.Writer, sum loadSummary) {
	fmt.Fprintf(w, "admitload: %d requests\n", sum.Requests)
	statuses := make([]string, 0, len(sum.Statuses))
	for st := range sum.Statuses {
		statuses = append(statuses, st)
	}
	sort.Strings(statuses)
	for _, st := range statuses {
		fmt.Fprintf(w, "  status %s: %d\n", st, sum.Statuses[st])
	}
	fmt.Fprintf(w, "  decided: %d accepted, %d rejected\n", sum.Accepted, sum.Rejected)
	tenants := make([]string, 0, len(sum.Tenants))
	for tn := range sum.Tenants {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	for _, tn := range tenants {
		to := sum.Tenants[tn]
		fmt.Fprintf(w, "  tenant %s: %d requests, %d accepted, %d rejected, %d denied\n",
			tn, to.Requests, to.Accepted, to.Rejected, to.Denied)
	}
	if sum.LatencyMax > 0 {
		sec := func(v float64) time.Duration {
			return time.Duration(v * float64(time.Second)).Round(time.Microsecond)
		}
		fmt.Fprintf(w, "  latency p50 %v p90 %v p99 %v max %v\n",
			sec(sum.LatencyP50), sec(sum.LatencyP90), sec(sum.LatencyP99), sec(sum.LatencyMax))
	}
}
