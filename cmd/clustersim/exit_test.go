package main

import (
	"context"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"clustersched/internal/sim"
)

// TestRunSurfacesEventBudgetError pins the error contract every cmd
// binary relies on: an engine failure (here an exhausted event budget)
// propagates out of run() as a single identifiable error instead of being
// swallowed or panicking.
func TestRunSurfacesEventBudgetError(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-nodes", "8", "-jobs", "60", "-max-events", "10"}, &sb)
	if err == nil {
		t.Fatal("10-event budget over a 60-job run did not error")
	}
	if !errors.Is(err, sim.ErrEventBudget) {
		t.Fatalf("err = %v, want errors.Is(_, sim.ErrEventBudget)", err)
	}
	if strings.Contains(err.Error(), "\n") {
		t.Fatalf("error not one line: %q", err)
	}
}

// TestBinaryExitsNonZeroOnEngineError builds the real binary and checks
// the full contract end to end: exit status 1 and exactly one stderr line
// with the command prefix.
func TestBinaryExitsNonZeroOnEngineError(t *testing.T) {
	if testing.Short() {
		t.Skip("binary build in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "clustersim")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-nodes", "8", "-jobs", "60", "-max-events", "10")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() == 0 {
		t.Fatalf("err = %v, want non-zero exit", err)
	}
	msg := strings.TrimRight(stderr.String(), "\n")
	if !strings.HasPrefix(msg, "clustersim: ") || strings.Contains(msg, "\n") {
		t.Fatalf("stderr = %q, want one line with the command prefix", stderr.String())
	}
	if !strings.Contains(msg, "event budget") {
		t.Fatalf("stderr = %q, want the engine error surfaced", msg)
	}
}
