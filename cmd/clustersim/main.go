// Command clustersim runs a single cluster admission-control simulation
// and prints its summary, optionally with a per-job outcome CSV, a
// monitor time series, or a detailed analysis report.
//
// Examples:
//
//	clustersim -policy librarisk -inaccuracy 100
//	clustersim -policy edf -adf 0.3 -urgency 0.8 -jobs-csv out.csv
//	clustersim -policy librarisk -fault-mtbf 86400 -fault-mttr 3600 -check-invariants
//	clustersim -policy libra -trace SDSC-SP2-1998-4.2-cln.swf -last 3000
//	clustersim -report -users
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"clustersched"
	"clustersched/internal/cli"
)

func main() {
	cli.Main("clustersim", run)
}

// run parses args and executes one simulation, writing results to stdout.
// Canceling ctx (SIGINT/SIGTERM via cli.Main) aborts the simulation at
// event-loop granularity.
func run(ctx context.Context, args []string, stdout io.Writer) error {
	o := clustersched.DefaultOptions()
	fs := flag.NewFlagSet("clustersim", flag.ContinueOnError)
	policy := fs.String("policy", string(o.Policy), "admission control: edf | libra | librarisk | fcfs | backfill-easy | backfill-conservative | qops")
	nodes := fs.Int("nodes", o.Nodes, "computation nodes")
	rating := fs.Float64("rating", o.Rating, "SPEC rating per node")
	jobs := fs.Int("jobs", o.Jobs, "synthetic workload size")
	seed := fs.Uint64("seed", o.Seed, "workload seed")
	adf := fs.Float64("adf", o.ArrivalDelayFactor, "arrival delay factor (<1 = heavier load)")
	urgency := fs.Float64("urgency", o.HighUrgencyFraction, "fraction of high urgency jobs")
	ratio := fs.Float64("ratio", o.DeadlineRatio, "deadline high:low ratio")
	inacc := fs.Float64("inaccuracy", o.InaccuracyPct, "estimate inaccuracy % (0=accurate, 100=trace)")
	sigma := fs.Float64("sigma", 0, "LibraRisk σ threshold (0 = paper's zero-risk rule)")
	selection := fs.String("selection", "", "node selection override: best-fit | first-fit | worst-fit")
	estimator := fs.String("estimator", "", "runtime estimate source: user-estimate | recent-average | scaling")
	users := fs.Bool("users", false, "generate the workload with a persistent-user population")
	qopsSlack := fs.Float64("qops-slack", 2, "QoPS slack factor (with -policy qops)")
	strict := fs.Bool("strict-share", false, "serve jobs at exactly their guaranteed share (no work conservation)")
	trace := fs.String("trace", "", "replay an SWF trace file instead of the synthetic workload")
	lastN := fs.Int("last", 0, "with -trace: keep only the last N jobs (0 = all)")
	jobsCSV := fs.String("jobs-csv", "", "write per-job outcomes to this CSV file")
	monitor := fs.Float64("monitor", 0, "sample cluster state every N simulated seconds (time-shared policies)")
	monitorCSV := fs.String("monitor-csv", "", "write monitor samples to this CSV file")
	report := fs.Bool("report", false, "print a detailed analysis report (distributions, class breakdown, rejection reasons)")
	faultSeed := fs.Uint64("fault-seed", 0, "seed for the fault-injection RNG streams")
	faultMTBF := fs.Float64("fault-mtbf", 0, "mean time between per-node failures in simulated seconds (0 = no crashes)")
	faultMTTR := fs.Float64("fault-mttr", 3600, "mean per-node repair time in simulated seconds")
	faultStragglerMTBF := fs.Float64("fault-straggler-mtbf", 0, "mean time between per-node slowdown episodes (0 = none)")
	faultStragglerDur := fs.Float64("fault-straggler-duration", 600, "mean slowdown episode length in simulated seconds")
	faultStragglerFactor := fs.Float64("fault-straggler-factor", 0.5, "node speed multiplier during a slowdown episode, in (0,1]")
	faultCorrMTBF := fs.Float64("fault-correlated-mtbf", 0, "mean time between correlated multi-node outages (0 = none)")
	faultCorrSize := fs.Int("fault-correlated-size", 2, "nodes taken down per correlated outage")
	faultHorizon := fs.Float64("fault-horizon", 0, "stop injecting faults after this simulated time (0 = last job arrival)")
	checkInv := fs.Bool("check-invariants", false, "re-validate model invariants after every event (slower; fails on first violation)")
	maxEvents := fs.Uint64("max-events", 0, "override the engine's runaway-loop event budget (0 = default 50M)")
	shards := fs.Int("shards", 0, "run time-shared policies on N parallel engine shards (0/1 = sequential; results are identical)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o.Policy = clustersched.Policy(*policy)
	o.Nodes = *nodes
	o.Rating = *rating
	o.Jobs = *jobs
	o.Seed = *seed
	o.ArrivalDelayFactor = *adf
	o.HighUrgencyFraction = *urgency
	o.DeadlineRatio = *ratio
	o.InaccuracyPct = *inacc
	o.RiskSigmaThreshold = *sigma
	o.NodeSelection = clustersched.NodeSelection(*selection)
	o.Estimator = *estimator
	o.UserModel = *users
	o.QoPSSlackFactor = *qopsSlack
	o.WorkConserving = !*strict
	o.MonitorInterval = *monitor
	o.FaultSeed = *faultSeed
	o.FaultMTBF = *faultMTBF
	o.FaultStragglerMTBF = *faultStragglerMTBF
	o.FaultCorrelatedMTBF = *faultCorrMTBF
	if o.FaultMTBF > 0 || o.FaultCorrelatedMTBF > 0 {
		o.FaultMTTR = *faultMTTR
	}
	if o.FaultStragglerMTBF > 0 {
		o.FaultStragglerDuration = *faultStragglerDur
		o.FaultStragglerFactor = *faultStragglerFactor
	}
	if o.FaultCorrelatedMTBF > 0 {
		o.FaultCorrelatedSize = *faultCorrSize
	}
	o.FaultHorizon = *faultHorizon
	o.CheckInvariants = *checkInv
	o.MaxEvents = *maxEvents
	o.Shards = *shards

	if *report && *trace == "" {
		out, err := clustersched.Report(o)
		if err != nil {
			return err
		}
		_, err = io.WriteString(stdout, out)
		return err
	}

	var res clustersched.Result
	var err error
	if *trace != "" {
		f, ferr := os.Open(*trace)
		if ferr != nil {
			return ferr
		}
		var loaded []clustersched.Job
		loaded, err = clustersched.LoadSWF(f, o, *lastN)
		f.Close()
		if err != nil {
			return err
		}
		res, err = clustersched.SimulateJobsContext(ctx, o, loaded)
	} else {
		res, err = clustersched.SimulateContext(ctx, o)
	}
	if err != nil {
		return err
	}

	s := res.Summary
	fmt.Fprintf(stdout, "policy                 %s\n", res.Policy)
	fmt.Fprintf(stdout, "submitted              %d\n", s.Submitted)
	fmt.Fprintf(stdout, "rejected               %d\n", s.Rejected)
	fmt.Fprintf(stdout, "completed              %d (met %d, missed %d)\n", s.Completed, s.Met, s.Missed)
	fmt.Fprintf(stdout, "unfinished             %d\n", s.Unfinished)
	fmt.Fprintf(stdout, "deadlines fulfilled    %.2f %%\n", s.PctFulfilled)
	fmt.Fprintf(stdout, "avg slowdown (met)     %.2f\n", s.AvgSlowdownMet)
	fmt.Fprintf(stdout, "acceptance rate        %.2f\n", s.AcceptanceRate)
	if s.Killed > 0 {
		fmt.Fprintf(stdout, "killed by node crashes %d (resubmitted)\n", s.Killed)
	}

	if *monitorCSV != "" && len(res.Monitor) > 0 {
		if err := writeMonitorCSV(*monitorCSV, res.Monitor); err != nil {
			return err
		}
	}
	if *jobsCSV != "" {
		if err := writeJobsCSV(*jobsCSV, res.Jobs); err != nil {
			return err
		}
	}
	return nil
}

func writeMonitorCSV(path string, samples []clustersched.MonitorSample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "time,utilization,running,busy_nodes,mean_sigma,mean_mu,delayed_jobs,zero_risk_nodes,down_nodes")
	for _, s := range samples {
		fmt.Fprintf(f, "%g,%.4f,%d,%d,%.4f,%.4f,%d,%d,%d\n",
			s.Time, s.Utilization, s.RunningJobs, s.BusyNodes, s.MeanSigma, s.MeanMu, s.DelayedJobs, s.ZeroRiskNodes, s.DownNodes)
	}
	return nil
}

func writeJobsCSV(path string, jobs []clustersched.JobOutcome) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "job,outcome,finish,response,delay,slowdown,reason")
	for _, j := range jobs {
		fmt.Fprintf(f, "%d,%s,%g,%g,%g,%g,%q\n",
			j.JobID, j.Outcome, j.Finish, j.Response, j.Delay, j.Slowdown, j.Reason)
	}
	return nil
}
