package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultScaledDown(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-nodes", "16", "-jobs", "150"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"policy", "librarisk", "deadlines fulfilled", "submitted              150"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunEveryPolicyFlag(t *testing.T) {
	for _, pol := range []string{"edf", "libra", "librarisk", "fcfs", "backfill-easy", "backfill-conservative", "qops"} {
		var sb strings.Builder
		if err := run(context.Background(), []string{"-policy", pol, "-nodes", "8", "-jobs", "60"}, &sb); err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
	}
}

func TestRunRejectsBadPolicy(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-policy", "lottery"}, &sb); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-no-such-flag"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunReport(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-report", "-nodes", "8", "-jobs", "80"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "slowdown") || !strings.Contains(sb.String(), "class") {
		t.Fatalf("report output wrong:\n%s", sb.String())
	}
}

func TestRunJobsCSVAndMonitorCSV(t *testing.T) {
	dir := t.TempDir()
	jobsCSV := filepath.Join(dir, "jobs.csv")
	monCSV := filepath.Join(dir, "mon.csv")
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-nodes", "8", "-jobs", "60",
		"-jobs-csv", jobsCSV,
		"-monitor", "3600", "-monitor-csv", monCSV,
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := os.ReadFile(jobsCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(jb), "job,outcome,") || strings.Count(string(jb), "\n") != 61 {
		t.Fatalf("jobs csv wrong (lines=%d)", strings.Count(string(jb), "\n"))
	}
	mb, err := os.ReadFile(monCSV)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(mb), "time,utilization,") {
		t.Fatalf("monitor csv wrong:\n%s", string(mb)[:80])
	}
}

func TestRunTraceReplay(t *testing.T) {
	// Build a small trace with tracegen's library path, then replay it.
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.swf")
	var gen strings.Builder
	if err := run(context.Background(), []string{"-nodes", "8", "-jobs", "50"}, &gen); err != nil {
		t.Fatal(err)
	}
	// Use the public API via the facade through a fresh trace file: easiest
	// is to reuse -trace after writing with tracegen logic; emulate by
	// writing a minimal SWF here.
	content := "; MaxNodes: 8\n"
	for i := 1; i <= 20; i++ {
		content += strings.ReplaceAll("ID 0 -1 600 2 -1 -1 2 1200 -1 1 1 1 -1 1 -1 -1 -1\n", "ID 0",
			// job id and staggered submit times
			itoa(i)+" "+itoa(i*500))
	}
	if err := os.WriteFile(tracePath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run(context.Background(), []string{"-nodes", "8", "-trace", tracePath, "-last", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "submitted              10") {
		t.Fatalf("trace replay output:\n%s", sb.String())
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestRunMissingTraceFile(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-trace", "/nonexistent/file.swf"}, &sb); err == nil {
		t.Fatal("missing trace accepted")
	}
}
