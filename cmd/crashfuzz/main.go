// Command crashfuzz is a SIGKILL crash-fuzz harness for admissiond's
// durable mode: it boots the real daemon with a write-ahead log, floods
// it through the real admitload binary, kills the daemon with SIGKILL
// at a seeded random moment, restarts it with -resume, and asserts the
// recovery invariants — then repeats for N cycles and finishes with one
// graceful SIGTERM cycle.
//
// Invariants checked after every recovery:
//
//  1. No acknowledged admission is lost: the recovered daemon's
//     ops_applied is at least the highest job sequence any client got a
//     200 for.
//  2. No sequence is reused (no double-admits): every ack in a later
//     cycle carries a sequence strictly greater than every ack before
//     the kill.
//  3. The audit stream is prefix-consistent: the pre-crash audit file,
//     with at most one torn final line trimmed, is a byte prefix of the
//     audit stream the recovered daemon regenerates during replay.
//  4. The serve_wal_* metric family is live on /metrics.
//
// Example (the Makefile's crash-smoke target):
//
//	crashfuzz -admissiond ./admissiond -admitload ./admitload -cycles 5 -seed 7
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"clustersched/internal/cli"
)

func main() {
	cli.Main("crashfuzz", run)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crashfuzz", flag.ContinueOnError)
	daemonBin := fs.String("admissiond", "admissiond", "path to the admissiond binary")
	loadBin := fs.String("admitload", "admitload", "path to the admitload binary")
	cycles := fs.Int("cycles", 5, "SIGKILL/recover cycles before the final graceful one")
	seed := fs.Int64("seed", 1, "seed for kill timing and per-cycle workloads")
	jobs := fs.Int("jobs", 3000, "jobs per cycle (large enough that the kill lands mid-flood)")
	nodes := fs.Int("nodes", 8, "daemon cluster size")
	policy := fs.String("policy", "librarisk", "admission policy under test")
	segBytes := fs.Int64("wal-segment-bytes", 16<<10, "small segments so rotation+compaction are exercised")
	shards := fs.Int("serve-shards", 0, "shard engines for the daemon's serving cluster (0 = sequential)")
	dirFlag := fs.String("dir", "", "scratch directory (default: a temp dir, removed on success)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	scratch := *dirFlag
	if scratch == "" {
		d, err := os.MkdirTemp("", "crashfuzz-*")
		if err != nil {
			return err
		}
		scratch = d
	} else if err := os.MkdirAll(scratch, 0o755); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "crashfuzz: scratch %s\n", scratch)
	walDir := filepath.Join(scratch, "wal")
	rng := rand.New(rand.NewSource(*seed))

	inv := newInvariants()
	var totalAcked, totalTrunc int
	for cycle := 0; cycle <= *cycles; cycle++ {
		auditPath := filepath.Join(scratch, fmt.Sprintf("audit-%d.jsonl", cycle))
		d, err := startDaemon(ctx, *daemonBin, daemonArgs{
			walDir: walDir, audit: auditPath,
			policy: *policy, nodes: *nodes, segBytes: *segBytes,
			shards: *shards,
		})
		if err != nil {
			return fmt.Errorf("crashfuzz: cycle %d: %w", cycle, err)
		}
		if cycle > 0 {
			// Invariant 1: recovery must cover every acked op.
			applied, err := opsApplied(ctx, d.base)
			if err != nil {
				d.kill()
				return fmt.Errorf("crashfuzz: cycle %d: /state: %w", cycle, err)
			}
			if applied < inv.maxAcked {
				d.kill()
				return fmt.Errorf("crashfuzz: cycle %d: ACKED WORK LOST: ops_applied %d < max acked seq %d", cycle, applied, inv.maxAcked)
			}
			// Invariant 3: the regenerated audit extends the pre-crash one.
			bootAudit, err := os.ReadFile(auditPath)
			if err != nil {
				d.kill()
				return fmt.Errorf("crashfuzz: cycle %d: %w", cycle, err)
			}
			prev := trimTornLine(inv.prevAudit)
			if !isPrefix(prev, bootAudit) {
				d.kill()
				return fmt.Errorf("crashfuzz: cycle %d: AUDIT DIVERGED: pre-crash audit (%d bytes after torn-line trim) is not a prefix of the recovered stream (%d bytes)",
					cycle, len(prev), len(bootAudit))
			}
			// Invariant 4: durability telemetry is exported.
			if err := checkWALMetrics(ctx, d.base); err != nil {
				d.kill()
				return fmt.Errorf("crashfuzz: cycle %d: %w", cycle, err)
			}
			totalTrunc += int(d.truncated)
			fmt.Fprintf(stdout, "crashfuzz: cycle %d recovered %d ops (%d bytes truncated), audit prefix ok, max acked %d\n",
				cycle, d.recovered, d.truncated, inv.maxAcked)
		}

		ackPath := filepath.Join(scratch, fmt.Sprintf("acks-%d.jsonl", cycle))
		tOffset := float64(cycle) * 1e7
		load := startLoad(*loadBin, d.base, ackPath, *jobs, *seed+int64(cycle), tOffset)
		if err := load.start(); err != nil {
			d.kill()
			return fmt.Errorf("crashfuzz: cycle %d: admitload: %w", cycle, err)
		}

		if cycle < *cycles {
			// Crash cycle: SIGKILL mid-flood at a seeded moment.
			delay := 20*time.Millisecond + time.Duration(rng.Int63n(int64(480*time.Millisecond)))
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				d.kill()
				return ctx.Err()
			}
			d.kill()
			if err := load.wait(); err != nil {
				return fmt.Errorf("crashfuzz: cycle %d: admitload exited non-zero after kill: %w", cycle, err)
			}
		} else {
			// Final graceful cycle: let the flood finish, then SIGTERM.
			if err := load.wait(); err != nil {
				d.kill()
				return fmt.Errorf("crashfuzz: cycle %d: admitload: %w", cycle, err)
			}
		}

		acks, err := parseAcks(ackPath)
		if err != nil {
			return fmt.Errorf("crashfuzz: cycle %d: %w", cycle, err)
		}
		// Invariant 2: fresh acks continue strictly past everything acked
		// before, and no sequence repeats.
		if err := inv.absorb(cycle, acks); err != nil {
			return fmt.Errorf("crashfuzz: %w", err)
		}
		totalAcked += len(acks)
		audit, err := os.ReadFile(auditPath)
		if err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("crashfuzz: cycle %d: %w", cycle, err)
		}
		inv.prevAudit = audit
		note := ""
		if cycle < *cycles && len(acks) < *jobs {
			note = ", kill landed mid-flood"
		}
		fmt.Fprintf(stdout, "crashfuzz: cycle %d acked %d/%d decisions (max seq %d%s)\n", cycle, len(acks), *jobs, inv.maxAcked, note)

		if cycle == *cycles {
			if err := d.terminate(); err != nil {
				return fmt.Errorf("crashfuzz: graceful drain: %w", err)
			}
			fmt.Fprintf(stdout, "crashfuzz: graceful drain clean\n")
		}
	}

	fmt.Fprintf(stdout, "crashfuzz: PASS: %d kill/recover cycles + 1 graceful, %d acks total, %d torn-tail bytes truncated, 0 acked ops lost\n",
		*cycles, totalAcked, totalTrunc)
	if *dirFlag == "" {
		os.RemoveAll(scratch)
	}
	return nil
}

// opsApplied reads ops_applied from /state.
func opsApplied(ctx context.Context, base string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/state", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var st struct {
		OpsApplied int    `json:"ops_applied"`
		Err        string `json:"err"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	if st.Err != "" {
		return 0, fmt.Errorf("daemon reports error: %s", st.Err)
	}
	return st.OpsApplied, nil
}

// checkWALMetrics asserts the serve_wal_* family is on /metrics.
func checkWALMetrics(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, want := range []string{
		"serve_wal_appends_total",
		"serve_wal_commits_total",
		"serve_wal_dirty_bytes",
		"serve_wal_fsync_seconds",
		"serve_wal_recovered_records",
		"serve_wal_recovery_truncated_bytes",
	} {
		if !containsLine(body, want) {
			return fmt.Errorf("/metrics missing %s", want)
		}
	}
	return nil
}

func startLoad(bin, base, ackPath string, jobs int, seed int64, tOffset float64) *loadProc {
	return &loadProc{
		bin: bin,
		args: []string{
			"-url", base,
			"-jobs", strconv.Itoa(jobs),
			"-seed", strconv.FormatInt(seed, 10),
			"-virtual",
			"-t-offset", strconv.FormatFloat(tOffset, 'f', -1, 64),
			"-ack-log", ackPath,
			"-abort-after-errors", "5",
			"-concurrency", "4",
			"-tenants", "2",
			"-timeout", "5s",
		},
	}
}
