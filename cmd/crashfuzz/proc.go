package main

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// daemonArgs parameterises one admissiond boot.
type daemonArgs struct {
	walDir   string
	audit    string
	policy   string
	nodes    int
	segBytes int64
	shards   int // -serve-shards: sharded live apply path (0 = sequential)
}

// daemon is one live admissiond process with its stdout under watch.
type daemon struct {
	cmd       *exec.Cmd
	stderr    bytes.Buffer
	base      string // http://host:port once the listening line appears
	recovered int    // ops replayed from the WAL at boot
	truncated int64  // torn-tail bytes discarded at boot

	mu       sync.Mutex
	lines    []string
	scanDone chan struct{}
	waitOnce sync.Once
	waitErr  error
}

// startDaemon boots admissiond in durable mode and blocks until it
// reports its listen address (or fails to).
func startDaemon(ctx context.Context, bin string, a daemonArgs) (*daemon, error) {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-time-scale", "0", // request-driven clock: the workload's virtual times rule
		"-durable", a.walDir,
		"-resume",
		"-audit", a.audit,
		"-policy", a.policy,
		"-nodes", strconv.Itoa(a.nodes),
		"-queue-depth", "512",
		"-request-timeout", "30s",
	}
	if a.segBytes > 0 {
		args = append(args, "-wal-segment-bytes", strconv.FormatInt(a.segBytes, 10))
	}
	if a.shards > 0 {
		args = append(args, "-serve-shards", strconv.Itoa(a.shards))
	}
	cmd := exec.Command(bin, args...)
	d := &daemon{cmd: cmd, scanDone: make(chan struct{})}
	cmd.Stderr = &d.stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}

	listening := make(chan string, 1)
	go func() {
		defer close(d.scanDone)
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.lines = append(d.lines, line)
			d.mu.Unlock()
			var n int
			var tr int64
			if _, err := fmt.Sscanf(line, "admissiond: recovered %d ops from WAL (%d bytes truncated)", &n, &tr); err == nil {
				d.recovered, d.truncated = n, tr
			}
			if addr, ok := strings.CutPrefix(line, "admissiond: listening on "); ok {
				select {
				case listening <- addr:
				default:
				}
			}
		}
	}()

	select {
	case addr := <-listening:
		d.base = addr
		return d, nil
	case <-d.scanDone:
		err := d.wait()
		return nil, fmt.Errorf("daemon exited before listening: %v\nstdout: %s\nstderr: %s",
			err, strings.Join(d.lines, "\n"), d.stderr.String())
	case <-time.After(15 * time.Second):
		d.kill()
		return nil, fmt.Errorf("daemon did not report listening within 15s; stderr: %s", d.stderr.String())
	case <-ctx.Done():
		d.kill()
		return nil, ctx.Err()
	}
}

// wait reaps the process exactly once, after the stdout scanner has
// drained (so no trailing lines are lost to Wait closing the pipe).
func (d *daemon) wait() error {
	d.waitOnce.Do(func() {
		<-d.scanDone
		d.waitErr = d.cmd.Wait()
	})
	return d.waitErr
}

// kill delivers SIGKILL — the crash under test. No cleanup runs in the
// daemon; whatever hit the disk is what recovery gets.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.wait()
}

// terminate delivers SIGTERM and requires a clean drain: exit status 0
// and the "drained" line on stdout.
func (d *daemon) terminate() error {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	done := make(chan error, 1)
	go func() { done <- d.wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero on SIGTERM: %v; stderr: %s", err, d.stderr.String())
		}
	case <-time.After(30 * time.Second):
		d.kill()
		return fmt.Errorf("daemon failed to drain within 30s")
	}
	if !d.sawLine("admissiond: drained ") {
		return fmt.Errorf("daemon exited 0 but never printed the drained line; stdout: %s", strings.Join(d.lines, "\n"))
	}
	return nil
}

func (d *daemon) sawLine(prefix string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, l := range d.lines {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}

// loadProc wraps one admitload run.
type loadProc struct {
	bin  string
	args []string
	cmd  *exec.Cmd
	out  bytes.Buffer
}

func (l *loadProc) start() error {
	l.cmd = exec.Command(l.bin, l.args...)
	l.cmd.Stdout = &l.out
	l.cmd.Stderr = &l.out
	return l.cmd.Start()
}

func (l *loadProc) wait() error {
	if err := l.cmd.Wait(); err != nil {
		return fmt.Errorf("%w; output: %s", err, l.out.String())
	}
	return nil
}
