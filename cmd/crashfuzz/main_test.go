package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestTrimTornLine(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"empty", "", ""},
		{"complete", "a\nb\n", "a\nb\n"},
		{"torn tail", "a\nb\n{\"par", "a\nb\n"},
		{"single torn line", "{\"par", ""},
		{"single complete line", "a\n", "a\n"},
	}
	for _, c := range cases {
		if got := trimTornLine([]byte(c.in)); !bytes.Equal(got, []byte(c.want)) {
			t.Errorf("%s: trimTornLine(%q) = %q, want %q", c.name, c.in, got, c.want)
		}
	}
}

func TestIsPrefix(t *testing.T) {
	if !isPrefix(nil, []byte("abc")) {
		t.Error("empty prefix should match")
	}
	if !isPrefix([]byte("ab"), []byte("abc")) {
		t.Error("ab should prefix abc")
	}
	if isPrefix([]byte("abc"), []byte("ab")) {
		t.Error("longer than data cannot be a prefix")
	}
	if isPrefix([]byte("ax"), []byte("abc")) {
		t.Error("ax does not prefix abc")
	}
}

func TestParseAcks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "acks.jsonl")
	body := `{"job":1,"t":0,"accepted":true}
{"job":2,"t":15,"accepted":false}
{"job":5,"t":30,"accepted":true}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	acks, err := parseAcks(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != 3 || acks[0].Job != 1 || !acks[0].Accepted || acks[1].Job != 2 || acks[1].Accepted || acks[2].Job != 5 {
		t.Fatalf("unexpected acks: %+v", acks)
	}

	if acks, err := parseAcks(filepath.Join(dir, "missing.jsonl")); err != nil || acks != nil {
		t.Fatalf("missing file should parse as empty, got %v, %v", acks, err)
	}

	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{notjson\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseAcks(bad); err == nil {
		t.Fatal("malformed ack line should error")
	}
}

func TestInvariantsAbsorb(t *testing.T) {
	inv := newInvariants()
	if err := inv.absorb(0, []ack{{Job: 1}, {Job: 3}, {Job: 2}}); err != nil {
		t.Fatalf("cycle 0: %v", err)
	}
	if inv.maxAcked != 3 {
		t.Fatalf("maxAcked = %d, want 3", inv.maxAcked)
	}
	// Sequences continuing past the high-water mark are fine even with
	// gaps (unacked ops the crash swallowed).
	if err := inv.absorb(1, []ack{{Job: 7}, {Job: 9}}); err != nil {
		t.Fatalf("cycle 1: %v", err)
	}
	// Reuse of an acked sequence is a double admit.
	if err := inv.absorb(2, []ack{{Job: 7}}); err == nil {
		t.Fatal("reused sequence should fail")
	}
	// A fresh-but-regressed sequence means the counter restarted.
	inv2 := newInvariants()
	if err := inv2.absorb(0, []ack{{Job: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := inv2.absorb(1, []ack{{Job: 4}}); err == nil {
		t.Fatal("regressed sequence should fail")
	}
}
