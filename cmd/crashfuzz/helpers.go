package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// trimTornLine cuts data back to its last complete ('\n'-terminated)
// line. SIGKILL can land mid-write of the final audit line; everything
// before that line was flushed whole and must survive byte-for-byte.
func trimTornLine(data []byte) []byte {
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return data
	}
	i := bytes.LastIndexByte(data, '\n')
	if i < 0 {
		return nil
	}
	return data[:i+1]
}

// isPrefix reports whether prefix is a byte prefix of data.
func isPrefix(prefix, data []byte) bool {
	return len(prefix) <= len(data) && bytes.Equal(prefix, data[:len(prefix)])
}

// containsLine reports whether a metrics body mentions the given
// metric name.
func containsLine(body []byte, name string) bool {
	return bytes.Contains(body, []byte(name))
}

// ack is one acknowledged decision from admitload's -ack-log.
type ack struct {
	Job      int     `json:"job"`
	T        float64 `json:"t"`
	Accepted bool    `json:"accepted"`
}

// parseAcks reads an -ack-log JSONL file. admitload writes each line
// with a single unbuffered write and is never the process being killed,
// so every line must parse.
func parseAcks(path string) ([]ack, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []ack
	for i, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var a ack
		if err := json.Unmarshal(line, &a); err != nil {
			return nil, fmt.Errorf("ack log %s line %d: %w", path, i+1, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// invariants accumulates the cross-cycle state the harness checks:
// the highest acknowledged sequence, every sequence ever acked (with
// the cycle that acked it), and the previous cycle's audit bytes.
type invariants struct {
	maxAcked  int
	seen      map[int]int // job seq -> cycle that acked it
	prevAudit []byte
}

func newInvariants() *invariants {
	return &invariants{seen: make(map[int]int)}
}

// absorb folds one cycle's acks in, failing on a reused sequence
// (a double admit) or a sequence at or below an earlier cycle's
// high-water mark (recovery restarted the counter, so replayed ops
// could collide with pre-crash acks).
func (v *invariants) absorb(cycle int, acks []ack) error {
	floor := v.maxAcked
	for _, a := range acks {
		if prev, ok := v.seen[a.Job]; ok {
			return fmt.Errorf("cycle %d: SEQ REUSED: job %d was already acked in cycle %d (double admit)", cycle, a.Job, prev)
		}
		if a.Job <= floor {
			return fmt.Errorf("cycle %d: SEQ REGRESSED: acked job %d but an earlier cycle already acked up to %d", cycle, a.Job, floor)
		}
		v.seen[a.Job] = cycle
		if a.Job > v.maxAcked {
			v.maxAcked = a.Job
		}
	}
	return nil
}
