package main

import (
	"strings"
	"testing"
)

func TestRunTableOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-param", "adf", "-values", "0.5,1.0",
		"-policies", "libra,librarisk",
		"-nodes", "16", "-jobs", "120",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sweep over adf", "libra", "librarisk", "fulfilled", "0.5", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-param", "urgency", "-values", "0.2,0.8",
		"-policies", "librarisk",
		"-nodes", "16", "-jobs", "100", "-csv",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "param,value,policy,fulfilled_pct") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("csv rows = %d, want header + 2", strings.Count(out, "\n")-1)
	}
	if !strings.Contains(out, "urgency,0.2,librarisk,") {
		t.Fatalf("csv row missing:\n%s", out)
	}
}

func TestRunEveryParam(t *testing.T) {
	for _, param := range paramNames() {
		values := "0.5,1"
		switch param {
		case "nodes":
			values = "8,16"
		case "jobs":
			values = "50,80"
		case "ratio":
			values = "2,4"
		}
		var sb strings.Builder
		err := run([]string{
			"-param", param, "-values", values,
			"-policies", "librarisk", "-nodes", "8", "-jobs", "60",
		}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", param, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-param", "temperature"},
		{"-values", ""},
		{"-values", "abc"},
		{"-policies", ""},
		{"-param", "nodes", "-values", "1.5"},
		{"-policies", "lottery", "-nodes", "8", "-jobs", "50"},
		{"-wat"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
