package main

import (
	"context"
	"strings"
	"testing"
)

func TestRunTableOutput(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-param", "adf", "-values", "0.5,1.0",
		"-policies", "libra,librarisk",
		"-nodes", "16", "-jobs", "120",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"sweep over adf", "libra", "librarisk", "fulfilled", "0.5", "1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSVOutput(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-param", "urgency", "-values", "0.2,0.8",
		"-policies", "librarisk",
		"-nodes", "16", "-jobs", "100", "-csv",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "param,value,policy,fulfilled_pct") {
		t.Fatalf("csv header missing:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("csv rows = %d, want header + 2", strings.Count(out, "\n")-1)
	}
	if !strings.Contains(out, "urgency,0.2,librarisk,") {
		t.Fatalf("csv row missing:\n%s", out)
	}
}

func TestRunEveryParam(t *testing.T) {
	for _, param := range paramNames() {
		values := "0.5,1"
		switch param {
		case "nodes":
			values = "8,16"
		case "jobs":
			values = "50,80"
		case "ratio":
			values = "2,4"
		}
		var sb strings.Builder
		err := run(context.Background(), []string{
			"-param", param, "-values", values,
			"-policies", "librarisk", "-nodes", "8", "-jobs", "60",
		}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", param, err)
		}
	}
}

func TestParseValues(t *testing.T) {
	cases := []struct {
		name    string
		values  string
		want    []float64
		wantErr string // substring of the error, "" = success
	}{
		{"plain list", "0.1,0.3,0.5", []float64{0.1, 0.3, 0.5}, ""},
		{"whitespace and empty entries", " 1 ,, 2 ", []float64{1, 2}, ""},
		{"unparseable reports 1-based position", "0.1,abc,0.5", nil, `entry 2: bad value "abc"`},
		{"position counts empty entries", ",,abc", nil, `entry 3: bad value "abc"`},
		{"duplicate reports both positions", "0.1,0.3,0.1", nil, "entry 3: 0.1 duplicates entry 1"},
		{"duplicate after different spellings", "1,1.0", nil, "entry 2: 1 duplicates entry 1"},
		{"empty list", " , ,", nil, "no sweep values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseValues(tc.values)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("parseValues(%q) err = %v, want containing %q", tc.values, err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseValues(%q): %v", tc.values, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("parseValues(%q) = %v, want %v", tc.values, got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("parseValues(%q) = %v, want %v", tc.values, got, tc.want)
				}
			}
		})
	}
}

func TestRunRejectsDuplicateValues(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{
		"-param", "adf", "-values", "0.5,1.0,0.5",
		"-policies", "librarisk", "-nodes", "8", "-jobs", "50",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "duplicates") {
		t.Fatalf("duplicate -values err = %v, want a duplicate report", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-param", "temperature"},
		{"-values", ""},
		{"-values", "abc"},
		{"-policies", ""},
		{"-param", "nodes", "-values", "1.5"},
		{"-policies", "lottery", "-nodes", "8", "-jobs", "50"},
		{"-wat"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(context.Background(), args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
