// Command sweep runs an ad-hoc one-parameter study: pick a parameter, a
// list of values and a set of policies, and get a table (or CSV) of the
// two evaluation metrics at every point — the quick-look companion to the
// fixed figures of cmd/experiments. Points run concurrently.
//
// Examples:
//
//	sweep -param adf -values 0.1,0.3,0.5,1.0
//	sweep -param urgency -values 0,0.2,0.5,0.8 -policies libra,librarisk
//	sweep -param nodes -values 32,64,128 -inaccuracy 100 -csv -
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"

	"clustersched"
	"clustersched/internal/cli"
)

func main() {
	cli.Main("sweep", run)
}

// sweepParams maps -param names to Options mutators.
var sweepParams = map[string]func(*clustersched.Options, float64) error{
	"adf": func(o *clustersched.Options, v float64) error {
		o.ArrivalDelayFactor = v
		return nil
	},
	"urgency": func(o *clustersched.Options, v float64) error {
		o.HighUrgencyFraction = v
		return nil
	},
	"ratio": func(o *clustersched.Options, v float64) error {
		o.DeadlineRatio = v
		return nil
	},
	"inaccuracy": func(o *clustersched.Options, v float64) error {
		o.InaccuracyPct = v
		return nil
	},
	"sigma": func(o *clustersched.Options, v float64) error {
		o.RiskSigmaThreshold = v
		return nil
	},
	"qops-slack": func(o *clustersched.Options, v float64) error {
		o.QoPSSlackFactor = v
		return nil
	},
	"nodes": func(o *clustersched.Options, v float64) error {
		if v != float64(int(v)) || v <= 0 {
			return fmt.Errorf("nodes value %g is not a positive integer", v)
		}
		o.Nodes = int(v)
		return nil
	},
	"jobs": func(o *clustersched.Options, v float64) error {
		if v != float64(int(v)) || v <= 0 {
			return fmt.Errorf("jobs value %g is not a positive integer", v)
		}
		o.Jobs = int(v)
		return nil
	},
}

func paramNames() []string {
	return []string{"adf", "urgency", "ratio", "inaccuracy", "sigma", "qops-slack", "nodes", "jobs"}
}

// parseValues parses the comma-separated -values list, reporting the
// 1-based position of the first unparseable or duplicate entry (a
// duplicate would silently re-run the same grid cell).
func parseValues(values string) ([]float64, error) {
	var xs []float64
	first := make(map[float64]int)
	for i, tok := range strings.Split(values, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("-values entry %d: bad value %q: %v", i+1, tok, err)
		}
		if at, dup := first[v]; dup {
			return nil, fmt.Errorf("-values entry %d: %g duplicates entry %d", i+1, v, at)
		}
		first[v] = i + 1
		xs = append(xs, v)
	}
	if len(xs) == 0 {
		return nil, fmt.Errorf("no sweep values")
	}
	return xs, nil
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	base := clustersched.DefaultOptions()
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	param := fs.String("param", "adf", "parameter to sweep: "+strings.Join(paramNames(), " | "))
	values := fs.String("values", "0.1,0.3,0.5,0.7,1.0", "comma-separated sweep values")
	policies := fs.String("policies", "edf,libra,librarisk", "comma-separated policies")
	nodes := fs.Int("nodes", base.Nodes, "cluster size (unless swept)")
	jobs := fs.Int("jobs", base.Jobs, "workload size (unless swept)")
	seed := fs.Uint64("seed", base.Seed, "workload seed")
	inacc := fs.Float64("inaccuracy", base.InaccuracyPct, "estimate inaccuracy %% (unless swept)")
	urgency := fs.Float64("urgency", base.HighUrgencyFraction, "high urgency fraction (unless swept)")
	csv := fs.Bool("csv", false, "emit CSV instead of an aligned table")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mutate, ok := sweepParams[*param]
	if !ok {
		return fmt.Errorf("unknown -param %q (want %s)", *param, strings.Join(paramNames(), " | "))
	}
	xs, err := parseValues(*values)
	if err != nil {
		return err
	}
	var pols []clustersched.Policy
	for _, tok := range strings.Split(*policies, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		pols = append(pols, clustersched.Policy(tok))
	}
	if len(pols) == 0 {
		return fmt.Errorf("no policies")
	}

	base.Nodes = *nodes
	base.Jobs = *jobs
	base.Seed = *seed
	base.InaccuracyPct = *inacc
	base.HighUrgencyFraction = *urgency
	base.QoPSSlackFactor = 2

	var batch []clustersched.Options
	for _, pol := range pols {
		for _, x := range xs {
			o := base
			o.Policy = pol
			if err := mutate(&o, x); err != nil {
				return err
			}
			batch = append(batch, o)
		}
	}
	results, err := clustersched.SimulateManyContext(ctx, batch)
	if err != nil {
		return err
	}

	if *csv {
		fmt.Fprintln(stdout, "param,value,policy,fulfilled_pct,avg_slowdown,rejected,missed")
		i := 0
		for _, pol := range pols {
			for _, x := range xs {
				s := results[i].Summary
				fmt.Fprintf(stdout, "%s,%g,%s,%.4f,%.4f,%d,%d\n",
					*param, x, pol, s.PctFulfilled, s.AvgSlowdownMet, s.Rejected, s.Missed)
				i++
			}
		}
		return nil
	}
	fmt.Fprintf(stdout, "sweep over %s (jobs %d, nodes swept or %d):\n\n", *param, base.Jobs, base.Nodes)
	fmt.Fprintf(stdout, "%-12s", *param)
	for _, pol := range pols {
		fmt.Fprintf(stdout, "  %22s", pol)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "%-12s", "")
	for range pols {
		fmt.Fprintf(stdout, "  %10s %11s", "fulfilled", "slowdown")
	}
	fmt.Fprintln(stdout)
	for xi, x := range xs {
		fmt.Fprintf(stdout, "%-12g", x)
		for pi := range pols {
			s := results[pi*len(xs)+xi].Summary
			fmt.Fprintf(stdout, "  %9.2f%% %11.2f", s.PctFulfilled, s.AvgSlowdownMet)
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
