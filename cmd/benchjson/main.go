// Command benchjson converts `go test -bench` text output into JSON, and
// optionally merges an old and a new run into a comparison with speedup
// and allocation-reduction ratios. It exists so the admission fast-path
// numbers can be committed as a machine-readable artifact
// (BENCH_admission.json) without requiring benchstat in the toolchain.
//
// With -gate it instead acts as a regression gate: a fresh bench run is
// compared against the committed JSON baseline and the command exits
// non-zero if any shared benchmark's ns/op or allocs/op exceeds the
// baseline by more than the configured ratios (`make bench-gate`).
//
// Examples:
//
//	go test -bench Admission -benchmem . | benchjson
//	benchjson -old results/bench_seed.txt -new results/bench_new.txt
//	benchjson -gate BENCH_admission.json -new results/bench_gate.txt \
//	    -max-ns-ratio 3 -max-alloc-ratio 1.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"clustersched/internal/cli"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Benchmark is one benchmark's aggregated result: the arithmetic mean
// over all its runs in the input (repeated runs via -count collapse to
// one entry) plus any custom metrics.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Comparison pairs an old and a new measurement of the same benchmark.
type Comparison struct {
	Name string     `json:"name"`
	Old  *Benchmark `json:"old,omitempty"`
	New  *Benchmark `json:"new,omitempty"`
	// Speedup is old ns/op divided by new ns/op (>1 means faster).
	Speedup *float64 `json:"speedup,omitempty"`
	// AllocRatio is old allocs/op divided by new allocs/op.
	AllocRatio *float64 `json:"alloc_ratio,omitempty"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline `go test -bench` output file to compare against")
	newPath := fs.String("new", "", "new `go test -bench` output file (default: stdin)")
	gatePath := fs.String("gate", "", "committed benchmark JSON baseline `file`: gate the new run against it instead of printing JSON")
	maxNsRatio := fs.Float64("max-ns-ratio", 0, "with -gate: fail when ns/op exceeds the baseline by more than this ratio (0 disables the time gate)")
	maxAllocRatio := fs.Float64("max-alloc-ratio", 0, "with -gate: fail when allocs/op exceeds the baseline by more than this ratio (0 disables the alloc gate)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to `file`")
	memprofile := fs.String("memprofile", "", "write a post-GC heap profile to `file` on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProfiles, err := cli.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	var newBenches []Benchmark
	if *newPath != "" {
		var err error
		if newBenches, err = parseFile(*newPath); err != nil {
			return err
		}
	} else {
		var err error
		if newBenches, err = Parse(stdin); err != nil {
			return err
		}
	}

	if *gatePath != "" {
		return gate(stdout, *gatePath, newBenches, *maxNsRatio, *maxAllocRatio)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if *oldPath == "" {
		return enc.Encode(newBenches)
	}
	oldBenches, err := parseFile(*oldPath)
	if err != nil {
		return err
	}
	return enc.Encode(Compare(oldBenches, newBenches))
}

func parseFile(path string) ([]Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads `go test -bench` output and aggregates repeated runs of
// each benchmark (arithmetic mean per metric).
func Parse(r io.Reader) ([]Benchmark, error) {
	type acc struct {
		runs    int
		ns      float64
		bytes   float64
		nBytes  int
		allocs  float64
		nAllocs int
		metrics map[string]float64
	}
	accs := map[string]*acc{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then metric pairs: value unit value unit ...
		if len(fields) < 4 {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		a := accs[name]
		if a == nil {
			a = &acc{metrics: map[string]float64{}}
			accs[name] = a
			order = append(order, name)
		}
		a.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.bytes += v
				a.nBytes++
			case "allocs/op":
				a.allocs += v
				a.nAllocs++
			default:
				a.metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		a := accs[name]
		b := Benchmark{Name: name, Runs: a.runs, NsPerOp: a.ns / float64(a.runs)}
		if a.nBytes > 0 {
			v := a.bytes / float64(a.nBytes)
			b.BytesPerOp = &v
		}
		if a.nAllocs > 0 {
			v := a.allocs / float64(a.nAllocs)
			b.AllocsPerOp = &v
		}
		for unit, sum := range a.metrics {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = sum / float64(a.runs)
		}
		out = append(out, b)
	}
	return out, nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// loadBaseline reads a committed benchmark JSON artifact. It accepts both
// shapes benchjson emits: a plain []Benchmark, or a []Comparison — in
// which case each entry's "new" side (the performance the artifact
// certifies) is the baseline, falling back to "old" for benchmarks that
// only exist on that side.
func loadBaseline(path string) (map[string]*Benchmark, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]*Benchmark{}
	var comps []Comparison
	if err := json.Unmarshal(data, &comps); err == nil {
		any := false
		for i := range comps {
			c := &comps[i]
			switch {
			case c.New != nil:
				out[c.Name] = c.New
				any = true
			case c.Old != nil:
				out[c.Name] = c.Old
				any = true
			}
		}
		if any {
			return out, nil
		}
	}
	var benches []Benchmark
	if err := json.Unmarshal(data, &benches); err != nil {
		return nil, fmt.Errorf("%s: neither a comparison nor a benchmark list: %w", path, err)
	}
	for i := range benches {
		out[benches[i].Name] = &benches[i]
	}
	return out, nil
}

// gate compares a fresh run against the committed baseline and fails on
// any regression beyond the configured ratios. Benchmarks present on only
// one side are reported but never fail the gate, so adding or retiring a
// benchmark does not require touching the baseline in the same change.
func gate(stdout io.Writer, baselinePath string, fresh []Benchmark, maxNsRatio, maxAllocRatio float64) error {
	baseline, err := loadBaseline(baselinePath)
	if err != nil {
		return err
	}
	if maxNsRatio == 0 && maxAllocRatio == 0 {
		return fmt.Errorf("gate: both thresholds disabled; set -max-ns-ratio and/or -max-alloc-ratio")
	}
	var failures []string
	compared := 0
	for i := range fresh {
		nb := &fresh[i]
		ob := baseline[nb.Name]
		if ob == nil {
			fmt.Fprintf(stdout, "gate: %-45s not in baseline, skipped\n", nb.Name)
			continue
		}
		compared++
		status := "ok"
		if maxNsRatio > 0 && ob.NsPerOp > 0 {
			if r := nb.NsPerOp / ob.NsPerOp; r > maxNsRatio {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: ns/op %.0f vs baseline %.0f (%.2fx > %.2fx)",
					nb.Name, nb.NsPerOp, ob.NsPerOp, r, maxNsRatio))
			}
		}
		if maxAllocRatio > 0 && ob.AllocsPerOp != nil && nb.AllocsPerOp != nil && *ob.AllocsPerOp > 0 {
			if r := *nb.AllocsPerOp / *ob.AllocsPerOp; r > maxAllocRatio {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.0f vs baseline %.0f (%.2fx > %.2fx)",
					nb.Name, *nb.AllocsPerOp, *ob.AllocsPerOp, r, maxAllocRatio))
			}
		}
		nsRatio := 0.0
		if ob.NsPerOp > 0 {
			nsRatio = nb.NsPerOp / ob.NsPerOp
		}
		allocNote := ""
		if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil && *ob.AllocsPerOp > 0 {
			allocNote = fmt.Sprintf("  allocs %.2fx", *nb.AllocsPerOp / *ob.AllocsPerOp)
		}
		fmt.Fprintf(stdout, "gate: %-45s ns %.2fx%s  %s\n", nb.Name, nsRatio, allocNote, status)
	}
	if compared == 0 {
		return fmt.Errorf("gate: no benchmark shared between the run and %s", baselinePath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate: %d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(stdout, "gate: %d benchmark(s) within thresholds (ns %.2fx, allocs %.2fx)\n",
		compared, maxNsRatio, maxAllocRatio)
	return nil
}

// Compare pairs benchmarks by name. Benchmarks present on only one side
// appear with the other side nil and no ratios.
func Compare(oldB, newB []Benchmark) []Comparison {
	oldByName := map[string]*Benchmark{}
	for i := range oldB {
		oldByName[oldB[i].Name] = &oldB[i]
	}
	newByName := map[string]*Benchmark{}
	var names []string
	seen := map[string]bool{}
	for i := range newB {
		newByName[newB[i].Name] = &newB[i]
		names = append(names, newB[i].Name)
		seen[newB[i].Name] = true
	}
	var oldOnly []string
	for i := range oldB {
		if !seen[oldB[i].Name] {
			oldOnly = append(oldOnly, oldB[i].Name)
		}
	}
	sort.Strings(oldOnly)
	names = append(names, oldOnly...)

	out := make([]Comparison, 0, len(names))
	for _, name := range names {
		c := Comparison{Name: name, Old: oldByName[name], New: newByName[name]}
		if c.Old != nil && c.New != nil {
			if c.New.NsPerOp > 0 {
				v := c.Old.NsPerOp / c.New.NsPerOp
				c.Speedup = &v
			}
			if c.Old.AllocsPerOp != nil && c.New.AllocsPerOp != nil && *c.New.AllocsPerOp > 0 {
				v := *c.Old.AllocsPerOp / *c.New.AllocsPerOp
				c.AllocRatio = &v
			}
		}
		out = append(out, c)
	}
	return out
}
