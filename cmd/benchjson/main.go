// Command benchjson converts `go test -bench` text output into JSON, and
// optionally merges an old and a new run into a comparison with speedup
// and allocation-reduction ratios. It exists so the admission fast-path
// numbers can be committed as a machine-readable artifact
// (BENCH_admission.json) without requiring benchstat in the toolchain.
//
// Examples:
//
//	go test -bench Admission -benchmem . | benchjson
//	benchjson -old results/bench_seed.txt -new results/bench_new.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Benchmark is one benchmark's aggregated result: the arithmetic mean
// over all its runs in the input (repeated runs via -count collapse to
// one entry) plus any custom metrics.
type Benchmark struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Comparison pairs an old and a new measurement of the same benchmark.
type Comparison struct {
	Name string     `json:"name"`
	Old  *Benchmark `json:"old,omitempty"`
	New  *Benchmark `json:"new,omitempty"`
	// Speedup is old ns/op divided by new ns/op (>1 means faster).
	Speedup *float64 `json:"speedup,omitempty"`
	// AllocRatio is old allocs/op divided by new allocs/op.
	AllocRatio *float64 `json:"alloc_ratio,omitempty"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	oldPath := fs.String("old", "", "baseline `go test -bench` output file to compare against")
	newPath := fs.String("new", "", "new `go test -bench` output file (default: stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var newBenches []Benchmark
	if *newPath != "" {
		var err error
		if newBenches, err = parseFile(*newPath); err != nil {
			return err
		}
	} else {
		var err error
		if newBenches, err = Parse(stdin); err != nil {
			return err
		}
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if *oldPath == "" {
		return enc.Encode(newBenches)
	}
	oldBenches, err := parseFile(*oldPath)
	if err != nil {
		return err
	}
	return enc.Encode(Compare(oldBenches, newBenches))
}

func parseFile(path string) ([]Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Parse reads `go test -bench` output and aggregates repeated runs of
// each benchmark (arithmetic mean per metric).
func Parse(r io.Reader) ([]Benchmark, error) {
	type acc struct {
		runs    int
		ns      float64
		bytes   float64
		nBytes  int
		allocs  float64
		nAllocs int
		metrics map[string]float64
	}
	accs := map[string]*acc{}
	var order []string

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then metric pairs: value unit value unit ...
		if len(fields) < 4 {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue
		}
		a := accs[name]
		if a == nil {
			a = &acc{metrics: map[string]float64{}}
			accs[name] = a
			order = append(order, name)
		}
		a.runs++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				a.ns += v
			case "B/op":
				a.bytes += v
				a.nBytes++
			case "allocs/op":
				a.allocs += v
				a.nAllocs++
			default:
				a.metrics[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := make([]Benchmark, 0, len(order))
	for _, name := range order {
		a := accs[name]
		b := Benchmark{Name: name, Runs: a.runs, NsPerOp: a.ns / float64(a.runs)}
		if a.nBytes > 0 {
			v := a.bytes / float64(a.nBytes)
			b.BytesPerOp = &v
		}
		if a.nAllocs > 0 {
			v := a.allocs / float64(a.nAllocs)
			b.AllocsPerOp = &v
		}
		for unit, sum := range a.metrics {
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = sum / float64(a.runs)
		}
		out = append(out, b)
	}
	return out, nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix go test appends.
func trimProcSuffix(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Compare pairs benchmarks by name. Benchmarks present on only one side
// appear with the other side nil and no ratios.
func Compare(oldB, newB []Benchmark) []Comparison {
	oldByName := map[string]*Benchmark{}
	for i := range oldB {
		oldByName[oldB[i].Name] = &oldB[i]
	}
	newByName := map[string]*Benchmark{}
	var names []string
	seen := map[string]bool{}
	for i := range newB {
		newByName[newB[i].Name] = &newB[i]
		names = append(names, newB[i].Name)
		seen[newB[i].Name] = true
	}
	var oldOnly []string
	for i := range oldB {
		if !seen[oldB[i].Name] {
			oldOnly = append(oldOnly, oldB[i].Name)
		}
	}
	sort.Strings(oldOnly)
	names = append(names, oldOnly...)

	out := make([]Comparison, 0, len(names))
	for _, name := range names {
		c := Comparison{Name: name, Old: oldByName[name], New: newByName[name]}
		if c.Old != nil && c.New != nil {
			if c.New.NsPerOp > 0 {
				v := c.Old.NsPerOp / c.New.NsPerOp
				c.Speedup = &v
			}
			if c.Old.AllocsPerOp != nil && c.New.AllocsPerOp != nil && *c.New.AllocsPerOp > 0 {
				v := *c.Old.AllocsPerOp / *c.New.AllocsPerOp
				c.AllocRatio = &v
			}
		}
		out = append(out, c)
	}
	return out
}
