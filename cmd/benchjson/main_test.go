package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: clustersched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAdmissionRiskScan2-8    	   50000	     23142 ns/op	     160 B/op	       3 allocs/op
BenchmarkAdmissionRiskScan2-8    	   50000	     23858 ns/op	     160 B/op	       3 allocs/op
BenchmarkAdmissionLibraShareScan-8	  800000	      1468 ns/op	       0 B/op	       0 allocs/op
BenchmarkPolicyLibraRiskFullScale 	      15	  72000000 ns/op	         0.8407 fulfilled-frac	 41000000 B/op	  226633 allocs/op
PASS
`

func TestParseAggregatesRuns(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkAdmissionRiskScan2" {
		t.Fatalf("name = %q (proc suffix not trimmed?)", b.Name)
	}
	if b.Runs != 2 {
		t.Fatalf("runs = %d, want 2", b.Runs)
	}
	if want := (23142.0 + 23858.0) / 2; b.NsPerOp != want {
		t.Fatalf("ns/op = %g, want %g", b.NsPerOp, want)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Fatalf("allocs/op = %v, want 3", b.AllocsPerOp)
	}
	full := benches[2]
	if full.Metrics["fulfilled-frac"] != 0.8407 {
		t.Fatalf("custom metric = %v", full.Metrics)
	}
}

func TestCompareRatios(t *testing.T) {
	oldB, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 1000 ns/op 100 B/op 50 allocs/op\nBenchmarkGone-8 10 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	newB, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 200 ns/op 10 B/op 5 allocs/op\nBenchmarkNew-8 10 7 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare(oldB, newB)
	if len(cmp) != 3 {
		t.Fatalf("comparisons = %d, want 3", len(cmp))
	}
	x := cmp[0]
	if x.Name != "BenchmarkX" || x.Speedup == nil || *x.Speedup != 5 {
		t.Fatalf("X speedup = %+v", x)
	}
	if x.AllocRatio == nil || *x.AllocRatio != 10 {
		t.Fatalf("X alloc ratio = %+v", x.AllocRatio)
	}
	if cmp[1].Name != "BenchmarkNew" || cmp[1].Old != nil || cmp[1].Speedup != nil {
		t.Fatalf("new-only entry = %+v", cmp[1])
	}
	if cmp[2].Name != "BenchmarkGone" || cmp[2].New != nil {
		t.Fatalf("old-only entry = %+v", cmp[2])
	}
}

func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"BenchmarkAdmissionRiskScan2"`, `"ns_per_op"`, `"fulfilled-frac"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %s:\n%s", want, out)
		}
	}
}
