package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: clustersched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAdmissionRiskScan2-8    	   50000	     23142 ns/op	     160 B/op	       3 allocs/op
BenchmarkAdmissionRiskScan2-8    	   50000	     23858 ns/op	     160 B/op	       3 allocs/op
BenchmarkAdmissionLibraShareScan-8	  800000	      1468 ns/op	       0 B/op	       0 allocs/op
BenchmarkPolicyLibraRiskFullScale 	      15	  72000000 ns/op	         0.8407 fulfilled-frac	 41000000 B/op	  226633 allocs/op
PASS
`

func TestParseAggregatesRuns(t *testing.T) {
	benches, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("benchmarks = %d, want 3", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkAdmissionRiskScan2" {
		t.Fatalf("name = %q (proc suffix not trimmed?)", b.Name)
	}
	if b.Runs != 2 {
		t.Fatalf("runs = %d, want 2", b.Runs)
	}
	if want := (23142.0 + 23858.0) / 2; b.NsPerOp != want {
		t.Fatalf("ns/op = %g, want %g", b.NsPerOp, want)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Fatalf("allocs/op = %v, want 3", b.AllocsPerOp)
	}
	full := benches[2]
	if full.Metrics["fulfilled-frac"] != 0.8407 {
		t.Fatalf("custom metric = %v", full.Metrics)
	}
}

func TestCompareRatios(t *testing.T) {
	oldB, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 1000 ns/op 100 B/op 50 allocs/op\nBenchmarkGone-8 10 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	newB, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 200 ns/op 10 B/op 5 allocs/op\nBenchmarkNew-8 10 7 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare(oldB, newB)
	if len(cmp) != 3 {
		t.Fatalf("comparisons = %d, want 3", len(cmp))
	}
	x := cmp[0]
	if x.Name != "BenchmarkX" || x.Speedup == nil || *x.Speedup != 5 {
		t.Fatalf("X speedup = %+v", x)
	}
	if x.AllocRatio == nil || *x.AllocRatio != 10 {
		t.Fatalf("X alloc ratio = %+v", x.AllocRatio)
	}
	if cmp[1].Name != "BenchmarkNew" || cmp[1].Old != nil || cmp[1].Speedup != nil {
		t.Fatalf("new-only entry = %+v", cmp[1])
	}
	if cmp[2].Name != "BenchmarkGone" || cmp[2].New != nil {
		t.Fatalf("old-only entry = %+v", cmp[2])
	}
}

func TestGateAgainstComparisonBaseline(t *testing.T) {
	// Baseline in the committed BENCH_admission.json shape: a comparison
	// whose "new" side certifies the current performance.
	dir := t.TempDir()
	baseline := dir + "/baseline.json"
	baselineRun, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 1000 ns/op 100 B/op 50 allocs/op\n" +
			"BenchmarkY-8 10 400 ns/op 0 B/op 0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	writeJSON := func(path string, v any) {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeJSON(baseline, Compare(nil, baselineRun))

	gateRun := func(bench string, nsRatio, allocRatio float64) error {
		freshPath := dir + "/fresh.txt"
		if err := os.WriteFile(freshPath, []byte(bench), 0o644); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		return run([]string{
			"-gate", baseline, "-new", freshPath,
			"-max-ns-ratio", fmt.Sprint(nsRatio), "-max-alloc-ratio", fmt.Sprint(allocRatio),
		}, nil, &sb)
	}

	// Within thresholds: same numbers plus a benchmark unknown to the
	// baseline, which must be skipped rather than failed.
	ok := "BenchmarkX-8 10 1100 ns/op 100 B/op 50 allocs/op\nBenchmarkBrandNew-8 10 7 ns/op\n"
	if err := gateRun(ok, 1.5, 1.1); err != nil {
		t.Fatalf("gate failed within thresholds: %v", err)
	}
	// Time regression beyond the ratio.
	if err := gateRun("BenchmarkX-8 10 2000 ns/op 100 B/op 50 allocs/op\n", 1.5, 1.1); err == nil {
		t.Fatal("gate passed a 2x time regression with -max-ns-ratio 1.5")
	}
	// Alloc regression with the time gate disabled.
	if err := gateRun("BenchmarkX-8 10 2000 ns/op 100 B/op 80 allocs/op\n", 0, 1.1); err == nil {
		t.Fatal("gate passed a 1.6x alloc regression with -max-alloc-ratio 1.1")
	}
	// Both thresholds disabled is a configuration error, not a pass.
	if err := gateRun(ok, 0, 0); err == nil {
		t.Fatal("gate accepted both thresholds disabled")
	}

	// Plain []Benchmark baselines (benchjson output without -old) gate
	// identically.
	writeJSON(baseline, baselineRun)
	if err := gateRun(ok, 1.5, 1.1); err != nil {
		t.Fatalf("gate failed against a plain benchmark-list baseline: %v", err)
	}
}

func TestRunEndToEnd(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, strings.NewReader(sample), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"BenchmarkAdmissionRiskScan2"`, `"ns_per_op"`, `"fulfilled-frac"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %s:\n%s", want, out)
		}
	}
}
