// Command servetrace analyzes serving-path request spans from the
// admission server (cmd/admissiond with -spans): the JSON payload of
// GET /debug/spans, or a JSONL stream of individual spans. It is the
// serving-side sibling of cmd/tracedump, which reads simulation traces.
//
// For each pipeline stage (prep, queue, gather, append, advance,
// decide, commit, ack) it prints count, p50/p90/p99/max latency, and
// the stage's share of total traced wall time; then a critical-path
// attribution — for each request, which stage dominated — so "the p99
// is fsync wait, not queueing" is one command away. The coverage line
// reports how much of the traced wall time the named stages explain;
// -min-coverage turns it into a gate that exits nonzero below the
// floor (the repo's acceptance bar is 0.95).
//
// -chrome exports the spans as a Chrome trace_event document: one
// track per stage, each request's stages laid end-to-end from its
// start timestamp, so the WAL group-commit pipeline overlap (the
// append of one batch riding under the fsync of the previous) is
// visible in chrome://tracing or Perfetto.
//
// Examples:
//
//	curl -s localhost:8080/debug/spans?n=1024 | servetrace -
//	servetrace -min-coverage 0.95 spans.json
//	servetrace -tenant acme -outcome quota spans.json
//	servetrace -chrome pipeline.json spans.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"clustersched/internal/obs/span"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "servetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("servetrace", flag.ContinueOnError)
	tenant := fs.String("tenant", "", "only spans of this tenant")
	outcome := fs.String("outcome", "", "only spans with this outcome (e.g. accepted, quota, shed-all)")
	kind := fs.String("kind", "", "only spans of this kind (admit or node)")
	top := fs.Int("top", 5, "how many slowest requests to list")
	minCoverage := fs.Float64("min-coverage", 0, "exit nonzero unless stages attribute at least this fraction of traced wall time")
	chromePath := fs.String("chrome", "", "write a Chrome trace_event `file` of the span pipeline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no input: pass span files (/debug/spans JSON or span JSONL), or - for stdin")
	}
	var spans []span.JSON
	for _, path := range fs.Args() {
		got, err := readSpans(path)
		if err != nil {
			return err
		}
		spans = append(spans, got...)
	}
	total := len(spans)
	spans = filterSpans(spans, *tenant, *outcome, *kind)
	if len(spans) == 0 {
		return fmt.Errorf("no spans matched (%d read)", total)
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartNano < spans[j].StartNano })

	coverage := report(stdout, spans, total, *top)
	if *chromePath != "" {
		if err := writeChrome(*chromePath, spans); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nchrome trace: %s (%d spans)\n", *chromePath, len(spans))
	}
	if coverage < *minCoverage {
		return fmt.Errorf("stage coverage %.1f%% below floor %.1f%%", coverage*100, *minCoverage*100)
	}
	return nil
}

// readSpans loads one input: a span.Payload document (the /debug/spans
// response — detected by its leading '{'), or a JSONL stream with one
// span.JSON per line. "-" reads stdin.
func readSpans(path string) ([]span.JSON, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	first, err := firstByte(br)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if first == '{' {
		// Distinguish a payload document from single-span JSONL by the
		// first decoded object: a payload has no "outcome".
		dec := json.NewDecoder(br)
		var raw map[string]json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if _, isSpan := raw["outcome"]; !isSpan {
			return decodePayload(path, raw)
		}
		// JSONL: re-decode the first object as a span, then stream.
		var sp span.JSON
		if err := reunmarshal(raw, &sp); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		spans := []span.JSON{sp}
		for {
			var sp span.JSON
			if err := dec.Decode(&sp); err == io.EOF {
				return spans, nil
			} else if err != nil {
				return nil, fmt.Errorf("%s: span %d: %w", path, len(spans)+1, err)
			}
			spans = append(spans, sp)
		}
	}
	return nil, fmt.Errorf("%s: not a span payload or JSONL (starts with %q)", path, first)
}

func firstByte(br *bufio.Reader) (byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return 0, err
		}
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return 0, err
		}
		return b, nil
	}
}

// decodePayload extracts every span list a /debug/spans payload
// carries, deduplicating by (start, seq, kind) since the slowest-K
// lists repeat members of the recent window.
func decodePayload(path string, raw map[string]json.RawMessage) ([]span.JSON, error) {
	var p span.Payload
	if err := reunmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	type key struct {
		start int64
		seq   int
		kind  string
	}
	seen := make(map[key]bool)
	var spans []span.JSON
	add := func(list []span.JSON) {
		for _, sp := range list {
			k := key{sp.StartNano, sp.Seq, sp.Kind}
			if !seen[k] {
				seen[k] = true
				spans = append(spans, sp)
			}
		}
	}
	add(p.Spans)
	add(p.SlowestTotal)
	for _, list := range p.SlowestByStage {
		add(list)
	}
	if len(spans) == 0 && !p.Enabled {
		return nil, fmt.Errorf("%s: spans disabled on the server (run admissiond with -spans)", path)
	}
	return spans, nil
}

// reunmarshal round-trips an already-decoded raw object into dst.
func reunmarshal(raw map[string]json.RawMessage, dst any) error {
	b, err := json.Marshal(raw)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, dst)
}

func filterSpans(spans []span.JSON, tenant, outcome, kind string) []span.JSON {
	out := spans[:0]
	for _, sp := range spans {
		if tenant != "" && sp.Tenant != tenant {
			continue
		}
		if outcome != "" && sp.Outcome != outcome {
			continue
		}
		if kind != "" && sp.Kind != kind {
			continue
		}
		out = append(out, sp)
	}
	return out
}

// report prints the stage table, critical-path attribution and slowest
// requests, returning the stage coverage fraction.
func report(w io.Writer, spans []span.JSON, read, top int) float64 {
	names := span.Names()
	byStage := make(map[string][]float64, len(names))
	stageSum := make(map[string]float64, len(names))
	domCount := make(map[string]int, len(names))
	domSum := make(map[string]float64, len(names))
	var totalWall, coveredWall float64
	for _, sp := range spans {
		totalWall += sp.TotalSec
		domStage, domV := "", -1.0
		var sum float64
		for st, v := range sp.Stages {
			byStage[st] = append(byStage[st], v)
			stageSum[st] += v
			sum += v
			if v > domV {
				domStage, domV = st, v
			}
		}
		coveredWall += sum
		if domStage != "" {
			domCount[domStage]++
			domSum[domStage] += sp.TotalSec
		}
	}

	fmt.Fprintf(w, "spans: %d analyzed of %d read, %s traced wall time\n\n", len(spans), read, fmtDur(totalWall))
	fmt.Fprintf(w, "%-8s %7s %10s %10s %10s %10s %7s\n", "stage", "count", "p50", "p90", "p99", "max", "share")
	for _, st := range names {
		vals := byStage[st]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		share := 0.0
		if totalWall > 0 {
			share = stageSum[st] / totalWall
		}
		fmt.Fprintf(w, "%-8s %7d %10s %10s %10s %10s %6.1f%%\n",
			st, len(vals),
			fmtDur(quantile(vals, 0.50)), fmtDur(quantile(vals, 0.90)),
			fmtDur(quantile(vals, 0.99)), fmtDur(vals[len(vals)-1]), share*100)
	}

	fmt.Fprintf(w, "\ncritical path (dominant stage per request):\n")
	for _, st := range names {
		if domCount[st] == 0 {
			continue
		}
		share := 0.0
		if totalWall > 0 {
			share = domSum[st] / totalWall
		}
		fmt.Fprintf(w, "  %-8s dominates %5d requests (%5.1f%% of traced time)\n", st, domCount[st], share*100)
	}

	coverage := 1.0
	if totalWall > 0 {
		coverage = coveredWall / totalWall
	}
	fmt.Fprintf(w, "\ncoverage: stages attribute %.1f%% of traced wall time\n", coverage*100)

	if top > 0 {
		slow := append([]span.JSON(nil), spans...)
		sort.SliceStable(slow, func(i, j int) bool { return slow[i].TotalSec > slow[j].TotalSec })
		if len(slow) > top {
			slow = slow[:top]
		}
		fmt.Fprintf(w, "\nslowest %d requests:\n", len(slow))
		for _, sp := range slow {
			extra := ""
			if sp.WALIndex > 0 {
				extra = fmt.Sprintf(" wal=%d", sp.WALIndex)
			}
			fmt.Fprintf(w, "  %10s %-6s %-10s tenant=%s%s %s\n",
				fmtDur(sp.TotalSec), sp.Kind, sp.Outcome, orNone(sp.Tenant), extra, stageBreakdown(sp))
		}
	}
	return coverage
}

// quantile is the nearest-rank quantile of an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func orNone(tenant string) string {
	if tenant == "" {
		return "none"
	}
	return tenant
}

// stageBreakdown renders a span's nonzero stages in pipeline order.
func stageBreakdown(sp span.JSON) string {
	var b strings.Builder
	for _, st := range span.Names() {
		if v, ok := sp.Stages[st]; ok {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%s", st, fmtDur(v))
		}
	}
	return b.String()
}

// fmtDur renders seconds with an adaptive unit.
func fmtDur(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.2fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s > 0:
		return fmt.Sprintf("%.0fns", s*1e9)
	}
	return "0"
}

// chromeEvent is the subset of the Chrome trace_event format the repo's
// validators (obs.ValidateChromeTrace, tracedump -chrome) accept.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// writeChrome lays each span's stages end-to-end from its start
// timestamp, one track (tid) per stage, so concurrent requests overlap
// vertically: the WAL pipeline shows as append events riding under the
// previous batch's commit (fsync) events.
func writeChrome(path string, spans []span.JSON) error {
	names := span.Names()
	track := make(map[string]int, len(names))
	out := []chromeEvent{{Name: "process_name", Phase: "M", Pid: 1,
		Args: map[string]any{"name": "admissiond serving path"}}}
	for i, st := range names {
		track[st] = i + 1
		out = append(out, chromeEvent{Name: "thread_name", Phase: "M", Pid: 1, Tid: i + 1,
			Args: map[string]any{"name": st}})
	}
	base := spans[0].StartNano
	for _, sp := range spans {
		ts := float64(sp.StartNano-base) / 1e3 // ns -> µs
		for _, st := range names {
			v, ok := sp.Stages[st]
			if !ok {
				continue
			}
			args := map[string]any{"seq": sp.Seq, "outcome": sp.Outcome}
			if sp.Tenant != "" {
				args["tenant"] = sp.Tenant
			}
			if sp.WALIndex > 0 {
				args["wal_index"] = sp.WALIndex
			}
			out = append(out, chromeEvent{
				Name:  st,
				Phase: "X",
				Ts:    ts,
				Dur:   v * 1e6,
				Pid:   1,
				Tid:   track[st],
				Args:  args,
			})
			ts += v * 1e6
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
