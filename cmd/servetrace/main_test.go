package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustersched/internal/obs"
	"clustersched/internal/obs/span"
)

// sampleSpans is a tiny durable-pipeline trace: two admits through the
// full WAL path (one fsync-dominated), plus a quota refusal.
func sampleSpans() []span.JSON {
	return []span.JSON{
		{
			Seq: 1, Kind: "admit", Tenant: "acme", Outcome: "accepted",
			StartNano: 1_000_000, TotalSec: 0.010, WALIndex: 7,
			Stages: map[string]float64{
				"prep": 0.0001, "queue": 0.0009, "gather": 0.0005,
				"append": 0.001, "advance": 0.0005, "decide": 0.0005,
				"commit": 0.006, "ack": 0.0005,
			},
		},
		{
			Seq: 2, Kind: "admit", Tenant: "acme", Outcome: "rejected",
			StartNano: 2_000_000, TotalSec: 0.004, WALIndex: 8,
			Stages: map[string]float64{
				"prep": 0.0001, "queue": 0.0024, "gather": 0.0002,
				"append": 0.0003, "advance": 0.0002, "decide": 0.0002,
				"commit": 0.0005, "ack": 0.0001,
			},
		},
		{
			Kind: "admit", Tenant: "zeta", Outcome: "quota",
			StartNano: 3_000_000, TotalSec: 0.0002,
			Stages: map[string]float64{"prep": 0.0002},
		},
	}
}

func writePayload(t *testing.T, spans []span.JSON) string {
	t.Helper()
	p := span.Payload{
		Enabled: true, Count: len(spans), Recorded: uint64(len(spans)),
		Spans:        spans,
		SlowestTotal: spans[:1], // duplicates must be deduplicated
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spans.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPayloadReport(t *testing.T) {
	path := writePayload(t, sampleSpans())
	var out bytes.Buffer
	if err := run([]string{"-min-coverage", "0.95", path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"spans: 3 analyzed of 3 read",
		"commit", "queue", "prep",
		"critical path",
		"commit   dominates     1 requests",
		"queue    dominates     1 requests",
		"coverage: stages attribute 100.0%",
		"wal=7",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestJSONLInput(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, sp := range sampleSpans() {
		if err := enc.Encode(sp); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "spans: 3 analyzed of 3 read") {
		t.Errorf("JSONL input not fully read:\n%s", out.String())
	}
}

func TestFilters(t *testing.T) {
	path := writePayload(t, sampleSpans())
	var out bytes.Buffer
	if err := run([]string{"-tenant", "zeta", path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "spans: 1 analyzed of 3 read") {
		t.Errorf("tenant filter:\n%s", out.String())
	}
	if err := run([]string{"-outcome", "nope", path}, &out); err == nil {
		t.Error("filter matching nothing should error")
	}
}

func TestMinCoverageGate(t *testing.T) {
	// A span with a large unexplained gap: stages cover 50%.
	gappy := []span.JSON{{
		Kind: "admit", Outcome: "accepted", StartNano: 1, TotalSec: 0.010,
		Stages: map[string]float64{"prep": 0.005},
	}}
	path := writePayload(t, gappy)
	var out bytes.Buffer
	err := run([]string{"-min-coverage", "0.95", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "coverage") {
		t.Fatalf("gate did not trip: err=%v", err)
	}
	if err := run([]string{"-min-coverage", "0.40", path}, &out); err != nil {
		t.Fatalf("gate tripped below floor: %v", err)
	}
}

func TestChromeExportValidates(t *testing.T) {
	path := writePayload(t, sampleSpans())
	chrome := filepath.Join(t.TempDir(), "pipeline.json")
	var out bytes.Buffer
	if err := run([]string{"-chrome", chrome, path}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(chrome)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := obs.ValidateChromeTrace(f)
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	// 1 process_name + 8 thread_name metadata + 8+8+1 stage slices.
	if n < 17 {
		t.Errorf("chrome trace has %d events, want ≥ 17", n)
	}
}
