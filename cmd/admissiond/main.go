// Command admissiond serves online deadline-constrained admission
// control over HTTP: the EDF/Libra/LibraRisk policies wrapped around a
// live virtual-time cluster, with per-tenant quotas, admission-queue
// backpressure, a load-shedding ladder, Prometheus metrics on /metrics,
// an audit JSONL stream, and graceful drain with checkpoint/resume.
//
// Examples:
//
//	admissiond -addr :8080 -policy librarisk -nodes 128
//	admissiond -addr :8080 -quota-rate 10 -quota-burst 50 -audit audit.jsonl
//	admissiond -addr 127.0.0.1:0 -time-scale 0 -checkpoint d.ckpt -resume
//	admissiond -addr 127.0.0.1:0 -durable /var/lib/admissiond/wal -resume
//	admissiond -addr 127.0.0.1:0 -spans   # per-request tracing on /debug/spans
//
// SIGTERM (or SIGINT) starts the drain: intake stops, queued requests
// are decided, the audit stream is flushed, the checkpoint is written,
// and the process exits 0. A second signal force-kills a stuck drain.
//
// With -durable DIR every applied operation is committed to a
// crash-consistent write-ahead log before its HTTP response, so even
// SIGKILL or power loss cannot lose an acknowledged admission; -resume
// replays the log (truncating any torn tail) on the next boot.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"clustersched/internal/cli"
	"clustersched/internal/serve"
)

func main() {
	cli.MainServer("admissiond", run)
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("admissiond", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	policy := fs.String("policy", "librarisk", "admission control: edf | libra | librarisk")
	nodes := fs.Int("nodes", 128, "computation nodes")
	rating := fs.Float64("rating", 168, "SPEC rating per node")
	sigma := fs.Float64("sigma", 0, "LibraRisk σ threshold (0 = paper's zero-risk rule)")
	timeScale := fs.Float64("time-scale", 1, "virtual seconds per wall second (0 = request-driven clock)")
	queueDepth := fs.Int("queue-depth", 256, "admission queue bound")
	reqTimeout := fs.Duration("request-timeout", 5*time.Second, "per-request admission deadline")
	quotaRate := fs.Float64("quota-rate", 0, "per-tenant sustained admissions/sec (0 with no burst = unlimited)")
	quotaBurst := fs.Float64("quota-burst", 0, "per-tenant burst credit (bucket depth)")
	admitWorkers := fs.Int("admit-workers", 0, "shard-pool workers for the admission node scan (0/1 = serial)")
	serveShards := fs.Int("serve-shards", 0, "shard engines for the serving cluster: completion advancement and the admit scan fan out across this many workers (0/1 = sequential)")
	auditPath := fs.String("audit", "", "stream admission decisions to this JSONL file")
	ckptPath := fs.String("checkpoint", "", "write the drain checkpoint to this file")
	resume := fs.Bool("resume", false, "replay the checkpoint or WAL at startup when one exists")
	durableDir := fs.String("durable", "", "write-ahead log directory: fsync every op before its response (crash-consistent mode)")
	walSegBytes := fs.Int64("wal-segment-bytes", 0, "WAL segment size before rotation (0 = default 4MiB)")
	walSyncBytes := fs.Int64("wal-sync-bytes", 0, "unsynced WAL bytes that force a commit (0 = default 256KiB, negative = unbounded)")
	walGroupWait := fs.Duration("wal-group-wait", 0, "group-commit window: wait this long for more ops to share an fsync")
	spans := fs.Bool("spans", false, "trace every request through the serving pipeline: /debug/spans, per-stage /metrics histograms (analyze with servetrace)")
	spanBuffer := fs.Int("span-buffer", 0, "finished spans kept in the /debug/spans ring (0 = default 4096)")
	tenantLabels := fs.Int("tenant-labels", 0, "distinct tenants given their own /metrics series before folding into \"other\" (0 = default 32)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := serve.Config{
		Policy:          *policy,
		Nodes:           *nodes,
		Rating:          *rating,
		SigmaThreshold:  *sigma,
		TimeScale:       *timeScale,
		QueueDepth:      *queueDepth,
		RequestTimeout:  *reqTimeout,
		QuotaRate:       *quotaRate,
		QuotaBurst:      *quotaBurst,
		AdmitWorkers:    *admitWorkers,
		Shards:          *serveShards,
		CheckpointPath:  *ckptPath,
		Resume:          *resume,
		WALDir:          *durableDir,
		WALSegmentBytes: *walSegBytes,
		WALSyncBytes:    *walSyncBytes,
		WALGroupWait:    *walGroupWait,
		Spans:           *spans,
		SpanBuffer:      *spanBuffer,
		TenantLabels:    *tenantLabels,
		// Shed-ladder transitions are operator events: timestamped lines
		// on stderr, away from the machine-parsed stdout.
		ShedLog: os.Stderr,
	}
	var auditFile *os.File
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("admissiond: %w", err)
		}
		auditFile = f
		defer auditFile.Close()
		cfg.Audit = f
	}

	s, err := serve.New(cfg)
	if err != nil {
		return err
	}
	if *durableDir != "" {
		// Machine-parsed by the crash-fuzz harness: keep its shape stable.
		recs, trunc := s.WALRecovery()
		fmt.Fprintf(stdout, "admissiond: recovered %d ops from WAL (%d bytes truncated)\n", recs, trunc)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		_ = s.Close()
		return fmt.Errorf("admissiond: %w", err)
	}
	// The listening line is machine-parsed (serve-smoke, admitload
	// scripts): keep its shape stable.
	fmt.Fprintf(stdout, "admissiond: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		_ = s.Close()
		return fmt.Errorf("admissiond: %w", err)
	case <-ctx.Done():
	}

	// Graceful drain: finish queued admissions and checkpoint first (the
	// in-flight handlers are waiting on those decisions), then close the
	// HTTP side.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(dctx)
	shutErr := hs.Shutdown(dctx)
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("admissiond: %w", err)
	}
	if drainErr != nil {
		return drainErr
	}
	if shutErr != nil {
		return fmt.Errorf("admissiond: shutdown: %w", shutErr)
	}
	if auditFile != nil {
		if err := auditFile.Sync(); err != nil {
			return fmt.Errorf("admissiond: audit sync: %w", err)
		}
	}
	fmt.Fprintf(stdout, "admissiond: drained %d applied ops, exiting\n", s.OpsApplied())
	// The context cancellation is the normal exit path; MainServer maps
	// it to exit 0.
	return ctx.Err()
}
