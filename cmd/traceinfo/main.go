// Command traceinfo summarizes a Standard Workload Format trace the way
// the paper's §4 characterizes the SDSC SP2 subset: job count, mean
// inter-arrival time, mean runtime, processor demand, and runtime-estimate
// accuracy. Gzip-compressed traces are handled transparently.
//
// Example:
//
//	traceinfo -last 3000 SDSC-SP2-1998-4.2-cln.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clustersched/internal/swf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "traceinfo:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("traceinfo", flag.ContinueOnError)
	lastN := fs.Int("last", 0, "analyze only the last N jobs (0 = all)")
	cleanOnly := fs.Bool("completed", false, "keep only completed jobs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: traceinfo [-last N] [-completed] trace.swf")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := swf.ParseAuto(f) // handles plain and gzip-compressed traces
	if err != nil {
		return err
	}
	if *cleanOnly {
		tr = tr.CompletedOnly()
	}
	if *lastN > 0 {
		tr = tr.LastN(*lastN)
	}
	info := swf.ParseInfo(&tr.Header)
	if info.Computer != "" {
		fmt.Fprintf(stdout, "computer               %s\n", info.Computer)
	}
	if info.Procs() > 0 {
		fmt.Fprintf(stdout, "machine size           %d processors\n", info.Procs())
	}
	s := swf.ComputeStats(tr)
	fmt.Fprintf(stdout, "jobs                   %d\n", s.Jobs)
	fmt.Fprintf(stdout, "span                   %.1f days\n", float64(s.Span)/86400)
	fmt.Fprintf(stdout, "mean inter-arrival     %.0f s (%.2f min)\n", s.MeanInterarrival, s.MeanInterarrival/60)
	fmt.Fprintf(stdout, "mean runtime           %.0f s (%.2f h)\n", s.MeanRunTime, s.MeanRunTime/3600)
	fmt.Fprintf(stdout, "mean processors        %.1f (max %d)\n", s.MeanProcs, s.MaxProcs)
	fmt.Fprintf(stdout, "jobs with estimates    %d\n", s.WithEstimate)
	fmt.Fprintf(stdout, "mean estimate/runtime  %.2fx\n", s.MeanOverestimate)
	fmt.Fprintf(stdout, "underestimated jobs    %d\n", s.Underestimated)
	return nil
}
