package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const fixture = `; Computer: IBM SP2
; MaxNodes: 128
1 0 5 100 4 -1 -1 4 200 -1 1 3 1 -1 1 -1 -1 -1
2 1000 0 50 8 -1 -1 8 40 -1 1 4 1 -1 1 -1 -1 -1
3 2500 2 300 1 -1 -1 1 600 -1 0 5 1 -1 1 -1 -1 -1
`

func writeFixture(t *testing.T, gz bool) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.swf")
	data := []byte(fixture)
	if gz {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		zw.Close()
		data = buf.Bytes()
		path += ".gz"
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlainTrace(t *testing.T) {
	path := writeFixture(t, false)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"IBM SP2", "128 processors", "jobs                   3", "mean inter-arrival"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunGzipTrace(t *testing.T) {
	path := writeFixture(t, true)
	var sb strings.Builder
	if err := run([]string{path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "jobs                   3") {
		t.Fatalf("gzip output:\n%s", sb.String())
	}
}

func TestRunFilters(t *testing.T) {
	path := writeFixture(t, false)
	var sb strings.Builder
	if err := run([]string{"-completed", "-last", "1", path}, &sb); err != nil {
		t.Fatal(err)
	}
	// Job 3 failed; completed-only keeps 1 and 2, last 1 keeps job 2.
	if !strings.Contains(sb.String(), "jobs                   1") {
		t.Fatalf("filtered output:\n%s", sb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"/no/such/trace.swf"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}
