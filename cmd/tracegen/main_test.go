package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-jobs", "50", "-nodes", "16"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "; Version: 2.2") {
		t.Fatalf("missing SWF header:\n%s", out[:min(len(out), 200)])
	}
	dataLines := 0
	for _, line := range strings.Split(out, "\n") {
		if line != "" && !strings.HasPrefix(line, ";") {
			dataLines++
		}
	}
	if dataLines != 50 {
		t.Fatalf("job lines = %d, want 50", dataLines)
	}
}

func TestRunToFileAndCalibrate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "src.swf")
	var sb strings.Builder
	if err := run([]string{"-jobs", "400", "-nodes", "16", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	// Calibrate a clone from the emitted trace.
	clonePath := filepath.Join(dir, "clone.swf")
	if err := run([]string{"-calibrate", path, "-jobs", "200", "-nodes", "16", "-o", clonePath}, &sb); err != nil {
		t.Fatal(err)
	}
	clone, err := os.ReadFile(clonePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(clone), "; MaxNodes: 16") {
		t.Fatalf("clone header wrong:\n%s", string(clone)[:150])
	}
}

func TestRunCalibrateMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-calibrate", "/no/such/file.swf"}, &sb); err == nil {
		t.Fatal("missing calibration trace accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-jobs", "0"}, &sb); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Fatal("bad flag accepted")
	}
}
