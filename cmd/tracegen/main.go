// Command tracegen emits the calibrated synthetic SDSC-SP2-like workload
// as a Standard Workload Format trace, for use with other simulators or
// for replaying through clustersim -trace. With -calibrate it first fits
// the generator to a real trace and emits a statistically matching
// synthetic clone — a privacy-preserving trace substitute.
//
// Examples:
//
//	tracegen -jobs 3000 -seed 1 > synthetic-sdsc-sp2.swf
//	tracegen -calibrate SDSC-SP2-1998-4.2-cln.swf -jobs 3000 -o clone.swf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clustersched"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	o := clustersched.DefaultOptions()
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	jobs := fs.Int("jobs", o.Jobs, "number of jobs")
	seed := fs.Uint64("seed", o.Seed, "generator seed")
	nodes := fs.Int("nodes", o.Nodes, "cluster size (caps processor requests)")
	out := fs.String("o", "", "output file (default stdout)")
	calibrate := fs.String("calibrate", "", "fit the generator to this SWF trace and emit a statistically matching synthetic clone")
	if err := fs.Parse(args); err != nil {
		return err
	}

	o.Jobs = *jobs
	o.Seed = *seed
	o.Nodes = *nodes

	var ws []clustersched.Job
	var err error
	if *calibrate != "" {
		f, ferr := os.Open(*calibrate)
		if ferr != nil {
			return ferr
		}
		ws, err = clustersched.GenerateCalibratedWorkload(f, o)
		f.Close()
	} else {
		ws, err = clustersched.GenerateWorkload(o)
	}
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return clustersched.SaveSWF(w, ws, o.Nodes)
}
