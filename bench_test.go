package clustersched

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation plus ablations over the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Figure benchmarks run at a reduced scale (32 nodes / 600 jobs) so the
// whole suite completes in seconds; Benchmark*FullScale variants run the
// paper-scale configuration (128 nodes / 3000 jobs) for the three
// policies. Reproduction metrics (fulfilled %, slowdown) are attached to
// the benchmark output via b.ReportMetric, so `go test -bench` doubles as
// a compact results table.

import (
	"os"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/experiment"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// benchBase is the reduced-scale configuration used by figure benchmarks.
func benchBase() experiment.BaseConfig {
	base := experiment.DefaultBase()
	base.Nodes = 32
	gen := workload.DefaultGeneratorConfig()
	gen.Jobs = 600
	gen.MaxProcs = 32
	gen.MeanInterarrival = 2131
	gen.MeanRuntime = workload.TraceMeanRuntime
	base.Generator = gen
	return base
}

// BenchmarkTableWorkload regenerates the §4 workload-characteristics
// table (generation + statistics) at paper scale.
func BenchmarkTableWorkload(b *testing.B) {
	base := experiment.DefaultBase()
	for i := 0; i < b.N; i++ {
		tbl, err := experiment.BuildWorkloadTable(base)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(tbl.MeanInterarrivalSec, "interarrival-s")
			b.ReportMetric(tbl.PctOverestimates, "overest-%")
		}
	}
}

func benchFigure(b *testing.B, build func(experiment.BaseConfig) (experiment.Figure, error)) {
	base := benchBase()
	for i := 0; i < b.N; i++ {
		f, err := build(base)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFigureShape(b, f)
		}
	}
}

// reportFigureShape attaches the figure's headline comparison — the gap
// between LibraRisk and Libra on fulfilled % under trace estimates at the
// rightmost sweep point — to the benchmark output.
func reportFigureShape(b *testing.B, f experiment.Figure) {
	for _, p := range f.Panels {
		if len(p.Series) < 3 || len(p.X) == 0 {
			continue
		}
		var libra, risk float64
		found := 0
		for _, s := range p.Series {
			switch s.Name {
			case "Libra":
				libra = s.Y[len(s.Y)-1]
				found++
			case "LibraRisk":
				risk = s.Y[len(s.Y)-1]
				found++
			}
		}
		if found == 2 {
			b.ReportMetric(risk-libra, "risk-vs-libra")
			return
		}
	}
}

// BenchmarkFigure1 regenerates figure 1 (varying workload).
func BenchmarkFigure1(b *testing.B) { benchFigure(b, experiment.Figure1) }

// BenchmarkFigure2 regenerates figure 2 (varying deadline high:low ratio).
func BenchmarkFigure2(b *testing.B) { benchFigure(b, experiment.Figure2) }

// BenchmarkFigure3 regenerates figure 3 (varying high urgency jobs).
func BenchmarkFigure3(b *testing.B) { benchFigure(b, experiment.Figure3) }

// BenchmarkFigure4 regenerates figure 4 (varying estimate inaccuracy).
func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiment.Figure4) }

// benchPolicyFullScale runs one paper-scale simulation per iteration.
func benchPolicyFullScale(b *testing.B, pol experiment.PolicyKind, inacc float64) {
	base := experiment.DefaultBase()
	jobs, err := experiment.GenerateBase(base)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiment.RunSpec{Policy: pol, ArrivalDelayFactor: 1, InaccuracyPct: inacc, Deadline: base.Deadline}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := experiment.Run(base, jobs, spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(s.PctFulfilled, "fulfilled-%")
			b.ReportMetric(s.AvgSlowdownMet, "slowdown")
		}
	}
}

// BenchmarkPolicyEDFFullScale runs EDF over 3000 jobs on 128 nodes with
// trace estimates.
func BenchmarkPolicyEDFFullScale(b *testing.B) {
	benchPolicyFullScale(b, experiment.EDF, 100)
}

// BenchmarkPolicyLibraFullScale runs Libra at paper scale.
func BenchmarkPolicyLibraFullScale(b *testing.B) {
	benchPolicyFullScale(b, experiment.Libra, 100)
}

// BenchmarkPolicyLibraRiskFullScale runs LibraRisk at paper scale; the
// per-arrival risk evaluation over all 128 nodes dominates its profile.
func BenchmarkPolicyLibraRiskFullScale(b *testing.B) {
	benchPolicyFullScale(b, experiment.LibraRisk, 100)
}

// --- Ablations -----------------------------------------------------------

// BenchmarkAblationNodeSelection compares best-fit (Libra's strategy),
// first-fit (Algorithm 1's order) and worst-fit placement for Libra under
// trace estimates.
func BenchmarkAblationNodeSelection(b *testing.B) {
	for _, sel := range []NodeSelection{SelectBestFit, SelectFirstFit, SelectWorstFit} {
		sel := sel
		b.Run(string(sel), func(b *testing.B) {
			o := DefaultOptions()
			o.Nodes = 32
			o.Jobs = 600
			o.Policy = PolicyLibra
			o.NodeSelection = sel
			for i := 0; i < b.N; i++ {
				res, err := Simulate(o)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Summary.PctFulfilled, "fulfilled-%")
				}
			}
		})
	}
}

// BenchmarkAblationRiskThreshold compares the paper's strict σ = 0 rule
// against relaxed thresholds.
func BenchmarkAblationRiskThreshold(b *testing.B) {
	for _, tc := range []struct {
		name  string
		sigma float64
	}{
		{"sigma=0", 0},
		{"sigma=0.5", 0.5},
		{"sigma=inf", 1e12},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			o := DefaultOptions()
			o.Nodes = 32
			o.Jobs = 600
			o.RiskSigmaThreshold = tc.sigma
			for i := 0; i < b.N; i++ {
				res, err := Simulate(o)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Summary.PctFulfilled, "fulfilled-%")
					b.ReportMetric(float64(res.Summary.Missed), "missed")
				}
			}
		})
	}
}

// BenchmarkAblationWorkConserving compares work-conserving nodes (spare
// capacity redistributed) against strict eq.-1 shares.
func BenchmarkAblationWorkConserving(b *testing.B) {
	for _, tc := range []struct {
		name string
		wc   bool
	}{{"work-conserving", true}, {"strict-share", false}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			o := DefaultOptions()
			o.Nodes = 32
			o.Jobs = 600
			o.WorkConserving = tc.wc
			for i := 0; i < b.N; i++ {
				res, err := Simulate(o)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Summary.PctFulfilled, "fulfilled-%")
					b.ReportMetric(res.Summary.AvgSlowdownMet, "slowdown")
				}
			}
		})
	}
}

// BenchmarkAblationOverrunFloor sweeps the residual weight granted to jobs
// that overran their estimate, the one free parameter in the node model.
func BenchmarkAblationOverrunFloor(b *testing.B) {
	base := benchBase()
	jobs, err := experiment.GenerateBase(base)
	if err != nil {
		b.Fatal(err)
	}
	for _, floor := range []float64{0.005, 0.02, 0.1} {
		floor := floor
		b.Run(floatName(floor), func(b *testing.B) {
			cfg := base
			cfg.Cluster.OverrunFloorWeight = floor
			spec := experiment.RunSpec{Policy: experiment.LibraRisk, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: cfg.Deadline}
			for i := 0; i < b.N; i++ {
				s, err := experiment.Run(cfg, jobs, spec)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(s.PctFulfilled, "fulfilled-%")
				}
			}
		})
	}
}

func floatName(f float64) string {
	switch f {
	case 0.005:
		return "floor=0.005"
	case 0.02:
		return "floor=0.02"
	default:
		return "floor=0.1"
	}
}

// BenchmarkAblationRiskRule compares the paper's σ = 0 suitability test
// against the stricter µ = 1 ("no predicted delay at all") rule; the gap
// is the value of LibraRisk's forgiveness of lone overestimated jobs.
func BenchmarkAblationRiskRule(b *testing.B) {
	base := benchBase()
	jobs, err := experiment.GenerateBase(base)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name     string
		meanRule bool
	}{{"sigma-rule", false}, {"mu-rule", true}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := runRiskVariant(base, jobs, tc.meanRule)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(s.PctFulfilled, "fulfilled-%")
					b.ReportMetric(float64(s.Rejected), "rejected")
				}
			}
		})
	}
}

func runRiskVariant(base experiment.BaseConfig, baseJobs []workload.Job, meanRule bool) (metrics.Summary, error) {
	jobs, err := workload.AssignDeadlines(baseJobs, base.Deadline)
	if err != nil {
		return metrics.Summary{}, err
	}
	c, err := cluster.NewTimeShared(base.Nodes, base.Rating, base.Cluster)
	if err != nil {
		return metrics.Summary{}, err
	}
	rec := metrics.NewRecorder()
	p := core.NewLibraRisk(c, rec)
	p.MeanRule = meanRule
	e := sim.NewEngine()
	if err := core.RunSimulation(e, p, rec, jobs, 100); err != nil {
		return metrics.Summary{}, err
	}
	return rec.Summarize(), nil
}

// BenchmarkExtensionPrediction runs the system-generated-estimates
// extension experiment (figure "prediction") at reduced scale.
func BenchmarkExtensionPrediction(b *testing.B) {
	base := benchBase()
	base.Generator.Jobs = 400
	base.Generator.Users = workload.DefaultUserModelConfig()
	for i := 0; i < b.N; i++ {
		f, err := experiment.FigurePrediction(base)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 && len(f.Panels) > 0 {
			// Report the lift the scaling predictor gives Libra at full
			// inaccuracy (rightmost x of panel (a)).
			p := f.Panels[0]
			var raw, scaled float64
			for _, s := range p.Series {
				switch s.Name {
				case "user-estimate":
					raw = s.Y[len(s.Y)-1]
				case "scaling":
					scaled = s.Y[len(s.Y)-1]
				}
			}
			b.ReportMetric(scaled-raw, "prediction-lift")
		}
	}
}

// BenchmarkExtensionPolicies runs the related-work schedulers (FCFS,
// EASY, conservative, QoPS) over the benchmark workload with trace
// estimates for a seven-way comparison row.
func BenchmarkExtensionPolicies(b *testing.B) {
	for _, pol := range []Policy{PolicyFCFS, PolicyBackfillEASY, PolicyBackfillConservative, PolicyQoPS} {
		pol := pol
		b.Run(string(pol), func(b *testing.B) {
			o := DefaultOptions()
			o.Nodes = 32
			o.Jobs = 600
			o.Policy = pol
			o.QoPSSlackFactor = 2
			for i := 0; i < b.N; i++ {
				res, err := Simulate(o)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Summary.PctFulfilled, "fulfilled-%")
				}
			}
		})
	}
}

// BenchmarkPredictorScaling isolates the cost of LibraRisk's per-node
// fluid predictor as concurrent slices grow, on the scratch-buffer fast
// path the admission control actually uses (zero allocations in steady
// state).
func BenchmarkPredictorScaling(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		n := n
		b.Run(sliceCountName(n), func(b *testing.B) {
			c, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			e := sim.NewEngine()
			for i := 0; i < n; i++ {
				j := workload.Job{
					ID: i + 1, Runtime: 1000, TraceEstimate: 1000,
					NumProc: 1, Deadline: 100000 + float64(i)*1000,
				}
				if _, err := c.Submit(e, j, 1000, []int{0}); err != nil {
					b.Fatal(err)
				}
			}
			cand := &cluster.Candidate{JobID: 999, RefWork: 500, AbsDeadline: 50000}
			node := c.Node(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if out := node.PredictDelaysScratch(0, cand); len(out) != n+1 {
					b.Fatal("prediction lost items")
				}
			}
		})
	}
}

// --- Admission fast path ------------------------------------------------
//
// The BenchmarkAdmission* group isolates the per-arrival admission cost —
// the hottest path at paper scale: every submission evaluates every node.
// `make bench-json` runs exactly this group and writes BENCH_admission.json
// so the trajectory is machine-readable across PRs.

// admissionCluster builds a paper-scale time-shared cluster with
// slicesPerNode running slices on every node, placed directly (bypassing
// admission) so the benchmarks control the load exactly. With overrun
// true, half the slices have already exhausted their estimates — the
// poisoned-node state LibraRisk's risk test exists to detect.
func admissionCluster(b *testing.B, nodes, slicesPerNode int, overrun bool) (*sim.Engine, *cluster.TimeShared) {
	b.Helper()
	c, err := cluster.NewTimeShared(nodes, 168, cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine()
	id := 1
	for s := 0; s < slicesPerNode; s++ {
		for n := 0; n < nodes; n++ {
			estimate := 4000.0
			if overrun && s%2 == 0 {
				// Underestimated: believed work will exhaust long before
				// the real work does, leaving an overrun slice behind.
				estimate = 100.0
			}
			// Deadlines tight enough that loaded nodes predict real
			// delays, so the scans exercise the full fluid machinery
			// (MaxWeight regime, deadline crossings) rather than the
			// all-on-time case.
			j := workload.Job{
				ID: id, Runtime: 4000, TraceEstimate: estimate,
				NumProc: 1, Submit: 0,
				Deadline: 5000 + float64(id%7)*1500,
			}
			if _, err := c.Submit(e, j, estimate, []int{n}); err != nil {
				b.Fatal(err)
			}
			id++
		}
	}
	return e, c
}

// benchAdmissionRiskScan measures one full LibraRisk admission evaluation
// — the risk of every node with the candidate tentatively added — which
// is the per-job cost Algorithm 1 pays on every arrival.
func benchAdmissionRiskScan(b *testing.B, slicesPerNode int) {
	_, c := admissionCluster(b, 128, slicesPerNode, true)
	rec := metrics.NewRecorder()
	p := core.NewLibraRisk(c, rec)
	cand := &cluster.Candidate{JobID: 99999, RefWork: 2000, AbsDeadline: 26000}
	now := 1000.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sigmaSum float64
		for n := 0; n < c.Len(); n++ {
			_, sigma := p.NodeRisk(now, c.Node(n), cand)
			sigmaSum += sigma
		}
		if i == 0 {
			b.ReportMetric(sigmaSum/float64(c.Len()), "mean-sigma")
		}
	}
}

// BenchmarkAdmissionRiskScan2 evaluates all 128 nodes at 2 slices each.
func BenchmarkAdmissionRiskScan2(b *testing.B) { benchAdmissionRiskScan(b, 2) }

// BenchmarkAdmissionRiskScan8 evaluates all 128 nodes at 8 slices each.
func BenchmarkAdmissionRiskScan8(b *testing.B) { benchAdmissionRiskScan(b, 8) }

// BenchmarkAdmissionSubmitReject measures the end-to-end LibraRisk Submit
// path on a cluster whose nodes all carry overrun slices, so every
// arrival walks all nodes and is rejected: the worst-case per-job
// admission cost, recorder bookkeeping included.
func BenchmarkAdmissionSubmitReject(b *testing.B) {
	e, c := admissionCluster(b, 128, 4, true)
	rec := metrics.NewRecorder()
	p := core.NewLibraRisk(c, rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := workload.Job{
			ID: 1_000_000 + i, Runtime: 2000, TraceEstimate: 2000,
			NumProc: 2, Submit: 0, Deadline: 9000,
		}
		p.Submit(e, j, 2000)
	}
	b.StopTimer()
	if s := rec.Summarize(); s.Rejected != s.Submitted {
		b.Fatalf("expected all rejected, got %+v", s)
	}
}

// BenchmarkAdmissionObsDisabledSubmit is BenchmarkAdmissionSubmitReject
// with the observability hooks explicitly detached (their default state):
// it pins the zero-overhead contract of the obs layer on the hottest
// path, where a disabled tracer/metrics/audit must cost exactly one nil
// check per would-be emission. The bench gate holds both this benchmark
// and its twin above to the pre-observability baseline, so any accidental
// allocation or time regression from the hooks fails CI.
func BenchmarkAdmissionObsDisabledSubmit(b *testing.B) {
	e, c := admissionCluster(b, 128, 4, true)
	rec := metrics.NewRecorder()
	p := core.NewLibraRisk(c, rec)
	p.SetObs(nil, nil, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := workload.Job{
			ID: 1_000_000 + i, Runtime: 2000, TraceEstimate: 2000,
			NumProc: 2, Submit: 0, Deadline: 9000,
		}
		p.Submit(e, j, 2000)
	}
	b.StopTimer()
	if s := rec.Summarize(); s.Rejected != s.Submitted {
		b.Fatalf("expected all rejected, got %+v", s)
	}
}

// BenchmarkAdmissionLibraShareScan measures Libra's admission test (eq. 2
// with the early-exit share accumulation) over all 128 nodes.
func BenchmarkAdmissionLibraShareScan(b *testing.B) {
	_, c := admissionCluster(b, 128, 8, false)
	now := 1000.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		suitable := 0
		for n := 0; n < c.Len(); n++ {
			if _, ok := c.Node(n).LibraShareWithLimit(now, 2000, 26000, 1+1e-9); ok {
				suitable++
			}
		}
		if i == 0 {
			b.ReportMetric(float64(suitable), "suitable-nodes")
		}
	}
}

// BenchmarkAdmissionFirstFitAccept measures the FirstFit acceptance scan
// on a lightly loaded cluster. Actually admitting a job would mutate the
// cluster between iterations, so the benchmark mirrors Submit's read-only
// suitability walk (empty-node shortcut plus early exit at NumProc
// zero-risk nodes) without placing the job.
func BenchmarkAdmissionFirstFitAccept(b *testing.B) {
	// 4 busy nodes, 124 empty: FirstFit needs the first NumProc zero-risk
	// nodes; with the empty-node shortcut the scan cost collapses.
	c, err := cluster.NewTimeShared(128, 168, cluster.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	e := sim.NewEngine()
	for n := 0; n < 4; n++ {
		j := workload.Job{
			ID: n + 1, Runtime: 4000, TraceEstimate: 100,
			NumProc: 1, Submit: 0, Deadline: 5000,
		}
		if _, err := c.Submit(e, j, 100, []int{n}); err != nil {
			b.Fatal(err)
		}
	}
	rec := metrics.NewRecorder()
	p := core.NewLibraRisk(c, rec)
	cand := &cluster.Candidate{JobID: 99999, RefWork: 2000, AbsDeadline: 26000}
	now := 500.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mirror Submit's scan for a NumProc=4 job under FirstFit.
		found := 0
		for n := 0; n < c.Len() && found < 4; n++ {
			node := c.Node(n)
			if node.NumSlices() == 0 {
				found++
				continue
			}
			if _, sigma := p.NodeRisk(now, node, cand); sigma <= 1e-9 {
				found++
			}
		}
	}
}

func sliceCountName(n int) string {
	switch n {
	case 1:
		return "slices=1"
	case 4:
		return "slices=4"
	case 16:
		return "slices=16"
	default:
		return "slices=64"
	}
}

// --- Sharded engine ------------------------------------------------------

// shardedBase scales the paper configuration up to a larger cluster,
// keeping per-node load constant by shrinking the mean interarrival in
// proportion to the node count.
func shardedBase(nodes, jobs int) experiment.BaseConfig {
	base := experiment.DefaultBase()
	base.Nodes = nodes
	gen := workload.DefaultGeneratorConfig()
	gen.Jobs = jobs
	gen.MaxProcs = 64
	gen.MeanInterarrival = workload.TraceMeanInterarrival * float64(workload.SDSCSP2Nodes) / float64(nodes)
	base.Generator = gen
	return base
}

// benchShardedRun is the sharded-engine benchmark body: one LibraRisk run
// per iteration over the given cluster/workload scale, sequential when
// shards <= 1. The sequential and sharded variants run the exact same
// simulation (the differential tests prove byte-identity), so their ratio
// is the sharding speedup on this machine — on a single-core host the
// sharded run instead measures pure barrier/coordination overhead.
func benchShardedRun(b *testing.B, nodes, jobs, shards int) {
	base := shardedBase(nodes, jobs)
	base.Shards = shards
	wl, err := experiment.GenerateBase(base)
	if err != nil {
		b.Fatal(err)
	}
	spec := experiment.RunSpec{Policy: experiment.LibraRisk, ArrivalDelayFactor: 1, InaccuracyPct: 100, Deadline: base.Deadline}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := experiment.Run(base, wl, spec)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(s.PctFulfilled, "fulfilled-%")
		}
	}
}

// BenchmarkShardedLibraRiskSeq is the sequential baseline for the sharded
// engine at moderate datacenter scale (512 nodes, 10k jobs).
func BenchmarkShardedLibraRiskSeq(b *testing.B) { benchShardedRun(b, 512, 10_000, 0) }

// BenchmarkShardedLibraRiskShards8 runs the identical simulation on eight
// engine shards.
func BenchmarkShardedLibraRiskShards8(b *testing.B) { benchShardedRun(b, 512, 10_000, 8) }

// BenchmarkShardedDatacenter* is the full 10,000-node / 1M-job scale the
// sharding work targets. A single run takes many minutes, so it only runs
// when explicitly requested:
//
//	BENCH_DATACENTER=1 go test -run xxx -bench ShardedDatacenter -benchtime 1x .
func benchShardedDatacenter(b *testing.B, shards int) {
	if os.Getenv("BENCH_DATACENTER") == "" {
		b.Skip("set BENCH_DATACENTER=1 to run the 10k-node/1M-job benchmark")
	}
	benchShardedRun(b, 10_000, 1_000_000, shards)
}

func BenchmarkShardedDatacenterSeq(b *testing.B)     { benchShardedDatacenter(b, 0) }
func BenchmarkShardedDatacenterShards8(b *testing.B) { benchShardedDatacenter(b, 8) }
