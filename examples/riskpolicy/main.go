// Riskpolicy: explore LibraRisk's design space — the σ threshold and the
// node-selection strategy — under inaccurate estimates. The paper's rule
// is σ = 0 with Algorithm-1 (first-fit) ordering; this example shows what
// relaxing each knob does, the same comparison the ablation benches make.
//
//	go run ./examples/riskpolicy
package main

import (
	"fmt"
	"log"

	"clustersched"
)

func main() {
	base := clustersched.DefaultOptions()
	base.Nodes = 32
	base.Jobs = 750
	base.Policy = clustersched.PolicyLibraRisk
	base.InaccuracyPct = 100 // trace estimates: where risk management matters

	fmt.Println("σ threshold sweep (first-fit selection):")
	fmt.Println("  sigma      fulfilled  rejected  missed")
	for _, sigma := range []float64{0, 0.01, 0.1, 0.5, 2, 1e9} {
		o := base
		o.RiskSigmaThreshold = sigma
		res, err := clustersched.Simulate(o)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("  %-9.2g  %7.2f %%  %8d  %6d\n", sigma, s.PctFulfilled, s.Rejected, s.Missed)
	}
	fmt.Println("\nσ = 0 is the paper's rule; very large σ collapses LibraRisk")
	fmt.Println("into accept-anything and deadline misses surge.")

	fmt.Println("\nnode selection sweep (σ = 0):")
	fmt.Println("  selection  fulfilled  rejected  missed")
	for _, sel := range []clustersched.NodeSelection{
		clustersched.SelectFirstFit,
		clustersched.SelectBestFit,
		clustersched.SelectWorstFit,
	} {
		o := base
		o.NodeSelection = sel
		res, err := clustersched.Simulate(o)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("  %-9s  %7.2f %%  %8d  %6d\n", sel, s.PctFulfilled, s.Rejected, s.Missed)
	}
}
