// Tracereplay: generate a synthetic SDSC-SP2-like trace, write it to disk
// in Standard Workload Format, load it back (the exact workflow for using
// the real SDSC-SP2-1998-4.2-cln.swf archive file), and replay the last
// 500 jobs through LibraRisk.
//
//	go run ./examples/tracereplay [trace.swf]
//
// With an argument, replays that SWF file instead of generating one.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clustersched"
)

func main() {
	opts := clustersched.DefaultOptions()
	opts.Nodes = 64

	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		// No trace supplied: synthesize one, exactly what cmd/tracegen does.
		opts.Jobs = 1000
		ws, err := clustersched.GenerateWorkload(opts)
		if err != nil {
			log.Fatal(err)
		}
		path = filepath.Join(os.TempDir(), "synthetic-sdsc-sp2.swf")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := clustersched.SaveSWF(f, ws, opts.Nodes); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("wrote synthetic trace:", path)
	}

	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	// Keep the last 500 jobs, mirroring the paper's use of the last 3000
	// jobs of the real trace. Deadlines are synthesized at load time (SWF
	// has no deadline field).
	jobs, err := clustersched.LoadSWF(f, opts, 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replaying %d jobs from %s\n\n", len(jobs), path)

	for _, policy := range []clustersched.Policy{
		clustersched.PolicyLibra,
		clustersched.PolicyLibraRisk,
	} {
		opts.Policy = policy
		opts.InaccuracyPct = 100 // honour the trace's own estimates
		res, err := clustersched.SimulateJobs(opts, jobs)
		if err != nil {
			log.Fatal(err)
		}
		s := res.Summary
		fmt.Printf("%-10s fulfilled %6.2f %%  slowdown %5.2f  rejected %4d  missed %4d\n",
			policy, s.PctFulfilled, s.AvgSlowdownMet, s.Rejected, s.Missed)
	}
}
