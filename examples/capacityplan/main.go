// Capacityplan: a service provider's what-if study. Given the expected
// workload and SLA mix, how many nodes does the cluster need before
// LibraRisk fulfils a target percentage of deadlines? And how does the
// answer move when the customer base skews urgent?
//
// This is the kind of question the paper's admission-control machinery is
// built to answer for service-oriented clusters.
//
//	go run ./examples/capacityplan
package main

import (
	"fmt"
	"log"

	"clustersched"
)

const targetPct = 85.0

func main() {
	base := clustersched.DefaultOptions()
	base.Jobs = 750
	base.Policy = clustersched.PolicyLibraRisk
	base.InaccuracyPct = 100 // plan for real, inaccurate estimates

	for _, urgency := range []float64{0.2, 0.5, 0.8} {
		fmt.Printf("high-urgency fraction %.0f %%:\n", urgency*100)
		fmt.Println("  nodes  fulfilled  avg slowdown")
		found := false
		for _, nodes := range []int{16, 24, 32, 48, 64, 96, 128} {
			o := base
			o.HighUrgencyFraction = urgency
			o.Nodes = nodes
			res, err := clustersched.Simulate(o)
			if err != nil {
				log.Fatal(err)
			}
			s := res.Summary
			marker := ""
			if !found && s.PctFulfilled >= targetPct {
				marker = fmt.Sprintf("  <- first size meeting the %.0f %% SLA target", targetPct)
				found = true
			}
			fmt.Printf("  %5d  %7.2f %%  %12.2f%s\n", nodes, s.PctFulfilled, s.AvgSlowdownMet, marker)
		}
		if !found {
			fmt.Printf("  (no size up to 128 nodes meets %.0f %%)\n", targetPct)
		}
		fmt.Println()
	}
}
