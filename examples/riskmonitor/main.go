// Riskmonitor: watch the cluster's live risk of deadline delay over a
// day of simulated operation, side by side for Libra and LibraRisk under
// inaccurate estimates. Libra keeps packing jobs onto nodes whose risk has
// already gone positive; LibraRisk's admission reacts to the same signal,
// so its delayed-job counts stay near zero.
//
//	go run ./examples/riskmonitor
package main

import (
	"fmt"
	"log"

	"clustersched"
)

func main() {
	base := clustersched.DefaultOptions()
	base.Nodes = 32
	base.Jobs = 400
	base.InaccuracyPct = 100
	base.MonitorInterval = 6 * 3600 // sample every 6 simulated hours

	for _, policy := range []clustersched.Policy{
		clustersched.PolicyLibra,
		clustersched.PolicyLibraRisk,
	} {
		o := base
		o.Policy = policy
		res, err := clustersched.Simulate(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (fulfilled %.1f %%, missed %d):\n",
			policy, res.Summary.PctFulfilled, res.Summary.Missed)
		fmt.Println("  day   util  running  delayed    mean-σ  zero-risk-nodes")
		for i, s := range res.Monitor {
			if i%4 != 0 { // print one sample per simulated day
				continue
			}
			// σ explodes once a job is past its deadline (eq. 4 diverges
			// as the remaining deadline approaches zero), so print it in
			// scientific notation.
			fmt.Printf("  %3d   %4.2f  %7d  %7d  %8.2g  %15d\n",
				i/4, s.Utilization, s.RunningJobs, s.DelayedJobs, s.MeanSigma, s.ZeroRiskNodes)
		}
		fmt.Println()
	}
	fmt.Println("Delayed-job counts under Libra reveal the nodes its share test")
	fmt.Println("cannot see are poisoned; LibraRisk refuses those placements.")
}
