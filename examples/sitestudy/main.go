// Sitestudy: the end-to-end workflow for a site evaluating risk-aware
// admission control on its own workload without sharing its trace:
//
//  1. calibrate the synthetic generator to a real SWF trace (here a
//     stand-in trace is synthesized first; pass your own as argv[1]),
//
//  2. generate a statistically matching private clone,
//
//  3. replicate the policy comparison across seeds with confidence
//     intervals.
//
//     go run ./examples/sitestudy [trace.swf]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clustersched"
)

func main() {
	opts := clustersched.DefaultOptions()
	opts.Nodes = 32
	opts.Jobs = 600

	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		// No site trace supplied: synthesize one to stand in for it.
		ws, err := clustersched.GenerateWorkload(opts)
		if err != nil {
			log.Fatal(err)
		}
		path = filepath.Join(os.TempDir(), "site-trace.swf")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := clustersched.SaveSWF(f, ws, opts.Nodes); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Println("using stand-in site trace:", path)
	}

	// Step 1+2: calibrate and clone.
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	clone, err := clustersched.GenerateCalibratedWorkload(f, opts)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated clone: %d jobs\n\n", len(clone))

	// Step 3: compare policies on the clone (single draw)…
	fmt.Println("single-draw comparison on the calibrated clone:")
	for _, policy := range []clustersched.Policy{
		clustersched.PolicyEDF,
		clustersched.PolicyLibra,
		clustersched.PolicyLibraRisk,
	} {
		o := opts
		o.Policy = policy
		res, err := clustersched.SimulateJobs(o, clone)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s fulfilled %6.2f %%  slowdown %5.2f\n",
			policy, res.Summary.PctFulfilled, res.Summary.AvgSlowdownMet)
	}

	// …and statistically, regenerating fresh clones per seed.
	fmt.Println("\nmulti-seed replication (mean ± 95% CI):")
	for _, policy := range []clustersched.Policy{
		clustersched.PolicyLibra,
		clustersched.PolicyLibraRisk,
	} {
		o := opts
		o.Policy = policy
		rep, err := clustersched.Replicate(o, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s fulfilled %6.2f %% ± %.2f\n",
			policy, rep.FulfilledMean, rep.FulfilledCI95)
	}
	fmt.Println("\nA LibraRisk advantage that survives the confidence interval on")
	fmt.Println("the site's own workload shape is the adoption signal.")
}
