// Quickstart: run the three admission-control policies over the same
// SDSC-SP2-like workload with accurate and with trace runtime estimates,
// and print the paper's two metrics side by side.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"clustersched"
)

func main() {
	opts := clustersched.DefaultOptions()
	// Keep the example snappy: a quarter-size cluster and workload. Drop
	// these two lines for the full paper-scale run.
	opts.Nodes = 32
	opts.Jobs = 750

	fmt.Println("policy      estimates  fulfilled  avg slowdown  rejected  missed")
	for _, policy := range []clustersched.Policy{
		clustersched.PolicyEDF,
		clustersched.PolicyLibra,
		clustersched.PolicyLibraRisk,
	} {
		for _, mode := range []struct {
			label string
			pct   float64
		}{
			{"accurate", 0},
			{"trace", 100},
		} {
			opts.Policy = policy
			opts.InaccuracyPct = mode.pct
			res, err := clustersched.Simulate(opts)
			if err != nil {
				log.Fatal(err)
			}
			s := res.Summary
			fmt.Printf("%-11s %-9s  %7.2f %%  %12.2f  %8d  %6d\n",
				policy, mode.label, s.PctFulfilled, s.AvgSlowdownMet, s.Rejected, s.Missed)
		}
	}
	fmt.Println("\nLibraRisk should hold its fulfilled percentage under trace")
	fmt.Println("estimates far better than Libra — the paper's headline result.")
}
