package clustersched_test

import (
	"fmt"
	"log"

	"clustersched"
)

// The quickest path: simulate the paper's default setup (128-node SDSC
// SP2-like cluster, 3000 jobs, LibraRisk, trace estimates) at a reduced
// scale and read the two headline metrics.
func ExampleSimulate() {
	opts := clustersched.DefaultOptions()
	opts.Nodes = 16
	opts.Jobs = 200
	opts.InaccuracyPct = 0 // perfectly accurate estimates
	res, err := clustersched.Simulate(opts)
	if err != nil {
		log.Fatal(err)
	}
	// With accurate estimates, admission control never lets a deadline
	// slip: every accepted job is fulfilled.
	fmt.Println("missed:", res.Summary.Missed)
	fmt.Println("unfinished:", res.Summary.Unfinished)
	// Output:
	// missed: 0
	// unfinished: 0
}

// Workloads can be generated once and replayed against several policies
// for a controlled comparison.
func ExampleSimulateJobs() {
	opts := clustersched.DefaultOptions()
	opts.Nodes = 16
	opts.Jobs = 150
	jobs, err := clustersched.GenerateWorkload(opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, policy := range []clustersched.Policy{
		clustersched.PolicyLibra,
		clustersched.PolicyLibraRisk,
	} {
		opts.Policy = policy
		res, err := clustersched.SimulateJobs(opts, jobs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s submitted %d\n", policy, res.Summary.Submitted)
	}
	// Output:
	// libra submitted 150
	// librarisk submitted 150
}

// Options are validated before anything runs.
func ExampleOptions_Validate() {
	opts := clustersched.DefaultOptions()
	opts.Policy = "round-robin"
	fmt.Println(opts.Validate())
	// Output:
	// clustersched: unknown policy "round-robin"
}

// Every figure of the paper can be rebuilt programmatically at any scale.
func ExampleBuildFigure() {
	opts := clustersched.DefaultOptions()
	opts.Nodes = 8
	opts.Jobs = 60
	fig, err := clustersched.BuildFigure("figure3", opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig.ID, "panels:", len(fig.Panels))
	fmt.Println("series per panel:", len(fig.Panels[0].Series))
	// Output:
	// figure3 panels: 4
	// series per panel: 3
}
