package predict

import (
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// Wrapped is a core.Policy that substitutes each job's estimate with the
// predictor's output before handing it to the inner policy, and feeds the
// predictor every completion as it happens — the system-generated-estimate
// deployment model.
type Wrapped struct {
	Inner     core.Policy
	Predictor Predictor

	// submitted remembers user estimates and real runtimes by job id so
	// completions can be fed back to the predictor.
	submitted map[int]workload.Job
	estimates map[int]float64
}

// Wrap installs the predictor in front of the inner policy, hooking the
// recorder's observer so completions reach the predictor online. It must
// be called after the inner policy is constructed (the inner policy owns
// the cluster's completion callback; Wrap only observes the recorder).
func Wrap(inner core.Policy, rec *metrics.Recorder, p Predictor) *Wrapped {
	w := &Wrapped{
		Inner:     inner,
		Predictor: p,
		submitted: make(map[int]workload.Job),
		estimates: make(map[int]float64),
	}
	prev := rec.Observer
	rec.Observer = func(res metrics.JobResult) {
		if prev != nil {
			prev(res)
		}
		w.observe(res)
	}
	return w
}

// Name implements core.Policy.
func (w *Wrapped) Name() string { return w.Inner.Name() + "+" + w.Predictor.Name() }

// Submit implements core.Policy: replace the user's estimate with the
// prediction, then delegate.
func (w *Wrapped) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	w.submitted[job.ID] = job
	w.estimates[job.ID] = estimate
	pred := w.Predictor.Predict(job.UserID, estimate)
	w.Inner.Submit(e, job, pred)
}

// observe feeds completions to the predictor. Rejections carry no runtime
// signal; real systems never observe them either.
func (w *Wrapped) observe(res metrics.JobResult) {
	job, ok := w.submitted[res.JobID]
	if !ok {
		return
	}
	delete(w.submitted, res.JobID)
	est := w.estimates[res.JobID]
	delete(w.estimates, res.JobID)
	if res.Outcome == metrics.Met || res.Outcome == metrics.Missed {
		// The completed job's wallclock is observable; its dedicated
		// runtime is what estimates denote, which the job model carries.
		w.Predictor.Observe(job.UserID, est, job.Runtime)
	}
}
