package predict

import (
	"math"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func TestIdentityPassesThrough(t *testing.T) {
	p := Identity{}
	if got := p.Predict(3, 1234); got != 1234 {
		t.Fatalf("Predict = %v", got)
	}
	p.Observe(3, 1234, 10) // must be a no-op, not panic
	if got := p.Predict(3, 99); got != 99 {
		t.Fatalf("Predict after observe = %v", got)
	}
}

func TestRecentAverageLearnsPerUser(t *testing.T) {
	p := NewRecentAverage(2)
	// No history: falls back to the user estimate.
	if got := p.Predict(1, 500); got != 500 {
		t.Fatalf("cold Predict = %v", got)
	}
	p.Observe(1, 500, 100)
	if got := p.Predict(1, 500); got != 100 {
		t.Fatalf("after one obs = %v", got)
	}
	p.Observe(1, 500, 200)
	if got := p.Predict(1, 500); got != 150 {
		t.Fatalf("avg of last two = %v", got)
	}
	p.Observe(1, 500, 300)
	if got := p.Predict(1, 500); got != 250 { // window slides: (200+300)/2
		t.Fatalf("sliding window = %v", got)
	}
	// User 2's history is independent.
	if got := p.Predict(2, 777); got != 777 {
		t.Fatalf("user 2 cold = %v", got)
	}
}

func TestRecentAverageCap(t *testing.T) {
	p := NewRecentAverage(2)
	p.Cap = true
	p.Observe(1, 500, 400)
	if got := p.Predict(1, 300); got != 300 {
		t.Fatalf("capped Predict = %v, want the user estimate ceiling", got)
	}
}

func TestRecentAverageDefaultK(t *testing.T) {
	p := NewRecentAverage(0)
	if p.K != 2 {
		t.Fatalf("K = %d, want default 2", p.K)
	}
}

func TestScalingLearnsRatio(t *testing.T) {
	p := NewScaling(1) // alpha 1: adopt the last ratio outright
	if got := p.Predict(1, 400); got != 400 {
		t.Fatalf("cold Predict = %v", got)
	}
	p.Observe(1, 400, 100) // ratio 0.25
	if got := p.Predict(1, 800); got != 200 {
		t.Fatalf("Predict = %v, want 800×0.25", got)
	}
	p.Observe(1, 100, 100) // ratio 1
	if got := p.Predict(1, 300); got != 300 {
		t.Fatalf("Predict = %v after ratio reset", got)
	}
}

func TestScalingEWMA(t *testing.T) {
	p := NewScaling(0.5)
	p.Observe(1, 100, 50) // ratio 0.5
	p.Observe(1, 100, 100)
	// EWMA: 0.5 + 0.5×(1.0 − 0.5) = 0.75
	if got := p.Predict(1, 100); math.Abs(got-75) > 1e-9 {
		t.Fatalf("Predict = %v, want 75", got)
	}
}

func TestScalingIgnoresDegenerateObservations(t *testing.T) {
	p := NewScaling(0.5)
	p.Observe(1, 0, 100)
	p.Observe(1, 100, 0)
	if got := p.Predict(1, 400); got != 400 {
		t.Fatalf("degenerate observations must not poison the ratio: %v", got)
	}
}

func TestScalingDefaultAlpha(t *testing.T) {
	if p := NewScaling(-1); p.Alpha != 0.5 {
		t.Fatalf("Alpha = %v", p.Alpha)
	}
	if p := NewScaling(2); p.Alpha != 0.5 {
		t.Fatalf("Alpha = %v", p.Alpha)
	}
}

func TestRecentAveragePad(t *testing.T) {
	p := NewRecentAverage(2)
	p.Pad = 2
	p.Observe(1, 500, 100)
	if got := p.Predict(1, 500); got != 200 {
		t.Fatalf("padded Predict = %v, want 200", got)
	}
	p.Cap = true
	if got := p.Predict(1, 150); got != 150 {
		t.Fatalf("cap after pad = %v, want the user estimate", got)
	}
}

func TestScalingPadNeverExceedsUserEstimate(t *testing.T) {
	p := NewScaling(1)
	p.Pad = 10
	p.Observe(1, 100, 50) // ratio 0.5; padded 5× estimate would overshoot
	if got := p.Predict(1, 100); got != 100 {
		t.Fatalf("padded Predict = %v, want clamped to the user estimate", got)
	}
	p.Pad = 1.5
	if got := p.Predict(1, 100); got != 75 {
		t.Fatalf("padded Predict = %v, want 50×1.5", got)
	}
}

func TestDeployedPredictorsRarelyUnderestimate(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 3000
	cfg.Users = workload.DefaultUserModelConfig()
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]Observation, len(jobs))
	for i, j := range jobs {
		obs[i] = Observation{UserID: j.UserID, Estimate: j.TraceEstimate, Runtime: j.Runtime}
	}
	id := Evaluate(Identity{}, obs)
	for _, name := range []string{"recent-average", "scaling"} {
		p, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		acc := Evaluate(p, obs)
		// The deployment-padded predictors must be tighter than user
		// estimates without drifting into chronic underestimation.
		if acc.MeanOverFactor >= id.MeanOverFactor {
			t.Errorf("%s over-factor %.2f not below user estimates %.2f",
				name, acc.MeanOverFactor, id.MeanOverFactor)
		}
		if acc.UnderestimatedPct > 40 {
			t.Errorf("%s underestimates %.0f%% of jobs; padding broken", name, acc.UnderestimatedPct)
		}
	}
}

func TestNewByName(t *testing.T) {
	for name, want := range map[string]string{
		"":               "user-estimate",
		"user-estimate":  "user-estimate",
		"recent-average": "recent-average-2",
		"scaling":        "scaling",
	} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("New(%q).Name() = %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := New("oracle"); err == nil {
		t.Fatal("unknown predictor accepted")
	}
}

func TestEvaluateOrderMatters(t *testing.T) {
	// Predict-before-observe: the first job of a user must be scored with
	// the fallback (user estimate), not with hindsight.
	obs := []Observation{
		{UserID: 1, Estimate: 1000, Runtime: 100},
		{UserID: 1, Estimate: 1000, Runtime: 100},
	}
	acc := Evaluate(NewRecentAverage(2), obs)
	if acc.Jobs != 2 {
		t.Fatalf("Jobs = %d", acc.Jobs)
	}
	// First job error |1000-100|/100 = 9; second |100-100|/100 = 0.
	if math.Abs(acc.MeanAbsRelErr-4.5) > 1e-9 {
		t.Fatalf("MeanAbsRelErr = %v, want 4.5", acc.MeanAbsRelErr)
	}
	if acc.UnderestimatedPct != 0 {
		t.Fatalf("UnderestimatedPct = %v", acc.UnderestimatedPct)
	}
}

func TestEvaluateSkipsZeroRuntime(t *testing.T) {
	acc := Evaluate(Identity{}, []Observation{{UserID: 1, Estimate: 10, Runtime: 0}})
	if acc.Jobs != 0 {
		t.Fatalf("Jobs = %d", acc.Jobs)
	}
}

func TestPredictorsBeatIdentityOnUserWorkload(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 3000
	cfg.Users = workload.DefaultUserModelConfig()
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]Observation, len(jobs))
	for i, j := range jobs {
		obs[i] = Observation{UserID: j.UserID, Estimate: j.TraceEstimate, Runtime: j.Runtime}
	}
	base := Evaluate(Identity{}, obs)
	for _, p := range []Predictor{NewRecentAverage(2), NewScaling(0.5)} {
		acc := Evaluate(p, obs)
		if acc.MeanAbsRelErr >= base.MeanAbsRelErr {
			t.Errorf("%s error %.2f not below user estimates %.2f",
				p.Name(), acc.MeanAbsRelErr, base.MeanAbsRelErr)
		}
	}
}

func TestWrappedSubstitutesEstimateAndLearns(t *testing.T) {
	c, err := cluster.NewTimeShared(2, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	inner := core.NewLibra(c, rec)
	p := NewScaling(1)
	w := Wrap(inner, rec, p)
	if w.Name() != "Libra+scaling" {
		t.Fatalf("Name = %q", w.Name())
	}
	e := sim.NewEngine()
	// User 7 pads 10×: job 1 runs 100 but claims 1000.
	j1 := workload.Job{ID: 1, Submit: 0, Runtime: 100, TraceEstimate: 1000, NumProc: 1, Deadline: 5000, UserID: 7}
	w.Submit(e, j1, 1000)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Completion observed: ratio learned as 0.1. The next padded job is
	// corrected: deadline 150 with user estimate 1000 would fail Libra's
	// share test; prediction 100 passes.
	j2 := workload.Job{ID: 2, Submit: e.Now(), Runtime: 100, TraceEstimate: 1000, NumProc: 1, Deadline: 150, UserID: 7}
	w.Submit(e, j2, 1000)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 0 || s.Met != 2 {
		t.Fatalf("summary = %+v: the corrected estimate should admit job 2", s)
	}
}

func TestWrappedWithoutCorrectionRejects(t *testing.T) {
	// Control for the test above: the same second job with Identity
	// prediction is rejected.
	c, err := cluster.NewTimeShared(2, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	inner := core.NewLibra(c, rec)
	w := Wrap(inner, rec, Identity{})
	e := sim.NewEngine()
	j2 := workload.Job{ID: 2, Submit: 0, Runtime: 100, TraceEstimate: 1000, NumProc: 1, Deadline: 150, UserID: 7}
	w.Submit(e, j2, 1000)
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestWrappedChainsExistingObserver(t *testing.T) {
	c, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	var seen int
	rec.Observer = func(metrics.JobResult) { seen++ }
	inner := core.NewLibra(c, rec)
	w := Wrap(inner, rec, NewScaling(0.5))
	e := sim.NewEngine()
	w.Submit(e, workload.Job{ID: 1, Submit: 0, Runtime: 10, TraceEstimate: 10, NumProc: 1, Deadline: 100, UserID: 1}, 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if seen != 1 {
		t.Fatalf("pre-existing observer called %d times, want 1", seen)
	}
}
