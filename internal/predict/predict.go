// Package predict provides system-generated runtime estimates: online
// predictors that learn each user's history and correct their submitted
// estimates. The paper's §2 cites the estimate-modelling line of work
// (Mu'alem & Feitelson 2001, Tsafrir et al. 2005); this package implements
// its standard predictors so the admission-control experiments can ask the
// natural follow-on question — how much of LibraRisk's advantage survives
// when the *system* fixes the estimates instead?
package predict

import (
	"fmt"
	"math"
)

// Predictor produces a runtime estimate for a job given the submitting
// user and the user's own estimate, and learns online from completions.
// Implementations are deterministic and not goroutine-safe (one predictor
// per simulation).
type Predictor interface {
	Name() string
	// Predict returns the estimate the scheduler should use. userEstimate
	// is what the user submitted; implementations may ignore it.
	Predict(userID int, userEstimate float64) float64
	// Observe feeds back a completed job's user estimate and actual
	// runtime.
	Observe(userID int, userEstimate, actualRuntime float64)
}

// Identity passes the user's estimate through unchanged — the baseline
// every correction scheme is judged against.
type Identity struct{}

// Name implements Predictor.
func (Identity) Name() string { return "user-estimate" }

// Predict implements Predictor.
func (Identity) Predict(_ int, userEstimate float64) float64 { return userEstimate }

// Observe implements Predictor.
func (Identity) Observe(int, float64, float64) {}

// RecentAverage is Tsafrir et al.'s predictor: the average of the user's
// last K actual runtimes, falling back to the user estimate until history
// exists. K = 2 is the published sweet spot.
type RecentAverage struct {
	K int
	// Cap, when true, never predicts above the user's own estimate —
	// users rarely *under*-request on systems that kill jobs at their
	// estimate, so the estimate is a sound upper bound there. Off by
	// default because the paper's setting lets jobs overrun.
	Cap bool
	// Pad multiplies predictions as a safety margin (>= 1). An unbiased
	// predictor underestimates about half the time, and underestimates
	// are exactly what share-based admission cannot survive; padding
	// trades back a little tightness for safety, as Tsafrir et al. do.
	Pad float64

	history map[int][]float64
}

// NewRecentAverage returns the K-last-runtimes predictor with no padding.
func NewRecentAverage(k int) *RecentAverage {
	if k <= 0 {
		k = 2
	}
	return &RecentAverage{K: k, Pad: 1, history: make(map[int][]float64)}
}

// Name implements Predictor.
func (p *RecentAverage) Name() string { return fmt.Sprintf("recent-average-%d", p.K) }

// Predict implements Predictor.
func (p *RecentAverage) Predict(userID int, userEstimate float64) float64 {
	h := p.history[userID]
	if len(h) == 0 {
		return userEstimate
	}
	var sum float64
	for _, v := range h {
		sum += v
	}
	pred := sum / float64(len(h))
	if p.Pad > 1 {
		pred *= p.Pad
	}
	if p.Cap && pred > userEstimate {
		pred = userEstimate
	}
	return math.Max(pred, 1e-6)
}

// Observe implements Predictor.
func (p *RecentAverage) Observe(userID int, _ float64, actualRuntime float64) {
	h := append(p.history[userID], actualRuntime)
	if len(h) > p.K {
		h = h[len(h)-p.K:]
	}
	p.history[userID] = h
}

// Scaling learns each user's characteristic actual/estimate ratio with an
// exponentially weighted moving average and predicts estimate × ratio. It
// exploits persistent estimation styles (chronic padders, precise users)
// rather than runtime similarity, so it keeps working when a user's job
// durations vary wildly but their padding habit does not.
type Scaling struct {
	// Alpha is the EWMA learning rate in (0, 1].
	Alpha float64
	// Pad multiplies predictions as a safety margin (>= 1); see
	// RecentAverage.Pad.
	Pad float64

	ratio map[int]float64
}

// NewScaling returns the ratio-learning predictor with no padding.
func NewScaling(alpha float64) *Scaling {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &Scaling{Alpha: alpha, Pad: 1, ratio: make(map[int]float64)}
}

// Name implements Predictor.
func (p *Scaling) Name() string { return "scaling" }

// Predict implements Predictor.
func (p *Scaling) Predict(userID int, userEstimate float64) float64 {
	r, ok := p.ratio[userID]
	if !ok {
		return userEstimate
	}
	pred := userEstimate * r
	if p.Pad > 1 {
		pred *= p.Pad
	}
	// Padding must not push the prediction beyond the user's own request:
	// that would make corrections strictly worse than doing nothing.
	if pred > userEstimate {
		pred = userEstimate
	}
	return math.Max(pred, 1e-6)
}

// Observe implements Predictor.
func (p *Scaling) Observe(userID int, userEstimate, actualRuntime float64) {
	if userEstimate <= 0 || actualRuntime <= 0 {
		return
	}
	obs := actualRuntime / userEstimate
	if old, ok := p.ratio[userID]; ok {
		p.ratio[userID] = old + p.Alpha*(obs-old)
	} else {
		p.ratio[userID] = obs
	}
}

// DeployPad is the safety margin the named online deployments use: wide
// enough to absorb within-user runtime jitter, far tighter than the ~4×
// padding chronic overestimators apply themselves.
const DeployPad = 2.0

// New constructs a predictor by name for online deployment:
// "user-estimate", "recent-average" (K=2), or "scaling" (α=0.5), the
// latter two with the DeployPad safety margin.
func New(name string) (Predictor, error) {
	switch name {
	case "", "user-estimate":
		return Identity{}, nil
	case "recent-average":
		p := NewRecentAverage(2)
		p.Pad = DeployPad
		p.Cap = true
		return p, nil
	case "scaling":
		p := NewScaling(0.5)
		p.Pad = DeployPad
		return p, nil
	default:
		return nil, fmt.Errorf("predict: unknown predictor %q", name)
	}
}

// Accuracy summarizes a predictor's error over an offline replay.
type Accuracy struct {
	Jobs int
	// MeanAbsRelErr is mean |prediction − actual| / actual.
	MeanAbsRelErr float64
	// MeanOverFactor is mean prediction/actual (1 = unbiased; > 1 biased
	// toward overestimation).
	MeanOverFactor float64
	// UnderestimatedPct is the share of jobs predicted below their actual
	// runtime — the dangerous direction for share-based admission.
	UnderestimatedPct float64
}

// Observation is the minimal job view Evaluate needs, ordered by
// submission.
type Observation struct {
	UserID   int
	Estimate float64
	Runtime  float64
}

// Evaluate replays jobs (in order) through the predictor — predicting
// before observing, exactly as an online scheduler would — and reports its
// accuracy.
func Evaluate(p Predictor, jobs []Observation) Accuracy {
	var acc Accuracy
	var absRel, over float64
	under := 0
	for _, j := range jobs {
		if j.Runtime <= 0 {
			continue
		}
		pred := p.Predict(j.UserID, j.Estimate)
		p.Observe(j.UserID, j.Estimate, j.Runtime)
		acc.Jobs++
		absRel += math.Abs(pred-j.Runtime) / j.Runtime
		over += pred / j.Runtime
		if pred < j.Runtime {
			under++
		}
	}
	if acc.Jobs > 0 {
		acc.MeanAbsRelErr = absRel / float64(acc.Jobs)
		acc.MeanOverFactor = over / float64(acc.Jobs)
		acc.UnderestimatedPct = 100 * float64(under) / float64(acc.Jobs)
	}
	return acc
}
