package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestServerExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil is a clean exit", nil, 0},
		{"canceled is a completed drain, exit 0", context.Canceled, 0},
		{"wrapped canceled", fmt.Errorf("serve: drain: %w", context.Canceled), 0},
		{"plain failure", errors.New("boom"), 1},
		{"deadline exceeded is a stuck drain, not a clean exit",
			context.DeadlineExceeded, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ServerExitCode(tc.err); got != tc.want {
				t.Fatalf("ServerExitCode(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"plain failure", errors.New("boom"), 1},
		{"canceled", context.Canceled, 130},
		{"wrapped canceled", fmt.Errorf("experiment: %w",
			fmt.Errorf("sweep interrupted: %w", context.Canceled)), 130},
		{"deadline exceeded is a failure, not an interrupt",
			context.DeadlineExceeded, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ExitCode(tc.err); got != tc.want {
				t.Fatalf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}
