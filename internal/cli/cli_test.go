package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, 0},
		{"plain failure", errors.New("boom"), 1},
		{"canceled", context.Canceled, 130},
		{"wrapped canceled", fmt.Errorf("experiment: %w",
			fmt.Errorf("sweep interrupted: %w", context.Canceled)), 130},
		{"deadline exceeded is a failure, not an interrupt",
			context.DeadlineExceeded, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ExitCode(tc.err); got != tc.want {
				t.Fatalf("ExitCode(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}
