// Package cli is the shared supervised entry point of the command-line
// tools: a run function executed under a context that SIGINT or SIGTERM
// cancels, with the error mapped onto a conventional exit code.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// RunFunc is a command body: parse args, do the work, write to stdout.
type RunFunc func(ctx context.Context, args []string, stdout io.Writer) error

// Main executes run under a context canceled by the first SIGINT or
// SIGTERM — the command is expected to stop admitting new work, drain
// what is in flight, and return the cancellation error. Once the context
// is canceled the default signal disposition is restored, so a second
// signal force-kills a stuck drain. A non-nil error is printed to stderr
// as one "name: error" line and mapped to an exit code via ExitCode:
// batch semantics, where an interrupt is an abnormal end (exit 130).
func Main(name string, run RunFunc) {
	mainWith(name, run, ExitCode)
}

// MainServer is Main with server exit semantics: a run that ends because
// its context was canceled performed a graceful drain, which is the
// normal way a daemon exits, so the interrupt maps to exit 0 instead of
// 130 (see ServerExitCode). The signal plumbing — first signal cancels
// the context, second signal force-kills a stuck drain via the restored
// default disposition — is the exact code path Main uses.
func MainServer(name string, run RunFunc) {
	mainWith(name, run, ServerExitCode)
}

// mainWith is the shared signal-handling entry point behind Main and
// MainServer; only the error-to-exit-code mapping differs.
func mainWith(name string, run RunFunc, exitCode func(error) int) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if code := exitCode(err); code != 0 {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(code)
		}
	}
}

// ExitCode maps a run error onto the process exit code: 130 (the
// shell's 128+SIGINT convention) when the error chain reports an
// interrupted run, 1 for every other failure, 0 for nil.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		return 130
	default:
		return 1
	}
}

// ServerExitCode maps a daemon's run error onto its exit code: a
// cancellation means the signal-triggered drain completed and the exit
// is clean (0); anything else is a failure (1).
func ServerExitCode(err error) int {
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		return 0
	default:
		return 1
	}
}
