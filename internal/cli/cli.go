// Package cli is the shared supervised entry point of the command-line
// tools: a run function executed under a context that SIGINT or SIGTERM
// cancels, with the error mapped onto a conventional exit code.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// RunFunc is a command body: parse args, do the work, write to stdout.
type RunFunc func(ctx context.Context, args []string, stdout io.Writer) error

// Main executes run under a context canceled by the first SIGINT or
// SIGTERM — the command is expected to stop admitting new work, drain
// what is in flight, and return the cancellation error. Once the context
// is canceled the default signal disposition is restored, so a second
// signal force-kills a stuck drain. A non-nil error is printed to stderr
// as one "name: error" line and mapped to an exit code via ExitCode.
func Main(name string, run RunFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(ExitCode(err))
	}
}

// ExitCode maps a run error onto the process exit code: 130 (the
// shell's 128+SIGINT convention) when the error chain reports an
// interrupted run, 1 for every other failure, 0 for nil.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, context.Canceled):
		return 130
	default:
		return 1
	}
}
