package cli

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles arms the standard pprof observability pair behind two
// optional file paths: a CPU profile recording from now until stop is
// called, and a heap profile snapshotted at stop time (after a GC, so it
// reflects live steady-state memory rather than collectible garbage).
// Either path may be empty to skip that profile. The returned stop
// function is always non-nil and must be called exactly once, typically
// via defer; it reports the first error encountered while finishing the
// profiles.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("heap profile: %w", err)
				}
				return first
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("heap profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("heap profile: %w", err)
			}
		}
		return first
	}, nil
}
