package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"clustersched/internal/sim"
)

func TestPredictEmptyNodeWithFeasibleCandidate(t *testing.T) {
	c := newTS(t, 1)
	n := c.Node(0)
	out := n.PredictDelays(0, &Candidate{JobID: 7, RefWork: 100, AbsDeadline: 400})
	if len(out) != 1 {
		t.Fatalf("predictions = %d", len(out))
	}
	p := out[0]
	if p.JobID != 7 || p.Delay != 0 {
		t.Fatalf("prediction = %+v, want zero delay", p)
	}
	// Alone, work-conserving: finishes at believed work.
	if math.Abs(p.Finish-100) > 1e-6 {
		t.Fatalf("Finish = %v, want 100", p.Finish)
	}
}

func TestPredictEmptyNodeWithInfeasibleCandidate(t *testing.T) {
	c := newTS(t, 1)
	n := c.Node(0)
	out := n.PredictDelays(0, &Candidate{JobID: 7, RefWork: 500, AbsDeadline: 100})
	if len(out) != 1 {
		t.Fatalf("predictions = %d", len(out))
	}
	if out[0].Delay <= 0 {
		t.Fatalf("delay = %v, want positive: 500 s of work cannot meet a 100 s deadline", out[0].Delay)
	}
}

func TestPredictOversubscriptionDelaysSomeone(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	n := c.Node(0)
	// Existing job: share 0.8 (400 work / 500 deadline).
	if _, err := c.Submit(e, job(1, 0, 400, 500, 1), 400, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Candidate adds share 0.5: total 1.3 — someone must be late.
	out := n.PredictDelays(0, &Candidate{JobID: 2, RefWork: 100, AbsDeadline: 200})
	var delayed int
	for _, p := range out {
		if p.Delay > 0 {
			delayed++
		}
	}
	if delayed == 0 {
		t.Fatalf("no predicted delay despite total share 1.3: %+v", out)
	}
}

func TestPredictFeasibleAdditionHasNoDelays(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	n := c.Node(0)
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	out := n.PredictDelays(0, &Candidate{JobID: 2, RefWork: 100, AbsDeadline: 250})
	// Shares: 0.25 + 0.4 = 0.65 ≤ 1: all meet deadlines.
	for _, p := range out {
		if p.Delay != 0 {
			t.Fatalf("prediction %+v has delay with feasible total share", p)
		}
	}
}

func TestPredictSeesOverrunPastDeadlineJob(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	// Believed 10, real 1000, deadline 50: by t=100 the job is overrun AND
	// past its deadline. Libra's share test sees 0 demand; the predictor
	// must report a positive delay.
	if _, err := c.Submit(e, job(1, 0, 1000, 50, 1), 10, []int{0}); err != nil {
		t.Fatal(err)
	}
	e.At(100, sim.PriorityMonitor, func(e *sim.Engine) {
		if s := c.Node(0).LibraShare(e.Now()); s != 0 {
			t.Errorf("LibraShare = %v, want 0", s)
		}
		out := c.Node(0).PredictDelays(e.Now(), nil)
		if len(out) != 1 || out[0].Delay <= 0 {
			t.Errorf("predictor verdict = %+v, want positive delay", out)
		}
	})
	e.SetHorizon(150)
	runAll(t, e)
}

func TestPredictDoesNotMutateNode(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	n := c.Node(0)
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	before := n.LibraShare(0)
	for i := 0; i < 10; i++ {
		n.PredictDelays(0, &Candidate{JobID: 2, RefWork: 50, AbsDeadline: 100})
	}
	if after := n.LibraShare(0); after != before {
		t.Fatalf("share changed %v -> %v after predictions", before, after)
	}
	if n.NumSlices() != 1 {
		t.Fatalf("slices = %d after predictions", n.NumSlices())
	}
}

func TestPredictMatchesExecutionForAccurateJobs(t *testing.T) {
	// The predictor and the live engine share conventions, so for accurate
	// estimates predicted finish times must match what actually happens.
	e := sim.NewEngine()
	c := newTS(t, 1)
	finish := map[int]float64{}
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { finish[rj.Job.ID] = rj.Finish }
	if _, err := c.Submit(e, job(1, 0, 100, 200, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(e, job(2, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	pred := map[int]float64{}
	for _, p := range c.Node(0).PredictDelays(0, nil) {
		pred[p.JobID] = p.Finish
	}
	runAll(t, e)
	for id, f := range finish {
		if math.Abs(pred[id]-f) > 0.5 {
			t.Fatalf("job %d predicted %v actual %v", id, pred[id], f)
		}
	}
}

func TestPredictDelayNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		c, err := NewTimeShared(1, 168, DefaultConfig())
		if err != nil {
			return false
		}
		e := sim.NewEngine()
		nJobs := 1 + r.Intn(5)
		for i := 0; i < nJobs; i++ {
			run := 10 + r.Float64()*500
			dl := 10 + r.Float64()*1000
			est := run * (0.3 + r.Float64()*3)
			if _, err := c.Submit(e, job(i+1, 0, run, dl, 1), est, []int{0}); err != nil {
				return false
			}
		}
		out := c.Node(0).PredictDelays(0, &Candidate{JobID: 99, RefWork: 10 + r.Float64()*300, AbsDeadline: 10 + r.Float64()*500})
		if len(out) != nJobs+1 {
			return false
		}
		for _, p := range out {
			if p.Delay < 0 || math.IsNaN(p.Delay) || math.IsNaN(p.Finish) {
				return false
			}
			if p.Delay > 0 && p.Finish <= p.AbsDeadline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictTerminatesOnTinyWork(t *testing.T) {
	c := newTS(t, 1)
	out := c.Node(0).PredictDelays(0, &Candidate{JobID: 1, RefWork: 1e-12, AbsDeadline: 10})
	if len(out) != 1 || out[0].Delay != 0 {
		t.Fatalf("tiny-work prediction = %+v", out)
	}
}
