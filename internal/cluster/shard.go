package cluster

import (
	"fmt"
	"slices"

	"clustersched/internal/sim"
)

// Sharded execution support: AttachShards partitions a TimeShared cluster's
// nodes across K shard engines so their update events (the only events
// nodes ever schedule) can be processed concurrently between admission
// barriers. Nodes never interact with each other — every cross-node effect
// flows through the policy's admit decision or a fault event, both of which
// run on the global engine at a barrier — so partitioning by node is exact,
// not an approximation.
//
// The one piece of shared state a node event touches is job-level gang
// accounting (RunningJob countdown, the running counter, observability,
// OnJobDone). During a phase those completions are parked per shard and
// applied by EndShardPhase in (completion time, job id) order, which is
// exactly the order the sequential engine would have fired them in — see
// DESIGN.md "Sharded execution" for the determinism argument.

// deferredDone is one slice completion parked during a shard phase.
type deferredDone struct {
	time float64
	sl   *slice
}

// shardRuntime is the cluster-side state of an attached sharding.
type shardRuntime struct {
	engines []*sim.Engine
	// index maps a shard engine back to its slot, so sliceDone can route a
	// deferral without widening the node callback signature.
	index map[*sim.Engine]int
	// inPhase is true while shard engines run concurrently. It is written
	// by the coordinator strictly before and after the pool barrier (whose
	// atomics publish it), never during a phase.
	inPhase bool
	// deferred collects parked completions, one buffer per shard so phase
	// workers never share a slice.
	deferred [][]deferredDone
	// merged is the coordinator's scratch for the barrier-time sort.
	merged []deferredDone
}

// AttachShards installs K shard engines on the cluster, partitioning nodes
// into contiguous ranges: node i belongs to shard i*K/n. Contiguity keeps
// each shard's slice of the node array cache-dense, and the rule is exact
// for any n and K with near-equal sizes. Every node's update events are
// scheduled on its shard engine from here on; Reset or DetachShards
// reverts to sequential mode. The engines must be distinct, freshly reset
// (or idle), and outnumbered by nodes at most K = n.
func (c *TimeShared) AttachShards(engines []*sim.Engine) error {
	k := len(engines)
	if k < 1 {
		return fmt.Errorf("cluster: AttachShards with no engines")
	}
	if k > len(c.nodes) {
		return fmt.Errorf("cluster: %d shards for %d nodes", k, len(c.nodes))
	}
	if c.shards != nil {
		return fmt.Errorf("cluster: shards already attached")
	}
	sr := &shardRuntime{
		engines:  slices.Clone(engines),
		index:    make(map[*sim.Engine]int, k),
		deferred: make([][]deferredDone, k),
	}
	for i, e := range engines {
		if e == nil {
			return fmt.Errorf("cluster: shard engine %d is nil", i)
		}
		if _, dup := sr.index[e]; dup {
			return fmt.Errorf("cluster: shard engine %d duplicated", i)
		}
		sr.index[e] = i
	}
	n := len(c.nodes)
	for i, node := range c.nodes {
		s := i * k / n
		node.eng = engines[s]
		node.shard = s
	}
	c.shards = sr
	return nil
}

// DetachShards reverts the cluster to sequential single-engine mode. Any
// still-pending events on the shard engines remain the caller's to drain
// or reset; parked completions that were never applied are dropped.
func (c *TimeShared) DetachShards() {
	if c.shards == nil {
		return
	}
	for _, node := range c.nodes {
		node.eng = nil
		node.shard = 0
	}
	c.shards = nil
}

// ShardEngines returns the attached shard engines in shard order, or nil
// in sequential mode. The returned slice is the runtime's own; callers
// must not mutate it.
func (c *TimeShared) ShardEngines() []*sim.Engine {
	if c.shards == nil {
		return nil
	}
	return c.shards.engines
}

// ShardOfNode returns the shard index owning node id (0 when detached).
func (c *TimeShared) ShardOfNode(id int) int { return c.nodes[id].shard }

// BeginShardPhase marks the start of a concurrent shard phase: slice
// completions are parked instead of finished until EndShardPhase. Must be
// called by the coordinator with no phase in flight.
func (c *TimeShared) BeginShardPhase() {
	if c.shards == nil {
		panic("cluster: BeginShardPhase without attached shards")
	}
	c.shards.inPhase = true
}

// EndShardPhase closes a concurrent phase and applies every parked slice
// completion on the coordinator, in ascending (completion time, job id)
// order — the exact order the sequential engine fires them in (two
// distinct jobs completing at the same instant have measure zero under the
// continuous workload distributions; same-job ties are commutative). e is
// the global engine, handed to completion callbacks exactly as the
// sequential path would.
func (c *TimeShared) EndShardPhase(e *sim.Engine) {
	sr := c.shards
	if sr == nil || !sr.inPhase {
		panic("cluster: EndShardPhase without a phase in flight")
	}
	sr.inPhase = false
	merged := sr.merged[:0]
	for s, buf := range sr.deferred {
		merged = append(merged, buf...)
		for i := range buf {
			buf[i].sl = nil
		}
		sr.deferred[s] = buf[:0]
	}
	// Stable sort so the (probability-zero) cross-job time-and-id tie
	// still resolves deterministically, by shard index.
	slices.SortStableFunc(merged, func(a, b deferredDone) int {
		switch {
		case a.time < b.time:
			return -1
		case a.time > b.time:
			return 1
		case a.sl.job.Job.ID < b.sl.job.Job.ID:
			return -1
		case a.sl.job.Job.ID > b.sl.job.Job.ID:
			return 1
		}
		return 0
	})
	for _, d := range merged {
		c.finishSlice(e, d.time, d.sl)
	}
	for i := range merged {
		merged[i].sl = nil
	}
	sr.merged = merged[:0]
}

// ShardsPending sums the live pending events across all shard engines; 0
// when detached. The monitor uses it to decide whether the system has
// drained (see core.Monitor.PendingExtra).
func (c *TimeShared) ShardsPending() int {
	if c.shards == nil {
		return 0
	}
	total := 0
	for _, e := range c.shards.engines {
		total += e.Pending()
	}
	return total
}
