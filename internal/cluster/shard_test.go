package cluster

import (
	"testing"

	"clustersched/internal/sim"
)

func shardEngines(k int) []*sim.Engine {
	engines := make([]*sim.Engine, k)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	return engines
}

func TestAttachShardsPartitionIsContiguousAndBalanced(t *testing.T) {
	c, err := NewTimeShared(10, 168, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachShards(shardEngines(4)); err != nil {
		t.Fatal(err)
	}
	defer c.DetachShards()
	// node i -> shard i*k/n: contiguous, monotone, sizes within one.
	counts := make([]int, 4)
	prev := 0
	for i := 0; i < c.Len(); i++ {
		s := c.ShardOfNode(i)
		if s < prev || s >= 4 {
			t.Fatalf("node %d in shard %d after shard %d", i, s, prev)
		}
		if want := i * 4 / 10; s != want {
			t.Fatalf("node %d in shard %d, want %d", i, s, want)
		}
		prev = s
		counts[s]++
	}
	for s, n := range counts {
		if n < 2 || n > 3 {
			t.Fatalf("shard %d holds %d nodes, want 2 or 3", s, n)
		}
	}
	if got := len(c.ShardEngines()); got != 4 {
		t.Fatalf("ShardEngines() = %d engines, want 4", got)
	}
}

func TestAttachShardsValidation(t *testing.T) {
	c, err := NewTimeShared(4, 168, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachShards(nil); err == nil {
		t.Fatal("AttachShards(nil) succeeded")
	}
	if err := c.AttachShards(shardEngines(5)); err == nil {
		t.Fatal("more shards than nodes succeeded")
	}
	if err := c.AttachShards([]*sim.Engine{nil, nil}); err == nil {
		t.Fatal("nil engines succeeded")
	}
	e := sim.NewEngine()
	if err := c.AttachShards([]*sim.Engine{e, e}); err == nil {
		t.Fatal("duplicate engines succeeded")
	}
	if err := c.AttachShards(shardEngines(2)); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachShards(shardEngines(2)); err == nil {
		t.Fatal("double attach succeeded")
	}
	c.DetachShards()
	if err := c.AttachShards(shardEngines(2)); err != nil {
		t.Fatalf("re-attach after detach failed: %v", err)
	}
	c.DetachShards()
}

func TestDetachAndResetClearNodeRouting(t *testing.T) {
	c, err := NewTimeShared(4, 168, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachShards(shardEngines(2)); err != nil {
		t.Fatal(err)
	}
	if c.ShardOfNode(3) != 1 {
		t.Fatalf("node 3 in shard %d, want 1", c.ShardOfNode(3))
	}
	c.DetachShards()
	for i := 0; i < c.Len(); i++ {
		if c.nodes[i].eng != nil || c.nodes[i].shard != 0 {
			t.Fatalf("node %d kept shard routing after detach", i)
		}
	}
	// Reset must also drop an attachment (a fresh run may be sequential).
	if err := c.AttachShards(shardEngines(2)); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.shards != nil {
		t.Fatal("Reset kept the shard runtime")
	}
	for i := 0; i < c.Len(); i++ {
		if c.nodes[i].eng != nil {
			t.Fatalf("node %d kept its shard engine after Reset", i)
		}
	}
}

func TestShardedCompletionsMatchSequential(t *testing.T) {
	// One job per node across a 4-node cluster split into 2 shards;
	// driving the shard engines through a phase + barrier must finish the
	// same jobs at the same times the sequential cluster reports.
	run := func(sharded bool) []float64 {
		e := sim.NewEngine()
		c, err := NewTimeShared(4, 168, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var finishes []float64
		c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) {
			finishes = append(finishes, rj.Finish)
		}
		if sharded {
			if err := c.AttachShards(shardEngines(2)); err != nil {
				t.Fatal(err)
			}
			defer c.DetachShards()
		}
		for i := 0; i < 4; i++ {
			j := job(i+1, 0, float64(1000*(i+1)), 1e9, 1)
			if _, err := c.Submit(e, j, j.Runtime, []int{i}); err != nil {
				t.Fatal(err)
			}
		}
		if sharded {
			c.BeginShardPhase()
			for _, se := range c.ShardEngines() {
				se.SetHorizon(1e18)
				if err := se.Run(); err != nil {
					t.Fatal(err)
				}
			}
			c.EndShardPhase(e)
			if c.ShardsPending() != 0 {
				t.Fatalf("ShardsPending = %d after drain", c.ShardsPending())
			}
		} else if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return finishes
	}
	seq := run(false)
	sh := run(true)
	if len(seq) != 4 || len(sh) != 4 {
		t.Fatalf("finishes: sequential %d, sharded %d, want 4", len(seq), len(sh))
	}
	for i := range seq {
		if seq[i] != sh[i] {
			t.Fatalf("finish %d: sequential %g, sharded %g", i, seq[i], sh[i])
		}
	}
}
