package cluster

import (
	"fmt"
	"math"

	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// RunningJob is a job instance admitted to a cluster. It is created by the
// engines' Submit/Start methods and handed back through completion
// callbacks.
type RunningJob struct {
	Job workload.Job
	// Estimate is the runtime estimate in effect when the job was
	// admitted, in reference seconds. The scheduler never sees
	// Job.Runtime.
	Estimate float64
	Start    float64
	Finish   float64 // set when the last slice completes
	NodeIDs  []int

	remainingSlices int
	done            bool
}

// Done reports whether every slice of the job has completed.
func (rj *RunningJob) Done() bool { return rj.done }

// Delay returns the paper's eq. (3): the amount by which the job's
// response time exceeded its deadline, or 0 if the deadline was met. Only
// meaningful after completion.
func (rj *RunningJob) Delay() float64 {
	return math.Max(0, (rj.Finish-rj.Job.Submit)-rj.Job.Deadline)
}

// DeadlineMet reports whether the job finished within its hard deadline.
func (rj *RunningJob) DeadlineMet() bool {
	return rj.done && rj.Finish <= rj.Job.AbsDeadline()+epsTime
}

// Slowdown returns response time divided by the minimum runtime the job
// needed on the slowest node it occupied.
func (rj *RunningJob) Slowdown(minRuntime float64) float64 {
	if minRuntime <= 0 {
		return 0
	}
	return (rj.Finish - rj.Job.Submit) / minRuntime
}

// slice is the portion of a running job hosted on one node. Work amounts
// are in node-seconds (dedicated seconds at this node's rating).
type slice struct {
	job          *RunningJob
	realWork     float64 // remaining real work; drives completion
	believedWork float64 // remaining work per the admitted estimate
	rate         float64 // current service rate in node-seconds/second
}

// PSNode is a time-shared node running deadline-proportional processor
// sharing. Between scheduler events each active slice receives a constant
// rate derived from its share weight (eq. 1); weights are re-evaluated on
// every arrival, completion, estimate exhaustion and deadline crossing.
type PSNode struct {
	id     int
	rating float64
	cfg    Config

	slices []*slice
	lastT  float64
	update *sim.Event

	// down marks a crashed node: it holds no slices and refuses new ones
	// until it recovers (see TimeShared.SetNodeDown).
	down bool
	// speed is the node's current effective-rate multiplier: 1 nominal,
	// in (0,1) while a transient straggler condition degrades it. Rates
	// derived by recompute are scaled by it, so a speed change is a
	// work-conserving re-timing of every in-flight slice.
	speed float64

	// version counts state mutations: it is bumped whenever advance
	// accrues progress, a slice is added, or a completed slice is retired.
	// Consumers key caches of derived quantities (fluid predictions, risk
	// aggregates) on it; an unchanged version guarantees the slice set,
	// remaining-work values and rates are all unchanged since last read.
	version uint64

	// busyIntegral accumulates ∫Σrates dt — the exact node-seconds of
	// work served, for utilization accounting.
	busyIntegral float64

	// weightScratch is reused by recompute so re-deriving rates on every
	// arrival/completion/deadline event does not allocate.
	weightScratch []float64

	// Predictor scratch buffers, reused across PredictDelaysScratch calls
	// so the admission hot path runs allocation-free in steady state.
	predItems []fluidItem
	predOut   []PredictedDelay

	// doneScratch is reused by retireCompleted so completion bursts do not
	// allocate.
	doneScratch []*slice

	// onSliceDone is installed by the owning TimeShared cluster.
	onSliceDone func(e *sim.Engine, sl *slice)

	// eng, when non-nil, is the shard engine this node's update events are
	// scheduled on (see TimeShared.AttachShards). Nil means events go to
	// whatever engine invoked the mutation — the sequential single-engine
	// mode.
	eng *sim.Engine
	// shard is the node's shard index while sharding is attached, so the
	// cluster can route deferred completions without a lookup.
	shard int

	// updateH is the bound-once method value for onUpdate: evaluating
	// n.onUpdate at each reschedule would allocate a fresh closure per
	// event on the hot path.
	updateH sim.Handler
}

// ID returns the node's index within its cluster.
func (n *PSNode) ID() int { return n.id }

// Rating returns the node's SPEC rating.
func (n *PSNode) Rating() float64 { return n.rating }

// NumSlices returns the number of active slices.
func (n *PSNode) NumSlices() int { return len(n.slices) }

// Down reports whether the node is currently crashed.
func (n *PSNode) Down() bool { return n.down }

// Speed returns the node's current effective-rate multiplier (1 nominal).
func (n *PSNode) Speed() float64 { return n.speed }

// SetSpeed re-times the node at a new effective-rate multiplier: progress
// up to now is accrued at the old rates, then rates are re-derived scaled
// by factor and the next change event is rescheduled. factor must be
// positive; 1 restores nominal speed.
func (n *PSNode) SetSpeed(e *sim.Engine, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("cluster: node %d speed factor %g, want > 0", n.id, factor))
	}
	if factor == n.speed {
		return
	}
	n.advance(e.Now())
	n.speed = factor
	n.version++
	n.recompute(e.Now())
	n.reschedule(e)
}

// Version returns the node's state-mutation counter. Two reads returning
// the same value bracket a window in which no slice arrived, completed,
// or accrued progress, so any cache keyed on it is still valid.
func (n *PSNode) Version() uint64 { return n.version }

// scratchWeights returns a reusable []float64 of length k, growing the
// node's scratch buffer on demand.
func (n *PSNode) scratchWeights(k int) []float64 {
	if cap(n.weightScratch) < k {
		n.weightScratch = make([]float64, k)
	}
	return n.weightScratch[:k]
}

// weightAt computes the proportional-share weight of a slice with the
// given believed remaining work and remaining deadline, applying the
// conventions in Config.
func (n *PSNode) weightAt(believed, remDeadline float64) float64 {
	switch {
	case believed <= epsWork:
		// Overrun: the allocator believes the job is about to exit and
		// grants only a residual share.
		return n.cfg.OverrunFloorWeight
	case remDeadline <= epsTime:
		// Past deadline with believed work left: the share formula
		// diverges; demand a full processor.
		return n.cfg.MaxWeight
	default:
		return math.Min(believed/remDeadline, n.cfg.MaxWeight)
	}
}

// advance accrues progress from lastT to now at the current rates.
func (n *PSNode) advance(now float64) {
	dt := now - n.lastT
	if dt > 0 {
		for _, sl := range n.slices {
			w := sl.rate * dt
			sl.realWork -= w
			sl.believedWork -= w
			n.busyIntegral += w
		}
		n.version++
	}
	n.lastT = now
}

// ServedWork returns the exact node-seconds of work this node has served
// up to its last accrual point.
func (n *PSNode) ServedWork() float64 { return n.busyIntegral }

// recompute re-derives weights and rates for all slices at time now.
func (n *PSNode) recompute(now float64) {
	var total float64
	weights := n.scratchWeights(len(n.slices))
	for i, sl := range n.slices {
		w := n.weightAt(sl.believedWork, sl.job.Job.AbsDeadline()-now)
		weights[i] = w
		total += w
	}
	for i, sl := range n.slices {
		switch {
		case total <= 0:
			sl.rate = 0
		case n.cfg.WorkConserving:
			// Redistribute all capacity proportionally: Σ rates = 1.
			sl.rate = weights[i] / total
		case total > 1:
			// Oversubscribed: scale guarantees down proportionally.
			sl.rate = weights[i] / total
		default:
			// Strict shares; the node idles with the rest.
			sl.rate = weights[i]
		}
	}
	if n.speed != 1 {
		// Degraded node: every slice advances at the straggler-scaled
		// rate. Guarded so the nominal path multiplies by nothing and
		// stays bit-identical to the pre-fault model.
		for _, sl := range n.slices {
			sl.rate *= n.speed
		}
	}
}

// nextChange returns the delay until the earliest of: a slice's real
// completion, a slice's believed-work exhaustion (weight regime change), or
// a slice's deadline crossing (weight regime change). Returns +Inf when
// nothing is pending.
func (n *PSNode) nextChange(now float64) float64 {
	next := math.Inf(1)
	for _, sl := range n.slices {
		if sl.rate > 0 {
			if t := sl.realWork / sl.rate; t < next {
				next = t
			}
			if sl.believedWork > epsWork {
				if t := sl.believedWork / sl.rate; t < next {
					next = t
				}
			}
		}
		if rd := sl.job.Job.AbsDeadline() - now; rd > epsTime && rd < next && sl.believedWork > epsWork {
			next = rd
		}
	}
	return next
}

// reschedule cancels any pending update event and schedules the next one.
func (n *PSNode) reschedule(e *sim.Engine) {
	if n.update != nil {
		n.update.Cancel()
		n.update = nil
	}
	next := n.nextChange(e.Now())
	if math.IsInf(next, 1) {
		return
	}
	if next < 1e-6 {
		next = 1e-6 // guarantee forward progress despite float noise
	}
	if n.updateH == nil {
		n.updateH = n.onUpdate
	}
	// Under sharding the node's timer lives on its shard engine. The due
	// time is still relative to the mutating engine's clock: during a shard
	// phase that IS the shard engine, and at a barrier it is the global
	// engine, whose clock never trails a shard's next-event time — so the
	// absolute time below can never be in the shard engine's past.
	eng := e
	if n.eng != nil {
		eng = n.eng
	}
	n.update = eng.At(e.Now()+next, sim.PriorityCompletion, n.updateH)
}

// onUpdate is the node's event handler: accrue progress, retire completed
// slices, re-derive rates, schedule the next change.
func (n *PSNode) onUpdate(e *sim.Engine) {
	n.update = nil
	n.advance(e.Now())
	n.retireCompleted(e)
	n.recompute(e.Now())
	n.reschedule(e)
}

func (n *PSNode) retireCompleted(e *sim.Engine) {
	kept := n.slices[:0]
	done := n.doneScratch[:0]
	for _, sl := range n.slices {
		if sl.realWork <= epsWork {
			done = append(done, sl)
		} else {
			kept = append(kept, sl)
		}
	}
	n.slices = kept
	n.doneScratch = done
	if len(done) > 0 {
		n.version++
	}
	for _, sl := range done {
		n.onSliceDone(e, sl)
	}
}

// reset returns the node to its freshly constructed state, keeping every
// scratch buffer. The pending update-event reference is dropped without
// Cancel: the caller (TimeShared.Reset) guarantees the engine was reset
// first, which already reclaimed the event.
func (n *PSNode) reset() {
	for i := range n.slices {
		n.slices[i] = nil
	}
	n.slices = n.slices[:0]
	for i := range n.doneScratch {
		n.doneScratch[i] = nil
	}
	n.doneScratch = n.doneScratch[:0]
	n.lastT = 0
	n.update = nil
	n.down = false
	n.speed = 1
	n.version = 0
	n.busyIntegral = 0
	// Sharding is a per-run attachment; a reset node always reverts to the
	// sequential single-engine mode until AttachShards runs again.
	n.eng = nil
	n.shard = 0
}

// addSlice places a new slice on the node and re-derives rates.
func (n *PSNode) addSlice(e *sim.Engine, sl *slice) {
	n.advance(e.Now())
	n.slices = append(n.slices, sl)
	n.version++
	n.recompute(e.Now())
	n.reschedule(e)
}

// projectedBelieved returns a slice's believed remaining work at time now
// without mutating node state (progress since the last accrual point is
// applied virtually).
func (n *PSNode) projectedBelieved(sl *slice, now float64) float64 {
	return sl.believedWork - sl.rate*(now-n.lastT)
}

// LibraShare returns the node's total processor-time share as Libra's
// admission test computes it (eq. 2): the sum over active slices of
// believed remaining work / remaining deadline. Slices whose believed work
// is exhausted contribute zero — the allocator thinks they are about to
// exit, which is precisely how inaccurate (under-)estimates fool Libra. A
// slice past its deadline with believed work left contributes +Inf,
// rendering the node unsuitable.
func (n *PSNode) LibraShare(now float64) float64 {
	var total float64
	for _, sl := range n.slices {
		total += libraShare(n.projectedBelieved(sl, now), sl.job.Job.AbsDeadline()-now)
	}
	return total
}

// LibraShareWith returns LibraShare plus the share a candidate job slice
// (work in node-seconds, absolute deadline) would add.
func (n *PSNode) LibraShareWith(now, work, absDeadline float64) float64 {
	return n.LibraShare(now) + libraShare(work, absDeadline-now)
}

// LibraShareWithLimit is LibraShareWith with an early exit: because every
// term of the share sum is non-negative, the accumulation can stop as soon
// as the running total exceeds limit — the node is already unsuitable and
// the exact overshoot is irrelevant. When the returned ok is true the
// share is the exact same float64 LibraShareWith computes (identical
// accumulation order); when false the share is a partial sum > limit.
func (n *PSNode) LibraShareWithLimit(now, work, absDeadline, limit float64) (share float64, ok bool) {
	var total float64
	for _, sl := range n.slices {
		total += libraShare(n.projectedBelieved(sl, now), sl.job.Job.AbsDeadline()-now)
		if total > limit {
			return total, false
		}
	}
	total += libraShare(work, absDeadline-now)
	return total, total <= limit
}

// PredictionStable reports whether the node's no-candidate fluid
// prediction is invariant in absolute time until the next version bump.
// This holds for an empty node (no predictions at all) and for a
// work-conserving node running a single slice with believed work left: a
// lone slice is served at rate 1 regardless of its weight, so its
// predicted finish lastT+believedWork does not depend on when the
// predictor looks, and every regime change (believed-work exhaustion,
// deadline crossing, real completion) is itself a node event that bumps
// the version. Multi-slice predictions re-derive weights at the
// evaluation instant and are therefore time-dependent.
func (n *PSNode) PredictionStable() bool {
	switch len(n.slices) {
	case 0:
		return true
	case 1:
		return n.cfg.WorkConserving && n.slices[0].believedWork > epsWork
	default:
		return false
	}
}

func libraShare(believed, remDeadline float64) float64 {
	switch {
	case believed <= epsWork:
		return 0
	case remDeadline <= epsTime:
		return math.Inf(1)
	default:
		return believed / remDeadline
	}
}

// WorkToNodeSeconds converts reference-seconds of work to this node's
// dedicated seconds via the machine-independent MI length.
func (n *PSNode) WorkToNodeSeconds(refSeconds float64) float64 {
	return refSeconds * n.cfg.RefRating / n.rating
}

// NodeSecondsToWork is the inverse conversion: this node's dedicated
// seconds back to reference seconds, used when a killed job's remaining
// work must be re-expressed for resubmission.
func (n *PSNode) NodeSecondsToWork(nodeSeconds float64) float64 {
	return nodeSeconds * n.rating / n.cfg.RefRating
}

// markDown crashes the node: progress is accrued up to now, every slice is
// dropped (the cluster has already claimed them for job-level kill
// bookkeeping), the pending update event is cancelled, and the node
// refuses work until markUp. Returns the slices that were in flight.
func (n *PSNode) markDown(e *sim.Engine) []*slice {
	n.advance(e.Now())
	victims := append([]*slice(nil), n.slices...)
	n.slices = n.slices[:0]
	n.down = true
	n.version++
	if n.update != nil {
		n.update.Cancel()
		n.update = nil
	}
	return victims
}

// markUp recovers a crashed node; it comes back empty at its current
// speed factor.
func (n *PSNode) markUp() {
	n.down = false
	n.version++
}

// removeJobSlices drops every slice belonging to rj (a job killed
// elsewhere in its gang) and returns the remaining real and believed work
// of the dropped slices in reference seconds. Rates are re-derived for the
// survivors.
func (n *PSNode) removeJobSlices(e *sim.Engine, rj *RunningJob) (remReal, remBelieved float64, found bool) {
	n.advance(e.Now())
	kept := n.slices[:0]
	for _, sl := range n.slices {
		if sl.job != rj {
			kept = append(kept, sl)
			continue
		}
		found = true
		if w := n.NodeSecondsToWork(math.Max(0, sl.realWork)); w > remReal {
			remReal = w
		}
		if w := n.NodeSecondsToWork(math.Max(0, sl.believedWork)); w > remBelieved {
			remBelieved = w
		}
	}
	// Zero the tail so dropped slices do not leak through the backing
	// array.
	for i := len(kept); i < len(n.slices); i++ {
		n.slices[i] = nil
	}
	n.slices = kept
	if found {
		n.version++
		n.recompute(e.Now())
		n.reschedule(e)
	}
	return remReal, remBelieved, found
}

// Utilization returns the fraction of capacity currently allocated
// (Σ rates), for monitoring.
func (n *PSNode) Utilization() float64 {
	var total float64
	for _, sl := range n.slices {
		total += sl.rate
	}
	return total
}
