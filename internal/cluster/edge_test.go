package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func TestManySimultaneousSubmissionsDrain(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 4)
	done := 0
	c.OnJobDone = func(*sim.Engine, *RunningJob) { done++ }
	for i := 1; i <= 40; i++ {
		node := (i - 1) % 4
		if _, err := c.Submit(e, job(i, 0, 10+float64(i), 1e6, 1), 10+float64(i), []int{node}); err != nil {
			t.Fatal(err)
		}
	}
	e.MaxEvents = 1_000_000
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 40 {
		t.Fatalf("done = %d, want 40", done)
	}
	if c.Running() != 0 {
		t.Fatalf("Running = %d after drain", c.Running())
	}
}

func TestTinyRuntimeJobCompletes(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	if _, err := c.Submit(e, job(1, 0, 1e-6, 1, 1), 1e-6, []int{0}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	if done == nil || !done.DeadlineMet() {
		t.Fatalf("tiny job outcome = %+v", done)
	}
}

func TestSlowdownAndDelayAccessors(t *testing.T) {
	rj := &RunningJob{
		Job:    job(1, 100, 50, 200, 1),
		Finish: 400, // response 300, deadline 200 → delay 100
		done:   true,
	}
	if d := rj.Delay(); math.Abs(d-100) > 1e-9 {
		t.Fatalf("Delay = %v, want 100", d)
	}
	if rj.DeadlineMet() {
		t.Fatal("DeadlineMet should be false")
	}
	if s := rj.Slowdown(50); math.Abs(s-6) > 1e-9 {
		t.Fatalf("Slowdown = %v, want 6", s)
	}
	if s := rj.Slowdown(0); s != 0 {
		t.Fatalf("Slowdown(0) = %v, want guarded 0", s)
	}
	// Met job has zero delay.
	rj.Finish = 250
	if d := rj.Delay(); d != 0 {
		t.Fatalf("Delay = %v for met job", d)
	}
	if !rj.DeadlineMet() {
		t.Fatal("DeadlineMet should be true at finish 250 < 300")
	}
}

func TestNoLeakedLiveEventsAfterDrain(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	for i := 1; i <= 6; i++ {
		if _, err := c.Submit(e, job(i, 0, 20, 1e5, 1), 20, []int{(i - 1) % 2}); err != nil {
			t.Fatal(err)
		}
	}
	runAll(t, e)
	// Any remaining calendar entries must be cancelled husks, not live
	// node updates that would fire handlers on a drained cluster.
	for {
		ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		t.Fatal("live event fired after the cluster drained")
	}
}

func TestServedWorkEqualsCompletedRuntime(t *testing.T) {
	// Exact accounting: after a full drain, total served node-seconds
	// must equal the sum of completed jobs' real work.
	e := sim.NewEngine()
	c := newTS(t, 2)
	var totalWork float64
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	r := sim.NewRNG(5)
	for i := 1; i <= 20; i++ {
		run := 10 + r.Float64()*200
		totalWork += run
		node := r.Intn(2)
		if _, err := c.Submit(e, job(i, 0, run, 1e6, 1), run*2, []int{node}); err != nil {
			t.Fatal(err)
		}
	}
	runAll(t, e)
	var served float64
	for i := 0; i < c.Len(); i++ {
		served += c.Node(i).ServedWork()
	}
	if math.Abs(served-totalWork) > 1e-3*totalWork {
		t.Fatalf("served %.3f != total work %.3f", served, totalWork)
	}
}

func TestClusterUtilizationExact(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	// One job of 100 s on node 0; node 1 idle. At t=200 utilization is
	// 100 node-s / (2 nodes × 200 s) = 0.25.
	if _, err := c.Submit(e, job(1, 0, 100, 1e5, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	if u := c.Utilization(200); math.Abs(u-0.25) > 1e-6 {
		t.Fatalf("Utilization(200) = %v, want 0.25", u)
	}
	// Mid-run accounting: at t=50 the job (alone, rate 1) has served 50
	// node-seconds → 50/(2×50) = 0.5.
	e2 := sim.NewEngine()
	c2 := newTS(t, 2)
	c2.OnJobDone = func(*sim.Engine, *RunningJob) {}
	if _, err := c2.Submit(e2, job(1, 0, 100, 1e5, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	e2.SetHorizon(50)
	runAll(t, e2)
	if u := c2.Utilization(50); math.Abs(u-0.5) > 1e-6 {
		t.Fatalf("Utilization(50) = %v, want 0.5", u)
	}
	if u := c2.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v", u)
	}
}

func TestRandomWorkloadInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		e := sim.NewEngine()
		c, err := NewTimeShared(3, 168, DefaultConfig())
		if err != nil {
			return false
		}
		finished := map[int]bool{}
		c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) {
			// No double completion; finish never precedes start or
			// submission.
			if finished[rj.Job.ID] || rj.Finish < rj.Start || rj.Finish < rj.Job.Submit {
				finished[-1] = true // poison
			}
			finished[rj.Job.ID] = true
		}
		n := 2 + r.Intn(12)
		submitted := 0
		for i := 0; i < n; i++ {
			i := i
			at := r.Float64() * 200
			run := 1 + r.Float64()*100
			est := run * (0.3 + r.Float64()*3)
			nodes := []int{r.Intn(3)}
			if r.Bool(0.3) {
				nodes = []int{0, 1, 2}
			}
			j := workload.Job{
				ID: i + 1, Submit: at, Runtime: run, TraceEstimate: est,
				NumProc: len(nodes), Deadline: 1 + r.Float64()*500,
			}
			submitted++
			e.At(at, sim.PriorityArrival, func(e *sim.Engine) {
				if _, err := c.Submit(e, j, est, nodes); err != nil {
					finished[-1] = true
				}
			})
		}
		e.MaxEvents = 1_000_000
		if err := e.Run(); err != nil {
			return false
		}
		if finished[-1] {
			return false
		}
		return len(finished) == submitted && c.Running() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSharedRandomInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		e := sim.NewEngine()
		c, err := NewSpaceShared(4, 168, DefaultConfig())
		if err != nil {
			return false
		}
		completions := 0
		c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) {
			completions++
			if c.FreeCount() < 0 || c.FreeCount() > 4 {
				completions = -1 << 30
			}
		}
		started := 0
		// Sequential starts as capacity allows.
		var trySubmit func(e *sim.Engine, id int)
		trySubmit = func(e *sim.Engine, id int) {
			np := 1 + r.Intn(2)
			if c.FreeCount() < np {
				return
			}
			run := 1 + r.Float64()*50
			j := workload.Job{ID: id, Submit: e.Now(), Runtime: run, TraceEstimate: run, NumProc: np, Deadline: 1e9}
			if _, err := c.Start(e, j, run); err != nil {
				started = -1 << 30
				return
			}
			started++
		}
		for i := 0; i < 10; i++ {
			i := i
			e.At(r.Float64()*100, sim.PriorityArrival, func(e *sim.Engine) { trySubmit(e, i+1) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		return started >= 0 && completions == started && c.FreeCount() == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
