package cluster

// arena is a chunked slab allocator for objects that live exactly one
// simulation run. alloc hands out pointer-stable slots from fixed-size
// chunks; reset rewinds the cursor so the next run reuses the same chunks
// without freeing them. There is no per-object free: everything dies
// wholesale at Reset, which sidesteps use-after-free and ABA hazards that
// per-object recycling of RunningJob/slice pointers would invite (policies
// and callbacks retain those pointers until the run ends).
//
// alloc returns DIRTY memory after a reset — the previous run's bytes are
// still in the slot. Every caller must overwrite all fields it reads.
type arena[T any] struct {
	chunks [][]T
	ci, n  int // cursor: the next free slot is chunks[ci][n]
}

const arenaChunk = 256

func (a *arena[T]) alloc() *T {
	if a.ci >= len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
	}
	c := a.chunks[a.ci]
	p := &c[a.n]
	a.n++
	if a.n == len(c) {
		a.ci++
		a.n = 0
	}
	return p
}

func (a *arena[T]) reset() { a.ci, a.n = 0, 0 }

// intArena bump-allocates small []int copies (gang node-ID lists) out of
// large shared chunks, with the same run-wholesale lifetime as arena.
type intArena struct {
	chunks [][]int
	ci     int
}

const intArenaChunk = 1024

// copyOf returns a copy of src whose backing storage lives in the arena.
// The returned slice has a clipped capacity, so appends by the caller can
// never bleed into a neighbouring allocation.
func (a *intArena) copyOf(src []int) []int {
	n := len(src)
	if n == 0 {
		return nil
	}
	if n > intArenaChunk {
		// A gang wider than a whole chunk (larger than any real cluster
		// here); give it a dedicated allocation rather than a chunk class.
		out := make([]int, n)
		copy(out, src)
		return out
	}
	for {
		if a.ci >= len(a.chunks) {
			a.chunks = append(a.chunks, make([]int, 0, intArenaChunk))
		}
		c := a.chunks[a.ci]
		if len(c)+n <= cap(c) {
			start := len(c)
			c = c[:start+n]
			copy(c[start:], src)
			a.chunks[a.ci] = c
			return c[start : start+n : start+n]
		}
		a.ci++
	}
}

func (a *intArena) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.ci = 0
}
