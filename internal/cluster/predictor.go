package cluster

import (
	"math"
	"sort"
)

// Candidate describes a prospective slice for admission analysis: the work
// it would bring to the node (in reference seconds; converted per node) and
// its absolute deadline.
type Candidate struct {
	JobID       int
	RefWork     float64
	AbsDeadline float64
}

// PredictedDelay is the fluid predictor's verdict for one slice: how far
// past its absolute deadline the slice is expected to finish under
// proportional sharing, given everyone's believed remaining work.
type PredictedDelay struct {
	JobID       int
	AbsDeadline float64
	Finish      float64 // predicted completion time
	Delay       float64 // max(0, Finish - AbsDeadline)
}

// fluidItem is the predictor's working state for one slice.
type fluidItem struct {
	jobID       int
	believed    float64
	absDeadline float64
}

// PredictDelays runs a deterministic fluid simulation of the node forward
// in time using the *believed* remaining work of every active slice, plus
// an optional candidate, and reports each slice's predicted completion and
// delay, in ascending JobID order. It mirrors the execution engine's
// weight conventions (including the overrun floor and deadline-crossing
// cap) and re-derives weights at every predicted completion, exactly as
// the live node does.
//
// This is the information LibraRisk's admission control (Algorithm 1,
// lines 2-5) needs: the delay every job on node j would incur if the new
// job were scheduled there. A slice whose believed work is already
// exhausted is predicted to finish "now"; if its deadline has passed its
// delay is already positive — the signal Libra's share test cannot see.
//
// The returned slice is freshly allocated and safe to retain; hot paths
// use PredictDelaysScratch instead.
func (n *PSNode) PredictDelays(now float64, cand *Candidate) []PredictedDelay {
	if n.cfg.NaivePredictor {
		return n.predictDelaysNaive(now, cand)
	}
	return append([]PredictedDelay{}, n.PredictDelaysScratch(now, cand)...)
}

// PredictDelaysScratch is PredictDelays on the node's reusable scratch
// buffers: it performs no allocation in steady state. The returned slice
// is owned by the node and valid only until the next PredictDelaysScratch
// call on it; callers that need to retain predictions must copy them.
// Values and order are identical to PredictDelays.
func (n *PSNode) PredictDelaysScratch(now float64, cand *Candidate) []PredictedDelay {
	if n.cfg.NaivePredictor {
		return n.predictDelaysNaive(now, cand)
	}
	want := len(n.slices) + 1
	if cap(n.predItems) < want {
		n.predItems = make([]fluidItem, 0, want)
	}
	if cap(n.predOut) < want {
		n.predOut = make([]PredictedDelay, 0, want)
	}
	items := n.predItems[:0]
	for _, sl := range n.slices {
		items = append(items, fluidItem{
			jobID:       sl.job.Job.ID,
			believed:    math.Max(0, n.projectedBelieved(sl, now)),
			absDeadline: sl.job.Job.AbsDeadline(),
		})
	}
	if cand != nil {
		items = append(items, fluidItem{
			jobID:       cand.JobID,
			believed:    math.Max(0, n.WorkToNodeSeconds(cand.RefWork)),
			absDeadline: cand.AbsDeadline,
		})
	}
	out := n.predOut[:0]
	weights := n.scratchWeights(len(items))
	t := now
	for len(items) > 0 {
		// Retire items the allocator believes are already done.
		kept := items[:0]
		for _, it := range items {
			if it.believed <= epsWork {
				out = insertVerdict(out, verdict(it, t))
			} else {
				kept = append(kept, it)
			}
		}
		items = kept
		if len(items) == 0 {
			break
		}
		// Derive rates with the live engine's conventions.
		var total float64
		weights = weights[:len(items)]
		for i, it := range items {
			w := n.weightAt(it.believed, it.absDeadline-t)
			weights[i] = w
			total += w
		}
		// Find the earliest completion at these rates.
		minDT := math.Inf(1)
		for i, it := range items {
			rate := fluidRate(weights[i], total, n.speed, n.cfg)
			if rate <= 0 {
				continue
			}
			if dt := it.believed / rate; dt < minDT {
				minDT = dt
			}
		}
		if math.IsInf(minDT, 1) {
			// No slice can progress (cannot happen with a positive floor
			// weight, but guard against config edge cases): everything
			// left finishes never; report an unbounded delay.
			for _, it := range items {
				out = insertVerdict(out, PredictedDelay{
					JobID: it.jobID, AbsDeadline: it.absDeadline,
					Finish: math.Inf(1), Delay: math.Inf(1),
				})
			}
			break
		}
		// Also stop at the earliest weight-regime change (deadline
		// crossing) so the mirrored conventions stay exact.
		for _, it := range items {
			if rd := it.absDeadline - t; rd > epsTime && rd < minDT {
				minDT = rd
			}
		}
		if minDT < epsTime {
			minDT = epsTime
		}
		t += minDT
		for i := range items {
			rate := fluidRate(weights[i], total, n.speed, n.cfg)
			items[i].believed -= rate * minDT
		}
	}
	n.predOut = out
	return out
}

// insertVerdict places pd into out keeping it sorted by JobID, shifting
// the (few) larger entries up in place. Nodes host a handful of slices,
// so the linear shift beats sorting the whole output afterwards and,
// unlike sort.Slice, allocates nothing.
func insertVerdict(out []PredictedDelay, pd PredictedDelay) []PredictedDelay {
	out = append(out, pd)
	i := len(out) - 1
	for i > 0 && out[i-1].JobID > pd.JobID {
		out[i] = out[i-1]
		i--
	}
	out[i] = pd
	return out
}

// predictDelaysNaive is the reference implementation: fresh slices per
// call and a final sort, kept verbatim for the differential and
// equivalence tests that prove the scratch fast path produces identical
// output. Enabled via Config.NaivePredictor.
func (n *PSNode) predictDelaysNaive(now float64, cand *Candidate) []PredictedDelay {
	items := make([]fluidItem, 0, len(n.slices)+1)
	for _, sl := range n.slices {
		items = append(items, fluidItem{
			jobID:       sl.job.Job.ID,
			believed:    math.Max(0, n.projectedBelieved(sl, now)),
			absDeadline: sl.job.Job.AbsDeadline(),
		})
	}
	if cand != nil {
		items = append(items, fluidItem{
			jobID:       cand.JobID,
			believed:    math.Max(0, n.WorkToNodeSeconds(cand.RefWork)),
			absDeadline: cand.AbsDeadline,
		})
	}
	out := make([]PredictedDelay, 0, len(items))
	weights := make([]float64, len(items))
	t := now
	for len(items) > 0 {
		// Retire items the allocator believes are already done.
		kept := items[:0]
		for _, it := range items {
			if it.believed <= epsWork {
				out = append(out, verdict(it, t))
			} else {
				kept = append(kept, it)
			}
		}
		items = kept
		if len(items) == 0 {
			break
		}
		// Derive rates with the live engine's conventions.
		var total float64
		weights = weights[:len(items)]
		for i, it := range items {
			w := n.weightAt(it.believed, it.absDeadline-t)
			weights[i] = w
			total += w
		}
		// Find the earliest completion at these rates.
		minDT := math.Inf(1)
		for i, it := range items {
			rate := fluidRate(weights[i], total, n.speed, n.cfg)
			if rate <= 0 {
				continue
			}
			if dt := it.believed / rate; dt < minDT {
				minDT = dt
			}
		}
		if math.IsInf(minDT, 1) {
			for _, it := range items {
				out = append(out, PredictedDelay{
					JobID: it.jobID, AbsDeadline: it.absDeadline,
					Finish: math.Inf(1), Delay: math.Inf(1),
				})
			}
			break
		}
		// Also stop at the earliest weight-regime change (deadline
		// crossing) so the mirrored conventions stay exact.
		for _, it := range items {
			if rd := it.absDeadline - t; rd > epsTime && rd < minDT {
				minDT = rd
			}
		}
		if minDT < epsTime {
			minDT = epsTime
		}
		t += minDT
		for i := range items {
			rate := fluidRate(weights[i], total, n.speed, n.cfg)
			items[i].believed -= rate * minDT
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

func fluidRate(w, total, speed float64, cfg Config) float64 {
	var r float64
	switch {
	case total <= 0:
		return 0
	case cfg.WorkConserving || total > 1:
		r = w / total
	default:
		r = w
	}
	if speed != 1 {
		// Mirror the live engine's straggler scaling (see
		// PSNode.recompute); the guard keeps the nominal path exact.
		r *= speed
	}
	return r
}

func verdict(it fluidItem, t float64) PredictedDelay {
	return PredictedDelay{
		JobID:       it.jobID,
		AbsDeadline: it.absDeadline,
		Finish:      t,
		Delay:       math.Max(0, t-it.absDeadline),
	}
}
