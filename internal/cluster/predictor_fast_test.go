package cluster

import (
	"math"
	"testing"

	"clustersched/internal/sim"
)

// loadScenario places a set of slices on node 0 of a fresh single-node
// cluster and advances the engine by steps so the node reaches a
// non-trivial state (progress accrued, possibly overruns and retired
// slices).
type loadScenario struct {
	name string
	cfg  func() Config
	// jobs are (runtime, estimate, deadline) triples submitted at t=0.
	jobs [][3]float64
	// runUntil advances the engine to this time before predicting (0
	// means predict against the freshly loaded node).
	runUntil float64
	// now is the prediction instant.
	now  float64
	cand *Candidate
}

func predictorScenarios() []loadScenario {
	wc := DefaultConfig
	strict := func() Config {
		cfg := DefaultConfig()
		cfg.WorkConserving = false
		return cfg
	}
	return []loadScenario{
		{name: "empty node no candidate", cfg: wc, now: 10},
		{name: "empty node with candidate", cfg: wc, now: 10,
			cand: &Candidate{JobID: 9, RefWork: 100, AbsDeadline: 400}},
		{name: "single on-time slice", cfg: wc,
			jobs: [][3]float64{{100, 100, 400}}, now: 0},
		{name: "overrun slice", cfg: wc,
			// Estimate 50 exhausts at t=50; predicting at t=60 sees an
			// overrun slice with believed work 0.
			jobs: [][3]float64{{200, 50, 400}}, runUntil: 60, now: 60,
			cand: &Candidate{JobID: 9, RefWork: 100, AbsDeadline: 300}},
		{name: "past-deadline slice", cfg: wc,
			// Deadline 80 passes while believed work remains: the slice
			// demands a full processor and is predicted late.
			jobs: [][3]float64{{200, 200, 80}, {100, 100, 500}}, runUntil: 100, now: 100,
			cand: &Candidate{JobID: 9, RefWork: 50, AbsDeadline: 600}},
		{name: "contended mixed deadlines", cfg: wc,
			jobs:     [][3]float64{{300, 250, 500}, {200, 220, 350}, {150, 150, 900}, {400, 80, 600}},
			runUntil: 120, now: 130,
			cand: &Candidate{JobID: 9, RefWork: 250, AbsDeadline: 450}},
		{name: "strict shares", cfg: strict,
			jobs: [][3]float64{{300, 250, 500}, {200, 220, 350}}, runUntil: 50, now: 75,
			cand: &Candidate{JobID: 9, RefWork: 250, AbsDeadline: 450}},
		{name: "infeasible candidate on empty node", cfg: wc, now: 0,
			cand: &Candidate{JobID: 9, RefWork: 500, AbsDeadline: 100}},
	}
}

// buildScenario returns the loaded node ready for prediction.
func buildScenario(t *testing.T, sc loadScenario) *PSNode {
	t.Helper()
	c, err := NewTimeShared(1, 168, sc.cfg())
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	for i, spec := range sc.jobs {
		j := job(i+1, 0, spec[0], spec[2], 1)
		j.TraceEstimate = spec[1]
		if _, err := c.Submit(e, j, spec[1], []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	if sc.runUntil > 0 {
		e.MaxEvents = 1_000_000
		e.SetHorizon(sc.runUntil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	return c.Node(0)
}

// TestPredictScratchMatchesNaive proves the scratch fast path and the
// reference implementation are value- and order-identical, including on
// the overrun, past-deadline, and empty-node edge cases, and that the
// scratch buffers are reusable across calls without corruption.
func TestPredictScratchMatchesNaive(t *testing.T) {
	for _, sc := range predictorScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			n := buildScenario(t, sc)
			want := n.predictDelaysNaive(sc.now, sc.cand)
			for round := 0; round < 3; round++ {
				got := n.PredictDelaysScratch(sc.now, sc.cand)
				if len(got) != len(want) {
					t.Fatalf("round %d: %d predictions, want %d", round, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("round %d: prediction[%d] = %+v, want %+v", round, i, got[i], want[i])
					}
				}
			}
			// The allocating public API must agree too, and honour the
			// NaivePredictor toggle.
			if got := n.PredictDelays(sc.now, sc.cand); len(got) != len(want) {
				t.Fatalf("PredictDelays len = %d, want %d", len(got), len(want))
			}
		})
	}
}

// TestPredictDelaysNaiveToggle proves Config.NaivePredictor routes both
// entry points through the reference implementation.
func TestPredictDelaysNaiveToggle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NaivePredictor = true
	c, err := NewTimeShared(1, 168, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	n := c.Node(0)
	cand := &Candidate{JobID: 2, RefWork: 50, AbsDeadline: 300}
	a := n.PredictDelays(0, cand)
	b := n.PredictDelaysScratch(0, cand)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("predictions = %d/%d, want 2/2", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("naive paths disagree: %+v vs %+v", a[i], b[i])
		}
	}
}

// TestVersionBumpsOnAllMutationPaths proves the state version counter
// fires on each of the three mutation paths — addSlice, advance, and
// retireCompleted — and stays put for read-only prediction calls.
func TestVersionBumpsOnAllMutationPaths(t *testing.T) {
	c := newTS(t, 1)
	e := sim.NewEngine()
	e.MaxEvents = 1_000_000
	n := c.Node(0)
	v0 := n.Version()

	// addSlice: submitting a job must bump the version. Job 1's deadline
	// (100) passes long before its 300s of work can complete, which sets
	// up the advance-only event below.
	if _, err := c.Submit(e, job(1, 0, 300, 100, 1), 300, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(e, job(2, 0, 300, 1000, 1), 300, []int{0}); err != nil {
		t.Fatal(err)
	}
	v1 := n.Version()
	if v1 == v0 {
		t.Fatal("version unchanged after addSlice")
	}

	// Predictions are read-only: no bump.
	n.PredictDelaysScratch(0, &Candidate{JobID: 9, RefWork: 10, AbsDeadline: 50})
	n.PredictDelaysScratch(0, nil)
	if got := n.Version(); got != v1 {
		t.Fatalf("version = %d after read-only predictions, want %d", got, v1)
	}

	// advance: the only node event in (0, 150] is job 1 crossing its
	// deadline at t=100 — a pure advance+recompute with no slice added
	// or retired.
	e.SetHorizon(150)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.NumSlices() != 2 {
		t.Fatalf("slices = %d at t=150, want 2", n.NumSlices())
	}
	v2 := n.Version()
	if v2 == v1 {
		t.Fatal("version unchanged after advance (deadline crossing at t=100)")
	}

	// retireCompleted: run to completion of both jobs.
	e.SetHorizon(math.Inf(1))
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n.NumSlices() != 0 {
		t.Fatalf("slices = %d, want 0", n.NumSlices())
	}
	if got := n.Version(); got == v2 {
		t.Fatal("version unchanged after retireCompleted")
	}
}

// TestPredictionStable pins down the stability contract the monitor's
// cache relies on.
func TestPredictionStable(t *testing.T) {
	c := newTS(t, 1)
	e := sim.NewEngine()
	n := c.Node(0)
	if !n.PredictionStable() {
		t.Fatal("empty node must be stable")
	}
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	if !n.PredictionStable() {
		t.Fatal("lone work-conserving slice must be stable")
	}
	// A single-slice prediction really is invariant in absolute time.
	p10 := append([]PredictedDelay{}, n.PredictDelaysScratch(10, nil)...)
	p60 := n.PredictDelaysScratch(60, nil)
	if len(p10) != 1 || len(p60) != 1 {
		t.Fatalf("predictions = %d/%d, want 1/1", len(p10), len(p60))
	}
	if math.Abs(p10[0].Finish-p60[0].Finish) > 1e-9 {
		t.Fatalf("single-slice finish moved: %v vs %v", p10[0].Finish, p60[0].Finish)
	}
	if _, err := c.Submit(e, job(2, 0, 100, 500, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	if n.PredictionStable() {
		t.Fatal("two slices must not be stable")
	}

	// Strict shares: even a lone slice's prediction depends on when the
	// predictor looks, so it must not be stable.
	strict := DefaultConfig()
	strict.WorkConserving = false
	cs, err := NewTimeShared(1, 168, strict)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Submit(sim.NewEngine(), job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	if cs.Node(0).PredictionStable() {
		t.Fatal("strict-share slice must not be stable")
	}
}

// TestLibraShareWithLimitMatches proves the early-exit share accumulation
// agrees with LibraShareWith: exact equality whenever the node is
// suitable, and verdict agreement always.
func TestLibraShareWithLimitMatches(t *testing.T) {
	for _, sc := range predictorScenarios() {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			n := buildScenario(t, sc)
			const limit = 1 + 1e-9
			work, absDL := 50.0, sc.now+200
			if sc.cand != nil {
				work, absDL = n.WorkToNodeSeconds(sc.cand.RefWork), sc.cand.AbsDeadline
			}
			full := n.LibraShareWith(sc.now, work, absDL)
			got, ok := n.LibraShareWithLimit(sc.now, work, absDL, limit)
			if wantOK := full <= limit; ok != wantOK {
				t.Fatalf("ok = %v, want %v (share %v)", ok, wantOK, full)
			}
			if ok && got != full {
				t.Fatalf("share = %v, want exactly %v", got, full)
			}
		})
	}
}
