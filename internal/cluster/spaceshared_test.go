package cluster

import (
	"math"
	"testing"

	"clustersched/internal/sim"
)

func newSS(t *testing.T, n int) *SpaceShared {
	t.Helper()
	c, err := NewSpaceShared(n, 168, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSpaceSharedStartAndComplete(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 4)
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) {
		done = rj
		if c.FreeCount() != 4 {
			t.Errorf("FreeCount = %d inside OnJobDone, want nodes released first", c.FreeCount())
		}
	}
	rj, err := c.Start(e, job(1, 0, 100, 500, 2), 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeCount() != 2 || c.Running() != 1 {
		t.Fatalf("FreeCount = %d Running = %d after start", c.FreeCount(), c.Running())
	}
	if len(rj.NodeIDs) != 2 {
		t.Fatalf("NodeIDs = %v", rj.NodeIDs)
	}
	runAll(t, e)
	if done == nil || math.Abs(done.Finish-100) > 1e-9 {
		t.Fatalf("finish = %+v, want 100", done)
	}
	if !done.DeadlineMet() {
		t.Fatal("deadline should be met")
	}
	if c.Running() != 0 {
		t.Fatalf("Running = %d after completion", c.Running())
	}
}

func TestSpaceSharedInsufficientNodes(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 2)
	if _, err := c.Start(e, job(1, 0, 100, 500, 3), 100); err == nil {
		t.Fatal("started a 3-proc job on a 2-node cluster")
	}
	if _, err := c.Start(e, job(1, 0, 100, 500, 1), 0); err == nil {
		t.Fatal("zero estimate accepted")
	}
}

func TestSpaceSharedDedicatedNoSharing(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 2)
	finish := map[int]float64{}
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { finish[rj.Job.ID] = rj.Finish }
	if _, err := c.Start(e, job(1, 0, 100, 500, 1), 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Start(e, job(2, 0, 100, 500, 1), 100); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	// Unlike time sharing, both finish at their dedicated runtimes.
	if math.Abs(finish[1]-100) > 1e-9 || math.Abs(finish[2]-100) > 1e-9 {
		t.Fatalf("finishes = %v, want both 100", finish)
	}
}

func TestSpaceSharedPicksFastestFree(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.RefRating = 100
	c, err := NewSpaceSharedHetero([]float64{100, 300, 200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	rj, err := c.Start(e, job(1, 0, 60, 600, 2), 60)
	if err != nil {
		t.Fatal(err)
	}
	// Fastest two are nodes 1 (300) and 2 (200).
	if len(rj.NodeIDs) != 2 || rj.NodeIDs[0] != 1 || rj.NodeIDs[1] != 2 {
		t.Fatalf("NodeIDs = %v, want [1 2]", rj.NodeIDs)
	}
	runAll(t, e)
	// Gang pace = slowest member (200): 60 ref-s × 100/200 = 30 s.
	if math.Abs(done.Finish-30) > 1e-9 {
		t.Fatalf("finish = %v, want 30", done.Finish)
	}
	if mr := c.MinRuntime(done); math.Abs(mr-30) > 1e-9 {
		t.Fatalf("MinRuntime = %v, want 30", mr)
	}
}

func TestRuntimeOn(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.RefRating = 100
	c, err := NewSpaceSharedHetero([]float64{100, 200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt, ok := c.RuntimeOn(60, 1); !ok || math.Abs(rt-30) > 1e-9 {
		t.Fatalf("RuntimeOn(60,1) = %v,%v want 30 on fastest node", rt, ok)
	}
	if rt, ok := c.RuntimeOn(60, 2); !ok || math.Abs(rt-60) > 1e-9 {
		t.Fatalf("RuntimeOn(60,2) = %v,%v want 60 (slowest of gang)", rt, ok)
	}
	if _, ok := c.RuntimeOn(60, 3); ok {
		t.Fatal("RuntimeOn with too many procs should fail")
	}
	// Occupy the fast node; only the slow one remains.
	if _, err := c.Start(e, job(1, 0, 1000, 9000, 1), 1000); err != nil {
		t.Fatal(err)
	}
	if rt, ok := c.RuntimeOn(60, 1); !ok || math.Abs(rt-60) > 1e-9 {
		t.Fatalf("RuntimeOn after occupancy = %v,%v want 60", rt, ok)
	}
}

func TestBestPossibleRuntime(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.RefRating = 100
	c, err := NewSpaceSharedHetero([]float64{100, 200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy everything; BestPossibleRuntime ignores occupancy.
	if _, err := c.Start(e, job(1, 0, 1000, 9000, 2), 1000); err != nil {
		t.Fatal(err)
	}
	if rt, ok := c.BestPossibleRuntime(60, 1); !ok || math.Abs(rt-30) > 1e-9 {
		t.Fatalf("BestPossibleRuntime = %v,%v want 30", rt, ok)
	}
	if _, ok := c.BestPossibleRuntime(60, 3); ok {
		t.Fatal("BestPossibleRuntime beyond cluster size should fail")
	}
}

func TestSpaceSharedSequentialReuse(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 1)
	var finishes []float64
	c.OnJobDone = func(e *sim.Engine, rj *RunningJob) {
		finishes = append(finishes, rj.Finish)
		if len(finishes) == 1 {
			if _, err := c.Start(e, job(2, e.Now(), 50, 500, 1), 50); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := c.Start(e, job(1, 0, 100, 500, 1), 100); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	if len(finishes) != 2 || math.Abs(finishes[1]-150) > 1e-9 {
		t.Fatalf("finishes = %v, want second at 150", finishes)
	}
}

func TestNewSpaceSharedRejectsBadArgs(t *testing.T) {
	if _, err := NewSpaceShared(0, 168, DefaultConfig()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewSpaceSharedHetero([]float64{0}, DefaultConfig()); err == nil {
		t.Error("zero rating accepted")
	}
}
