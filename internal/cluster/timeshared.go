package cluster

import (
	"fmt"

	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// TimeShared is a cluster of proportional-share nodes (the Libra and
// LibraRisk execution substrate).
type TimeShared struct {
	cfg   Config
	nodes []*PSNode

	// OnJobDone, if set, is invoked when the last slice of a job
	// completes.
	OnJobDone func(e *sim.Engine, rj *RunningJob)

	running int
}

// NewTimeShared builds a homogeneous cluster of n nodes with the given
// SPEC rating.
func NewTimeShared(n int, rating float64, cfg Config) (*TimeShared, error) {
	ratings := make([]float64, n)
	for i := range ratings {
		ratings[i] = rating
	}
	return NewTimeSharedHetero(ratings, cfg)
}

// NewTimeSharedHetero builds a cluster with per-node SPEC ratings.
func NewTimeSharedHetero(ratings []float64, cfg Config) (*TimeShared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	c := &TimeShared{cfg: cfg}
	for i, r := range ratings {
		if r <= 0 {
			return nil, fmt.Errorf("cluster: node %d rating %g, want > 0", i, r)
		}
		node := &PSNode{id: i, rating: r, cfg: cfg}
		node.onSliceDone = c.sliceDone
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Len returns the number of nodes.
func (c *TimeShared) Len() int { return len(c.nodes) }

// Node returns node i.
func (c *TimeShared) Node(i int) *PSNode { return c.nodes[i] }

// Config returns the execution-model conventions in force.
func (c *TimeShared) Config() Config { return c.cfg }

// Running returns the number of jobs currently executing.
func (c *TimeShared) Running() int { return c.running }

// Submit places a job on the given nodes (one slice each) with the given
// runtime estimate in reference seconds. The nodes must be distinct and
// exactly NumProc many; admission policy is the caller's responsibility.
func (c *TimeShared) Submit(e *sim.Engine, job workload.Job, estimate float64, nodeIDs []int) (*RunningJob, error) {
	if len(nodeIDs) != job.NumProc {
		return nil, fmt.Errorf("cluster: job %d needs %d nodes, got %d", job.ID, job.NumProc, len(nodeIDs))
	}
	if estimate <= 0 {
		return nil, fmt.Errorf("cluster: job %d estimate %g, want > 0", job.ID, estimate)
	}
	seen := make(map[int]bool, len(nodeIDs))
	for _, id := range nodeIDs {
		if id < 0 || id >= len(c.nodes) {
			return nil, fmt.Errorf("cluster: node id %d out of range", id)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate node id %d", id)
		}
		seen[id] = true
	}
	rj := &RunningJob{
		Job:             job,
		Estimate:        estimate,
		Start:           e.Now(),
		NodeIDs:         append([]int(nil), nodeIDs...),
		remainingSlices: len(nodeIDs),
	}
	for _, id := range nodeIDs {
		node := c.nodes[id]
		sl := &slice{
			job:          rj,
			realWork:     node.WorkToNodeSeconds(job.Runtime),
			believedWork: node.WorkToNodeSeconds(estimate),
		}
		node.addSlice(e, sl)
	}
	c.running++
	return rj, nil
}

func (c *TimeShared) sliceDone(e *sim.Engine, sl *slice) {
	rj := sl.job
	rj.remainingSlices--
	if rj.remainingSlices > 0 {
		return
	}
	rj.done = true
	rj.Finish = e.Now()
	c.running--
	if c.OnJobDone != nil {
		c.OnJobDone(e, rj)
	}
}

// Utilization returns the exact fraction of cluster capacity used over
// [0, now]: total node-seconds served divided by nodes × elapsed time.
// Slices that are mid-interval are accounted up to their node's last
// accrual point, which event processing keeps within one event of now.
func (c *TimeShared) Utilization(now float64) float64 {
	if now <= 0 || len(c.nodes) == 0 {
		return 0
	}
	var served float64
	for _, n := range c.nodes {
		served += n.ServedWork()
		// Account the open interval since the node's last event.
		if dt := now - n.lastT; dt > 0 {
			for _, sl := range n.slices {
				served += sl.rate * dt
			}
		}
	}
	return served / (float64(len(c.nodes)) * now)
}

// MinRuntime returns the job's dedicated runtime on the slowest node it
// was allocated, the denominator of the paper's slowdown metric.
func (c *TimeShared) MinRuntime(rj *RunningJob) float64 {
	worst := 0.0
	for _, id := range rj.NodeIDs {
		if t := c.nodes[id].WorkToNodeSeconds(rj.Job.Runtime); t > worst {
			worst = t
		}
	}
	return worst
}
