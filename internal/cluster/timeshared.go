package cluster

import (
	"fmt"
	"math"

	"clustersched/internal/obs"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// KilledJob describes a job torn down by a node crash: the running
// instance plus its remaining work re-expressed in reference seconds so an
// admission policy can resubmit it with the original deadline.
type KilledJob struct {
	Job *RunningJob
	// RemainingRuntime is the real work left, in reference seconds (the
	// maximum across the gang's slices — the job needs that much more
	// service on an equivalent allocation).
	RemainingRuntime float64
	// RemainingEstimate is the believed work left under the admitted
	// estimate, floored at a microsecond so resubmission always carries a
	// positive estimate.
	RemainingEstimate float64
}

// TimeShared is a cluster of proportional-share nodes (the Libra and
// LibraRisk execution substrate).
type TimeShared struct {
	cfg   Config
	nodes []*PSNode

	// OnJobDone, if set, is invoked when the last slice of a job
	// completes.
	OnJobDone func(e *sim.Engine, rj *RunningJob)

	// OnJobKilled, if set, is invoked for each job torn down by
	// SetNodeDown, after all node state has been cleaned up (so a handler
	// that resubmits immediately sees the crashed node as down and its
	// survivors re-timed).
	OnJobKilled func(e *sim.Engine, kj KilledJob)

	// OnNodeUp, if set, is invoked when a crashed node recovers.
	OnNodeUp func(e *sim.Engine, id int)

	// Trace and Metrics are the optional observability hooks. Both default
	// to nil (one pointer comparison per would-be emission, nothing else)
	// and survive Reset — the experiment layer reattaches them per run.
	Trace   obs.Tracer
	Metrics *obs.SimMetrics

	running int
	killed  int

	// Per-run allocation arenas and scratch. RunningJob, slice and gang
	// node-ID storage is bump-allocated and reclaimed wholesale by Reset,
	// so steady-state Submit traffic never touches the heap.
	rjArena arena[RunningJob]
	slArena arena[slice]
	idArena intArena
	seen    []bool // Submit duplicate-detection scratch, always all-false between calls

	// shards, when non-nil, holds the space-partitioned execution state
	// installed by AttachShards (see shard.go). Nil in sequential mode.
	shards *shardRuntime
}

// NewTimeShared builds a homogeneous cluster of n nodes with the given
// SPEC rating.
func NewTimeShared(n int, rating float64, cfg Config) (*TimeShared, error) {
	ratings := make([]float64, n)
	for i := range ratings {
		ratings[i] = rating
	}
	return NewTimeSharedHetero(ratings, cfg)
}

// NewTimeSharedHetero builds a cluster with per-node SPEC ratings.
func NewTimeSharedHetero(ratings []float64, cfg Config) (*TimeShared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	c := &TimeShared{cfg: cfg}
	for i, r := range ratings {
		if r <= 0 {
			return nil, fmt.Errorf("cluster: node %d rating %g, want > 0", i, r)
		}
		node := &PSNode{id: i, rating: r, cfg: cfg, speed: 1}
		node.onSliceDone = c.sliceDone
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Reset returns the cluster to its freshly constructed state in place:
// every node comes back up, empty and at nominal speed, counters zero, and
// the per-run arenas rewind so their chunks are reused by the next run.
// Callbacks (OnJobDone etc.) are left installed. Every *RunningJob handed
// out before the Reset is invalidated — its storage will be reused.
//
// Reset must run AFTER the owning engine's Reset (or on an idle engine):
// it drops node update-event references without cancelling them, relying on
// the engine drain having already reclaimed the events.
func (c *TimeShared) Reset() {
	for _, n := range c.nodes {
		n.reset()
	}
	c.rjArena.reset()
	c.slArena.reset()
	c.idArena.reset()
	c.running, c.killed = 0, 0
	// Sharding is a per-run attachment (node resets above already dropped
	// the per-node engine routing).
	c.shards = nil
}

// Len returns the number of nodes.
func (c *TimeShared) Len() int { return len(c.nodes) }

// Node returns node i.
func (c *TimeShared) Node(i int) *PSNode { return c.nodes[i] }

// Config returns the execution-model conventions in force.
func (c *TimeShared) Config() Config { return c.cfg }

// Running returns the number of jobs currently executing.
func (c *TimeShared) Running() int { return c.running }

// Killed returns the number of jobs torn down by node crashes so far.
func (c *TimeShared) Killed() int { return c.killed }

// UpNodes returns the number of nodes currently up.
func (c *TimeShared) UpNodes() int {
	up := 0
	for _, n := range c.nodes {
		if !n.down {
			up++
		}
	}
	return up
}

// SetNodeSpeed re-times node id at a new effective-rate multiplier (1 is
// nominal, values in (0,1) model a transient straggler).
func (c *TimeShared) SetNodeSpeed(e *sim.Engine, id int, factor float64) {
	before := c.nodes[id].Speed()
	c.nodes[id].SetSpeed(e, factor)
	after := c.nodes[id].Speed()
	if after == before {
		return
	}
	if c.Trace != nil {
		kind := obs.KindNodeSlow
		if after == 1 {
			kind = obs.KindNodeNominal
		}
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: kind, Job: -1, Node: id, Value: after})
	}
	if c.Metrics != nil && after != 1 {
		c.Metrics.NodeSlowdowns.Inc()
	}
}

// SetNodeDown crashes (down=true) or recovers (down=false) node id.
//
// A crash tears down every job with a slice on the node: the gang's other
// slices are removed from their nodes (survivors there are re-timed), the
// job's remaining real/believed work is captured in reference seconds, and
// OnJobKilled fires once per job after all cluster state is consistent —
// so a handler that resubmits immediately cannot land on the dead node.
// Recovery brings the node back empty and fires OnNodeUp. Both directions
// are idempotent.
func (c *TimeShared) SetNodeDown(e *sim.Engine, id int, down bool) []KilledJob {
	node := c.nodes[id]
	if down == node.down {
		return nil
	}
	if !down {
		node.markUp()
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindNodeUp, Job: -1, Node: id})
		}
		if c.Metrics != nil {
			c.Metrics.NodeRepairs.Inc()
		}
		if c.OnNodeUp != nil {
			c.OnNodeUp(e, id)
		}
		return nil
	}
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindNodeDown, Job: -1, Node: id})
	}
	if c.Metrics != nil {
		c.Metrics.NodeCrashes.Inc()
	}
	victims := node.markDown(e)
	killed := make([]KilledJob, 0, len(victims))
	for _, sl := range victims {
		rj := sl.job
		kj := KilledJob{
			Job:               rj,
			RemainingRuntime:  node.NodeSecondsToWork(math.Max(0, sl.realWork)),
			RemainingEstimate: node.NodeSecondsToWork(math.Max(0, sl.believedWork)),
		}
		// Tear down the rest of the gang; each sibling node reports the
		// remaining work of the slice it dropped and the gang-wide
		// remainder is the maximum (the job must redo its longest slice).
		for _, nid := range rj.NodeIDs {
			if nid == id {
				continue
			}
			remReal, remBelieved, found := c.nodes[nid].removeJobSlices(e, rj)
			if !found {
				continue
			}
			kj.RemainingRuntime = math.Max(kj.RemainingRuntime, remReal)
			kj.RemainingEstimate = math.Max(kj.RemainingEstimate, remBelieved)
		}
		if kj.RemainingEstimate < 1e-6 {
			kj.RemainingEstimate = 1e-6
		}
		c.running--
		c.killed++
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindKill, Job: rj.Job.ID, Node: id, Value: kj.RemainingRuntime})
		}
		if c.Metrics != nil {
			c.Metrics.Kills.Inc()
		}
		killed = append(killed, kj)
	}
	for _, kj := range killed {
		if c.OnJobKilled != nil {
			c.OnJobKilled(e, kj)
		}
	}
	return killed
}

// CheckInvariants validates the cluster's structural invariants: a down
// node holds no slices, every slice's remaining real work is non-negative
// (modulo float noise), speeds are positive, and the running count is
// non-negative. Returns nil when all hold.
func (c *TimeShared) CheckInvariants() error {
	if c.running < 0 {
		return fmt.Errorf("cluster: running count %d < 0", c.running)
	}
	for _, n := range c.nodes {
		if n.down && len(n.slices) > 0 {
			return fmt.Errorf("cluster: down node %d holds %d slice(s)", n.id, len(n.slices))
		}
		if n.speed <= 0 {
			return fmt.Errorf("cluster: node %d speed %g, want > 0", n.id, n.speed)
		}
		for _, sl := range n.slices {
			if sl.realWork < -1e-6 {
				return fmt.Errorf("cluster: node %d job %d remaining work %g < 0", n.id, sl.job.Job.ID, sl.realWork)
			}
		}
	}
	return nil
}

// Submit places a job on the given nodes (one slice each) with the given
// runtime estimate in reference seconds. The nodes must be distinct and
// exactly NumProc many; admission policy is the caller's responsibility.
func (c *TimeShared) Submit(e *sim.Engine, job workload.Job, estimate float64, nodeIDs []int) (*RunningJob, error) {
	if len(nodeIDs) != job.NumProc {
		return nil, fmt.Errorf("cluster: job %d needs %d nodes, got %d", job.ID, job.NumProc, len(nodeIDs))
	}
	if estimate <= 0 {
		return nil, fmt.Errorf("cluster: job %d estimate %g, want > 0", job.ID, estimate)
	}
	if c.seen == nil {
		c.seen = make([]bool, len(c.nodes))
	}
	var checkErr error
	marked := 0
	for _, id := range nodeIDs {
		switch {
		case id < 0 || id >= len(c.nodes):
			checkErr = fmt.Errorf("cluster: node id %d out of range", id)
		case c.seen[id]:
			checkErr = fmt.Errorf("cluster: duplicate node id %d", id)
		case c.nodes[id].down:
			checkErr = fmt.Errorf("cluster: node %d is down", id)
		}
		if checkErr != nil {
			break
		}
		c.seen[id] = true
		marked++
	}
	for _, id := range nodeIDs[:marked] {
		c.seen[id] = false
	}
	if checkErr != nil {
		return nil, checkErr
	}
	rj := c.rjArena.alloc()
	*rj = RunningJob{
		Job:             job,
		Estimate:        estimate,
		Start:           e.Now(),
		NodeIDs:         c.idArena.copyOf(nodeIDs),
		remainingSlices: len(nodeIDs),
	}
	for _, id := range nodeIDs {
		node := c.nodes[id]
		sl := c.slArena.alloc()
		*sl = slice{
			job:          rj,
			realWork:     node.WorkToNodeSeconds(job.Runtime),
			believedWork: node.WorkToNodeSeconds(estimate),
		}
		node.addSlice(e, sl)
	}
	c.running++
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindStart, Job: job.ID, Node: nodeIDs[0], Value: estimate})
	}
	return rj, nil
}

// sliceDone is installed as every node's completion callback. In the
// sequential mode it finishes the slice immediately; during a sharded
// phase (multiple shard engines running concurrently) job-level accounting
// must not touch shared state, so the completion is parked in the calling
// shard's deferral buffer and applied by EndShardPhase on the coordinator.
func (c *TimeShared) sliceDone(e *sim.Engine, sl *slice) {
	if sr := c.shards; sr != nil && sr.inPhase {
		s := sr.index[e]
		sr.deferred[s] = append(sr.deferred[s], deferredDone{time: e.Now(), sl: sl})
		return
	}
	c.finishSlice(e, e.Now(), sl)
}

// finishSlice runs the job-level half of a slice completion: gang
// countdown and, on the last slice, job finish bookkeeping, observability
// and the completion callback. t is the simulated time the slice actually
// completed at — under sharding that is a shard-engine timestamp that may
// precede the global clock.
func (c *TimeShared) finishSlice(e *sim.Engine, t float64, sl *slice) {
	rj := sl.job
	rj.remainingSlices--
	if rj.remainingSlices > 0 {
		return
	}
	rj.done = true
	rj.Finish = t
	c.running--
	if c.Trace != nil || c.Metrics != nil {
		c.emitFinish(e, rj)
	}
	if c.OnJobDone != nil {
		c.OnJobDone(e, rj)
	}
}

// emitFinish reports a completed job to the observability hooks: a finish
// event carrying the response time, plus a deadline-miss annotation when
// the job ran past its hard deadline (same epsTime tolerance as
// RunningJob.DeadlineMet).
func (c *TimeShared) emitFinish(e *sim.Engine, rj *RunningJob) {
	response := rj.Finish - rj.Job.Submit
	missed := rj.Finish > rj.Job.AbsDeadline()+epsTime
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: rj.Finish, Kind: obs.KindFinish, Job: rj.Job.ID, Node: rj.NodeIDs[0], Value: response})
		if missed {
			c.Trace.Emit(obs.Event{Time: rj.Finish, Kind: obs.KindDeadlineMiss, Job: rj.Job.ID, Node: rj.NodeIDs[0], Value: rj.Finish - rj.Job.AbsDeadline()})
		}
	}
	if c.Metrics != nil {
		c.Metrics.Completed.Inc()
		if missed {
			c.Metrics.DeadlineMisses.Inc()
		}
	}
}

// Utilization returns the exact fraction of cluster capacity used over
// [0, now]: total node-seconds served divided by nodes × elapsed time.
// Slices that are mid-interval are accounted up to their node's last
// accrual point, which event processing keeps within one event of now.
func (c *TimeShared) Utilization(now float64) float64 {
	if now <= 0 || len(c.nodes) == 0 {
		return 0
	}
	var served float64
	for _, n := range c.nodes {
		served += n.ServedWork()
		// Account the open interval since the node's last event.
		if dt := now - n.lastT; dt > 0 {
			for _, sl := range n.slices {
				served += sl.rate * dt
			}
		}
	}
	return served / (float64(len(c.nodes)) * now)
}

// MinRuntime returns the job's dedicated runtime on the slowest node it
// was allocated, the denominator of the paper's slowdown metric.
func (c *TimeShared) MinRuntime(rj *RunningJob) float64 {
	worst := 0.0
	for _, id := range rj.NodeIDs {
		if t := c.nodes[id].WorkToNodeSeconds(rj.Job.Runtime); t > worst {
			worst = t
		}
	}
	return worst
}
