// Package cluster models the execution substrate: a set of computation
// nodes with SPEC ratings that run jobs either time-shared under
// deadline-proportional processor sharing (the Libra/LibraRisk model) or
// space-shared one-job-per-processor (the EDF model).
//
// Terminology follows the paper: a "node" is one processor with a SPEC
// rating; a job needing numproc processors holds one slice on each of
// numproc distinct nodes and completes when its slowest slice completes.
// All job durations arrive in "reference seconds" — dedicated runtime on a
// node of the cluster's reference rating — and are converted to per-node
// work through the machine-independent MI length.
package cluster

import "fmt"

// Config fixes the execution-model conventions the paper leaves implicit.
type Config struct {
	// RefRating is the SPEC rating in which job runtimes/estimates are
	// expressed (the SDSC SP2's 168 by default).
	RefRating float64
	// OverrunFloorWeight is the processor-share weight granted to a slice
	// whose believed (estimated) remaining work is exhausted but whose real
	// work is not: the job overran its estimate. It must be positive so
	// overrun jobs keep making progress, and small so they model the
	// starved leftovers a proportional-share allocator actually gives a
	// job it believes is about to exit.
	OverrunFloorWeight float64
	// MaxWeight caps any single slice's share demand at one full
	// processor.
	MaxWeight float64
	// WorkConserving, when true (the default model), redistributes unused
	// processor time proportionally so a node is never idle while work
	// remains. When false the node serves each slice at exactly its
	// guaranteed share — the strict reading of eq. (1) — and idles
	// otherwise; the ablation bench compares the two.
	WorkConserving bool
	// NaivePredictor switches PredictDelays to the allocate-per-call
	// reference implementation instead of the scratch-buffer fast path.
	// The two are value- and order-identical; the differential tests run
	// full simulations under both to prove it.
	NaivePredictor bool
}

// DefaultConfig returns the conventions used throughout the experiments.
func DefaultConfig() Config {
	return Config{
		RefRating:          168,
		OverrunFloorWeight: 0.02,
		MaxWeight:          1.0,
		WorkConserving:     true,
	}
}

// Validate reports the first configuration error.
func (c Config) Validate() error {
	switch {
	case c.RefRating <= 0:
		return fmt.Errorf("cluster: RefRating = %g, want > 0", c.RefRating)
	case c.OverrunFloorWeight <= 0 || c.OverrunFloorWeight > 1:
		return fmt.Errorf("cluster: OverrunFloorWeight = %g, want in (0,1]", c.OverrunFloorWeight)
	case c.MaxWeight <= 0 || c.MaxWeight > 1:
		return fmt.Errorf("cluster: MaxWeight = %g, want in (0,1]", c.MaxWeight)
	}
	return nil
}

// epsTime is the resolution guard for remaining-time arithmetic; intervals
// below it are treated as "now".
const epsTime = 1e-9

// epsWork is the resolution guard for remaining-work arithmetic; amounts
// below it are treated as complete.
const epsWork = 1e-9
