package cluster

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"clustersched/internal/obs"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// ssRunning tracks one executing gang on a space-shared cluster: the
// pending completion event plus enough remaining-work state to re-time the
// job when a fault changes its gang's effective pace. Work amounts are in
// reference seconds, accrued up to lastT.
type ssRunning struct {
	rj           *RunningJob
	ev           *sim.Event
	remaining    float64 // real work left at lastT
	estRemaining float64 // believed work left at lastT (for resubmission)
	lastT        float64

	// c and h make the completion handler persistent: h is the method value
	// r.fire, created once the first time this arena slot is used and kept
	// across arena resets, so scheduling a completion allocates no closure.
	c *SpaceShared
	h sim.Handler
}

// fire is the completion handler scheduled for the gang.
func (r *ssRunning) fire(e *sim.Engine) { r.c.finish(e, r) }

// SpaceShared is a cluster of dedicated nodes: each node runs at most one
// job slice at a time (the EDF execution substrate). A parallel job holds
// numproc whole nodes for its full runtime; with heterogeneous ratings the
// gang runs at the pace of its slowest node — at its slowest member's
// effective (speed-scaled) rating once faults degrade nodes.
type SpaceShared struct {
	cfg     Config
	ratings []float64
	busy    []bool
	free    int

	// down marks crashed nodes: excluded from free capacity until
	// recovery. speed is each node's effective-rate multiplier (1
	// nominal); see SetNodeSpeed.
	down  []bool
	speed []float64

	// OnJobDone fires when a job completes and its nodes are already
	// released, so the handler observes the post-completion free count.
	OnJobDone func(e *sim.Engine, rj *RunningJob)

	// OnJobKilled fires for each job torn down by SetNodeDown, after the
	// gang's surviving nodes are released and the crashed node is marked
	// down.
	OnJobKilled func(e *sim.Engine, kj KilledJob)

	// OnNodeUp fires when a crashed node recovers.
	OnNodeUp func(e *sim.Engine, id int)

	// Trace and Metrics are the optional observability hooks. Both default
	// to nil (one pointer comparison per would-be emission, nothing else)
	// and survive Reset — the experiment layer reattaches them per run.
	Trace   obs.Tracer
	Metrics *obs.SimMetrics

	running int
	killed  int
	runs    []*ssRunning

	// Per-run arenas and scratch buffers; see arena.go. Reclaimed wholesale
	// by Reset so steady-state Start/finish traffic never touches the heap.
	rjArena     arena[RunningJob]
	runArena    arena[ssRunning]
	idArena     intArena
	pickScratch []int
	bestScratch []float64
}

// NewSpaceShared builds a homogeneous dedicated cluster.
func NewSpaceShared(n int, rating float64, cfg Config) (*SpaceShared, error) {
	ratings := make([]float64, n)
	for i := range ratings {
		ratings[i] = rating
	}
	return NewSpaceSharedHetero(ratings, cfg)
}

// NewSpaceSharedHetero builds a dedicated cluster with per-node ratings.
func NewSpaceSharedHetero(ratings []float64, cfg Config) (*SpaceShared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	for i, r := range ratings {
		if r <= 0 {
			return nil, fmt.Errorf("cluster: node %d rating %g, want > 0", i, r)
		}
	}
	speed := make([]float64, len(ratings))
	for i := range speed {
		speed[i] = 1
	}
	return &SpaceShared{
		cfg:     cfg,
		ratings: append([]float64(nil), ratings...),
		busy:    make([]bool, len(ratings)),
		down:    make([]bool, len(ratings)),
		speed:   speed,
		free:    len(ratings),
	}, nil
}

// Reset returns the cluster to its freshly constructed state in place:
// all nodes idle, up and at nominal speed, counters zero, arenas rewound.
// Callbacks are left installed. Every *RunningJob handed out before the
// Reset is invalidated — its storage will be reused.
//
// Reset must run AFTER the owning engine's Reset (or on an idle engine):
// pending completion-event references are dropped without cancelling them.
func (c *SpaceShared) Reset() {
	for i := range c.busy {
		c.busy[i] = false
		c.down[i] = false
		c.speed[i] = 1
	}
	c.free = len(c.ratings)
	c.running, c.killed = 0, 0
	for i := range c.runs {
		c.runs[i] = nil
	}
	c.runs = c.runs[:0]
	c.rjArena.reset()
	c.runArena.reset()
	c.idArena.reset()
}

// Len returns the number of nodes.
func (c *SpaceShared) Len() int { return len(c.ratings) }

// FreeCount returns the number of idle, up nodes.
func (c *SpaceShared) FreeCount() int { return c.free }

// Running returns the number of executing jobs.
func (c *SpaceShared) Running() int { return c.running }

// Killed returns the number of jobs torn down by node crashes so far.
func (c *SpaceShared) Killed() int { return c.killed }

// UpNodes returns the number of nodes currently up.
func (c *SpaceShared) UpNodes() int {
	up := 0
	for _, d := range c.down {
		if !d {
			up++
		}
	}
	return up
}

// NodeDown reports whether node id is currently crashed.
func (c *SpaceShared) NodeDown(id int) bool { return c.down[id] }

// effRating returns node id's effective rating: its SPEC rating scaled by
// the current speed factor. With speed 1 the multiplication is exact, so
// the no-fault model is bit-identical to the pre-fault one.
func (c *SpaceShared) effRating(id int) float64 {
	return c.ratings[id] * c.speed[id]
}

// RuntimeOn returns the dedicated runtime of refSeconds of work on the
// fastest numproc idle nodes, without starting anything — what an EDF
// admission test needs to decide whether a deadline is still reachable.
// Returns 0 and false when fewer than numproc nodes are idle.
func (c *SpaceShared) RuntimeOn(refSeconds float64, numproc int) (float64, bool) {
	ids := c.pickFree(numproc)
	if ids == nil {
		return 0, false
	}
	return c.gangRuntime(refSeconds, ids), true
}

// BestPossibleRuntime returns the dedicated runtime on the fastest numproc
// up nodes regardless of their current occupancy — the most optimistic
// finish a queued job could hope for.
func (c *SpaceShared) BestPossibleRuntime(refSeconds float64, numproc int) (float64, bool) {
	sorted := c.bestScratch[:0]
	for i := range c.ratings {
		if !c.down[i] {
			sorted = append(sorted, c.effRating(i))
		}
	}
	c.bestScratch = sorted
	if numproc > len(sorted) {
		return 0, false
	}
	slices.SortFunc(sorted, func(a, b float64) int { return cmp.Compare(b, a) })
	slowest := sorted[numproc-1]
	return refSeconds * c.cfg.RefRating / slowest, true
}

// Start runs the job on the fastest numproc idle nodes. The caller must
// have performed admission; Start fails only on resource shortage or bad
// arguments.
func (c *SpaceShared) Start(e *sim.Engine, job workload.Job, estimate float64) (*RunningJob, error) {
	if estimate <= 0 {
		return nil, fmt.Errorf("cluster: job %d estimate %g, want > 0", job.ID, estimate)
	}
	ids := c.pickFree(job.NumProc)
	if ids == nil {
		return nil, fmt.Errorf("cluster: job %d needs %d nodes, only %d free", job.ID, job.NumProc, c.free)
	}
	for _, id := range ids {
		c.busy[id] = true
	}
	c.free -= len(ids)
	c.running++
	rj := c.rjArena.alloc()
	*rj = RunningJob{
		Job:      job,
		Estimate: estimate,
		Start:    e.Now(),
		NodeIDs:  c.idArena.copyOf(ids),
	}
	r := c.runArena.alloc()
	h := r.h // survives the arena slot's previous life; nil on first use
	*r = ssRunning{rj: rj, c: c, remaining: job.Runtime, estRemaining: estimate, lastT: e.Now()}
	if h == nil {
		h = r.fire
	}
	r.h = h
	c.runs = append(c.runs, r)
	duration := c.gangRuntime(job.Runtime, rj.NodeIDs)
	r.ev = e.After(duration, sim.PriorityCompletion, h)
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindStart, Job: job.ID, Node: rj.NodeIDs[0], Value: estimate})
	}
	return rj, nil
}

// finish completes a run: release its nodes, retire the tracking entry and
// fire OnJobDone.
func (c *SpaceShared) finish(e *sim.Engine, r *ssRunning) {
	rj := r.rj
	r.ev = nil // the event has fired; the engine recycles it
	for _, id := range rj.NodeIDs {
		c.busy[id] = false
	}
	c.free += len(rj.NodeIDs)
	c.running--
	c.dropRun(r)
	rj.done = true
	rj.Finish = e.Now()
	if c.Trace != nil || c.Metrics != nil {
		c.emitFinish(rj)
	}
	if c.OnJobDone != nil {
		c.OnJobDone(e, rj)
	}
}

// emitFinish reports a completed job to the observability hooks, with the
// same deadline tolerance as RunningJob.DeadlineMet.
func (c *SpaceShared) emitFinish(rj *RunningJob) {
	response := rj.Finish - rj.Job.Submit
	missed := rj.Finish > rj.Job.AbsDeadline()+epsTime
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: rj.Finish, Kind: obs.KindFinish, Job: rj.Job.ID, Node: rj.NodeIDs[0], Value: response})
		if missed {
			c.Trace.Emit(obs.Event{Time: rj.Finish, Kind: obs.KindDeadlineMiss, Job: rj.Job.ID, Node: rj.NodeIDs[0], Value: rj.Finish - rj.Job.AbsDeadline()})
		}
	}
	if c.Metrics != nil {
		c.Metrics.Completed.Inc()
		if missed {
			c.Metrics.DeadlineMisses.Inc()
		}
	}
}

func (c *SpaceShared) dropRun(r *ssRunning) {
	for i, a := range c.runs {
		if a == r {
			copy(c.runs[i:], c.runs[i+1:])
			c.runs[len(c.runs)-1] = nil
			c.runs = c.runs[:len(c.runs)-1]
			return
		}
	}
}

// advanceRun accrues a run's progress up to now at its gang's current
// effective pace. Must be called before any speed change that affects the
// gang.
func (c *SpaceShared) advanceRun(r *ssRunning, now float64) {
	dt := now - r.lastT
	if dt > 0 {
		pace := c.gangPace(r.rj.NodeIDs)
		r.remaining -= dt * pace
		r.estRemaining -= dt * pace
	}
	r.lastT = now
}

// gangPace returns reference seconds of work served per wall second on the
// given gang: effective slowest rating over the reference rating.
func (c *SpaceShared) gangPace(ids []int) float64 {
	slowest := c.effRating(ids[0])
	for _, id := range ids[1:] {
		if r := c.effRating(id); r < slowest {
			slowest = r
		}
	}
	return slowest / c.cfg.RefRating
}

// SetNodeSpeed re-times node id at a new effective-rate multiplier: any
// gang spanning the node accrues progress at the old pace, then its
// completion event is rescheduled at the new one. factor must be positive;
// 1 restores nominal speed.
func (c *SpaceShared) SetNodeSpeed(e *sim.Engine, id int, factor float64) {
	if factor <= 0 {
		panic(fmt.Sprintf("cluster: node %d speed factor %g, want > 0", id, factor))
	}
	if factor == c.speed[id] {
		return
	}
	if c.Trace != nil {
		kind := obs.KindNodeSlow
		if factor == 1 {
			kind = obs.KindNodeNominal
		}
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: kind, Job: -1, Node: id, Value: factor})
	}
	if c.Metrics != nil && factor != 1 {
		c.Metrics.NodeSlowdowns.Inc()
	}
	now := e.Now()
	affected := make([]*ssRunning, 0, 1)
	for _, r := range c.runs {
		if gangContains(r.rj.NodeIDs, id) {
			c.advanceRun(r, now)
			affected = append(affected, r)
		}
	}
	c.speed[id] = factor
	for _, r := range affected {
		r.ev.Cancel()
		duration := c.gangRuntime(math.Max(0, r.remaining), r.rj.NodeIDs)
		r.ev = e.After(duration, sim.PriorityCompletion, r.h)
	}
}

// SetNodeDown crashes (down=true) or recovers (down=false) node id. A
// crash kills the job occupying the node, if any: its completion event is
// cancelled, its surviving nodes are released, and OnJobKilled fires with
// the remaining real/believed work in reference seconds. Recovery returns
// the node to the free pool and fires OnNodeUp. Both directions are
// idempotent.
func (c *SpaceShared) SetNodeDown(e *sim.Engine, id int, down bool) []KilledJob {
	if down == c.down[id] {
		return nil
	}
	if !down {
		c.down[id] = false
		c.free++
		if c.Trace != nil {
			c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindNodeUp, Job: -1, Node: id})
		}
		if c.Metrics != nil {
			c.Metrics.NodeRepairs.Inc()
		}
		if c.OnNodeUp != nil {
			c.OnNodeUp(e, id)
		}
		return nil
	}
	c.down[id] = true
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindNodeDown, Job: -1, Node: id})
	}
	if c.Metrics != nil {
		c.Metrics.NodeCrashes.Inc()
	}
	if !c.busy[id] {
		c.free--
		return nil
	}
	// Find the gang occupying the node and tear it down.
	var victim *ssRunning
	for _, r := range c.runs {
		if gangContains(r.rj.NodeIDs, id) {
			victim = r
			break
		}
	}
	if victim == nil {
		panic(fmt.Sprintf("cluster: node %d busy with no running job", id))
	}
	c.advanceRun(victim, e.Now())
	victim.ev.Cancel()
	victim.ev = nil
	rj := victim.rj
	for _, nid := range rj.NodeIDs {
		c.busy[nid] = false
		if nid != id {
			c.free++ // the crashed node itself stays unavailable
		}
	}
	c.running--
	c.killed++
	c.dropRun(victim)
	kj := KilledJob{
		Job:               rj,
		RemainingRuntime:  math.Max(0, victim.remaining),
		RemainingEstimate: math.Max(1e-6, victim.estRemaining),
	}
	if c.Trace != nil {
		c.Trace.Emit(obs.Event{Time: e.Now(), Kind: obs.KindKill, Job: rj.Job.ID, Node: id, Value: kj.RemainingRuntime})
	}
	if c.Metrics != nil {
		c.Metrics.Kills.Inc()
	}
	if c.OnJobKilled != nil {
		c.OnJobKilled(e, kj)
	}
	return []KilledJob{kj}
}

// CheckInvariants validates the cluster's structural invariants: the free
// count matches the idle-up node census, running matches the tracked run
// set, no gang spans a down node, every gang node is marked busy, speeds
// are positive, and remaining work is non-negative (modulo float noise).
func (c *SpaceShared) CheckInvariants() error {
	idle := 0
	for i := range c.ratings {
		if !c.busy[i] && !c.down[i] {
			idle++
		}
		if c.speed[i] <= 0 {
			return fmt.Errorf("cluster: node %d speed %g, want > 0", i, c.speed[i])
		}
	}
	if idle != c.free {
		return fmt.Errorf("cluster: free count %d, census says %d", c.free, idle)
	}
	if c.running != len(c.runs) {
		return fmt.Errorf("cluster: running count %d, tracked runs %d", c.running, len(c.runs))
	}
	for _, r := range c.runs {
		if r.remaining < -1e-6 {
			return fmt.Errorf("cluster: job %d remaining work %g < 0", r.rj.Job.ID, r.remaining)
		}
		for _, id := range r.rj.NodeIDs {
			if c.down[id] {
				return fmt.Errorf("cluster: job %d allocated on down node %d", r.rj.Job.ID, id)
			}
			if !c.busy[id] {
				return fmt.Errorf("cluster: job %d on node %d not marked busy", r.rj.Job.ID, id)
			}
		}
	}
	return nil
}

func gangContains(ids []int, id int) bool {
	for _, n := range ids {
		if n == id {
			return true
		}
	}
	return false
}

// pickFree returns the ids of the fastest numproc idle up nodes, or nil.
// The returned slice aliases pickScratch and is only valid until the next
// pickFree call; Start copies it into the id arena before retaining it.
func (c *SpaceShared) pickFree(numproc int) []int {
	if numproc <= 0 || numproc > c.free {
		return nil
	}
	ids := c.pickScratch[:0]
	for i, b := range c.busy {
		if !b && !c.down[i] {
			ids = append(ids, i)
		}
	}
	c.pickScratch = ids
	slices.SortFunc(ids, func(a, b int) int {
		if ra, rb := c.effRating(a), c.effRating(b); ra != rb {
			return cmp.Compare(rb, ra)
		}
		return a - b
	})
	return ids[:numproc]
}

// gangRuntime is the dedicated runtime of refSeconds of reference work on
// the given nodes: the gang advances at its slowest member's effective
// pace.
func (c *SpaceShared) gangRuntime(refSeconds float64, ids []int) float64 {
	slowest := c.effRating(ids[0])
	for _, id := range ids[1:] {
		if r := c.effRating(id); r < slowest {
			slowest = r
		}
	}
	return refSeconds * c.cfg.RefRating / slowest
}

// MinRuntime returns the job's dedicated runtime on its allocated gang at
// nominal speed, the denominator of the slowdown metric.
func (c *SpaceShared) MinRuntime(rj *RunningJob) float64 {
	slowest := c.ratings[rj.NodeIDs[0]]
	for _, id := range rj.NodeIDs[1:] {
		if c.ratings[id] < slowest {
			slowest = c.ratings[id]
		}
	}
	return rj.Job.Runtime * c.cfg.RefRating / slowest
}

// EstimatedFinish returns when the scheduler believes the job will
// complete: its start time plus its estimated runtime on its gang. Used by
// backfilling and slack-based admission policies that plan ahead from
// estimates.
func (c *SpaceShared) EstimatedFinish(rj *RunningJob) float64 {
	return rj.Start + c.gangRuntime(rj.Estimate, rj.NodeIDs)
}

// RunningJobs returns the currently executing jobs in start order; the
// slice is freshly allocated.
func (c *SpaceShared) RunningJobs() []*RunningJob {
	out := make([]*RunningJob, 0, len(c.runs))
	for _, r := range c.runs {
		out = append(out, r.rj)
	}
	return out
}
