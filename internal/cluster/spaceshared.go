package cluster

import (
	"fmt"
	"sort"

	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// SpaceShared is a cluster of dedicated nodes: each node runs at most one
// job slice at a time (the EDF execution substrate). A parallel job holds
// numproc whole nodes for its full runtime; with heterogeneous ratings the
// gang runs at the pace of its slowest node.
type SpaceShared struct {
	cfg     Config
	ratings []float64
	busy    []bool
	free    int

	// OnJobDone fires when a job completes and its nodes are already
	// released, so the handler observes the post-completion free count.
	OnJobDone func(e *sim.Engine, rj *RunningJob)

	running int
	active  []*RunningJob
}

// NewSpaceShared builds a homogeneous dedicated cluster.
func NewSpaceShared(n int, rating float64, cfg Config) (*SpaceShared, error) {
	ratings := make([]float64, n)
	for i := range ratings {
		ratings[i] = rating
	}
	return NewSpaceSharedHetero(ratings, cfg)
}

// NewSpaceSharedHetero builds a dedicated cluster with per-node ratings.
func NewSpaceSharedHetero(ratings []float64, cfg Config) (*SpaceShared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	for i, r := range ratings {
		if r <= 0 {
			return nil, fmt.Errorf("cluster: node %d rating %g, want > 0", i, r)
		}
	}
	return &SpaceShared{
		cfg:     cfg,
		ratings: append([]float64(nil), ratings...),
		busy:    make([]bool, len(ratings)),
		free:    len(ratings),
	}, nil
}

// Len returns the number of nodes.
func (c *SpaceShared) Len() int { return len(c.ratings) }

// FreeCount returns the number of idle nodes.
func (c *SpaceShared) FreeCount() int { return c.free }

// Running returns the number of executing jobs.
func (c *SpaceShared) Running() int { return c.running }

// RuntimeOn returns the dedicated runtime of refSeconds of work on the
// fastest numproc idle nodes, without starting anything — what an EDF
// admission test needs to decide whether a deadline is still reachable.
// Returns 0 and false when fewer than numproc nodes are idle.
func (c *SpaceShared) RuntimeOn(refSeconds float64, numproc int) (float64, bool) {
	ids := c.pickFree(numproc)
	if ids == nil {
		return 0, false
	}
	return c.gangRuntime(refSeconds, ids), true
}

// BestPossibleRuntime returns the dedicated runtime on the fastest numproc
// nodes regardless of their current occupancy — the most optimistic finish
// a queued job could hope for.
func (c *SpaceShared) BestPossibleRuntime(refSeconds float64, numproc int) (float64, bool) {
	if numproc > len(c.ratings) {
		return 0, false
	}
	sorted := append([]float64(nil), c.ratings...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	slowest := sorted[numproc-1]
	return refSeconds * c.cfg.RefRating / slowest, true
}

// Start runs the job on the fastest numproc idle nodes. The caller must
// have performed admission; Start fails only on resource shortage or bad
// arguments.
func (c *SpaceShared) Start(e *sim.Engine, job workload.Job, estimate float64) (*RunningJob, error) {
	if estimate <= 0 {
		return nil, fmt.Errorf("cluster: job %d estimate %g, want > 0", job.ID, estimate)
	}
	ids := c.pickFree(job.NumProc)
	if ids == nil {
		return nil, fmt.Errorf("cluster: job %d needs %d nodes, only %d free", job.ID, job.NumProc, c.free)
	}
	for _, id := range ids {
		c.busy[id] = true
	}
	c.free -= len(ids)
	c.running++
	rj := &RunningJob{
		Job:      job,
		Estimate: estimate,
		Start:    e.Now(),
		NodeIDs:  ids,
	}
	c.active = append(c.active, rj)
	duration := c.gangRuntime(job.Runtime, ids)
	e.After(duration, sim.PriorityCompletion, func(e *sim.Engine) {
		for _, id := range ids {
			c.busy[id] = false
		}
		c.free += len(ids)
		c.running--
		for i, a := range c.active {
			if a == rj {
				c.active = append(c.active[:i], c.active[i+1:]...)
				break
			}
		}
		rj.done = true
		rj.Finish = e.Now()
		if c.OnJobDone != nil {
			c.OnJobDone(e, rj)
		}
	})
	return rj, nil
}

// pickFree returns the ids of the fastest numproc idle nodes, or nil.
func (c *SpaceShared) pickFree(numproc int) []int {
	if numproc <= 0 || numproc > c.free {
		return nil
	}
	ids := make([]int, 0, c.free)
	for i, b := range c.busy {
		if !b {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		if c.ratings[ids[a]] != c.ratings[ids[b]] {
			return c.ratings[ids[a]] > c.ratings[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return ids[:numproc]
}

// gangRuntime is the dedicated runtime of refSeconds of reference work on
// the given nodes: the gang advances at its slowest member's pace.
func (c *SpaceShared) gangRuntime(refSeconds float64, ids []int) float64 {
	slowest := c.ratings[ids[0]]
	for _, id := range ids[1:] {
		if c.ratings[id] < slowest {
			slowest = c.ratings[id]
		}
	}
	return refSeconds * c.cfg.RefRating / slowest
}

// MinRuntime returns the job's dedicated runtime on its allocated gang,
// the denominator of the slowdown metric.
func (c *SpaceShared) MinRuntime(rj *RunningJob) float64 {
	return c.gangRuntime(rj.Job.Runtime, rj.NodeIDs)
}

// EstimatedFinish returns when the scheduler believes the job will
// complete: its start time plus its estimated runtime on its gang. Used by
// backfilling and slack-based admission policies that plan ahead from
// estimates.
func (c *SpaceShared) EstimatedFinish(rj *RunningJob) float64 {
	return rj.Start + c.gangRuntime(rj.Estimate, rj.NodeIDs)
}

// RunningJobs returns the currently executing jobs in start order; the
// slice is freshly allocated.
func (c *SpaceShared) RunningJobs() []*RunningJob {
	out := append([]*RunningJob(nil), c.active...)
	return out
}
