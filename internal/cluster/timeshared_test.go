package cluster

import (
	"math"
	"testing"

	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func job(id int, submit, runtime, deadline float64, numproc int) workload.Job {
	return workload.Job{
		ID: id, Submit: submit, Runtime: runtime,
		TraceEstimate: runtime, NumProc: numproc, Deadline: deadline,
	}
}

func newTS(t *testing.T, n int) *TimeShared {
	t.Helper()
	c, err := NewTimeShared(n, 168, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runAll(t *testing.T, e *sim.Engine) {
	t.Helper()
	e.MaxEvents = 1_000_000
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleJobAloneFinishesAtRuntime(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	j := job(1, 0, 100, 400, 1)
	if _, err := c.Submit(e, j, 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	if done == nil {
		t.Fatal("job never completed")
	}
	// Work-conserving: a lone job gets the whole node despite a share of
	// only 100/400.
	if math.Abs(done.Finish-100) > 1e-3 {
		t.Fatalf("finish = %v, want 100", done.Finish)
	}
	if !done.DeadlineMet() {
		t.Fatal("deadline not met")
	}
	if d := done.Delay(); d != 0 {
		t.Fatalf("Delay = %v, want 0", d)
	}
}

func TestStrictShareServesAtGuarantee(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.WorkConserving = false
	c, err := NewTimeShared(1, 168, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	j := job(1, 0, 100, 400, 1)
	if _, err := c.Submit(e, j, 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	// Strict share = 100/400 = 0.25, so the job takes its whole deadline.
	if done == nil || math.Abs(done.Finish-400) > 1e-2 {
		t.Fatalf("finish = %+v, want 400", done)
	}
	if !done.DeadlineMet() {
		t.Fatal("strict-share job should finish exactly at its deadline")
	}
}

func TestTwoEqualJobsShareAndMeetDeadlines(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	var finishes []float64
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { finishes = append(finishes, rj.Finish) }
	for i := 1; i <= 2; i++ {
		if _, err := c.Submit(e, job(i, 0, 100, 200, 1), 100, []int{0}); err != nil {
			t.Fatal(err)
		}
	}
	runAll(t, e)
	if len(finishes) != 2 {
		t.Fatalf("completions = %d", len(finishes))
	}
	for _, f := range finishes {
		// Each holds share 0.5 and has exactly 2x runtime of slack.
		if math.Abs(f-200) > 1e-2 {
			t.Fatalf("finish = %v, want 200", f)
		}
	}
}

func TestAccurateEstimatesFeasibleLoadMeetsAllDeadlines(t *testing.T) {
	// Σ shares stays below 1 at every admission, so every deadline must be
	// met under accurate estimates — the Libra invariant.
	e := sim.NewEngine()
	c := newTS(t, 1)
	met := 0
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) {
		if rj.DeadlineMet() {
			met++
		}
	}
	specs := []struct{ submit, runtime, deadline float64 }{
		{0, 100, 400},  // share .25
		{10, 50, 200},  // share ~.25
		{50, 80, 400},  // share .2
		{120, 30, 300}, // share .1
	}
	for i, s := range specs {
		s := s
		i := i
		e.At(s.submit, sim.PriorityArrival, func(e *sim.Engine) {
			if _, err := c.Submit(e, job(i+1, s.submit, s.runtime, s.deadline, 1), s.runtime, []int{0}); err != nil {
				t.Error(err)
			}
		})
	}
	runAll(t, e)
	if met != len(specs) {
		t.Fatalf("met %d of %d deadlines", met, len(specs))
	}
}

func TestOverestimatedJobStillFinishesAtRealRuntime(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	j := job(1, 0, 100, 1000, 1)
	// Scheduler believes 400 s; reality is 100 s.
	if _, err := c.Submit(e, j, 400, []int{0}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	if done == nil || math.Abs(done.Finish-100) > 1e-3 {
		t.Fatalf("finish = %+v, want 100 (real runtime drives completion)", done)
	}
}

func TestUnderestimatedJobOverrunsButCompletes(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	var finished []int
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { finished = append(finished, rj.Job.ID) }
	// Job 1 underestimates badly: believed 10 s, real 200 s, deadline 500.
	if _, err := c.Submit(e, job(1, 0, 200, 500, 1), 10, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Job 2 arrives later with accurate numbers.
	e.At(50, sim.PriorityArrival, func(e *sim.Engine) {
		if _, err := c.Submit(e, job(2, 50, 100, 400, 1), 100, []int{0}); err != nil {
			t.Error(err)
		}
	})
	runAll(t, e)
	if len(finished) != 2 {
		t.Fatalf("finished = %v, want both jobs", finished)
	}
}

func TestOverrunJobGetsOnlyFloorWeight(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	finish := map[int]float64{}
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { finish[rj.Job.ID] = rj.Finish }
	// Job 1: believed 10, real 110, generous deadline.
	if _, err := c.Submit(e, job(1, 0, 110, 10000, 1), 10, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Job 2 submitted at t=10 exactly when job 1 overruns: accurate 100 s,
	// deadline tight enough to demand nearly the whole node.
	e.At(10, sim.PriorityArrival, func(e *sim.Engine) {
		if _, err := c.Submit(e, job(2, 10, 100, 105, 1), 100, []int{0}); err != nil {
			t.Error(err)
		}
	})
	runAll(t, e)
	cfg := DefaultConfig()
	// From t=10, job 2's weight ≈ cap and job 1 is floored. Job 2's rate is
	// ≈ max/(max+floor); it must finish close to its 100 s runtime.
	wantRate := cfg.MaxWeight / (cfg.MaxWeight + cfg.OverrunFloorWeight)
	want := 10 + 100/wantRate
	if math.Abs(finish[2]-want) > 2 {
		t.Fatalf("job 2 finish = %v, want ≈ %v (overrun job must be floored)", finish[2], want)
	}
	if finish[1] <= finish[2] {
		t.Fatalf("overrun job 1 (finish %v) should outlast job 2 (%v)", finish[1], finish[2])
	}
}

func TestParallelJobFinishIsMaxOfSlices(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	finish := map[int]float64{}
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { finish[rj.Job.ID] = rj.Finish }
	// Competitor on node 0 only.
	if _, err := c.Submit(e, job(2, 0, 100, 200, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(e, job(1, 0, 100, 200, 2), 100, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	// Node 1 slice of job 1 runs alone (rate 1, done at 100); node 0 is
	// shared 50/50 (slices done at 200). Job 1 completes at 200.
	if math.Abs(finish[1]-200) > 1e-2 {
		t.Fatalf("parallel job finish = %v, want 200", finish[1])
	}
}

func TestSubmitValidation(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	j := job(1, 0, 100, 200, 2)
	if _, err := c.Submit(e, j, 100, []int{0}); err == nil {
		t.Error("wrong node count accepted")
	}
	if _, err := c.Submit(e, j, 100, []int{0, 0}); err == nil {
		t.Error("duplicate nodes accepted")
	}
	if _, err := c.Submit(e, j, 100, []int{0, 5}); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := c.Submit(e, j, 0, []int{0, 1}); err == nil {
		t.Error("zero estimate accepted")
	}
}

func TestHeterogeneousRatingsScaleWork(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.RefRating = 100
	c, err := NewTimeSharedHetero([]float64{200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	// 100 reference-seconds on a node twice as fast = 50 node-seconds.
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	runAll(t, e)
	if done == nil || math.Abs(done.Finish-50) > 1e-3 {
		t.Fatalf("finish = %+v, want 50 on double-speed node", done)
	}
	if mr := c.MinRuntime(done); math.Abs(mr-50) > 1e-9 {
		t.Fatalf("MinRuntime = %v, want 50", mr)
	}
}

func TestMinRuntimeUsesSlowestNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RefRating = 100
	c, err := NewTimeSharedHetero([]float64{100, 200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rj := &RunningJob{Job: job(1, 0, 60, 600, 2), NodeIDs: []int{0, 1}}
	if mr := c.MinRuntime(rj); math.Abs(mr-60) > 1e-9 {
		t.Fatalf("MinRuntime = %v, want 60 (slowest node)", mr)
	}
}

func TestUtilizationNeverExceedsOne(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	for i := 1; i <= 5; i++ {
		i := i
		at := float64(i * 7)
		e.At(at, sim.PriorityArrival, func(e *sim.Engine) {
			if _, err := c.Submit(e, job(i, at, 50, 120, 1), 40, []int{0}); err != nil {
				t.Error(err)
			}
		})
	}
	e.At(40, sim.PriorityMonitor, func(*sim.Engine) {
		if u := c.Node(0).Utilization(); u > 1+1e-9 {
			t.Errorf("utilization = %v > 1", u)
		}
	})
	runAll(t, e)
}

func TestRunningCount(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	if _, err := c.Submit(e, job(1, 0, 100, 500, 2), 100, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if c.Running() != 1 {
		t.Fatalf("Running = %d, want 1", c.Running())
	}
	runAll(t, e)
	if c.Running() != 0 {
		t.Fatalf("Running = %d after completion, want 0", c.Running())
	}
}

func TestNewTimeSharedRejectsBadArgs(t *testing.T) {
	if _, err := NewTimeShared(0, 168, DefaultConfig()); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewTimeSharedHetero([]float64{100, -1}, DefaultConfig()); err == nil {
		t.Error("negative rating accepted")
	}
	bad := DefaultConfig()
	bad.RefRating = 0
	if _, err := NewTimeShared(1, 168, bad); err == nil {
		t.Error("bad config accepted")
	}
}

func TestLibraShareConventions(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	n := c.Node(0)
	if s := n.LibraShare(0); s != 0 {
		t.Fatalf("empty node share = %v", s)
	}
	// Healthy slice: share = believed/remaining deadline.
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	if s := n.LibraShare(0); math.Abs(s-0.25) > 1e-9 {
		t.Fatalf("share = %v, want 0.25", s)
	}
	// With a candidate: + work/remaining deadline.
	if s := n.LibraShareWith(0, 50, 100); math.Abs(s-0.75) > 1e-9 {
		t.Fatalf("share with candidate = %v, want 0.75", s)
	}
}

func TestLibraShareIgnoresOverrunSlices(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	// Believed 10 s, real 1000 s: after t=10 the slice is overrun.
	if _, err := c.Submit(e, job(1, 0, 1000, 5000, 1), 10, []int{0}); err != nil {
		t.Fatal(err)
	}
	e.At(100, sim.PriorityMonitor, func(e *sim.Engine) {
		if s := c.Node(0).LibraShare(e.Now()); s != 0 {
			t.Errorf("share = %v at t=100, want 0: Libra must be blind to the overrun", s)
		}
	})
	e.SetHorizon(200)
	runAll(t, e)
}

func TestLibraSharePastDeadlineIsInfinite(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	c.OnJobDone = func(*sim.Engine, *RunningJob) {}
	// Deadline 50 but real/believed work 500: at t=100 the deadline has
	// passed with believed work remaining.
	if _, err := c.Submit(e, job(1, 0, 500, 50, 1), 500, []int{0}); err != nil {
		t.Fatal(err)
	}
	e.At(100, sim.PriorityMonitor, func(e *sim.Engine) {
		if s := c.Node(0).LibraShare(e.Now()); !math.IsInf(s, 1) {
			t.Errorf("share = %v, want +Inf for past-deadline slice", s)
		}
	})
	e.SetHorizon(200)
	runAll(t, e)
}

func TestProjectedBelievedBetweenEvents(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	// At t=40 (between events) the lone slice has run at rate 1.
	e.At(40, sim.PriorityMonitor, func(e *sim.Engine) {
		s := c.Node(0).LibraShare(e.Now())
		want := 60.0 / 360.0
		if math.Abs(s-want) > 1e-9 {
			t.Errorf("share at t=40 = %v, want %v", s, want)
		}
	})
	e.SetHorizon(50)
	runAll(t, e)
}
