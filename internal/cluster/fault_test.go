package cluster

import (
	"math"
	"testing"

	"clustersched/internal/sim"
)

// --- time-shared failure semantics ---

func TestTimeSharedCrashKillsGangAndReportsRemaining(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	var killed []KilledJob
	c.OnJobKilled = func(_ *sim.Engine, kj KilledJob) { killed = append(killed, kj) }
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	// A 2-proc job alone on the cluster: each slice runs at full speed.
	if _, err := c.Submit(e, job(1, 0, 100, 400, 2), 100, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	e.At(40, sim.PriorityFault, func(e *sim.Engine) {
		c.SetNodeDown(e, 0, true)
	})
	runAll(t, e)
	if done != nil {
		t.Fatalf("gang member completed after its sibling's node crashed: %+v", done)
	}
	if len(killed) != 1 {
		t.Fatalf("killed = %d jobs, want 1 (gang kill is one job)", len(killed))
	}
	kj := killed[0]
	if kj.Job.Job.ID != 1 {
		t.Fatalf("killed job ID = %d", kj.Job.Job.ID)
	}
	// The gang advanced 40s at full speed: 60s of work remains.
	if math.Abs(kj.RemainingRuntime-60) > 1e-6 {
		t.Fatalf("RemainingRuntime = %v, want 60", kj.RemainingRuntime)
	}
	if math.Abs(kj.RemainingEstimate-60) > 1e-6 {
		t.Fatalf("RemainingEstimate = %v, want 60", kj.RemainingEstimate)
	}
	if c.Killed() != 1 || c.Running() != 0 {
		t.Fatalf("Killed = %d Running = %d", c.Killed(), c.Running())
	}
	// The surviving node must hold no trace of the gang.
	if c.Node(1).NumSlices() != 0 {
		t.Fatalf("survivor still holds %d slices", c.Node(1).NumSlices())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSharedDownNodeRejectsSubmit(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 2)
	c.SetNodeDown(e, 0, true)
	if _, err := c.Submit(e, job(1, 0, 10, 100, 1), 10, []int{0}); err == nil {
		t.Fatal("submit to a down node succeeded")
	}
	if got := c.UpNodes(); got != 1 {
		t.Fatalf("UpNodes = %d, want 1", got)
	}
	c.SetNodeDown(e, 0, false)
	if _, err := c.Submit(e, job(1, 0, 10, 100, 1), 10, []int{0}); err != nil {
		t.Fatalf("submit after repair failed: %v", err)
	}
	runAll(t, e)
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSharedCrashIsIdempotent(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	kills := 0
	c.OnJobKilled = func(*sim.Engine, KilledJob) { kills++ }
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	c.SetNodeDown(e, 0, true)
	c.SetNodeDown(e, 0, true) // second down: no-op
	c.SetNodeDown(e, 0, false)
	c.SetNodeDown(e, 0, false) // second up: no-op
	if kills != 1 {
		t.Fatalf("kills = %d, want 1", kills)
	}
	runAll(t, e)
}

func TestTimeSharedStragglerStretchesRuntime(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	if _, err := c.Submit(e, job(1, 0, 100, 1000, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Half speed from t=40 to t=80, full speed after: 40 + 20 done during
	// the episode, 40 left at t=80 → finish at 120.
	e.At(40, sim.PriorityFault, func(e *sim.Engine) {
		c.SetNodeSpeed(e, 0, 0.5)
	})
	e.At(80, sim.PriorityFault, func(e *sim.Engine) {
		c.SetNodeSpeed(e, 0, 1)
	})
	runAll(t, e)
	if done == nil || math.Abs(done.Finish-120) > 1e-6 {
		t.Fatalf("finish = %+v, want 120", done)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- space-shared failure semantics ---

func TestSpaceSharedCrashFreesSurvivorsAndReportsRemaining(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 4)
	var killed []KilledJob
	c.OnJobKilled = func(_ *sim.Engine, kj KilledJob) { killed = append(killed, kj) }
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	rj, err := c.Start(e, job(1, 0, 100, 500, 2), 100)
	if err != nil {
		t.Fatal(err)
	}
	victim := rj.NodeIDs[0]
	e.At(30, sim.PriorityFault, func(e *sim.Engine) {
		c.SetNodeDown(e, victim, true)
	})
	runAll(t, e)
	if done != nil {
		t.Fatal("gang completed despite losing a node")
	}
	if len(killed) != 1 {
		t.Fatalf("killed = %d, want 1", len(killed))
	}
	if math.Abs(killed[0].RemainingRuntime-70) > 1e-6 {
		t.Fatalf("RemainingRuntime = %v, want 70", killed[0].RemainingRuntime)
	}
	// Survivor freed, crashed node not: 4 nodes - 1 down = 3 free.
	if c.FreeCount() != 3 {
		t.Fatalf("FreeCount = %d, want 3 (survivor freed, victim down)", c.FreeCount())
	}
	if !c.NodeDown(victim) {
		t.Fatal("victim not marked down")
	}
	if c.Running() != 0 || c.Killed() != 1 {
		t.Fatalf("Running = %d Killed = %d", c.Running(), c.Killed())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSharedIdleCrashShrinksAndRepairRestores(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 3)
	c.SetNodeDown(e, 1, true)
	if c.FreeCount() != 2 || c.UpNodes() != 2 {
		t.Fatalf("FreeCount = %d UpNodes = %d after idle crash", c.FreeCount(), c.UpNodes())
	}
	// Down node must never be picked.
	rj, err := c.Start(e, job(1, 0, 10, 100, 2), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range rj.NodeIDs {
		if id == 1 {
			t.Fatal("gang placed on a down node")
		}
	}
	c.SetNodeDown(e, 1, false)
	runAll(t, e)
	if c.FreeCount() != 3 {
		t.Fatalf("FreeCount = %d after repair and drain, want 3", c.FreeCount())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSharedSpeedChangeRetimesGang(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 2)
	var done *RunningJob
	c.OnJobDone = func(_ *sim.Engine, rj *RunningJob) { done = rj }
	if _, err := c.Start(e, job(1, 0, 100, 1000, 2), 100); err != nil {
		t.Fatal(err)
	}
	// Slowing one gang member to half speed paces the whole gang: same
	// 40..80 half-speed window as the TS test → finish at 120.
	e.At(40, sim.PriorityFault, func(e *sim.Engine) {
		c.SetNodeSpeed(e, 0, 0.5)
	})
	e.At(80, sim.PriorityFault, func(e *sim.Engine) {
		c.SetNodeSpeed(e, 0, 1)
	})
	runAll(t, e)
	if done == nil || math.Abs(done.Finish-120) > 1e-6 {
		t.Fatalf("finish = %+v, want 120", done)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceSharedCheckInvariantsCatchesCorruption(t *testing.T) {
	e := sim.NewEngine()
	c := newSS(t, 2)
	if _, err := c.Start(e, job(1, 0, 100, 500, 1), 100); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatalf("healthy cluster flagged: %v", err)
	}
	// Deliberately corrupt the occupancy accounting.
	c.free++
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("free-count corruption not detected")
	}
	c.free--
	runAll(t, e)
}

func TestTimeSharedCheckInvariantsCatchesDownAllocation(t *testing.T) {
	e := sim.NewEngine()
	c := newTS(t, 1)
	if _, err := c.Submit(e, job(1, 0, 100, 400, 1), 100, []int{0}); err != nil {
		t.Fatal(err)
	}
	// Force the illegal state directly: mark the node down without the
	// kill path that normally clears its slices.
	c.nodes[0].down = true
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("allocation on a down node not detected")
	}
	c.nodes[0].down = false
	runAll(t, e)
}
