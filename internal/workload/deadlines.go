package workload

import (
	"fmt"

	"clustersched/internal/sim"
)

// DeadlineConfig parameterizes the paper's deadline model (§4): each job
// joins the high urgency class with probability HighUrgencyFraction and
// receives deadline = factor × real runtime, with the factor drawn from a
// truncated normal whose mean is MeanLowFactor for high-urgency jobs and
// Ratio × MeanLowFactor for low-urgency jobs.
type DeadlineConfig struct {
	HighUrgencyFraction float64
	// MeanLowFactor is the mean of the low deadline/runtime factor, i.e.
	// the tight deadlines given to high urgency jobs.
	MeanLowFactor float64
	// Ratio is the deadline high:low ratio; low-urgency (relaxed) jobs get
	// a factor mean of Ratio × MeanLowFactor.
	Ratio float64
	Seed  uint64
}

// DefaultDeadlineConfig returns the paper's defaults: 20 % high urgency,
// low factor mean 2, ratio 4.
func DefaultDeadlineConfig() DeadlineConfig {
	return DeadlineConfig{
		HighUrgencyFraction: DefaultHighUrgencyFraction,
		MeanLowFactor:       MeanLowDeadlineFactor,
		Ratio:               DefaultDeadlineRatio,
		Seed:                2,
	}
}

// Validate reports the first configuration error.
func (c DeadlineConfig) Validate() error {
	switch {
	case c.HighUrgencyFraction < 0 || c.HighUrgencyFraction > 1:
		return fmt.Errorf("workload: HighUrgencyFraction = %g, want in [0,1]", c.HighUrgencyFraction)
	case c.MeanLowFactor < 1:
		return fmt.Errorf("workload: MeanLowFactor = %g, want >= 1", c.MeanLowFactor)
	case c.Ratio < 1:
		return fmt.Errorf("workload: Ratio = %g, want >= 1", c.Ratio)
	}
	return nil
}

// AssignDeadlines returns a copy of jobs with Class and Deadline set. The
// class sequence is randomly interleaved across arrivals, as in the paper.
func AssignDeadlines(jobs []Job, cfg DeadlineConfig) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	classRNG := root.Stream(1)
	factorRNG := root.Stream(2)

	out := make([]Job, len(jobs))
	copy(out, jobs)
	for i := range out {
		mean := cfg.MeanLowFactor * cfg.Ratio
		out[i].Class = LowUrgency
		if classRNG.Bool(cfg.HighUrgencyFraction) {
			out[i].Class = HighUrgency
			mean = cfg.MeanLowFactor
		}
		stddev := mean / DeadlineFactorCVDivisor
		factor := factorRNG.TruncNormal(mean, stddev, MinDeadlineFactor, mean*4)
		out[i].Deadline = factor * out[i].Runtime
	}
	return out, nil
}
