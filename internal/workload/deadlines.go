package workload

import (
	"fmt"

	"clustersched/internal/sim"
)

// DeadlineConfig parameterizes the paper's deadline model (§4): each job
// joins the high urgency class with probability HighUrgencyFraction and
// receives deadline = factor × real runtime, with the factor drawn from a
// truncated normal whose mean is MeanLowFactor for high-urgency jobs and
// Ratio × MeanLowFactor for low-urgency jobs.
type DeadlineConfig struct {
	HighUrgencyFraction float64
	// MeanLowFactor is the mean of the low deadline/runtime factor, i.e.
	// the tight deadlines given to high urgency jobs.
	MeanLowFactor float64
	// Ratio is the deadline high:low ratio; low-urgency (relaxed) jobs get
	// a factor mean of Ratio × MeanLowFactor.
	Ratio float64
	Seed  uint64
}

// DefaultDeadlineConfig returns the paper's defaults: 20 % high urgency,
// low factor mean 2, ratio 4.
func DefaultDeadlineConfig() DeadlineConfig {
	return DeadlineConfig{
		HighUrgencyFraction: DefaultHighUrgencyFraction,
		MeanLowFactor:       MeanLowDeadlineFactor,
		Ratio:               DefaultDeadlineRatio,
		Seed:                2,
	}
}

// Validate reports the first configuration error.
func (c DeadlineConfig) Validate() error {
	switch {
	case c.HighUrgencyFraction < 0 || c.HighUrgencyFraction > 1:
		return fmt.Errorf("workload: HighUrgencyFraction = %g, want in [0,1]", c.HighUrgencyFraction)
	case c.MeanLowFactor < 1:
		return fmt.Errorf("workload: MeanLowFactor = %g, want >= 1", c.MeanLowFactor)
	case c.Ratio < 1:
		return fmt.Errorf("workload: Ratio = %g, want >= 1", c.Ratio)
	}
	return nil
}

// AssignDeadlines returns a copy of jobs with Class and Deadline set. The
// class sequence is randomly interleaved across arrivals, as in the paper.
func AssignDeadlines(jobs []Job, cfg DeadlineConfig) ([]Job, error) {
	out := make([]Job, len(jobs))
	if err := AssignDeadlinesInto(out, jobs, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// AssignDeadlinesInto is AssignDeadlines writing into caller-owned storage:
// dst receives a copy of jobs with Class and Deadline set, drawing the exact
// same random sequence as AssignDeadlines. It panics if len(dst) != len(jobs).
// Reused run contexts call it to keep the per-run job slice out of the heap.
func AssignDeadlinesInto(dst, jobs []Job, cfg DeadlineConfig) error {
	if len(dst) != len(jobs) {
		panic(fmt.Sprintf("workload: AssignDeadlinesInto dst len %d != jobs len %d", len(dst), len(jobs)))
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	var root, classRNG, factorRNG sim.RNG
	root.Seed(cfg.Seed)
	root.StreamInto(&classRNG, 1)
	root.StreamInto(&factorRNG, 2)

	copy(dst, jobs)
	for i := range dst {
		mean := cfg.MeanLowFactor * cfg.Ratio
		dst[i].Class = LowUrgency
		if classRNG.Bool(cfg.HighUrgencyFraction) {
			dst[i].Class = HighUrgency
			mean = cfg.MeanLowFactor
		}
		stddev := mean / DeadlineFactorCVDivisor
		factor := factorRNG.TruncNormal(mean, stddev, MinDeadlineFactor, mean*4)
		dst[i].Deadline = factor * dst[i].Runtime
	}
	return nil
}
