package workload

import (
	"math"
	"sort"
	"testing"

	"clustersched/internal/sim"
)

func genUsers(t *testing.T, jobs int) []Job {
	t.Helper()
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = jobs
	cfg.Users = DefaultUserModelConfig()
	out, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestUserModelAssignsIDs(t *testing.T) {
	jobs := genUsers(t, 2000)
	users := map[int]int{}
	for _, j := range jobs {
		if j.UserID <= 0 || j.UserID > DefaultUserModelConfig().Count {
			t.Fatalf("UserID = %d out of range", j.UserID)
		}
		users[j.UserID]++
	}
	if len(users) < 10 {
		t.Fatalf("only %d distinct users across 2000 jobs", len(users))
	}
}

func TestUserModelDisabledLeavesZeroIDs(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 100
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.UserID != 0 {
			t.Fatalf("UserID = %d with user model disabled", j.UserID)
		}
	}
}

func TestUserModelActivityIsSkewed(t *testing.T) {
	jobs := genUsers(t, 5000)
	counts := map[int]int{}
	for _, j := range jobs {
		counts[j.UserID]++
	}
	all := make([]int, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(all)))
	top5 := 0
	for i := 0; i < 5 && i < len(all); i++ {
		top5 += all[i]
	}
	if frac := float64(top5) / 5000; frac < 0.3 {
		t.Fatalf("top-5 users submit only %.0f%% of jobs; Zipf skew missing", frac*100)
	}
}

func TestUserModelRuntimeLocality(t *testing.T) {
	// Within-user runtime CV must be well below the population CV.
	jobs := genUsers(t, 8000)
	perUser := map[int]*sim.Welford{}
	var pop sim.Welford
	for _, j := range jobs {
		w := perUser[j.UserID]
		if w == nil {
			w = &sim.Welford{}
			perUser[j.UserID] = w
		}
		w.Add(j.Runtime)
		pop.Add(j.Runtime)
	}
	popCV := pop.StdDev() / pop.Mean()
	var cvSum float64
	n := 0
	for _, w := range perUser {
		if w.N() >= 30 {
			cvSum += w.StdDev() / w.Mean()
			n++
		}
	}
	if n == 0 {
		t.Skip("no user with enough jobs")
	}
	meanUserCV := cvSum / float64(n)
	if meanUserCV >= popCV*0.8 {
		t.Fatalf("within-user CV %.2f not below population CV %.2f", meanUserCV, popCV)
	}
}

func TestUserModelStylePersistence(t *testing.T) {
	// A user who overestimates once should overestimate essentially
	// always (styles persist).
	jobs := genUsers(t, 8000)
	over := map[int]int{}
	under := map[int]int{}
	total := map[int]int{}
	for _, j := range jobs {
		total[j.UserID]++
		switch {
		case j.TraceEstimate > j.Runtime*1.001:
			over[j.UserID]++
		case j.TraceEstimate < j.Runtime*0.999:
			under[j.UserID]++
		}
	}
	mixed := 0
	examined := 0
	for u, n := range total {
		if n < 30 {
			continue
		}
		examined++
		if over[u] > n/5 && under[u] > n/5 {
			mixed++
		}
	}
	if examined == 0 {
		t.Skip("no user with enough jobs")
	}
	if frac := float64(mixed) / float64(examined); frac > 0.25 {
		t.Fatalf("%.0f%% of users flip between over- and under-estimating; styles should persist", frac*100)
	}
}

func TestUserModelKeepsAggregateCalibration(t *testing.T) {
	jobs := genUsers(t, 8000)
	var run sim.Welford
	over := 0
	for _, j := range jobs {
		run.Add(j.Runtime)
		if j.TraceEstimate > j.Runtime {
			over++
		}
	}
	if m := run.Mean(); math.Abs(m-TraceMeanRuntime)/TraceMeanRuntime > 0.4 {
		t.Errorf("mean runtime %.0f drifted too far from calibration %.0f", m, TraceMeanRuntime)
	}
	if frac := float64(over) / float64(len(jobs)); frac < 0.5 {
		t.Errorf("overestimates = %.0f%%, want majority", frac*100)
	}
}

func TestUserModelValidate(t *testing.T) {
	bad := []UserModelConfig{
		{Count: -1},
		{Count: 4, ZipfS: -1},
		{Count: 4, StyleJitterCV: -1},
		{Count: 4, RuntimeSpreadCV: -1},
		{Count: 4, RuntimeJitterCV: -2},
	}
	for i, c := range bad {
		cfg := DefaultGeneratorConfig()
		cfg.Users = c
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestUserModelDeterministic(t *testing.T) {
	a := genUsers(t, 300)
	b := genUsers(t, 300)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("user-model generation not deterministic")
		}
	}
}
