// Package workload models the paper's workload: jobs with real runtimes,
// user runtime estimates, processor requirements and synthesized deadlines,
// either generated to match the SDSC SP2 trace subset statistics or
// converted from a real SWF trace.
package workload

import (
	"fmt"
	"math"
)

// Class is a job urgency class. The paper assigns each job to a high
// urgency class (short deadline relative to runtime) or a low urgency class
// (long deadline relative to runtime).
type Class int

const (
	// HighUrgency jobs have a deadline/runtime factor drawn around the low
	// mean (tight deadlines).
	HighUrgency Class = iota
	// LowUrgency jobs have a deadline/runtime factor drawn around
	// ratio × the low mean (loose deadlines).
	LowUrgency
)

func (c Class) String() string {
	switch c {
	case HighUrgency:
		return "high-urgency"
	case LowUrgency:
		return "low-urgency"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Job is one unit of work submitted to the cluster. All durations are in
// seconds of dedicated execution on a node of the reference SPEC rating;
// the cluster engine converts to heterogeneous node speeds via MI.
type Job struct {
	ID     int
	Submit float64 // arrival time, seconds since workload start
	// Runtime is the real dedicated runtime. The scheduler never sees it;
	// it drives actual completion.
	Runtime float64
	// TraceEstimate is the user-supplied runtime estimate ("requested
	// time" in SWF terms): what the trace recorded, typically
	// overestimated and sometimes underestimated.
	TraceEstimate float64
	// NumProc is the number of processors (nodes) the job needs
	// simultaneously.
	NumProc int
	// Deadline is the SLA deadline relative to Submit. Hard: the job is
	// useful only if it completes within Submit+Deadline.
	Deadline float64
	Class    Class
	// UserID identifies the submitting user (0 when the workload has no
	// user model). History-based runtime predictors key on it.
	UserID int
}

// AbsDeadline returns the absolute deadline time.
func (j Job) AbsDeadline() float64 { return j.Submit + j.Deadline }

// LengthMI converts the job's dedicated runtime to a machine-independent
// length in million instructions, given the reference node's SPEC (MIPS)
// rating.
func (j Job) LengthMI(refRating float64) float64 { return j.Runtime * refRating }

// EstimateAt returns the runtime estimate the scheduler sees at the given
// inaccuracy level, per the paper's §4: 0 % means perfectly accurate
// estimates (equal to the real runtime), 100 % means the actual estimates
// from the trace, and intermediate levels interpolate linearly.
func (j Job) EstimateAt(inaccuracyPct float64) float64 {
	if inaccuracyPct < 0 {
		inaccuracyPct = 0
	}
	if inaccuracyPct > 100 {
		inaccuracyPct = 100
	}
	est := j.Runtime + inaccuracyPct/100*(j.TraceEstimate-j.Runtime)
	// A zero or negative estimate would divide shares by zero downstream;
	// schedulers treat such jobs as needing at least a moment of service.
	return math.Max(est, 1e-6)
}

// Validate reports the first modelling error in the job, if any. It guards
// the generator and the SWF conversion path.
func (j Job) Validate() error {
	switch {
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit %g", j.ID, j.Submit)
	case j.Runtime <= 0:
		return fmt.Errorf("job %d: non-positive runtime %g", j.ID, j.Runtime)
	case j.TraceEstimate <= 0:
		return fmt.Errorf("job %d: non-positive estimate %g", j.ID, j.TraceEstimate)
	case j.NumProc <= 0:
		return fmt.Errorf("job %d: non-positive numproc %d", j.ID, j.NumProc)
	case j.Deadline <= 0:
		return fmt.Errorf("job %d: non-positive deadline %g", j.ID, j.Deadline)
	case math.IsNaN(j.Submit) || math.IsNaN(j.Runtime) || math.IsNaN(j.TraceEstimate) || math.IsNaN(j.Deadline):
		return fmt.Errorf("job %d: NaN field", j.ID)
	}
	return nil
}

// ScaleArrivals returns a copy of jobs with inter-arrival gaps multiplied
// by factor — the paper's "arrival delay factor". A factor below 1
// compresses arrivals (heavier load); 1 leaves the trace timing unchanged.
// The first job keeps its submit time.
func ScaleArrivals(jobs []Job, factor float64) []Job {
	out := make([]Job, len(jobs))
	copy(out, jobs)
	ScaleArrivalsInPlace(out, factor)
	return out
}

// ScaleArrivalsInPlace rewrites jobs' submit times in place with the same
// transformation as ScaleArrivals. Callers that already own a scratch copy
// of the workload (reused run contexts) use it to avoid the per-run clone.
func ScaleArrivalsInPlace(jobs []Job, factor float64) {
	if len(jobs) == 0 || factor == 1 {
		return
	}
	if factor < 0 {
		factor = 0
	}
	prevOrig := jobs[0].Submit
	prevNew := jobs[0].Submit
	for i := 1; i < len(jobs); i++ {
		gap := jobs[i].Submit - prevOrig
		prevOrig = jobs[i].Submit
		prevNew += gap * factor
		jobs[i].Submit = prevNew
	}
}

// ValidateAll returns the first error across all jobs, also checking that
// submissions are in nondecreasing time order.
func ValidateAll(jobs []Job) error {
	prev := math.Inf(-1)
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if j.Submit < prev {
			return fmt.Errorf("job %d: submit %g before previous %g", j.ID, j.Submit, prev)
		}
		prev = j.Submit
	}
	return nil
}
