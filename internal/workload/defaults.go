package workload

// Calibration targets and experiment defaults. The OCR of the paper blanks
// most numerals; each constant below records where its value comes from:
// "paper" = legible in the text, "derived" = forced by surviving arithmetic
// (for example the §3.2 worked example), "companion" = taken from the
// authors' companion papers on Libra/LibraSLA which share the methodology.
const (
	// SDSCSP2Nodes is the machine size of the IBM SP2 at the San Diego
	// Supercomputer Center (Parallel Workloads Archive). [companion]
	SDSCSP2Nodes = 128
	// SDSCSP2Rating is the per-node SPEC rating GridSim uses for the SP2.
	// [companion]
	SDSCSP2Rating = 168.0

	// TraceJobs is the size of the trace subset: the last 3000 jobs,
	// about 2.5 months of the original trace (3000 × 2131 s ≈ 74 days,
	// matching the paper's "about 2.5 months"). [derived]
	TraceJobs = 3000
	// TraceMeanInterarrival is the subset's average inter-arrival time in
	// seconds (35.52 minutes). [paper]
	TraceMeanInterarrival = 2131.0
	// TraceMeanRuntime is the subset's average runtime: 2.7 hours. [paper]
	TraceMeanRuntime = 2.7 * 3600
	// TraceMeanProcs is the subset's average processor requirement. [paper]
	TraceMeanProcs = 17.0
	// TraceUtilization is the resource utilization of the full SDSC SP2
	// trace, the highest among archive traces. [paper: 83.2 %]
	TraceUtilization = 0.832

	// DefaultHighUrgencyFraction: by default 20 % of jobs are high
	// urgency. [companion]
	DefaultHighUrgencyFraction = 0.20
	// MeanLowDeadlineFactor is the mean of the low deadline_i/runtime_i
	// factor, i.e. the deadline tightness of the *high urgency* class.
	// [companion: 2]
	MeanLowDeadlineFactor = 2.0
	// DefaultDeadlineRatio is the default deadline high:low ratio: the
	// low-urgency class mean factor is this multiple of
	// MeanLowDeadlineFactor. [companion: 4]
	DefaultDeadlineRatio = 4.0
	// DeadlineFactorCVDivisor: within each class, factors are normally
	// distributed with stddev = mean / this divisor, truncated so a
	// deadline always exceeds the runtime. [paper: "values are normally
	// distributed within each high and low deadline_i/runtime_i"]
	DeadlineFactorCVDivisor = 4.0
	// MinDeadlineFactor keeps every deadline strictly above the runtime,
	// as the paper requires ("always assigned a higher factored value").
	MinDeadlineFactor = 1.05

	// DefaultArrivalDelayFactor leaves the trace arrival process
	// unchanged. [paper]
	DefaultArrivalDelayFactor = 1.0
)
