package workload

import (
	"fmt"
	"math"

	"clustersched/internal/sim"
)

// UserModelConfig adds a user population to the synthetic workload. Real
// traces show two properties that matter for estimate handling: job
// counts per user are heavily skewed (a few users dominate), and each
// user's estimation *style* is persistent — chronic padders keep padding,
// precise users stay precise (Tsafrir et al. 2005). Persistence is what
// makes history-based runtime prediction work, so experiments on
// system-generated estimates need this model enabled.
type UserModelConfig struct {
	// Count is the number of users; 0 disables the model entirely.
	Count int
	// ZipfS is the skew of the user-activity distribution
	// (P(user u) ∝ 1/(u+1)^s). 0 means uniform activity.
	ZipfS float64
	// StyleJitterCV perturbs each job around its user's characteristic
	// over-estimation factor (lognormal CV). Low values make users highly
	// predictable.
	StyleJitterCV float64
	// RuntimeSpreadCV spreads characteristic runtime scales *across*
	// users (lognormal CV around the generator's MeanRuntime), and
	// RuntimeJitterCV perturbs each job around its user's scale. Real
	// users resubmit similar jobs, so within-user jitter is much smaller
	// than the population spread — the property last-K-runtimes
	// predictors exploit.
	RuntimeSpreadCV float64
	RuntimeJitterCV float64
}

// DefaultUserModelConfig returns a 64-user population with realistic skew,
// moderately consistent personal styles, and within-user runtime locality.
func DefaultUserModelConfig() UserModelConfig {
	return UserModelConfig{
		Count: 64, ZipfS: 1.2, StyleJitterCV: 0.25,
		RuntimeSpreadCV: 2.0, RuntimeJitterCV: 0.5,
	}
}

// Validate reports the first configuration error.
func (c UserModelConfig) Validate() error {
	switch {
	case c.Count < 0:
		return fmt.Errorf("workload: user Count = %d, want >= 0", c.Count)
	case c.ZipfS < 0:
		return fmt.Errorf("workload: ZipfS = %g, want >= 0", c.ZipfS)
	case c.StyleJitterCV < 0:
		return fmt.Errorf("workload: StyleJitterCV = %g, want >= 0", c.StyleJitterCV)
	case c.RuntimeSpreadCV < 0 || c.RuntimeJitterCV < 0:
		return fmt.Errorf("workload: runtime CVs (%g, %g) must be >= 0", c.RuntimeSpreadCV, c.RuntimeJitterCV)
	}
	return nil
}

// userStyle is one user's persistent estimation behaviour.
type userStyle struct {
	kind styleKind
	// factor is the user's characteristic estimate/runtime ratio (for
	// padders > 1, for underestimators < 1; 1 for exact users).
	factor float64
}

type styleKind int

const (
	styleExact styleKind = iota
	styleUnder
	styleOver
)

// buildUserPopulation draws the per-user activity weights, styles and
// characteristic runtime scales. The style mixture reuses the job-level
// EstimateConfig fractions so the aggregate workload keeps the same
// over/under/exact composition.
func buildUserPopulation(r *sim.RNG, ucfg UserModelConfig, ecfg EstimateConfig, meanRuntime float64) (weights []float64, styles []userStyle, scales []float64) {
	weights = make([]float64, ucfg.Count)
	styles = make([]userStyle, ucfg.Count)
	scales = make([]float64, ucfg.Count)
	for u := 0; u < ucfg.Count; u++ {
		weights[u] = 1 / math.Pow(float64(u+1), ucfg.ZipfS)
		scales[u] = r.LognormalMeanCV(meanRuntime, ucfg.RuntimeSpreadCV)
		p := r.Float64()
		switch {
		case p < ecfg.ExactFraction:
			styles[u] = userStyle{kind: styleExact, factor: 1}
		case p < ecfg.ExactFraction+ecfg.UnderFraction:
			f := ecfg.UnderLo + r.Float64()*(ecfg.UnderHi-ecfg.UnderLo)
			styles[u] = userStyle{kind: styleUnder, factor: f}
		default:
			f := clamp(r.LognormalMeanCV(ecfg.OverFactorMean, ecfg.OverFactorCV), ecfg.OverMin, ecfg.OverMax)
			styles[u] = userStyle{kind: styleOver, factor: f}
		}
	}
	return weights, styles, scales
}

// sampleUserRuntime draws a runtime around the user's characteristic
// scale.
func sampleUserRuntime(r *sim.RNG, scale float64, ucfg UserModelConfig) float64 {
	if ucfg.RuntimeJitterCV <= 0 {
		return scale
	}
	return scale * r.LognormalMeanCV(1, ucfg.RuntimeJitterCV)
}

// sampleUserEstimate draws one estimate in the user's persistent style,
// with per-job jitter.
func sampleUserEstimate(r *sim.RNG, runtime float64, style userStyle, ucfg UserModelConfig, ecfg EstimateConfig, maxRuntime float64) float64 {
	jitter := 1.0
	if ucfg.StyleJitterCV > 0 {
		jitter = r.LognormalMeanCV(1, ucfg.StyleJitterCV)
	}
	switch style.kind {
	case styleExact:
		return runtime
	case styleUnder:
		f := clamp(style.factor*jitter, 0.05, 0.99)
		return math.Max(1, runtime*f)
	default:
		f := clamp(style.factor*jitter, ecfg.OverMin, ecfg.OverMax)
		est := runtime * f
		if ecfg.RoundTo > 0 {
			est = math.Ceil(est/ecfg.RoundTo) * ecfg.RoundTo
		}
		return math.Min(est, maxRuntime*2)
	}
}
