package workload

import (
	"fmt"
	"math"

	"clustersched/internal/sim"
)

// EstimateConfig models user runtime estimates. The paper's central
// empirical observation (echoing Mu'alem & Feitelson 2001 and Tsafrir et
// al. 2005) is that real estimates are highly inaccurate and *often* — not
// always — overestimated: most users pad generously and round to "nice"
// values, a small fraction nail the runtime, and a minority underestimate
// (their jobs outlive the request). The underestimated minority is what
// defeats Libra's share bookkeeping and what LibraRisk's σ metric detects.
type EstimateConfig struct {
	// ExactFraction of jobs carry an estimate equal to their runtime.
	ExactFraction float64
	// UnderFraction of jobs underestimate: estimate = runtime × U(UnderLo,
	// UnderHi) with UnderHi < 1.
	UnderFraction    float64
	UnderLo, UnderHi float64
	// The remaining jobs overestimate by a lognormal factor with the given
	// mean and CV, clamped to [OverMin, OverMax].
	OverFactorMean float64
	OverFactorCV   float64
	OverMin        float64
	OverMax        float64
	// RoundTo, if positive, rounds overestimates up to a multiple of this
	// many seconds, mimicking users picking round requested times
	// (15 minutes by default, per the modal estimates in real traces).
	RoundTo float64
}

// DefaultEstimateConfig returns the calibrated estimate error model.
func DefaultEstimateConfig() EstimateConfig {
	return EstimateConfig{
		ExactFraction:  0.10,
		UnderFraction:  0.12,
		UnderLo:        0.30,
		UnderHi:        0.95,
		OverFactorMean: 4.0,
		OverFactorCV:   1.0,
		OverMin:        1.05,
		OverMax:        50,
		RoundTo:        15 * 60,
	}
}

// Validate reports the first configuration error.
func (c EstimateConfig) Validate() error {
	switch {
	case c.ExactFraction < 0 || c.UnderFraction < 0 || c.ExactFraction+c.UnderFraction > 1:
		return fmt.Errorf("workload: estimate fractions exact=%g under=%g invalid", c.ExactFraction, c.UnderFraction)
	case c.UnderFraction > 0 && (c.UnderLo <= 0 || c.UnderHi >= 1 || c.UnderLo > c.UnderHi):
		return fmt.Errorf("workload: under-estimate range [%g, %g] invalid", c.UnderLo, c.UnderHi)
	case c.OverFactorMean < 1:
		return fmt.Errorf("workload: OverFactorMean = %g, want >= 1", c.OverFactorMean)
	case c.OverMin < 1 || c.OverMax < c.OverMin:
		return fmt.Errorf("workload: over-factor clamp [%g, %g] invalid", c.OverMin, c.OverMax)
	case c.RoundTo < 0:
		return fmt.Errorf("workload: RoundTo = %g, want >= 0", c.RoundTo)
	}
	return nil
}

// sampleEstimate draws one user estimate for a job with the given real
// runtime.
func sampleEstimate(r *sim.RNG, runtime float64, c EstimateConfig, maxRuntime float64) float64 {
	u := r.Float64()
	switch {
	case u < c.ExactFraction:
		return runtime
	case u < c.ExactFraction+c.UnderFraction:
		f := c.UnderLo + r.Float64()*(c.UnderHi-c.UnderLo)
		return math.Max(1, runtime*f)
	default:
		f := clamp(r.LognormalMeanCV(c.OverFactorMean, c.OverFactorCV), c.OverMin, c.OverMax)
		est := runtime * f
		if c.RoundTo > 0 {
			est = math.Ceil(est/c.RoundTo) * c.RoundTo
		}
		// Users cannot request more than the system maximum; cap well
		// above the runtime ceiling the way queue limits do.
		return math.Min(est, maxRuntime*2)
	}
}
