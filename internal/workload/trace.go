package workload

import (
	"fmt"
	"math"

	"clustersched/internal/swf"
)

// FromSWF converts a parsed SWF trace into the internal job stream. Records
// without a usable estimate inherit their runtime as the "trace estimate"
// (i.e. they behave as accurate), which is the conservative choice the
// paper makes by selecting SDSC SP2 specifically because it records real
// estimates. Processor requests are capped at maxProcs so a trace from a
// larger machine still replays.
func FromSWF(tr *swf.Trace, maxProcs int) ([]Job, error) {
	if maxProcs <= 0 {
		return nil, fmt.Errorf("workload: maxProcs = %d, want > 0", maxProcs)
	}
	jobs := make([]Job, 0, len(tr.Records))
	for _, r := range tr.Records {
		if r.RunTime <= 0 || r.Procs() <= 0 {
			continue // never-ran records cannot be replayed
		}
		est := float64(r.ReqTime)
		if !r.HasEstimate() {
			est = float64(r.RunTime)
		}
		jobs = append(jobs, Job{
			ID:            r.JobNumber,
			Submit:        float64(r.Submit),
			Runtime:       float64(r.RunTime),
			TraceEstimate: est,
			NumProc:       min(r.Procs(), maxProcs),
		})
	}
	return jobs, nil
}

// ToSWF converts a job stream (with or without deadlines) into an SWF
// trace, recording the user estimate in the requested-time field. Deadline
// and class, which SWF has no fields for, are stored as header metadata per
// the convention "deadlines must be re-assigned on load".
func ToSWF(jobs []Job, maxNodes int) *swf.Trace {
	tr := &swf.Trace{}
	tr.Header.Set("Version", "2.2")
	tr.Header.Set("Computer", "Synthetic IBM SP2 (clustersched)")
	tr.Header.Set("MaxNodes", fmt.Sprintf("%d", maxNodes))
	tr.Header.Set("Note", "synthetic SDSC SP2-like workload; deadlines assigned at load time")
	for _, j := range jobs {
		tr.Records = append(tr.Records, swf.Record{
			JobNumber:      j.ID,
			Submit:         int64(math.Round(j.Submit)),
			Wait:           swf.Missing,
			RunTime:        int64(math.Round(j.Runtime)),
			AllocProcs:     j.NumProc,
			AvgCPUTime:     swf.Missing,
			UsedMemory:     swf.Missing,
			ReqProcs:       j.NumProc,
			ReqTime:        int64(math.Ceil(j.TraceEstimate)),
			ReqMemory:      swf.Missing,
			Status:         swf.StatusCompleted,
			UserID:         swf.Missing,
			GroupID:        swf.Missing,
			Executable:     swf.Missing,
			QueueNumber:    swf.Missing,
			PartitionNum:   swf.Missing,
			PrecedingJob:   swf.Missing,
			ThinkTimeAfter: swf.Missing,
		})
	}
	return tr
}

// Utilization estimates the offered load of a job stream on a cluster of
// the given size: total processor-seconds demanded divided by available
// processor-seconds over the submission span.
func Utilization(jobs []Job, nodes int) float64 {
	if len(jobs) == 0 || nodes <= 0 {
		return 0
	}
	var demand float64
	first, last := jobs[0].Submit, jobs[0].Submit
	for _, j := range jobs {
		demand += j.Runtime * float64(j.NumProc)
		if j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
	}
	span := last - first
	if span <= 0 {
		return math.Inf(1)
	}
	return demand / (span * float64(nodes))
}
