package workload

import (
	"fmt"
	"math"
	"sort"

	"clustersched/internal/sim"
)

// GeneratorConfig parameterizes the synthetic SDSC-SP2-like trace. The
// defaults reproduce the statistics the paper reports for its 3000-job
// subset: mean inter-arrival 2131 s, mean runtime 2.7 h, mean 17
// processors on a 128-node machine, with user estimates that are highly
// inaccurate and mostly — but not exclusively — overestimated.
type GeneratorConfig struct {
	Jobs int
	Seed uint64

	MeanInterarrival float64
	// InterarrivalCV shapes burstiness; supercomputer arrivals are
	// burstier than Poisson, so the default uses a hyperexponential-like
	// Weibull with CV > 1.
	InterarrivalCV float64
	// Diurnal, when Amplitude > 0, modulates arrival intensity with a
	// daily cycle, as every production trace exhibits. Disabled by
	// default to keep the paper-calibrated stationary process.
	Diurnal DiurnalConfig

	MeanRuntime float64
	RuntimeCV   float64
	MinRuntime  float64
	MaxRuntime  float64

	MaxProcs int
	// ProcWeights gives the probability weight of each power-of-two
	// processor request 1,2,4,...,MaxProcs. Empty selects calibrated
	// defaults with mean ≈ 17.
	ProcWeights []float64
	// NonPowerFraction is the chance a job requests a non-power-of-two
	// count (real traces contain a minority of such requests).
	NonPowerFraction float64

	Estimates EstimateConfig

	// Users, when Count > 0, replaces the job-level estimate mixture with
	// a user population whose estimation styles persist across their jobs
	// (required for history-based runtime prediction experiments). The
	// default leaves it disabled, preserving the paper-calibrated
	// job-level mixture.
	Users UserModelConfig
}

// DefaultGeneratorConfig returns the calibrated SDSC SP2 subset model.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Jobs:             TraceJobs,
		Seed:             1,
		MeanInterarrival: TraceMeanInterarrival,
		InterarrivalCV:   1.8,
		MeanRuntime:      TraceMeanRuntime,
		RuntimeCV:        2.2,
		MinRuntime:       30,
		MaxRuntime:       36 * 3600,
		MaxProcs:         SDSCSP2Nodes,
		NonPowerFraction: 0.12,
		Estimates:        DefaultEstimateConfig(),
	}
}

// defaultProcWeights are the probabilities of requesting 1,2,4,...,128
// processors, calibrated so the mean request is ≈ 17 with a serial-job
// spike, matching published SDSC SP2 characterizations.
var defaultProcWeights = []float64{0.25, 0.10, 0.12, 0.15, 0.15, 0.12, 0.08, 0.03}

// Validate reports the first configuration error.
func (c GeneratorConfig) Validate() error {
	switch {
	case c.Jobs <= 0:
		return fmt.Errorf("workload: Jobs = %d, want > 0", c.Jobs)
	case c.MeanInterarrival <= 0:
		return fmt.Errorf("workload: MeanInterarrival = %g, want > 0", c.MeanInterarrival)
	case c.MeanRuntime <= 0:
		return fmt.Errorf("workload: MeanRuntime = %g, want > 0", c.MeanRuntime)
	case c.MinRuntime <= 0 || c.MaxRuntime < c.MinRuntime:
		return fmt.Errorf("workload: runtime bounds [%g, %g] invalid", c.MinRuntime, c.MaxRuntime)
	case c.MaxProcs <= 0:
		return fmt.Errorf("workload: MaxProcs = %d, want > 0", c.MaxProcs)
	case c.NonPowerFraction < 0 || c.NonPowerFraction > 1:
		return fmt.Errorf("workload: NonPowerFraction = %g, want in [0,1]", c.NonPowerFraction)
	}
	if err := c.Users.Validate(); err != nil {
		return err
	}
	if err := c.Diurnal.Validate(); err != nil {
		return err
	}
	return c.Estimates.Validate()
}

// DiurnalConfig shapes a daily arrival-intensity cycle.
type DiurnalConfig struct {
	// Amplitude in [0, 1): intensity swings between (1−A) and (1+A)
	// around the stationary rate. 0 disables the cycle.
	Amplitude float64
	// PeriodHours is the cycle length (24 for a daily rhythm).
	PeriodHours float64
	// PeakHour is the hour of maximum intensity within the cycle.
	PeakHour float64
}

// DefaultDiurnalConfig returns a realistic day/night swing: 70 % amplitude
// peaking mid-afternoon.
func DefaultDiurnalConfig() DiurnalConfig {
	return DiurnalConfig{Amplitude: 0.7, PeriodHours: 24, PeakHour: 15}
}

// Validate reports the first configuration error.
func (c DiurnalConfig) Validate() error {
	switch {
	case c.Amplitude < 0 || c.Amplitude >= 1:
		return fmt.Errorf("workload: diurnal Amplitude = %g, want in [0,1)", c.Amplitude)
	case c.Amplitude > 0 && c.PeriodHours <= 0:
		return fmt.Errorf("workload: diurnal PeriodHours = %g, want > 0", c.PeriodHours)
	case c.PeakHour < 0:
		return fmt.Errorf("workload: diurnal PeakHour = %g, want >= 0", c.PeakHour)
	}
	return nil
}

// intensity returns the relative arrival intensity at simulated time t
// (mean 1 over a full cycle).
func (c DiurnalConfig) intensity(t float64) float64 {
	if c.Amplitude <= 0 {
		return 1
	}
	period := c.PeriodHours * 3600
	phase := 2 * math.Pi * (t - c.PeakHour*3600) / period
	return 1 + c.Amplitude*math.Cos(phase)
}

// Generate produces the synthetic job stream (without deadlines; apply
// AssignDeadlines afterwards). The result is sorted by submit time and
// deterministic for a given config.
func Generate(cfg GeneratorConfig) ([]Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := sim.NewRNG(cfg.Seed)
	arrivalRNG := root.Stream(1)
	runtimeRNG := root.Stream(2)
	procRNG := root.Stream(3)
	estRNG := root.Stream(4)

	var userWeights, userScales []float64
	var userStyles []userStyle
	var userRNG *sim.RNG
	if cfg.Users.Count > 0 {
		userRNG = root.Stream(5)
		userWeights, userStyles, userScales = buildUserPopulation(root.Stream(6), cfg.Users, cfg.Estimates, cfg.MeanRuntime)
	}

	weights := cfg.ProcWeights
	if len(weights) == 0 {
		weights = defaultProcWeights
	}
	// Trim the power-of-two menu to MaxProcs.
	maxPow := 0
	for (1 << (maxPow + 1)) <= cfg.MaxProcs {
		maxPow++
	}
	if len(weights) > maxPow+1 {
		weights = weights[:maxPow+1]
	}

	jobs := make([]Job, cfg.Jobs)
	t := 0.0
	for i := range jobs {
		if i > 0 {
			gap := interarrival(arrivalRNG, cfg)
			// Diurnal modulation: stretch gaps when intensity is low,
			// compress them at the peak.
			gap /= cfg.Diurnal.intensity(t)
			t += gap
		}
		procs := sampleProcs(procRNG, weights, cfg)
		jobs[i] = Job{
			ID:      i + 1,
			Submit:  t,
			NumProc: procs,
		}
		if cfg.Users.Count > 0 {
			user := userRNG.Choice(userWeights)
			runtime := clamp(sampleUserRuntime(runtimeRNG, userScales[user], cfg.Users), cfg.MinRuntime, cfg.MaxRuntime)
			jobs[i].UserID = user + 1
			jobs[i].Runtime = runtime
			jobs[i].TraceEstimate = sampleUserEstimate(estRNG, runtime, userStyles[user], cfg.Users, cfg.Estimates, cfg.MaxRuntime)
		} else {
			runtime := clamp(runtimeRNG.LognormalMeanCV(cfg.MeanRuntime, cfg.RuntimeCV), cfg.MinRuntime, cfg.MaxRuntime)
			jobs[i].Runtime = runtime
			jobs[i].TraceEstimate = sampleEstimate(estRNG, runtime, cfg.Estimates, cfg.MaxRuntime)
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Submit < jobs[b].Submit })
	return jobs, nil
}

func interarrival(r *sim.RNG, cfg GeneratorConfig) float64 {
	if cfg.InterarrivalCV <= 1 {
		return r.Exp(cfg.MeanInterarrival)
	}
	// Weibull with shape < 1 gives CV > 1 (bursty). Solve shape from CV
	// approximately: CV² = Γ(1+2/k)/Γ(1+1/k)² − 1. A two-term fit is
	// sufficient for workload modelling.
	k := weibullShapeForCV(cfg.InterarrivalCV)
	scale := cfg.MeanInterarrival / math.Gamma(1+1/k)
	return r.Weibull(scale, k)
}

// weibullShapeForCV inverts the Weibull CV relation by bisection.
func weibullShapeForCV(cv float64) float64 {
	lo, hi := 0.1, 1.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		g1 := math.Gamma(1 + 1/mid)
		g2 := math.Gamma(1 + 2/mid)
		c := math.Sqrt(g2/(g1*g1) - 1)
		if c > cv {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func sampleProcs(r *sim.RNG, weights []float64, cfg GeneratorConfig) int {
	if cfg.MaxProcs == 1 {
		return 1
	}
	p := 1 << r.Choice(weights)
	if p > 1 && r.Bool(cfg.NonPowerFraction) {
		// Perturb off the power of two, staying within [1, MaxProcs].
		span := p / 2
		p += r.Intn(2*span+1) - span
	}
	if p < 1 {
		p = 1
	}
	if p > cfg.MaxProcs {
		p = cfg.MaxProcs
	}
	return p
}

func clamp(x, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, x)) }
