package workload

import (
	"math"
	"testing"

	"clustersched/internal/sim"
)

func TestAssignDeadlinesClassesAndFactors(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 10000
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dcfg := DefaultDeadlineConfig()
	out, err := AssignDeadlines(jobs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var high, low int
	var highFac, lowFac sim.Welford
	for _, j := range out {
		f := j.Deadline / j.Runtime
		if f < MinDeadlineFactor-1e-9 {
			t.Fatalf("deadline factor %g below minimum; deadlines must exceed runtimes", f)
		}
		switch j.Class {
		case HighUrgency:
			high++
			highFac.Add(f)
		case LowUrgency:
			low++
			lowFac.Add(f)
		}
	}
	if frac := float64(high) / float64(high+low); math.Abs(frac-dcfg.HighUrgencyFraction) > 0.02 {
		t.Errorf("high urgency fraction = %.3f, want ~%.2f", frac, dcfg.HighUrgencyFraction)
	}
	if m := highFac.Mean(); math.Abs(m-dcfg.MeanLowFactor) > 0.15 {
		t.Errorf("high-urgency factor mean = %.2f, want ~%.1f", m, dcfg.MeanLowFactor)
	}
	wantLow := dcfg.MeanLowFactor * dcfg.Ratio
	if m := lowFac.Mean(); math.Abs(m-wantLow)/wantLow > 0.05 {
		t.Errorf("low-urgency factor mean = %.2f, want ~%.1f", m, wantLow)
	}
}

func TestAssignDeadlinesDoesNotMutateInput(t *testing.T) {
	jobs := []Job{validJob()}
	jobs[0].Deadline = 0
	out, err := AssignDeadlines(jobs, DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Deadline != 0 {
		t.Fatal("input mutated")
	}
	if out[0].Deadline <= 0 {
		t.Fatal("output deadline not set")
	}
}

func TestAssignDeadlinesDeterministic(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 200
	jobs, _ := Generate(cfg)
	a, _ := AssignDeadlines(jobs, DefaultDeadlineConfig())
	b, _ := AssignDeadlines(jobs, DefaultDeadlineConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("deadline assignment not deterministic")
		}
	}
}

func TestAssignDeadlinesExtremeFractions(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 500
	jobs, _ := Generate(cfg)

	dcfg := DefaultDeadlineConfig()
	dcfg.HighUrgencyFraction = 0
	out, err := AssignDeadlines(jobs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range out {
		if j.Class != LowUrgency {
			t.Fatal("fraction 0 produced a high urgency job")
		}
	}

	dcfg.HighUrgencyFraction = 1
	out, err = AssignDeadlines(jobs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range out {
		if j.Class != HighUrgency {
			t.Fatal("fraction 1 produced a low urgency job")
		}
	}
}

func TestAssignDeadlinesRatioOneCollapsesClasses(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 5000
	jobs, _ := Generate(cfg)
	dcfg := DefaultDeadlineConfig()
	dcfg.Ratio = 1
	out, err := AssignDeadlines(jobs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	var highFac, lowFac sim.Welford
	for _, j := range out {
		f := j.Deadline / j.Runtime
		if j.Class == HighUrgency {
			highFac.Add(f)
		} else {
			lowFac.Add(f)
		}
	}
	if math.Abs(highFac.Mean()-lowFac.Mean()) > 0.2 {
		t.Fatalf("ratio 1: class factor means differ (%.2f vs %.2f)", highFac.Mean(), lowFac.Mean())
	}
}

func TestAssignDeadlinesRejectsBadConfig(t *testing.T) {
	jobs := []Job{validJob()}
	cases := []DeadlineConfig{
		{HighUrgencyFraction: -0.1, MeanLowFactor: 2, Ratio: 4},
		{HighUrgencyFraction: 1.5, MeanLowFactor: 2, Ratio: 4},
		{HighUrgencyFraction: 0.2, MeanLowFactor: 0.5, Ratio: 4},
		{HighUrgencyFraction: 0.2, MeanLowFactor: 2, Ratio: 0.5},
	}
	for i, c := range cases {
		if _, err := AssignDeadlines(jobs, c); err == nil {
			t.Errorf("case %d: bad deadline config accepted", i)
		}
	}
}

func TestHigherRatioGivesLongerLowUrgencyDeadlines(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 3000
	jobs, _ := Generate(cfg)
	meanLowDeadline := func(ratio float64) float64 {
		dcfg := DefaultDeadlineConfig()
		dcfg.Ratio = ratio
		out, err := AssignDeadlines(jobs, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		var w sim.Welford
		for _, j := range out {
			if j.Class == LowUrgency {
				w.Add(j.Deadline / j.Runtime)
			}
		}
		return w.Mean()
	}
	if a, b := meanLowDeadline(2), meanLowDeadline(8); b <= a {
		t.Fatalf("ratio 8 mean factor %.2f not above ratio 2 mean %.2f", b, a)
	}
}
