package workload

import (
	"math"
	"testing"
)

func TestDiurnalIntensityBounds(t *testing.T) {
	c := DefaultDiurnalConfig()
	for h := 0.0; h < 48; h += 0.25 {
		v := c.intensity(h * 3600)
		if v < 1-c.Amplitude-1e-9 || v > 1+c.Amplitude+1e-9 {
			t.Fatalf("intensity(%gh) = %v outside [%v, %v]", h, v, 1-c.Amplitude, 1+c.Amplitude)
		}
	}
	// Peak at the configured hour.
	if v := c.intensity(c.PeakHour * 3600); math.Abs(v-(1+c.Amplitude)) > 1e-9 {
		t.Fatalf("intensity at peak = %v, want %v", v, 1+c.Amplitude)
	}
	// Trough half a period later.
	if v := c.intensity((c.PeakHour + 12) * 3600); math.Abs(v-(1-c.Amplitude)) > 1e-9 {
		t.Fatalf("intensity at trough = %v, want %v", v, 1-c.Amplitude)
	}
}

func TestDiurnalDisabledIsIdentity(t *testing.T) {
	var c DiurnalConfig
	for _, tm := range []float64{0, 1e4, 1e6} {
		if c.intensity(tm) != 1 {
			t.Fatalf("disabled diurnal intensity = %v", c.intensity(tm))
		}
	}
}

func TestDiurnalMeanIntensityIsOne(t *testing.T) {
	c := DefaultDiurnalConfig()
	var sum float64
	n := 24 * 60
	for i := 0; i < n; i++ {
		sum += c.intensity(float64(i) * 60)
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.01 {
		t.Fatalf("mean intensity over a day = %v, want 1", mean)
	}
}

func TestDiurnalGenerationConcentratesArrivals(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 6000
	cfg.MeanInterarrival = 240 // ~16 days of trace: plenty of cycles
	cfg.Diurnal = DefaultDiurnalConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket arrivals by hour of day; the peak half (peak±6h) must carry
	// clearly more than half the jobs.
	peak := cfg.Diurnal.PeakHour
	inPeak := 0
	for _, j := range jobs {
		hour := math.Mod(j.Submit/3600, 24)
		d := math.Abs(hour - peak)
		if d > 12 {
			d = 24 - d
		}
		if d <= 6 {
			inPeak++
		}
	}
	frac := float64(inPeak) / float64(len(jobs))
	if frac < 0.6 {
		t.Fatalf("peak half-day carries %.0f%% of arrivals, want > 60%%", frac*100)
	}
}

func TestDiurnalKeepsMeanInterarrival(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 8000
	cfg.Diurnal = DefaultDiurnalConfig()
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	span := jobs[len(jobs)-1].Submit - jobs[0].Submit
	mean := span / float64(len(jobs)-1)
	// The harmonic-mean correction of 1/intensity stretching inflates the
	// effective mean by 1/sqrt(1-A²) ≈ 1.4 at A=0.7; accept a broad band
	// but catch order-of-magnitude regressions.
	if mean < cfg.MeanInterarrival*0.8 || mean > cfg.MeanInterarrival*2.2 {
		t.Fatalf("diurnal mean interarrival = %.0f, base %.0f", mean, cfg.MeanInterarrival)
	}
}

func TestDiurnalValidate(t *testing.T) {
	bad := []DiurnalConfig{
		{Amplitude: -0.1},
		{Amplitude: 1.0, PeriodHours: 24},
		{Amplitude: 0.5, PeriodHours: 0},
		{Amplitude: 0.5, PeriodHours: 24, PeakHour: -2},
	}
	for i, c := range bad {
		cfg := DefaultGeneratorConfig()
		cfg.Diurnal = c
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}
