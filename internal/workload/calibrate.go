package workload

import (
	"fmt"
	"math"
	"sort"

	"clustersched/internal/swf"
)

// Calibrate fits a GeneratorConfig to a real SWF trace so the synthetic
// generator reproduces its statistics: arrival intensity and burstiness,
// runtime distribution, processor-request mix, and the estimate error
// mixture. This is how the committed SDSC SP2 defaults were derived, and
// how a user retargets the whole experiment suite at their own machine's
// trace without redistributing it.
func Calibrate(tr *swf.Trace, maxProcs int) (GeneratorConfig, error) {
	recs := tr.Records
	if len(recs) < 2 {
		return GeneratorConfig{}, fmt.Errorf("workload: calibration needs >= 2 records, got %d", len(recs))
	}
	if maxProcs <= 0 {
		info := swf.ParseInfo(&tr.Header)
		maxProcs = info.Procs()
		if maxProcs <= 0 {
			maxProcs = maxProcsIn(recs)
		}
	}
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = len(recs)
	cfg.MaxProcs = maxProcs

	// Arrival process: mean and CV of inter-arrival gaps.
	var interMean, interM2 float64
	n := 0
	prev := recs[0].Submit
	for _, r := range recs[1:] {
		gap := float64(r.Submit - prev)
		prev = r.Submit
		n++
		d := gap - interMean
		interMean += d / float64(n)
		interM2 += d * (gap - interMean)
	}
	if interMean <= 0 {
		return GeneratorConfig{}, fmt.Errorf("workload: trace has non-positive mean inter-arrival")
	}
	cfg.MeanInterarrival = interMean
	if n > 1 {
		cv := math.Sqrt(interM2/float64(n)) / interMean
		cfg.InterarrivalCV = clamp(cv, 1.0, 4.0)
	}

	// Runtime distribution: mean, CV and range over runnable records.
	var runs []float64
	for _, r := range recs {
		if r.RunTime > 0 {
			runs = append(runs, float64(r.RunTime))
		}
	}
	if len(runs) == 0 {
		return GeneratorConfig{}, fmt.Errorf("workload: trace has no positive runtimes")
	}
	var runMean float64
	for _, v := range runs {
		runMean += v
	}
	runMean /= float64(len(runs))
	var runVar float64
	for _, v := range runs {
		runVar += (v - runMean) * (v - runMean)
	}
	runVar /= float64(len(runs))
	cfg.MeanRuntime = runMean
	cfg.RuntimeCV = clamp(math.Sqrt(runVar)/runMean, 0.5, 5)
	sort.Float64s(runs)
	cfg.MinRuntime = math.Max(1, runs[0])
	cfg.MaxRuntime = runs[len(runs)-1]

	// Processor mix: weight per power-of-two bucket (requests are rounded
	// down to their bucket), plus the non-power fraction.
	maxPow := 0
	for (1 << (maxPow + 1)) <= maxProcs {
		maxPow++
	}
	weights := make([]float64, maxPow+1)
	nonPower := 0
	procsSeen := 0
	for _, r := range recs {
		p := r.Procs()
		if p <= 0 {
			continue
		}
		if p > maxProcs {
			p = maxProcs
		}
		procsSeen++
		pow := 0
		for (1 << (pow + 1)) <= p {
			pow++
		}
		weights[pow]++
		if p != 1<<pow {
			nonPower++
		}
	}
	if procsSeen == 0 {
		return GeneratorConfig{}, fmt.Errorf("workload: trace has no processor counts")
	}
	for i := range weights {
		weights[i] /= float64(procsSeen)
	}
	cfg.ProcWeights = weights
	cfg.NonPowerFraction = float64(nonPower) / float64(procsSeen)

	// Estimate error mixture over records that carry both numbers.
	est := cfg.Estimates
	var exact, under, over int
	var overRatios []float64
	var underLo, underHi float64 = 1, 0
	for _, r := range recs {
		if !r.HasEstimate() || r.RunTime <= 0 {
			continue
		}
		ratio := float64(r.ReqTime) / float64(r.RunTime)
		switch {
		case math.Abs(ratio-1) < 0.02:
			exact++
		case ratio < 1:
			under++
			underLo = math.Min(underLo, ratio)
			underHi = math.Max(underHi, ratio)
		default:
			over++
			overRatios = append(overRatios, ratio)
		}
	}
	if total := exact + under + over; total > 0 {
		est.ExactFraction = float64(exact) / float64(total)
		est.UnderFraction = float64(under) / float64(total)
		if under > 0 {
			est.UnderLo = clamp(underLo, 0.05, 0.95)
			est.UnderHi = clamp(math.Max(underHi, est.UnderLo+0.01), est.UnderLo+0.01, 0.99)
		}
		if over > 0 {
			var om float64
			for _, v := range overRatios {
				om += v
			}
			om /= float64(len(overRatios))
			est.OverFactorMean = clamp(om, 1.05, 50)
			var ov float64
			for _, v := range overRatios {
				ov += (v - om) * (v - om)
			}
			ov /= float64(len(overRatios))
			est.OverFactorCV = clamp(math.Sqrt(ov)/om, 0.2, 3)
			est.OverMax = clamp(percentile(overRatios, 0.99), est.OverMin+1, 200)
		}
	}
	cfg.Estimates = est
	if err := cfg.Validate(); err != nil {
		return GeneratorConfig{}, fmt.Errorf("workload: calibration produced invalid config: %w", err)
	}
	return cfg, nil
}

func maxProcsIn(recs []swf.Record) int {
	m := 1
	for _, r := range recs {
		if p := r.Procs(); p > m {
			m = p
		}
	}
	return m
}

// percentile returns the q-quantile of xs (sorted copy; linear
// interpolation).
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
