package workload

import (
	"math"
	"testing"

	"clustersched/internal/sim"
)

func genDefault(t *testing.T) []Job {
	t.Helper()
	jobs, err := Generate(DefaultGeneratorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

func TestGenerateCountAndOrder(t *testing.T) {
	jobs := genDefault(t)
	if len(jobs) != TraceJobs {
		t.Fatalf("len = %d, want %d", len(jobs), TraceJobs)
	}
	for i := 1; i < len(jobs); i++ {
		if jobs[i].Submit < jobs[i-1].Submit {
			t.Fatal("jobs not sorted by submit time")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := genDefault(t)
	b := genDefault(t)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("job %d differs across identical runs", i)
		}
	}
	cfg := DefaultGeneratorConfig()
	cfg.Seed = 99
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i].Runtime == c[i].Runtime {
			same++
		}
	}
	if same > len(a)/10 {
		t.Fatalf("different seeds produced %d/%d identical runtimes", same, len(a))
	}
}

func TestGenerateMatchesPaperStatistics(t *testing.T) {
	jobs := genDefault(t)
	var inter, run, procs sim.Welford
	for i, j := range jobs {
		if i > 0 {
			inter.Add(j.Submit - jobs[i-1].Submit)
		}
		run.Add(j.Runtime)
		procs.Add(float64(j.NumProc))
	}
	if m := inter.Mean(); math.Abs(m-TraceMeanInterarrival)/TraceMeanInterarrival > 0.10 {
		t.Errorf("mean interarrival = %.0f s, want within 10%% of %.0f", m, TraceMeanInterarrival)
	}
	if m := run.Mean(); math.Abs(m-TraceMeanRuntime)/TraceMeanRuntime > 0.15 {
		t.Errorf("mean runtime = %.0f s, want within 15%% of %.0f", m, TraceMeanRuntime)
	}
	if m := procs.Mean(); math.Abs(m-TraceMeanProcs)/TraceMeanProcs > 0.20 {
		t.Errorf("mean procs = %.1f, want within 20%% of %.0f", m, TraceMeanProcs)
	}
}

func TestGenerateBounds(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	jobs := genDefault(t)
	for _, j := range jobs {
		if j.Runtime < cfg.MinRuntime || j.Runtime > cfg.MaxRuntime {
			t.Fatalf("runtime %g outside [%g, %g]", j.Runtime, cfg.MinRuntime, cfg.MaxRuntime)
		}
		if j.NumProc < 1 || j.NumProc > cfg.MaxProcs {
			t.Fatalf("numproc %d outside [1, %d]", j.NumProc, cfg.MaxProcs)
		}
		if j.TraceEstimate <= 0 {
			t.Fatalf("estimate %g not positive", j.TraceEstimate)
		}
	}
}

func TestGenerateEstimateMixture(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 10000
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var exact, under, over int
	var overFactor sim.Welford
	for _, j := range jobs {
		switch {
		case j.TraceEstimate == j.Runtime:
			exact++
		case j.TraceEstimate < j.Runtime:
			under++
		default:
			over++
			overFactor.Add(j.TraceEstimate / j.Runtime)
		}
	}
	n := float64(len(jobs))
	if f := float64(exact) / n; math.Abs(f-cfg.Estimates.ExactFraction) > 0.03 {
		t.Errorf("exact fraction = %.3f, want ~%.2f", f, cfg.Estimates.ExactFraction)
	}
	if f := float64(under) / n; math.Abs(f-cfg.Estimates.UnderFraction) > 0.03 {
		t.Errorf("under fraction = %.3f, want ~%.2f", f, cfg.Estimates.UnderFraction)
	}
	// Overestimates dominate and are severe — the paper's "often over
	// estimated" observation.
	if float64(over)/n < 0.6 {
		t.Errorf("over fraction = %.3f, want > 0.6", float64(over)/n)
	}
	if m := overFactor.Mean(); m < 2 || m > 8 {
		t.Errorf("mean over-factor = %.2f, want in [2, 8]", m)
	}
}

func TestGenerateUnderestimatesAreStrict(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 5000
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.TraceEstimate < j.Runtime && j.TraceEstimate/j.Runtime < cfg.Estimates.UnderLo-1e-9 {
			t.Fatalf("underestimate factor %g below configured floor", j.TraceEstimate/j.Runtime)
		}
	}
}

func TestGenerateValidateRejectsBadConfig(t *testing.T) {
	cases := []func(*GeneratorConfig){
		func(c *GeneratorConfig) { c.Jobs = 0 },
		func(c *GeneratorConfig) { c.MeanInterarrival = 0 },
		func(c *GeneratorConfig) { c.MeanRuntime = -1 },
		func(c *GeneratorConfig) { c.MinRuntime = 100; c.MaxRuntime = 50 },
		func(c *GeneratorConfig) { c.MaxProcs = 0 },
		func(c *GeneratorConfig) { c.NonPowerFraction = 2 },
		func(c *GeneratorConfig) { c.Estimates.OverFactorMean = 0.5 },
		func(c *GeneratorConfig) { c.Estimates.ExactFraction = 0.9; c.Estimates.UnderFraction = 0.5 },
	}
	for i, mut := range cases {
		cfg := DefaultGeneratorConfig()
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: bad config accepted", i)
		}
	}
}

func TestGenerateSingleNodeCluster(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 100
	cfg.MaxProcs = 1
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.NumProc != 1 {
			t.Fatalf("numproc = %d on single-node cluster", j.NumProc)
		}
	}
}

func TestWeibullShapeForCV(t *testing.T) {
	for _, cv := range []float64{1.2, 1.8, 2.5} {
		k := weibullShapeForCV(cv)
		g1 := math.Gamma(1 + 1/k)
		g2 := math.Gamma(1 + 2/k)
		got := math.Sqrt(g2/(g1*g1) - 1)
		if math.Abs(got-cv) > 0.01 {
			t.Errorf("shape for cv=%g gives cv=%g", cv, got)
		}
	}
}

func TestGenerateInterarrivalCVLowFallsBackToExp(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 2000
	cfg.InterarrivalCV = 1.0
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inter sim.Welford
	for i := 1; i < len(jobs); i++ {
		inter.Add(jobs[i].Submit - jobs[i-1].Submit)
	}
	cv := inter.StdDev() / inter.Mean()
	if math.Abs(cv-1) > 0.15 {
		t.Fatalf("exponential interarrival CV = %.2f, want ~1", cv)
	}
}

func TestGenerateOfferedLoadIsHeavy(t *testing.T) {
	// The paper chose SDSC SP2 because its utilization is the highest of
	// the archive (83.2%); the synthetic workload must offer comparable
	// load so admission control actually matters.
	jobs := genDefault(t)
	u := Utilization(jobs, SDSCSP2Nodes)
	if u < 0.5 || u > 1.3 {
		t.Fatalf("offered utilization = %.2f, want heavy (0.5..1.3)", u)
	}
}
