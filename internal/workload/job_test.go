package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func validJob() Job {
	return Job{ID: 1, Submit: 10, Runtime: 100, TraceEstimate: 300, NumProc: 4, Deadline: 250, Class: HighUrgency}
}

func TestJobAbsDeadline(t *testing.T) {
	j := validJob()
	if got := j.AbsDeadline(); got != 260 {
		t.Fatalf("AbsDeadline = %v, want 260", got)
	}
}

func TestJobLengthMI(t *testing.T) {
	j := validJob()
	if got := j.LengthMI(168); got != 100*168 {
		t.Fatalf("LengthMI = %v", got)
	}
}

func TestEstimateAtEndpoints(t *testing.T) {
	j := validJob()
	if got := j.EstimateAt(0); got != 100 {
		t.Fatalf("EstimateAt(0) = %v, want real runtime", got)
	}
	if got := j.EstimateAt(100); got != 300 {
		t.Fatalf("EstimateAt(100) = %v, want trace estimate", got)
	}
	if got := j.EstimateAt(50); got != 200 {
		t.Fatalf("EstimateAt(50) = %v, want midpoint 200", got)
	}
}

func TestEstimateAtClampsPercent(t *testing.T) {
	j := validJob()
	if got := j.EstimateAt(-10); got != 100 {
		t.Fatalf("EstimateAt(-10) = %v", got)
	}
	if got := j.EstimateAt(500); got != 300 {
		t.Fatalf("EstimateAt(500) = %v", got)
	}
}

func TestEstimateAtUnderestimatedJob(t *testing.T) {
	j := validJob()
	j.TraceEstimate = 40 // user underestimated
	if got := j.EstimateAt(100); got != 40 {
		t.Fatalf("EstimateAt(100) = %v, want 40", got)
	}
	if got := j.EstimateAt(50); got != 70 {
		t.Fatalf("EstimateAt(50) = %v, want 70", got)
	}
}

func TestEstimateAtNeverNonPositive(t *testing.T) {
	f := func(pct uint8, est float64) bool {
		j := validJob()
		j.TraceEstimate = math.Abs(est)
		return j.EstimateAt(float64(pct%101)) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJobValidate(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Job)
	}{
		{"negative submit", func(j *Job) { j.Submit = -1 }},
		{"zero runtime", func(j *Job) { j.Runtime = 0 }},
		{"zero estimate", func(j *Job) { j.TraceEstimate = 0 }},
		{"zero numproc", func(j *Job) { j.NumProc = 0 }},
		{"zero deadline", func(j *Job) { j.Deadline = 0 }},
		{"NaN runtime", func(j *Job) { j.Runtime = math.NaN() }},
	}
	for _, tc := range cases {
		j := validJob()
		tc.mut(&j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad job", tc.name)
		}
	}
}

func TestValidateAllOrderCheck(t *testing.T) {
	a, b := validJob(), validJob()
	b.ID = 2
	b.Submit = 5 // before a
	if err := ValidateAll([]Job{a, b}); err == nil {
		t.Fatal("out-of-order submits accepted")
	}
	b.Submit = 10 // ties are fine
	if err := ValidateAll([]Job{a, b}); err != nil {
		t.Fatalf("tie rejected: %v", err)
	}
}

func TestScaleArrivals(t *testing.T) {
	jobs := []Job{
		{ID: 1, Submit: 100},
		{ID: 2, Submit: 200},
		{ID: 3, Submit: 250},
	}
	half := ScaleArrivals(jobs, 0.5)
	want := []float64{100, 150, 175}
	for i, w := range want {
		if half[i].Submit != w {
			t.Fatalf("ScaleArrivals(0.5) submits = %v,%v,%v, want %v",
				half[0].Submit, half[1].Submit, half[2].Submit, want)
		}
	}
	if jobs[1].Submit != 200 {
		t.Fatal("ScaleArrivals mutated input")
	}
	same := ScaleArrivals(jobs, 1)
	for i := range jobs {
		if same[i].Submit != jobs[i].Submit {
			t.Fatal("factor 1 must be identity")
		}
	}
	zero := ScaleArrivals(jobs, 0)
	for _, j := range zero {
		if j.Submit != 100 {
			t.Fatalf("factor 0 should collapse arrivals onto the first: %+v", zero)
		}
	}
}

func TestScaleArrivalsNegativeFactorClamped(t *testing.T) {
	jobs := []Job{{Submit: 0}, {Submit: 10}}
	out := ScaleArrivals(jobs, -3)
	if out[1].Submit != 0 {
		t.Fatalf("negative factor should clamp to 0, got %v", out[1].Submit)
	}
}

func TestScaleArrivalsPreservesGapsProperty(t *testing.T) {
	f := func(seed uint64, factPct uint8) bool {
		cfg := DefaultGeneratorConfig()
		cfg.Jobs = 50
		cfg.Seed = seed
		jobs, err := Generate(cfg)
		if err != nil {
			return false
		}
		factor := float64(factPct%20)/10 + 0.1
		out := ScaleArrivals(jobs, factor)
		for i := 1; i < len(jobs); i++ {
			wantGap := (jobs[i].Submit - jobs[i-1].Submit) * factor
			gotGap := out[i].Submit - out[i-1].Submit
			if math.Abs(gotGap-wantGap) > 1e-6*(1+wantGap) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if HighUrgency.String() != "high-urgency" || LowUrgency.String() != "low-urgency" {
		t.Fatal("Class.String wrong")
	}
	if Class(9).String() == "" {
		t.Fatal("unknown class should still print")
	}
}
