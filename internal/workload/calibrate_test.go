package workload

import (
	"math"
	"testing"

	"clustersched/internal/swf"
)

// TestCalibrateRoundTrip is the acid test: generate a synthetic trace,
// calibrate a config from its SWF form, regenerate, and check the second
// generation reproduces the first's statistics.
func TestCalibrateRoundTrip(t *testing.T) {
	orig := DefaultGeneratorConfig()
	orig.Jobs = 4000
	jobs, err := Generate(orig)
	if err != nil {
		t.Fatal(err)
	}
	tr := ToSWF(jobs, orig.MaxProcs)
	cfg, err := Calibrate(tr, 0) // MaxNodes comes from the header
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Jobs != orig.Jobs {
		t.Fatalf("Jobs = %d", cfg.Jobs)
	}
	if cfg.MaxProcs != orig.MaxProcs {
		t.Fatalf("MaxProcs = %d, want %d (from header)", cfg.MaxProcs, orig.MaxProcs)
	}
	if rel := math.Abs(cfg.MeanInterarrival-orig.MeanInterarrival) / orig.MeanInterarrival; rel > 0.1 {
		t.Errorf("MeanInterarrival = %.0f, want ~%.0f", cfg.MeanInterarrival, orig.MeanInterarrival)
	}
	if rel := math.Abs(cfg.MeanRuntime-orig.MeanRuntime) / orig.MeanRuntime; rel > 0.15 {
		t.Errorf("MeanRuntime = %.0f, want ~%.0f", cfg.MeanRuntime, orig.MeanRuntime)
	}
	// Estimate mixture should land near the original fractions.
	if d := math.Abs(cfg.Estimates.ExactFraction - orig.Estimates.ExactFraction); d > 0.04 {
		t.Errorf("ExactFraction = %.3f, want ~%.2f", cfg.Estimates.ExactFraction, orig.Estimates.ExactFraction)
	}
	if d := math.Abs(cfg.Estimates.UnderFraction - orig.Estimates.UnderFraction); d > 0.04 {
		t.Errorf("UnderFraction = %.3f, want ~%.2f", cfg.Estimates.UnderFraction, orig.Estimates.UnderFraction)
	}
	if cfg.Estimates.OverFactorMean < 2 || cfg.Estimates.OverFactorMean > 8 {
		t.Errorf("OverFactorMean = %.2f", cfg.Estimates.OverFactorMean)
	}
	// The fitted config must itself generate a workload with matching
	// first moments.
	jobs2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var m1, m2 float64
	for _, j := range jobs {
		m1 += j.Runtime
	}
	for _, j := range jobs2 {
		m2 += j.Runtime
	}
	m1 /= float64(len(jobs))
	m2 /= float64(len(jobs2))
	if rel := math.Abs(m1-m2) / m1; rel > 0.2 {
		t.Errorf("regenerated mean runtime %.0f vs original %.0f", m2, m1)
	}
}

func TestCalibrateProcMix(t *testing.T) {
	// A trace of pure 4-processor jobs must put all bucket weight on 4.
	tr := &swf.Trace{}
	for i := 0; i < 100; i++ {
		tr.Records = append(tr.Records, swf.Record{
			JobNumber: i + 1, Submit: int64(i * 100), RunTime: 500,
			AllocProcs: 4, ReqTime: 1000,
		})
	}
	cfg, err := Calibrate(tr, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Bucket index 2 is 4 processors.
	if cfg.ProcWeights[2] != 1 {
		t.Fatalf("ProcWeights = %v, want all mass on 4", cfg.ProcWeights)
	}
	if cfg.NonPowerFraction != 0 {
		t.Fatalf("NonPowerFraction = %v", cfg.NonPowerFraction)
	}
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if j.NumProc != 4 {
			t.Fatalf("generated NumProc = %d, want 4", j.NumProc)
		}
	}
}

func TestCalibrateRejectsDegenerateTraces(t *testing.T) {
	if _, err := Calibrate(&swf.Trace{}, 8); err == nil {
		t.Error("empty trace accepted")
	}
	one := &swf.Trace{Records: []swf.Record{{JobNumber: 1, RunTime: 10, AllocProcs: 1}}}
	if _, err := Calibrate(one, 8); err == nil {
		t.Error("single-record trace accepted")
	}
	zeroRuns := &swf.Trace{Records: []swf.Record{
		{JobNumber: 1, Submit: 0, RunTime: 0, AllocProcs: 1},
		{JobNumber: 2, Submit: 10, RunTime: 0, AllocProcs: 1},
	}}
	if _, err := Calibrate(zeroRuns, 8); err == nil {
		t.Error("no-runtime trace accepted")
	}
	simultaneous := &swf.Trace{Records: []swf.Record{
		{JobNumber: 1, Submit: 5, RunTime: 10, AllocProcs: 1},
		{JobNumber: 2, Submit: 5, RunTime: 10, AllocProcs: 1},
	}}
	if _, err := Calibrate(simultaneous, 8); err == nil {
		t.Error("zero mean inter-arrival accepted")
	}
}

func TestCalibrateMaxProcsFallbacks(t *testing.T) {
	tr := &swf.Trace{Records: []swf.Record{
		{JobNumber: 1, Submit: 0, RunTime: 100, AllocProcs: 3, ReqTime: 200},
		{JobNumber: 2, Submit: 50, RunTime: 100, AllocProcs: 7, ReqTime: 200},
	}}
	// No header, no explicit max: use the largest observed request.
	cfg, err := Calibrate(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MaxProcs != 7 {
		t.Fatalf("MaxProcs = %d, want 7 (largest seen)", cfg.MaxProcs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if p := percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := percentile(xs, 1); p != 4 {
		t.Fatalf("p100 = %v", p)
	}
	if p := percentile(xs, 0.5); math.Abs(p-2.5) > 1e-9 {
		t.Fatalf("p50 = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
	// Input must not be mutated (sorted copy).
	if xs[0] != 4 {
		t.Fatal("percentile mutated its input")
	}
}
