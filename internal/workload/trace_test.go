package workload

import (
	"bytes"
	"math"
	"testing"

	"clustersched/internal/swf"
)

func TestToFromSWFRoundTrip(t *testing.T) {
	cfg := DefaultGeneratorConfig()
	cfg.Jobs = 200
	jobs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := ToSWF(jobs, SDSCSP2Nodes)
	var buf bytes.Buffer
	if err := swf.Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	tr2, err := swf.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromSWF(tr2, SDSCSP2Nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("round trip kept %d of %d jobs", len(back), len(jobs))
	}
	for i := range jobs {
		if back[i].NumProc != jobs[i].NumProc {
			t.Fatalf("job %d numproc changed", i)
		}
		if math.Abs(back[i].Submit-jobs[i].Submit) > 1 {
			t.Fatalf("job %d submit drifted by more than rounding", i)
		}
		if math.Abs(back[i].Runtime-jobs[i].Runtime) > 1 {
			t.Fatalf("job %d runtime drifted by more than rounding", i)
		}
		if back[i].TraceEstimate < jobs[i].TraceEstimate-1 {
			t.Fatalf("job %d estimate shrank (must round up)", i)
		}
	}
}

func TestFromSWFSkipsUnrunnable(t *testing.T) {
	tr := &swf.Trace{Records: []swf.Record{
		{JobNumber: 1, Submit: 0, RunTime: 100, AllocProcs: 4, ReqTime: 200},
		{JobNumber: 2, Submit: 5, RunTime: 0, AllocProcs: 4, ReqTime: 200},
		{JobNumber: 3, Submit: 9, RunTime: 50, AllocProcs: 0, ReqProcs: 0},
	}}
	jobs, err := FromSWF(tr, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != 1 {
		t.Fatalf("FromSWF kept %+v, want only job 1", jobs)
	}
}

func TestFromSWFEstimateFallback(t *testing.T) {
	tr := &swf.Trace{Records: []swf.Record{
		{JobNumber: 1, Submit: 0, RunTime: 100, AllocProcs: 2, ReqTime: swf.Missing},
	}}
	jobs, err := FromSWF(tr, 128)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].TraceEstimate != 100 {
		t.Fatalf("estimate fallback = %g, want runtime 100", jobs[0].TraceEstimate)
	}
}

func TestFromSWFCapsProcs(t *testing.T) {
	tr := &swf.Trace{Records: []swf.Record{
		{JobNumber: 1, Submit: 0, RunTime: 100, AllocProcs: 512, ReqTime: 200},
	}}
	jobs, err := FromSWF(tr, 128)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].NumProc != 128 {
		t.Fatalf("NumProc = %d, want capped 128", jobs[0].NumProc)
	}
}

func TestFromSWFRejectsBadMaxProcs(t *testing.T) {
	if _, err := FromSWF(&swf.Trace{}, 0); err == nil {
		t.Fatal("maxProcs 0 accepted")
	}
}

func TestUtilization(t *testing.T) {
	jobs := []Job{
		{Submit: 0, Runtime: 100, NumProc: 2},
		{Submit: 100, Runtime: 100, NumProc: 2},
	}
	// demand = 400 proc-s over a 100 s span on 4 nodes = 1.0
	if got := Utilization(jobs, 4); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("Utilization = %v, want 1.0", got)
	}
	if got := Utilization(nil, 4); got != 0 {
		t.Fatalf("empty Utilization = %v", got)
	}
	if got := Utilization(jobs, 0); got != 0 {
		t.Fatalf("zero-node Utilization = %v", got)
	}
	one := []Job{{Submit: 5, Runtime: 10, NumProc: 1}}
	if got := Utilization(one, 4); !math.IsInf(got, 1) {
		t.Fatalf("zero-span Utilization = %v, want +Inf", got)
	}
}

func TestToSWFHeader(t *testing.T) {
	tr := ToSWF(nil, 64)
	if v, ok := tr.Header.Get("MaxNodes"); !ok || v != "64" {
		t.Fatalf("MaxNodes header = %q, %v", v, ok)
	}
}
