package analysis

import (
	"fmt"
	"io"

	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

// Pricing is a simple SLA economy in the spirit of the utility-driven
// cluster work the paper's §2 cites (Irwin et al., Popovici & Wilkes,
// LibraSLA): a job pays proportionally to its resource demand, scaled up
// for urgency; a deadline miss refunds the payment and costs a penalty
// that grows with the delay; a rejection just forgoes revenue.
type Pricing struct {
	// PricePerProcHour is the base revenue for one processor-hour of
	// delivered work.
	PricePerProcHour float64
	// UrgencyPremium multiplies the price of high-urgency jobs (tight
	// deadlines cost more).
	UrgencyPremium float64
	// PenaltyPerProcHour accrues on a missed job per processor-hour of
	// delay beyond the deadline, capped at PenaltyCapFactor × price.
	PenaltyPerProcHour float64
	PenaltyCapFactor   float64
}

// DefaultPricing returns a reasonable SLA economy: urgency doubles price,
// delay penalties accrue at the base rate and cap at twice the job's
// price.
func DefaultPricing() Pricing {
	return Pricing{
		PricePerProcHour:   1,
		UrgencyPremium:     2,
		PenaltyPerProcHour: 1,
		PenaltyCapFactor:   2,
	}
}

// Validate reports the first pricing error.
func (p Pricing) Validate() error {
	switch {
	case p.PricePerProcHour <= 0:
		return fmt.Errorf("analysis: PricePerProcHour = %g, want > 0", p.PricePerProcHour)
	case p.UrgencyPremium < 1:
		return fmt.Errorf("analysis: UrgencyPremium = %g, want >= 1", p.UrgencyPremium)
	case p.PenaltyPerProcHour < 0:
		return fmt.Errorf("analysis: PenaltyPerProcHour = %g, want >= 0", p.PenaltyPerProcHour)
	case p.PenaltyCapFactor < 0:
		return fmt.Errorf("analysis: PenaltyCapFactor = %g, want >= 0", p.PenaltyCapFactor)
	}
	return nil
}

// price returns what the job pays when fulfilled.
func (p Pricing) price(j workload.Job) float64 {
	procHours := j.Runtime / 3600 * float64(j.NumProc)
	price := procHours * p.PricePerProcHour
	if j.Class == workload.HighUrgency {
		price *= p.UrgencyPremium
	}
	return price
}

// penalty returns the compensation owed for a missed job with the given
// delay (eq. 3 of the paper).
func (p Pricing) penalty(j workload.Job, delay float64) float64 {
	pen := delay / 3600 * float64(j.NumProc) * p.PenaltyPerProcHour
	if cap := p.PenaltyCapFactor * p.price(j); pen > cap {
		pen = cap
	}
	return pen
}

// Economy is the provider's ledger for one simulation run.
type Economy struct {
	Revenue          float64 // payments from deadline-fulfilled jobs
	Penalties        float64 // compensation for deadline-missed jobs
	Profit           float64 // Revenue − Penalties
	ForgoneRevenue   float64 // price of rejected jobs (opportunity cost)
	FulfilledProcHrs float64 // delivered processor-hours that were paid for
}

// Economics prices every outcome of a run under the given SLA economy.
func Economics(rec *metrics.Recorder, jobs []workload.Job, pricing Pricing) (Economy, error) {
	if err := pricing.Validate(); err != nil {
		return Economy{}, err
	}
	byID := make(map[int]workload.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	var eco Economy
	for _, r := range rec.Results() {
		j, ok := byID[r.JobID]
		if !ok {
			continue
		}
		switch r.Outcome {
		case metrics.Met:
			eco.Revenue += pricing.price(j)
			eco.FulfilledProcHrs += j.Runtime / 3600 * float64(j.NumProc)
		case metrics.Missed:
			eco.Penalties += pricing.penalty(j, r.Delay)
		case metrics.Rejected:
			eco.ForgoneRevenue += pricing.price(j)
		}
	}
	eco.Profit = eco.Revenue - eco.Penalties
	return eco, nil
}

// WriteEconomy renders the ledger.
func WriteEconomy(w io.Writer, eco Economy) error {
	_, err := fmt.Fprintf(w,
		"revenue            %10.1f\npenalties          %10.1f\nprofit             %10.1f\nforgone revenue    %10.1f\npaid proc-hours    %10.1f\n",
		eco.Revenue, eco.Penalties, eco.Profit, eco.ForgoneRevenue, eco.FulfilledProcHrs)
	return err
}
