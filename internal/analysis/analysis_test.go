package analysis

import (
	"math"
	"strings"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func wjob(id int, submit, runtime, deadline float64, class workload.Class, user int) workload.Job {
	return workload.Job{
		ID: id, Submit: submit, Runtime: runtime, TraceEstimate: runtime,
		NumProc: 1, Deadline: deadline, Class: class, UserID: user,
	}
}

func buildSample(t *testing.T) (*metrics.Recorder, []workload.Job) {
	t.Helper()
	rec := metrics.NewRecorder()
	jobs := []workload.Job{
		wjob(1, 0, 100, 200, workload.HighUrgency, 1),
		wjob(2, 0, 100, 150, workload.LowUrgency, 1),
		wjob(3, 0, 5, 100, workload.LowUrgency, 2), // short: bounded slowdown kicks in
		wjob(4, 0, 100, 300, workload.HighUrgency, 2),
	}
	for _, j := range jobs {
		rec.Submitted(j)
	}
	rec.Complete(jobs[0], 150, 100) // met, slowdown 1.5
	rec.Complete(jobs[1], 250, 100) // missed, delay 100
	rec.Complete(jobs[2], 50, 5)    // met, slowdown 10, bounded 5
	rec.Reject(jobs[3], "only 1 of 5 required nodes have zero risk")
	return rec, jobs
}

func TestBuildReportBasics(t *testing.T) {
	rec, jobs := buildSample(t)
	rep := Build(rec, jobs)
	if rep.Summary.Met != 2 || rep.Summary.Missed != 1 || rep.Summary.Rejected != 1 {
		t.Fatalf("summary = %+v", rep.Summary)
	}
	if math.Abs(rep.SlowdownMean-5.75) > 1e-9 { // (1.5+10)/2
		t.Fatalf("SlowdownMean = %v", rep.SlowdownMean)
	}
	if rep.SlowdownMax != 10 {
		t.Fatalf("SlowdownMax = %v", rep.SlowdownMax)
	}
	// Bounded: job1 response 150 / max(100,10) = 1.5; job3 response 50 /
	// max(5,10) = 5.
	if math.Abs(rep.BoundedSlowdownMean-3.25) > 1e-9 {
		t.Fatalf("BoundedSlowdownMean = %v", rep.BoundedSlowdownMean)
	}
	if rep.DelayMean != 100 {
		t.Fatalf("DelayMean = %v", rep.DelayMean)
	}
	if len(rep.ByClass) != 2 {
		t.Fatalf("ByClass = %+v", rep.ByClass)
	}
	high := rep.ByClass[0]
	if high.Class != workload.HighUrgency || high.Submitted != 2 || high.Met != 1 || high.Rejected != 1 {
		t.Fatalf("high breakdown = %+v", high)
	}
	if math.Abs(high.PctFulfilled-50) > 1e-9 {
		t.Fatalf("high PctFulfilled = %v", high.PctFulfilled)
	}
	if len(rep.RejectionReasons) != 1 || rep.RejectionReasons[0].Reason != "no zero-risk nodes" {
		t.Fatalf("reasons = %+v", rep.RejectionReasons)
	}
}

func TestBuildWithoutJobsSkipsBounded(t *testing.T) {
	rec, _ := buildSample(t)
	rep := Build(rec, nil)
	if rep.BoundedSlowdownMean != 0 {
		t.Fatalf("BoundedSlowdownMean = %v without job info", rep.BoundedSlowdownMean)
	}
	if rep.SlowdownMean == 0 {
		t.Fatal("plain slowdown should still be computed")
	}
}

func TestNormalizeReasonBuckets(t *testing.T) {
	cases := map[string]string{
		"only 3 of 5 required nodes can hold the share": "insufficient share capacity",
		"only 0 of 2 required nodes have zero risk":     "no zero-risk nodes",
		"needs 500 processors, cluster has 128":         "oversized processor request",
		"deadline expired while queued":                 "deadline expired while queued",
		"":                                              "(unspecified)",
	}
	for in, want := range cases {
		if got := normalizeReason(in); got != want {
			t.Errorf("normalizeReason(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJainFairness(t *testing.T) {
	rec := metrics.NewRecorder()
	jobs := []workload.Job{
		wjob(1, 0, 10, 100, workload.LowUrgency, 1),
		wjob(2, 0, 10, 100, workload.LowUrgency, 1),
		wjob(3, 0, 10, 100, workload.LowUrgency, 2),
		wjob(4, 0, 10, 100, workload.LowUrgency, 2),
	}
	for _, j := range jobs {
		rec.Submitted(j)
	}
	// Perfectly fair: both users get half their jobs met.
	rec.Complete(jobs[0], 50, 10)
	rec.Reject(jobs[1], "x")
	rec.Complete(jobs[2], 50, 10)
	rec.Reject(jobs[3], "x")
	if f := JainFairness(rec, jobs); math.Abs(f-1) > 1e-9 {
		t.Fatalf("fair split index = %v, want 1", f)
	}

	// Maximally unfair: user 1 gets everything, user 2 nothing.
	rec2 := metrics.NewRecorder()
	for _, j := range jobs {
		rec2.Submitted(j)
	}
	rec2.Complete(jobs[0], 50, 10)
	rec2.Complete(jobs[1], 50, 10)
	rec2.Reject(jobs[2], "x")
	rec2.Reject(jobs[3], "x")
	if f := JainFairness(rec2, jobs); math.Abs(f-0.5) > 1e-9 {
		t.Fatalf("unfair split index = %v, want 0.5 (1/n with n=2)", f)
	}
}

func TestJainFairnessEmpty(t *testing.T) {
	if f := JainFairness(metrics.NewRecorder(), nil); f != 0 {
		t.Fatalf("empty fairness = %v", f)
	}
}

func TestWriteReportRenders(t *testing.T) {
	rec, jobs := buildSample(t)
	rep := Build(rec, jobs)
	var sb strings.Builder
	if err := WriteReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"fulfilled", "slowdown", "high-urgency", "no zero-risk nodes", "miss delay"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestReportOnRealSimulation(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 300
	cfg.MaxProcs = 8
	cfg.Users = workload.DefaultUserModelConfig()
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.NewTimeShared(8, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := core.NewLibraRisk(c, rec)
	e := sim.NewEngine()
	if err := core.RunSimulation(e, p, rec, jobs, 100); err != nil {
		t.Fatal(err)
	}
	rep := Build(rec, jobs)
	if rep.Summary.Submitted != 300 {
		t.Fatalf("submitted = %d", rep.Summary.Submitted)
	}
	if rep.SlowdownP95 < rep.SlowdownP50 {
		t.Fatalf("p95 %v < p50 %v", rep.SlowdownP95, rep.SlowdownP50)
	}
	if rep.BoundedSlowdownMean > rep.SlowdownMean+1e-9 {
		t.Fatalf("bounded mean %v exceeds raw mean %v", rep.BoundedSlowdownMean, rep.SlowdownMean)
	}
	f := JainFairness(rec, jobs)
	if f <= 0 || f > 1+1e-9 {
		t.Fatalf("fairness index = %v", f)
	}
}
