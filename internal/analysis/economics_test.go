package analysis

import (
	"math"
	"strings"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func TestEconomicsLedger(t *testing.T) {
	rec := metrics.NewRecorder()
	// 2 proc-hours of high urgency work (price 2×2=4), 1 proc-hour of low
	// urgency (price 1), and a rejected 3 proc-hour low job (forgone 3).
	met := wjob(1, 0, 3600, 7200, workload.HighUrgency, 1)
	met.NumProc = 2
	missed := wjob(2, 0, 3600, 3600, workload.LowUrgency, 1)
	rejected := wjob(3, 0, 3600, 7200, workload.LowUrgency, 1)
	rejected.NumProc = 3
	jobs := []workload.Job{met, missed, rejected}
	for _, j := range jobs {
		rec.Submitted(j)
	}
	rec.Complete(met, 5000, 3600)         // met: finish 5000 < 7200
	rec.Complete(missed, 3600+1800, 3600) // response 5400, deadline 3600: delay 1800 s
	rec.Reject(rejected, "x")

	eco, err := Economics(rec, jobs, DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eco.Revenue-4) > 1e-9 {
		t.Fatalf("Revenue = %v, want 4", eco.Revenue)
	}
	// Penalty: 0.5 h delay × 1 proc × 1 = 0.5, under the 2× price cap (2).
	if math.Abs(eco.Penalties-0.5) > 1e-9 {
		t.Fatalf("Penalties = %v, want 0.5", eco.Penalties)
	}
	if math.Abs(eco.Profit-3.5) > 1e-9 {
		t.Fatalf("Profit = %v", eco.Profit)
	}
	if math.Abs(eco.ForgoneRevenue-3) > 1e-9 {
		t.Fatalf("ForgoneRevenue = %v, want 3", eco.ForgoneRevenue)
	}
	if math.Abs(eco.FulfilledProcHrs-2) > 1e-9 {
		t.Fatalf("FulfilledProcHrs = %v, want 2", eco.FulfilledProcHrs)
	}
}

func TestEconomicsPenaltyCap(t *testing.T) {
	rec := metrics.NewRecorder()
	j := wjob(1, 0, 3600, 3600, workload.LowUrgency, 1) // price 1, cap 2
	rec.Submitted(j)
	rec.Complete(j, 3600+3600+1e6, 3600) // enormous delay
	eco, err := Economics(rec, []workload.Job{j}, DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eco.Penalties-2) > 1e-9 {
		t.Fatalf("Penalties = %v, want capped 2", eco.Penalties)
	}
}

func TestEconomicsValidation(t *testing.T) {
	bad := []Pricing{
		{PricePerProcHour: 0, UrgencyPremium: 2},
		{PricePerProcHour: 1, UrgencyPremium: 0.5},
		{PricePerProcHour: 1, UrgencyPremium: 1, PenaltyPerProcHour: -1},
		{PricePerProcHour: 1, UrgencyPremium: 1, PenaltyCapFactor: -1},
	}
	for i, p := range bad {
		if _, err := Economics(metrics.NewRecorder(), nil, p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestWriteEconomy(t *testing.T) {
	var sb strings.Builder
	if err := WriteEconomy(&sb, Economy{Revenue: 10, Penalties: 2, Profit: 8}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "profit") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// TestLibraRiskEarnsMoreThanLibraUnderTraceEstimates translates the
// paper's headline into provider money: under inaccurate estimates,
// risk-aware admission earns more and pays fewer penalties.
func TestLibraRiskEarnsMoreThanLibraUnderTraceEstimates(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 400
	cfg.MaxProcs = 16
	cfg.MeanInterarrival = 1500
	cfg.MeanRuntime = 5000
	cfg.MaxRuntime = 20000
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(mk func(*cluster.TimeShared, *metrics.Recorder) core.Policy) Economy {
		c, err := cluster.NewTimeShared(16, 168, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder()
		p := mk(c, rec)
		e := sim.NewEngine()
		if err := core.RunSimulation(e, p, rec, jobs, 100); err != nil {
			t.Fatal(err)
		}
		eco, err := Economics(rec, jobs, DefaultPricing())
		if err != nil {
			t.Fatal(err)
		}
		return eco
	}
	libra := run(func(c *cluster.TimeShared, rec *metrics.Recorder) core.Policy { return core.NewLibra(c, rec) })
	risk := run(func(c *cluster.TimeShared, rec *metrics.Recorder) core.Policy { return core.NewLibraRisk(c, rec) })
	if risk.Profit <= libra.Profit {
		t.Fatalf("LibraRisk profit %.1f should exceed Libra %.1f", risk.Profit, libra.Profit)
	}
}
