package analysis

import (
	"math"
	"strings"
	"testing"

	"clustersched/internal/metrics"
	"clustersched/internal/workload"
)

func TestTimelineSingleJobOccupancy(t *testing.T) {
	rec := metrics.NewRecorder()
	j := wjob(1, 0, 100, 1000, workload.LowUrgency, 1)
	j.NumProc = 4
	rec.Submitted(j)
	rec.Complete(j, 100, 100) // runs [0, 100] holding 4 procs
	tl := Timeline(rec.Results(), 4)
	if len(tl) != 4 {
		t.Fatalf("buckets = %d", len(tl))
	}
	// Every bucket fully covered: 4 procs in service throughout.
	for i, b := range tl {
		if math.Abs(b.MeanProcs-4) > 1e-9 {
			t.Fatalf("bucket %d MeanProcs = %v, want 4", i, b.MeanProcs)
		}
		if math.Abs(b.MeanJobs-1) > 1e-9 {
			t.Fatalf("bucket %d MeanJobs = %v, want 1", i, b.MeanJobs)
		}
	}
	if tl[0].Arrivals != 1 {
		t.Fatalf("arrivals = %d", tl[0].Arrivals)
	}
	if tl[3].Completions != 1 {
		t.Fatalf("completions in last bucket = %d", tl[3].Completions)
	}
}

func TestTimelinePartialOverlap(t *testing.T) {
	rec := metrics.NewRecorder()
	j := wjob(1, 0, 50, 1000, workload.LowUrgency, 1)
	rec.Submitted(j)
	j2 := wjob(2, 100, 1, 1000, workload.LowUrgency, 1)
	rec.Submitted(j2)
	rec.Complete(j, 50, 50)  // occupies [0, 50]
	rec.Complete(j2, 100, 1) // instant-ish at 100 (sets the horizon)
	tl := Timeline(rec.Results(), 2)
	// Bucket 0 spans [0,50): fully occupied by job 1 → MeanJobs 1.
	if math.Abs(tl[0].MeanJobs-1) > 0.05 {
		t.Fatalf("bucket 0 MeanJobs = %v", tl[0].MeanJobs)
	}
	// Bucket 1 spans [50,100): nearly idle.
	if tl[1].MeanJobs > 0.1 {
		t.Fatalf("bucket 1 MeanJobs = %v", tl[1].MeanJobs)
	}
}

func TestTimelineEmptyAndDegenerate(t *testing.T) {
	if tl := Timeline(nil, 5); tl != nil {
		t.Fatalf("empty results produced %v", tl)
	}
	if tl := Timeline([]metrics.JobResult{{Submit: 5}}, 0); tl != nil {
		t.Fatal("zero buckets produced a timeline")
	}
	// Only rejected jobs: no completion horizon.
	rec := metrics.NewRecorder()
	j := wjob(1, 0, 10, 100, workload.LowUrgency, 1)
	rec.Submitted(j)
	rec.Reject(j, "x")
	if tl := Timeline(rec.Results(), 3); tl != nil {
		t.Fatalf("rejected-only results produced %v", tl)
	}
}

func TestWriteTimelineRenders(t *testing.T) {
	rec := metrics.NewRecorder()
	j := wjob(1, 0, 7200, 1e6, workload.LowUrgency, 1)
	j.NumProc = 8
	rec.Submitted(j)
	rec.Complete(j, 7200, 7200)
	tl := Timeline(rec.Results(), 3)
	var sb strings.Builder
	if err := WriteTimeline(&sb, tl, 16); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "slice footprint") || !strings.Contains(out, "#") {
		t.Fatalf("timeline output:\n%s", out)
	}
	// Half the 16 processors are busy: the bar should be half filled.
	if !strings.Contains(out, "####################....................") {
		t.Fatalf("expected half-filled bar:\n%s", out)
	}
	var empty strings.Builder
	if err := WriteTimeline(&empty, nil, 16); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no timeline") {
		t.Fatal("empty timeline message missing")
	}
}
