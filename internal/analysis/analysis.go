// Package analysis post-processes per-job simulation results into the
// derived views an evaluation report needs beyond the paper's two headline
// numbers: class breakdowns, distribution statistics, bounded slowdown,
// per-user fairness, rejection-reason tallies and a textual utilization
// timeline.
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// BoundedSlowdownThreshold is the standard 10-second interactivity
// threshold for the bounded-slowdown metric (Feitelson et al.), which
// stops trivially short jobs from dominating mean slowdown.
const BoundedSlowdownThreshold = 10.0

// ClassBreakdown summarizes outcomes for one urgency class.
type ClassBreakdown struct {
	Class        workload.Class
	Submitted    int
	Met          int
	Missed       int
	Rejected     int
	PctFulfilled float64
}

// Report is the full derived view of one simulation run.
type Report struct {
	Summary metrics.Summary

	ByClass []ClassBreakdown

	// Distribution statistics over deadline-fulfilled jobs.
	SlowdownMean        float64
	SlowdownP50         float64
	SlowdownP95         float64
	SlowdownMax         float64
	ResponseMean        float64
	ResponseP95         float64
	BoundedSlowdownMean float64

	// Delay distribution over deadline-missed jobs.
	DelayMean float64
	DelayP95  float64

	// RejectionReasons tallies rejection causes, most common first.
	RejectionReasons []ReasonCount
}

// ReasonCount pairs a rejection reason with its occurrence count.
type ReasonCount struct {
	Reason string
	Count  int
}

// Build derives a Report from a recorder's results. The jobs slice (the
// submitted workload) supplies runtimes for bounded slowdown; pass nil to
// skip metrics that need it.
func Build(rec *metrics.Recorder, jobs []workload.Job) Report {
	byID := make(map[int]workload.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	var rep Report
	rep.Summary = rec.Summarize()

	classes := map[workload.Class]*ClassBreakdown{}
	var slow, resp, bounded, delay sim.Sample
	reasons := map[string]int{}
	for _, r := range rec.Results() {
		cb := classes[r.Class]
		if cb == nil {
			cb = &ClassBreakdown{Class: r.Class}
			classes[r.Class] = cb
		}
		cb.Submitted++
		switch r.Outcome {
		case metrics.Met:
			cb.Met++
			slow.Add(r.Slowdown)
			resp.Add(r.Response)
			if j, ok := byID[r.JobID]; ok {
				denom := math.Max(j.Runtime, BoundedSlowdownThreshold)
				bounded.Add(math.Max(1, r.Response/denom))
			}
		case metrics.Missed:
			cb.Missed++
			delay.Add(r.Delay)
		case metrics.Rejected:
			cb.Rejected++
			reasons[normalizeReason(r.Reason)]++
		}
	}
	for _, cb := range classes {
		if cb.Submitted > 0 {
			cb.PctFulfilled = 100 * float64(cb.Met) / float64(cb.Submitted)
		}
		rep.ByClass = append(rep.ByClass, *cb)
	}
	sort.Slice(rep.ByClass, func(a, b int) bool { return rep.ByClass[a].Class < rep.ByClass[b].Class })

	rep.SlowdownMean = slow.Mean()
	rep.SlowdownP50 = slow.Quantile(0.5)
	rep.SlowdownP95 = slow.Quantile(0.95)
	rep.SlowdownMax = slow.Quantile(1)
	rep.ResponseMean = resp.Mean()
	rep.ResponseP95 = resp.Quantile(0.95)
	rep.BoundedSlowdownMean = bounded.Mean()
	rep.DelayMean = delay.Mean()
	rep.DelayP95 = delay.Quantile(0.95)

	for reason, n := range reasons {
		rep.RejectionReasons = append(rep.RejectionReasons, ReasonCount{Reason: reason, Count: n})
	}
	sort.Slice(rep.RejectionReasons, func(a, b int) bool {
		if rep.RejectionReasons[a].Count != rep.RejectionReasons[b].Count {
			return rep.RejectionReasons[a].Count > rep.RejectionReasons[b].Count
		}
		return rep.RejectionReasons[a].Reason < rep.RejectionReasons[b].Reason
	})
	return rep
}

// normalizeReason collapses parameterized reasons ("only 3 of 5 required
// nodes...") into stable buckets for tallying.
func normalizeReason(r string) string {
	switch {
	case r == "":
		return "(unspecified)"
	case strings.Contains(r, "required nodes can hold the share"):
		return "insufficient share capacity"
	case strings.Contains(r, "required nodes have zero risk"):
		return "no zero-risk nodes"
	case strings.Contains(r, "cluster has"):
		return "oversized processor request"
	default:
		return r
	}
}

// JainFairness computes Jain's fairness index over per-user fulfilled-job
// ratios: 1 means every user gets the same fraction of their jobs
// fulfilled, 1/n means one user gets everything. Users with no submitted
// jobs are skipped; returns 0 when no user submitted anything.
func JainFairness(rec *metrics.Recorder, jobs []workload.Job) float64 {
	userOf := make(map[int]int, len(jobs))
	for _, j := range jobs {
		userOf[j.ID] = j.UserID
	}
	submitted := map[int]int{}
	met := map[int]int{}
	for _, r := range rec.Results() {
		u := userOf[r.JobID]
		submitted[u]++
		if r.Outcome == metrics.Met {
			met[u]++
		}
	}
	var sum, sumSq float64
	n := 0
	for u, s := range submitted {
		if s == 0 {
			continue
		}
		x := float64(met[u]) / float64(s)
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// WriteReport renders the report as aligned text.
func WriteReport(w io.Writer, rep Report) error {
	s := rep.Summary
	var b strings.Builder
	fmt.Fprintf(&b, "outcomes      submitted %d | met %d | missed %d | rejected %d | unfinished %d\n",
		s.Submitted, s.Met, s.Missed, s.Rejected, s.Unfinished)
	fmt.Fprintf(&b, "fulfilled     %.2f %%   acceptance %.2f\n", s.PctFulfilled, s.AcceptanceRate)
	fmt.Fprintf(&b, "slowdown      mean %.2f | p50 %.2f | p95 %.2f | max %.2f | bounded mean %.2f\n",
		rep.SlowdownMean, rep.SlowdownP50, rep.SlowdownP95, rep.SlowdownMax, rep.BoundedSlowdownMean)
	fmt.Fprintf(&b, "response      mean %.0f s | p95 %.0f s\n", rep.ResponseMean, rep.ResponseP95)
	if s.Missed > 0 {
		fmt.Fprintf(&b, "miss delay    mean %.0f s | p95 %.0f s\n", rep.DelayMean, rep.DelayP95)
	}
	for _, cb := range rep.ByClass {
		fmt.Fprintf(&b, "class %-13s submitted %4d | met %4d | missed %4d | rejected %4d | fulfilled %6.2f %%\n",
			cb.Class, cb.Submitted, cb.Met, cb.Missed, cb.Rejected, cb.PctFulfilled)
	}
	for _, rc := range rep.RejectionReasons {
		fmt.Fprintf(&b, "reject reason %-38s %d\n", rc.Reason, rc.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
