package analysis

import (
	"fmt"
	"io"
	"math"
	"strings"

	"clustersched/internal/metrics"
)

// TimelineBucket is one time slice of the post-hoc occupancy view derived
// from job results: how many jobs were in service and how many processors
// they held, averaged over the bucket.
type TimelineBucket struct {
	Start       float64
	End         float64
	MeanJobs    float64
	MeanProcs   float64
	Completions int
	Arrivals    int
}

// Timeline reconstructs the cluster occupancy over time from completed job
// results (rejected and unfinished jobs contribute arrivals only). For
// space-shared execution the processor occupancy is exact; for
// time-shared it is the in-service footprint (each job holds NumProc
// slices while it runs).
func Timeline(results []metrics.JobResult, buckets int) []TimelineBucket {
	if buckets <= 0 {
		return nil
	}
	var lo, hi float64
	lo = math.Inf(1)
	hi = math.Inf(-1)
	any := false
	for _, r := range results {
		lo = math.Min(lo, r.Submit)
		if r.Outcome == metrics.Met || r.Outcome == metrics.Missed {
			hi = math.Max(hi, r.Finish)
			any = true
		} else {
			hi = math.Max(hi, r.Submit)
		}
	}
	if !any || hi <= lo {
		return nil
	}
	width := (hi - lo) / float64(buckets)
	out := make([]TimelineBucket, buckets)
	for i := range out {
		out[i].Start = lo + float64(i)*width
		out[i].End = out[i].Start + width
	}
	idx := func(t float64) int {
		i := int((t - lo) / width)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		return i
	}
	for _, r := range results {
		out[idx(r.Submit)].Arrivals++
		if r.Outcome != metrics.Met && r.Outcome != metrics.Missed {
			continue
		}
		out[idx(r.Finish)].Completions++
		// Jobs run from Submit+wait.. but the records carry Submit and
		// Finish; in-service span approximates [Finish-Response+wait ≈
		// Submit..Finish] for immediate-start policies and is exact for
		// them. Spread the occupancy across overlapped buckets.
		start := r.Finish - r.Response
		for i := idx(start); i <= idx(r.Finish); i++ {
			overlap := math.Min(out[i].End, r.Finish) - math.Max(out[i].Start, start)
			if overlap <= 0 {
				continue
			}
			frac := overlap / width
			out[i].MeanJobs += frac
			out[i].MeanProcs += frac * float64(r.NumProc)
		}
	}
	return out
}

// WriteTimeline renders the occupancy timeline as an ASCII bar chart of
// processor occupancy with arrival/completion counts.
func WriteTimeline(w io.Writer, tl []TimelineBucket, totalProcs int) error {
	if len(tl) == 0 {
		_, err := fmt.Fprintln(w, "(no timeline: nothing completed)")
		return err
	}
	maxProcs := float64(totalProcs)
	if maxProcs <= 0 {
		for _, b := range tl {
			maxProcs = math.Max(maxProcs, b.MeanProcs)
		}
		if maxProcs == 0 {
			maxProcs = 1
		}
	}
	// Note: under time sharing the slice footprint can exceed the
	// physical node count (overcommit); the bar saturates at totalProcs.
	if _, err := fmt.Fprintln(w, "time(h)      slice footprint (bar caps at cluster size)  arrivals  completions"); err != nil {
		return err
	}
	const barW = 40
	for _, b := range tl {
		fill := int(math.Round(b.MeanProcs / maxProcs * barW))
		if fill > barW {
			fill = barW
		}
		if fill < 0 {
			fill = 0
		}
		bar := strings.Repeat("#", fill) + strings.Repeat(".", barW-fill)
		if _, err := fmt.Fprintf(w, "%8.1f  %s %6.1f  %8d  %11d\n",
			b.Start/3600, bar, b.MeanProcs, b.Arrivals, b.Completions); err != nil {
			return err
		}
	}
	return nil
}
