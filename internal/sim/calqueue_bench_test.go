package sim

import (
	"fmt"
	"testing"
)

// BenchmarkCalQueue measures the calendar queue under a hold-model churn
// with lazy cancellations at steady populations of 1k, 10k and 100k
// pending events — the regime the sharded datacenter runs push it into.
// Each iteration pops one event, re-pushes it at a later time, and with
// probability ~1/8 cancels a second event in place (which pop later
// reclaims), so enqueue, cancel and dequeue all appear in the measured
// loop. The 100k case is the one the sampled-width resize heuristic
// exists for: a single far-future outlier must not collapse the
// population into a handful of buckets.
func BenchmarkCalQueue(b *testing.B) {
	for _, pop := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("churn-%d", pop), func(b *testing.B) {
			benchCalChurn(b, pop, false)
		})
		b.Run(fmt.Sprintf("churn-cancel-%d", pop), func(b *testing.B) {
			benchCalChurn(b, pop, true)
		})
	}
}

func benchCalChurn(b *testing.B, pop int, cancels bool) {
	r := NewRNG(uint64(pop))
	q := newCalendarQueue()
	events := make([]*Event, pop)
	for i := range events {
		events[i] = &Event{Time: r.Exp(50) * float64(i), seq: uint64(i)}
		q.push(events[i])
	}
	// One far-future outlier so resize exercises the robust width path.
	q.push(&Event{Time: 1e12, seq: uint64(pop)})
	seq := uint64(pop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		if ev == nil {
			b.Fatal("queue drained")
		}
		now := ev.Time
		if ev.canceled {
			ev.canceled = false // recycle the dead entry as a fresh event
		}
		seq++
		ev.Time = now + r.Exp(50)
		ev.seq = seq
		q.push(ev)
		if cancels && i%8 == 0 {
			// Lazy-cancel a random live entry; it stays chained until pop
			// surfaces it, exactly like an engine-level Cancel.
			victim := events[r.Intn(pop)]
			if victim.queued && !victim.canceled {
				victim.canceled = true
				q.remove(victim)
			}
		}
	}
}
