package sim

import (
	"context"
	"errors"
	"testing"
)

// selfScheduling arms an event chain that re-schedules itself forever, so
// only cancellation (or the event budget) can end the run.
func selfScheduling(e *Engine) {
	var tick Handler
	tick = func(e *Engine) { e.After(1, PriorityArrival, tick) }
	e.After(1, PriorityArrival, tick)
}

func TestRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() *Engine {
		e := NewEngine()
		n := 0
		for i := 0; i < 500; i++ {
			e.At(float64(i), PriorityArrival, func(e *Engine) { n++ })
		}
		return e
	}
	a, b := mk(), mk()
	if err := a.Run(); err != nil {
		t.Fatal(err)
	}
	if err := b.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if a.Processed() != b.Processed() || a.Now() != b.Now() {
		t.Fatalf("Run/RunContext diverge: %d@%g vs %d@%g",
			a.Processed(), a.Now(), b.Processed(), b.Now())
	}
}

func TestRunContextCanceledBeforeStart(t *testing.T) {
	e := NewEngine()
	selfScheduling(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Processed() != 0 {
		t.Fatalf("processed %d events despite pre-canceled context", e.Processed())
	}
}

func TestRunContextCancelsMidRun(t *testing.T) {
	e := NewEngine()
	selfScheduling(e)
	ctx, cancel := context.WithCancel(context.Background())
	stopAt := uint64(1000)
	e.At(0.5, PriorityArrival, func(e *Engine) {}) // ensure chain starts
	var fired uint64
	var tick Handler
	tick = func(e *Engine) {
		fired++
		if fired == stopAt {
			cancel()
		}
		e.After(1, PriorityArrival, tick)
	}
	e.After(1, PriorityArrival, tick)
	err := e.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation lands within one poll interval of the cancel point.
	if e.Processed() > 2*stopAt+ctxCheckMask+8 {
		t.Fatalf("ran %d events after cancel at ~%d", e.Processed(), stopAt)
	}
	// The calendar is intact: a fresh context resumes the run.
	e.MaxEvents = e.Processed() + 100
	if err := e.RunContext(context.Background()); !errors.Is(err, ErrEventBudget) {
		t.Fatalf("resume err = %v, want event budget (chain should continue)", err)
	}
}

func TestRunContextDeadline(t *testing.T) {
	e := NewEngine()
	selfScheduling(e)
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	err := e.RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
