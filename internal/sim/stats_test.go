package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	if !almostEq(w.StdDevPop(), 2, 1e-12) {
		t.Fatalf("StdDevPop = %v, want 2", w.StdDevPop())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", w.Min(), w.Max())
	}
	if !almostEq(w.Sum(), 40, 1e-9) {
		t.Fatalf("Sum = %v, want 40", w.Sum())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.VariancePop() != 0 || w.StdDev() != 0 {
		t.Fatal("empty Welford should return zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.VariancePop() != 0 || w.Variance() != 0 {
		t.Fatalf("single observation: mean %v varPop %v var %v", w.Mean(), w.VariancePop(), w.Variance())
	}
}

func TestWelfordConstantSeriesHasZeroVariance(t *testing.T) {
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(7.25)
	}
	if w.VariancePop() > 1e-18 {
		t.Fatalf("constant series variance = %v, want 0", w.VariancePop())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		var all, a, b Welford
		for i := 0; i < 200; i++ {
			x := r.Normal(0, 10)
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEq(a.Mean(), all.Mean(), 1e-9) &&
			almostEq(a.VariancePop(), all.VariancePop(), 1e-7) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b)
	if a.N() != 0 {
		t.Fatal("merging two empties should stay empty")
	}
	b.Add(5)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatalf("merge into empty: N=%d mean=%v", a.N(), a.Mean())
	}
	var c Welford
	a.Merge(c)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merging an empty must be a no-op")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	for i := 10; i >= 1; i-- {
		s.Add(float64(i))
	}
	if s.N() != 10 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := s.Quantile(1); got != 10 {
		t.Fatalf("Q1 = %v", got)
	}
	if got := s.Median(); !almostEq(got, 5.5, 1e-12) {
		t.Fatalf("median = %v, want 5.5", got)
	}
	if got := s.Quantile(0.25); !almostEq(got, 3.25, 1e-12) {
		t.Fatalf("Q.25 = %v, want 3.25", got)
	}
	if got := s.Mean(); !almostEq(got, 5.5, 1e-12) {
		t.Fatalf("mean = %v", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty sample should return zeros")
	}
}

func TestSampleAddAfterQuantile(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	_ = s.Median()
	s.Add(3)
	if got := s.Median(); got != 3 {
		t.Fatalf("median after re-add = %v, want 3", got)
	}
}

func TestSampleQuantileMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		var s Sample
		for i := 0; i < 100; i++ {
			s.Add(r.Normal(0, 1))
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	want := []int{3, 1, 1, 0, 3} // -1,0,1.9 | 2 | 5 | | 9.99,10,42
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("Counts = %v, want %v", h.Counts, want)
		}
	}
	if got := h.Fraction(0); !almostEq(got, 3.0/8, 1e-12) {
		t.Fatalf("Fraction(0) = %v", got)
	}
}

func TestHistogramInvalidParamsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram(1,1,3) did not panic")
		}
	}()
	NewHistogram(1, 1, 3)
}
