// Package sim provides a deterministic discrete-event simulation kernel:
// an event calendar with stable (time, priority, sequence) ordering, a
// simulation engine, reproducible pseudo-random number streams, standard
// distributions, and online statistics.
//
// The kernel replaces GridSim, the Java event-based simulator used by the
// paper; it is intentionally minimal and allocation-conscious so that full
// parameter sweeps (tens of simulations, thousands of jobs each) run in
// milliseconds and can be driven from testing.B benchmarks.
package sim
