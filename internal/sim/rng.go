package sim

import "math"

// RNG is a small, fast, reproducible pseudo-random generator
// (xoshiro256**, seeded through SplitMix64). Each simulation owns
// independent streams so that, for example, changing how many random
// numbers the deadline assigner draws does not perturb the arrival process
// of an otherwise identical experiment.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed (re)initializes the generator in place, producing exactly the state
// NewRNG(seed) would. It exists so hot paths can keep RNG values on the
// stack (or embedded in a reused struct) instead of allocating via NewRNG.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm = splitmix64(&r.s[i], sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// splitmix64 advances the SplitMix64 state and writes the next output.
func splitmix64(out *uint64, state uint64) uint64 {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	*out = z ^ (z >> 31)
	return state
}

// Stream derives an independent generator from this one, keyed by id.
// Streams with distinct ids are statistically independent for simulation
// purposes, and the parent's own sequence is not advanced.
func (r *RNG) Stream(id uint64) *RNG {
	dst := &RNG{}
	r.StreamInto(dst, id)
	return dst
}

// StreamInto is Stream without the allocation: it seeds dst with the same
// state Stream(id) would return. dst may live on the caller's stack.
func (r *RNG) StreamInto(dst *RNG, id uint64) {
	dst.Seed(r.s[0] ^ (id+1)*0xd1342543de82ef95)
}

// shardStreamFamily tags the per-shard stream id space so shard streams
// can never collide with a model's own Stream ids (the fault injector, for
// example, uses small shifted families like 1<<32 and 3<<32).
const shardStreamFamily uint64 = 0x5a5a << 40

// ShardStream derives the stream for (shard, id) under the sharded
// engine's seeded-stream discipline: each shard draws from its own family
// of streams, independent of every other shard's and of the parent's
// sequence. Determinism across *different* shard counts additionally
// requires that any randomness affecting model state be keyed on
// shard-count-invariant ids (node ids, job ids) — which is why the model's
// own generators (workload, faults) never key on shard indices; shard
// streams exist for strictly shard-local consumers (self-checks,
// diagnostics, tests) whose draws must not perturb the simulation.
func (r *RNG) ShardStream(shard int, id uint64) *RNG {
	dst := &RNG{}
	r.ShardStreamInto(dst, shard, id)
	return dst
}

// ShardStreamInto is ShardStream without the allocation.
func (r *RNG) ShardStreamInto(dst *RNG, shard int, id uint64) {
	r.StreamInto(dst, shardStreamFamily^(uint64(shard)<<20)^id)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponential variate with the given mean. Mean <= 0 yields 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -mean * math.Log(1-u)
}

// Normal returns a normal variate via the Marsaglia polar method.
func (r *RNG) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// TruncNormal returns a normal variate resampled until it lies in
// [lo, hi]. It panics if lo > hi.
func (r *RNG) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		panic("sim: TruncNormal with lo > hi")
	}
	if stddev <= 0 {
		return math.Min(hi, math.Max(lo, mean))
	}
	for i := 0; i < 1000; i++ {
		x := r.Normal(mean, stddev)
		if x >= lo && x <= hi {
			return x
		}
	}
	// Pathological truncation region; fall back to the clamped mean so the
	// simulation still terminates deterministically.
	return math.Min(hi, math.Max(lo, mean))
}

// Lognormal returns exp(Normal(mu, sigma)), parameterized by the
// underlying normal distribution.
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// LognormalMeanCV returns a lognormal variate parameterized by its own
// mean and coefficient of variation (stddev/mean), which is how workload
// models are usually specified.
func (r *RNG) LognormalMeanCV(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return r.Lognormal(mu, math.Sqrt(sigma2))
}

// Weibull returns a Weibull variate with the given scale and shape.
func (r *RNG) Weibull(scale, shape float64) float64 {
	if scale <= 0 || shape <= 0 {
		return 0
	}
	u := r.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Choice returns an index in [0, len(weights)) with probability
// proportional to weights[i]. Non-positive weights are treated as zero; if
// all weights are zero it returns 0.
func (r *RNG) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm fills a permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
