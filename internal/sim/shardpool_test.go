package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestShardPoolRunsEveryWorker(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		pool := NewShardPool(k)
		if pool.Workers() != k {
			t.Fatalf("Workers = %d, want %d", pool.Workers(), k)
		}
		hits := make([]atomic.Int64, k)
		const rounds = 200
		for r := 0; r < rounds; r++ {
			pool.Run(func(w int) { hits[w].Add(1) })
		}
		pool.Close()
		for w := range hits {
			if got := hits[w].Load(); got != rounds {
				t.Fatalf("k=%d worker %d ran %d times, want %d", k, w, got, rounds)
			}
		}
	}
}

func TestShardPoolBarrier(t *testing.T) {
	// Run returns only after every worker's function completed: each round
	// sums a shared counter, so any worker still running from the previous
	// round would be observed as a short sum.
	pool := NewShardPool(4)
	defer pool.Close()
	var total atomic.Int64
	for r := 1; r <= 100; r++ {
		pool.Run(func(w int) { total.Add(int64(w + 1)) })
		if got := total.Load(); got != int64(r*(1+2+3+4)) {
			t.Fatalf("round %d: total = %d, want %d", r, got, int64(r*10))
		}
	}
}

func TestShardPoolParkAndWake(t *testing.T) {
	// Gaps longer than the spin budget force workers to park; the next Run
	// must wake them exactly once each and still complete.
	pool := NewShardPool(3)
	defer pool.Close()
	var total atomic.Int64
	for r := 0; r < 5; r++ {
		time.Sleep(20 * time.Millisecond) // let workers park
		pool.Run(func(w int) { total.Add(1) })
	}
	if got := total.Load(); got != 15 {
		t.Fatalf("total = %d, want 15", got)
	}
}

func TestShardPoolCloseIdempotentAndPanicOnBadSize(t *testing.T) {
	pool := NewShardPool(2)
	pool.Close()
	pool.Close() // second Close must not hang or panic
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardPool(0) did not panic")
		}
	}()
	NewShardPool(0)
}
