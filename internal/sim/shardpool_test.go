package sim

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestShardPoolRunsEveryWorker(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		pool := NewShardPool(k)
		if pool.Workers() != k {
			t.Fatalf("Workers = %d, want %d", pool.Workers(), k)
		}
		hits := make([]atomic.Int64, k)
		const rounds = 200
		for r := 0; r < rounds; r++ {
			pool.Run(func(w int) { hits[w].Add(1) })
		}
		pool.Close()
		for w := range hits {
			if got := hits[w].Load(); got != rounds {
				t.Fatalf("k=%d worker %d ran %d times, want %d", k, w, got, rounds)
			}
		}
	}
}

func TestShardPoolBarrier(t *testing.T) {
	// Run returns only after every worker's function completed: each round
	// sums a shared counter, so any worker still running from the previous
	// round would be observed as a short sum.
	pool := NewShardPool(4)
	defer pool.Close()
	var total atomic.Int64
	for r := 1; r <= 100; r++ {
		pool.Run(func(w int) { total.Add(int64(w + 1)) })
		if got := total.Load(); got != int64(r*(1+2+3+4)) {
			t.Fatalf("round %d: total = %d, want %d", r, got, int64(r*10))
		}
	}
}

func TestShardPoolParkAndWake(t *testing.T) {
	// Gaps longer than the spin budget force workers to park; the next Run
	// must wake them exactly once each and still complete.
	pool := NewShardPool(3)
	defer pool.Close()
	var total atomic.Int64
	for r := 0; r < 5; r++ {
		time.Sleep(20 * time.Millisecond) // let workers park
		pool.Run(func(w int) { total.Add(1) })
	}
	if got := total.Load(); got != 15 {
		t.Fatalf("total = %d, want 15", got)
	}
}

func TestShardPoolCloseIdempotentAndPanicOnBadSize(t *testing.T) {
	pool := NewShardPool(2)
	pool.Close()
	pool.Close() // second Close must not hang or panic
	defer func() {
		if recover() == nil {
			t.Fatal("NewShardPool(0) did not panic")
		}
	}()
	NewShardPool(0)
}

func TestShardPoolStatsCountParksAndWakes(t *testing.T) {
	// Gaps longer than the spin budget force the workers to park, so each
	// post must wake them: parks and wakes grow together and stay 1:1
	// within the tolerance of workers still mid-park at snapshot time.
	pool := NewShardPool(3)
	defer pool.Close()
	for r := 0; r < 4; r++ {
		time.Sleep(20 * time.Millisecond) // let workers exhaust spins and park
		pool.Run(func(w int) {})
	}
	st := pool.Stats()
	if st.Parks == 0 {
		t.Fatalf("Stats.Parks = 0 after parked handoffs, want > 0 (stats %+v)", st)
	}
	if st.Wakes == 0 {
		t.Fatalf("Stats.Wakes = 0 after parked handoffs, want > 0 (stats %+v)", st)
	}
	if st.SpinIters == 0 {
		t.Fatalf("Stats.SpinIters = 0, want > 0: every park is preceded by a full spin budget (stats %+v)", st)
	}
	if st.Wakes > st.Parks {
		t.Fatalf("Stats.Wakes = %d exceeds Parks = %d: tokens must be 1:1 with parks", st.Wakes, st.Parks)
	}
}

func TestShardPoolStatsHotHandoffSpinsWithoutParking(t *testing.T) {
	// Back-to-back phases hand off inside the spin window: spin iterations
	// accumulate but parking stays rare. The assertion is one-sided (spins
	// observed) because a heavily loaded test host may still descend into
	// a park; what must never happen is a wake without a park.
	pool := NewShardPool(2)
	defer pool.Close()
	for r := 0; r < 1000; r++ {
		pool.Run(func(w int) {})
	}
	st := pool.Stats()
	if st.SpinIters == 0 {
		t.Fatalf("Stats.SpinIters = 0 after 1000 back-to-back phases, want > 0")
	}
	if st.Wakes > st.Parks {
		t.Fatalf("Stats.Wakes = %d exceeds Parks = %d", st.Wakes, st.Parks)
	}
}
