package sim

import (
	"testing"
	"testing/quick"
)

// drain pops everything and returns the (time, priority, seq) order.
func drain(q eventSet) []*Event {
	var out []*Event
	for {
		ev := q.pop()
		if ev == nil {
			return out
		}
		out = append(out, ev)
	}
}

func TestCalendarQueueMatchesHeapOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		heapQ := &eventQueue{}
		calQ := newCalendarQueue()
		n := 1 + r.Intn(300)
		for i := 0; i < n; i++ {
			ev1 := &Event{Time: r.Float64() * 1000, Priority: Priority(r.Intn(3) - 1), seq: uint64(i)}
			ev2 := &Event{Time: ev1.Time, Priority: ev1.Priority, seq: ev1.seq}
			heapQ.push(ev1)
			calQ.push(ev2)
		}
		a := drain(heapQ)
		b := drain(calQ)
		if len(a) != len(b) || len(a) != n {
			return false
		}
		for i := range a {
			if a[i].Time != b[i].Time || a[i].Priority != b[i].Priority || a[i].seq != b[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarQueueInterleavedPushPopProperty(t *testing.T) {
	// Mixed workload: pops interleaved with pushes whose times are >= the
	// last popped time (the DES discipline). The popped sequence must be
	// identical across implementations.
	g := func(seed uint64) bool {
		r := NewRNG(seed)
		heapQ := &eventQueue{}
		calQ := newCalendarQueue()
		now := 0.0
		seq := uint64(0)
		for step := 0; step < 400; step++ {
			if r.Bool(0.6) || heapQ.len() == 0 {
				tm := now + r.Float64()*50
				pr := Priority(r.Intn(3) - 1)
				seq++
				heapQ.push(&Event{Time: tm, Priority: pr, seq: seq})
				calQ.push(&Event{Time: tm, Priority: pr, seq: seq})
			} else {
				a := heapQ.pop()
				b := calQ.pop()
				if a == nil || b == nil {
					if !(a == nil && b == nil) {
						return false
					}
					continue
				}
				if a.Time != b.Time || a.Priority != b.Priority || a.seq != b.seq {
					return false
				}
				now = a.Time
			}
		}
		if heapQ.len() != calQ.len() {
			return false
		}
		a := drain(heapQ)
		b := drain(calQ)
		for i := range a {
			if a[i].seq != b[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCalendarQueueEmptyPop(t *testing.T) {
	q := newCalendarQueue()
	if q.pop() != nil {
		t.Fatal("pop on empty returned an event")
	}
	if q.len() != 0 {
		t.Fatal("len on empty")
	}
}

func TestCalendarQueueSparseTimes(t *testing.T) {
	// Events separated by enormous gaps exercise the year-skip path.
	q := newCalendarQueue()
	times := []float64{0, 1e-6, 5, 1e6, 1e6 + 1, 1e12}
	for i, tm := range times {
		q.push(&Event{Time: tm, seq: uint64(i)})
	}
	prev := -1.0
	for i := 0; i < len(times); i++ {
		ev := q.pop()
		if ev == nil {
			t.Fatalf("queue exhausted after %d pops", i)
		}
		if ev.Time < prev {
			t.Fatalf("out of order: %g after %g", ev.Time, prev)
		}
		prev = ev.Time
	}
}

func TestEngineCalendarBehavesLikeHeapEngine(t *testing.T) {
	runWith := func(e *Engine) []float64 {
		var fired []float64
		var ping Handler
		count := 0
		ping = func(e *Engine) {
			fired = append(fired, e.Now())
			count++
			if count < 50 {
				e.After(float64(count%7)+0.5, PriorityDefault, ping)
			}
		}
		e.At(1, PriorityDefault, ping)
		e.At(3, PriorityCompletion, func(e *Engine) { fired = append(fired, -e.Now()) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return fired
	}
	a := runWith(NewEngine())
	b := runWith(NewEngineCalendar())
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEngineCalendarHorizonPushback(t *testing.T) {
	e := NewEngineCalendar()
	hits := 0
	e.At(1, PriorityDefault, func(*Engine) { hits++ })
	e.At(10, PriorityDefault, func(*Engine) { hits++ })
	e.SetHorizon(5)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 || e.Pending() != 1 {
		t.Fatalf("hits=%d pending=%d", hits, e.Pending())
	}
	e.SetHorizon(20)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits=%d after widened horizon", hits)
	}
}

func BenchmarkEventQueueHeap(b *testing.B) {
	benchQueue(b, func() eventSet { return &eventQueue{} })
}

func BenchmarkEventQueueCalendar(b *testing.B) {
	benchQueue(b, func() eventSet { return newCalendarQueue() })
}

// benchQueue measures a hold-model workload (pop one, push one) at a
// steady population of 4096 events, the classic future-event-set
// benchmark.
func benchQueue(b *testing.B, mk func() eventSet) {
	r := NewRNG(1)
	q := mk()
	const pop = 4096
	now := 0.0
	for i := 0; i < pop; i++ {
		q.push(&Event{Time: r.Float64() * 100, seq: uint64(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := q.pop()
		now = ev.Time
		ev.next = nil
		ev.Time = now + r.Exp(50)
		q.push(ev)
	}
}
