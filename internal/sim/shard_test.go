package sim

import (
	"math"
	"testing"
)

func TestPeekNextReturnsEarliestWithoutConsuming(t *testing.T) {
	for _, mk := range []func() *Engine{NewEngine, NewEngineCalendar} {
		e := mk()
		e.At(5, PriorityDefault, func(*Engine) {})
		e.At(2, PriorityCompletion, func(*Engine) {})
		e.At(2, PriorityDefault, func(*Engine) {})
		tm, p, ok := e.PeekNext()
		if !ok || tm != 2 || p != PriorityCompletion {
			t.Fatalf("PeekNext = (%g, %d, %v), want (2, %d, true)", tm, p, ok, PriorityCompletion)
		}
		if e.Pending() != 3 {
			t.Fatalf("Pending = %d after peek, want 3", e.Pending())
		}
		// A second peek sees the same head.
		tm2, p2, ok2 := e.PeekNext()
		if tm2 != tm || p2 != p || !ok2 {
			t.Fatalf("second PeekNext = (%g, %d, %v), want same head", tm2, p2, ok2)
		}
	}
}

func TestPeekNextSkipsAndReclaimsCanceledHead(t *testing.T) {
	// On the calendar queue the canceled head is a lazily deleted entry;
	// PeekNext must discard it (recycling the allocation) rather than
	// report a dead event as the next key.
	e := NewEngineCalendar()
	dead := e.At(1, PriorityDefault, func(*Engine) { t.Fatal("canceled handler ran") })
	e.At(4, PriorityDefault, func(*Engine) {})
	dead.Cancel()
	tm, _, ok := e.PeekNext()
	if !ok || tm != 4 {
		t.Fatalf("PeekNext = (%g, %v), want (4, true)", tm, ok)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
}

func TestPeekNextEmpty(t *testing.T) {
	e := NewEngine()
	if _, _, ok := e.PeekNext(); ok {
		t.Fatal("PeekNext on empty engine reported an event")
	}
}

func TestSetHorizonKeyExclusiveAtSameTime(t *testing.T) {
	// The horizon key (t, p) admits only events strictly earlier in the
	// (time, priority) order: at time t exactly, priorities >= p stay
	// queued. This is the barrier rule the sharded runner relies on.
	for _, mk := range []func() *Engine{NewEngine, NewEngineCalendar} {
		e := mk()
		var fired []Priority
		for _, p := range []Priority{PriorityFault, PriorityCompletion, PriorityDefault, PriorityArrival} {
			p := p
			e.At(10, p, func(*Engine) { fired = append(fired, p) })
		}
		e.SetHorizonKey(10, PriorityDefault)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != 2 || fired[0] != PriorityFault || fired[1] != PriorityCompletion {
			t.Fatalf("fired = %v, want [%d %d]", fired, PriorityFault, PriorityCompletion)
		}
		if e.Pending() != 2 {
			t.Fatalf("Pending = %d, want 2", e.Pending())
		}
		// SetHorizon restores inclusive semantics for the same timestamp.
		e.SetHorizon(10)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if len(fired) != 4 || e.Pending() != 0 {
			t.Fatalf("fired = %v pending = %d after inclusive horizon", fired, e.Pending())
		}
	}
}

func TestSetHorizonKeyResetRestoresInclusive(t *testing.T) {
	e := NewEngine()
	e.SetHorizonKey(10, PriorityFault)
	e.Reset()
	hit := false
	e.At(10, PriorityDefault, func(*Engine) { hit = true })
	e.SetHorizon(10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("event at the horizon did not fire after Reset (horizon key leaked)")
	}
}

func TestAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.AdvanceTo(5)
	if e.Now() != 5 {
		t.Fatalf("Now = %g, want 5", e.Now())
	}
	// Forward-only: moving back is a no-op.
	e.AdvanceTo(3)
	if e.Now() != 5 {
		t.Fatalf("Now = %g after backward AdvanceTo, want 5", e.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo(NaN) did not panic")
		}
	}()
	e.AdvanceTo(math.NaN())
}

// TestCalendarPendingExactAfterHorizonPushback is the regression test for
// the lazy-deletion accounting bug: the engine pops a canceled entry that
// sits beyond the horizon — or cycles the head through PeekNext — and
// re-pushes it; push must re-account the dead entry or Pending() drifts
// upward for the rest of the run.
func TestCalendarPendingExactAfterHorizonPushback(t *testing.T) {
	e := NewEngineCalendar()
	dead := e.At(5, PriorityDefault, func(*Engine) { t.Fatal("canceled handler ran") })
	e.At(10, PriorityDefault, func(*Engine) {})
	dead.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after cancel, want 1", e.Pending())
	}
	// Horizon below both events: Run pops the dead entry, reclaims it, and
	// pushes the live one back.
	e.SetHorizon(1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d after horizon pushback, want 1", e.Pending())
	}
	e.SetHorizon(20)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run, want 0", e.Pending())
	}
	// And the engine is clean across Reset.
	e.Reset()
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Reset, want 0", e.Pending())
	}
}

// TestCalendarPendingExactAcrossResize drives the calendar through growth
// and shrink resizes with dead entries chained, asserting the live count
// stays exact throughout (resize re-derives both counters via push).
func TestCalendarPendingExactAcrossResize(t *testing.T) {
	q := newCalendarQueue()
	r := NewRNG(7)
	live := 0
	var events []*Event
	for i := 0; i < 5000; i++ {
		ev := &Event{Time: r.Float64() * 1e4, seq: uint64(i)}
		q.push(ev)
		events = append(events, ev)
		live++
		if r.Bool(0.3) {
			ev.canceled = true
			q.remove(ev)
			live--
		}
		if q.len() != live {
			t.Fatalf("len = %d at push %d, want %d", q.len(), i, live)
		}
	}
	// Drain through pop (shrink resizes fire on the way down).
	for q.len() > 0 {
		ev := q.pop()
		if ev == nil {
			t.Fatalf("pop returned nil with len = %d", q.len())
		}
		if ev.canceled {
			continue
		}
		live--
		if q.len() != live {
			t.Fatalf("len = %d during drain, want %d", q.len(), live)
		}
	}
	if live != 0 {
		t.Fatalf("drained with %d live events unaccounted", live)
	}
}

func TestCalendarSampledWidthRobustToOutlier(t *testing.T) {
	// 1000 events 1s apart plus one 10^9 s in the future. The old span/n
	// width heuristic would produce ~10^6 s buckets; the sampled-median
	// width must stay near the typical gap so the population spreads.
	q := newCalendarQueue()
	events := make([]*Event, 0, 1001)
	for i := 0; i < 1000; i++ {
		events = append(events, &Event{Time: float64(i), seq: uint64(i)})
	}
	events = append(events, &Event{Time: 1e9, seq: 1000})
	w := q.sampledWidth(events)
	if w <= 0 || w > 1000 {
		t.Fatalf("sampledWidth = %g, want a small positive width near the 1s typical gap", w)
	}
	// Degenerate input: all times equal -> no positive gap -> 0 (caller
	// keeps the previous width).
	same := []*Event{{Time: 5}, {Time: 5}, {Time: 5}}
	if w := q.sampledWidth(same); w != 0 {
		t.Fatalf("sampledWidth on equal times = %g, want 0", w)
	}
}

func TestShardStreamsDistinctAndDeterministic(t *testing.T) {
	r := NewRNG(42)
	a1 := r.ShardStream(0, 7).Uint64()
	a2 := r.ShardStream(0, 7).Uint64()
	if a1 != a2 {
		t.Fatal("ShardStream is not deterministic")
	}
	if b := r.ShardStream(1, 7).Uint64(); b == a1 {
		t.Fatal("distinct shards produced the same stream")
	}
	if c := r.ShardStream(0, 8).Uint64(); c == a1 {
		t.Fatal("distinct ids produced the same stream")
	}
	var dst RNG
	r.ShardStreamInto(&dst, 0, 7)
	if got := dst.Uint64(); got != a1 {
		t.Fatalf("ShardStreamInto = %d, want %d", got, a1)
	}
}
