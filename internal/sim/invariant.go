package sim

import (
	"fmt"
	"strings"
)

// Invariant is one named machine-checked property of a simulation model.
// Check returns nil while the property holds and a descriptive error the
// moment it does not.
type Invariant struct {
	Name  string
	Check func() error
}

// InvariantChecker runs a set of model invariants after every processed
// event, plus the kernel's own clock-monotonicity property. It is attached
// to an engine with Engine.SetInvariantChecker and is meant for test and
// `-race` builds and for explicit opt-in (clustersim -check-invariants):
// the engine pays a single nil check per event when no checker is
// installed.
//
// Violations are collected rather than panicking so a failing run can
// report every broken property at once; Err surfaces them as one error.
type InvariantChecker struct {
	invs []Invariant

	prevNow float64
	hasPrev bool

	violations []string
	// MaxViolations bounds the collected report; further violations are
	// counted but not recorded. 0 means 16.
	MaxViolations int
	dropped       int
	// events counts checker passes, for tests.
	events uint64
}

// NewInvariantChecker returns a checker with only the kernel clock
// invariant armed; model invariants are added with Register.
func NewInvariantChecker() *InvariantChecker {
	return &InvariantChecker{}
}

// Register adds a model invariant evaluated after every event.
func (c *InvariantChecker) Register(name string, check func() error) {
	c.invs = append(c.invs, Invariant{Name: name, Check: check})
}

// Events returns how many event-boundary passes the checker has run.
func (c *InvariantChecker) Events() uint64 { return c.events }

// record appends one violation, respecting MaxViolations.
func (c *InvariantChecker) record(msg string) {
	limit := c.MaxViolations
	if limit <= 0 {
		limit = 16
	}
	if len(c.violations) >= limit {
		c.dropped++
		return
	}
	c.violations = append(c.violations, msg)
}

// observe runs all invariants at an event boundary. It is called by the
// engine after each handler returns.
func (c *InvariantChecker) observe(e *Engine) {
	c.events++
	now := e.Now()
	if c.hasPrev && now < c.prevNow {
		c.record(fmt.Sprintf("clock-monotonic: t=%.9g after t=%.9g", now, c.prevNow))
	}
	c.prevNow = now
	c.hasPrev = true
	for _, inv := range c.invs {
		if err := inv.Check(); err != nil {
			c.record(fmt.Sprintf("%s: t=%.9g: %v", inv.Name, now, err))
		}
	}
}

// Violations returns the recorded violation messages in detection order.
func (c *InvariantChecker) Violations() []string {
	return append([]string(nil), c.violations...)
}

// Err returns nil when every invariant held, or one error summarizing all
// recorded violations.
func (c *InvariantChecker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sim: %d invariant violation(s)", len(c.violations)+c.dropped)
	if c.dropped > 0 {
		fmt.Fprintf(&sb, " (%d not recorded)", c.dropped)
	}
	for _, v := range c.violations {
		sb.WriteString("\n  ")
		sb.WriteString(v)
	}
	return fmt.Errorf("%s", sb.String())
}
