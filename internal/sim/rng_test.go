package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 outputs", same)
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Stream(1)
	s2 := root.Stream(2)
	s1again := NewRNG(7).Stream(1)
	for i := 0; i < 50; i++ {
		if s1.Uint64() != s1again.Uint64() {
			t.Fatal("stream derivation is not deterministic")
		}
	}
	same := 0
	for i := 0; i < 64; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 collided on %d of 64 outputs", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	seen := map[uint64]bool{}
	for i := 0; i < 32; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 30 {
		t.Fatalf("zero seed produced only %d distinct values in 32 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestFloat64RangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		r := NewRNG(seed)
		m := int(n%1000) + 1
		for i := 0; i < 32; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Exp(100))
	}
	if m := w.Mean(); math.Abs(m-100) > 2 {
		t.Fatalf("Exp(100) sample mean = %v, want ~100", m)
	}
	if w.Min() < 0 {
		t.Fatalf("Exp produced negative value %v", w.Min())
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Normal(5, 2))
	}
	if m := w.Mean(); math.Abs(m-5) > 0.05 {
		t.Fatalf("Normal(5,2) mean = %v", m)
	}
	if s := w.StdDev(); math.Abs(s-2) > 0.05 {
		t.Fatalf("Normal(5,2) stddev = %v", s)
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		x := r.TruncNormal(2, 1, 1, 4)
		if x < 1 || x > 4 {
			t.Fatalf("TruncNormal out of bounds: %v", x)
		}
	}
}

func TestTruncNormalDegenerate(t *testing.T) {
	r := NewRNG(19)
	if x := r.TruncNormal(10, 0, 1, 4); x != 4 {
		t.Fatalf("TruncNormal with zero stddev = %v, want clamped 4", x)
	}
	// Truncation region far from the mean must still terminate.
	x := r.TruncNormal(0, 0.001, 100, 101)
	if x < 100 || x > 101 {
		t.Fatalf("pathological TruncNormal = %v, want within [100,101]", x)
	}
}

func TestLognormalMeanCV(t *testing.T) {
	r := NewRNG(23)
	var w Welford
	for i := 0; i < 400000; i++ {
		w.Add(r.LognormalMeanCV(100, 1.5))
	}
	if m := w.Mean(); math.Abs(m-100) > 3 {
		t.Fatalf("LognormalMeanCV(100,1.5) mean = %v, want ~100", m)
	}
	cv := w.StdDev() / w.Mean()
	if math.Abs(cv-1.5) > 0.15 {
		t.Fatalf("LognormalMeanCV cv = %v, want ~1.5", cv)
	}
}

func TestWeibullMean(t *testing.T) {
	// Weibull(scale=1, shape=1) is Exp(1): mean 1.
	r := NewRNG(29)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Weibull(1, 1))
	}
	if m := w.Mean(); math.Abs(m-1) > 0.03 {
		t.Fatalf("Weibull(1,1) mean = %v, want ~1", m)
	}
}

func TestChoiceWeights(t *testing.T) {
	r := NewRNG(31)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Choice bucket %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestChoiceIgnoresNonPositive(t *testing.T) {
	r := NewRNG(37)
	weights := []float64{0, -5, 3}
	for i := 0; i < 1000; i++ {
		if got := r.Choice(weights); got != 2 {
			t.Fatalf("Choice picked %d, want only index 2", got)
		}
	}
	if got := r.Choice([]float64{0, 0}); got != 0 {
		t.Fatalf("Choice with all-zero weights = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(41)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm output invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(43)
	hits := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}
