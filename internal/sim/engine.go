package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Engine is a discrete-event simulation engine. The zero value is not ready
// to use; construct with NewEngine (binary-heap event set) or
// NewEngineCalendar (calendar-queue event set; same semantics, different
// complexity profile — see BenchmarkEventQueue*).
//
// The engine is single-goroutine by design: determinism matters more than
// intra-simulation parallelism for scheduling studies, and whole parameter
// sweeps parallelize across independent Engine instances instead (see
// internal/experiment).
//
// Events are pooled: a fired or cancelled event returns to an intrusive
// freelist and the next At/After reuses it, so the steady-state event loop
// allocates nothing. This is safe precisely because the engine is
// single-goroutine — no other goroutine can observe a recycled event.
type Engine struct {
	now     float64
	queue   eventSet
	seq     uint64
	stopped bool
	// horizon, if finite, aborts Run once simulated time would pass it.
	horizon float64
	// horizonP refines the horizon to a (time, priority) key: an event at
	// exactly horizon fires only while its priority is strictly below
	// horizonP. SetHorizon leaves it at the inclusive sentinel so the plain
	// time-only horizon keeps its historical "at or before t" semantics;
	// SetHorizonKey pins it for sharded barrier phases.
	horizonP Priority
	// processed counts handler invocations, useful for tests and as a
	// runaway-loop guard via MaxEvents.
	processed uint64
	// MaxEvents, if non-zero, makes Run return ErrEventBudget once that
	// many events have been processed.
	MaxEvents uint64
	// checker, when installed, re-validates model invariants after every
	// handler; see SetInvariantChecker.
	checker *InvariantChecker
	// free heads the intrusive Event freelist (chained via Event.next).
	free *Event
	// recycleH is the bound-once method value for recycle, so Reset can
	// drain the queue without allocating a closure per call.
	recycleH func(*Event)
}

// ErrEventBudget is returned by Run when MaxEvents is exhausted, which in a
// correct model indicates an event loop that re-schedules itself forever.
var ErrEventBudget = errors.New("sim: event budget exhausted")

// ctxCheckMask sets how often RunContext polls its context: once every
// 64 processed events. Event handlers dominate the per-event cost, so the
// poll is noise, while 64 events of a paper-scale run are far below a
// millisecond of wall clock — cancellation lands at effectively
// event-loop granularity.
const ctxCheckMask = 63

// horizonInclusive is the horizonP sentinel meaning "every priority at the
// horizon time still fires" — the inclusive semantics SetHorizon has always
// had. Priority is an int, so MaxInt compares above every real priority.
const horizonInclusive Priority = math.MaxInt

// NewEngine returns an engine with the clock at zero, an empty calendar,
// and the binary-heap event set.
func NewEngine() *Engine {
	return &Engine{horizon: math.Inf(1), horizonP: horizonInclusive, queue: &eventQueue{}}
}

// NewEngineCalendar returns an engine backed by a calendar queue, which
// trades the heap's O(log n) operations for amortized O(1) under the
// near-uniform event-time mixes cluster simulations produce.
func NewEngineCalendar() *Engine {
	return &Engine{horizon: math.Inf(1), horizonP: horizonInclusive, queue: newCalendarQueue()}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending returns the number of live events in the calendar. Cancelled
// events do not count: the binary-heap event set removes them eagerly, and
// the calendar queue accounts its lazily deleted entries.
func (e *Engine) Pending() int { return e.queue.len() }

// Processed returns the number of event handlers run so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetHorizon limits Run to events at or before t seconds. Events scheduled
// later stay in the calendar; Run returns when the next event would exceed
// the horizon.
func (e *Engine) SetHorizon(t float64) {
	e.horizon = t
	e.horizonP = horizonInclusive
}

// SetHorizonKey limits Run to events strictly below the (t, p) ordering
// key: an event fires while its time is before t, or its time equals t and
// its priority is below p. This is the barrier horizon of the sharded
// engine — a shard drains everything that sequentially precedes the next
// global event without touching anything that ties with or follows it.
func (e *Engine) SetHorizonKey(t float64, p Priority) {
	e.horizon = t
	e.horizonP = p
}

// PeekNext reports the (time, priority) key of the earliest live event
// without processing it, skipping (and reclaiming) lazily deleted entries.
// ok is false when the calendar is empty. The horizon is not consulted:
// PeekNext answers "what would run next", limits apply only when running.
func (e *Engine) PeekNext() (t float64, p Priority, ok bool) {
	for {
		ev := e.queue.pop()
		if ev == nil {
			return 0, 0, false
		}
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		// Re-queue untouched: seq is unchanged, so ordering is preserved.
		e.queue.push(ev)
		return ev.Time, ev.Priority, true
	}
}

// AdvanceTo moves the clock forward to t without processing anything.
// Moving backwards is a no-op. The caller must guarantee no pending event
// is earlier than t (the sharded driver advances a drained shard to the
// global clock); violating that would make a later Run panic on the
// clock-monotonicity its invariants assume.
func (e *Engine) AdvanceTo(t float64) {
	if math.IsNaN(t) {
		panic("sim: AdvanceTo NaN time")
	}
	if t > e.now {
		e.now = t
	}
}

// At schedules fn at absolute time t. Scheduling in the past panics: it is
// always a model bug and silently clamping would corrupt causality. The
// returned *Event may be a recycled allocation; it is valid to Cancel only
// until its handler has run.
func (e *Engine) At(t float64, p Priority, fn Handler) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %.9g before now %.9g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	e.seq++
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.Time, ev.Priority, ev.seq, ev.fn = t, p, e.seq, fn
		ev.canceled, ev.recycled, ev.next = false, false, nil
	} else {
		ev = &Event{Time: t, Priority: p, seq: e.seq, fn: fn, eng: e}
	}
	e.queue.push(ev)
	return ev
}

// After schedules fn at now+d.
func (e *Engine) After(d float64, p Priority, fn Handler) *Event {
	return e.At(e.now+d, p, fn)
}

// Stop makes Run return after the current handler completes.
func (e *Engine) Stop() { e.stopped = true }

// Reset returns the engine to its freshly constructed state in place: the
// calendar is emptied (every pending event moves to the freelist), the
// clock, sequence counter, processed count, horizon, event budget and
// invariant checker all revert to their constructor values. The freelist
// and the event set's internal capacity are retained, so a run on a reset
// engine schedules from recycled storage instead of the heap.
//
// Reset invalidates every *Event previously returned by At/After;
// cancelling one of them afterwards panics via the recycled-event guard.
func (e *Engine) Reset() {
	if e.recycleH == nil {
		e.recycleH = e.recycle
	}
	e.queue.drain(e.recycleH)
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.stopped = false
	e.horizon = math.Inf(1)
	e.horizonP = horizonInclusive
	e.MaxEvents = 0
	e.checker = nil
}

// pastHorizon reports whether ev lies beyond the run limit: strictly after
// the horizon time, or at the horizon time with priority at or above the
// horizon priority (only possible under SetHorizonKey — SetHorizon leaves
// the priority at the inclusive sentinel).
func (e *Engine) pastHorizon(ev *Event) bool {
	return ev.Time > e.horizon || (ev.Time == e.horizon && ev.Priority >= e.horizonP)
}

// recycle pushes a dead event onto the freelist. The handler reference is
// dropped so closures do not outlive their run.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.recycled = true
	ev.next = e.free
	e.free = ev
}

// cancelEvent is Cancel's engine-side half: detach the event from the
// event set if the set supports eager removal, and recycle it.
func (e *Engine) cancelEvent(ev *Event) {
	if e.queue.remove(ev) {
		e.recycle(ev)
	}
}

// SetInvariantChecker installs (or, with nil, removes) an invariant
// checker that runs after every processed event. A nil checker costs one
// pointer comparison per event, so production runs pay nothing.
func (e *Engine) SetInvariantChecker(c *InvariantChecker) { e.checker = c }

// InvariantChecker returns the installed checker, if any.
func (e *Engine) InvariantChecker() *InvariantChecker { return e.checker }

// Run processes events in order until the calendar empties, Stop is called,
// the horizon is reached, or the event budget is exhausted.
func (e *Engine) Run() error {
	return e.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is polled
// every few processed events (see ctxCheckMask), and once it is done the
// loop returns a wrapped context error without touching the pending event.
// The calendar is left intact, so a later RunContext call with a live
// context resumes exactly where this one stopped. A background context
// costs one nil comparison per event.
func (e *Engine) RunContext(ctx context.Context) error {
	e.stopped = false
	done := ctx.Done()
	if done != nil {
		if err := context.Cause(ctx); err != nil {
			return fmt.Errorf("sim: run canceled before start: %w", err)
		}
	}
	for {
		if e.stopped {
			return nil
		}
		if done != nil && e.processed&ctxCheckMask == 0 {
			select {
			case <-done:
				return fmt.Errorf("sim: run canceled at t=%.6g after %d events: %w",
					e.now, e.processed, context.Cause(ctx))
			default:
			}
		}
		ev := e.queue.pop()
		if ev == nil {
			return nil
		}
		if ev.canceled {
			// Lazily deleted (calendar queue) — reclaim it now, even when it
			// also lies past the horizon: re-queueing a dead entry would only
			// delay its reclamation and force push to re-account it.
			e.recycle(ev)
			continue
		}
		if e.pastHorizon(ev) {
			// Put it back for a later Run with a larger horizon; the
			// sequence number is unchanged, so ordering is preserved.
			e.queue.push(ev)
			return nil
		}
		e.now = ev.Time
		e.processed++
		if e.MaxEvents != 0 && e.processed > e.MaxEvents {
			return ErrEventBudget
		}
		ev.fn(e)
		if e.checker != nil {
			e.checker.observe(e)
		}
		if !ev.canceled {
			// A handler cancelling its own in-flight event keeps it out of
			// the pool (rare, and recycling it then would make the stale
			// pointer the canceller holds ambiguous).
			e.recycle(ev)
		}
	}
}

// Step processes exactly one non-cancelled event and reports whether one
// was available. Useful for unit tests that walk a model event by event.
// Step honors the same limits as Run: an event beyond the horizon stays in
// the calendar and Step reports false, and exhausting MaxEvents returns
// ErrEventBudget.
func (e *Engine) Step() (bool, error) {
	for {
		ev := e.queue.pop()
		if ev == nil {
			return false, nil
		}
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		if e.pastHorizon(ev) {
			e.queue.push(ev)
			return false, nil
		}
		e.now = ev.Time
		e.processed++
		if e.MaxEvents != 0 && e.processed > e.MaxEvents {
			return false, ErrEventBudget
		}
		ev.fn(e)
		if e.checker != nil {
			e.checker.observe(e)
		}
		if !ev.canceled {
			e.recycle(ev)
		}
		return true, nil
	}
}
