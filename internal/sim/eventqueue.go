package sim

import "container/heap"

// Priority orders events that share the same timestamp. Lower values run
// first. Using explicit priorities keeps simultaneous events (for example a
// job completion freeing processors and a job arrival wanting them)
// deterministic without depending on scheduling order.
type Priority int

// Standard priorities used by the cluster model. Completions drain before
// arrivals are admitted, mirroring the behaviour of real resource managers
// that process finished jobs before considering new submissions.
const (
	// PriorityFault runs before completions: a node that dies at the same
	// instant a slice would finish kills that slice — the conservative
	// (and deterministic) reading of a tie that has probability zero under
	// continuous failure distributions.
	PriorityFault      Priority = -20
	PriorityCompletion Priority = -10
	PriorityDefault    Priority = 0
	PriorityArrival    Priority = 10
	PriorityMonitor    Priority = 20
)

// Handler is the callback attached to a scheduled event. It receives the
// engine so it may schedule follow-up events.
type Handler func(e *Engine)

// Event is a single entry in the simulation calendar.
type Event struct {
	Time     float64
	Priority Priority
	seq      uint64
	fn       Handler
	canceled bool
	index    int    // heap position (binary-heap event set)
	next     *Event // chain link (calendar-queue event set)
}

// eventSet is the future-event-set abstraction: the engine works with
// either the binary heap (default) or the calendar queue.
type eventSet interface {
	push(ev *Event)
	pop() *Event
	len() int
}

// Cancel marks the event so its handler will not run. Cancelled events stay
// in the calendar until popped; this is O(1) and keeps the heap simple.
func (ev *Event) Cancel() { ev.canceled = true }

// Canceled reports whether Cancel has been called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventQueue is a binary heap of events ordered by (Time, Priority, seq).
type eventQueue struct {
	events []*Event
}

var _ heap.Interface = (*eventQueue)(nil)

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(q.events)
	q.events = append(q.events, ev)
}

func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	q.events = old[:n-1]
	return ev
}

func (q *eventQueue) push(ev *Event) { heap.Push(q, ev) }

func (q *eventQueue) pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	return heap.Pop(q).(*Event)
}

func (q *eventQueue) len() int { return len(q.events) }
