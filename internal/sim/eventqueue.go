package sim

import "container/heap"

// Priority orders events that share the same timestamp. Lower values run
// first. Using explicit priorities keeps simultaneous events (for example a
// job completion freeing processors and a job arrival wanting them)
// deterministic without depending on scheduling order.
type Priority int

// Standard priorities used by the cluster model. Completions drain before
// arrivals are admitted, mirroring the behaviour of real resource managers
// that process finished jobs before considering new submissions.
const (
	// PriorityFault runs before completions: a node that dies at the same
	// instant a slice would finish kills that slice — the conservative
	// (and deterministic) reading of a tie that has probability zero under
	// continuous failure distributions.
	PriorityFault      Priority = -20
	PriorityCompletion Priority = -10
	PriorityDefault    Priority = 0
	PriorityArrival    Priority = 10
	PriorityMonitor    Priority = 20
)

// Handler is the callback attached to a scheduled event. It receives the
// engine so it may schedule follow-up events.
type Handler func(e *Engine)

// Event is a single entry in the simulation calendar. Events are owned by
// the engine that scheduled them: once an event has fired (or been
// cancelled) the engine recycles it through an intrusive freelist, so a
// caller must not retain an *Event past the point where its handler ran.
type Event struct {
	Time     float64
	Priority Priority
	seq      uint64
	fn       Handler
	canceled bool
	// recycled guards the freelist: it is set while the event sits on the
	// engine's freelist, and any Cancel of such a stale pointer panics
	// instead of silently corrupting an unrelated reused event.
	recycled bool
	// queued tracks calendar membership, so Cancel can tell a pending
	// event (detachable) from one that is currently firing.
	queued bool
	eng    *Engine // owning engine, for O(log n) Cancel and recycling
	index  int     // heap position (binary-heap event set); -1 off-heap
	next   *Event  // chain link (calendar queue) or freelist link (engine)
}

// eventSet is the future-event-set abstraction: the engine works with
// either the binary heap (default) or the calendar queue.
type eventSet interface {
	push(ev *Event)
	pop() *Event
	// len reports live (non-cancelled) events still queued.
	len() int
	// remove detaches a cancelled event immediately when the set supports
	// it, reporting whether the event left the set. Implementations that
	// keep lazy deletion return false and account the event as dead.
	remove(ev *Event) bool
	// drain empties the set, invoking f on every event (cancelled or not).
	drain(f func(*Event))
}

// Cancel marks the event so its handler will not run. On the binary-heap
// event set the event is removed in O(log n) and recycled immediately; the
// calendar queue keeps lazy deletion (the dead entry is dropped when its
// bucket chain is popped) but accounts it so Pending stays live-only.
// Cancelling an event that the engine has already recycled panics: the
// caller held a stale pointer, and a silent cancel could hit whatever
// event reused that allocation.
func (ev *Event) Cancel() {
	if ev.recycled {
		panic("sim: Cancel of a recycled event (stale *Event retained after it fired)")
	}
	if ev.canceled {
		return
	}
	ev.canceled = true
	if ev.eng != nil && ev.queued {
		ev.eng.cancelEvent(ev)
	}
}

// Canceled reports whether Cancel has been called on the event.
func (ev *Event) Canceled() bool { return ev.canceled }

// eventQueue is a binary heap of events ordered by (Time, Priority, seq).
type eventQueue struct {
	events []*Event
}

var _ heap.Interface = (*eventQueue)(nil)

func (q *eventQueue) Len() int { return len(q.events) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(q.events)
	q.events = append(q.events, ev)
}

func (q *eventQueue) Pop() any {
	old := q.events
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	q.events = old[:n-1]
	return ev
}

func (q *eventQueue) push(ev *Event) {
	ev.queued = true
	heap.Push(q, ev)
}

func (q *eventQueue) pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	ev := heap.Pop(q).(*Event)
	ev.queued = false
	return ev
}

// len is live-only by construction: cancelled events are removed eagerly.
func (q *eventQueue) len() int { return len(q.events) }

// remove detaches a cancelled event in O(log n) using its tracked heap
// index, so long simulations with heavy Cancel traffic (every PSNode
// reschedule cancels its previous update event) cannot grow the heap with
// dead entries.
func (q *eventQueue) remove(ev *Event) bool {
	if !ev.queued || ev.index < 0 || ev.index >= len(q.events) || q.events[ev.index] != ev {
		return false
	}
	heap.Remove(q, ev.index)
	ev.queued = false
	return true
}

func (q *eventQueue) drain(f func(*Event)) {
	for i, ev := range q.events {
		q.events[i] = nil
		ev.index = -1
		ev.queued = false
		f(ev)
	}
	q.events = q.events[:0]
}
