package sim

import (
	"math"
	"sort"
)

// Welford accumulates mean and variance online in a numerically stable way.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// VariancePop returns the population variance (dividing by n), matching the
// paper's eq. 6 which uses the population form for the risk metric.
func (w *Welford) VariancePop() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Variance returns the sample variance (dividing by n-1).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDevPop returns the population standard deviation.
func (w *Welford) StdDevPop() float64 { return math.Sqrt(w.VariancePop()) }

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sum returns n * mean, the total of all observations.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Merge combines another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	mean := w.mean + d*float64(o.n)/float64(n)
	m2 := w.m2 + o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	min := math.Min(w.min, o.min)
	max := math.Max(w.max, o.max)
	*w = Welford{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Sample retains every observation for exact quantiles. Suitable for the
// trace sizes used here (thousands of jobs).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean, or 0 with no observations.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation of
// the sorted sample, or 0 with no observations.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5-quantile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// Histogram counts observations into fixed-width bins over [lo, hi);
// values outside the range land in saturating edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("sim: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add places one observation.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	idx := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= bins {
		idx = bins - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations placed.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
