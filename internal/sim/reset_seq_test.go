package sim

import "testing"

// TestResetRestartsSequenceCounter pins an invariant the observability
// layer depends on: Reset rewinds the engine's event-sequence counter to
// zero, so a run replayed on a reused engine assigns every event the same
// internal sequence number (and therefore the same tie-break ordering at
// equal timestamps) as a run on a fresh engine. Trace output recorded
// through reused runScratch contexts stays byte-identical to fresh-built
// runs only because of this; if Reset ever stops rewinding seq, identical
// sweeps would order same-time events differently between the reuse and
// fresh paths.
func TestResetRestartsSequenceCounter(t *testing.T) {
	run := func(e *Engine) []int {
		var order []int
		// Three events at the same time and priority: execution order is
		// decided purely by the sequence counter.
		for i := 0; i < 3; i++ {
			i := i
			e.At(10, PriorityDefault, func(*Engine) { order = append(order, i) })
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}

	fresh := NewEngine()
	want := run(fresh)

	reused := NewEngine()
	// Dirty the counter well past zero, then Reset.
	for i := 0; i < 100; i++ {
		reused.At(float64(i), PriorityDefault, func(*Engine) {})
	}
	if err := reused.Run(); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	if reused.seq != 0 {
		t.Fatalf("Reset left seq = %d, want 0", reused.seq)
	}
	got := run(reused)

	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("same-time event order diverged after Reset: got %v, want %v", got, want)
		}
	}
	// And the post-run counters agree too: the reused engine is
	// indistinguishable from a fresh one.
	if fresh.seq != reused.seq {
		t.Errorf("seq after identical runs: fresh %d, reused %d", fresh.seq, reused.seq)
	}
}
