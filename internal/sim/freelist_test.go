package sim

import "testing"

// freelistEvents walks the engine's freelist.
func freelistEvents(e *Engine) []*Event {
	var out []*Event
	for ev := e.free; ev != nil; ev = ev.next {
		out = append(out, ev)
	}
	return out
}

// queuedEvents enumerates every event still inside the engine's event set
// without disturbing it.
func queuedEvents(e *Engine) []*Event {
	switch q := e.queue.(type) {
	case *eventQueue:
		return append([]*Event(nil), q.events...)
	case *calendarQueue:
		var out []*Event
		for _, head := range q.buckets {
			for ev := head; ev != nil; ev = ev.next {
				out = append(out, ev)
			}
		}
		return out
	default:
		return nil
	}
}

// checkFreelistDisjoint asserts the core freelist invariant: no event is
// reachable from both the calendar and the freelist, every freelisted
// event carries the recycled guard, and every queued event does not.
func checkFreelistDisjoint(t *testing.T, e *Engine) {
	t.Helper()
	onFree := map[*Event]bool{}
	for _, ev := range freelistEvents(e) {
		if onFree[ev] {
			t.Fatal("freelist contains a cycle or duplicate event")
		}
		onFree[ev] = true
		if !ev.recycled {
			t.Fatal("freelisted event without the recycled guard flag")
		}
		if ev.queued {
			t.Fatal("freelisted event still marked queued")
		}
		if ev.fn != nil {
			t.Fatal("freelisted event retains its handler")
		}
	}
	for _, ev := range queuedEvents(e) {
		if onFree[ev] {
			t.Fatalf("event at t=%g reachable from both calendar and freelist", ev.Time)
		}
		if ev.recycled {
			t.Fatalf("queued event at t=%g carries the recycled guard", ev.Time)
		}
	}
}

func TestFreelistDisjointFromCalendar(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func() *Engine
	}{{"heap", NewEngine}, {"calendar", NewEngineCalendar}} {
		t.Run(mk.name, func(t *testing.T) {
			e := mk.fn()
			r := NewRNG(11)
			var cancelable []*Event
			var chain Handler
			chain = func(e *Engine) {
				if e.Now() < 200 {
					e.After(1+r.Float64()*3, PriorityDefault, chain)
					ev := e.After(2+r.Float64()*5, PriorityCompletion, func(*Engine) {})
					if r.Bool(0.5) {
						ev.Cancel()
					} else {
						cancelable = append(cancelable, ev)
					}
				}
			}
			e.At(0, PriorityDefault, chain)
			for i := 0; i < 50; i++ {
				if ok, err := e.Step(); !ok || err != nil {
					break
				}
				checkFreelistDisjoint(t, e)
			}
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			checkFreelistDisjoint(t, e)
			if e.Pending() != 0 {
				t.Fatalf("Pending() = %d after full run", e.Pending())
			}
		})
	}
}

func TestEventReuseAfterFiring(t *testing.T) {
	e := NewEngine()
	fired := 0
	first := e.At(1, PriorityDefault, func(*Engine) { fired++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	second := e.At(2, PriorityDefault, func(*Engine) { fired++ })
	if first != second {
		t.Fatal("fired event was not recycled by the next At")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestCancelOfRecycledEventPanics(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, PriorityDefault, func(*Engine) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// ev has fired and sits on the freelist: a handler (or any caller)
	// cancelling the stale pointer must be caught loudly.
	defer func() {
		if recover() == nil {
			t.Error("Cancel of a recycled event did not panic")
		}
	}()
	ev.Cancel()
}

func TestCancelRemovesFromHeapImmediately(t *testing.T) {
	e := NewEngine()
	keep := e.At(5, PriorityDefault, func(*Engine) {})
	ev := e.At(3, PriorityDefault, func(*Engine) {})
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after Cancel, want 1 (live events only)", e.Pending())
	}
	checkFreelistDisjoint(t, e)
	_ = keep
}

func TestCalendarPendingIsLiveOnly(t *testing.T) {
	e := NewEngineCalendar()
	e.At(5, PriorityDefault, func(*Engine) {})
	ev := e.At(3, PriorityDefault, func(*Engine) {})
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after Cancel, want 1 (lazily deleted events excluded)", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
	checkFreelistDisjoint(t, e)
}

func TestEngineResetRestoresConstructorState(t *testing.T) {
	for _, mk := range []struct {
		name string
		fn   func() *Engine
	}{{"heap", NewEngine}, {"calendar", NewEngineCalendar}} {
		t.Run(mk.name, func(t *testing.T) {
			e := mk.fn()
			e.MaxEvents = 7
			e.SetHorizon(4)
			hits := 0
			e.At(1, PriorityDefault, func(*Engine) { hits++ })
			e.At(9, PriorityDefault, func(*Engine) { hits++ })
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if hits != 1 || e.Pending() != 1 {
				t.Fatalf("pre-reset hits=%d pending=%d", hits, e.Pending())
			}
			e.Reset()
			if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 || e.MaxEvents != 0 {
				t.Fatalf("Reset left now=%g pending=%d processed=%d maxEvents=%d",
					e.Now(), e.Pending(), e.Processed(), e.MaxEvents)
			}
			checkFreelistDisjoint(t, e)
			// The drained event must be reusable: a fresh run on the reset
			// engine behaves exactly like a run on a new engine.
			order := []float64{}
			e.At(2, PriorityDefault, func(e *Engine) { order = append(order, e.Now()) })
			e.At(1, PriorityDefault, func(e *Engine) { order = append(order, e.Now()) })
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			if len(order) != 2 || order[0] != 1 || order[1] != 2 {
				t.Fatalf("post-reset order = %v", order)
			}
			checkFreelistDisjoint(t, e)
		})
	}
}

func TestEngineSteadyStateAllocationFree(t *testing.T) {
	e := NewEngine()
	var ping Handler
	remaining := 0
	ping = func(e *Engine) {
		if remaining > 0 {
			remaining--
			e.After(1, PriorityDefault, ping)
			ev := e.After(0.5, PriorityCompletion, func(*Engine) {})
			ev.Cancel()
		}
	}
	run := func() {
		remaining = 100
		e.At(e.Now(), PriorityDefault, ping)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the freelist
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Fatalf("steady-state event loop allocates %.1f times per run, want 0", avg)
	}
}
