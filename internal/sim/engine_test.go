package sim

import (
	"math"
	"testing"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(3, PriorityDefault, func(*Engine) { order = append(order, 3) })
	e.At(1, PriorityDefault, func(*Engine) { order = append(order, 1) })
	e.At(2, PriorityDefault, func(*Engine) { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineSameTimePriorityOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(5, PriorityArrival, func(*Engine) { order = append(order, "arrival") })
	e.At(5, PriorityCompletion, func(*Engine) { order = append(order, "completion") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "completion" || order[1] != "arrival" {
		t.Fatalf("order = %v, want [completion arrival]", order)
	}
}

func TestEngineSameTimeSamePriorityFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, PriorityDefault, func(*Engine) { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO insertion order", order)
		}
	}
}

func TestEngineHandlerSchedulesFollowUp(t *testing.T) {
	e := NewEngine()
	var hits int
	var ping Handler
	ping = func(e *Engine) {
		hits++
		if hits < 5 {
			e.After(1, PriorityDefault, ping)
		}
	}
	e.At(0, PriorityDefault, ping)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 5 {
		t.Fatalf("hits = %d, want 5", hits)
	}
	if e.Now() != 4 {
		t.Fatalf("Now() = %v, want 4", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(1, PriorityDefault, func(*Engine) { ran = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event still ran")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	var hits int
	e.At(1, PriorityDefault, func(e *Engine) { hits++; e.Stop() })
	e.At(2, PriorityDefault, func(*Engine) { hits++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (Stop should halt the loop)", hits)
	}
	// Run can resume afterwards.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d after resume, want 2", hits)
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	var hits int
	e.At(1, PriorityDefault, func(*Engine) { hits++ })
	e.At(10, PriorityDefault, func(*Engine) { hits++ })
	e.SetHorizon(5)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (event beyond horizon must not run)", hits)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, PriorityDefault, func(e *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, PriorityDefault, func(*Engine) {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineNaNTimePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("scheduling at NaN did not panic")
		}
	}()
	e.At(math.NaN(), PriorityDefault, func(*Engine) {})
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 10
	var loop Handler
	loop = func(e *Engine) { e.After(1, PriorityDefault, loop) }
	e.At(0, PriorityDefault, loop)
	if err := e.Run(); err != ErrEventBudget {
		t.Fatalf("Run() = %v, want ErrEventBudget", err)
	}
}

func TestEngineStep(t *testing.T) {
	e := NewEngine()
	var hits int
	e.At(1, PriorityDefault, func(*Engine) { hits++ })
	e.At(2, PriorityDefault, func(*Engine) { hits++ })
	if ok, err := e.Step(); !ok || err != nil {
		t.Fatalf("Step() = %v, %v with events pending", ok, err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d after one step, want 1", hits)
	}
	if ok, err := e.Step(); !ok || err != nil {
		t.Fatalf("Step() = %v, %v with one event pending", ok, err)
	}
	if ok, err := e.Step(); ok || err != nil {
		t.Fatalf("Step() = %v, %v with empty calendar", ok, err)
	}
}

func TestEngineStepHonorsHorizon(t *testing.T) {
	e := NewEngine()
	var hits int
	e.At(1, PriorityDefault, func(*Engine) { hits++ })
	e.At(10, PriorityDefault, func(*Engine) { hits++ })
	e.SetHorizon(5)
	if ok, err := e.Step(); !ok || err != nil {
		t.Fatalf("Step() = %v, %v for in-horizon event", ok, err)
	}
	// The t=10 event is beyond the horizon: Step must refuse to process it
	// and leave it in the calendar, exactly like Run.
	if ok, err := e.Step(); ok || err != nil {
		t.Fatalf("Step() = %v, %v for past-horizon event, want false, nil", ok, err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1 (event beyond horizon must not run)", hits)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1 (past-horizon event must stay queued)", e.Pending())
	}
	e.SetHorizon(20)
	if ok, err := e.Step(); !ok || err != nil {
		t.Fatalf("Step() = %v, %v after widening horizon", ok, err)
	}
	if hits != 2 {
		t.Fatalf("hits = %d after widened horizon, want 2", hits)
	}
}

func TestEngineStepHonorsEventBudget(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 2
	for i := 0; i < 3; i++ {
		e.At(float64(i), PriorityDefault, func(*Engine) {})
	}
	for i := 0; i < 2; i++ {
		if ok, err := e.Step(); !ok || err != nil {
			t.Fatalf("Step() = %v, %v within budget", ok, err)
		}
	}
	if ok, err := e.Step(); ok || err != ErrEventBudget {
		t.Fatalf("Step() = %v, %v beyond budget, want false, ErrEventBudget", ok, err)
	}
}

func TestEngineProcessedCountsOnlyRunHandlers(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, PriorityDefault, func(*Engine) {})
	ev.Cancel()
	e.At(2, PriorityDefault, func(*Engine) {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.Processed(); got != 1 {
		t.Fatalf("Processed() = %d, want 1", got)
	}
}
