package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardPool is a low-latency fork-join pool for the sharded engine's
// barrier phases. A sharded run executes one phase per global event, so
// the dispatch cost is paid millions of times per simulation; channels or
// sync.WaitGroup per phase would dominate short phases. The pool instead
// keeps one goroutine per worker parked on an atomic epoch: publishing a
// task is one atomic add per worker, and a worker that recently ran spins
// briefly before parking, so back-to-back phases hand off without any
// scheduler round trip.
//
// The calling goroutine participates as worker 0, so a pool of K workers
// occupies exactly K goroutines during a phase (K-1 spawned plus the
// coordinator) and a pool of 1 runs entirely inline with zero spawned
// goroutines — the K=1 sharded run degenerates to the sequential engine
// plus bookkeeping.
//
// All cross-goroutine publication goes through sync/atomic operations,
// which establish happens-before edges (and are understood by the race
// detector), so phase bodies may freely touch their shard's plain state.
type ShardPool struct {
	workers []*poolWorker
	task    func(worker int)
	// pending counts workers that have not finished the current task;
	// Run returns when it hits zero.
	pending atomic.Int64
	closing atomic.Bool
	wg      sync.WaitGroup
	// Contention counters, exposed via Stats so service-mode scrapes can
	// see whether the pool is handing phases off hot (spins) or going
	// through the scheduler (parks/wakes). Updated with one atomic add per
	// await/Run exit, so the hot spin loops stay untouched.
	parks atomic.Uint64
	wakes atomic.Uint64
	spins atomic.Uint64
}

// PoolStats is a point-in-time snapshot of a pool's contention counters.
type PoolStats struct {
	// Parks counts times a worker gave up spinning and blocked on its
	// wake token.
	Parks uint64
	// Wakes counts wake tokens posted to parked workers.
	Wakes uint64
	// SpinIters counts spin-loop iterations across workers awaiting a
	// task and the coordinator awaiting phase completion.
	SpinIters uint64
}

// Stats returns the pool's cumulative contention counters. Safe to call
// concurrently with Run from another goroutine (a metrics scraper); the
// three loads are independent, so the snapshot is only loosely coherent.
func (p *ShardPool) Stats() PoolStats {
	return PoolStats{
		Parks:     p.parks.Load(),
		Wakes:     p.wakes.Load(),
		SpinIters: p.spins.Load(),
	}
}

// poolWorker is one spawned worker's parking slot.
type poolWorker struct {
	pool *ShardPool
	id   int
	// epoch is bumped by the coordinator to publish a new task. The worker
	// spins on it and parks when it stays unchanged.
	epoch atomic.Uint64
	// parked is the handshake flag: the worker CASes false->true before
	// blocking on wake, and the coordinator CASes true->false before
	// sending exactly one wake token, so tokens and parks stay 1:1.
	parked atomic.Bool
	wake   chan struct{}
}

// poolSpinIters bounds how long an idle worker spins before parking.
// Spinning covers the back-to-back phases of a hot barrier loop; parking
// keeps an idle pool (between runs, or during long sequential stretches)
// off the CPU.
const poolSpinIters = 2048

// NewShardPool returns a pool of k workers (k >= 1). The pool must be
// Closed when the run ends or its k-1 spawned goroutines leak.
func NewShardPool(k int) *ShardPool {
	if k < 1 {
		panic("sim: ShardPool needs at least one worker")
	}
	p := &ShardPool{workers: make([]*poolWorker, k)}
	for i := 1; i < k; i++ {
		w := &poolWorker{pool: p, id: i, wake: make(chan struct{}, 1)}
		p.workers[i] = w
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Workers returns the pool size, including the coordinator's slot 0.
func (p *ShardPool) Workers() int { return len(p.workers) }

// Run executes fn(w) for every worker index w in [0, Workers()) and
// returns when all invocations have completed. fn(0) runs on the calling
// goroutine. Run must not be called concurrently with itself or Close.
func (p *ShardPool) Run(fn func(worker int)) {
	n := len(p.workers)
	if n == 1 {
		fn(0)
		return
	}
	p.task = fn
	p.pending.Store(int64(n - 1))
	for _, w := range p.workers[1:] {
		w.post()
	}
	fn(0)
	spin := 0
	for ; p.pending.Load() != 0; spin++ {
		if spin%64 == 63 {
			runtime.Gosched()
		}
	}
	if spin > 0 {
		p.spins.Add(uint64(spin))
	}
}

// Close terminates the spawned workers and waits for them to exit. The
// pool must be idle (no Run in flight).
func (p *ShardPool) Close() {
	p.closing.Store(true)
	for _, w := range p.workers[1:] {
		w.post()
	}
	p.wg.Wait()
}

// post publishes a new epoch to the worker and wakes it if parked.
func (w *poolWorker) post() {
	w.epoch.Add(1)
	if w.parked.CompareAndSwap(true, false) {
		w.pool.wakes.Add(1)
		w.wake <- struct{}{}
	}
}

func (w *poolWorker) loop() {
	defer w.pool.wg.Done()
	var last uint64
	for {
		e := w.epoch.Load()
		if e == last {
			e = w.await(last)
		}
		last = e
		if w.pool.closing.Load() {
			return
		}
		w.pool.task(w.id)
		w.pool.pending.Add(-1)
	}
}

// await blocks until the epoch moves past last, spinning first and then
// parking under the 1:1 token handshake with post.
func (w *poolWorker) await(last uint64) uint64 {
	for i := 0; i < poolSpinIters; i++ {
		if e := w.epoch.Load(); e != last {
			w.pool.spins.Add(uint64(i + 1))
			return e
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
	w.pool.spins.Add(poolSpinIters)
	for {
		if w.parked.CompareAndSwap(false, true) {
			if w.epoch.Load() != last {
				// A post raced with parking. Either it saw parked and is
				// sending a token (consume it), or it missed the flag and
				// we can simply unpark ourselves.
				if !w.parked.CompareAndSwap(true, false) {
					w.pool.parks.Add(1)
					<-w.wake
				}
			} else {
				w.pool.parks.Add(1)
				<-w.wake
			}
		}
		if e := w.epoch.Load(); e != last {
			return e
		}
	}
}
