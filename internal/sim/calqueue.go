package sim

import (
	"math"
	"sort"
)

// calendarQueue is Brown's calendar queue: a ring of time buckets, each a
// sorted chain, giving amortized O(1) enqueue/dequeue for the
// near-uniform event-time distributions discrete-event simulations
// produce. It resizes (doubling/halving buckets and re-deriving the
// bucket width from a sample of inter-event gaps) when occupancy drifts.
//
// The engine defaults to the binary heap; BenchmarkEventQueue* compares
// the two and NewEngineCalendar opts a simulation in. Both orderings are
// identical: (time, priority, insertion sequence).
// Cancellation is lazy here, unlike the binary heap's O(log n) removal:
// detaching from a singly linked bucket chain would need a full chain walk,
// so a cancelled event stays chained until pop reaches it and the engine
// recycles it. The canceled counter keeps len() live-only regardless, and
// the population of dead entries is bounded by the number of pending
// cancelled events, which the engine's freelist reclaims as they surface.
type calendarQueue struct {
	buckets    []*Event // singly linked chains via Event.next, sorted
	width      float64  // time span of one bucket
	bucketBase float64  // start time of bucket 0's current year
	lastTime   float64  // dequeue cursor: never goes backwards
	lastBucket int
	size       int
	canceled   int // dead entries still chained (lazy deletion)
	// sampleScratch is reused by sampledWidth so periodic resizes of a
	// large calendar do not allocate.
	sampleScratch []float64
}

// calendar chain linkage lives on Event to avoid per-node allocations.
// (next is only meaningful while the event is inside a calendarQueue.)

func newCalendarQueue() *calendarQueue {
	q := &calendarQueue{}
	q.reset(2, 1.0, 0)
	return q
}

func (q *calendarQueue) reset(nbuckets int, width, start float64) {
	q.buckets = make([]*Event, nbuckets)
	q.width = width
	q.bucketBase = start
	q.lastTime = start
	q.lastBucket = q.bucketFor(start)
}

// len reports live events only; lazily deleted entries are excluded.
func (q *calendarQueue) len() int { return q.size - q.canceled }

// remove implements lazy deletion: the event stays chained (detaching from
// a singly linked bucket would cost a chain walk) but is accounted dead so
// len() stays live-only. Returns false: the engine must not recycle the
// event until pop surfaces it.
func (q *calendarQueue) remove(ev *Event) bool {
	q.canceled++
	return false
}

// drain empties every bucket chain, handing each event to f, and rewinds
// the cursor to time zero while keeping the learned bucket width.
func (q *calendarQueue) drain(f func(*Event)) {
	for i, head := range q.buckets {
		q.buckets[i] = nil
		for ev := head; ev != nil; {
			nx := ev.next
			ev.next = nil
			ev.queued = false
			f(ev)
			ev = nx
		}
	}
	q.size = 0
	q.canceled = 0
	q.bucketBase = 0
	q.lastTime = 0
	q.lastBucket = q.bucketFor(0)
}

func (q *calendarQueue) bucketFor(t float64) int {
	idx := int(math.Floor((t - q.bucketBase) / q.width))
	n := len(q.buckets)
	idx %= n
	if idx < 0 {
		idx += n
	}
	return idx
}

// less orders events by (time, priority, seq).
func eventLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q *calendarQueue) push(ev *Event) {
	ev.queued = true
	if ev.canceled {
		// A dead entry re-enters the calendar (the engine re-queues an
		// event that surfaced beyond its horizon, and resize re-chains
		// everything it collected). pop decremented the counter when the
		// entry surfaced, so it must be re-accounted here or len() would
		// overcount live events for the rest of the run.
		q.canceled++
	}
	idx := q.bucketFor(ev.Time)
	// Insert into the sorted chain.
	head := q.buckets[idx]
	if head == nil || eventLess(ev, head) {
		ev.next = head
		q.buckets[idx] = ev
	} else {
		cur := head
		for cur.next != nil && !eventLess(ev, cur.next) {
			cur = cur.next
		}
		ev.next = cur.next
		cur.next = ev
	}
	q.size++
	if q.size > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

func (q *calendarQueue) pop() *Event {
	if q.size == 0 {
		return nil
	}
	n := len(q.buckets)
	// Scan buckets starting at the cursor; an event belongs to the
	// current "year" if its time falls inside the bucket's active window.
	idx := q.lastBucket
	yearEnd := q.bucketStart(idx) + q.width
	for scanned := 0; scanned < n; scanned++ {
		if head := q.buckets[idx]; head != nil && head.Time < yearEnd {
			q.buckets[idx] = head.next
			head.next = nil
			head.queued = false
			q.size--
			if head.canceled {
				q.canceled--
			}
			q.lastBucket = idx
			q.lastTime = head.Time
			if q.size < len(q.buckets)/4 && len(q.buckets) > 2 {
				q.resize(len(q.buckets) / 2)
			}
			return head
		}
		idx = (idx + 1) % n
		yearEnd += q.width
	}
	// No event in the current year: jump to the globally earliest event
	// (direct search) and realign the cursor.
	min := -1
	var minEv *Event
	for i, head := range q.buckets {
		if head == nil {
			continue
		}
		if minEv == nil || eventLess(head, minEv) {
			minEv = head
			min = i
		}
	}
	q.buckets[min] = minEv.next
	minEv.next = nil
	minEv.queued = false
	q.size--
	if minEv.canceled {
		q.canceled--
	}
	q.lastBucket = q.bucketFor(minEv.Time)
	q.lastTime = minEv.Time
	return minEv
}

// bucketStart returns the lower time bound of the bucket's active window
// for the cursor's current sweep.
func (q *calendarQueue) bucketStart(idx int) float64 {
	n := len(q.buckets)
	// The window containing lastTime for bucket lastBucket:
	yearLen := q.width * float64(n)
	year := math.Floor((q.lastTime - q.bucketBase) / yearLen)
	start := q.bucketBase + year*yearLen + float64(idx)*q.width
	// Buckets behind the cursor belong to the next year.
	if idx < q.lastBucket {
		start += yearLen
	}
	// Guard against the cursor sitting past this bucket's window.
	for start+q.width <= q.lastTime {
		start += yearLen
	}
	return start
}

// resize rebuilds the calendar with a new bucket count and a width
// re-derived from a bounded sample of the queued events.
func (q *calendarQueue) resize(nbuckets int) {
	events := make([]*Event, 0, q.size)
	for _, head := range q.buckets {
		for ev := head; ev != nil; {
			nx := ev.next
			ev.next = nil
			events = append(events, ev)
			ev = nx
		}
	}
	width := q.width
	if len(events) >= 2 {
		if w := q.sampledWidth(events); w > 0 {
			width = w
		}
	}
	if width <= 0 || math.IsInf(width, 0) || math.IsNaN(width) {
		width = 1
	}
	q.reset(nbuckets, width, q.lastTime)
	// push re-derives both counters for the re-chained population, dead
	// entries included.
	q.size = 0
	q.canceled = 0
	for _, ev := range events {
		q.push(ev)
	}
}

// sampledWidth estimates the bucket width as ~3x the typical inter-event
// gap, from the median gap of a bounded, deterministically strided sample
// of event times. The previous heuristic derived the width from the full
// min-max span divided by the population, which a single far-future event
// (a fault horizon, a long-idle monitor tick) inflates by orders of
// magnitude: with 100k+ pending events nearly everything then lands in a
// handful of buckets and every push degenerates into a long sorted-chain
// walk. The median gap is robust to such outliers, and capping the sample
// keeps resize O(n) with a tiny constant regardless of calendar size.
// Returns 0 when no positive gap exists (all sampled times equal).
func (q *calendarQueue) sampledWidth(events []*Event) float64 {
	const maxSample = 64
	n := len(events)
	k := n
	if k > maxSample {
		k = maxSample
	}
	if cap(q.sampleScratch) < k {
		q.sampleScratch = make([]float64, k)
	}
	s := q.sampleScratch[:k]
	stride := n / k
	for i := 0; i < k; i++ {
		s[i] = events[i*stride].Time
	}
	sort.Float64s(s)
	// Collapse to consecutive gaps in place, then pick the median of the
	// positive ones.
	for i := 0; i < k-1; i++ {
		s[i] = s[i+1] - s[i]
	}
	s = s[:k-1]
	sort.Float64s(s)
	first := 0
	for first < len(s) && s[first] <= 0 {
		first++
	}
	if first == len(s) {
		return 0
	}
	median := s[(first+len(s))/2]
	// A sample gap spans ~n/k events, so scale it back to a per-event gap
	// before applying the standard 3x rule.
	return 3 * median * float64(k) / float64(n)
}
