package sched

import (
	"math"
	"testing"
	"testing/quick"

	"clustersched/internal/sim"
)

func TestProfileEmptyIsAllFree(t *testing.T) {
	p := NewProfile(8)
	if p.Total() != 8 {
		t.Fatalf("Total = %d", p.Total())
	}
	for _, tm := range []float64{0, 1, 1e9} {
		if got := p.FreeAt(tm); got != 8 {
			t.Fatalf("FreeAt(%g) = %d", tm, got)
		}
	}
	if got := p.EarliestSlot(5, 100, 8); got != 5 {
		t.Fatalf("EarliestSlot = %v, want immediate", got)
	}
}

func TestProfileReserveAndQuery(t *testing.T) {
	p := NewProfile(8)
	p.Reserve(10, 20, 5)
	if got := p.FreeAt(9); got != 8 {
		t.Fatalf("FreeAt(9) = %d", got)
	}
	if got := p.FreeAt(10); got != 3 {
		t.Fatalf("FreeAt(10) = %d", got)
	}
	if got := p.FreeAt(19.9); got != 3 {
		t.Fatalf("FreeAt(19.9) = %d", got)
	}
	if got := p.FreeAt(20); got != 8 {
		t.Fatalf("FreeAt(20) = %d", got)
	}
}

func TestProfileEarliestSlotSkipsBusyWindow(t *testing.T) {
	p := NewProfile(8)
	p.Reserve(10, 20, 5)
	// 4 procs for duration 15 starting at 0 would span the busy window
	// where only 3 are free, so the earliest start is 20.
	if got := p.EarliestSlot(0, 15, 4); got != 20 {
		t.Fatalf("EarliestSlot = %v, want 20", got)
	}
	// 3 procs fit throughout.
	if got := p.EarliestSlot(0, 15, 3); got != 0 {
		t.Fatalf("EarliestSlot = %v, want 0", got)
	}
	// Short job fits before the window.
	if got := p.EarliestSlot(0, 10, 8); got != 0 {
		t.Fatalf("EarliestSlot = %v, want 0 (finishes exactly at window start)", got)
	}
}

func TestProfileEarliestSlotAfterConstraint(t *testing.T) {
	p := NewProfile(4)
	p.Reserve(0, 100, 4)
	if got := p.EarliestSlot(50, 10, 1); got != 100 {
		t.Fatalf("EarliestSlot = %v, want 100", got)
	}
}

func TestProfileImpossibleRequest(t *testing.T) {
	p := NewProfile(4)
	if got := p.EarliestSlot(0, 10, 5); !math.IsInf(got, 1) {
		t.Fatalf("EarliestSlot = %v, want +Inf", got)
	}
}

func TestProfileOverReservationPanics(t *testing.T) {
	p := NewProfile(4)
	p.Reserve(0, 10, 4)
	defer func() {
		if recover() == nil {
			t.Error("over-reservation did not panic")
		}
	}()
	p.Reserve(5, 6, 1)
}

func TestProfileBadReservationPanics(t *testing.T) {
	p := NewProfile(4)
	defer func() {
		if recover() == nil {
			t.Error("inverted interval did not panic")
		}
	}()
	p.Reserve(10, 5, 1)
}

func TestProfileStackedReservations(t *testing.T) {
	p := NewProfile(10)
	p.Reserve(0, 10, 3)
	p.Reserve(5, 15, 3)
	p.Reserve(8, 12, 3)
	if got := p.FreeAt(9); got != 1 {
		t.Fatalf("FreeAt(9) = %d, want 1", got)
	}
	if got := p.FreeAt(11); got != 4 {
		t.Fatalf("FreeAt(11) = %d, want 4", got)
	}
	if got := p.EarliestSlot(0, 5, 9); got != 15 {
		t.Fatalf("EarliestSlot = %v, want 15", got)
	}
}

func TestProfileSlotThenReserveProperty(t *testing.T) {
	// Whatever EarliestSlot returns must actually be reservable, and the
	// slot must really be free throughout.
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		p := NewProfile(16)
		for i := 0; i < 10; i++ {
			procs := 1 + r.Intn(16)
			dur := 1 + r.Float64()*50
			after := r.Float64() * 100
			start := p.EarliestSlot(after, dur, procs)
			if math.IsInf(start, 1) || start < after {
				return false
			}
			if !p.fits(start, start+dur, procs) {
				return false
			}
			p.Reserve(start, start+dur, procs)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewProfilePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewProfile(0) did not panic")
		}
	}()
	NewProfile(0)
}
