package sched

// Validation of the simulation substrate against closed-form queueing
// theory: a deadline-unaware FCFS cluster fed Poisson arrivals with
// exponential service is an M/M/c queue, whose mean response time is
// exact. Agreement here validates the event engine, the space-shared
// cluster, and the FCFS queue discipline end to end.

import (
	"math"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// mmcMeanResponse returns the exact M/M/c mean response time (waiting +
// service) for arrival rate lambda, service rate mu per server, c servers.
func mmcMeanResponse(lambda, mu float64, c int) float64 {
	rho := lambda / (float64(c) * mu)
	if rho >= 1 {
		return math.Inf(1)
	}
	// Erlang C: probability an arrival waits.
	a := lambda / mu
	sum := 0.0
	term := 1.0
	for k := 0; k < c; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	top := term * a / float64(c) / (1 - rho)
	pWait := top / (sum + top)
	wq := pWait / (float64(c)*mu - lambda)
	return wq + 1/mu
}

// expJobs builds n single-processor jobs with Poisson arrivals (rate
// lambda) and exponential runtimes (rate mu), with deadlines far enough
// away to never bind.
func expJobs(seed uint64, n int, lambda, mu float64) []workload.Job {
	r := sim.NewRNG(seed)
	arr := r.Stream(1)
	svc := r.Stream(2)
	jobs := make([]workload.Job, n)
	t := 0.0
	for i := range jobs {
		if i > 0 {
			t += arr.Exp(1 / lambda)
		}
		run := svc.Exp(1 / mu)
		if run < 1e-9 {
			run = 1e-9
		}
		jobs[i] = workload.Job{
			ID: i + 1, Submit: t, Runtime: run, TraceEstimate: run,
			NumProc: 1, Deadline: 1e12,
		}
	}
	return jobs
}

// meanResponse runs the jobs through deadline-unaware FCFS on c nodes and
// returns the measured mean response time.
func meanResponse(t *testing.T, jobs []workload.Job, c int) float64 {
	t.Helper()
	cl, err := cluster.NewSpaceShared(c, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := NewFCFS(cl, rec)
	p.DeadlineAware = false
	e := sim.NewEngine()
	if err := core.RunSimulation(e, p, rec, jobs, 0); err != nil {
		t.Fatal(err)
	}
	var w sim.Welford
	for _, res := range rec.Results() {
		if res.Outcome == metrics.Met || res.Outcome == metrics.Missed {
			w.Add(res.Response)
		}
	}
	if w.N() != len(jobs) {
		t.Fatalf("completed %d of %d jobs", w.N(), len(jobs))
	}
	return w.Mean()
}

func TestMM1AgainstTheory(t *testing.T) {
	// λ = 0.7, µ = 1: M/M/1 mean response = 1/(µ−λ) = 3.333…
	const lambda, mu = 0.7, 1.0
	jobs := expJobs(11, 60000, lambda, mu)
	got := meanResponse(t, jobs, 1)
	want := mmcMeanResponse(lambda, mu, 1)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("M/M/1 mean response = %.3f, theory %.3f (off %.1f%%)", got, want, rel*100)
	}
}

func TestMM1TheoryFormulaSelfCheck(t *testing.T) {
	// For c=1 the Erlang C expression must reduce to 1/(µ−λ).
	for _, lambda := range []float64{0.1, 0.5, 0.9} {
		want := 1 / (1 - lambda)
		if got := mmcMeanResponse(lambda, 1, 1); math.Abs(got-want) > 1e-9 {
			t.Fatalf("mmcMeanResponse(%g,1,1) = %v, want %v", lambda, got, want)
		}
	}
	if !math.IsInf(mmcMeanResponse(2, 1, 1), 1) {
		t.Fatal("overloaded queue should be infinite")
	}
}

func TestMMCAgainstTheory(t *testing.T) {
	// 4 servers at ρ = 0.8: λ = 3.2, µ = 1.
	const lambda, mu, servers = 3.2, 1.0, 4
	jobs := expJobs(13, 80000, lambda, mu)
	got := meanResponse(t, jobs, servers)
	want := mmcMeanResponse(lambda, mu, servers)
	if rel := math.Abs(got-want) / want; rel > 0.05 {
		t.Fatalf("M/M/4 mean response = %.3f, theory %.3f (off %.1f%%)", got, want, rel*100)
	}
}

func TestMMCLightLoadResponseIsService(t *testing.T) {
	// At near-zero load, response ≈ service time 1/µ.
	jobs := expJobs(17, 20000, 0.01, 1.0)
	got := meanResponse(t, jobs, 4)
	if math.Abs(got-1) > 0.05 {
		t.Fatalf("light-load response = %.3f, want ≈ 1", got)
	}
}

// TestTimeSharedWorkConservationExact validates the time-shared engine's
// central invariant against an exact value: a work-conserving node given
// a batch of jobs at t=0 must finish the last one at exactly the total
// work, regardless of how the deadline-proportional weights slice the
// capacity along the way.
func TestTimeSharedWorkConservationExact(t *testing.T) {
	r := sim.NewRNG(23)
	cl, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	// Admit everything: a huge sigma threshold turns LibraRisk into a
	// pure proportional-share executor.
	p := core.NewLibraRisk(cl, rec)
	p.SigmaThreshold = math.Inf(1)
	e := sim.NewEngine()
	var total float64
	n := 200
	for i := 0; i < n; i++ {
		run := 1 + r.Float64()*100
		total += run
		p.Submit(e, workload.Job{
			ID: i + 1, Submit: 0, Runtime: run, TraceEstimate: run,
			NumProc: 1, Deadline: 10 + r.Float64()*1e5,
		}, run)
	}
	e.MaxEvents = 10_000_000
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	var last float64
	completed := 0
	for _, res := range rec.Results() {
		if res.Outcome == metrics.Met || res.Outcome == metrics.Missed {
			completed++
			if res.Finish > last {
				last = res.Finish
			}
		}
	}
	if completed != n {
		t.Fatalf("completed %d of %d", completed, n)
	}
	if rel := math.Abs(last-total) / total; rel > 1e-3 {
		t.Fatalf("last completion %.3f, total work %.3f (off %.3g): node was not work-conserving", last, total, rel)
	}
}
