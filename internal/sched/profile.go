// Package sched provides related-work comparison schedulers beyond the
// paper's three policies: FCFS, EASY and conservative backfilling, and a
// QoPS-style slack admission control. The paper's §2 positions LibraRisk
// against these families; having them runnable makes the comparison
// concrete. All run on the space-shared substrate and plan ahead from
// runtime estimates via a processor-availability profile.
package sched

import (
	"fmt"
	"math"
	"sort"
)

// Profile is a processor-availability timeline: how many processors are
// free at each future instant, given planned (estimated) completions and
// reservations. It supports the two queries backfilling needs: "when is
// the earliest slot for (procs, duration) at or after t?" and "reserve
// it".
//
// The profile counts processors rather than tracking identities, which is
// exact for homogeneous clusters (the paper's setting) and a standard
// approximation otherwise.
type Profile struct {
	total int
	// steps are changes to availability: at steps[i].t, free becomes
	// steps[i].free. Sorted by t; the state before steps[0] is total.
	steps []profileStep
}

type profileStep struct {
	t    float64
	free int
}

// NewProfile returns an all-free profile for a cluster of total
// processors.
func NewProfile(total int) *Profile {
	if total <= 0 {
		panic(fmt.Sprintf("sched: profile with %d processors", total))
	}
	return &Profile{total: total}
}

// Total returns the cluster size the profile covers.
func (p *Profile) Total() int { return p.total }

// FreeAt returns the number of free processors at time t under the
// current plan.
func (p *Profile) FreeAt(t float64) int {
	free := p.total
	for _, s := range p.steps {
		if s.t > t {
			break
		}
		free = s.free
	}
	return free
}

// Reserve blocks procs processors during [start, end). It panics if the
// interval is invalid; it is the caller's job to query EarliestSlot first,
// so over-reservation indicates a planner bug and must not pass silently.
func (p *Profile) Reserve(start, end float64, procs int) {
	if end <= start || procs <= 0 {
		panic(fmt.Sprintf("sched: bad reservation [%g, %g) x%d", start, end, procs))
	}
	p.ensureStep(start)
	p.ensureStep(end)
	for i := range p.steps {
		if p.steps[i].t >= start && p.steps[i].t < end {
			p.steps[i].free -= procs
			if p.steps[i].free < 0 {
				panic(fmt.Sprintf("sched: over-reservation at t=%g", p.steps[i].t))
			}
		}
	}
}

// ensureStep inserts a step boundary at t carrying the availability in
// force just before it.
func (p *Profile) ensureStep(t float64) {
	idx := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].t >= t })
	if idx < len(p.steps) && p.steps[idx].t == t {
		return
	}
	free := p.total
	if idx > 0 {
		free = p.steps[idx-1].free
	}
	p.steps = append(p.steps, profileStep{})
	copy(p.steps[idx+1:], p.steps[idx:])
	p.steps[idx] = profileStep{t: t, free: free}
}

// EarliestSlot returns the earliest time >= after at which procs
// processors stay free for duration. Returns +Inf when procs exceeds the
// cluster size.
func (p *Profile) EarliestSlot(after, duration float64, procs int) float64 {
	if procs > p.total {
		return math.Inf(1)
	}
	if duration <= 0 {
		duration = 0
	}
	// Candidate start times: `after` and every step boundary beyond it.
	candidates := []float64{after}
	for _, s := range p.steps {
		if s.t > after {
			candidates = append(candidates, s.t)
		}
	}
	for _, start := range candidates {
		if p.fits(start, start+duration, procs) {
			return start
		}
	}
	// Beyond the last step everything is as free as the final state, which
	// fits because procs <= total and the last step's free must return to
	// total once all reservations expire. Defensive fallback:
	last := after
	if n := len(p.steps); n > 0 {
		last = math.Max(after, p.steps[n-1].t)
	}
	return last
}

// fits reports whether procs processors are free throughout [start, end).
func (p *Profile) fits(start, end float64, procs int) bool {
	if p.FreeAt(start) < procs {
		return false
	}
	for _, s := range p.steps {
		if s.t > start && s.t < end && s.free < procs {
			return false
		}
	}
	return true
}
