package sched

import (
	"fmt"
	"sort"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// QoPS is a slack-based deadline admission control in the spirit of Islam
// et al.'s QoPS (Cluster 2004), which the paper's §2 contrasts with
// Libra's hard deadlines: each admitted job tolerates its deadline
// slipping by up to SlackFactor × its estimated runtime if that admits a
// later, more urgent job. Admission builds a hypothetical deadline-ordered
// plan over the availability profile and accepts the new job only if every
// queued and new job still meets its slacked deadline.
//
// This simplified re-planning variant captures QoPS's admission semantics
// (schedule-feasibility with bounded slack) without its pairwise schedule
// exchanges.
type QoPS struct {
	Cluster  *cluster.SpaceShared
	Recorder *metrics.Recorder
	// SlackFactor >= 0: how many estimated runtimes a job's deadline may
	// slip. 0 degenerates to hard deadlines.
	SlackFactor float64

	queue []queued
}

// NewQoPS wires the policy to a space-shared cluster with the given slack
// factor.
func NewQoPS(c *cluster.SpaceShared, rec *metrics.Recorder, slack float64) *QoPS {
	p := &QoPS{Cluster: c, Recorder: rec, SlackFactor: slack}
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
		p.dispatch(e)
	}
	return p
}

// Name implements core.Policy.
func (p *QoPS) Name() string { return "QoPS" }

// QueueLen returns the number of admitted-but-waiting jobs.
func (p *QoPS) QueueLen() int { return len(p.queue) }

// Submit implements core.Policy: admission by schedule feasibility.
func (p *QoPS) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	if job.NumProc > p.Cluster.Len() {
		p.Recorder.Reject(job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	trial := append(append([]queued(nil), p.queue...), queued{job: job, estimate: estimate})
	if !p.feasible(e.Now(), trial) {
		p.Recorder.Reject(job, "no slack-feasible schedule admits the job")
		return
	}
	p.queue = trial
	p.dispatch(e)
}

// slackedDeadline is the latest acceptable finish under the slack rule.
func (p *QoPS) slackedDeadline(q queued) float64 {
	return q.job.AbsDeadline() + p.SlackFactor*q.estimate
}

// feasible plans the given queue in earliest-slacked-deadline order over
// the current availability profile and reports whether every job's planned
// finish meets its slacked deadline.
func (p *QoPS) feasible(now float64, jobs []queued) bool {
	prof := p.runningProfile(now)
	order := append([]queued(nil), jobs...)
	sort.SliceStable(order, func(a, b int) bool {
		return p.slackedDeadline(order[a]) < p.slackedDeadline(order[b])
	})
	for _, q := range order {
		dur, ok := p.Cluster.BestPossibleRuntime(q.estimate, q.job.NumProc)
		if !ok {
			return false
		}
		start := prof.EarliestSlot(now, dur, q.job.NumProc)
		if start+dur > p.slackedDeadline(q) {
			return false
		}
		prof.Reserve(start, start+dur, q.job.NumProc)
	}
	return true
}

// dispatch starts queued jobs in earliest-slacked-deadline order while
// processors allow, dropping jobs whose hard slacked deadline has already
// expired.
func (p *QoPS) dispatch(e *sim.Engine) {
	now := e.Now()
	for len(p.queue) > 0 {
		sort.SliceStable(p.queue, func(a, b int) bool {
			return p.slackedDeadline(p.queue[a]) < p.slackedDeadline(p.queue[b])
		})
		head := p.queue[0]
		if now >= p.slackedDeadline(head) {
			p.queue = p.queue[1:]
			p.Recorder.Reject(head.job, "slacked deadline expired while queued")
			continue
		}
		if p.Cluster.FreeCount() < head.job.NumProc {
			return
		}
		p.queue = p.queue[1:]
		if _, err := p.Cluster.Start(e, head.job, head.estimate); err != nil {
			p.Recorder.Reject(head.job, "start failed: "+err.Error())
		}
	}
}

// runningProfile mirrors Backfill.runningProfile.
func (p *QoPS) runningProfile(now float64) *Profile {
	prof := NewProfile(p.Cluster.Len())
	for _, rj := range p.Cluster.RunningJobs() {
		end := p.Cluster.EstimatedFinish(rj)
		if end <= now {
			end = now + 1e-6
		}
		prof.Reserve(now, end, len(rj.NodeIDs))
	}
	return prof
}
