package sched

import (
	"fmt"
	"math"
	"sort"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// BackfillMode selects the reservation discipline.
type BackfillMode int

const (
	// EASYBackfill gives only the queue head a reservation; later jobs
	// may start out of order if (per estimates) they finish before the
	// head's reserved start (aggressive backfilling, Mu'alem & Feitelson).
	EASYBackfill BackfillMode = iota
	// ConservativeBackfill replans a reservation for every queued job on
	// each event; a job may jump ahead only into holes that delay nobody's
	// planned start.
	ConservativeBackfill
)

func (m BackfillMode) String() string {
	if m == EASYBackfill {
		return "EASY"
	}
	return "conservative"
}

// Backfill is a space-shared FCFS scheduler with backfilling, the
// mechanism the paper's §2 cites as the mainstream consumer of runtime
// estimates. Deadline admission stays lazy, as in EDF: a job is rejected
// at start time if its deadline has expired or is unreachable per its
// estimate.
type Backfill struct {
	Cluster  *cluster.SpaceShared
	Recorder *metrics.Recorder
	Mode     BackfillMode
	// DeadlineOrdered, when true, keeps the queue in earliest-deadline
	// order instead of arrival order — EDF with backfilling, combining
	// the paper's EDF baseline with the mainstream hole-filling
	// optimization.
	DeadlineOrdered bool

	queue []queued
}

// NewBackfill wires a backfilling policy to a space-shared cluster.
func NewBackfill(c *cluster.SpaceShared, rec *metrics.Recorder, mode BackfillMode) *Backfill {
	p := &Backfill{Cluster: c, Recorder: rec, Mode: mode}
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
		p.dispatch(e)
	}
	return p
}

// Name implements core.Policy.
func (p *Backfill) Name() string {
	if p.DeadlineOrdered {
		return "Backfill-" + p.Mode.String() + "-EDF"
	}
	return "Backfill-" + p.Mode.String()
}

// QueueLen returns the number of waiting jobs.
func (p *Backfill) QueueLen() int { return len(p.queue) }

// Submit implements core.Policy.
func (p *Backfill) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	if job.NumProc > p.Cluster.Len() {
		p.Recorder.Reject(job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	p.queue = append(p.queue, queued{job: job, estimate: estimate})
	if p.DeadlineOrdered {
		sort.SliceStable(p.queue, func(a, b int) bool {
			return p.queue[a].job.AbsDeadline() < p.queue[b].job.AbsDeadline()
		})
	}
	p.dispatch(e)
}

// dispatch starts every job the discipline allows to start now.
func (p *Backfill) dispatch(e *sim.Engine) {
	for p.startOne(e) {
	}
}

// startOne starts at most one job (the first the discipline permits) and
// reports whether it did; expired jobs encountered at start are rejected
// and count as progress so the loop continues.
func (p *Backfill) startOne(e *sim.Engine) bool {
	now := e.Now()
	if len(p.queue) == 0 {
		return false
	}
	prof := p.runningProfile(now)
	// Plan reservations in queue order; find the first job allowed to
	// start now.
	var headReservedStart float64 = math.Inf(1)
	for i := 0; i < len(p.queue); i++ {
		q := p.queue[i]
		dur, ok := p.Cluster.BestPossibleRuntime(q.estimate, q.job.NumProc)
		if !ok {
			// Cannot ever run (guarded in Submit; defensive).
			p.rejectAt(i, "impossible processor request")
			return true
		}
		start := prof.EarliestSlot(now, dur, q.job.NumProc)
		canStartNow := start <= now+1e-9 && p.Cluster.FreeCount() >= q.job.NumProc
		switch p.Mode {
		case EASYBackfill:
			if i == 0 {
				if canStartNow {
					return p.startAt(e, i)
				}
				// Head reserves its slot; backfillers must not delay it.
				headReservedStart = start
				prof.Reserve(start, start+dur, q.job.NumProc)
				continue
			}
			if canStartNow {
				// Backfill only if finishing (per estimate) by the head's
				// reserved start, or using processors the head's
				// reservation leaves idle. The profile encodes the head's
				// reservation, so re-check against it.
				if now+dur <= headReservedStart+1e-9 || prof.fits(now, now+dur, q.job.NumProc) {
					return p.startAt(e, i)
				}
			}
			// Not backfillable; it does not reserve under EASY.
		case ConservativeBackfill:
			if canStartNow && prof.fits(now, now+dur, q.job.NumProc) {
				return p.startAt(e, i)
			}
			// Reserve its planned slot so later jobs cannot delay it.
			prof.Reserve(start, start+dur, q.job.NumProc)
		}
	}
	return false
}

// startAt removes queue[i] and starts it, applying lazy deadline
// admission. Returns true (progress) regardless of accept/reject.
func (p *Backfill) startAt(e *sim.Engine, i int) bool {
	now := e.Now()
	q := p.queue[i]
	p.queue = append(p.queue[:i], p.queue[i+1:]...)
	if now >= q.job.AbsDeadline() {
		p.Recorder.Reject(q.job, "deadline expired while queued")
		return true
	}
	if rt, ok := p.Cluster.RuntimeOn(q.estimate, q.job.NumProc); ok && now+rt > q.job.AbsDeadline() {
		p.Recorder.Reject(q.job, "deadline unreachable per runtime estimate")
		return true
	}
	if _, err := p.Cluster.Start(e, q.job, q.estimate); err != nil {
		p.Recorder.Reject(q.job, "start failed: "+err.Error())
	}
	return true
}

func (p *Backfill) rejectAt(i int, reason string) {
	q := p.queue[i]
	p.queue = append(p.queue[:i], p.queue[i+1:]...)
	p.Recorder.Reject(q.job, reason)
}

// runningProfile builds the availability profile implied by the running
// jobs' estimated completions. A job that has outlived its estimate is
// assumed to finish imminently, the same optimism real backfilling
// schedulers exhibit (they kill such jobs; our substrate lets them run, so
// misestimates surface as backfill collisions handled by canStartNow).
func (p *Backfill) runningProfile(now float64) *Profile {
	prof := NewProfile(p.Cluster.Len())
	for _, rj := range p.Cluster.RunningJobs() {
		end := p.Cluster.EstimatedFinish(rj)
		if end <= now {
			end = now + 1e-6
		}
		prof.Reserve(now, end, len(rj.NodeIDs))
	}
	return prof
}
