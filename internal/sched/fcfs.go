package sched

import (
	"fmt"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// FCFS is the classic first-come-first-served space-shared scheduler: the
// oldest queued job waits for its processors; nothing overtakes it. Like
// the paper's EDF it applies lazy deadline admission — a job is dropped
// only when selected for execution with an expired or (per its estimate)
// unreachable deadline. It is the weakest reasonable baseline and the
// starting point for the backfilling variants.
type FCFS struct {
	Cluster  *cluster.SpaceShared
	Recorder *metrics.Recorder
	// DeadlineAware, when false, skips the lazy admission check and runs
	// every job (pure throughput FCFS; deadline misses then show up in
	// the metrics instead of rejections).
	DeadlineAware bool

	queue []queued
}

type queued struct {
	job      workload.Job
	estimate float64
}

// NewFCFS wires an FCFS policy to a space-shared cluster.
func NewFCFS(c *cluster.SpaceShared, rec *metrics.Recorder) *FCFS {
	p := &FCFS{Cluster: c, Recorder: rec, DeadlineAware: true}
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
		p.dispatch(e)
	}
	return p
}

// Name implements core.Policy.
func (p *FCFS) Name() string { return "FCFS" }

// QueueLen returns the number of waiting jobs.
func (p *FCFS) QueueLen() int { return len(p.queue) }

// Submit implements core.Policy.
func (p *FCFS) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	if job.NumProc > p.Cluster.Len() {
		p.Recorder.Reject(job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	p.queue = append(p.queue, queued{job: job, estimate: estimate})
	p.dispatch(e)
}

func (p *FCFS) dispatch(e *sim.Engine) {
	now := e.Now()
	for len(p.queue) > 0 {
		head := p.queue[0]
		if p.Cluster.FreeCount() < head.job.NumProc {
			return
		}
		p.queue = p.queue[1:]
		if p.DeadlineAware {
			if now >= head.job.AbsDeadline() {
				p.Recorder.Reject(head.job, "deadline expired while queued")
				continue
			}
			if rt, ok := p.Cluster.RuntimeOn(head.estimate, head.job.NumProc); ok && now+rt > head.job.AbsDeadline() {
				p.Recorder.Reject(head.job, "deadline unreachable per runtime estimate")
				continue
			}
		}
		if _, err := p.Cluster.Start(e, head.job, head.estimate); err != nil {
			p.Recorder.Reject(head.job, "start failed: "+err.Error())
		}
	}
}
