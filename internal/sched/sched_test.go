package sched

import (
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func sjob(id int, submit, runtime, deadline float64, numproc int) workload.Job {
	return workload.Job{
		ID: id, Submit: submit, Runtime: runtime,
		TraceEstimate: runtime, NumProc: numproc, Deadline: deadline,
	}
}

func newSS(t *testing.T, n int) (*sim.Engine, *cluster.SpaceShared, *metrics.Recorder) {
	t.Helper()
	c, err := cluster.NewSpaceShared(n, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return sim.NewEngine(), c, metrics.NewRecorder()
}

// --- FCFS ---------------------------------------------------------------

func TestFCFSRunsInArrivalOrder(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewFCFS(c, rec)
	var order []int
	base := c.OnJobDone
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		order = append(order, rj.Job.ID)
		base(e, rj)
	}
	// Job 2 has the earlier deadline but FCFS ignores that.
	p.Submit(e, sjob(1, 0, 10, 900, 1), 10)
	p.Submit(e, sjob(2, 0, 10, 100, 1), 10)
	p.Submit(e, sjob(3, 0, 10, 500, 1), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, id := range want {
		if order[i] != id {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFCFSHeadBlocks(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewFCFS(c, rec)
	p.Submit(e, sjob(1, 0, 100, 500, 2), 100)
	p.Submit(e, sjob(2, 0, 10, 500, 2), 10)
	p.Submit(e, sjob(3, 0, 10, 500, 1), 10) // could run, FCFS won't
	if c.Running() != 1 {
		t.Fatalf("running = %d, want 1", c.Running())
	}
	if p.QueueLen() != 2 {
		t.Fatalf("queue = %d", p.QueueLen())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestFCFSDeadlineAwareRejectsExpired(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewFCFS(c, rec)
	p.Submit(e, sjob(1, 0, 100, 500, 1), 100)
	p.Submit(e, sjob(2, 0, 10, 50, 1), 10) // expires while queued
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 || s.Met != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestFCFSDeadlineUnawareRunsEverything(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewFCFS(c, rec)
	p.DeadlineAware = false
	p.Submit(e, sjob(1, 0, 100, 500, 1), 100)
	p.Submit(e, sjob(2, 0, 10, 50, 1), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 0 || s.Completed != 2 || s.Missed != 1 {
		t.Fatalf("summary = %+v, want both run with one miss", s)
	}
}

func TestFCFSRejectsOversized(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewFCFS(c, rec)
	p.Submit(e, sjob(1, 0, 10, 100, 3), 10)
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

// --- Backfilling ----------------------------------------------------------

func TestEASYBackfillsShortJobIntoHole(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewBackfill(c, rec, EASYBackfill)
	var order []int
	base := c.OnJobDone
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		order = append(order, rj.Job.ID)
		base(e, rj)
	}
	// Job 1 runs on one node until t=100. Job 2 (head) needs both nodes →
	// reserved at t=100. Job 3 needs 1 node for 50 ≤ head's reserved
	// start → backfills immediately. FCFS would have made job 3 wait.
	p.Submit(e, sjob(1, 0, 100, 900, 1), 100)
	p.Submit(e, sjob(2, 0, 50, 900, 2), 50)
	p.Submit(e, sjob(3, 0, 50, 900, 1), 50)
	if c.Running() != 2 {
		t.Fatalf("running = %d, want job 3 backfilled alongside job 1", c.Running())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != 3 {
		t.Fatalf("order = %v, want job 3 to finish first (it backfilled)", order)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEASYDoesNotDelayHeadReservation(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewBackfill(c, rec, EASYBackfill)
	// Job 1 occupies one node until 100; head job 2 reserves both at 100.
	p.Submit(e, sjob(1, 0, 100, 900, 1), 100)
	p.Submit(e, sjob(2, 0, 50, 900, 2), 50)
	// Job 3 would run 200 > head's reserved start on the head's node →
	// must NOT backfill.
	p.Submit(e, sjob(3, 0, 200, 900, 1), 200)
	if c.Running() != 1 {
		t.Fatalf("running = %d, want job 3 held back", c.Running())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestConservativeBackfillHonorsAllReservations(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewBackfill(c, rec, ConservativeBackfill)
	p.Submit(e, sjob(1, 0, 100, 2000, 1), 100) // node A until 100
	p.Submit(e, sjob(2, 0, 50, 2000, 2), 50)   // reserved at 100
	p.Submit(e, sjob(3, 0, 100, 2000, 1), 100) // reserved at 150 (after 2)
	p.Submit(e, sjob(4, 0, 40, 2000, 1), 40)   // fits before 2's start → backfills
	if c.Running() != 2 {
		t.Fatalf("running = %d, want job 4 backfilled", c.Running())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 4 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestBackfillLazyDeadlineRejection(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewBackfill(c, rec, EASYBackfill)
	p.Submit(e, sjob(1, 0, 100, 900, 1), 100)
	p.Submit(e, sjob(2, 0, 10, 50, 1), 10) // expires while queued
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 || s.Met != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestBackfillModesWithGeneratedWorkload(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 150
	cfg.MaxProcs = 8
	cfg.MeanInterarrival = 300
	cfg.MeanRuntime = 900
	cfg.MaxRuntime = 7200
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	fulfilled := map[BackfillMode]float64{}
	for _, mode := range []BackfillMode{EASYBackfill, ConservativeBackfill} {
		e, c, rec := newSS(t, 8)
		p := NewBackfill(c, rec, mode)
		if err := core.RunSimulation(e, p, rec, jobs, 0); err != nil {
			t.Fatal(err)
		}
		s := rec.Summarize()
		if s.Unfinished != 0 {
			t.Fatalf("%v: unfinished = %d", mode, s.Unfinished)
		}
		if s.Missed != 0 {
			t.Fatalf("%v: missed = %d with accurate estimates", mode, s.Missed)
		}
		fulfilled[mode] = s.PctFulfilled
	}
	// And both should beat plain FCFS on the same workload.
	e, c, rec := newSS(t, 8)
	p := NewFCFS(c, rec)
	if err := core.RunSimulation(e, p, rec, jobs, 0); err != nil {
		t.Fatal(err)
	}
	fcfs := rec.Summarize().PctFulfilled
	for mode, pct := range fulfilled {
		if pct < fcfs-1e-9 {
			t.Errorf("%v fulfilled %.1f%% < FCFS %.1f%%", mode, pct, fcfs)
		}
	}
}

func TestDeadlineOrderedBackfillRunsUrgentFirst(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewBackfill(c, rec, EASYBackfill)
	p.DeadlineOrdered = true
	if p.Name() != "Backfill-EASY-EDF" {
		t.Fatalf("Name = %q", p.Name())
	}
	var order []int
	base := c.OnJobDone
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		order = append(order, rj.Job.ID)
		base(e, rj)
	}
	// All at t=0 on one node: deadline order forces 3, 1, 2 after the
	// first (already started) job.
	p.Submit(e, sjob(1, 0, 10, 500, 1), 10)
	p.Submit(e, sjob(2, 0, 10, 900, 1), 10)
	p.Submit(e, sjob(3, 0, 10, 400, 1), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2}
	for i, id := range want {
		if i >= len(order) || order[i] != id {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlineOrderedBackfillStillBackfills(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewBackfill(c, rec, EASYBackfill)
	p.DeadlineOrdered = true
	// Same hole-filling scenario as the FCFS variant: job 3 backfills.
	p.Submit(e, sjob(1, 0, 100, 900, 1), 100)
	p.Submit(e, sjob(2, 0, 50, 600, 2), 50)
	p.Submit(e, sjob(3, 0, 50, 901, 1), 50)
	if c.Running() != 2 {
		t.Fatalf("running = %d, want job 3 backfilled", c.Running())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

// --- QoPS -----------------------------------------------------------------

func TestQoPSZeroSlackRejectsInfeasible(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewQoPS(c, rec, 0)
	p.Submit(e, sjob(1, 0, 100, 120, 1), 100)
	// Job 2 cannot finish by its deadline behind job 1.
	p.Submit(e, sjob(2, 0, 100, 150, 1), 100)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 || s.Met != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestQoPSSlackAdmitsWhatHardDeadlinesReject(t *testing.T) {
	// With slack 1.0, job 2 may slip one estimated runtime past its
	// deadline: planned finish 200 ≤ 150 + 100 → admitted.
	e, c, rec := newSS(t, 1)
	p := NewQoPS(c, rec, 1.0)
	p.Submit(e, sjob(1, 0, 100, 120, 1), 100)
	p.Submit(e, sjob(2, 0, 100, 150, 1), 100)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 0 || s.Completed != 2 {
		t.Fatalf("summary = %+v, want both admitted", s)
	}
	// Job 2 finishes at 200 > 150: a soft-deadline miss by design.
	if s.Missed != 1 {
		t.Fatalf("summary = %+v, want one (tolerated) miss", s)
	}
}

func TestQoPSUrgentLaterJobPreemptsQueuePosition(t *testing.T) {
	e, c, rec := newSS(t, 1)
	p := NewQoPS(c, rec, 0.5)
	var order []int
	base := c.OnJobDone
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		order = append(order, rj.Job.ID)
		base(e, rj)
	}
	p.Submit(e, sjob(1, 0, 50, 1000, 1), 50)
	p.Submit(e, sjob(2, 0, 50, 900, 1), 50) // loose deadline
	p.Submit(e, sjob(3, 0, 50, 200, 1), 50) // urgent, arrives last
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[1] != 3 {
		t.Fatalf("order = %v, want urgent job 3 scheduled ahead of job 2", order)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestQoPSRejectsOversized(t *testing.T) {
	e, c, rec := newSS(t, 2)
	p := NewQoPS(c, rec, 1)
	p.Submit(e, sjob(1, 0, 10, 100, 3), 10)
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestPolicyNames(t *testing.T) {
	_, c1, r1 := newSS(t, 1)
	if got := NewFCFS(c1, r1).Name(); got != "FCFS" {
		t.Errorf("FCFS name = %q", got)
	}
	_, c2, r2 := newSS(t, 1)
	if got := NewBackfill(c2, r2, EASYBackfill).Name(); got != "Backfill-EASY" {
		t.Errorf("EASY name = %q", got)
	}
	_, c3, r3 := newSS(t, 1)
	if got := NewBackfill(c3, r3, ConservativeBackfill).Name(); got != "Backfill-conservative" {
		t.Errorf("conservative name = %q", got)
	}
	_, c4, r4 := newSS(t, 1)
	if got := NewQoPS(c4, r4, 1).Name(); got != "QoPS" {
		t.Errorf("QoPS name = %q", got)
	}
}

// Interface conformance: all extension policies satisfy core.Policy.
var (
	_ core.Policy = (*FCFS)(nil)
	_ core.Policy = (*Backfill)(nil)
	_ core.Policy = (*QoPS)(nil)
)
