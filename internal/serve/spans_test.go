package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"clustersched/internal/obs/span"
)

// TestSpansByteIdentityDifferential is the observability analogue of
// the sharding differential: tracing is a read-only tap, so the same
// request script with spans on must produce decisions, an audit
// stream, and a /state snapshot byte-identical to spans off — across
// the plain, sharded, and durable-pipelined execution shapes.
func TestSpansByteIdentityDifferential(t *testing.T) {
	type shape struct {
		name   string
		shards int
		wal    bool
	}
	shapes := []shape{
		{"plain", 0, false},
		{"sharded", 4, false},
		{"durable", 0, true},
		{"sharded-durable", 4, true},
	}
	root := t.TempDir()
	run := func(sh shape, spans bool) ([]string, []byte, StateResponse) {
		var audit bytes.Buffer
		cfg := shardTestConfig()
		cfg.Audit = &audit
		cfg.Shards = sh.shards
		cfg.Spans = spans
		if sh.wal {
			cfg.WALDir = filepath.Join(root, fmt.Sprintf("%s-spans-%v", sh.name, spans))
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s spans=%v: New: %v", sh.name, spans, err)
		}
		hts := httptest.NewServer(s.Handler())
		lines := playShardScript(t, hts.URL, 0, shardScriptLen)
		st := stateOf(t, hts.URL)
		hts.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("%s spans=%v: Close: %v", sh.name, spans, err)
		}
		return lines, audit.Bytes(), st
	}
	for _, sh := range shapes {
		offLines, offAudit, offState := run(sh, false)
		onLines, onAudit, onState := run(sh, true)
		if len(offAudit) == 0 {
			t.Fatalf("%s: reference run produced no audit output", sh.name)
		}
		for i := range offLines {
			if onLines[i] != offLines[i] {
				t.Fatalf("%s: decision %d diverges with spans on: %q vs %q", sh.name, i, onLines[i], offLines[i])
			}
		}
		if !bytes.Equal(onAudit, offAudit) {
			t.Errorf("%s: audit stream diverges with spans on (%d vs %d bytes)", sh.name, len(onAudit), len(offAudit))
		}
		if onState != offState {
			t.Errorf("%s: state diverges with spans on\non  %+v\noff %+v", sh.name, onState, offState)
		}
	}

	// The WALs written with spans on and off must be byte-identical,
	// and replaying the spans-on log with spans off (and vice versa)
	// must rebuild the same audit stream: tracing must not leak into
	// what is persisted.
	walBytes := func(dir string) []byte {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("read %s: %v", dir, err)
		}
		var all []byte
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, b...)
		}
		return all
	}
	offDir := filepath.Join(root, "durable-spans-false")
	onDir := filepath.Join(root, "durable-spans-true")
	if !bytes.Equal(walBytes(offDir), walBytes(onDir)) {
		t.Error("WAL bytes diverge between spans on and off")
	}
	for _, rc := range []struct {
		name  string
		dir   string
		spans bool
	}{
		{"spans-on log, spans-off replay", onDir, false},
		{"spans-off log, spans-on replay", offDir, true},
	} {
		var replayAudit bytes.Buffer
		cfg := shardTestConfig()
		cfg.Audit = &replayAudit
		cfg.WALDir = rc.dir
		cfg.Resume = true
		cfg.Spans = rc.spans
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		ops := s.OpsApplied()
		if err := s.Close(); err != nil {
			t.Fatalf("%s: Close: %v", rc.name, err)
		}
		if ops != shardScriptLen {
			t.Errorf("%s: replayed %d ops, want %d", rc.name, ops, shardScriptLen)
		}
	}
}

// TestSpansCheckpointByteIdentity drains two identically driven servers
// — spans on and off — to checkpoint files and compares the bytes.
func TestSpansCheckpointByteIdentity(t *testing.T) {
	root := t.TempDir()
	run := func(spans bool) []byte {
		path := filepath.Join(root, fmt.Sprintf("ckpt-%v", spans))
		cfg := shardTestConfig()
		cfg.CheckpointPath = path
		cfg.Spans = spans
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("spans=%v: New: %v", spans, err)
		}
		hts := httptest.NewServer(s.Handler())
		playShardScript(t, hts.URL, 0, 30)
		hts.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("spans=%v: Close: %v", spans, err)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	off := run(false)
	on := run(true)
	if len(off) == 0 {
		t.Fatal("empty checkpoint")
	}
	if !bytes.Equal(on, off) {
		t.Errorf("checkpoint bytes diverge with spans on (%d vs %d bytes)", len(on), len(off))
	}
}

// TestDebugSpansUnderConcurrentLoad floods a spans-on server from many
// goroutines while concurrently scraping /debug/spans, with a ring
// small enough to wrap several times. Run under -race this doubles as
// the recorder's publication-safety check at the serving layer.
func TestDebugSpansUnderConcurrentLoad(t *testing.T) {
	cfg := testConfig()
	cfg.Spans = true
	cfg.SpanBuffer = 64
	cfg.QueueDepth = 1024
	s, hts := newTestServer(t, cfg)

	const writers, perWriter = 8, 60
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent scraper (errors checked by the final scrape)
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if resp, err := http.Get(hts.URL + "/debug/spans?n=32"); err == nil {
				resp.Body.Close()
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				b, _ := json.Marshal(AdmitRequest{
					Tenant: fmt.Sprintf("t%d", w%3), NumProc: 1, Runtime: 5, Deadline: 1e9,
				})
				resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(w)
	}
	// Let the writers finish, then stop the scraper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)

	waitFor(t, func() bool { return s.spans.Recorded() >= writers*perWriter })
	var p span.Payload
	getJSON(t, hts.URL+"/debug/spans", &p)
	if !p.Enabled {
		t.Fatal("payload says spans disabled")
	}
	if p.Recorded < writers*perWriter {
		t.Errorf("recorded %d spans, want ≥ %d", p.Recorded, writers*perWriter)
	}
	if p.Count > s.spans.Cap() {
		t.Errorf("ring holds %d spans, cap %d", p.Count, s.spans.Cap())
	}
	if p.Recorded <= uint64(s.spans.Cap()) {
		t.Errorf("recorded %d ≤ cap %d: ring never wrapped", p.Recorded, s.spans.Cap())
	}
	if len(p.Spans) == 0 || len(p.SlowestTotal) == 0 {
		t.Fatalf("payload missing spans: recent=%d slowest=%d", len(p.Spans), len(p.SlowestTotal))
	}
	for _, sp := range p.Spans {
		if sp.Kind != "admit" || sp.TotalSec < 0 {
			t.Fatalf("bad span on wire: %+v", sp)
		}
	}
	if len(p.SlowestByStage["queue"]) == 0 {
		t.Error("slowest-by-stage has no queue entries after a flood")
	}
}

// TestDebugEndpointsAliveAtShedLevelThree wedges the apply worker with
// the state lock held and a saturated queue — shed level 3, every
// admit refused — and checks the whole diagnostic surface still
// answers: that is the moment it exists for.
func TestDebugEndpointsAliveAtShedLevelThree(t *testing.T) {
	cfg := testConfig()
	cfg.Spans = true
	cfg.QueueDepth = 100
	cfg.RequestTimeout = time.Minute
	// Level 3 needs three queued requests (fill 0.03) so the wedge below
	// — one request in the blocked worker, three more queued — lands the
	// ladder exactly at the top.
	cfg.Shed = ShedConfig{Level1Fill: 0.005, Level2Fill: 0.01, Level3Fill: 0.03}
	s, hts := newTestServer(t, cfg)

	s.mu.Lock()
	unlock := sync.OnceFunc(s.mu.Unlock)
	defer unlock() // a t.Fatal while wedged must still release the worker
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100, Class: "high"})
			resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	waitFor(t, func() bool { return len(s.queue) >= 3 })

	// Confirm we are actually at level 3: a fresh admit is refused.
	b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
	resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
	if err != nil {
		unlock()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		unlock()
		t.Fatalf("admit at level 3: status %d, want 503", resp.StatusCode)
	}

	// The lock-free diagnostic surface. /metrics is deliberately absent:
	// its scrape syncs the registry under the state lock, so it rides
	// out shed level 3 but not a wedged apply worker.
	for _, path := range []string{
		"/debug/spans",
		"/debug/requests?tenant=nobody",
		"/debug/shed",
		"/debug/pprof/",
		"/healthz",
	} {
		resp, err := http.Get(hts.URL + path)
		if err != nil {
			unlock()
			t.Fatalf("GET %s while wedged: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			unlock()
			t.Fatalf("GET %s while wedged: status %d, want 200", path, resp.StatusCode)
		}
	}

	var shedState struct {
		Level int             `json:"level"`
		Total uint64          `json:"transitions_total"`
		Trans json.RawMessage `json:"transitions"`
	}
	getJSON(t, hts.URL+"/debug/shed", &shedState)
	if shedState.Level != shedAll {
		unlock()
		t.Fatalf("/debug/shed level = %d, want %d", shedState.Level, shedAll)
	}
	if shedState.Total == 0 {
		unlock()
		t.Fatal("/debug/shed reports zero transitions after an escalation")
	}
	unlock()
	wg.Wait()

	// Unwedged, /metrics answers too — and shows the shed level and the
	// transition counter the wedge drove.
	resp, err = http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !bytes.Contains(buf.Bytes(), []byte("serve_shed_level")) ||
		!bytes.Contains(buf.Bytes(), []byte("serve_shed_transitions_total")) {
		t.Errorf("/metrics missing shed gauges:\n%s", buf.String())
	}

	// The refused admit left a shed-all span behind.
	waitFor(t, func() bool {
		for _, sp := range s.spans.Snapshot() {
			if sp.Outcome == "shed-all" {
				return true
			}
		}
		return false
	})
}

// TestDebugRequestsFiltering checks tenant and outcome filters.
func TestDebugRequestsFiltering(t *testing.T) {
	cfg := testConfig()
	cfg.Spans = true
	_, hts := newTestServer(t, cfg)
	for i := 0; i < 3; i++ {
		admitAt(t, hts.URL, float64(i), AdmitRequest{Tenant: "acme", NumProc: 1, Runtime: 5, Deadline: 1e9})
	}
	admitAt(t, hts.URL, 3, AdmitRequest{Tenant: "zeta", NumProc: 1, Runtime: 5, Deadline: 1e9})

	var out struct {
		Enabled bool        `json:"enabled"`
		Count   int         `json:"count"`
		Spans   []span.JSON `json:"spans"`
	}
	getJSON(t, hts.URL+"/debug/requests?tenant=acme", &out)
	if !out.Enabled || out.Count != 3 {
		t.Fatalf("tenant filter: enabled=%v count=%d, want 3", out.Enabled, out.Count)
	}
	for _, sp := range out.Spans {
		if sp.Tenant != "acme" {
			t.Errorf("tenant filter leaked span for %q", sp.Tenant)
		}
	}
	getJSON(t, hts.URL+"/debug/requests?tenant=acme&outcome=nope", &out)
	if out.Count != 0 {
		t.Errorf("outcome filter: count %d, want 0", out.Count)
	}
}

// TestTenantMetricsCardinalityCap posts traffic for more tenants than
// TenantLabels allows and checks the overflow folds into the "other"
// series while the labeled series stay exact.
func TestTenantMetricsCardinalityCap(t *testing.T) {
	cfg := testConfig()
	cfg.TenantLabels = 2
	cfg.QuotaBurst = 2 // fixed budget: exactly two admits per tenant, then 429
	_, hts := newTestServer(t, cfg)

	at := 0.0
	post := func(tenant string) int {
		b, _ := json.Marshal(AdmitRequest{Tenant: tenant, NumProc: 1, Runtime: 5, Deadline: 1e9, T: &at})
		// Space arrivals past the runtime so the four-node cluster is
		// always empty and every in-quota admit is accepted.
		at += 10
		resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Two named tenants fill the label table; the third folds into
	// "other". Each tenant's third request burns through its quota
	// burst of 2 and is 429ed.
	for _, tenant := range []string{"alpha", "beta", "gamma"} {
		for i := 0; i < 3; i++ {
			st := post(tenant)
			if i < 2 && st != http.StatusOK {
				t.Fatalf("tenant %s request %d: status %d, want 200", tenant, i, st)
			}
			if i == 2 && st != http.StatusTooManyRequests {
				t.Fatalf("tenant %s request %d: status %d, want 429", tenant, i, st)
			}
		}
	}

	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		`serve_tenant_admits_total{tenant="alpha"} 2`,
		`serve_tenant_admits_total{tenant="beta"} 2`,
		`serve_tenant_admits_total{tenant="other"} 2`,
		`serve_tenant_quota_denials_total{tenant="alpha"} 1`,
		`serve_tenant_quota_denials_total{tenant="other"} 1`,
	} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
	if bytes.Contains(buf.Bytes(), []byte(`tenant="gamma"`)) {
		t.Errorf("/metrics leaked an uncapped tenant label:\n%s", body)
	}
}

// TestSpanStageCoverage drives a deterministic script through both the
// plain and durable pipelines and checks the acceptance bar: the named
// stages account for ≥ 95%% of every traced request's wall time.
func TestSpanStageCoverage(t *testing.T) {
	for _, durable := range []bool{false, true} {
		name := "plain"
		cfg := shardTestConfig()
		cfg.Spans = true
		if durable {
			name = "durable"
			cfg.WALDir = t.TempDir()
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		hts := httptest.NewServer(s.Handler())
		playShardScript(t, hts.URL, 0, 30)
		spans := s.spans.Snapshot()
		hts.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if len(spans) < 25 {
			t.Fatalf("%s: only %d spans recorded", name, len(spans))
		}
		var total, covered time.Duration
		for _, sp := range spans {
			if sp.Total <= 0 {
				t.Fatalf("%s: span %d has non-positive total %v", name, sp.Seq, sp.Total)
			}
			var sum time.Duration
			for _, d := range sp.Dur {
				sum += d
			}
			total += sp.Total
			covered += sum
			if sum > sp.Total+sp.Total/20 {
				t.Errorf("%s: span %d stages sum %v exceed total %v by >5%%", name, sp.Seq, sum, sp.Total)
			}
		}
		if frac := float64(covered) / float64(total); frac < 0.95 {
			t.Errorf("%s: stages attribute %.1f%% of traced wall time, want ≥ 95%%", name, frac*100)
		}
		if durable {
			var withWAL, withCommit int
			for _, sp := range spans {
				if sp.WALIndex > 0 {
					withWAL++
				}
				if sp.Dur[span.StageCommit] > 0 {
					withCommit++
				}
			}
			if withWAL == 0 || withCommit == 0 {
				t.Errorf("durable spans missing pipeline detail: wal_index on %d, commit stage on %d", withWAL, withCommit)
			}
		}
	}
}

// TestSpanHelpersZeroAllocWhenDisabled proves the spans-off hot path
// pays only nil checks: every span helper the handler and workers call
// must allocate nothing when tracing is disabled.
func TestSpanHelpersZeroAllocWhenDisabled(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.spans != nil || s.stages != nil {
		t.Fatal("spans unexpectedly enabled")
	}
	p := &pending{}
	t0 := time.Now()
	// Warm the tenant cell so the steady-state path is measured.
	s.tenants.admit("t0", true)
	allocs := testing.AllocsPerRun(200, func() {
		sp := s.beginSpan("admit", "t0", t0, 0)
		s.recordRefused(sp, "quota")
		p.sp = sp
		s.markDequeued(p)
		s.finishSpan(p, applied{}, "accepted")
		s.tenants.admit("t0", true)
		s.stages.drainTo(nil)
	})
	if allocs != 0 {
		t.Errorf("spans-off helpers allocate %.1f per op, want 0", allocs)
	}
}
