package serve

// The /debug endpoint family: recent request spans, per-tenant request
// filtering, and the shed-ladder transition history. All of it — like
// /healthz and /metrics — answers at every shed level: the moments the
// ladder sheds hardest are exactly the moments these endpoints are
// needed. None of them takes the state lock; they read the lock-free
// span ring and the shedder's own small mutex, so a wedged apply worker
// cannot wedge diagnosis.

import (
	"net/http"
	"sort"
	"strconv"

	"clustersched/internal/obs/span"
)

// debugSlowK is the default K for the slowest-span leaderboards.
const debugSlowK = 8

// debugSpanLimit caps how many recent spans one /debug/spans response
// carries (override downward with ?n=).
const debugSpanLimit = 1024

// parseQueryInt reads an integer query parameter with a default and an
// upper bound.
func parseQueryInt(r *http.Request, key string, def, max int) int {
	v := r.URL.Query().Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return def
	}
	if n > max {
		return max
	}
	return n
}

// handleDebugSpans serves the recent-spans ring plus slowest-K
// leaderboards by total wall time and per stage, as span.Payload JSON —
// the exact shape cmd/servetrace ingests.
//
//	GET /debug/spans?n=256&k=8
func (s *Server) handleDebugSpans(w http.ResponseWriter, r *http.Request) {
	n := parseQueryInt(r, "n", 256, debugSpanLimit)
	k := parseQueryInt(r, "k", debugSlowK, 64)
	spans := s.spans.Snapshot()
	payload := span.Payload{
		Enabled:  s.spans != nil,
		Count:    len(spans),
		Recorded: s.spans.Recorded(),
	}
	if len(spans) > 0 {
		recent := spans
		if len(recent) > n {
			recent = recent[len(recent)-n:]
		}
		payload.Spans = wireSpans(recent)
		bySlow := append([]*span.Span(nil), spans...)
		sort.SliceStable(bySlow, func(i, j int) bool { return bySlow[i].Total > bySlow[j].Total })
		if len(bySlow) > k {
			bySlow = bySlow[:k]
		}
		payload.SlowestTotal = wireSpans(bySlow)
		payload.SlowestByStage = make(map[string][]span.JSON, span.NumStages)
		scratch := make([]*span.Span, 0, len(spans))
		for st := 0; st < span.NumStages; st++ {
			scratch = scratch[:0]
			for _, sp := range spans {
				if sp.Dur[st] > 0 {
					scratch = append(scratch, sp)
				}
			}
			if len(scratch) == 0 {
				continue
			}
			stage := span.Stage(st)
			sort.SliceStable(scratch, func(i, j int) bool { return scratch[i].Dur[stage] > scratch[j].Dur[stage] })
			top := scratch
			if len(top) > k {
				top = top[:k]
			}
			payload.SlowestByStage[stage.String()] = wireSpans(top)
		}
	}
	writeJSON(w, http.StatusOK, payload, 0)
}

// handleDebugRequests serves recent spans filtered by tenant and/or
// outcome — "why did tenant X's requests 429?" without log diving.
//
//	GET /debug/requests?tenant=acme&outcome=quota&n=128
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	n := parseQueryInt(r, "n", 256, debugSpanLimit)
	tenant := r.URL.Query().Get("tenant")
	outcome := r.URL.Query().Get("outcome")
	spans := s.spans.Snapshot()
	matched := make([]*span.Span, 0, len(spans))
	for _, sp := range spans {
		if tenant != "" && sp.Tenant != tenant {
			continue
		}
		if outcome != "" && sp.Outcome != outcome {
			continue
		}
		matched = append(matched, sp)
	}
	if len(matched) > n {
		matched = matched[len(matched)-n:]
	}
	writeJSON(w, http.StatusOK, struct {
		Enabled bool        `json:"enabled"`
		Tenant  string      `json:"tenant,omitempty"`
		Outcome string      `json:"outcome,omitempty"`
		Count   int         `json:"count"`
		Spans   []span.JSON `json:"spans,omitempty"`
	}{
		Enabled: s.spans != nil,
		Tenant:  tenant,
		Outcome: outcome,
		Count:   len(matched),
		Spans:   wireSpans(matched),
	}, 0)
}

// handleDebugShed serves the shed ladder's recent transition history.
//
//	GET /debug/shed
func (s *Server) handleDebugShed(w http.ResponseWriter, r *http.Request) {
	trans, total := s.shed.transitions()
	writeJSON(w, http.StatusOK, struct {
		Level       int              `json:"level"`
		Total       uint64           `json:"transitions_total"`
		Transitions []shedTransition `json:"transitions,omitempty"`
	}{
		Level:       s.shedLevel(),
		Total:       total,
		Transitions: trans,
	}, 0)
}

// wireSpans converts spans to their JSON wire form.
func wireSpans(spans []*span.Span) []span.JSON {
	if len(spans) == 0 {
		return nil
	}
	out := make([]span.JSON, len(spans))
	for i, sp := range spans {
		out[i] = sp.Wire()
	}
	return out
}
