package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestShedLadderByQueueFill(t *testing.T) {
	d := newShedder(ShedConfig{}.withDefaults(), nil, nil)
	cases := []struct {
		qlen, qcap int
		want       int
	}{
		{0, 100, shedNone},
		{49, 100, shedNone},
		{50, 100, shedAudit},
		{74, 100, shedAudit},
		{75, 100, shedClass},
		{94, 100, shedClass},
		{95, 100, shedAll},
		{100, 100, shedAll},
	}
	for _, tc := range cases {
		if got := d.level(tc.qlen, tc.qcap); got != tc.want {
			t.Errorf("level(%d/%d) = %d, want %d", tc.qlen, tc.qcap, got, tc.want)
		}
	}
}

func TestShedLadderByLatency(t *testing.T) {
	d := newShedder(ShedConfig{P99Latency: 100 * time.Millisecond}.withDefaults(), nil, nil)
	// Healthy latencies: empty queue stays at level 0.
	for i := 0; i < 64; i++ {
		d.observe(0.001)
	}
	if got := d.level(0, 100); got != shedNone {
		t.Fatalf("healthy p99: level %d, want 0", got)
	}
	// Push the window's p99 past the threshold.
	for i := 0; i < 300; i++ {
		d.observe(0.15)
	}
	if got := d.level(0, 100); got != shedAudit {
		t.Fatalf("slow p99: level %d, want %d (audit shed)", got, shedAudit)
	}
	// Past twice the threshold: sheddable class goes too.
	for i := 0; i < 300; i++ {
		d.observe(0.3)
	}
	if got := d.level(0, 100); got != shedClass {
		t.Fatalf("very slow p99: level %d, want %d (class shed)", got, shedClass)
	}
	// Queue pressure still dominates when it is worse.
	if got := d.level(96, 100); got != shedAll {
		t.Fatalf("full queue with slow p99: level %d, want %d", got, shedAll)
	}
	// Recovery: fast latencies wash the window out and the ladder walks
	// back down.
	for i := 0; i < 300; i++ {
		d.observe(0.001)
	}
	if got := d.level(0, 100); got != shedNone {
		t.Fatalf("recovered p99: level %d, want 0", got)
	}
}

func TestShedderP99(t *testing.T) {
	d := newShedder(ShedConfig{Window: 100}.withDefaults(), nil, nil)
	for i := 1; i <= 100; i++ {
		d.observe(float64(i))
	}
	// The cache refreshes every 32 observations, so the reported value
	// trails the ideal 99 by at most one refresh window.
	if got := d.latencyP99(); got < 90 || got > 100 {
		t.Errorf("p99 of 1..100 = %g, want within [90,100]", got)
	}
}

// TestShedClassRefusesSheddableTraffic drives the ladder directly (tiny
// queue held at level 2 by a blocked worker) and checks the class
// split: low-urgency is shed with 503 + Retry-After while high-urgency
// still queues.
func TestShedClassRefusesSheddableTraffic(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 100
	cfg.RequestTimeout = time.Minute
	// Any queued backlog at all puts the ladder at level 2, far from
	// level 3, so the level is independent of exactly when the worker
	// dequeues.
	cfg.Shed = ShedConfig{Level1Fill: 0.01, Level2Fill: 0.02, Level3Fill: 0.99}
	s, hts := newTestServer(t, cfg)

	// Hold the state lock so the worker blocks mid-apply and the queue
	// keeps a backlog.
	s.mu.Lock()
	var wg sync.WaitGroup
	post := func(class string) {
		defer wg.Done()
		b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100, Class: class})
		resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go post("high")
	}
	waitFor(t, func() bool { return len(s.queue) >= 3 })

	b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100, Class: "sheddable"})
	resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
	if err != nil {
		s.mu.Unlock()
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		s.mu.Unlock()
		t.Fatalf("sheddable class at level 2: status %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		s.mu.Unlock()
		t.Fatalf("shed response Retry-After %q, want integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	s.mu.Unlock()
	wg.Wait()
	if got := s.cShedClass.v.Load(); got != 1 {
		t.Errorf("shed-class counter = %d, want 1", got)
	}
}

// TestOverloadEnvelope floods a small queue and asserts the structural
// contract: every request is answered, every answer is 200 or 503, and
// every 503 carries Retry-After. No timing assertions — the split
// between queue-full, shed and applied depends on scheduling.
func TestOverloadEnvelope(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 2
	_, hts := newTestServer(t, cfg)
	const n = 120
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[int]int{}
	missingRA := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
			resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
			if err != nil {
				mu.Lock()
				counts[-1]++
				mu.Unlock()
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			counts[resp.StatusCode]++
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				missingRA++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if counts[-1] > 0 {
		t.Fatalf("%d transport failures", counts[-1])
	}
	for st := range counts {
		if st != http.StatusOK && st != http.StatusServiceUnavailable {
			t.Errorf("unexpected status %d (%d times)", st, counts[st])
		}
	}
	if missingRA > 0 {
		t.Errorf("%d 503s missing Retry-After", missingRA)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Errorf("answered %d of %d requests", total, n)
	}
}

// TestShedTransitionTracking pins the transition telemetry: every level
// change — escalation AND recovery (level-down) — is recorded with a
// timestamp, counted, and written as one log line.
func TestShedTransitionTracking(t *testing.T) {
	now := time.Unix(1000, 0).UTC()
	clock := func() time.Time { return now }
	var log bytes.Buffer
	d := newShedder(ShedConfig{}.withDefaults(), &log, clock)

	if got := d.levelTracked(0, 100); got != shedNone {
		t.Fatalf("idle level = %d, want 0", got)
	}
	if _, total := d.transitions(); total != 0 {
		t.Fatalf("idle query recorded %d transitions, want 0", total)
	}
	steps := []struct {
		qlen, want int
	}{
		{96, shedAll},   // 0 -> 3 escalation
		{80, shedClass}, // 3 -> 2 partial recovery
		{0, shedNone},   // 2 -> 0 full recovery (the level-down path)
	}
	for _, st := range steps {
		now = now.Add(time.Second)
		if got := d.levelTracked(st.qlen, 100); got != st.want {
			t.Fatalf("levelTracked(%d/100) = %d, want %d", st.qlen, got, st.want)
		}
	}
	trans, total := d.transitions()
	if total != 3 || len(trans) != 3 {
		t.Fatalf("transitions = %d (ring %d), want 3", total, len(trans))
	}
	wantTrans := []struct{ from, to int }{{0, 3}, {3, 2}, {2, 0}}
	for i, w := range wantTrans {
		tr := trans[i]
		if tr.From != w.from || tr.To != w.to {
			t.Errorf("transition %d: %d -> %d, want %d -> %d", i, tr.From, tr.To, w.from, w.to)
		}
		wantAt := time.Unix(1000+int64(i)+1, 0).UTC()
		if !tr.At.Equal(wantAt) {
			t.Errorf("transition %d at %v, want %v", i, tr.At, wantAt)
		}
	}
	if trans[0].Fill != 0.96 {
		t.Errorf("escalation fill = %g, want 0.96", trans[0].Fill)
	}

	lines := strings.Split(strings.TrimSuffix(log.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("log has %d lines, want 3:\n%s", len(lines), log.String())
	}
	wantLog := []string{"level 0 -> 3", "level 3 -> 2", "level 2 -> 0"}
	for i, ln := range lines {
		if !strings.Contains(ln, wantLog[i]) {
			t.Errorf("log line %d = %q, want it to contain %q", i, ln, wantLog[i])
		}
		if !strings.HasPrefix(ln, "shed: ") || !strings.Contains(ln, "T00:") {
			t.Errorf("log line %d = %q, want a timestamped 'shed: <RFC3339> ...' line", i, ln)
		}
	}

	// A steady level records nothing more.
	now = now.Add(time.Second)
	d.levelTracked(0, 100)
	if _, total := d.transitions(); total != 3 {
		t.Errorf("steady level grew the transition count to %d", total)
	}

	// The ring is bounded: flapping forever keeps only the newest 64.
	for i := 0; i < 200; i++ {
		d.levelTracked(96, 100)
		d.levelTracked(0, 100)
	}
	trans, total = d.transitions()
	if len(trans) > 64 {
		t.Errorf("transition ring grew to %d, want ≤ 64", len(trans))
	}
	if total != 3+400 {
		t.Errorf("transition total = %d, want 403", total)
	}
	if last := trans[len(trans)-1]; last.To != shedNone {
		t.Errorf("newest retained transition ends at level %d, want 0", last.To)
	}
}

// waitFor polls cond for up to two seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}
