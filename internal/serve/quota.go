package serve

import (
	"sync"
	"time"
)

// quotaTable enforces per-tenant admission-rate quotas with burst
// credit: a classic token bucket per tenant, refilled lazily on access.
// rate is tokens per wall second and burst is the bucket depth; rate
// zero with burst positive is a fixed budget that never refills, which
// is the shape the exactness tests pin down (exactly burst admits, no
// timing dependence).
type quotaTable struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64, now func() time.Time) *quotaTable {
	if burst <= 0 {
		// A pure rate with no declared burst still needs capacity for one
		// request or nothing ever passes.
		burst = 1
	}
	return &quotaTable{
		rate:    rate,
		burst:   burst,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// take consumes one token from tenant's bucket. When the bucket is
// empty it reports how long until the next token exists (at least one
// second, per Retry-After's integer grain); for a non-replenishing
// budget the wait is "until drain", reported as a flat minute.
func (q *quotaTable) take(tenant string) (ok bool, retryAfter time.Duration) {
	t := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: t}
		q.buckets[tenant] = b
	} else if q.rate > 0 {
		dt := t.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += dt * q.rate
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
		}
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.rate <= 0 {
		return false, time.Minute
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// tenants returns how many distinct tenants have buckets.
func (q *quotaTable) tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
