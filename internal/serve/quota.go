package serve

import (
	"sort"
	"sync"
	"time"
)

// quotaTable enforces per-tenant admission-rate quotas with burst
// credit: a classic token bucket per tenant, refilled lazily on access.
// rate is tokens per wall second and burst is the bucket depth; rate
// zero with burst positive is a fixed budget that never refills, which
// is the shape the exactness tests pin down (exactly burst admits, no
// timing dependence).
type quotaTable struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newQuotaTable(rate, burst float64, now func() time.Time) *quotaTable {
	if burst <= 0 {
		// A pure rate with no declared burst still needs capacity for one
		// request or nothing ever passes.
		burst = 1
	}
	return &quotaTable{
		rate:    rate,
		burst:   burst,
		now:     now,
		buckets: make(map[string]*bucket),
	}
}

// take consumes one token from tenant's bucket. When the bucket is
// empty it reports how long until the next token exists (at least one
// second, per Retry-After's integer grain); for a non-replenishing
// budget the wait is "until drain", reported as a flat minute.
func (q *quotaTable) take(tenant string) (ok bool, retryAfter time.Duration) {
	t := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: t}
		q.buckets[tenant] = b
	} else if q.rate > 0 {
		dt := t.Sub(b.last).Seconds()
		if dt > 0 {
			b.tokens += dt * q.rate
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
		}
	}
	b.last = t
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.rate <= 0 {
		return false, time.Minute
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// tenants returns how many distinct tenants have buckets.
func (q *quotaTable) tenants() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}

// quotaEntry is one tenant's bucket state, serialized into the drain
// checkpoint and the write-ahead log so budgets survive a restart
// instead of silently resetting to a full bucket.
type quotaEntry struct {
	Tenant string  `json:"tenant"`
	Tokens float64 `json:"tokens"`
	// LastUnixNano timestamps the bucket's last refill, so a restored
	// rate-limited bucket resumes refilling from where it left off.
	LastUnixNano int64 `json:"last_unix_nano"`
}

// snapshot captures every bucket, sorted by tenant so checkpoint bytes
// are deterministic.
func (q *quotaTable) snapshot() []quotaEntry {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]quotaEntry, 0, len(q.buckets))
	for tenant, b := range q.buckets {
		out = append(out, quotaEntry{Tenant: tenant, Tokens: b.tokens, LastUnixNano: b.last.UnixNano()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// restore overwrites bucket state from a snapshot.
func (q *quotaTable) restore(entries []quotaEntry) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, e := range entries {
		q.buckets[e.Tenant] = &bucket{tokens: e.Tokens, last: time.Unix(0, e.LastUnixNano)}
	}
}

// forceTake re-consumes one token during WAL replay: the logged op only
// exists because the original take succeeded, so the bucket is debited
// unconditionally. This reconstruction is exact for fixed budgets
// (rate 0) and conservative for refilling buckets — refill time lost to
// the crash is not re-credited — and a quota snapshot record later in
// the log overrides it with the exact state.
func (q *quotaTable) forceTake(tenant string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: q.now()}
		q.buckets[tenant] = b
	}
	b.tokens--
	if b.tokens < 0 {
		b.tokens = 0
	}
}
