package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestDrainRefusesNewWorkAndIsIdempotent(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
	resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admit while drained: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain refusal missing Retry-After")
	}
	// Health stays green through and after a drain.
	hresp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz after drain: %d", hresp.StatusCode)
	}
	// Second drain returns the same (nil) result without re-running.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

// TestDrainAnswersInFlightRequests pins the drain contract: requests
// already queued when the drain starts still get real decisions.
func TestDrainAnswersInFlightRequests(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 16
	cfg.RequestTimeout = time.Minute
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()

	// Block the worker mid-apply, queue up requests, then drain.
	s.mu.Lock()
	const n = 5
	var wg sync.WaitGroup
	statuses := make([]int, n)
	accepted := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
			resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			var out AdmitResponse
			if resp.StatusCode == http.StatusOK {
				json.NewDecoder(resp.Body).Decode(&out)
				accepted[i] = out.Accepted
			}
		}(i)
	}
	waitFor(t, func() bool { return len(s.queue) >= n-1 })

	drainDone := make(chan error, 1)
	go func() { drainDone <- s.Drain(context.Background()) }()
	// The drain must be waiting on the queued work, not discarding it.
	time.Sleep(10 * time.Millisecond)
	select {
	case <-drainDone:
		s.mu.Unlock()
		t.Fatal("drain completed while requests were still queued")
	default:
	}
	s.mu.Unlock()
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Errorf("in-flight request %d: status %d, want 200", i, st)
		}
		if st == http.StatusOK && !accepted[i] {
			t.Errorf("in-flight request %d rejected on an empty 4-node cluster", i)
		}
	}
}

func TestDrainTimeoutReportsError(t *testing.T) {
	cfg := testConfig()
	cfg.RequestTimeout = time.Minute
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wedge the worker behind the state lock with one queued request,
	// then drain with an immediate deadline.
	s.mu.Lock()
	p := &pending{
		op:       Op{NumProc: 1, Runtime: 10, Estimate: 10, Deadline: 100},
		deadline: time.Now().Add(time.Hour),
		resp:     make(chan applied, 1),
	}
	if err := s.enqueue(p); err != nil {
		s.mu.Unlock()
		t.Fatalf("enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("stuck drain reported success")
	}
	s.mu.Unlock()
	// The worker still answers the queued request on its way out.
	if a := <-p.resp; a.timedOut {
		t.Error("queued request expired instead of being applied")
	}
}

func TestNoGoroutineLeakAcrossServerLifecycles(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		cfg := testConfig()
		cfg.AdmitWorkers = 2 // exercise the pool teardown too
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hts := httptest.NewServer(s.Handler())
		for i := 0; i < 10; i++ {
			b, _ := json.Marshal(AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
			resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		hts.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("cycle %d Close: %v", cycle, err)
		}
	}
	// Goroutine counts settle asynchronously (closed connections, timer
	// goroutines); poll rather than assert instantly.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after 3 server lifecycles", before, runtime.NumGoroutine())
}

// sendSequence plays a fixed request script against a server, strictly
// sequentially so the applied order — and therefore the audit stream —
// is deterministic.
func sendSequence(t *testing.T, base string, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		at := float64(i) * 15
		if i == 6 {
			// A mid-stream node crash, so the resubmission path is part of
			// the identity being checked.
			tt := at
			postJSON(t, base+"/node", NodeRequest{Node: 1, Down: true, T: &tt}, nil)
			continue
		}
		req := AdmitRequest{
			Tenant:  "seq",
			NumProc: 1 + i%2,
			Runtime: 60,
			// Tight deadlines so the script produces both accepts and
			// rejects.
			Deadline: 70 + float64(i%3)*20,
		}
		admitAt(t, base, at, req)
	}
}

const seqLen = 14

// TestDrainResumeAuditByteIdentity is the acceptance pin for the
// checkpoint/replay path: run a request script straight through (audit
// A), then run its first half, drain to a checkpoint, resume a fresh
// daemon from it and run the second half (audit B). A and B must be
// byte-identical.
func TestDrainResumeAuditByteIdentity(t *testing.T) {
	dir := t.TempDir()
	run := func(name string, resume bool, play func(base string)) []byte {
		var audit bytes.Buffer
		cfg := testConfig()
		cfg.Audit = &audit
		cfg.CheckpointPath = filepath.Join(dir, name+".ckpt")
		cfg.Resume = resume
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		hts := httptest.NewServer(s.Handler())
		play(hts.URL)
		hts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Fatalf("%s: Drain: %v", name, err)
		}
		return audit.Bytes()
	}

	full := run("full", false, func(base string) { sendSequence(t, base, 0, seqLen) })
	if len(full) == 0 {
		t.Fatal("reference run produced no audit output")
	}

	// Half one, drained to a checkpoint.
	half := filepath.Join(dir, "half.ckpt")
	var auditB1 bytes.Buffer
	cfgB := testConfig()
	cfgB.Audit = &auditB1
	cfgB.CheckpointPath = half
	s1, err := New(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	hts1 := httptest.NewServer(s1.Handler())
	sendSequence(t, hts1.URL, 0, seqLen/2)
	hts1.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("half drain: %v", err)
	}
	if _, err := os.Stat(half); err != nil {
		t.Fatalf("drain wrote no checkpoint: %v", err)
	}

	// Resume and play the rest. The resumed daemon re-emits the replayed
	// half's audit, then continues.
	var auditB2 bytes.Buffer
	cfgC := testConfig()
	cfgC.Audit = &auditB2
	cfgC.CheckpointPath = half
	cfgC.Resume = true
	s2, err := New(cfgC)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	hts2 := httptest.NewServer(s2.Handler())
	sendSequence(t, hts2.URL, seqLen/2, seqLen)
	hts2.Close()
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("resumed drain: %v", err)
	}

	if !bytes.Equal(full, auditB2.Bytes()) {
		t.Fatalf("resumed audit differs from straight-through audit:\n--- straight (%d bytes)\n%s\n--- resumed (%d bytes)\n%s",
			len(full), full, len(auditB2.Bytes()), auditB2.Bytes())
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.ckpt")
	cfg := testConfig()
	cfg.CheckpointPath = ckpt
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
	hts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	other := testConfig()
	other.Nodes = 8 // different cluster shape
	other.CheckpointPath = ckpt
	other.Resume = true
	if _, err := New(other); err == nil {
		t.Fatal("resume under a different cluster shape accepted")
	}
}

func TestResumeMissingCheckpointIsFreshStart(t *testing.T) {
	cfg := testConfig()
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "never-written.ckpt")
	cfg.Resume = true
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("resume with no checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
