package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestQuotaFixedBudget(t *testing.T) {
	now := time.Now()
	q := newQuotaTable(0, 3, func() time.Time { return now })
	for i := 0; i < 3; i++ {
		if ok, _ := q.take("a"); !ok {
			t.Fatalf("take %d refused within budget", i)
		}
	}
	ok, ra := q.take("a")
	if ok {
		t.Fatal("take beyond fixed budget allowed")
	}
	if ra <= 0 {
		t.Errorf("exhausted budget reported retry-after %v", ra)
	}
	// Other tenants are unaffected.
	if ok, _ := q.take("b"); !ok {
		t.Fatal("tenant b refused by tenant a's exhaustion")
	}
	// Time passing does not refill a rate-zero budget.
	now = now.Add(time.Hour)
	if ok, _ := q.take("a"); ok {
		t.Fatal("fixed budget refilled over time")
	}
}

func TestQuotaRefillsAtRate(t *testing.T) {
	now := time.Now()
	q := newQuotaTable(2, 4, func() time.Time { return now }) // 2/s, burst 4
	for i := 0; i < 4; i++ {
		if ok, _ := q.take("a"); !ok {
			t.Fatalf("burst take %d refused", i)
		}
	}
	ok, ra := q.take("a")
	if ok {
		t.Fatal("take beyond burst allowed")
	}
	if ra < time.Second {
		t.Errorf("retry-after %v below the 1s Retry-After grain", ra)
	}
	now = now.Add(time.Second) // 2 tokens back
	for i := 0; i < 2; i++ {
		if ok, _ := q.take("a"); !ok {
			t.Fatalf("refilled take %d refused", i)
		}
	}
	if ok, _ := q.take("a"); ok {
		t.Fatal("take beyond refill allowed")
	}
	// Refill never exceeds the burst.
	now = now.Add(time.Hour)
	granted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.take("a"); ok {
			granted++
		}
	}
	if granted != 4 {
		t.Fatalf("after a long idle, %d takes granted, want burst 4", granted)
	}
}

// TestQuotaExactUnderConcurrency is the acceptance pin: a fixed budget
// of 10 admissions hit by 100 concurrent requests for the same tenant
// yields exactly 10 decisions and exactly 90 429s — no over- or
// under-admission under any interleaving.
func TestQuotaExactUnderConcurrency(t *testing.T) {
	cfg := testConfig()
	cfg.QuotaRate = 0
	cfg.QuotaBurst = 10
	cfg.QueueDepth = 128
	// Disable the shed ladder: fill can never reach 2.0.
	cfg.Shed = ShedConfig{Level1Fill: 2, Level2Fill: 2, Level3Fill: 2}
	_, hts := newTestServer(t, cfg)

	const n = 100
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, _ := json.Marshal(AdmitRequest{Tenant: "hammer", NumProc: 1, Runtime: 10, Deadline: 100})
			resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
			if err != nil {
				statuses[i] = -1
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				if resp.Header.Get("Retry-After") == "" {
					statuses[i] = -2
				}
			}
		}(i)
	}
	wg.Wait()
	counts := map[int]int{}
	for _, st := range statuses {
		counts[st]++
	}
	if counts[-1] > 0 {
		t.Fatalf("%d requests failed at the transport", counts[-1])
	}
	if counts[-2] > 0 {
		t.Fatalf("%d quota denials missing Retry-After", counts[-2])
	}
	if counts[http.StatusOK] != 10 || counts[http.StatusTooManyRequests] != 90 {
		t.Fatalf("status counts %v, want exactly 10×200 and 90×429", counts)
	}
}

func TestQuotaZeroConfigDisablesQuotas(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.quotas != nil {
		t.Fatal("quota table built with no quota configured")
	}
}
