package serve

// Per-request span tracing for the serving path. With Config.Spans set,
// every /admit and /node request carries a *span.Span from handler
// entry through the pipeline — queue wait, durable group-commit gather,
// WAL append, the covering fsync, virtual-time advance, policy decide,
// ack — and the finished span lands in a lock-free ring served by
// /debug/spans. Stage boundaries are contiguous timestamps, so a span's
// stages sum to (approximately) its total wall time and cmd/servetrace
// can attribute a p99 without unexplained gaps.
//
// The discipline mirrors PR 5's observability rule: spans must be
// decision-invisible (byte-identical audit/checkpoint/WAL-replay, see
// spans_test.go) and free when disabled — the hot path pays nil checks
// only, which TestNilRecorderZeroAlloc and the spans-off benchmark
// variants pin.
//
// Ownership: exactly one goroutine writes a span at a time, and every
// handoff (queue channel, pipeline ring, response channel) is a
// happens-before edge. The span is published to the ring only after its
// final field is written, so readers always see immutable spans.

import (
	"sort"
	"strconv"
	"sync"
	"time"

	"clustersched/internal/obs"
	"clustersched/internal/obs/span"
)

// stageBounds buckets per-stage latencies on /metrics. Serving stages
// range from sub-microsecond (prep) to fsync-dominated milliseconds.
var stageBounds = []float64{
	0.000005, 0.00001, 0.00005, 0.0001, 0.0005,
	0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1,
}

// beginSpan starts a span for one request at handler entry, or returns
// nil when tracing is off — the single branch the disabled path pays.
func (s *Server) beginSpan(kind, tenant string, t0 time.Time, lvl int) *span.Span {
	if s.spans == nil {
		return nil
	}
	return &span.Span{Kind: kind, Tenant: tenant, ShedLevel: lvl, Start: t0}
}

// recordRefused finishes a span for a request refused before it reached
// the apply worker (shed, quota, queue full, draining): the whole wall
// time is the prep stage.
func (s *Server) recordRefused(sp *span.Span, outcome string) {
	if sp == nil {
		return
	}
	sp.Outcome = outcome
	sp.Total = s.now().Sub(sp.Start)
	sp.Dur[span.StagePrep] = sp.Total
	s.stages.observe(sp)
	s.spans.Record(sp)
}

// finishSpan closes a span answered by the apply worker and publishes
// it. The ack stage runs from the worker's answer timestamp to now
// (response written).
func (s *Server) finishSpan(p *pending, a applied, outcome string) {
	sp := p.sp
	if sp == nil {
		return
	}
	end := s.now()
	if !a.finished.IsZero() {
		sp.Dur[span.StageAck] = end.Sub(a.finished)
	}
	sp.Seq, sp.T = a.op.Seq, a.op.T
	sp.Outcome = outcome
	sp.Total = end.Sub(sp.Start)
	s.stages.observe(sp)
	s.spans.Record(sp)
}

// markDequeued stamps the queue-wait stage when the apply worker (or the
// durable decide stage) pops a request.
func (s *Server) markDequeued(p *pending) {
	if p.sp == nil {
		return
	}
	now := s.now()
	p.deq = now
	p.sp.Dur[span.StageQueue] = now.Sub(p.enq)
}

// stageStats aggregates finished spans into per-stage histograms under
// its own small lock (spans finish on handler goroutines; the registry
// lives under the state lock), carrying the slowest observation per
// stage — with its WAL index — as the scrape-window exemplar. The
// /metrics scrape drains it into the registry via Histogram.Absorb, so
// exported histograms grow monotonically while the collector stays
// contention-local.
type stageStats struct {
	mu    sync.Mutex
	stage [span.NumStages]*obs.Histogram
	total *obs.Histogram
	spans uint64
	// exDur/exWAL track the slowest span per stage since the last
	// drain; exWAL is that span's WAL index (0 = none).
	exDur [span.NumStages]time.Duration
	exWAL [span.NumStages]uint64
}

func newStageStats() *stageStats {
	st := &stageStats{total: obs.NewHistogram(stageBounds)}
	for i := range st.stage {
		st.stage[i] = obs.NewHistogram(stageBounds)
	}
	return st
}

// observe folds one finished span in. Nil-safe: a nil stageStats (spans
// disabled) ignores the call.
func (st *stageStats) observe(sp *span.Span) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.spans++
	st.total.Observe(sp.Total.Seconds())
	for i, d := range sp.Dur {
		if d <= 0 {
			continue
		}
		st.stage[i].Observe(d.Seconds())
		if d > st.exDur[i] {
			st.exDur[i] = d
			st.exWAL[i] = sp.WALIndex
		}
	}
}

// drainTo folds the window's observations into the registry histograms
// and resets the collectors. Callers hold the state lock.
func (st *stageStats) drainTo(reg *obs.Registry) {
	if st == nil {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	reg.Counter("serve_spans_recorded_total", "Finished request spans recorded.").Add(float64(st.spans))
	st.spans = 0
	fold := func(name, help string, h *obs.Histogram, exDur time.Duration, exWAL uint64) {
		dst := reg.Histogram(name, help, stageBounds)
		if exDur > 0 && exWAL > 0 {
			h.SetExemplar("wal_index", strconv.FormatUint(exWAL, 10), exDur.Seconds())
		}
		// Bounds are shared by construction; Absorb cannot fail.
		_ = dst.Absorb(h)
		h.Reset()
	}
	fold("serve_span_total_seconds", "Request wall time from handler entry to response written.",
		st.total, 0, 0)
	for i := range st.stage {
		name := "serve_stage_" + span.Stage(i).String() + "_seconds"
		fold(name, "Time spent in the "+span.Stage(i).String()+" serving stage.",
			st.stage[i], st.exDur[i], st.exWAL[i])
		st.exDur[i], st.exWAL[i] = 0, 0
	}
}

// tenantLabel normalizes the wire tenant for metric labels.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "none"
	}
	return tenant
}

// tenantCell is one tenant's outcome counts plus the exported watermark
// per counter (delta pattern, like exportedCounter).
type tenantCell struct {
	admits, rejects, quota    uint64
	expAdmit, expRej, expQuot uint64
}

// tenantStats counts per-tenant outcomes under its own lock, capped: at
// most max distinct tenants get their own label, everyone past that
// folds into "other" so a tenant-id flood cannot blow up /metrics
// cardinality. Always on (satellite: multi-tenant admitload runs must
// be attributable), independent of span tracing.
type tenantStats struct {
	mu    sync.Mutex
	max   int
	cells map[string]*tenantCell
}

func newTenantStats(max int) *tenantStats {
	return &tenantStats{max: max, cells: make(map[string]*tenantCell)}
}

// cellLocked resolves the cell for a tenant, folding overflow tenants
// into "other".
func (t *tenantStats) cellLocked(tenant string) *tenantCell {
	lbl := tenantLabel(tenant)
	if c, ok := t.cells[lbl]; ok {
		return c
	}
	if len(t.cells) >= t.max {
		lbl = "other"
		if c, ok := t.cells[lbl]; ok {
			return c
		}
	}
	c := &tenantCell{}
	t.cells[lbl] = c
	return c
}

// admit counts a policy decision for tenant.
func (t *tenantStats) admit(tenant string, accepted bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.cellLocked(tenant)
	if accepted {
		c.admits++
	} else {
		c.rejects++
	}
}

// quotaDenied counts a 429 for tenant.
func (t *tenantStats) quotaDenied(tenant string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.cellLocked(tenant).quota++
}

// syncTo exports the growth since the last scrape into the labeled
// counter families. Callers hold the state lock (the registry is not
// goroutine-safe); tenantStats' own lock orders it against writers.
func (t *tenantStats) syncTo(reg *obs.Registry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	admits := reg.CounterVec("serve_tenant_admits_total", "Jobs accepted by the policy, by tenant.", "tenant")
	rejects := reg.CounterVec("serve_tenant_rejects_total", "Jobs rejected by the policy, by tenant.", "tenant")
	quota := reg.CounterVec("serve_tenant_quota_denials_total", "Requests denied 429 by tenant quota, by tenant.", "tenant")
	names := make([]string, 0, len(t.cells))
	for n := range t.cells {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		c := t.cells[n]
		// A series appears only once its count is nonzero, so idle
		// tenants never inflate the exposition.
		if c.admits > 0 {
			admits.With(n).Add(float64(c.admits - c.expAdmit))
			c.expAdmit = c.admits
		}
		if c.rejects > 0 {
			rejects.With(n).Add(float64(c.rejects - c.expRej))
			c.expRej = c.rejects
		}
		if c.quota > 0 {
			quota.With(n).Add(float64(c.quota - c.expQuot))
			c.expQuot = c.quota
		}
	}
}
