package serve

// Durable mode: with Config.WALDir set, every applied operation is
// appended to a crash-consistent write-ahead log and fsynced BEFORE its
// HTTP response is written, so an acknowledged admission survives
// SIGKILL or power loss. The apply worker batches whatever is queued
// (plus, with WALGroupWait, whatever arrives inside the window) into
// one group commit, amortizing the fsync across the batch.
//
// The durable path is a two-stage pipeline. The decide stage appends
// the batch to the WAL buffer, applies it in memory, and hands it to
// the committer over a bounded FIFO ring; the committer fsyncs through
// the batch's last WAL index, then writes its audit records and
// answers its clients. While one batch's fsync is in flight the decide
// stage is already deciding the next, so group-commit latency overlaps
// compute instead of serializing it — but an acknowledgment is still
// written only after the fsync that covers the op, so a 200 implies
// the op is on disk exactly as in the unpipelined design. Audit output
// is parked with its batch (deferAudit) until that fsync returns, so
// the audit file can never run ahead of the replayable log.
//
// Recovery on boot replays the log — the compacted prefix plus the tail
// segments, torn tails truncated by internal/wal — through the same
// applyLocked path live traffic takes, so the rebuilt cluster state and
// the regenerated audit stream are byte-identical to the pre-crash run.
// A meta.json sidecar pins the config identity; resuming under a
// different cluster shape is refused loudly, as is an existing log
// without Resume set.
//
// Failure model is fail-stop: once an append or commit errors, the
// error latches, no further request mutates state, and every request
// answers 503 "durability failure". Batches already decided when the
// error latched — at most walPipelineDepth of them — have mutated the
// in-memory cluster but are answered 503 without acknowledgment, and
// their ops may or may not replay after a restart; clients must treat
// a 503 as indeterminate, which is the standard at-least-once gray
// zone. Their audit records are discarded with the latch, so the audit
// stream never claims a decision that was not made durable.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"clustersched/internal/checkpoint"
	"clustersched/internal/obs"
	"clustersched/internal/obs/span"
	"clustersched/internal/wal"
)

// walMetaName is the config-identity sidecar inside WALDir.
const walMetaName = "meta.json"

// maxWALBatch bounds one group commit so a full queue cannot stretch
// the first request's latency unboundedly.
const maxWALBatch = 128

// walRecord is one WAL entry: an applied op, or a quota snapshot
// (written at drain so budgets restore exactly after a clean restart).
type walRecord struct {
	Op    *Op          `json:"op,omitempty"`
	Quota []quotaEntry `json:"quota,omitempty"`
}

// openWAL opens (or creates) the write-ahead log, verifies the config
// identity, and replays every recovered record. Called from New before
// the worker starts, so no locking is needed for the replay itself.
func (s *Server) openWAL() error {
	fsys := s.cfg.WALFS
	if fsys == nil {
		fsys = wal.OSFS{}
	}
	metaPath := filepath.Join(s.cfg.WALDir, walMetaName)
	existing, haveMeta := false, false
	if entries, err := fsys.ReadDir(s.cfg.WALDir); err == nil {
		for _, e := range entries {
			if e.Name() == walMetaName {
				existing, haveMeta = true, true
			}
			if strings.HasSuffix(e.Name(), ".wal") {
				existing = true
			}
		}
	}
	if existing && !s.cfg.Resume {
		return fmt.Errorf("serve: %s already holds a write-ahead log; start with Resume to recover it, or point WALDir at an empty directory", s.cfg.WALDir)
	}
	if haveMeta {
		metas, err := checkpoint.ReadFileJSONL[checkpointMeta](metaPath)
		if err != nil {
			return fmt.Errorf("serve: wal meta: %w", err)
		}
		if len(metas) != 1 {
			return fmt.Errorf("serve: wal meta %s: want exactly one record, got %d", metaPath, len(metas))
		}
		meta, want := metas[0], s.metaLocked()
		want.Ops, want.CRC = meta.Ops, meta.CRC
		if meta != want {
			return fmt.Errorf("serve: wal at %s was written by config %+v, current config is %+v: refusing to replay",
				s.cfg.WALDir, meta, want)
		}
	}
	log, recov, err := wal.Open(wal.Options{
		Dir:          s.cfg.WALDir,
		FS:           fsys,
		SegmentBytes: s.cfg.WALSegmentBytes,
		SyncBytes:    s.cfg.WALSyncBytes,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.wal = log
	if !haveMeta {
		meta := s.metaLocked()
		meta.Ops = 0
		if err := checkpoint.WriteFileJSONLFS(fsys, metaPath, []checkpointMeta{meta}); err != nil {
			s.wal.Close()
			return fmt.Errorf("serve: wal meta: %w", err)
		}
	}
	for _, r := range recov.Records {
		var rec walRecord
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			s.wal.Close()
			return fmt.Errorf("serve: wal record %d: %w", r.Index, err)
		}
		switch {
		case rec.Op != nil:
			op := *rec.Op
			if s.quotas != nil && op.Kind == "" {
				s.quotas.forceTake(op.Tenant)
			}
			s.applyLocked(&op, nil)
			if op.Seq > s.seq {
				s.seq = op.Seq
			}
		case rec.Quota != nil:
			if s.quotas != nil {
				s.quotas.restore(rec.Quota)
			}
		default:
			s.wal.Close()
			return fmt.Errorf("serve: wal record %d is neither op nor quota", r.Index)
		}
	}
	if s.applyErr != nil {
		s.wal.Close()
		return s.applyErr
	}
	s.walFsyncHist = s.reg.Histogram("serve_wal_fsync_seconds",
		"WAL group-commit fsync latency.",
		[]float64{0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5})
	return nil
}

// WALRecovery reports what boot recovery replayed: records applied from
// the log and bytes truncated from torn tails. Zeros without WALDir.
func (s *Server) WALRecovery() (records int, truncatedBytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal == nil {
		return 0, 0
	}
	m := s.wal.Metrics()
	return m.RecoveredRecords, m.RecoveryTruncatedBytes
}

// walPipelineDepth bounds the decided-but-unacknowledged ring between
// the decide stage and the committer: at most this many batches have
// been applied in memory and await their covering fsync. Deep enough to
// keep an fsync always in flight, shallow enough that a durability
// failure only ever strands a few batches' worth of unanswered clients.
const walPipelineDepth = 4

// answer is one decided request awaiting its post-fsync acknowledgment.
type answer struct {
	p   *pending
	op  Op
	out opOutcome
	// decided is when the decide stage finished this request; the
	// span's commit stage runs from here to its covering fsync. Zero
	// with tracing off.
	decided time.Time
}

// commitBatch is the unit flowing through the pipeline ring: a decided
// batch, the WAL index its acknowledgment must be durable through, and
// the audit decisions it produced (held back until that fsync returns,
// so a crash can never leave the audit file ahead of the replayable
// log).
type commitBatch struct {
	lastIdx uint64
	start   time.Time
	answers []answer
	audit   []obs.Decision
}

// durableWorker is the decide stage of the two-stage durable pipeline:
// dequeue, gather a batch, write-ahead, apply, and hand the decided
// batch to the committer — then immediately decide the next batch while
// the committer's fsync for this one is still in flight. Group-commit
// fsync latency thus overlaps the parallel decide of the next batch
// instead of serializing the apply path; clients still only hear a
// decision after the fsync covering it, so a 200 implies the op is on
// disk exactly as before. Ordering is untouched: batches enter the ring
// FIFO and the committer answers them FIFO, so decisions are
// acknowledged — and audit is written — strictly in apply order.
func (s *Server) durableWorker() {
	ring := make(chan commitBatch, walPipelineDepth)
	committerDone := make(chan struct{})
	go s.walCommitter(ring, committerDone)
	var batch []*pending
	for {
		p, ok := <-s.queue
		if !ok {
			break
		}
		s.markDequeued(p)
		batch = append(batch[:0], p)
		if wait := s.cfg.WALGroupWait; wait > 0 {
			timer := time.NewTimer(wait)
		gather:
			for len(batch) < maxWALBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break gather
					}
					s.markDequeued(q)
					batch = append(batch, q)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < maxWALBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break drain
					}
					s.markDequeued(q)
					batch = append(batch, q)
				default:
					break drain
				}
			}
		}
		s.decideBatch(batch, ring)
	}
	close(ring)
	<-committerDone
	s.mu.Lock()
	s.deferAudit = false
	s.mu.Unlock()
}

// decideBatch stamps, write-aheads and applies one batch, then pushes
// it onto the ring for the committer to fsync and acknowledge. Expired
// requests are answered without touching state. Nothing is applied once
// the durability error has latched (fail-stop).
func (s *Server) decideBatch(batch []*pending, ring chan<- commitBatch) {
	live := batch[:0]
	now := s.now()
	for _, p := range batch {
		if !p.deadline.IsZero() && now.After(p.deadline) {
			s.cTimeouts.Inc()
			p.resp <- applied{timedOut: true, finished: now}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	start := s.now()
	s.mu.Lock()
	var lastIdx uint64
	if s.walErr == nil {
		for _, p := range live {
			if p.hasT {
				p.op.T = p.reqT
			} else {
				p.op.T = s.wallVT(start)
			}
			s.seq++
			p.op.Seq = s.seq
			var appendT0 time.Time
			if p.sp != nil {
				// Everything between dequeue and the batch decide is
				// the group-commit gather window this op waited out.
				p.sp.Dur[span.StageGather] = start.Sub(p.deq)
				appendT0 = s.now()
			}
			data, err := json.Marshal(walRecord{Op: &p.op})
			if err == nil {
				lastIdx, err = s.wal.Append(data)
			}
			if err != nil {
				s.setWALErrLocked(err)
				break
			}
			if p.sp != nil {
				p.sp.Dur[span.StageAppend] = s.now().Sub(appendT0)
				p.sp.WALIndex = lastIdx
			}
		}
	}
	if s.walErr != nil {
		s.mu.Unlock()
		for _, p := range live {
			p.resp <- applied{walFailed: true, finished: s.now()}
		}
		return
	}
	cb := commitBatch{lastIdx: lastIdx, start: start, answers: make([]answer, 0, len(live))}
	for _, p := range live {
		var applyT0 time.Time
		if p.sp != nil {
			applyT0 = s.now()
		}
		out := s.applyLocked(&p.op, p.sp)
		ans := answer{p: p, op: p.op, out: out}
		if p.sp != nil {
			ans.decided = s.now()
			p.sp.Dur[span.StageDecide] = ans.decided.Sub(applyT0) - p.sp.Dur[span.StageAdvance]
		}
		cb.answers = append(cb.answers, ans)
	}
	cb.audit = s.auditPending
	s.auditPending = nil
	s.mu.Unlock()
	ring <- cb
}

// walCommitter is the commit stage: pop decided batches FIFO, make each
// durable through its last WAL index, then write its audit and answer
// its clients. SyncTo overlaps the flush-and-fsync with the decide
// stage's appends, and its durable-index bookkeeping means a batch
// whose bytes were already covered by a later-started sync acknowledges
// without a redundant fsync. A sync failure latches the fail-stop
// error; the stranded batch — and every batch still in the ring — is
// answered 503 without acknowledgment, since its decisions may not be
// on disk.
func (s *Server) walCommitter(ring <-chan commitBatch, done chan<- struct{}) {
	defer close(done)
	for cb := range ring {
		t0 := s.now()
		synced, err := s.wal.SyncTo(cb.lastIdx)
		if err != nil {
			s.mu.Lock()
			s.setWALErrLocked(err)
			s.mu.Unlock()
			failedAt := s.now()
			for _, a := range cb.answers {
				a.p.resp <- applied{walFailed: true, finished: failedAt}
			}
			continue
		}
		s.mu.Lock()
		if synced {
			s.walFsyncHist.Observe(s.now().Sub(t0).Seconds())
		}
		s.writeAuditLocked(cb.audit)
		end := s.now()
		lat := end.Sub(cb.start).Seconds()
		for range cb.answers {
			s.latHist.Observe(lat)
		}
		s.mu.Unlock()
		for _, a := range cb.answers {
			if a.p.sp != nil {
				// Commit: from this op's decision to covered by the
				// group fsync (audit write included — it is part of
				// what the 200 vouches for).
				a.p.sp.Dur[span.StageCommit] = end.Sub(a.decided)
			}
			s.cApplied.Inc()
			if a.op.Kind == "" {
				if a.out.accepted {
					s.cAdmitted.Inc()
				} else {
					s.cRejected.Inc()
				}
				s.tenants.admit(a.op.Tenant, a.out.accepted)
			}
			s.shed.observe(lat)
			a.p.resp <- applied{op: a.op, out: a.out, finished: end}
		}
	}
}

// setWALErrLocked latches the fail-stop durability error. Callers hold
// the write lock.
func (s *Server) setWALErrLocked(err error) {
	if s.walErr == nil {
		s.walErr = fmt.Errorf("serve: wal: %w", err)
	}
	if s.applyErr == nil {
		s.applyErr = s.walErr
	}
}

// drainWALLocked finishes the log on graceful shutdown: append the
// exact quota snapshot (so a resume restores budgets precisely instead
// of reconstructing them), commit, and close. Callers hold the write
// lock.
func (s *Server) drainWALLocked() error {
	if s.walErr != nil {
		_ = s.wal.Close()
		return s.walErr
	}
	if s.quotas != nil {
		if entries := s.quotas.snapshot(); len(entries) > 0 {
			data, err := json.Marshal(walRecord{Quota: entries})
			if err != nil {
				return fmt.Errorf("serve: wal quota snapshot: %w", err)
			}
			if _, err := s.wal.Append(data); err != nil {
				_ = s.wal.Close()
				return fmt.Errorf("serve: wal quota snapshot: %w", err)
			}
		}
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("serve: wal close: %w", err)
	}
	return nil
}
