package serve

// Durable mode: with Config.WALDir set, every applied operation is
// appended to a crash-consistent write-ahead log and fsynced BEFORE its
// HTTP response is written, so an acknowledged admission survives
// SIGKILL or power loss. The apply worker batches whatever is queued
// (plus, with WALGroupWait, whatever arrives inside the window) into
// one group commit, amortizing the fsync across the batch.
//
// Recovery on boot replays the log — the compacted prefix plus the tail
// segments, torn tails truncated by internal/wal — through the same
// applyLocked path live traffic takes, so the rebuilt cluster state and
// the regenerated audit stream are byte-identical to the pre-crash run.
// A meta.json sidecar pins the config identity; resuming under a
// different cluster shape is refused loudly, as is an existing log
// without Resume set.
//
// Failure model is fail-stop: once an append or commit errors, the
// error latches, no further state mutates, and every request answers
// 503 "durability failure". Ops appended but neither committed nor
// acknowledged may or may not replay after a restart; clients must
// treat a 503 as indeterminate, which is the standard at-least-once
// gray zone.

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"clustersched/internal/checkpoint"
	"clustersched/internal/wal"
)

// walMetaName is the config-identity sidecar inside WALDir.
const walMetaName = "meta.json"

// maxWALBatch bounds one group commit so a full queue cannot stretch
// the first request's latency unboundedly.
const maxWALBatch = 128

// walRecord is one WAL entry: an applied op, or a quota snapshot
// (written at drain so budgets restore exactly after a clean restart).
type walRecord struct {
	Op    *Op          `json:"op,omitempty"`
	Quota []quotaEntry `json:"quota,omitempty"`
}

// openWAL opens (or creates) the write-ahead log, verifies the config
// identity, and replays every recovered record. Called from New before
// the worker starts, so no locking is needed for the replay itself.
func (s *Server) openWAL() error {
	fsys := s.cfg.WALFS
	if fsys == nil {
		fsys = wal.OSFS{}
	}
	metaPath := filepath.Join(s.cfg.WALDir, walMetaName)
	existing, haveMeta := false, false
	if entries, err := fsys.ReadDir(s.cfg.WALDir); err == nil {
		for _, e := range entries {
			if e.Name() == walMetaName {
				existing, haveMeta = true, true
			}
			if strings.HasSuffix(e.Name(), ".wal") {
				existing = true
			}
		}
	}
	if existing && !s.cfg.Resume {
		return fmt.Errorf("serve: %s already holds a write-ahead log; start with Resume to recover it, or point WALDir at an empty directory", s.cfg.WALDir)
	}
	if haveMeta {
		metas, err := checkpoint.ReadFileJSONL[checkpointMeta](metaPath)
		if err != nil {
			return fmt.Errorf("serve: wal meta: %w", err)
		}
		if len(metas) != 1 {
			return fmt.Errorf("serve: wal meta %s: want exactly one record, got %d", metaPath, len(metas))
		}
		meta, want := metas[0], s.metaLocked()
		want.Ops, want.CRC = meta.Ops, meta.CRC
		if meta != want {
			return fmt.Errorf("serve: wal at %s was written by config %+v, current config is %+v: refusing to replay",
				s.cfg.WALDir, meta, want)
		}
	}
	log, recov, err := wal.Open(wal.Options{
		Dir:          s.cfg.WALDir,
		FS:           fsys,
		SegmentBytes: s.cfg.WALSegmentBytes,
		SyncBytes:    s.cfg.WALSyncBytes,
	})
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.wal = log
	if !haveMeta {
		meta := s.metaLocked()
		meta.Ops = 0
		if err := checkpoint.WriteFileJSONLFS(fsys, metaPath, []checkpointMeta{meta}); err != nil {
			s.wal.Close()
			return fmt.Errorf("serve: wal meta: %w", err)
		}
	}
	for _, r := range recov.Records {
		var rec walRecord
		if err := json.Unmarshal(r.Data, &rec); err != nil {
			s.wal.Close()
			return fmt.Errorf("serve: wal record %d: %w", r.Index, err)
		}
		switch {
		case rec.Op != nil:
			op := *rec.Op
			if s.quotas != nil && op.Kind == "" {
				s.quotas.forceTake(op.Tenant)
			}
			s.applyLocked(&op)
			if op.Seq > s.seq {
				s.seq = op.Seq
			}
		case rec.Quota != nil:
			if s.quotas != nil {
				s.quotas.restore(rec.Quota)
			}
		default:
			s.wal.Close()
			return fmt.Errorf("serve: wal record %d is neither op nor quota", r.Index)
		}
	}
	if s.applyErr != nil {
		s.wal.Close()
		return s.applyErr
	}
	s.walFsyncHist = s.reg.Histogram("serve_wal_fsync_seconds",
		"WAL group-commit fsync latency.",
		[]float64{0.00005, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5})
	return nil
}

// WALRecovery reports what boot recovery replayed: records applied from
// the log and bytes truncated from torn tails. Zeros without WALDir.
func (s *Server) WALRecovery() (records int, truncatedBytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.wal == nil {
		return 0, 0
	}
	m := s.wal.Metrics()
	return m.RecoveredRecords, m.RecoveryTruncatedBytes
}

// durableWorker is the apply loop in durable mode: dequeue, gather a
// batch, write-ahead, commit once, then apply and answer.
func (s *Server) durableWorker() {
	var batch []*pending
	for {
		p, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], p)
		if wait := s.cfg.WALGroupWait; wait > 0 {
			timer := time.NewTimer(wait)
		gather:
			for len(batch) < maxWALBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break gather
					}
					batch = append(batch, q)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < maxWALBatch {
				select {
				case q, ok := <-s.queue:
					if !ok {
						break drain
					}
					batch = append(batch, q)
				default:
					break drain
				}
			}
		}
		s.processBatch(batch)
	}
}

// processBatch is the durable counterpart of process: expire what timed
// out in queue, then write-ahead + single commit + apply for the rest.
// The response for every member is sent only after the commit covering
// it returned, which is the "acknowledged implies durable" contract.
func (s *Server) processBatch(batch []*pending) {
	live := batch[:0]
	now := s.now()
	for _, p := range batch {
		if !p.deadline.IsZero() && now.After(p.deadline) {
			s.cTimeouts.Inc()
			p.resp <- applied{timedOut: true}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}
	start := s.now()
	s.mu.Lock()
	if s.walErr == nil {
		for _, p := range live {
			if p.hasT {
				p.op.T = p.reqT
			} else {
				p.op.T = s.wallVT(start)
			}
			s.seq++
			p.op.Seq = s.seq
			data, err := json.Marshal(walRecord{Op: &p.op})
			if err == nil {
				_, err = s.wal.Append(data)
			}
			if err != nil {
				s.setWALErrLocked(err)
				break
			}
		}
	}
	if s.walErr == nil {
		t0 := s.now()
		err := s.wal.Commit()
		s.walFsyncHist.Observe(s.now().Sub(t0).Seconds())
		if err != nil {
			s.setWALErrLocked(err)
		}
	}
	if s.walErr != nil {
		s.mu.Unlock()
		for _, p := range live {
			p.resp <- applied{walFailed: true}
		}
		return
	}
	type answer struct {
		p   *pending
		op  Op
		out opOutcome
		lat float64
	}
	answers := make([]answer, 0, len(live))
	for _, p := range live {
		out := s.applyLocked(&p.op)
		lat := s.now().Sub(start).Seconds()
		s.latHist.Observe(lat)
		answers = append(answers, answer{p: p, op: p.op, out: out, lat: lat})
	}
	s.mu.Unlock()
	for _, a := range answers {
		s.cApplied.Inc()
		if a.op.Kind == "" {
			if a.out.accepted {
				s.cAdmitted.Inc()
			} else {
				s.cRejected.Inc()
			}
		}
		s.shed.observe(a.lat)
		a.p.resp <- applied{op: a.op, out: a.out}
	}
}

// setWALErrLocked latches the fail-stop durability error. Callers hold
// the write lock.
func (s *Server) setWALErrLocked(err error) {
	if s.walErr == nil {
		s.walErr = fmt.Errorf("serve: wal: %w", err)
	}
	if s.applyErr == nil {
		s.applyErr = s.walErr
	}
}

// drainWALLocked finishes the log on graceful shutdown: append the
// exact quota snapshot (so a resume restores budgets precisely instead
// of reconstructing them), commit, and close. Callers hold the write
// lock.
func (s *Server) drainWALLocked() error {
	if s.walErr != nil {
		_ = s.wal.Close()
		return s.walErr
	}
	if s.quotas != nil {
		if entries := s.quotas.snapshot(); len(entries) > 0 {
			data, err := json.Marshal(walRecord{Quota: entries})
			if err != nil {
				return fmt.Errorf("serve: wal quota snapshot: %w", err)
			}
			if _, err := s.wal.Append(data); err != nil {
				_ = s.wal.Close()
				return fmt.Errorf("serve: wal quota snapshot: %w", err)
			}
		}
	}
	if err := s.wal.Close(); err != nil {
		return fmt.Errorf("serve: wal close: %w", err)
	}
	return nil
}
