// Package serve wraps the EDF/Libra/LibraRisk admission-control policies
// in a long-running, overload-safe HTTP service: a live job stream is
// admitted against concurrent cluster state instead of a batch
// simulation.
//
// # Consistency model
//
// The simulation state (engine, cluster, policy, recorder, registry) is
// single-goroutine by construction, so the server partitions access with
// one RW lock: every mutation — advancing virtual time, processing
// completions, admitting a job, crashing a node — happens on a single
// apply worker holding the write lock, while snapshot reads (/state)
// take the read lock. Admission requests enter a bounded queue and are
// applied strictly in dequeue order, so each decision evaluates against
// a consistent cluster snapshot that already includes every earlier
// decision; there is no torn state to observe, ever.
//
// # Virtual time
//
// The cluster runs in virtual seconds. A request may pin its own submit
// time (`t`), or the wall clock drives it via Config.TimeScale; either
// way the applied time is clamped monotonically non-decreasing, the
// engine first processes every completion at or before it, and only then
// does the policy see the job. With TimeScale zero the clock is driven
// purely by request times, which makes a request stream — and therefore
// the audit log and the drain checkpoint — fully deterministic.
//
// # Overload envelope
//
// Per-tenant token buckets (quota with burst credit) answer 429, the
// bounded queue and per-request deadlines answer 503, and both carry a
// Retry-After derived from the cluster's own signal: the virtual time of
// the next believed completion, i.e. when LibraRisk's view of the world
// next changes. A load-shedding ladder driven by queue depth and p99
// admission latency sheds in order: the audit slow path first, then
// sheddable-class requests, then everything but health checks.
//
// # Drain
//
// Drain stops intake, applies every queued request (each in-flight
// request still gets a decision), flushes the audit stream, and
// checkpoints the applied-operation log through internal/checkpoint's
// atomic JSONL writer. A daemon restarted with Resume replays that log —
// byte-identically, including the audit stream — and continues serving.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"clustersched/internal/checkpoint"
	"clustersched/internal/cluster"
	"clustersched/internal/core"
	"clustersched/internal/metrics"
	"clustersched/internal/obs"
	"clustersched/internal/obs/span"
	"clustersched/internal/sim"
	"clustersched/internal/wal"
	"clustersched/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Policy selects the admission control: "edf", "libra" or
	// "librarisk" (the default).
	Policy string
	// Nodes is the cluster size (default 128, the paper's machine).
	Nodes int
	// Rating is the per-node SPEC rating (default 168).
	Rating float64
	// SigmaThreshold relaxes LibraRisk's zero-risk rule.
	SigmaThreshold float64
	// TimeScale is virtual seconds per wall-clock second. Zero freezes
	// the wall mapping: virtual time advances only through request-
	// supplied times, which is the deterministic mode tests and the
	// drain/resume byte-identity guarantee rely on.
	TimeScale float64
	// QueueDepth bounds the admission queue (default 256). A full queue
	// answers 503 with Retry-After.
	QueueDepth int
	// RequestTimeout is the per-request admission deadline (default 5s):
	// a request still queued when it expires is answered 503 without
	// ever touching cluster state.
	RequestTimeout time.Duration
	// QuotaRate is the per-tenant sustained admission rate in requests
	// per wall second; QuotaBurst is the bucket depth (burst credit).
	// Both zero disables quotas. Rate zero with burst positive is a
	// fixed, non-replenishing budget.
	QuotaRate  float64
	QuotaBurst float64
	// AdmitWorkers > 1 fans the Libra/LibraRisk admission node scan out
	// on a sim.ShardPool of that size; its park/wake/spin counters are
	// exported on /metrics.
	AdmitWorkers int
	// Shards > 1 attaches that many space-partitioned shard engines to
	// the serving cluster (clamped to Nodes): advancing virtual time —
	// firing every believed completion at or before an operation's
	// timestamp — runs across a shard pool in barrier phases, and the
	// same pool fans out the Libra/LibraRisk admission scan (subsuming
	// AdmitWorkers). Operations are still applied and answered strictly
	// in queue order, so the audit stream, drain checkpoint and WAL
	// replay stay byte-identical to the single-engine path. Time-shared
	// policies only; EDF ignores it. See shard.go.
	Shards int
	// Audit, when non-nil, receives every admission decision as JSONL,
	// streamed incrementally (the in-memory log is drained per decision).
	Audit io.Writer
	// CheckpointPath, when set, is where Drain writes the applied-op log.
	CheckpointPath string
	// Resume replays CheckpointPath (or the WALDir log) at startup when
	// one exists.
	Resume bool
	// WALDir, when set, switches the server into durable mode: every
	// applied operation is appended to a crash-consistent write-ahead
	// log in this directory and fsynced before its HTTP response is
	// written, so an acknowledged admission survives SIGKILL. Mutually
	// exclusive with CheckpointPath (the WAL subsumes the drain
	// checkpoint). See durable.go.
	WALDir string
	// WALSegmentBytes and WALSyncBytes tune the log (zero means the
	// wal package defaults: 4 MiB segments, 256 KiB sync bound).
	WALSegmentBytes int64
	WALSyncBytes    int64
	// WALGroupWait is the group-commit window: after dequeuing the
	// first operation the worker waits up to this long for more to
	// share the fsync. Zero commits immediately, still batching
	// whatever is already queued.
	WALGroupWait time.Duration
	// WALFS overrides the log's filesystem in tests (fault injection).
	WALFS wal.FS
	// Shed tunes the load-shedding ladder.
	Shed ShedConfig
	// ShedLog, when non-nil, receives one timestamped line per
	// shed-ladder level transition (up and down), so escalations are
	// visible in the daemon's log and not just as a gauge sample.
	ShedLog io.Writer
	// Spans enables per-request span tracing: every /admit and /node
	// request records its per-stage latencies (queue, WAL append, fsync
	// wait, advance, decide, ack) into a lock-free ring served by
	// /debug/spans, with stage histograms on /metrics. Off by default;
	// disabled tracing costs the hot path nil checks only, and enabled
	// tracing never changes a decision (spans_test.go proves both).
	Spans bool
	// SpanBuffer bounds the recent-spans ring (default 4096 spans).
	SpanBuffer int
	// TenantLabels caps how many distinct tenants get their own series
	// in the per-tenant /metrics counters before folding into "other"
	// (default 32).
	TenantLabels int

	// now overrides time.Now in tests.
	now func() time.Time
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Policy == "" {
		c.Policy = "librarisk"
	}
	if c.Nodes == 0 {
		c.Nodes = 128
	}
	if c.Rating == 0 {
		c.Rating = 168
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.SpanBuffer == 0 {
		c.SpanBuffer = 4096
	}
	if c.TenantLabels == 0 {
		c.TenantLabels = 32
	}
	c.Shed = c.Shed.withDefaults()
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Op is one state-mutating operation applied to the cluster, in apply
// order. The drain checkpoint is the sequence of Ops; replaying them
// through a fresh Server reproduces the cluster state — and the audit
// stream — byte-identically.
type Op struct {
	Seq  int    `json:"seq"`
	Kind string `json:"kind,omitempty"` // "" = admit, "node" = node up/down
	// T is the virtual time the op was applied at.
	T float64 `json:"t"`
	// Admit fields.
	Tenant   string  `json:"tenant,omitempty"`
	NumProc  int     `json:"numproc,omitempty"`
	Runtime  float64 `json:"runtime,omitempty"`
	Estimate float64 `json:"estimate,omitempty"`
	Deadline float64 `json:"deadline,omitempty"`
	Class    int     `json:"class,omitempty"`
	// Audited records whether the decision went through the audit slow
	// path, so a replay sheds exactly the ops the live run shed.
	Audited bool `json:"audited,omitempty"`
	// Node-op fields.
	Node int  `json:"node,omitempty"`
	Down bool `json:"down,omitempty"`
}

// opOutcome is what applying an Op produced.
type opOutcome struct {
	accepted bool
	reason   string
	killed   int // node ops: jobs torn down
}

// pending is one queued request awaiting its turn on the apply worker.
type pending struct {
	op       Op
	hasT     bool
	reqT     float64
	deadline time.Time
	resp     chan applied // buffered(1): the worker never blocks on it
	// sp is the request's trace span (nil with tracing off); enq/deq
	// are its queue-stage boundary timestamps, stamped only when sp is
	// set.
	sp  *span.Span
	enq time.Time
	deq time.Time
}

// applied is the worker's answer to a pending request.
type applied struct {
	timedOut bool
	// walFailed marks a durable-mode request refused because the
	// write-ahead log failed (fail-stop); nothing was applied.
	walFailed bool
	op        Op
	out       opOutcome
	// finished is when the worker produced this answer; the span's ack
	// stage runs from here to response-written. Zero with tracing off.
	finished time.Time
}

// exportedCounter is a goroutine-safe cumulative counter whose total is
// folded into an obs.Counter at scrape time (the registry itself is not
// synchronized; it lives under the state lock).
type exportedCounter struct {
	v        atomic.Uint64
	exported uint64
}

func (c *exportedCounter) Inc() { c.v.Add(1) }

// syncTo adds the growth since the last sync to ctr. Callers hold the
// state lock.
func (c *exportedCounter) syncTo(ctr *obs.Counter) {
	cur := c.v.Load()
	ctr.Add(float64(cur - c.exported))
	c.exported = cur
}

// Server is an online admission service around one simulated cluster.
type Server struct {
	cfg   Config
	start time.Time

	// mu guards the simulation state and the metrics registry. The apply
	// worker and /metrics take the write lock; /state takes the read
	// lock.
	mu     sync.RWMutex
	eng    *sim.Engine
	ts     *cluster.TimeShared
	ss     *cluster.SpaceShared
	pol    core.Policy
	rec    *metrics.Recorder
	audit  *obs.AuditLog
	auditW *bufio.Writer
	reg    *obs.Registry
	pool   *sim.ShardPool
	// shardEngines is non-nil when Config.Shards attached a sharded
	// serving cluster; shardBusy/shardErrs are the phase scratch.
	shardEngines []*sim.Engine
	shardBusy    []bool
	shardErrs    []error
	// ops is the in-memory applied-op log backing the drain checkpoint.
	// Durable mode drops it — the WAL is the log — so memory stays
	// bounded no matter how long the daemon runs; opsApplied counts
	// applied ops in both modes.
	ops        []Op
	opsApplied int
	seq        int
	// wal is non-nil in durable mode; walErr latches the first
	// durability failure (fail-stop: every later request answers 503).
	wal          *wal.Log
	walErr       error
	walFsyncHist *obs.Histogram
	// deferAudit, set while the durable pipeline runs, parks decisions
	// drained by streamAuditLocked in auditPending instead of writing
	// them; the committer writes each batch's decisions only after the
	// fsync covering its ops, so the audit file can never run ahead of
	// what a crash recovery would regenerate.
	deferAudit   bool
	auditPending []obs.Decision
	// wal counter export state (delta pattern, like the pool counters).
	walAppends, walAppendedBytes uint64
	walCommits, walRotations     uint64
	walCompactions               uint64
	// latHist is the admission-latency histogram (seconds).
	latHist *obs.Histogram
	// spans/stages are non-nil with Config.Spans: the recent-spans ring
	// behind /debug/spans and the per-stage latency collector folded
	// into /metrics. tenants is always on (per-tenant outcome counters).
	spans   *span.Recorder
	stages  *stageStats
	tenants *tenantStats
	// phaseHist times individual shard barrier phases (spans on +
	// sharded only; observed under the state lock).
	phaseHist *obs.Histogram
	// phaseCount is applyLocked's scratch: barrier phases run during
	// the current op's advance. Only read when spans are on.
	phaseCount int
	// applyErr latches the first apply-path failure (audit write error,
	// event budget); /healthz keeps answering but /state surfaces it.
	applyErr error
	// pool counter export state.
	poolParks, poolWakes, poolSpins uint64

	quotas *quotaTable
	shed   *shedder
	// shedTransExported is the transition-counter scrape watermark.
	shedTransExported uint64

	// vnowBits/nextFinishBits cache the virtual clock and the next
	// believed completion time for lock-free Retry-After computation.
	vnowBits       atomic.Uint64
	nextFinishBits atomic.Uint64

	// intake guards the draining flag and the queue send, so Drain can
	// close the queue with no sender in flight.
	intake   sync.RWMutex
	draining bool
	queue    chan *pending
	wg       sync.WaitGroup

	drainOnce sync.Once
	drainErr  error

	// HTTP-side counters, folded into the registry at scrape.
	cRequests, cAdmitted, cRejected   exportedCounter
	cQuotaDenied, cQueueFull          exportedCounter
	cShedClass, cShedAll, cAuditShed  exportedCounter
	cTimeouts, cDrainDenied, cApplied exportedCounter
	cPanics                           exportedCounter
}

// New builds a Server, optionally replaying a drain checkpoint, and
// starts its apply worker. Callers must end the server with Drain (or
// Close) or the worker goroutine leaks.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 || cfg.Rating <= 0 {
		return nil, fmt.Errorf("serve: invalid cluster size %d × rating %g", cfg.Nodes, cfg.Rating)
	}
	if cfg.TimeScale < 0 || math.IsNaN(cfg.TimeScale) || math.IsInf(cfg.TimeScale, 0) {
		return nil, fmt.Errorf("serve: invalid TimeScale %g", cfg.TimeScale)
	}
	if cfg.WALDir != "" && cfg.CheckpointPath != "" {
		return nil, errors.New("serve: WALDir and CheckpointPath are mutually exclusive: the write-ahead log subsumes the drain checkpoint")
	}
	s := &Server{
		cfg:     cfg,
		start:   cfg.now(),
		eng:     sim.NewEngine(),
		rec:     metrics.NewRecorder(),
		reg:     obs.NewRegistry(),
		queue:   make(chan *pending, cfg.QueueDepth),
		shed:    newShedder(cfg.Shed, cfg.ShedLog, cfg.now),
		tenants: newTenantStats(cfg.TenantLabels),
	}
	if cfg.Spans {
		s.spans = span.NewRecorder(cfg.SpanBuffer)
		s.stages = newStageStats()
	}
	ccfg := cluster.DefaultConfig()
	ccfg.RefRating = cfg.Rating
	switch cfg.Policy {
	case "librarisk", "libra":
		ts, err := cluster.NewTimeShared(cfg.Nodes, cfg.Rating, ccfg)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.ts = ts
		if cfg.Policy == "librarisk" {
			p := core.NewLibraRisk(ts, s.rec)
			p.SigmaThreshold = cfg.SigmaThreshold
			s.pol = p
		} else {
			s.pol = core.NewLibra(ts, s.rec)
		}
	case "edf":
		ss, err := cluster.NewSpaceShared(cfg.Nodes, cfg.Rating, ccfg)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.ss = ss
		s.pol = core.NewEDF(ss, s.rec)
	default:
		return nil, fmt.Errorf("serve: unknown policy %q (want edf, libra or librarisk)", cfg.Policy)
	}
	if cfg.Shards > 1 && s.ts != nil {
		if err := s.attachShards(); err != nil {
			return nil, err
		}
	} else if cfg.AdmitWorkers > 1 {
		if ap, ok := s.pol.(core.AdmitParallel); ok {
			s.pool = sim.NewShardPool(cfg.AdmitWorkers)
			ap.SetAdmitPool(s.pool)
		}
	}
	if s.spans != nil && s.shardEngines != nil {
		s.phaseHist = s.reg.Histogram("serve_shard_phase_seconds",
			"Wall time of one sharded-advance barrier phase.", stageBounds)
	}
	if cfg.QuotaRate > 0 || cfg.QuotaBurst > 0 {
		s.quotas = newQuotaTable(cfg.QuotaRate, cfg.QuotaBurst, cfg.now)
	}
	if cfg.Audit != nil {
		s.audit = obs.NewAuditLog("serve", s.pol.Name())
		s.auditW = bufio.NewWriter(cfg.Audit)
	}
	s.latHist = s.reg.Histogram("serve_admission_latency_seconds",
		"Admission decision latency from dequeue to decision.",
		[]float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5})
	s.storeClocks(0, math.NaN())
	if cfg.Resume && cfg.CheckpointPath != "" {
		if err := s.replayCheckpoint(); err != nil {
			s.closePool()
			return nil, err
		}
	}
	if cfg.WALDir != "" {
		if err := s.openWAL(); err != nil {
			s.closePool()
			return nil, err
		}
		// Armed before the worker goroutine exists so no caller can
		// observe the durable server with audit deferral off.
		s.deferAudit = true
	}
	s.wg.Add(1)
	go s.worker()
	return s, nil
}

func (s *Server) closePool() {
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
}

// now returns the wall clock (test-overridable).
func (s *Server) now() time.Time { return s.cfg.now() }

// wallVT maps the wall clock onto virtual seconds since start.
func (s *Server) wallVT(t time.Time) float64 {
	if s.cfg.TimeScale <= 0 {
		return 0
	}
	return t.Sub(s.start).Seconds() * s.cfg.TimeScale
}

// storeClocks publishes the virtual clock and next-completion caches for
// the lock-free Retry-After path. nextFinish NaN means "no pending
// completion".
func (s *Server) storeClocks(vnow, nextFinish float64) {
	s.vnowBits.Store(math.Float64bits(vnow))
	s.nextFinishBits.Store(math.Float64bits(nextFinish))
}

// retryAfter estimates how many wall seconds until the cluster's state
// next changes — the earliest believed completion, which is exactly the
// signal LibraRisk's rejection is based on — clamped to [1, 3600]. With
// a frozen wall mapping (TimeScale 0) it returns 1.
func (s *Server) retryAfter() time.Duration {
	if s.cfg.TimeScale <= 0 {
		return time.Second
	}
	vnow := math.Float64frombits(s.vnowBits.Load())
	next := math.Float64frombits(s.nextFinishBits.Load())
	if math.IsNaN(next) || next <= vnow {
		return time.Second
	}
	wall := (next - vnow) / s.cfg.TimeScale
	if wall < 1 {
		wall = 1
	}
	if wall > 3600 {
		wall = 3600
	}
	return time.Duration(wall * float64(time.Second))
}

// enqueueErr classifies why intake refused a request.
var (
	errDraining  = errors.New("serve: draining")
	errQueueFull = errors.New("serve: admission queue full")
)

// enqueue hands p to the apply worker, failing fast when draining or the
// queue is full. The send happens under the intake read lock, so Drain
// (which takes the write lock before closing the queue) can never race a
// send onto a closed channel.
func (s *Server) enqueue(p *pending) error {
	s.intake.RLock()
	defer s.intake.RUnlock()
	if s.draining {
		return errDraining
	}
	select {
	case s.queue <- p:
		return nil
	default:
		return errQueueFull
	}
}

// worker is the single apply goroutine: it owns every state mutation, in
// queue order.
func (s *Server) worker() {
	defer s.wg.Done()
	if s.wal != nil {
		s.durableWorker()
		return
	}
	for p := range s.queue {
		s.process(p)
	}
}

// process applies one pending request and answers it.
func (s *Server) process(p *pending) {
	if !p.deadline.IsZero() && s.now().After(p.deadline) {
		// Expired while queued: answer without touching cluster state, so
		// a backlogged server converges instead of doing work nobody is
		// waiting for.
		s.cTimeouts.Inc()
		p.resp <- applied{timedOut: true, finished: s.now()}
		return
	}
	s.markDequeued(p)
	start := s.now()
	s.mu.Lock()
	if !p.hasT {
		p.op.T = s.wallVT(start)
	} else {
		p.op.T = p.reqT
	}
	s.seq++
	p.op.Seq = s.seq
	out := s.applyLocked(&p.op, p.sp)
	end := s.now()
	lat := end.Sub(start).Seconds()
	s.latHist.Observe(lat)
	s.mu.Unlock()
	if p.sp != nil {
		// Decide is the apply critical section minus the advance that
		// ran inside it, so the two stages partition the lock hold.
		p.sp.Dur[span.StageDecide] = end.Sub(start) - p.sp.Dur[span.StageAdvance]
	}
	s.cApplied.Inc()
	if p.op.Kind == "" {
		if out.accepted {
			s.cAdmitted.Inc()
		} else {
			s.cRejected.Inc()
		}
		s.tenants.admit(p.op.Tenant, out.accepted)
	}
	s.shed.observe(lat)
	p.resp <- applied{op: p.op, out: out, finished: end}
}

// applyLocked advances virtual time to op.T (firing every completion at
// or before it), applies the op, records it, and refreshes the clock
// caches. Callers hold the write lock. op.T below the current virtual
// clock is clamped up — time never runs backwards. sp, when non-nil,
// receives the advance-stage timing (replay passes nil: recovered ops
// have no request to trace).
func (s *Server) applyLocked(op *Op, sp *span.Span) opOutcome {
	if op.T < s.eng.Now() || math.IsNaN(op.T) {
		op.T = s.eng.Now()
	}
	if op.T > s.eng.Now() {
		var t0 time.Time
		if sp != nil {
			t0 = s.now()
			s.phaseCount = 0
		}
		if s.shardEngines != nil {
			s.advanceShardedLocked(op.T)
		} else {
			s.eng.SetHorizon(op.T)
			if err := s.eng.Run(); err != nil && s.applyErr == nil {
				s.applyErr = fmt.Errorf("serve: advancing to t=%g: %w", op.T, err)
			}
		}
		s.eng.AdvanceTo(op.T)
		if sp != nil {
			sp.Dur[span.StageAdvance] = s.now().Sub(t0)
			sp.ShardPhases = s.phaseCount
		}
	}
	var out opOutcome
	switch op.Kind {
	case "node":
		out = s.applyNodeLocked(op)
	default:
		out = s.applyAdmitLocked(op)
	}
	if s.wal == nil {
		s.ops = append(s.ops, *op)
	}
	s.opsApplied++
	s.storeClocks(s.eng.Now(), s.peekNextLocked())
	return out
}

// applyAdmitLocked submits one job to the policy and reads the decision
// back out of the recorder delta — the one source of truth all three
// policies share, audit on or off.
func (s *Server) applyAdmitLocked(op *Op) opOutcome {
	if s.audit != nil {
		if op.Audited {
			s.setObs(s.audit)
		} else {
			s.setObs(nil)
		}
	}
	job := workload.Job{
		ID:            op.Seq,
		Submit:        op.T,
		Runtime:       op.Runtime,
		TraceEstimate: op.Estimate,
		NumProc:       op.NumProc,
		Deadline:      op.Deadline,
		Class:         workload.Class(op.Class),
	}
	n0 := len(s.rec.Results())
	s.pol.Submit(s.eng, job, op.Estimate)
	s.streamAuditLocked()
	for _, r := range s.rec.Results()[n0:] {
		if r.JobID == op.Seq && r.Outcome == metrics.Rejected {
			return opOutcome{accepted: false, reason: r.Reason}
		}
	}
	// Accepted into the cluster (Libra/LibraRisk) or the dispatch queue
	// (EDF, whose generous admission decides at selection time).
	return opOutcome{accepted: true}
}

// applyNodeLocked crashes or repairs one node. Jobs killed by a crash
// are resubmitted by the policy's recovery hook inside this call, so the
// decision stream (and audit) stays deterministic.
func (s *Server) applyNodeLocked(op *Op) opOutcome {
	if s.audit != nil {
		if op.Audited {
			s.setObs(s.audit)
		} else {
			s.setObs(nil)
		}
	}
	var killed int
	if s.ts != nil {
		killed = len(s.ts.SetNodeDown(s.eng, op.Node, op.Down))
	} else {
		killed = len(s.ss.SetNodeDown(s.eng, op.Node, op.Down))
	}
	s.streamAuditLocked()
	return opOutcome{accepted: true, killed: killed}
}

// setObs swaps the policy's audit attachment (nil detaches).
func (s *Server) setObs(a *obs.AuditLog) {
	type obsPolicy interface {
		SetObs(obs.Tracer, *obs.SimMetrics, *obs.AuditLog)
	}
	if p, ok := s.pol.(obsPolicy); ok {
		p.SetObs(nil, nil, a)
	}
}

// streamAuditLocked drains newly recorded decisions to the audit
// writer — or parks them for the pipeline committer when deferAudit is
// set (see durable.go).
func (s *Server) streamAuditLocked() {
	if s.audit == nil || s.auditW == nil {
		return
	}
	ds := s.audit.Drain()
	if len(ds) == 0 {
		return
	}
	if s.deferAudit {
		s.auditPending = append(s.auditPending, ds...)
		return
	}
	s.writeAuditLocked(ds)
}

// writeAuditLocked appends decisions to the audit stream. A write
// failure latches applyErr and stops the stream; admission keeps
// serving (losing audit is strictly better than refusing traffic).
func (s *Server) writeAuditLocked(ds []obs.Decision) {
	if len(ds) == 0 || s.auditW == nil {
		return
	}
	if err := obs.WriteAuditJSONL(s.auditW, ds); err != nil {
		if s.applyErr == nil {
			s.applyErr = fmt.Errorf("serve: audit stream: %w", err)
		}
		s.auditW = nil
		return
	}
	if err := s.auditW.Flush(); err != nil {
		if s.applyErr == nil {
			s.applyErr = fmt.Errorf("serve: audit stream: %w", err)
		}
		s.auditW = nil
	}
}

// Drain performs the graceful-shutdown protocol: stop intake, apply
// every queued request (each still gets its decision), flush the audit
// stream, close the admit pool, and checkpoint the op log. Drain is
// idempotent; concurrent callers share the first run's result. The
// context bounds the wait for the queue to empty.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.intake.Lock()
		s.draining = true
		close(s.queue)
		s.intake.Unlock()
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.drainErr = fmt.Errorf("serve: drain: %w", context.Cause(ctx))
			return
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		s.closePool()
		s.detachShardsLocked()
		if s.auditW != nil {
			if err := s.auditW.Flush(); err != nil && s.applyErr == nil {
				s.applyErr = fmt.Errorf("serve: audit flush: %w", err)
			}
		}
		if s.cfg.CheckpointPath != "" {
			if err := s.writeCheckpointLocked(); err != nil {
				s.drainErr = err
				return
			}
		}
		if s.wal != nil {
			if err := s.drainWALLocked(); err != nil {
				s.drainErr = err
				return
			}
		}
		if s.applyErr != nil {
			s.drainErr = s.applyErr
		}
	})
	return s.drainErr
}

// Close is Drain with no deadline, for tests and defer chains.
func (s *Server) Close() error { return s.Drain(context.Background()) }

// OpsApplied returns how many operations have been applied so far
// (including ops replayed from a checkpoint or the WAL at boot).
func (s *Server) OpsApplied() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.opsApplied
}

// checkpointVersion is the drain-checkpoint format: version 2 added the
// body checksum and the quota snapshot line.
const checkpointVersion = 2

// checkpointMeta identifies the configuration a checkpoint belongs to; a
// resume under a different cluster shape must fail loudly, not replay.
// The same struct doubles as the WAL directory's meta.json sidecar
// (with Ops and CRC zero — a log has no fixed length to pin).
type checkpointMeta struct {
	Version int     `json:"version"`
	Policy  string  `json:"policy"`
	Nodes   int     `json:"nodes"`
	Rating  float64 `json:"rating"`
	Sigma   float64 `json:"sigma"`
	Ops     int     `json:"ops"`
	// CRC is CRC32C over every body line after the header, trailing
	// newline included, so a truncated or edited checkpoint is refused
	// before any of it replays.
	CRC uint32 `json:"crc"`
}

// checkpointLine is one line of the drain checkpoint: a meta header, an
// op, or the final quota snapshot.
type checkpointLine struct {
	Meta  *checkpointMeta `json:"meta,omitempty"`
	Op    *Op             `json:"op,omitempty"`
	Quota []quotaEntry    `json:"quota,omitempty"`
}

func (s *Server) metaLocked() checkpointMeta {
	return checkpointMeta{
		Version: checkpointVersion,
		Policy:  s.cfg.Policy,
		Nodes:   s.cfg.Nodes,
		Rating:  s.cfg.Rating,
		Sigma:   s.cfg.SigmaThreshold,
		Ops:     s.opsApplied,
	}
}

// writeCheckpointLocked persists the applied-op log atomically: op
// lines, then the quota snapshot, headed by a meta line whose CRC
// covers every body byte. The body is marshaled once and written raw so
// the checksum is over exactly the bytes on disk.
func (s *Server) writeCheckpointLocked() error {
	body := make([][]byte, 0, len(s.ops)+1)
	crc := uint32(0)
	addLine := func(ln checkpointLine) error {
		raw, err := json.Marshal(ln)
		if err != nil {
			return fmt.Errorf("serve: checkpoint: %w", err)
		}
		body = append(body, raw)
		crc = wal.ChecksumAdd(crc, raw)
		crc = wal.ChecksumAdd(crc, []byte{'\n'})
		return nil
	}
	for i := range s.ops {
		if err := addLine(checkpointLine{Op: &s.ops[i]}); err != nil {
			return err
		}
	}
	if s.quotas != nil {
		if entries := s.quotas.snapshot(); len(entries) > 0 {
			if err := addLine(checkpointLine{Quota: entries}); err != nil {
				return err
			}
		}
	}
	meta := s.metaLocked()
	meta.CRC = crc
	hdr, err := json.Marshal(checkpointLine{Meta: &meta})
	if err != nil {
		return fmt.Errorf("serve: checkpoint: %w", err)
	}
	lines := make([][]byte, 0, len(body)+1)
	lines = append(lines, hdr)
	lines = append(lines, body...)
	return checkpoint.WriteFileLines(wal.OSFS{}, s.cfg.CheckpointPath, lines)
}

// replayCheckpoint loads CheckpointPath, verifies the header checksum
// over the raw body bytes, and re-applies its ops against the freshly
// built state. Each op carries the exact virtual time and audit
// attachment of the original run, so the replayed decision stream —
// including the audit JSONL — is byte-identical to the one the drained
// daemon produced. A missing file is a fresh start, not an error.
func (s *Server) replayCheckpoint() error {
	path := s.cfg.CheckpointPath
	raw, err := checkpoint.ReadFileLines(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return err
	}
	if len(raw) == 0 {
		return fmt.Errorf("serve: checkpoint %s: missing meta header", path)
	}
	var hdr checkpointLine
	if err := json.Unmarshal(raw[0], &hdr); err != nil || hdr.Meta == nil {
		return fmt.Errorf("serve: checkpoint %s: missing meta header", path)
	}
	meta := *hdr.Meta
	if meta.Version != checkpointVersion {
		return fmt.Errorf("serve: checkpoint %s: unsupported version %d (want %d)", path, meta.Version, checkpointVersion)
	}
	crc := uint32(0)
	for _, ln := range raw[1:] {
		crc = wal.ChecksumAdd(crc, ln)
		crc = wal.ChecksumAdd(crc, []byte{'\n'})
	}
	if crc != meta.CRC {
		return fmt.Errorf("serve: checkpoint %s: body checksum %08x does not match header %08x: refusing to replay a corrupt checkpoint",
			path, crc, meta.CRC)
	}
	want := s.metaLocked()
	want.Ops, want.CRC = meta.Ops, meta.CRC
	if meta != want {
		return fmt.Errorf("serve: checkpoint %s was written by config %+v, current config is %+v",
			path, meta, want)
	}
	ops := 0
	for i, rawLn := range raw[1:] {
		var ln checkpointLine
		if err := json.Unmarshal(rawLn, &ln); err != nil {
			return fmt.Errorf("serve: checkpoint %s: line %d: %w", path, i+2, err)
		}
		switch {
		case ln.Op != nil:
			op := *ln.Op
			s.applyLocked(&op, nil)
			if op.Seq > s.seq {
				s.seq = op.Seq
			}
			ops++
		case ln.Quota != nil:
			if s.quotas != nil {
				s.quotas.restore(ln.Quota)
			}
		default:
			return fmt.Errorf("serve: checkpoint %s: line %d is neither meta, op nor quota", path, i+2)
		}
	}
	if ops != meta.Ops {
		return fmt.Errorf("serve: checkpoint %s: header claims %d ops, file has %d", path, meta.Ops, ops)
	}
	return s.applyErr
}
