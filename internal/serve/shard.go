package serve

// Sharded serving: with Config.Shards > 1 the server attaches
// space-partitioned shard engines (cluster.AttachShards) to the serving
// cluster, so advancing virtual time — firing every believed completion
// at or before an operation's timestamp — fans out across a
// sim.ShardPool instead of walking one calendar on the apply goroutine.
// The same pool drives the Libra/LibraRisk admission node scan.
//
// Ordering is untouched: the apply worker still owns every mutation and
// applies operations strictly in queue order; a shard phase only runs
// node-local update events, and the completions they produce are parked
// and applied at the barrier in (completion time, job id) order — the
// exact order the sequential engine fires them in (see
// cluster.EndShardPhase and DESIGN.md "Sharded execution"). The audit
// stream, the drain checkpoint and a WAL replay are therefore
// byte-identical to the single-engine path, which the differential
// tests in shard_test.go assert.

import (
	"fmt"
	"math"
	"time"

	"clustersched/internal/core"
	"clustersched/internal/sim"
)

// attachShards installs the shard engines and the phase pool on a
// time-shared serving cluster. Called from New before any replay, so
// recovered operations advance time through the sharded path too —
// replay and live traffic share one code path.
func (s *Server) attachShards() error {
	k := s.cfg.Shards
	if k > s.cfg.Nodes {
		k = s.cfg.Nodes
	}
	if k < 2 {
		return nil
	}
	engines := make([]*sim.Engine, k)
	for i := range engines {
		engines[i] = sim.NewEngine()
	}
	if err := s.ts.AttachShards(engines); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	s.shardEngines = engines
	s.shardBusy = make([]bool, k)
	s.shardErrs = make([]error, k)
	s.pool = sim.NewShardPool(k)
	if ap, ok := s.pol.(core.AdmitParallel); ok {
		ap.SetAdmitPool(s.pool)
	}
	return nil
}

// detachShardsLocked reverts to sequential mode at drain. The pool is
// closed separately (closePool); any events still parked on the shard
// engines belong to jobs outliving the drain and are dropped with them.
func (s *Server) detachShardsLocked() {
	if s.shardEngines == nil {
		return
	}
	s.ts.DetachShards()
	s.shardEngines = nil
}

// advanceShardedLocked is the sharded counterpart of applyLocked's
// SetHorizon/Run block: advance the cluster to virtual time T, firing
// every event at or before T. Shards drain concurrently in barrier
// phases; parked completions are applied between phases in sequential
// order. The global calendar is interleaved exactly as the batch
// driver's barrier loop does (serve mode schedules nothing on it today,
// but the protocol stays exact if that changes), with consecutive
// equal-key global events batched behind one phase.
func (s *Server) advanceShardedLocked(T float64) {
	s.eng.SetHorizon(T)
	for {
		gt, gpr, ok := s.eng.PeekNext()
		if !ok || gt > T {
			break
		}
		s.shardPhaseLocked(gt, gpr, false)
		for {
			if _, err := s.eng.Step(); err != nil {
				if s.applyErr == nil {
					s.applyErr = fmt.Errorf("serve: advancing to t=%g: %w", T, err)
				}
				return
			}
			nt, npr, nok := s.eng.PeekNext()
			if !nok || nt != gt || npr != gpr {
				break
			}
		}
	}
	// No global event within the horizon: drain the shards through T
	// inclusive. Completions applied at the barrier schedule no node
	// work of their own, so one phase suffices; re-peeking guards the
	// model ever proving otherwise.
	for s.shardPhaseLocked(T, 0, true) {
	}
}

// shardPhaseLocked runs one barrier phase, draining every shard with an
// event inside the limit — strictly below the (t, pr) key, or at or
// before t when inclusive — and applying the parked completions. It
// reports whether any shard had work. Phases where no shard is busy
// skip the pool barrier; a single busy shard runs inline on the apply
// goroutine — both common at serving arrival rates, where wakeups would
// otherwise dominate.
func (s *Server) shardPhaseLocked(t float64, pr sim.Priority, inclusive bool) bool {
	nbusy, last := 0, -1
	for i, se := range s.shardEngines {
		st, sp, ok := se.PeekNext()
		if inclusive {
			s.shardBusy[i] = ok && st <= t
		} else {
			s.shardBusy[i] = ok && (st < t || (st == t && sp < pr))
		}
		if s.shardBusy[i] {
			nbusy++
			last = i
		}
	}
	if nbusy == 0 {
		return false
	}
	// Span plumbing: count this barrier phase and, with tracing on,
	// time it into the phase histogram. Neither affects the decision
	// path — the counter is scratch and the histogram observes under
	// the already-held state lock.
	s.phaseCount++
	var phase0 time.Time
	if s.phaseHist != nil {
		phase0 = s.now()
	}
	run := func(se *sim.Engine) error {
		if inclusive {
			se.SetHorizon(t)
		} else {
			se.SetHorizonKey(t, pr)
		}
		return se.Run()
	}
	s.ts.BeginShardPhase()
	if nbusy == 1 {
		s.shardErrs[last] = run(s.shardEngines[last])
	} else {
		s.pool.Run(func(w int) {
			if !s.shardBusy[w] {
				s.shardErrs[w] = nil
				return
			}
			s.shardErrs[w] = run(s.shardEngines[w])
		})
	}
	s.ts.EndShardPhase(s.eng)
	if s.phaseHist != nil {
		s.phaseHist.Observe(s.now().Sub(phase0).Seconds())
	}
	for _, err := range s.shardErrs {
		if err != nil && s.applyErr == nil {
			s.applyErr = fmt.Errorf("serve: shard phase at t=%g: %w", t, err)
		}
	}
	return true
}

// peekNextLocked returns the earliest pending event time across the
// global and shard calendars — the next believed completion, feeding
// the lock-free Retry-After cache. NaN when nothing is pending.
func (s *Server) peekNextLocked() float64 {
	next := math.NaN()
	if t, _, ok := s.eng.PeekNext(); ok {
		next = t
	}
	for _, se := range s.shardEngines {
		if t, _, ok := se.PeekNext(); ok && (math.IsNaN(next) || t < next) {
			next = t
		}
	}
	return next
}
