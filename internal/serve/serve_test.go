package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testConfig is a small deterministic server: frozen wall mapping, four
// nodes, no quotas, no shedding surprises (fills left at defaults but
// the queue is deep relative to test load).
func testConfig() Config {
	return Config{
		Policy:    "librarisk",
		Nodes:     4,
		TimeScale: 0,
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, hts
}

// postJSON posts body to url and decodes the response into out,
// returning the raw response for header/status checks.
func postJSON(t *testing.T, url string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp
}

func admitAt(t *testing.T, base string, at float64, req AdmitRequest) (AdmitResponse, *http.Response) {
	t.Helper()
	req.T = &at
	var out AdmitResponse
	resp := postJSON(t, base+"/admit", req, &out)
	return out, resp
}

func TestAdmitAcceptAndReject(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	// A spanning job occupies all four nodes. A short urgent job then has
	// no empty node, and on every occupied node the predicted deadline
	// delays diverge (the spanning job would be pushed late while the
	// candidate still misses), so LibraRisk's zero-risk rule refuses it.
	out, resp := admitAt(t, hts.URL, 0, AdmitRequest{
		Tenant: "t0", NumProc: 4, Runtime: 100, Deadline: 120,
	})
	if resp.StatusCode != http.StatusOK || !out.Accepted {
		t.Fatalf("spanning job: status %d accepted %v (%s)", resp.StatusCode, out.Accepted, out.Reason)
	}
	out, resp = admitAt(t, hts.URL, 0, AdmitRequest{
		Tenant: "t0", NumProc: 1, Runtime: 30, Deadline: 40,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("urgent job: status %d, want 200", resp.StatusCode)
	}
	if out.Accepted {
		t.Fatal("urgent job accepted against a fully risky cluster")
	}
	if out.Reason == "" {
		t.Errorf("rejection carried no reason")
	}
	if out.RetryAfterS <= 0 {
		t.Errorf("rejection carried no retry_after_s hint: %+v", out)
	}
}

func TestAdmitAdvancesVirtualTimeAndFreesCapacity(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	if out, _ := admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 4, Runtime: 100, Deadline: 120}); !out.Accepted {
		t.Fatalf("spanning job rejected: %s", out.Reason)
	}
	// At t=0 every node carries the spanning job's risk; by t=200 it has
	// completed and the same request is admissible again.
	if out, _ := admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 30, Deadline: 40}); out.Accepted {
		t.Fatal("urgent job at t=0 accepted on a fully risky cluster")
	}
	out, _ := admitAt(t, hts.URL, 200, AdmitRequest{NumProc: 1, Runtime: 30, Deadline: 40})
	if !out.Accepted {
		t.Fatalf("job at t=200 rejected after completions: %s", out.Reason)
	}
	if out.T != 200 {
		t.Errorf("applied at t=%g, want 200", out.T)
	}
}

func TestAdmitTimeNeverRunsBackwards(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	if out, _ := admitAt(t, hts.URL, 100, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 50}); out.T != 100 {
		t.Fatalf("first op applied at t=%g, want 100", out.T)
	}
	// An earlier-stamped request is clamped to the current clock, not
	// applied in the past.
	out, _ := admitAt(t, hts.URL, 5, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 50})
	if out.T != 100 {
		t.Fatalf("stale-stamped op applied at t=%g, want clamp to 100", out.T)
	}
}

func TestAdmitValidation(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	bad := []AdmitRequest{
		{NumProc: 0, Runtime: 10, Deadline: 50},               // no processors
		{NumProc: 1, Runtime: 0, Deadline: 50},                // no runtime
		{NumProc: 1, Runtime: 10, Deadline: 0},                // no deadline
		{NumProc: 1, Runtime: 10, Deadline: 50, Class: "mid"}, // unknown class
	}
	for i, req := range bad {
		resp := postJSON(t, hts.URL+"/admit", req, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d: status %d, want 400", i, resp.StatusCode)
		}
	}
	neg := -1.0
	req := AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 50, T: &neg}
	if resp := postJSON(t, hts.URL+"/admit", req, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative t: status %d, want 400", resp.StatusCode)
	}
	resp, err := http.Post(hts.URL+"/admit", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}
}

func TestNodeKillAndRepair(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	if out, _ := admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 4, Runtime: 100, Deadline: 300}); !out.Accepted {
		t.Fatalf("spanning job rejected: %s", out.Reason)
	}
	var nr NodeResponse
	resp := postJSON(t, hts.URL+"/node", NodeRequest{Node: 0, Down: true}, &nr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("node kill: status %d", resp.StatusCode)
	}
	if nr.Killed != 1 {
		t.Errorf("killing node 0 tore down %d jobs, want 1", nr.Killed)
	}
	var st StateResponse
	if resp := getJSON(t, hts.URL+"/state", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("/state: %d", resp.StatusCode)
	}
	if st.NodesUp != 3 {
		t.Errorf("nodes_up = %d after kill, want 3", st.NodesUp)
	}
	postJSON(t, hts.URL+"/node", NodeRequest{Node: 0, Down: false}, &nr)
	getJSON(t, hts.URL+"/state", &st)
	if st.NodesUp != 4 {
		t.Errorf("nodes_up = %d after repair, want 4", st.NodesUp)
	}
	if resp := postJSON(t, hts.URL+"/node", NodeRequest{Node: 99, Down: true}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range node: status %d, want 400", resp.StatusCode)
	}
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealthz(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	resp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %d", resp.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	cfg := testConfig()
	cfg.QuotaRate = 0
	cfg.QuotaBurst = 2
	s, hts := newTestServer(t, cfg)
	for i := 0; i < 3; i++ {
		admitAt(t, hts.URL, 0, AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 50})
	}
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"serve_requests_total 3",
		"serve_admitted_total 2",
		"serve_quota_denied_total 1",
		"serve_admission_latency_seconds_count 2",
		"serve_nodes_total 4",
		"serve_quota_tenants 1",
		"serve_shed_level 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	_ = s
}

func TestPoolCountersOnMetrics(t *testing.T) {
	cfg := testConfig()
	cfg.Nodes = 128 // the parallel admit scan only engages at full scale
	cfg.AdmitWorkers = 2
	_, hts := newTestServer(t, cfg)
	admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 50})
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"serve_admitpool_parks_total",
		"serve_admitpool_wakes_total",
		"serve_admitpool_spin_iters_total",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	s, _ := newTestServer(t, testConfig())
	h := s.recovering(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/admit", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rr.Code)
	}
	if s.cPanics.v.Load() != 1 {
		t.Errorf("panic counter = %d, want 1", s.cPanics.v.Load())
	}
}

func TestWorkerTimeoutExpiresQueuedRequest(t *testing.T) {
	s, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := &pending{
		op:       Op{NumProc: 1, Runtime: 10, Estimate: 10, Deadline: 50},
		deadline: time.Now().Add(-time.Second), // already expired
		resp:     make(chan applied, 1),
	}
	s.process(p)
	a := <-p.resp
	if !a.timedOut {
		t.Fatalf("expired request was applied anyway: %+v", a)
	}
	if got := s.OpsApplied(); got != 0 {
		t.Errorf("expired request touched cluster state: %d ops applied", got)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	if _, err := New(Config{Policy: "fifo"}); err == nil {
		t.Fatal("New accepted unknown policy")
	}
}

func TestEDFPolicyServes(t *testing.T) {
	cfg := testConfig()
	cfg.Policy = "edf"
	_, hts := newTestServer(t, cfg)
	out, resp := admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 50})
	if resp.StatusCode != http.StatusOK || !out.Accepted {
		t.Fatalf("EDF admit: status %d accepted %v", resp.StatusCode, out.Accepted)
	}
	var st StateResponse
	getJSON(t, hts.URL+"/state", &st)
	if st.Policy == "" {
		t.Error("state carries no policy name")
	}
}

func TestRetryAfterDerivation(t *testing.T) {
	cfg := testConfig()
	cfg.TimeScale = 60 // one wall second = one virtual minute
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Next completion 120 virtual seconds out → 2 wall seconds.
	s.storeClocks(0, 120)
	if got := s.retryAfter(); got != 2*time.Second {
		t.Errorf("retryAfter = %v, want 2s", got)
	}
	// No pending completion → floor of one second.
	s.storeClocks(0, math.NaN())
	if got := s.retryAfter(); got != time.Second {
		t.Errorf("retryAfter with no completions = %v, want 1s", got)
	}
	// Enormous gap clamps to an hour.
	s.storeClocks(0, 1e9)
	if got := s.retryAfter(); got != time.Hour {
		t.Errorf("retryAfter clamp = %v, want 1h", got)
	}
}

func TestStateSnapshotConsistentUnderLoad(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			admitAt(t, hts.URL, float64(i), AdmitRequest{NumProc: 1, Runtime: 5, Deadline: 30})
		}
	}()
	for i := 0; i < 20; i++ {
		var st StateResponse
		if resp := getJSON(t, hts.URL+"/state", &st); resp.StatusCode != http.StatusOK {
			t.Fatalf("/state under load: %d", resp.StatusCode)
		}
		if st.NodesUp > st.Nodes || st.Running < 0 {
			t.Fatalf("inconsistent snapshot: %+v", st)
		}
	}
	<-done
}

func TestConcurrentAdmitsAllDecided(t *testing.T) {
	_, hts := newTestServer(t, testConfig())
	const n = 64
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			b, _ := json.Marshal(AdmitRequest{Tenant: fmt.Sprintf("t%d", i%7), NumProc: 1, Runtime: 10, Deadline: 100})
			resp, err := http.Post(hts.URL+"/admit", "application/json", bytes.NewReader(b))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusServiceUnavailable:
				errs <- nil
			default:
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
