package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"clustersched/internal/wal"
)

// durableConfig is testConfig plus a WAL directory.
func durableConfig(dir string) Config {
	cfg := testConfig()
	cfg.WALDir = dir
	return cfg
}

// copyDir clones a WAL directory, standing in for the disk image a
// SIGKILL would leave behind: acknowledged work has been fsynced, so
// the files already contain it.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableAckImpliesRecoverable is the core durability pin: every
// acknowledged admission must survive an abrupt stop. The "crash" is a
// byte-level copy of the WAL directory taken with the first server
// still running (no Drain, no Close) — exactly the state a SIGKILL
// leaves — and a fresh server resumed over the copy must report every
// acked op and regenerate a byte-identical audit stream.
func TestDurableAckImpliesRecoverable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	var audit1 bytes.Buffer
	cfg := durableConfig(dir)
	cfg.Audit = &audit1
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	hts := httptest.NewServer(s1.Handler())
	defer hts.Close()
	const n = 10
	for i := 0; i < n; i++ {
		out, resp := admitAt(t, hts.URL, float64(i)*15, AdmitRequest{
			Tenant: "t", NumProc: 1 + i%2, Runtime: 60, Deadline: 70 + float64(i%3)*20,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: status %d", i, resp.StatusCode)
		}
		if out.Job != i+1 {
			t.Fatalf("admit %d: job seq %d, want %d", i, out.Job, i+1)
		}
	}

	crashed := filepath.Join(t.TempDir(), "crashed")
	copyDir(t, dir, crashed)

	var audit2 bytes.Buffer
	cfg2 := durableConfig(crashed)
	cfg2.Audit = &audit2
	cfg2.Resume = true
	s2, err := New(cfg2)
	if err != nil {
		t.Fatalf("resume over crash image: %v", err)
	}
	defer s2.Close()
	if got := s2.OpsApplied(); got != n {
		t.Fatalf("recovered %d ops, want %d (acked work lost)", got, n)
	}
	recs, trunc := s2.WALRecovery()
	if recs != n || trunc != 0 {
		t.Fatalf("WALRecovery = (%d, %d), want (%d, 0)", recs, trunc, n)
	}
	if !bytes.Equal(audit1.Bytes(), audit2.Bytes()) {
		t.Fatalf("recovered audit differs from live audit:\n--- live\n%s\n--- recovered\n%s", audit1.Bytes(), audit2.Bytes())
	}
}

// TestDurableTornTailRecovery: garbage appended to the active segment
// (a half-written frame at the moment of death) is truncated away on
// resume; every acked op still replays.
func TestDurableTornTailRecovery(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	hts := httptest.NewServer(s1.Handler())
	defer hts.Close()
	const n = 5
	for i := 0; i < n; i++ {
		if _, resp := admitAt(t, hts.URL, float64(i)*20, AdmitRequest{NumProc: 1, Runtime: 30, Deadline: 200}); resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d failed", i)
		}
	}
	crashed := filepath.Join(t.TempDir(), "crashed")
	copyDir(t, dir, crashed)
	// Tear the newest segment's tail.
	entries, err := os.ReadDir(crashed)
	if err != nil {
		t.Fatal(err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			seg = filepath.Join(crashed, e.Name())
		}
	}
	if seg == "" {
		t.Fatal("no active segment in crash image")
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := durableConfig(crashed)
	cfg.Resume = true
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	defer s2.Close()
	if got := s2.OpsApplied(); got != n {
		t.Fatalf("recovered %d ops, want %d", got, n)
	}
	if _, trunc := s2.WALRecovery(); trunc == 0 {
		t.Fatal("torn tail not reported in recovery")
	}
}

// TestDurableDrainResumeAuditByteIdentity mirrors the checkpoint
// byte-identity pin for WAL mode: half the script, a graceful drain, a
// resume over the same directory and the second half must reproduce the
// straight-through audit exactly.
func TestDurableDrainResumeAuditByteIdentity(t *testing.T) {
	var full bytes.Buffer
	cfgA := durableConfig(filepath.Join(t.TempDir(), "wal"))
	cfgA.Audit = &full
	sA, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	htsA := httptest.NewServer(sA.Handler())
	sendSequence(t, htsA.URL, 0, seqLen)
	htsA.Close()
	if err := sA.Drain(context.Background()); err != nil {
		t.Fatalf("reference drain: %v", err)
	}
	if full.Len() == 0 {
		t.Fatal("reference run produced no audit output")
	}

	dir := filepath.Join(t.TempDir(), "wal")
	var audit1 bytes.Buffer
	cfg1 := durableConfig(dir)
	cfg1.Audit = &audit1
	s1, err := New(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	hts1 := httptest.NewServer(s1.Handler())
	sendSequence(t, hts1.URL, 0, seqLen/2)
	hts1.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("half drain: %v", err)
	}

	var audit2 bytes.Buffer
	cfg2 := durableConfig(dir)
	cfg2.Audit = &audit2
	cfg2.Resume = true
	s2, err := New(cfg2)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	hts2 := httptest.NewServer(s2.Handler())
	sendSequence(t, hts2.URL, seqLen/2, seqLen)
	hts2.Close()
	if err := s2.Drain(context.Background()); err != nil {
		t.Fatalf("resumed drain: %v", err)
	}
	if !bytes.Equal(full.Bytes(), audit2.Bytes()) {
		t.Fatalf("resumed audit differs from straight-through audit:\n--- straight\n%s\n--- resumed\n%s", full.Bytes(), audit2.Bytes())
	}
}

// TestDurableQuotaBudgetSurvivesResume closes the ROADMAP gap: a fixed
// per-tenant budget keeps its spent tokens across a drain/resume
// instead of refilling.
func TestDurableQuotaBudgetSurvivesResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := durableConfig(dir)
	cfg.QuotaRate = 0
	cfg.QuotaBurst = 3
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts1 := httptest.NewServer(s1.Handler())
	for i := 0; i < 2; i++ {
		if _, resp := admitAt(t, hts1.URL, float64(i), AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 100}); resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d: status %d", i, resp.StatusCode)
		}
	}
	hts1.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	cfg2 := durableConfig(dir)
	cfg2.QuotaRate = 0
	cfg2.QuotaBurst = 3
	cfg2.Resume = true
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hts2 := httptest.NewServer(s2.Handler())
	defer hts2.Close()
	// One token left of the original three.
	if _, resp := admitAt(t, hts2.URL, 10, AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 100}); resp.StatusCode != http.StatusOK {
		t.Fatalf("third admit after resume: status %d, want 200", resp.StatusCode)
	}
	if _, resp := admitAt(t, hts2.URL, 11, AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 100}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fourth admit after resume: status %d, want 429 (budget silently refilled)", resp.StatusCode)
	}
}

// TestDurableQuotaReconstructionFromOps covers the SIGKILL path, where
// no quota snapshot record was written: the budget is rebuilt by
// debiting one token per logged admit op.
func TestDurableQuotaReconstructionFromOps(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := durableConfig(dir)
	cfg.QuotaRate = 0
	cfg.QuotaBurst = 2
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	hts1 := httptest.NewServer(s1.Handler())
	defer hts1.Close()
	if _, resp := admitAt(t, hts1.URL, 0, AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 100}); resp.StatusCode != http.StatusOK {
		t.Fatal("first admit refused")
	}
	crashed := filepath.Join(t.TempDir(), "crashed")
	copyDir(t, dir, crashed)

	cfg2 := durableConfig(crashed)
	cfg2.QuotaRate = 0
	cfg2.QuotaBurst = 2
	cfg2.Resume = true
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	hts2 := httptest.NewServer(s2.Handler())
	defer hts2.Close()
	if _, resp := admitAt(t, hts2.URL, 1, AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 100}); resp.StatusCode != http.StatusOK {
		t.Fatal("second admit refused after crash recovery")
	}
	if _, resp := admitAt(t, hts2.URL, 2, AdmitRequest{Tenant: "a", NumProc: 1, Runtime: 10, Deadline: 100}); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("third admit allowed: crash refilled the budget")
	}
}

// TestDurableRefusesExistingWALWithoutResume: pointing a fresh daemon
// at a populated log without -resume must fail, not silently append.
func TestDurableRefusesExistingWALWithoutResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s1.Handler())
	admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
	hts.Close()
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := New(durableConfig(dir)); err == nil {
		t.Fatal("existing WAL accepted without Resume")
	}
}

// TestDurableRefusesMismatchedMeta: resuming under a different cluster
// shape must fail loudly.
func TestDurableRefusesMismatchedMeta(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s1, err := New(durableConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	other := durableConfig(dir)
	other.Nodes = 8
	other.Resume = true
	if _, err := New(other); err == nil {
		t.Fatal("resume under a different cluster shape accepted")
	}
}

// TestDurableConflictsWithCheckpoint: the two persistence modes are
// mutually exclusive by construction.
func TestDurableConflictsWithCheckpoint(t *testing.T) {
	cfg := durableConfig(t.TempDir())
	cfg.CheckpointPath = filepath.Join(t.TempDir(), "c.ckpt")
	if _, err := New(cfg); err == nil {
		t.Fatal("WALDir+CheckpointPath accepted")
	}
}

// TestDurableFailStopOnFsyncError: a failing fsync must answer 503
// without acknowledgment, and every later request must fail too. The
// pipeline decides (applies in memory) before the covering fsync
// returns, so exactly the first request's batch may show up in
// OpsApplied as a decided-but-unacknowledged op — the 503 marks it
// indeterminate — but once the error latches no further request may
// touch state.
func TestDurableFailStopOnFsyncError(t *testing.T) {
	cfg := durableConfig(filepath.Join(t.TempDir(), "wal"))
	cfg.WALFS = &wal.FaultFS{OnSync: func(name string) error {
		if strings.HasSuffix(name, ".wal") {
			return fmt.Errorf("injected: %w", syscall.EIO)
		}
		return nil
	}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	for i := 0; i < 2; i++ {
		var eresp errorResponse
		resp := postJSON(t, hts.URL+"/admit", AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100}, &eresp)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("admit %d with dead log: status %d, want 503", i, resp.StatusCode)
		}
		if !strings.Contains(eresp.Error, "durability failure") {
			t.Fatalf("admit %d error %q does not name the durability failure", i, eresp.Error)
		}
	}
	if got := s.OpsApplied(); got > 1 {
		t.Fatalf("%d ops applied despite latched durability failure; only the first decided-but-unacked batch may mutate state", got)
	}
	var st StateResponse
	postJSON2 := func() {
		resp, err := http.Get(hts.URL + "/state")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if !bytes.Contains(b, []byte("wal")) {
			t.Fatalf("/state does not surface the wal error: %s", b)
		}
	}
	postJSON2()
	_ = st
}

// TestDurableGroupCommitBatches pins the fsync amortization: requests
// that pile up while the worker is busy share one commit. With the
// pipelined committer the pile's appends can even land in the WAL
// buffer before the first op's in-flight fsync flushes, in which case a
// single fsync covers all nine — so the pin is an upper bound of two
// commits, not an exact count.
func TestDurableGroupCommitBatches(t *testing.T) {
	cfg := durableConfig(filepath.Join(t.TempDir(), "wal"))
	cfg.QueueDepth = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()

	// Stall the worker inside its first batch by holding the state lock,
	// queue a pile of requests, then release: the pile must drain as one
	// write-ahead batch with one commit. The waitFor condition checks
	// the request counter too: queue length alone is 0 both before the
	// first request arrives and after the worker dequeues it, and only
	// the latter means the worker is parked on the lock.
	s.mu.Lock()
	unlocked := false
	defer func() {
		// A waitFor failure below would otherwise Goexit with the state
		// lock held and deadlock the deferred Close.
		if !unlocked {
			s.mu.Unlock()
		}
	}()
	done := make(chan struct{})
	go func() {
		admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
		close(done)
	}()
	waitFor(t, func() bool { return s.cRequests.v.Load() == 1 && len(s.queue) == 0 }) // worker dequeued it
	const pile = 8
	piled := make(chan struct{})
	for i := 0; i < pile; i++ {
		go func(i int) {
			admitAt(t, hts.URL, float64(1+i), AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
			piled <- struct{}{}
		}(i)
	}
	waitFor(t, func() bool { return len(s.queue) == pile })
	s.mu.Unlock()
	unlocked = true
	<-done
	for i := 0; i < pile; i++ {
		<-piled
	}
	m := s.wal.Metrics()
	if m.Appends != pile+1 {
		t.Fatalf("appends = %d, want %d", m.Appends, pile+1)
	}
	if m.Commits < 1 || m.Commits > 2 {
		t.Fatalf("commits = %d, want 1 or 2 (the pile shares a group commit, possibly folded into the first op's overlapped fsync)", m.Commits)
	}
}

// TestDurableSegmentsStayBounded: with tiny segments, rotation+fold
// keeps the directory at {meta, compact, one active segment} and the
// in-memory op slice empty, no matter how many ops flow through.
func TestDurableSegmentsStayBounded(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	cfg := durableConfig(dir)
	cfg.WALSegmentBytes = 512
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	const n = 60
	for i := 0; i < n; i++ {
		if _, resp := admitAt(t, hts.URL, float64(i), AdmitRequest{NumProc: 1, Runtime: 5, Deadline: 1000}); resp.StatusCode != http.StatusOK {
			t.Fatalf("admit %d failed", i)
		}
	}
	s.mu.RLock()
	opsLen := len(s.ops)
	s.mu.RUnlock()
	if opsLen != 0 {
		t.Fatalf("durable mode kept %d ops in memory", opsLen)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs++
		}
	}
	if segs != 1 {
		t.Fatalf("%d segments on disk, want exactly 1 (compaction not folding)", segs)
	}
	if s.OpsApplied() != n {
		t.Fatalf("OpsApplied = %d, want %d", s.OpsApplied(), n)
	}
}

// TestDurableWALMetricsExported: the serve_wal_* family shows up on
// /metrics in durable mode.
func TestDurableWALMetricsExported(t *testing.T) {
	cfg := durableConfig(filepath.Join(t.TempDir(), "wal"))
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hts := httptest.NewServer(s.Handler())
	defer hts.Close()
	admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 1, Runtime: 10, Deadline: 100})
	resp, err := http.Get(hts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"serve_wal_appends_total", "serve_wal_commits_total", "serve_wal_dirty_bytes",
		"serve_wal_last_index", "serve_wal_recovery_truncated_bytes", "serve_wal_fsync_seconds",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestCheckpointChecksumRefusesCorruption: flipping one byte in a drain
// checkpoint body must fail the resume before any op replays.
func TestCheckpointChecksumRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "c.ckpt")
	cfg := testConfig()
	cfg.CheckpointPath = ckpt
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hts := httptest.NewServer(s.Handler())
	admitAt(t, hts.URL, 0, AdmitRequest{NumProc: 2, Runtime: 10, Deadline: 100})
	hts.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a digit inside the op body (past the header line).
	i := bytes.LastIndexByte(data, '2')
	if i < 0 {
		t.Fatal("no corruptible byte found")
	}
	data[i] = '3'
	if err := os.WriteFile(ckpt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig()
	cfg2.CheckpointPath = ckpt
	cfg2.Resume = true
	if _, err := New(cfg2); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt checkpoint replayed (err = %v)", err)
	}
}
