package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// shardTestConfig is a deterministic 16-node server, large enough that
// shard counts 2..8 give real partitions.
func shardTestConfig() Config {
	return Config{
		Policy:    "librarisk",
		Nodes:     16,
		TimeScale: 0,
	}
}

// playShardScript drives a deterministic request mix that exercises the
// sharded advance from every side: staggered arrivals whose completions
// land between ops, bursts of same-instant submissions (equal-key
// batching), a mid-script node crash and repair (resubmission flows
// through EndShardPhase ordering), and runtimes collapsed onto a few
// values so completions tie across shard boundaries. It returns the
// decision transcript — one line per response — which must be identical
// however the cluster is partitioned.
func playShardScript(t *testing.T, base string, from, to int) []string {
	t.Helper()
	var lines []string
	for i := from; i < to; i++ {
		// Three ops per instant: T jumps every 3rd op so completions
		// accumulate between bursts.
		at := float64(i/3) * 15
		switch {
		case i == 17:
			tt := at
			postJSON(t, base+"/node", NodeRequest{Node: 3, Down: true, T: &tt}, nil)
			lines = append(lines, "node3down")
			continue
		case i == 29:
			tt := at
			postJSON(t, base+"/node", NodeRequest{Node: 3, Down: false, T: &tt}, nil)
			lines = append(lines, "node3up")
			continue
		}
		out, resp := admitAt(t, base, at, AdmitRequest{
			Tenant:   "shard",
			NumProc:  1 + (i%5)*3,
			Runtime:  float64(40 + 30*(i%3)),
			Deadline: 60 + float64(i%4)*25,
		})
		lines = append(lines, fmt.Sprintf("%d %d %v %s", i, resp.StatusCode, out.Accepted, out.Reason))
	}
	return lines
}

const shardScriptLen = 60

// stateOf snapshots /state, which is fully virtual-deterministic.
func stateOf(t *testing.T, base string) StateResponse {
	t.Helper()
	resp, err := http.Get(base + "/state")
	if err != nil {
		t.Fatalf("/state: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/state: %d", resp.StatusCode)
	}
	var st StateResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode /state: %v", err)
	}
	return st
}

// TestShardedServeByteIdentity is the serving-path differential: the
// same request script against Shards ∈ {0, 2, 4, 8, 16} must produce
// identical decisions, an identical audit stream, and an identical
// /state snapshot. Run it under -race and the concurrent shard phases
// are checked for soundness too.
func TestShardedServeByteIdentity(t *testing.T) {
	run := func(shards int) ([]string, []byte, StateResponse) {
		var audit bytes.Buffer
		cfg := shardTestConfig()
		cfg.Audit = &audit
		cfg.Shards = shards
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("shards=%d: New: %v", shards, err)
		}
		hts := httptest.NewServer(s.Handler())
		lines := playShardScript(t, hts.URL, 0, shardScriptLen)
		st := stateOf(t, hts.URL)
		hts.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("shards=%d: Close: %v", shards, err)
		}
		return lines, audit.Bytes(), st
	}
	refLines, refAudit, refState := run(0)
	if len(refAudit) == 0 {
		t.Fatal("reference run produced no audit output")
	}
	if refState.Admitted == 0 || refState.Rejected == 0 {
		t.Fatalf("script produced a one-sided decision mix: %+v", refState)
	}
	for _, k := range []int{2, 4, 8, 16} {
		lines, audit, st := run(k)
		for i := range refLines {
			if lines[i] != refLines[i] {
				t.Fatalf("shards=%d: decision %d diverges: %q vs sequential %q", k, i, lines[i], refLines[i])
			}
		}
		if !bytes.Equal(audit, refAudit) {
			t.Errorf("shards=%d: audit stream diverges from sequential (%d vs %d bytes)", k, len(audit), len(refAudit))
		}
		if st != refState {
			t.Errorf("shards=%d: state diverges\nsharded    %+v\nsequential %+v", k, st, refState)
		}
	}
}

// TestShardedServeSameInstantCompletions pins the shard-edge tie case
// in serving: equal-length jobs started in one same-T burst across all
// nodes complete at exactly the same virtual instant in every shard;
// the next operation's advance must apply those ties in sequential
// order whatever the partitioning.
func TestShardedServeSameInstantCompletions(t *testing.T) {
	run := func(shards int) ([]string, StateResponse) {
		cfg := shardTestConfig()
		cfg.Shards = shards
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("shards=%d: New: %v", shards, err)
		}
		hts := httptest.NewServer(s.Handler())
		var lines []string
		// Four identical spanning jobs at t=0: every node carries one
		// slice of each, PS sharing finishes all four gangs — 64 slice
		// completions on 16 nodes — at exactly t=120, in every shard...
		for i := 0; i < 4; i++ {
			out, resp := admitAt(t, hts.URL, 0, AdmitRequest{
				Tenant: "tie", NumProc: 16, Runtime: 30, Deadline: 200,
			})
			lines = append(lines, fmt.Sprintf("%d %v", resp.StatusCode, out.Accepted))
		}
		// ...and this op's advance to t=150 applies the whole tie wave
		// across every shard boundary, then must see an empty cluster.
		out, resp := admitAt(t, hts.URL, 150, AdmitRequest{
			Tenant: "tie", NumProc: 16, Runtime: 40, Deadline: 100,
		})
		lines = append(lines, fmt.Sprintf("%d %v", resp.StatusCode, out.Accepted))
		st := stateOf(t, hts.URL)
		hts.Close()
		if err := s.Close(); err != nil {
			t.Fatalf("shards=%d: Close: %v", shards, err)
		}
		return lines, st
	}
	refLines, refState := run(0)
	if !strings.HasSuffix(refLines[len(refLines)-1], "true") {
		t.Fatalf("spanning job after the tie burst was not accepted: %v", refLines)
	}
	for _, k := range []int{2, 4, 8, 16} {
		lines, st := run(k)
		for i := range refLines {
			if lines[i] != refLines[i] {
				t.Fatalf("shards=%d: decision %d diverges: %q vs %q", k, i, lines[i], refLines[i])
			}
		}
		if st != refState {
			t.Errorf("shards=%d: state diverges\nsharded    %+v\nsequential %+v", k, st, refState)
		}
	}
}

// TestShardedServeResumeReplayByteIdentity covers replay through the
// sharded path: half the script drained to a checkpoint by a sharded
// server, resumed by another sharded server (replay advances time
// through the same barrier phases), and finished — the audit must match
// a sequential straight-through run byte for byte. The cross pairings
// (sequential writes, sharded resumes; sharded writes, sequential
// resumes) are covered too, since sharding is an execution detail that
// must not leak into the checkpoint identity.
func TestShardedServeResumeReplayByteIdentity(t *testing.T) {
	dir := t.TempDir()
	straight := func(shards int) []byte {
		var audit bytes.Buffer
		cfg := shardTestConfig()
		cfg.Audit = &audit
		cfg.Shards = shards
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hts := httptest.NewServer(s.Handler())
		playShardScript(t, hts.URL, 0, shardScriptLen)
		hts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Fatal(err)
		}
		return audit.Bytes()
	}
	ref := straight(0)
	if len(ref) == 0 {
		t.Fatal("reference run produced no audit output")
	}
	for ci, pair := range [][2]int{{4, 4}, {0, 4}, {4, 0}} {
		writer, resumer := pair[0], pair[1]
		ckpt := filepath.Join(dir, fmt.Sprintf("half-%d.ckpt", ci))
		// The writer streams audit too (discarded): ops record
		// Audited=true only when the live decision took the audit path,
		// and the replay re-emits exactly the audited ops.
		var discard bytes.Buffer
		cfg1 := shardTestConfig()
		cfg1.Audit = &discard
		cfg1.CheckpointPath = ckpt
		cfg1.Shards = writer
		s1, err := New(cfg1)
		if err != nil {
			t.Fatal(err)
		}
		hts1 := httptest.NewServer(s1.Handler())
		playShardScript(t, hts1.URL, 0, shardScriptLen/2)
		hts1.Close()
		if err := s1.Drain(context.Background()); err != nil {
			t.Fatalf("writer=%d: drain: %v", writer, err)
		}
		if _, err := os.Stat(ckpt); err != nil {
			t.Fatalf("drain wrote no checkpoint: %v", err)
		}

		var audit bytes.Buffer
		cfg2 := shardTestConfig()
		cfg2.Audit = &audit
		cfg2.CheckpointPath = ckpt
		cfg2.Resume = true
		cfg2.Shards = resumer
		s2, err := New(cfg2)
		if err != nil {
			t.Fatalf("resume writer=%d resumer=%d: %v", writer, resumer, err)
		}
		hts2 := httptest.NewServer(s2.Handler())
		playShardScript(t, hts2.URL, shardScriptLen/2, shardScriptLen)
		hts2.Close()
		if err := s2.Drain(context.Background()); err != nil {
			t.Fatalf("resumed drain: %v", err)
		}
		if !bytes.Equal(ref, audit.Bytes()) {
			t.Errorf("writer=%d resumer=%d: resumed audit differs from sequential straight-through (%d vs %d bytes)",
				writer, resumer, len(audit.Bytes()), len(ref))
		}
	}
}

// metricCounter extracts one counter value from a Prometheus text dump.
func metricCounter(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, ln := range strings.Split(body, "\n") {
		if strings.HasPrefix(ln, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(ln, name+" "), 64)
			if err != nil {
				t.Fatalf("parse %s: %v", ln, err)
			}
			return v
		}
	}
	return -1
}

// TestShardPoolLongLivedServer covers the pool under a server lifetime:
// the park/wake counters on /metrics must be monotone across scrapes
// while the server works, shard gauges must be present, and repeated
// serve → drain → resume cycles must not leak pool (or any) goroutines.
func TestShardPoolLongLivedServer(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "pool.ckpt")
	var lastParks, lastWakes float64
	for cycle := 0; cycle < 3; cycle++ {
		cfg := shardTestConfig()
		cfg.Shards = 4
		cfg.CheckpointPath = ckpt
		cfg.Resume = cycle > 0
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("cycle %d: New: %v", cycle, err)
		}
		hts := httptest.NewServer(s.Handler())
		prevParks, prevWakes := -1.0, -1.0
		for i := 0; i < 30; i++ {
			admitAt(t, hts.URL, float64(cycle*1000+i*20), AdmitRequest{
				Tenant: "pool", NumProc: 1 + i%4, Runtime: 35, Deadline: 90,
			})
			if i%10 == 9 {
				resp, err := hts.Client().Get(hts.URL + "/metrics")
				if err != nil {
					t.Fatal(err)
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				body := string(raw)
				if g := metricCounter(t, body, "serve_shards"); g != 4 {
					t.Fatalf("cycle %d: serve_shards = %g, want 4", cycle, g)
				}
				parks := metricCounter(t, body, "serve_admitpool_parks_total")
				wakes := metricCounter(t, body, "serve_admitpool_wakes_total")
				if parks < prevParks || wakes < prevWakes {
					t.Fatalf("cycle %d: pool counters regressed: parks %g→%g wakes %g→%g",
						cycle, prevParks, parks, prevWakes, wakes)
				}
				prevParks, prevWakes = parks, wakes
			}
		}
		if prevParks < lastParks || prevWakes < lastWakes {
			// Counters are per-server-lifetime (a fresh pool each cycle);
			// only within-cycle monotonicity is meaningful.
			_ = cycle
		}
		lastParks, lastWakes = prevParks, prevWakes
		hts.Close()
		if err := s.Drain(context.Background()); err != nil {
			t.Fatalf("cycle %d: Drain: %v", cycle, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d across sharded server lifecycles", before, runtime.NumGoroutine())
}

// TestDurableShardedPipelineByteIdentity is the WAL-mode differential:
// the full script through the sharded apply path, write-ahead-logged by
// the pipelined group commit, must produce decisions, an audit stream,
// and a /state snapshot byte-identical to the sequential durable
// server's — and replaying either WAL with the shard count flipped must
// regenerate the same audit stream and op count, since sharding and
// pipelining are execution details that must not leak into the log.
func TestDurableShardedPipelineByteIdentity(t *testing.T) {
	root := t.TempDir()
	run := func(shards int, dir string) ([]string, []byte, StateResponse, int) {
		var audit bytes.Buffer
		cfg := shardTestConfig()
		cfg.Audit = &audit
		cfg.Shards = shards
		cfg.WALDir = dir
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("shards=%d: New: %v", shards, err)
		}
		hts := httptest.NewServer(s.Handler())
		lines := playShardScript(t, hts.URL, 0, shardScriptLen)
		st := stateOf(t, hts.URL)
		hts.Close()
		ops := s.OpsApplied()
		if err := s.Close(); err != nil {
			t.Fatalf("shards=%d: Close: %v", shards, err)
		}
		return lines, audit.Bytes(), st, ops
	}
	seqDir := filepath.Join(root, "seq")
	shardedDir := filepath.Join(root, "sharded")
	refLines, refAudit, refState, refOps := run(0, seqDir)
	if len(refAudit) == 0 {
		t.Fatal("reference run produced no audit output")
	}
	lines, audit, st, ops := run(4, shardedDir)
	for i := range refLines {
		if lines[i] != refLines[i] {
			t.Fatalf("pipelined decision %d diverges: %q vs sequential %q", i, lines[i], refLines[i])
		}
	}
	if !bytes.Equal(audit, refAudit) {
		t.Errorf("pipelined audit stream diverges from sequential (%d vs %d bytes)", len(audit), len(refAudit))
	}
	if st != refState {
		t.Errorf("pipelined state diverges\nsharded    %+v\nsequential %+v", st, refState)
	}
	if ops != refOps {
		t.Errorf("pipelined ops applied = %d, sequential = %d", ops, refOps)
	}

	// Cross replay: each log resumed under the other execution shape
	// must rebuild the same op count and re-emit the same audit bytes.
	for _, rc := range []struct {
		name   string
		dir    string
		shards int
	}{
		{"sharded log, sequential replay", shardedDir, 0},
		{"sequential log, sharded replay", seqDir, 4},
	} {
		var replayAudit bytes.Buffer
		cfg := shardTestConfig()
		cfg.Audit = &replayAudit
		cfg.Shards = rc.shards
		cfg.WALDir = rc.dir
		cfg.Resume = true
		s, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		if got := s.OpsApplied(); got != refOps {
			t.Errorf("%s: replayed %d ops, want %d", rc.name, got, refOps)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("%s: Close: %v", rc.name, err)
		}
		if !bytes.Equal(replayAudit.Bytes(), refAudit) {
			t.Errorf("%s: regenerated audit diverges (%d vs %d bytes)", rc.name, len(replayAudit.Bytes()), len(refAudit))
		}
	}
}
