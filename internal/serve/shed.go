package serve

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Shed levels, in escalation order. Each level sheds strictly more than
// the one below, so recovering load walks back down the same ladder.
const (
	// shedNone: everything on.
	shedNone = iota
	// shedAudit: the audit slow path is off — decisions are still made
	// and journaled, just without per-node evaluation records. PR 5's
	// differential tests prove the decisions themselves are identical.
	shedAudit
	// shedClass: sheddable-class (low-urgency) requests get 503.
	shedClass
	// shedAll: everything but health checks (and the metrics scrape that
	// tells operators why) gets 503.
	shedAll
)

// ShedConfig tunes the load-shedding ladder.
type ShedConfig struct {
	// Level1Fill/Level2Fill/Level3Fill are admission-queue fill fractions
	// (0..1] at which the ladder escalates to shedAudit, shedClass and
	// shedAll. Defaults 0.5, 0.75, 0.95.
	Level1Fill float64
	Level2Fill float64
	Level3Fill float64
	// P99Latency, when positive, escalates on observed admission latency
	// as well: p99 ≥ P99Latency forces at least shedAudit, ≥ 2× forces at
	// least shedClass. Zero disables the latency trigger.
	P99Latency time.Duration
	// Window is how many recent latencies the p99 is computed over
	// (default 256).
	Window int
}

func (c ShedConfig) withDefaults() ShedConfig {
	if c.Level1Fill == 0 {
		c.Level1Fill = 0.5
	}
	if c.Level2Fill == 0 {
		c.Level2Fill = 0.75
	}
	if c.Level3Fill == 0 {
		c.Level3Fill = 0.95
	}
	if c.Window == 0 {
		c.Window = 256
	}
	return c
}

// shedder derives the current shed level from queue depth and the p99
// of a sliding window of admission latencies. The p99 is recomputed
// every refreshEvery observations rather than per query, keeping the
// request fast path at two atomic-free loads under a short lock.
type shedder struct {
	cfg ShedConfig
	// logW, when non-nil, receives one timestamped line per level
	// transition; now supplies the timestamp (test-overridable).
	logW io.Writer
	now  func() time.Time

	mu      sync.Mutex
	ring    []float64
	n       int // filled entries, ≤ len(ring)
	idx     int // next write position
	sinceP  int // observations since last p99 refresh
	p99     float64
	scratch []float64

	// Transition tracking: the level is derived (recomputed at every
	// query point), so transitions are detected by comparing against
	// the last level a tracked query saw. trans is a bounded ring of
	// the most recent transitions, transTotal counts them all.
	lastLvl    int
	trans      []shedTransition
	transTotal uint64
}

// shedTransition is one shed-ladder level change, as surfaced on
// /debug/shed and in the transition log line.
type shedTransition struct {
	At   time.Time `json:"at"`
	From int       `json:"from"`
	To   int       `json:"to"`
	// Fill and P99S are the triggers' values at the transition: queue
	// fill fraction and windowed p99 admission latency (seconds).
	Fill float64 `json:"fill"`
	P99S float64 `json:"p99_s"`
}

// maxTransitions bounds the transition ring.
const maxTransitions = 64

const refreshEvery = 32

func newShedder(cfg ShedConfig, logW io.Writer, now func() time.Time) *shedder {
	if now == nil {
		now = time.Now
	}
	return &shedder{
		cfg:     cfg,
		logW:    logW,
		now:     now,
		ring:    make([]float64, cfg.Window),
		scratch: make([]float64, 0, cfg.Window),
	}
}

// observe records one admission latency (seconds).
func (d *shedder) observe(sec float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ring[d.idx] = sec
	d.idx = (d.idx + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
	d.sinceP++
	if d.sinceP >= refreshEvery || d.n < refreshEvery {
		d.p99 = d.p99Locked()
		d.sinceP = 0
	}
}

// p99Locked computes the 99th percentile over the window.
func (d *shedder) p99Locked() float64 {
	if d.n == 0 {
		return 0
	}
	d.scratch = append(d.scratch[:0], d.ring[:d.n]...)
	// Small fixed window: insertion sort beats sort.Float64s' overhead
	// and allocates nothing.
	for i := 1; i < len(d.scratch); i++ {
		v := d.scratch[i]
		j := i - 1
		for j >= 0 && d.scratch[j] > v {
			d.scratch[j+1] = d.scratch[j]
			j--
		}
		d.scratch[j+1] = v
	}
	k := (99*d.n - 1) / 100
	if k >= d.n {
		k = d.n - 1
	}
	return d.scratch[k]
}

// latencyP99 returns the cached windowed p99 in seconds.
func (d *shedder) latencyP99() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.p99
}

// level maps current queue fill and latency onto the ladder.
func (d *shedder) level(qlen, qcap int) int {
	fill := 0.0
	if qcap > 0 {
		fill = float64(qlen) / float64(qcap)
	}
	lvl := shedNone
	switch {
	case fill >= d.cfg.Level3Fill:
		lvl = shedAll
	case fill >= d.cfg.Level2Fill:
		lvl = shedClass
	case fill >= d.cfg.Level1Fill:
		lvl = shedAudit
	}
	if d.cfg.P99Latency > 0 {
		p99 := d.latencyP99()
		thr := d.cfg.P99Latency.Seconds()
		switch {
		case p99 >= 2*thr && lvl < shedClass:
			lvl = shedClass
		case p99 >= thr && lvl < shedAudit:
			lvl = shedAudit
		}
	}
	return lvl
}

// levelTracked is level plus transition accounting: when the computed
// level differs from the last tracked one — up or down — the transition
// is recorded (bounded ring + total counter) and logged with a
// timestamp. Every serving call site queries through this, so any
// escalation or recovery the ladder ever acts on is visible.
func (d *shedder) levelTracked(qlen, qcap int) int {
	lvl := d.level(qlen, qcap)
	d.mu.Lock()
	if lvl == d.lastLvl {
		d.mu.Unlock()
		return lvl
	}
	fill := 0.0
	if qcap > 0 {
		fill = float64(qlen) / float64(qcap)
	}
	tr := shedTransition{At: d.now(), From: d.lastLvl, To: lvl, Fill: fill, P99S: d.p99}
	d.lastLvl = lvl
	if len(d.trans) >= maxTransitions {
		copy(d.trans, d.trans[1:])
		d.trans = d.trans[:maxTransitions-1]
	}
	d.trans = append(d.trans, tr)
	d.transTotal++
	logW := d.logW
	d.mu.Unlock()
	if logW != nil {
		fmt.Fprintf(logW, "shed: %s level %d -> %d (queue %d/%d, p99 %.4fs)\n",
			tr.At.UTC().Format(time.RFC3339Nano), tr.From, tr.To, qlen, qcap, tr.P99S)
	}
	return lvl
}

// transitions returns a copy of the recent-transition ring (oldest
// first) and the total transition count.
func (d *shedder) transitions() ([]shedTransition, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]shedTransition(nil), d.trans...), d.transTotal
}
