package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"clustersched/internal/obs/span"
	"clustersched/internal/workload"
)

// AdmitRequest is the JSON body of POST /admit: one job asking to enter
// the cluster. Runtime doubles as the estimate when Estimate is absent
// (a perfectly accurate user). T pins the virtual submit time; omitted,
// the wall clock (scaled by Config.TimeScale) supplies it.
type AdmitRequest struct {
	Tenant   string   `json:"tenant,omitempty"`
	NumProc  int      `json:"numproc"`
	Runtime  float64  `json:"runtime"`
	Estimate float64  `json:"estimate,omitempty"`
	Deadline float64  `json:"deadline"`
	Class    string   `json:"class,omitempty"` // "high" (default) or "low"/"sheddable"
	T        *float64 `json:"t,omitempty"`
}

// AdmitResponse is the decision for an applied admission request.
type AdmitResponse struct {
	Job      int     `json:"job"`
	T        float64 `json:"t"`
	Accepted bool    `json:"accepted"`
	Reason   string  `json:"reason,omitempty"`
	// RetryAfterS accompanies rejections: the cluster's estimate of when
	// its state next changes (the next believed completion).
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// NodeRequest is the JSON body of POST /node: an operator (or chaos
// driver) crashing or repairing one node.
type NodeRequest struct {
	Node int      `json:"node"`
	Down bool     `json:"down"`
	T    *float64 `json:"t,omitempty"`
}

// NodeResponse reports an applied node operation.
type NodeResponse struct {
	Node   int     `json:"node"`
	Down   bool    `json:"down"`
	T      float64 `json:"t"`
	Killed int     `json:"killed"`
}

// StateResponse is the GET /state snapshot.
type StateResponse struct {
	Policy      string  `json:"policy"`
	VirtualTime float64 `json:"virtual_time"`
	Nodes       int     `json:"nodes"`
	NodesUp     int     `json:"nodes_up"`
	Running     int     `json:"running"`
	QueueLen    int     `json:"queue_len"`
	QueueCap    int     `json:"queue_cap"`
	ShedLevel   int     `json:"shed_level"`
	Draining    bool    `json:"draining"`
	OpsApplied  int     `json:"ops_applied"`
	Admitted    uint64  `json:"admitted"`
	Rejected    uint64  `json:"rejected"`
	Err         string  `json:"err,omitempty"`
}

// errorResponse is the body of every non-200 answer.
type errorResponse struct {
	Error       string  `json:"error"`
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// maxBodyBytes bounds request bodies; admission requests are a few
// hundred bytes, so anything larger is abuse.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP mux:
//
//	POST /admit           — admission request (the hot path)
//	POST /node            — crash/repair a node (admin/chaos)
//	GET  /state           — consistent cluster snapshot
//	GET  /metrics         — Prometheus text exposition
//	GET  /healthz         — liveness, answers at every shed level
//	GET  /debug/spans     — recent request spans + slowest-K (JSON)
//	GET  /debug/requests  — recent spans filtered by ?tenant=/?outcome=
//	GET  /debug/shed      — shed-ladder transition history (JSON)
//	GET  /debug/pprof/*   — net/http/pprof profiles
//
// The /debug family, like /healthz and /metrics, deliberately answers
// at every shed level: a service that sheds its own diagnostics under
// overload cannot be debugged exactly when debugging matters.
//
// Every handler runs under panic isolation: a panicking request answers
// 500 and increments serve_panics_total, and the daemon keeps serving.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /admit", s.recovering(s.handleAdmit))
	mux.HandleFunc("POST /node", s.recovering(s.handleNode))
	mux.HandleFunc("GET /state", s.recovering(s.handleState))
	mux.HandleFunc("GET /metrics", s.recovering(s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.recovering(s.handleHealthz))
	mux.HandleFunc("GET /debug/spans", s.recovering(s.handleDebugSpans))
	mux.HandleFunc("GET /debug/requests", s.recovering(s.handleDebugRequests))
	mux.HandleFunc("GET /debug/shed", s.recovering(s.handleDebugShed))
	mux.HandleFunc("GET /debug/pprof/", s.recovering(pprof.Index))
	mux.HandleFunc("GET /debug/pprof/cmdline", s.recovering(pprof.Cmdline))
	mux.HandleFunc("GET /debug/pprof/profile", s.recovering(pprof.Profile))
	mux.HandleFunc("GET /debug/pprof/symbol", s.recovering(pprof.Symbol))
	mux.HandleFunc("GET /debug/pprof/trace", s.recovering(pprof.Trace))
	return mux
}

// shedLevel queries the shed ladder with transition tracking, so every
// level change the service acts on lands in the transition log.
func (s *Server) shedLevel() int {
	return s.shed.levelTracked(len(s.queue), cap(s.queue))
}

// recovering wraps a handler with per-request panic isolation: one bad
// request must not take down the daemon (or the cluster state, which is
// only ever mutated by the apply worker, not by handlers).
func (s *Server) recovering(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.cPanics.Inc()
				writeJSON(w, http.StatusInternalServerError,
					errorResponse{Error: fmt.Sprintf("internal error: %v", p)}, 0)
			}
		}()
		h(w, r)
	}
}

func writeJSON(w http.ResponseWriter, status int, body any, retryAfter time.Duration) {
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		secs := int(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// parseClass maps the wire spelling onto workload.Class.
func parseClass(s string) (workload.Class, error) {
	switch s {
	case "", "high", "high-urgency":
		return workload.HighUrgency, nil
	case "low", "low-urgency", "sheddable":
		return workload.LowUrgency, nil
	}
	return 0, fmt.Errorf("unknown class %q (want high, low or sheddable)", s)
}

// validateAdmit normalizes req into an Op, or explains why it is
// malformed. The virtual submit time is left for the worker when T is
// absent.
func validateAdmit(req *AdmitRequest) (Op, bool, float64, error) {
	class, err := parseClass(req.Class)
	if err != nil {
		return Op{}, false, 0, err
	}
	if req.Estimate == 0 {
		req.Estimate = req.Runtime
	}
	hasT, reqT := false, 0.0
	if req.T != nil {
		t := *req.T
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			return Op{}, false, 0, fmt.Errorf("invalid t %g", t)
		}
		hasT, reqT = true, t
	}
	for _, f := range [...]struct {
		name string
		v    float64
	}{{"runtime", req.Runtime}, {"estimate", req.Estimate}, {"deadline", req.Deadline}} {
		if math.IsInf(f.v, 0) {
			return Op{}, false, 0, fmt.Errorf("non-finite %s", f.name)
		}
	}
	probe := workload.Job{
		ID:            1, // placeholder; the worker assigns the real sequence
		Submit:        reqT,
		Runtime:       req.Runtime,
		TraceEstimate: req.Estimate,
		NumProc:       req.NumProc,
		Deadline:      req.Deadline,
		Class:         class,
	}
	if err := probe.Validate(); err != nil {
		return Op{}, false, 0, err
	}
	op := Op{
		Tenant:   req.Tenant,
		NumProc:  req.NumProc,
		Runtime:  req.Runtime,
		Estimate: req.Estimate,
		Deadline: req.Deadline,
		Class:    int(class),
	}
	return op, hasT, reqT, nil
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var t0 time.Time
	if s.spans != nil {
		t0 = s.now()
	}
	s.cRequests.Inc()
	var req AdmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()}, 0)
		return
	}
	op, hasT, reqT, err := validateAdmit(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()}, 0)
		return
	}
	lvl := s.shedLevel()
	sp := s.beginSpan("admit", op.Tenant, t0, lvl)
	switch {
	case lvl >= shedAll:
		s.cShedAll.Inc()
		ra := s.retryAfter()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "overloaded: shedding all admission traffic", RetryAfterS: ra.Seconds()}, ra)
		s.recordRefused(sp, "shed-all")
		return
	case lvl >= shedClass && workload.Class(op.Class) == workload.LowUrgency:
		s.cShedClass.Inc()
		ra := s.retryAfter()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "overloaded: shedding sheddable-class traffic", RetryAfterS: ra.Seconds()}, ra)
		s.recordRefused(sp, "shed-class")
		return
	}
	if s.quotas != nil {
		if ok, ra := s.quotas.take(op.Tenant); !ok {
			s.cQuotaDenied.Inc()
			s.tenants.quotaDenied(op.Tenant)
			writeJSON(w, http.StatusTooManyRequests,
				errorResponse{Error: "tenant quota exhausted", RetryAfterS: ra.Seconds()}, ra)
			s.recordRefused(sp, "quota")
			return
		}
	}
	if s.audit != nil && lvl >= shedAudit {
		s.cAuditShed.Inc()
	}
	p := &pending{
		op:       op,
		hasT:     hasT,
		reqT:     reqT,
		deadline: s.now().Add(s.cfg.RequestTimeout),
		resp:     make(chan applied, 1),
		sp:       sp,
	}
	p.op.Audited = s.audit != nil && lvl < shedAudit
	s.dispatch(w, r, p, func(a applied) (int, any) {
		resp := AdmitResponse{
			Job:      a.op.Seq,
			T:        a.op.T,
			Accepted: a.out.accepted,
			Reason:   a.out.reason,
		}
		if !a.out.accepted {
			resp.RetryAfterS = s.retryAfter().Seconds()
		}
		return http.StatusOK, resp
	})
}

func (s *Server) handleNode(w http.ResponseWriter, r *http.Request) {
	var t0 time.Time
	if s.spans != nil {
		t0 = s.now()
	}
	s.cRequests.Inc()
	var req NodeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()}, 0)
		return
	}
	if req.Node < 0 || req.Node >= s.cfg.Nodes {
		writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("node %d out of range [0,%d)", req.Node, s.cfg.Nodes)}, 0)
		return
	}
	lvl := s.shedLevel()
	sp := s.beginSpan("node", "", t0, lvl)
	if lvl >= shedAll {
		s.cShedAll.Inc()
		ra := s.retryAfter()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "overloaded: shedding all admission traffic", RetryAfterS: ra.Seconds()}, ra)
		s.recordRefused(sp, "shed-all")
		return
	}
	hasT, reqT := false, 0.0
	if req.T != nil {
		t := *req.T
		if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("invalid t %g", t)}, 0)
			return
		}
		hasT, reqT = true, t
	}
	p := &pending{
		op:       Op{Kind: "node", Node: req.Node, Down: req.Down},
		hasT:     hasT,
		reqT:     reqT,
		deadline: s.now().Add(s.cfg.RequestTimeout),
		resp:     make(chan applied, 1),
		sp:       sp,
	}
	// Node ops take the same audit slow-path decision as admissions so a
	// replayed checkpoint sheds exactly what the live run shed.
	p.op.Audited = s.audit != nil && lvl < shedAudit
	s.dispatch(w, r, p, func(a applied) (int, any) {
		return http.StatusOK, NodeResponse{Node: a.op.Node, Down: a.op.Down, T: a.op.T, Killed: a.out.killed}
	})
}

// dispatch enqueues p and waits for the worker's answer, translating
// intake refusals and expiry into their status codes. render shapes the
// 200 body from the applied result.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request, p *pending, render func(applied) (int, any)) {
	if p.sp != nil {
		// Prep ends where the queue stage begins: the enqueue attempt.
		p.enq = s.now()
		p.sp.Dur[span.StagePrep] = p.enq.Sub(p.sp.Start)
	}
	if err := s.enqueue(p); err != nil {
		ra := s.retryAfter()
		switch err {
		case errDraining:
			s.cDrainDenied.Inc()
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "draining: not accepting new work", RetryAfterS: ra.Seconds()}, ra)
			s.recordRefused(p.sp, "draining")
		default:
			s.cQueueFull.Inc()
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "admission queue full", RetryAfterS: ra.Seconds()}, ra)
			s.recordRefused(p.sp, "queue-full")
		}
		return
	}
	// The worker checks the deadline itself at dequeue; the handler waits
	// past it by one timeout's grace so a decision that was already being
	// applied still reaches the client instead of racing a local timer.
	guard := time.NewTimer(time.Until(p.deadline) + s.cfg.RequestTimeout)
	defer guard.Stop()
	select {
	case a := <-p.resp:
		if a.timedOut {
			ra := s.retryAfter()
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "admission deadline exceeded while queued", RetryAfterS: ra.Seconds()}, ra)
			s.finishSpan(p, a, "timeout")
			return
		}
		if a.walFailed {
			// Fail-stop: nothing was applied and nothing will be until the
			// daemon restarts over the log. No Retry-After — retrying
			// against a dead log is pointless.
			writeJSON(w, http.StatusServiceUnavailable,
				errorResponse{Error: "durability failure: write-ahead log unavailable"}, 0)
			s.finishSpan(p, a, "wal-failed")
			return
		}
		status, body := render(a)
		writeJSON(w, status, body, 0)
		if p.sp != nil {
			outcome := "applied"
			if a.op.Kind == "" {
				if a.out.accepted {
					outcome = "accepted"
				} else {
					outcome = "rejected"
				}
			}
			s.finishSpan(p, a, outcome)
		}
	case <-r.Context().Done():
		// Client gone. The response channel is buffered, so the worker's
		// eventual answer is dropped without blocking anything. The span
		// is NOT recorded: the worker still owns it, and publishing here
		// would race its stage writes.
	case <-guard.C:
		ra := s.retryAfter()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "admission decision overdue", RetryAfterS: ra.Seconds()}, ra)
		// Span not recorded, same ownership rule as above.
	}
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	lvl := s.shedLevel()
	if lvl >= shedAll {
		ra := s.retryAfter()
		writeJSON(w, http.StatusServiceUnavailable,
			errorResponse{Error: "overloaded: state snapshots shed", RetryAfterS: ra.Seconds()}, ra)
		return
	}
	s.intake.RLock()
	draining := s.draining
	s.intake.RUnlock()
	s.mu.RLock()
	st := StateResponse{
		Policy:      s.pol.Name(),
		VirtualTime: s.eng.Now(),
		Nodes:       s.cfg.Nodes,
		QueueLen:    len(s.queue),
		QueueCap:    cap(s.queue),
		ShedLevel:   lvl,
		Draining:    draining,
		OpsApplied:  s.opsApplied,
		Admitted:    s.cAdmitted.v.Load(),
		Rejected:    s.cRejected.v.Load(),
	}
	if s.ts != nil {
		st.NodesUp = s.ts.UpNodes()
		st.Running = s.ts.Running()
	} else {
		st.NodesUp = s.ss.UpNodes()
		st.Running = s.ss.Running()
	}
	if s.applyErr != nil {
		st.Err = s.applyErr.Error()
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, st, 0)
}

// handleMetrics serves the Prometheus text exposition. It stays up at
// every shed level deliberately: a service that sheds its own telemetry
// under overload cannot be diagnosed, and the scrape is one bounded
// write, not policy work.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.intake.RLock()
	draining := s.draining
	s.intake.RUnlock()
	s.mu.Lock()
	s.syncRegistryLocked(draining)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	err := s.reg.WritePrometheus(w)
	s.mu.Unlock()
	if err != nil {
		// The write failed mid-stream; nothing useful left to send.
		return
	}
}

// syncRegistryLocked folds the HTTP-side atomic counters, the gauges and
// the admit-pool contention counters into the registry. Callers hold the
// write lock (the registry is not goroutine-safe by design — it lives
// inside the state partition).
func (s *Server) syncRegistryLocked(draining bool) {
	r := s.reg
	s.cRequests.syncTo(r.Counter("serve_requests_total", "Admission/node requests received."))
	s.cApplied.syncTo(r.Counter("serve_ops_applied_total", "Operations applied to the cluster."))
	s.cAdmitted.syncTo(r.Counter("serve_admitted_total", "Jobs accepted by the policy."))
	s.cRejected.syncTo(r.Counter("serve_rejected_total", "Jobs rejected by the policy."))
	s.cQuotaDenied.syncTo(r.Counter("serve_quota_denied_total", "Requests denied 429 by tenant quota."))
	s.cQueueFull.syncTo(r.Counter("serve_queue_full_total", "Requests denied 503 on a full admission queue."))
	s.cShedClass.syncTo(r.Counter("serve_shed_class_total", "Sheddable-class requests shed 503."))
	s.cShedAll.syncTo(r.Counter("serve_shed_all_total", "Requests shed 503 at the top shed level."))
	s.cAuditShed.syncTo(r.Counter("serve_audit_shed_total", "Admissions that skipped the audit slow path under load."))
	s.cTimeouts.syncTo(r.Counter("serve_timeouts_total", "Requests expired in queue before being applied."))
	s.cDrainDenied.syncTo(r.Counter("serve_drain_denied_total", "Requests refused because the daemon was draining."))
	s.cPanics.syncTo(r.Counter("serve_panics_total", "Requests answered 500 after a handler panic."))

	r.Gauge("serve_queue_depth", "Admission queue occupancy.").Set(float64(len(s.queue)))
	r.Gauge("serve_queue_capacity", "Admission queue bound.").Set(float64(cap(s.queue)))
	// The scrape queries through the tracked path too, so a recovery
	// (level-down) with no request traffic still lands in the
	// transition log by the next scrape.
	r.Gauge("serve_shed_level", "Current load-shedding ladder level (0-3).").Set(float64(s.shedLevel()))
	_, transTotal := s.shed.transitions()
	r.Counter("serve_shed_transitions_total", "Shed-ladder level transitions (up or down).").Add(float64(transTotal - s.shedTransExported))
	s.shedTransExported = transTotal
	s.tenants.syncTo(r)
	s.stages.drainTo(r)
	if s.spans != nil {
		r.Gauge("serve_span_ring_spans", "Spans currently held in the /debug/spans ring.").Set(float64(s.spans.Len()))
	}
	r.Gauge("serve_latency_p99_seconds", "Windowed p99 admission latency.").Set(s.shed.latencyP99())
	r.Gauge("serve_virtual_time_seconds", "Cluster virtual clock.").Set(s.eng.Now())
	b := 0.0
	if draining {
		b = 1
	}
	r.Gauge("serve_draining", "1 while the drain protocol runs.").Set(b)
	if s.quotas != nil {
		r.Gauge("serve_quota_tenants", "Distinct tenants with quota buckets.").Set(float64(s.quotas.tenants()))
	}
	var up, running int
	if s.ts != nil {
		up, running = s.ts.UpNodes(), s.ts.Running()
	} else {
		up, running = s.ss.UpNodes(), s.ss.Running()
	}
	r.Gauge("serve_nodes_up", "Nodes currently up.").Set(float64(up))
	r.Gauge("serve_nodes_total", "Cluster size.").Set(float64(s.cfg.Nodes))
	r.Gauge("serve_jobs_running", "Jobs currently on the cluster.").Set(float64(running))

	if s.wal != nil {
		m := s.wal.Metrics()
		r.Counter("serve_wal_appends_total", "Records appended to the write-ahead log.").Add(float64(m.Appends - s.walAppends))
		r.Counter("serve_wal_appended_bytes_total", "Bytes appended to the write-ahead log.").Add(float64(m.AppendedBytes - s.walAppendedBytes))
		r.Counter("serve_wal_commits_total", "WAL group-commit fsync barriers.").Add(float64(m.Commits - s.walCommits))
		r.Counter("serve_wal_rotations_total", "WAL segment rotations.").Add(float64(m.Rotations - s.walRotations))
		r.Counter("serve_wal_compactions_total", "Sealed WAL segments folded into the compacted prefix.").Add(float64(m.Compactions - s.walCompactions))
		s.walAppends, s.walAppendedBytes = m.Appends, m.AppendedBytes
		s.walCommits, s.walRotations, s.walCompactions = m.Commits, m.Rotations, m.Compactions
		r.Gauge("serve_wal_dirty_bytes", "Appended-but-uncommitted WAL bytes (unacknowledged loss window).").Set(float64(m.DirtyBytes))
		r.Gauge("serve_wal_last_index", "Index of the newest WAL record.").Set(float64(m.LastIndex))
		r.Gauge("serve_wal_recovered_records", "Records replayed from the WAL at boot.").Set(float64(m.RecoveredRecords))
		r.Gauge("serve_wal_recovery_truncated_bytes", "Bytes cut from torn WAL tails at boot.").Set(float64(m.RecoveryTruncatedBytes))
	}

	if s.pool != nil {
		st := s.pool.Stats()
		r.Counter("serve_admitpool_parks_total", "Admit-pool worker park events.").Add(float64(st.Parks - s.poolParks))
		r.Counter("serve_admitpool_wakes_total", "Admit-pool worker wakeups.").Add(float64(st.Wakes - s.poolWakes))
		r.Counter("serve_admitpool_spin_iters_total", "Admit-pool spin-wait iterations.").Add(float64(st.SpinIters - s.poolSpins))
		s.poolParks, s.poolWakes, s.poolSpins = st.Parks, st.Wakes, st.SpinIters
	}

	if s.shardEngines != nil {
		r.Gauge("serve_shards", "Shard engines attached to the serving cluster.").Set(float64(len(s.shardEngines)))
		r.Gauge("serve_shards_pending", "Node events pending across the shard engines.").Set(float64(s.ts.ShardsPending()))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}
