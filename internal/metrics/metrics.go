// Package metrics records per-job outcomes and derives the paper's two
// evaluation metrics: the percentage of submitted jobs completed within
// their deadlines, and the average slowdown over deadline-fulfilled jobs.
package metrics

import (
	"fmt"
	"slices"

	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// Outcome classifies what became of a submitted job.
type Outcome int

const (
	// Rejected by admission control (immediately or, for EDF, at
	// selection time).
	Rejected Outcome = iota
	// Met: completed within its deadline.
	Met
	// Missed: completed, but after its deadline.
	Missed
	// Unfinished: still in the system when the simulation ended. Treated
	// as not fulfilled.
	Unfinished
)

func (o Outcome) String() string {
	switch o {
	case Rejected:
		return "rejected"
	case Met:
		return "met"
	case Missed:
		return "missed"
	case Unfinished:
		return "unfinished"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// JobResult is the final record for one submitted job.
type JobResult struct {
	JobID    int
	Class    workload.Class
	NumProc  int
	Outcome  Outcome
	Submit   float64
	Finish   float64 // completion time; 0 for rejected jobs
	Response float64 // Finish - Submit for completed jobs
	Delay    float64 // eq. 3: response beyond the deadline, 0 if met
	Slowdown float64 // response / minimum runtime, for completed jobs
	Reason   string  // rejection reason, if any
}

// pendingSlot is one entry of the Recorder's dense pending table.
type pendingSlot struct {
	job     workload.Job
	present bool
}

// Recorder accumulates job results during a simulation. It is not
// goroutine-safe; each simulation owns one.
//
// Pending jobs live in a dense slice indexed by (ID - denseBase) rather
// than a map: workload IDs are consecutive in practice, so the hot
// Submitted/Complete path becomes a slice index instead of a map operation
// and allocates nothing once the table has grown. IDs far outside the dense
// window (more than ~8x the submitted count) spill to an overflow map so
// adversarial ID patterns stay bounded in memory.
type Recorder struct {
	results []JobResult
	// pendingDense holds jobs without a final outcome, indexed by
	// ID - denseBase; haveBase latches denseBase on the first submission.
	pendingDense    []pendingSlot
	denseBase       int
	haveBase        bool
	pendingOverflow map[int]workload.Job
	pendingCount    int
	rejected        int
	// submitted counts Submitted calls independently of the result list,
	// so the conservation invariant (submitted = finalized + pending) can
	// detect double-finalization or lost jobs.
	submitted int
	// kills counts node-crash job kills. A killed job stays pending — the
	// policy resubmits it and it still ends as exactly one final result.
	kills int
	// Observer, if set, is invoked with every finalized result (rejection
	// or completion) as it is recorded. Online runtime predictors hook it
	// to learn from completions.
	Observer func(JobResult)
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Reset returns the recorder to its NewRecorder state in place, keeping the
// grown result and pending storage so a reused recorder records its next
// run without touching the heap. The Observer is cleared; reinstall it
// after Reset if the next run needs one.
func (r *Recorder) Reset() {
	r.results = r.results[:0]
	r.pendingDense = r.pendingDense[:0]
	clear(r.pendingOverflow)
	r.denseBase, r.haveBase = 0, false
	r.pendingCount, r.rejected, r.submitted, r.kills = 0, 0, 0, 0
	r.Observer = nil
}

// denseLimit bounds how far past the submitted count the dense table may
// grow; beyond it an ID spills to the overflow map.
func (r *Recorder) denseLimit() int { return 8*(r.submitted+1) + 1024 }

// Submitted registers a job entering the system (before any admission
// decision). Every submitted job must later be rejected, completed, or
// flushed as unfinished.
func (r *Recorder) Submitted(j workload.Job) {
	r.submitted++
	if !r.haveBase {
		r.denseBase, r.haveBase = j.ID, true
	}
	if idx := j.ID - r.denseBase; idx >= 0 && idx < r.denseLimit() {
		for len(r.pendingDense) <= idx {
			r.pendingDense = append(r.pendingDense, pendingSlot{})
		}
		slot := &r.pendingDense[idx]
		if !slot.present {
			r.pendingCount++
		}
		slot.job, slot.present = j, true
		return
	}
	if r.pendingOverflow == nil {
		r.pendingOverflow = make(map[int]workload.Job)
	}
	if _, ok := r.pendingOverflow[j.ID]; !ok {
		r.pendingCount++
	}
	r.pendingOverflow[j.ID] = j
}

// clearPending finalizes a job's pending entry, wherever it lives. The
// dense table is checked first; an ID stored in the overflow map before the
// dense window grew over it is still found there.
func (r *Recorder) clearPending(id int) {
	if r.haveBase {
		if idx := id - r.denseBase; idx >= 0 && idx < len(r.pendingDense) && r.pendingDense[idx].present {
			r.pendingDense[idx].present = false
			r.pendingCount--
			return
		}
	}
	if _, ok := r.pendingOverflow[id]; ok {
		delete(r.pendingOverflow, id)
		r.pendingCount--
	}
}

// Killed records that a running job was torn down by a node crash. The job
// remains pending: the owning policy resubmits it, and its eventual
// rejection, completion, or flush is its single final outcome.
func (r *Recorder) Killed(j workload.Job) {
	r.kills++
}

// Kills returns the number of node-crash job kills recorded.
func (r *Recorder) Kills() int { return r.kills }

// ConservationError checks the job-conservation invariant: every Submitted
// job is either finalized (one result) or still pending — no job lost, none
// finalized twice. Returns nil while the books balance.
func (r *Recorder) ConservationError() error {
	if got := len(r.results) + r.pendingCount; got != r.submitted {
		return fmt.Errorf("metrics: %d submitted, but %d finalized + %d pending = %d",
			r.submitted, len(r.results), r.pendingCount, got)
	}
	return nil
}

// Reject records an admission-control rejection.
func (r *Recorder) Reject(j workload.Job, reason string) {
	r.clearPending(j.ID)
	r.rejected++
	res := JobResult{
		JobID: j.ID, Class: j.Class, NumProc: j.NumProc,
		Outcome: Rejected, Submit: j.Submit, Reason: reason,
	}
	r.results = append(r.results, res)
	if r.Observer != nil {
		r.Observer(res)
	}
}

// Complete records a job completion. minRuntime is the job's dedicated
// runtime on the slowest node it occupied (the slowdown denominator).
func (r *Recorder) Complete(j workload.Job, finish, minRuntime float64) {
	r.clearPending(j.ID)
	res := JobResult{
		JobID: j.ID, Class: j.Class, NumProc: j.NumProc,
		Submit: j.Submit, Finish: finish,
		Response: finish - j.Submit,
	}
	if minRuntime > 0 {
		res.Slowdown = res.Response / minRuntime
	}
	if finish <= j.AbsDeadline()+1e-6 {
		res.Outcome = Met
	} else {
		res.Outcome = Missed
		res.Delay = res.Response - j.Deadline
	}
	r.results = append(r.results, res)
	if r.Observer != nil {
		r.Observer(res)
	}
}

// Flush marks every still-pending job as unfinished; call once when the
// simulation ends. The order is deterministic: ascending job ID within the
// dense table, then ascending ID across the overflow map.
func (r *Recorder) Flush() {
	for i := range r.pendingDense {
		slot := &r.pendingDense[i]
		if !slot.present {
			continue
		}
		slot.present = false
		j := slot.job
		r.results = append(r.results, JobResult{
			JobID: j.ID, Class: j.Class, NumProc: j.NumProc,
			Outcome: Unfinished, Submit: j.Submit,
		})
	}
	if len(r.pendingOverflow) > 0 {
		ids := make([]int, 0, len(r.pendingOverflow))
		for id := range r.pendingOverflow {
			ids = append(ids, id)
		}
		slices.Sort(ids)
		for _, id := range ids {
			j := r.pendingOverflow[id]
			r.results = append(r.results, JobResult{
				JobID: j.ID, Class: j.Class, NumProc: j.NumProc,
				Outcome: Unfinished, Submit: j.Submit,
			})
		}
		clear(r.pendingOverflow)
	}
	r.pendingCount = 0
}

// Results returns the accumulated records (unsorted).
func (r *Recorder) Results() []JobResult { return r.results }

// Pending returns the number of jobs without a final outcome yet.
func (r *Recorder) Pending() int { return r.pendingCount }

// Summary is the aggregate view of one simulation run.
type Summary struct {
	Submitted  int
	Rejected   int
	Completed  int
	Met        int
	Missed     int
	Unfinished int
	// Killed counts node-crash teardowns of running jobs. Kills are events,
	// not final outcomes — a killed job is resubmitted and still finishes
	// as exactly one of the outcomes above — so Killed is not part of the
	// Submitted decomposition.
	Killed int

	// PctFulfilled is the paper's primary metric: jobs completed within
	// deadline as a percentage of all submitted jobs.
	PctFulfilled float64
	// AvgSlowdownMet is the paper's secondary metric: mean slowdown over
	// deadline-fulfilled jobs only.
	AvgSlowdownMet float64
	// AvgSlowdownCompleted covers all completed jobs, for diagnostics.
	AvgSlowdownCompleted float64
	// MeanDelayMissed is the mean eq.-3 delay over deadline-missed jobs.
	MeanDelayMissed float64
	// AcceptanceRate is accepted (completed or unfinished) / submitted.
	AcceptanceRate float64

	// MetHigh and MetLow split fulfilled jobs by urgency class.
	MetHigh, MetLow             int
	SubmittedHigh, SubmittedLow int
}

// Summarize computes the aggregate metrics. Unfinished jobs count as
// submitted but not fulfilled, mirroring the paper's metric definition.
func (r *Recorder) Summarize() Summary {
	var s Summary
	s.Killed = r.kills
	var sdMet, sdAll, delay sim.Welford
	for _, res := range r.results {
		s.Submitted++
		switch res.Class {
		case workload.HighUrgency:
			s.SubmittedHigh++
		case workload.LowUrgency:
			s.SubmittedLow++
		}
		switch res.Outcome {
		case Rejected:
			s.Rejected++
		case Unfinished:
			s.Unfinished++
		case Met:
			s.Completed++
			s.Met++
			sdMet.Add(res.Slowdown)
			sdAll.Add(res.Slowdown)
			switch res.Class {
			case workload.HighUrgency:
				s.MetHigh++
			case workload.LowUrgency:
				s.MetLow++
			}
		case Missed:
			s.Completed++
			s.Missed++
			sdAll.Add(res.Slowdown)
			delay.Add(res.Delay)
		}
	}
	if s.Submitted > 0 {
		s.PctFulfilled = 100 * float64(s.Met) / float64(s.Submitted)
		s.AcceptanceRate = float64(s.Completed+s.Unfinished) / float64(s.Submitted)
	}
	s.AvgSlowdownMet = sdMet.Mean()
	s.AvgSlowdownCompleted = sdAll.Mean()
	s.MeanDelayMissed = delay.Mean()
	return s
}
