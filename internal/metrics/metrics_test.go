package metrics

import (
	"math"
	"testing"

	"clustersched/internal/workload"
)

func wjob(id int, submit, runtime, deadline float64, class workload.Class) workload.Job {
	return workload.Job{
		ID: id, Submit: submit, Runtime: runtime, TraceEstimate: runtime,
		NumProc: 1, Deadline: deadline, Class: class,
	}
}

func TestRecorderLifecycle(t *testing.T) {
	r := NewRecorder()
	j1 := wjob(1, 0, 100, 200, workload.HighUrgency)
	j2 := wjob(2, 10, 100, 150, workload.LowUrgency)
	j3 := wjob(3, 20, 100, 300, workload.LowUrgency)
	j4 := wjob(4, 30, 100, 300, workload.HighUrgency)

	r.Submitted(j1)
	r.Submitted(j2)
	r.Submitted(j3)
	r.Submitted(j4)
	if r.Pending() != 4 {
		t.Fatalf("Pending = %d", r.Pending())
	}

	r.Complete(j1, 150, 100) // met: finish 150 ≤ 200; slowdown 1.5
	r.Complete(j2, 200, 100) // missed: 200 - 10 = 190 > 150; delay 40
	r.Reject(j3, "no nodes") // rejected
	r.Flush()                // j4 unfinished

	s := r.Summarize()
	if s.Submitted != 4 || s.Met != 1 || s.Missed != 1 || s.Rejected != 1 || s.Unfinished != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.PctFulfilled-25) > 1e-9 {
		t.Fatalf("PctFulfilled = %v, want 25", s.PctFulfilled)
	}
	if math.Abs(s.AvgSlowdownMet-1.5) > 1e-9 {
		t.Fatalf("AvgSlowdownMet = %v, want 1.5", s.AvgSlowdownMet)
	}
	if math.Abs(s.MeanDelayMissed-40) > 1e-9 {
		t.Fatalf("MeanDelayMissed = %v, want 40", s.MeanDelayMissed)
	}
	if s.MetHigh != 1 || s.MetLow != 0 || s.SubmittedHigh != 2 || s.SubmittedLow != 2 {
		t.Fatalf("class splits wrong: %+v", s)
	}
	if math.Abs(s.AcceptanceRate-0.75) > 1e-9 {
		t.Fatalf("AcceptanceRate = %v, want 0.75 (3 of 4 accepted)", s.AcceptanceRate)
	}
}

func TestCompleteExactlyAtDeadlineCounts(t *testing.T) {
	r := NewRecorder()
	j := wjob(1, 0, 100, 200, workload.LowUrgency)
	r.Submitted(j)
	r.Complete(j, 200, 100)
	s := r.Summarize()
	if s.Met != 1 {
		t.Fatalf("finishing exactly at the deadline must count as met: %+v", s)
	}
}

func TestDelayMatchesEquationThree(t *testing.T) {
	r := NewRecorder()
	j := wjob(1, 50, 100, 200, workload.LowUrgency)
	r.Submitted(j)
	r.Complete(j, 300, 100) // response 250, deadline 200 → delay 50
	res := r.Results()[0]
	if res.Outcome != Missed || math.Abs(res.Delay-50) > 1e-9 {
		t.Fatalf("result = %+v, want delay 50", res)
	}
}

func TestZeroMinRuntimeAvoidsDivZero(t *testing.T) {
	r := NewRecorder()
	j := wjob(1, 0, 100, 200, workload.LowUrgency)
	r.Submitted(j)
	r.Complete(j, 100, 0)
	if sd := r.Results()[0].Slowdown; sd != 0 || math.IsNaN(sd) {
		t.Fatalf("Slowdown = %v", sd)
	}
}

func TestEmptySummary(t *testing.T) {
	s := NewRecorder().Summarize()
	if s.PctFulfilled != 0 || s.AvgSlowdownMet != 0 || s.AcceptanceRate != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestFlushIdempotent(t *testing.T) {
	r := NewRecorder()
	j := wjob(1, 0, 100, 200, workload.LowUrgency)
	r.Submitted(j)
	r.Flush()
	r.Flush()
	if s := r.Summarize(); s.Unfinished != 1 || s.Submitted != 1 {
		t.Fatalf("double flush corrupted results: %+v", s)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Rejected: "rejected", Met: "met", Missed: "missed", Unfinished: "unfinished",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want)
		}
	}
	if Outcome(42).String() == "" {
		t.Error("unknown outcome should still print")
	}
}

func TestRecorderOverflowIDs(t *testing.T) {
	r := NewRecorder()
	// First submission latches denseBase; a far-away ID must spill to the
	// overflow map and still complete/flush correctly.
	near := wjob(100, 0, 50, 100, workload.LowUrgency)
	far := wjob(100_000_000, 1, 50, 100, workload.LowUrgency)
	far2 := wjob(200_000_000, 2, 50, 100, workload.HighUrgency)
	r.Submitted(near)
	r.Submitted(far)
	r.Submitted(far2)
	if r.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", r.Pending())
	}
	r.Complete(far, 40, 50)
	if r.Pending() != 2 {
		t.Fatalf("Pending = %d after overflow complete, want 2", r.Pending())
	}
	r.Flush()
	if err := r.ConservationError(); err != nil {
		t.Fatal(err)
	}
	s := r.Summarize()
	if s.Submitted != 3 || s.Met != 1 || s.Unfinished != 2 {
		t.Fatalf("summary = %+v", s)
	}
	// Flush order is deterministic: dense ascending, then overflow ascending.
	res := r.Results()
	last := res[len(res)-1]
	if last.JobID != 200_000_000 {
		t.Fatalf("last flushed ID = %d, want 200000000", last.JobID)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder()
	r.Observer = func(JobResult) {}
	r.Submitted(wjob(1, 0, 50, 100, workload.LowUrgency))
	r.Submitted(wjob(2, 1, 50, 100, workload.LowUrgency))
	r.Complete(wjob(1, 0, 50, 100, workload.LowUrgency), 40, 50)
	r.Killed(wjob(2, 1, 50, 100, workload.LowUrgency))
	r.Reset()
	if r.Pending() != 0 || len(r.Results()) != 0 || r.Kills() != 0 || r.Observer != nil {
		t.Fatalf("Reset left pending=%d results=%d kills=%d observer=%v",
			r.Pending(), len(r.Results()), r.Kills(), r.Observer != nil)
	}
	if s := r.Summarize(); s.Submitted != 0 {
		t.Fatalf("post-reset summary = %+v", s)
	}
	// A reused recorder behaves exactly like a fresh one.
	j := wjob(7, 0, 100, 200, workload.HighUrgency)
	r.Submitted(j)
	r.Complete(j, 150, 100)
	r.Flush()
	if err := r.ConservationError(); err != nil {
		t.Fatal(err)
	}
	s := r.Summarize()
	if s.Submitted != 1 || s.Met != 1 {
		t.Fatalf("post-reset run summary = %+v", s)
	}
}

func TestRecorderSteadyStateAllocationFree(t *testing.T) {
	r := NewRecorder()
	jobs := make([]workload.Job, 64)
	for i := range jobs {
		jobs[i] = wjob(1_000_000+i, float64(i), 50, 100, workload.LowUrgency)
	}
	run := func() {
		r.Reset()
		for _, j := range jobs {
			r.Submitted(j)
		}
		for i, j := range jobs {
			if i%2 == 0 {
				r.Complete(j, j.Submit+40, 50)
			}
		}
		r.Flush()
	}
	run() // grow the dense table and result storage
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Fatalf("steady-state recorder allocates %.1f times per run, want 0", avg)
	}
}
