package core

import (
	"math"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func newEDFHarness(t *testing.T, nodes int) (*sim.Engine, *EDF, *metrics.Recorder) {
	t.Helper()
	c, err := cluster.NewSpaceShared(nodes, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	return sim.NewEngine(), NewEDF(c, rec), rec
}

func TestEDFRunsSingleJob(t *testing.T) {
	e, p, rec := newEDFHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 100)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Met != 1 {
		t.Fatalf("summary = %+v", s)
	}
	// Dedicated node: slowdown exactly 1.
	if math.Abs(s.AvgSlowdownMet-1) > 1e-9 {
		t.Fatalf("slowdown = %v, want 1", s.AvgSlowdownMet)
	}
}

func TestEDFOrdersByDeadline(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	var order []int
	p.Cluster.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		order = append(order, rj.Job.ID)
		rec.Complete(rj.Job, rj.Finish, p.Cluster.MinRuntime(rj))
		p.dispatch(e)
	}
	// Three jobs at t=0; deadlines force 3,1,2 execution order. Deadlines
	// are long enough that all still fit when run sequentially.
	p.Submit(e, tsJob(1, 0, 10, 500, 1), 10)
	p.Submit(e, tsJob(2, 0, 10, 900, 1), 10)
	p.Submit(e, tsJob(3, 0, 10, 400, 1), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Job 1 starts first (queue empty at its submit), then 3, then 2.
	want := []int{1, 3, 2}
	for i, id := range want {
		if i >= len(order) || order[i] != id {
			t.Fatalf("completion order = %v, want %v", order, want)
		}
	}
}

func TestEDFReselectsOnLaterEarlierDeadline(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	var started []int
	p.Cluster.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		started = append(started, rj.Job.ID)
		rec.Complete(rj.Job, rj.Finish, p.Cluster.MinRuntime(rj))
		p.dispatch(e)
	}
	// Job 1 occupies the node until t=100. Jobs 2 and 3 queue; job 3
	// arrives later but with an earlier deadline, so it must run first —
	// the waiting-phase reselection the paper credits EDF with.
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 100)
	e.At(10, sim.PriorityArrival, func(e *sim.Engine) {
		p.Submit(e, tsJob(2, 10, 10, 800, 1), 10)
	})
	e.At(20, sim.PriorityArrival, func(e *sim.Engine) {
		p.Submit(e, tsJob(3, 20, 10, 300, 1), 10)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 2}
	for i, id := range want {
		if i >= len(started) || started[i] != id {
			t.Fatalf("order = %v, want %v", started, want)
		}
	}
}

func TestEDFRejectsExpiredAtSelection(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	// Job 1 holds the node until t=100.
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 100)
	// Job 2's deadline (t=50) expires while it waits.
	p.Submit(e, tsJob(2, 0, 10, 50, 1), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 || s.Met != 1 {
		t.Fatalf("summary = %+v, want job 2 rejected at selection", s)
	}
}

func TestEDFRejectsUnreachableDeadlinePerEstimate(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	// Estimate 500 swamps the 100 s deadline: rejected just before start,
	// even though the node is free and the real runtime (50) would fit —
	// EDF trusts the estimate.
	j := tsJob(1, 0, 50, 100, 1)
	p.Submit(e, j, 500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 {
		t.Fatalf("summary = %+v, want rejection on estimate", s)
	}
}

func TestEDFNoBackfillHeadBlocks(t *testing.T) {
	e, p, rec := newEDFHarness(t, 2)
	// Job 1 takes both nodes until t=100.
	p.Submit(e, tsJob(1, 0, 100, 300, 2), 100)
	// Job 2 (earliest deadline in queue) needs 2 nodes → waits.
	p.Submit(e, tsJob(2, 0, 50, 400, 2), 50)
	// Job 3 needs 1 node and could start now, but EDF does not backfill.
	p.Submit(e, tsJob(3, 0, 10, 500, 1), 10)
	if p.Cluster.Running() != 1 {
		t.Fatalf("running = %d, want only job 1 (no backfill)", p.Cluster.Running())
	}
	if p.QueueLen() != 2 {
		t.Fatalf("queue = %d, want 2 waiting", p.QueueLen())
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 3 {
		t.Fatalf("summary = %+v, want all 3 met eventually", s)
	}
}

func TestEDFRejectsOversizedJob(t *testing.T) {
	e, p, rec := newEDFHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 10, 100, 3), 10)
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestEDFWithGeneratedWorkloadCompletes(t *testing.T) {
	e, p, rec := newEDFHarness(t, 8)
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 120
	cfg.MaxProcs = 8
	cfg.MeanInterarrival = 300
	cfg.MeanRuntime = 600
	cfg.MaxRuntime = 7200
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSimulation(e, p, rec, jobs, 0); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if s.Submitted != 120 {
		t.Fatalf("submitted = %d", s.Submitted)
	}
	if s.Unfinished != 0 {
		t.Fatalf("unfinished = %d; EDF must drain its queue", s.Unfinished)
	}
	if s.Met == 0 {
		t.Fatal("no jobs met")
	}
	// EDF never misses under accurate estimates: it only starts a job when
	// the estimate says the deadline is reachable, and dedicated execution
	// honours that exactly.
	if s.Missed != 0 {
		t.Fatalf("missed = %d with accurate estimates", s.Missed)
	}
}

func TestEDFCanMissWithUnderestimates(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	// Estimate 50 fits the 100 s deadline, reality 200 s does not.
	j := tsJob(1, 0, 200, 100, 1)
	p.Submit(e, j, 50)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Missed != 1 {
		t.Fatalf("summary = %+v, want a miss from the underestimate", s)
	}
}

func TestRunSimulationRejectsInvalidWorkload(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	bad := []workload.Job{{ID: 1, Submit: -5, Runtime: 10, TraceEstimate: 10, NumProc: 1, Deadline: 100}}
	if err := RunSimulation(e, p, rec, bad, 0); err == nil {
		t.Fatal("invalid workload accepted")
	}
}
