package core

import (
	"fmt"
	"io"

	"clustersched/internal/cluster"
	"clustersched/internal/sim"
)

// MonitorSample is one periodic observation of a time-shared cluster.
type MonitorSample struct {
	Time float64
	// Utilization is the mean allocated capacity across nodes (0..1).
	Utilization float64
	// RunningJobs is the number of executing jobs.
	RunningJobs int
	// BusyNodes is the number of nodes with at least one slice.
	BusyNodes int
	// MeanSigma is the mean risk of deadline delay (eq. 6) over all
	// nodes, evaluated with no candidate — the cluster's live risk level.
	// Note σ of a node holding a single delayed job is 0 (no spread);
	// MeanMu and DelayedJobs catch that case.
	MeanSigma float64
	// MeanMu is the mean of the nodes' mean deadline delay µ (eq. 5);
	// 1 means no job anywhere is predicted to be delayed.
	MeanMu float64
	// DelayedJobs counts slices whose predicted completion exceeds their
	// deadline right now.
	DelayedJobs int
	// ZeroRiskNodes counts nodes whose σ is currently zero.
	ZeroRiskNodes int
	// DownNodes counts crashed nodes. Down nodes are excluded from every
	// other aggregate in the sample — a dead node contributes no
	// utilization, no predictions, and no risk, instead of poisoning the
	// baselines with stale or vacuous values.
	DownNodes int
}

// Monitor samples a time-shared cluster at a fixed interval for the
// duration of a simulation, producing the time series the paper's risk
// argument is about: watch MeanSigma spike exactly when inaccurate
// estimates have poisoned nodes.
type Monitor struct {
	Cluster  *cluster.TimeShared
	Interval float64
	// Limit stops sampling after this many samples (a safety valve; 0
	// means 1e6).
	Limit int
	// DisableCache turns off the per-node baseline prediction cache so
	// tests can compare cached against recomputed sample series.
	DisableCache bool
	// PendingExtra, when set, reports live events outside the engine the
	// monitor ticks on. Sharded runs point it at the shard engines' summed
	// backlog (cluster.TimeShared.ShardsPending): node events then live off
	// the global calendar, and without the hook the monitor would stop
	// sampling while jobs are still running — diverging from the sequential
	// reference, whose single calendar keeps the tick armed.
	PendingExtra func() int
	// Pool, when non-nil with more than one worker, fans each tick's
	// per-node baseline sampling across the pool (sharded runs hand the
	// monitor the same pool the barrier phases use; the tick fires at a
	// barrier, so the pool is idle). Every per-node figure is computed
	// with exactly the serial walk's arithmetic and the fold back into a
	// sample runs serially in node-index order, so the emitted series is
	// byte-identical to the serial path.
	Pool *sim.ShardPool

	samples []MonitorSample

	// cache holds each node's last baseline (no-candidate) fluid
	// prediction, keyed on the node's state version. A node whose version
	// is unchanged since the previous tick is only re-simulated when its
	// prediction is time-dependent (see PSNode.PredictionStable);
	// otherwise the cached absolute finish times are reused and only the
	// deadline-delay impacts, which depend on the sampling instant, are
	// re-derived.
	cache []baselineCache
	// dds is the scratch buffer for per-node deadline-delay values.
	dds []float64
	// stats and wdds are the pool path's scratch: one nodeStat per node,
	// one deadline-delay buffer per worker.
	stats []nodeStat
	wdds  [][]float64
}

// nodeStat is one node's contribution to a sample, computed in the
// parallel phase and folded serially.
type nodeStat struct {
	down     bool
	util     float64
	busy     bool
	delayed  int
	mu       float64
	sigma    float64
	hasJobs  bool
	zeroRisk bool
}

// baselineCache is one node's cached baseline prediction.
type baselineCache struct {
	valid   bool
	version uint64
	time    float64
	stable  bool
	preds   []cluster.PredictedDelay
}

// baseline returns node i's no-candidate predictions at time now, reusing
// the cached copy when the node's version proves it is still current.
func (m *Monitor) baseline(i int, node *cluster.PSNode, now float64) []cluster.PredictedDelay {
	if m.cache == nil {
		m.cache = make([]baselineCache, m.Cluster.Len())
	}
	ent := &m.cache[i]
	if !m.DisableCache && ent.valid && ent.version == node.Version() &&
		(ent.stable || ent.time == now) {
		return ent.preds
	}
	preds := node.PredictDelaysScratch(now, nil)
	ent.preds = append(ent.preds[:0], preds...)
	ent.valid = true
	ent.version = node.Version()
	ent.time = now
	ent.stable = node.PredictionStable()
	return ent.preds
}

// NewMonitor creates a monitor; call Start before Engine.Run.
func NewMonitor(c *cluster.TimeShared, interval float64) (*Monitor, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("core: monitor interval %g, want > 0", interval)
	}
	return &Monitor{Cluster: c, Interval: interval}, nil
}

// Start schedules the first sample. Sampling re-arms itself only while
// jobs are in the system or the calendar is non-empty, so it cannot keep
// an otherwise-finished simulation alive forever.
func (m *Monitor) Start(e *sim.Engine) {
	e.At(e.Now(), sim.PriorityMonitor, m.tick)
}

func (m *Monitor) tick(e *sim.Engine) {
	m.samples = append(m.samples, m.sample(e.Now()))
	limit := m.Limit
	if limit == 0 {
		limit = 1_000_000
	}
	if len(m.samples) >= limit {
		return
	}
	// Keep sampling only while something else is pending: the monitor's
	// own event is the only one left when the workload has drained.
	if e.Pending() > 0 || (m.PendingExtra != nil && m.PendingExtra() > 0) {
		e.After(m.Interval, sim.PriorityMonitor, m.tick)
	}
}

func (m *Monitor) sample(now float64) MonitorSample {
	if m.Pool != nil && m.Pool.Workers() > 1 {
		return m.samplePooled(now)
	}
	s := MonitorSample{Time: now, RunningJobs: m.Cluster.Running()}
	n := m.Cluster.Len()
	var utilSum, sigmaSum, muSum float64
	muNodes := 0
	upNodes := 0
	for i := 0; i < n; i++ {
		node := m.Cluster.Node(i)
		if node.Down() {
			s.DownNodes++
			continue
		}
		upNodes++
		utilSum += node.Utilization()
		if node.NumSlices() > 0 {
			s.BusyNodes++
		}
		preds := m.baseline(i, node, now)
		if cap(m.dds) < len(preds) {
			m.dds = make([]float64, len(preds))
		}
		dds := m.dds[:len(preds)]
		for j, pr := range preds {
			dds[j] = DeadlineDelay(pr.Delay, pr.AbsDeadline-now)
			if pr.Delay > 0 {
				s.DelayedJobs++
			}
		}
		mu, sigma := RiskOfDelay(dds)
		sigmaSum += sigma
		if len(dds) > 0 {
			muSum += mu
			muNodes++
		} else {
			// An empty node has no delays: its µ is the ideal 1.
			muSum++
			muNodes++
		}
		if ZeroRisk(sigma) {
			s.ZeroRiskNodes++
		}
	}
	if upNodes > 0 {
		s.Utilization = utilSum / float64(upNodes)
		s.MeanSigma = sigmaSum / float64(upNodes)
	}
	if muNodes > 0 {
		s.MeanMu = muSum / float64(muNodes)
	}
	return s
}

// samplePooled is the fan-out counterpart of the serial walk in sample:
// workers compute disjoint contiguous node ranges into per-node stats
// (the baseline cache entries are per-node, the prediction scratch is
// per-node, and each worker carries its own deadline-delay buffer, so
// the phase is race-free), then one serial fold accumulates them in node
// index order with the identical floating-point operation sequence.
func (m *Monitor) samplePooled(now float64) MonitorSample {
	n := m.Cluster.Len()
	k := m.Pool.Workers()
	if m.cache == nil {
		m.cache = make([]baselineCache, n)
	}
	if cap(m.stats) < n {
		m.stats = make([]nodeStat, n)
	}
	stats := m.stats[:n]
	if len(m.wdds) < k {
		m.wdds = make([][]float64, k)
	}
	m.Pool.Run(func(w int) {
		lo, hi := w*n/k, (w+1)*n/k
		dds := m.wdds[w]
		for i := lo; i < hi; i++ {
			node := m.Cluster.Node(i)
			st := &stats[i]
			*st = nodeStat{}
			if node.Down() {
				st.down = true
				continue
			}
			st.util = node.Utilization()
			st.busy = node.NumSlices() > 0
			preds := m.baseline(i, node, now)
			if cap(dds) < len(preds) {
				dds = make([]float64, len(preds))
			}
			dd := dds[:len(preds)]
			for j, pr := range preds {
				dd[j] = DeadlineDelay(pr.Delay, pr.AbsDeadline-now)
				if pr.Delay > 0 {
					st.delayed++
				}
			}
			st.mu, st.sigma = RiskOfDelay(dd)
			st.hasJobs = len(dd) > 0
			st.zeroRisk = ZeroRisk(st.sigma)
		}
		m.wdds[w] = dds
	})
	s := MonitorSample{Time: now, RunningJobs: m.Cluster.Running()}
	var utilSum, sigmaSum, muSum float64
	muNodes := 0
	upNodes := 0
	for i := range stats {
		st := &stats[i]
		if st.down {
			s.DownNodes++
			continue
		}
		upNodes++
		utilSum += st.util
		if st.busy {
			s.BusyNodes++
		}
		s.DelayedJobs += st.delayed
		sigmaSum += st.sigma
		if st.hasJobs {
			muSum += st.mu
			muNodes++
		} else {
			muSum++
			muNodes++
		}
		if st.zeroRisk {
			s.ZeroRiskNodes++
		}
	}
	if upNodes > 0 {
		s.Utilization = utilSum / float64(upNodes)
		s.MeanSigma = sigmaSum / float64(upNodes)
	}
	if muNodes > 0 {
		s.MeanMu = muSum / float64(muNodes)
	}
	return s
}

// Samples returns the collected time series.
func (m *Monitor) Samples() []MonitorSample { return m.samples }

// WriteCSV emits the time series as CSV.
func (m *Monitor) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time,utilization,running,busy_nodes,mean_sigma,mean_mu,delayed_jobs,zero_risk_nodes,down_nodes"); err != nil {
		return err
	}
	for _, s := range m.samples {
		if _, err := fmt.Fprintf(w, "%g,%.4f,%d,%d,%.4f,%.4f,%d,%d,%d\n",
			s.Time, s.Utilization, s.RunningJobs, s.BusyNodes, s.MeanSigma, s.MeanMu, s.DelayedJobs, s.ZeroRiskNodes, s.DownNodes); err != nil {
			return err
		}
	}
	return nil
}
