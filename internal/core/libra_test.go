package core

import (
	"math"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func tsJob(id int, submit, runtime, deadline float64, numproc int) workload.Job {
	return workload.Job{
		ID: id, Submit: submit, Runtime: runtime,
		TraceEstimate: runtime, NumProc: numproc, Deadline: deadline,
	}
}

func newLibraHarness(t *testing.T, nodes int) (*sim.Engine, *Libra, *metrics.Recorder) {
	t.Helper()
	c, err := cluster.NewTimeShared(nodes, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	return sim.NewEngine(), NewLibra(c, rec), rec
}

func TestLibraAcceptsFeasibleJob(t *testing.T) {
	e, p, rec := newLibraHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 100)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Met != 1 || s.Rejected != 0 {
		t.Fatalf("summary = %+v, want one met job", s)
	}
}

func TestLibraRejectsInfeasibleJob(t *testing.T) {
	e, p, rec := newLibraHarness(t, 2)
	// Share = 300/100 = 3 > 1 on every node.
	p.Submit(e, tsJob(1, 0, 300, 100, 1), 300)
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 {
		t.Fatalf("summary = %+v, want rejection", s)
	}
}

func TestLibraRejectsWhenNodesSaturated(t *testing.T) {
	e, p, rec := newLibraHarness(t, 1)
	// First job takes share 0.8.
	p.Submit(e, tsJob(1, 0, 80, 100, 1), 80)
	// Second needs 0.5: total 1.3 > 1 → reject.
	p.Submit(e, tsJob(2, 0, 50, 100, 1), 50)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 || s.Met != 1 {
		t.Fatalf("summary = %+v, want 1 met + 1 rejected", s)
	}
}

func TestLibraRejectsOversizedJob(t *testing.T) {
	e, p, rec := newLibraHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 10, 100, 5), 10)
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestLibraBestFitSaturatesLoadedNode(t *testing.T) {
	e, p, _ := newLibraHarness(t, 2)
	// Load node 0 modestly by submitting a job that lands somewhere; with
	// two empty nodes and FirstFit ties, BestFit picks node 0 by id.
	p.Submit(e, tsJob(1, 0, 20, 200, 1), 20)
	// Next single-proc job must co-locate on the already-loaded node (best
	// fit = least available share afterwards), leaving node 1 empty.
	p.Submit(e, tsJob(2, 0, 20, 200, 1), 20)
	if got := p.Cluster.Node(0).NumSlices(); got != 2 {
		t.Fatalf("node 0 slices = %d, want 2 (best fit saturates)", got)
	}
	if got := p.Cluster.Node(1).NumSlices(); got != 0 {
		t.Fatalf("node 1 slices = %d, want 0", got)
	}
}

func TestLibraWorstFitSpreadsLoad(t *testing.T) {
	e, p, _ := newLibraHarness(t, 2)
	p.Selection = WorstFit
	p.Submit(e, tsJob(1, 0, 20, 200, 1), 20)
	p.Submit(e, tsJob(2, 0, 20, 200, 1), 20)
	if p.Cluster.Node(0).NumSlices() != 1 || p.Cluster.Node(1).NumSlices() != 1 {
		t.Fatalf("slices = %d,%d, want spread 1,1",
			p.Cluster.Node(0).NumSlices(), p.Cluster.Node(1).NumSlices())
	}
}

func TestLibraParallelJobNeedsAllNodesSuitable(t *testing.T) {
	e, p, rec := newLibraHarness(t, 2)
	// Saturate node 0 almost fully.
	p.Submit(e, tsJob(1, 0, 95, 100, 1), 95)
	// A 2-proc job needing share 0.5 fits node 1 but not node 0 → reject.
	p.Submit(e, tsJob(2, 0, 50, 100, 2), 50)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 {
		t.Fatalf("summary = %+v, want the parallel job rejected", s)
	}
}

func TestLibraAcceptedJobsStartImmediately(t *testing.T) {
	e, p, _ := newLibraHarness(t, 1)
	p.Submit(e, tsJob(1, 0, 50, 200, 1), 50)
	if p.Cluster.Running() != 1 {
		t.Fatal("accepted job did not start immediately")
	}
}

// TestLibraFooledByUnderestimate reproduces the paper's core observation:
// with underestimated runtimes, Libra's share test sees a nearly-empty
// node and keeps accepting jobs whose deadlines then get destroyed.
func TestLibraFooledByUnderestimate(t *testing.T) {
	e, p, rec := newLibraHarness(t, 1)
	// Real 500 s, believed 10 s, deadline 600 s.
	p.Submit(e, tsJob(1, 0, 500, 600, 1), 10)
	// At t=50 the first job has overrun its estimate; Libra sees share 0.
	e.At(50, sim.PriorityArrival, func(e *sim.Engine) {
		p.Submit(e, tsJob(2, 50, 300, 320, 1), 300)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 0 {
		t.Fatalf("Libra rejected %d jobs; the share test should have been fooled into accepting both", s.Rejected)
	}
	if s.Missed == 0 {
		t.Fatal("expected at least one deadline miss from the overrun collision")
	}
}

func TestLibraAccurateFeasibleStreamAllMet(t *testing.T) {
	e, p, rec := newLibraHarness(t, 4)
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 60
	cfg.MaxProcs = 4
	cfg.MeanInterarrival = 400
	cfg.MeanRuntime = 300
	cfg.MaxRuntime = 3600
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := RunSimulation(e, p, rec, jobs, 0); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if s.Unfinished != 0 {
		t.Fatalf("unfinished = %d", s.Unfinished)
	}
	// Accurate estimates: every accepted job must meet its deadline — the
	// Libra invariant.
	if s.Missed != 0 {
		t.Fatalf("missed = %d with accurate estimates; invariant violated", s.Missed)
	}
	if s.Met == 0 {
		t.Fatal("no jobs met; harness broken")
	}
	if math.IsNaN(s.AvgSlowdownMet) || s.AvgSlowdownMet < 1 {
		t.Fatalf("AvgSlowdownMet = %v", s.AvgSlowdownMet)
	}
}
