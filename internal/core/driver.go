package core

import (
	"context"
	"fmt"

	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// defaultEventBudget is a generous runaway guard: well above what any
// paper-scale workload generates, small enough to fail fast on a model
// regression that loops.
const defaultEventBudget = 50_000_000

// RunSimulation feeds every job to the policy at its submit time, with the
// estimate visible at the given inaccuracy level (0 = perfectly accurate,
// 100 = the trace's actual estimates), runs the simulation to completion,
// and flushes the recorder so unfinished jobs are accounted for.
func RunSimulation(e *sim.Engine, p Policy, rec *metrics.Recorder, jobs []workload.Job, inaccuracyPct float64) error {
	return RunSimulationContext(context.Background(), e, p, rec, jobs, inaccuracyPct)
}

// RunSimulationContext is RunSimulation with cooperative cancellation: the
// engine polls the context between events, so a canceled or expired
// context aborts the run at event-loop granularity with a wrapped context
// error. The recorder is only flushed on a completed run.
func RunSimulationContext(ctx context.Context, e *sim.Engine, p Policy, rec *metrics.Recorder, jobs []workload.Job, inaccuracyPct float64) error {
	var d ArrivalDriver
	return RunSimulationReusing(ctx, e, p, rec, jobs, inaccuracyPct, &d)
}

// RunSimulationReusing is RunSimulationContext with a caller-owned
// ArrivalDriver, so repeated runs reuse the driver's persistent handler
// instead of allocating per-run arrival closures.
func RunSimulationReusing(ctx context.Context, e *sim.Engine, p Policy, rec *metrics.Recorder, jobs []workload.Job, inaccuracyPct float64, d *ArrivalDriver) error {
	if err := workload.ValidateAll(jobs); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	d.begin(e, p, jobs, inaccuracyPct)
	if e.MaxEvents == 0 {
		e.MaxEvents = defaultEventBudget
	}
	if err := e.RunContext(ctx); err != nil {
		return fmt.Errorf("core: simulation aborted: %w", err)
	}
	rec.Flush()
	return nil
}

// ArrivalDriver feeds a job stream to a policy with one chained event: each
// arrival schedules the next before submitting its own job, so a run holds
// at most one arrival event and one persistent handler instead of a closure
// per job. The zero value is ready to use and can be reused across runs.
//
// Chaining preserves the exact event ordering of the schedule-everything-
// up-front approach: arrivals are the only PriorityArrival events, job
// submit times are validated nondecreasing, and each arrival's event is
// created before any later arrival's — so the (time, priority, sequence)
// order among arrivals, and between arrivals and any other event, is
// unchanged.
type ArrivalDriver struct {
	p    Policy
	jobs []workload.Job
	pct  float64
	i    int
	h    sim.Handler
}

// begin points the driver at a run's policy and job stream and schedules
// the first arrival.
func (d *ArrivalDriver) begin(e *sim.Engine, p Policy, jobs []workload.Job, inaccuracyPct float64) {
	d.p, d.jobs, d.pct, d.i = p, jobs, inaccuracyPct, 0
	if d.h == nil {
		d.h = d.fire
	}
	if len(jobs) > 0 {
		e.At(jobs[0].Submit, sim.PriorityArrival, d.h)
	}
}

func (d *ArrivalDriver) fire(e *sim.Engine) {
	j := d.jobs[d.i]
	d.i++
	if d.i < len(d.jobs) {
		e.At(d.jobs[d.i].Submit, sim.PriorityArrival, d.h)
	}
	d.p.Submit(e, j, j.EstimateAt(d.pct))
}
