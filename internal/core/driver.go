package core

import (
	"context"
	"fmt"

	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// defaultEventBudget is a generous runaway guard: well above what any
// paper-scale workload generates, small enough to fail fast on a model
// regression that loops.
const defaultEventBudget = 50_000_000

// RunSimulation feeds every job to the policy at its submit time, with the
// estimate visible at the given inaccuracy level (0 = perfectly accurate,
// 100 = the trace's actual estimates), runs the simulation to completion,
// and flushes the recorder so unfinished jobs are accounted for.
func RunSimulation(e *sim.Engine, p Policy, rec *metrics.Recorder, jobs []workload.Job, inaccuracyPct float64) error {
	return RunSimulationContext(context.Background(), e, p, rec, jobs, inaccuracyPct)
}

// RunSimulationContext is RunSimulation with cooperative cancellation: the
// engine polls the context between events, so a canceled or expired
// context aborts the run at event-loop granularity with a wrapped context
// error. The recorder is only flushed on a completed run.
func RunSimulationContext(ctx context.Context, e *sim.Engine, p Policy, rec *metrics.Recorder, jobs []workload.Job, inaccuracyPct float64) error {
	if err := workload.ValidateAll(jobs); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	for _, j := range jobs {
		j := j
		e.At(j.Submit, sim.PriorityArrival, func(e *sim.Engine) {
			p.Submit(e, j, j.EstimateAt(inaccuracyPct))
		})
	}
	if e.MaxEvents == 0 {
		e.MaxEvents = defaultEventBudget
	}
	if err := e.RunContext(ctx); err != nil {
		return fmt.Errorf("core: simulation aborted: %w", err)
	}
	rec.Flush()
	return nil
}
