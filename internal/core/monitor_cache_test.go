package core

import (
	"math"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// TestMonitorCacheMatchesRecompute runs the same trace-estimate workload
// twice — once with the version-keyed baseline cache and once with every
// tick fully recomputed — and requires the two sample series to agree.
// Integer observables must match exactly; float observables are compared
// within 1e-9 because a cached stable prediction carries finish times
// computed as now+believed(now) at an earlier tick, which can differ from
// a fresh recomputation by float rounding dust (the values are
// mathematically identical).
func TestMonitorCacheMatchesRecompute(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 400
	cfg.MaxProcs = 8
	cfg.MeanInterarrival = 400
	cfg.MeanRuntime = 1500
	cfg.MaxRuntime = 10000
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}

	run := func(disableCache bool) []MonitorSample {
		c, err := cluster.NewTimeShared(8, 168, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder()
		p := NewLibraRisk(c, rec)
		m, err := NewMonitor(c, 50)
		if err != nil {
			t.Fatal(err)
		}
		m.DisableCache = disableCache
		e := sim.NewEngine()
		m.Start(e)
		// Trace estimates (100% inaccuracy) so overruns and deadline
		// misses poison nodes and the risk series is non-trivial.
		if err := RunSimulation(e, p, rec, jobs, 100); err != nil {
			t.Fatal(err)
		}
		return m.Samples()
	}

	cached := run(false)
	fresh := run(true)

	if len(cached) != len(fresh) {
		t.Fatalf("samples = %d cached vs %d recomputed", len(cached), len(fresh))
	}
	if len(cached) < 20 {
		t.Fatalf("only %d samples — workload too short to exercise the cache", len(cached))
	}
	var sawRisk bool
	for i := range cached {
		a, b := cached[i], fresh[i]
		if a.Time != b.Time || a.RunningJobs != b.RunningJobs || a.BusyNodes != b.BusyNodes ||
			a.DelayedJobs != b.DelayedJobs || a.ZeroRiskNodes != b.ZeroRiskNodes {
			t.Fatalf("sample %d integer fields diverge:\ncached  %+v\nfresh   %+v", i, a, b)
		}
		for _, f := range [][2]float64{
			{a.Utilization, b.Utilization},
			{a.MeanSigma, b.MeanSigma},
			{a.MeanMu, b.MeanMu},
		} {
			if math.Abs(f[0]-f[1]) > 1e-9 {
				t.Fatalf("sample %d float fields diverge:\ncached  %+v\nfresh   %+v", i, a, b)
			}
		}
		if a.MeanSigma > 0 {
			sawRisk = true
		}
	}
	if !sawRisk {
		t.Fatal("risk series stayed flat — scenario never exercised non-trivial predictions")
	}
}
