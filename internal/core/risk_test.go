package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeadlineDelayPaperExample(t *testing.T) {
	// §3.2 worked example: delay 20 s with remaining deadline 5 s gives
	// impact 5; the same delay with remaining deadline 10 s gives 3.
	if got := DeadlineDelay(20, 5); got != 5 {
		t.Fatalf("DeadlineDelay(20, 5) = %v, want 5", got)
	}
	if got := DeadlineDelay(20, 10); got != 3 {
		t.Fatalf("DeadlineDelay(20, 10) = %v, want 3", got)
	}
}

func TestDeadlineDelayZeroDelayIsOne(t *testing.T) {
	if got := DeadlineDelay(0, 100); got != 1 {
		t.Fatalf("DeadlineDelay(0, 100) = %v, want 1 (minimum and best)", got)
	}
}

func TestDeadlineDelayNegativeDelayClamped(t *testing.T) {
	if got := DeadlineDelay(-5, 100); got != 1 {
		t.Fatalf("DeadlineDelay(-5, 100) = %v, want 1", got)
	}
}

func TestDeadlineDelayExpiredDeadlineIsHuge(t *testing.T) {
	got := DeadlineDelay(10, 0)
	if got < 1e6 {
		t.Fatalf("DeadlineDelay(10, 0) = %v, want enormous", got)
	}
	if math.IsInf(got, 1) || math.IsNaN(got) {
		t.Fatalf("DeadlineDelay must stay finite, got %v", got)
	}
	if neg := DeadlineDelay(10, -50); neg < 1e6 {
		t.Fatalf("DeadlineDelay(10, -50) = %v, want enormous", neg)
	}
}

func TestDeadlineDelayMonotoneProperties(t *testing.T) {
	// Higher impact for longer delay, and for shorter remaining deadline.
	f := func(d1, d2, rd uint16) bool {
		delayA := float64(d1)
		delayB := delayA + float64(d2) + 1
		r := float64(rd) + 1
		if DeadlineDelay(delayB, r) <= DeadlineDelay(delayA, r) && delayB > delayA {
			return false
		}
		return DeadlineDelay(delayB, r/2) >= DeadlineDelay(delayB, r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRiskOfDelayUniformValuesZeroSigma(t *testing.T) {
	mu, sigma := RiskOfDelay([]float64{1, 1, 1, 1})
	if mu != 1 || !ZeroRisk(sigma) {
		t.Fatalf("µ=%v σ=%v, want 1 and zero", mu, sigma)
	}
	// The paper's σ=0 test also holds for uniformly delayed jobs: the
	// metric measures spread, not level.
	mu, sigma = RiskOfDelay([]float64{3, 3, 3})
	if mu != 3 || !ZeroRisk(sigma) {
		t.Fatalf("uniform 3s: µ=%v σ=%v", mu, sigma)
	}
}

func TestRiskOfDelayMixedValuesPositiveSigma(t *testing.T) {
	mu, sigma := RiskOfDelay([]float64{1, 1, 5})
	if math.Abs(mu-7.0/3) > 1e-12 {
		t.Fatalf("µ = %v", mu)
	}
	if ZeroRisk(sigma) {
		t.Fatalf("σ = %v, want positive", sigma)
	}
	// Population stddev of {1,1,5}: mean 7/3, var = (2*(4/3)^2+(8/3)^2)/3.
	want := math.Sqrt((2*(4.0/3)*(4.0/3) + (8.0 / 3 * 8.0 / 3)) / 3)
	if math.Abs(sigma-want) > 1e-12 {
		t.Fatalf("σ = %v, want %v", sigma, want)
	}
}

func TestRiskOfDelayEmptyAndSingle(t *testing.T) {
	mu, sigma := RiskOfDelay(nil)
	if mu != 0 || sigma != 0 {
		t.Fatalf("empty: µ=%v σ=%v", mu, sigma)
	}
	mu, sigma = RiskOfDelay([]float64{7})
	if mu != 7 || !ZeroRisk(sigma) {
		t.Fatalf("single: µ=%v σ=%v (a lone value has no spread)", mu, sigma)
	}
}

func TestRiskOfDelaySigmaNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		vals := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				vals = append(vals, 1+math.Abs(x))
			}
		}
		_, sigma := RiskOfDelay(vals)
		return sigma >= 0 && !math.IsNaN(sigma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRiskTolerance(t *testing.T) {
	if !ZeroRisk(0) || !ZeroRisk(1e-12) {
		t.Fatal("tiny sigma should count as zero")
	}
	if ZeroRisk(0.01) {
		t.Fatal("0.01 is not zero risk")
	}
}
