package core

import (
	"fmt"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// EDF is the non-preemptive Earliest Deadline First comparison strategy:
// space-shared (one job per processor), with a queue of incoming jobs
// ordered by deadline. Unlike Libra and LibraRisk it does not reject at
// submission; it waits for the requested number of processors for the
// earliest-deadline job, reselecting if an even earlier-deadline job
// arrives meanwhile, and rejects a selected job only just before execution
// if its deadline has expired or can no longer be met per its runtime
// estimate — the paper's deliberately more generous admission control.
type EDF struct {
	Cluster  *cluster.SpaceShared
	Recorder *metrics.Recorder

	// obsHooks carries the optional per-run tracer/metrics/audit
	// attachments (see SetObs); all nil by default.
	obsHooks

	queue edfQueue
}

// edfItem is one queued job with the estimate in force at submission.
type edfItem struct {
	job      workload.Job
	estimate float64
	seq      int // FIFO tiebreak for equal deadlines
	// submittedAt is the engine's processed-event count at enqueue time;
	// the difference at dispatch is the job's admission latency in events.
	submittedAt uint64
	resubmit    bool // re-queued after a node crash
}

// edfQueue is a hand-rolled binary min-heap over (AbsDeadline, seq).
// container/heap would box every edfItem through its Push(any) interface,
// allocating per enqueue on the hottest EDF path; the manual sift keeps
// items in the slice. The comparator is a total order (seq breaks every
// tie), so the pop sequence is identical to container/heap's.
type edfQueue []edfItem

func (q edfQueue) Len() int { return len(q) }

func edfLess(a, b edfItem) bool {
	if a.job.AbsDeadline() != b.job.AbsDeadline() {
		return a.job.AbsDeadline() < b.job.AbsDeadline()
	}
	return a.seq < b.seq
}

func (q *edfQueue) push(it edfItem) {
	s := append(*q, it)
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !edfLess(s[i], s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
	*q = s
}

func (q *edfQueue) popMin() edfItem {
	s := *q
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*q = s
	i := 0
	for {
		min := i
		if l := 2*i + 1; l < n && edfLess(s[l], s[min]) {
			min = l
		}
		if r := 2*i + 2; r < n && edfLess(s[r], s[min]) {
			min = r
		}
		if min == i {
			return top
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
}

// NewEDF wires an EDF policy to a space-shared cluster, including its
// failure-recovery hooks: a job killed by a node crash re-enters the queue
// with its remaining runtime and estimate but its original deadline, and a
// recovering node triggers a dispatch pass since capacity just returned.
func NewEDF(c *cluster.SpaceShared, rec *metrics.Recorder) *EDF {
	p := &EDF{Cluster: c, Recorder: rec}
	c.OnJobDone = func(e *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
		p.dispatch(e)
	}
	c.OnJobKilled = func(e *sim.Engine, kj cluster.KilledJob) {
		rec.Killed(kj.Job.Job)
		job := kj.Job.Job
		job.Runtime = kj.RemainingRuntime
		p.enqueue(e, edfItem{job: job, estimate: kj.RemainingEstimate, seq: job.ID, resubmit: true})
		// The gang's surviving nodes were just released; someone queued
		// (possibly the victim itself) may be able to start.
		p.dispatch(e)
	}
	c.OnNodeUp = func(e *sim.Engine, id int) {
		p.dispatch(e)
	}
	return p
}

// Name implements Policy.
func (p *EDF) Name() string { return "EDF" }

// QueueLen returns the number of jobs waiting for processors.
func (p *EDF) QueueLen() int { return p.queue.Len() }

// Submit implements Policy: enqueue and try to dispatch.
func (p *EDF) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	p.arriveObs(e.Now(), job)
	if job.NumProc > p.Cluster.Len() {
		p.beginObs(e.Now(), job, estimate, false)
		p.reject(e.Now(), job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	p.enqueue(e, edfItem{job: job, estimate: estimate, seq: job.ID})
	p.dispatch(e)
}

// enqueue pushes an item stamped with the engine's event count and
// samples the queue-depth metrics.
func (p *EDF) enqueue(e *sim.Engine, it edfItem) {
	it.submittedAt = e.Processed()
	p.queue.push(it)
	if p.Sim != nil {
		depth := float64(p.queue.Len())
		p.Sim.QueueDepth.Observe(depth)
		if depth > p.Sim.MaxQueueDepth.Value() {
			p.Sim.MaxQueueDepth.Set(depth)
		}
	}
}

// reject records a rejection in both the metrics recorder and the
// observability hooks, keeping the audit decision count exactly equal to
// the recorded rejection count.
func (p *EDF) reject(now float64, job workload.Job, reason string) {
	p.Recorder.Reject(job, reason)
	p.rejectObs(now, job, reason)
}

// Reset empties the wait queue so the policy can drive a fresh run on a
// reset cluster, keeping the queue's storage.
func (p *EDF) Reset() { p.queue = p.queue[:0] }

// dispatch starts queued jobs in deadline order while the head job's
// processors are available; it blocks (no backfilling) on the first job
// that must keep waiting.
func (p *EDF) dispatch(e *sim.Engine) {
	now := e.Now()
	for p.queue.Len() > 0 {
		head := p.queue[0]
		if p.Cluster.FreeCount() < head.job.NumProc {
			// The selected job waits for processors; nothing behind it may
			// overtake (non-preemptive, no backfill). Its admission check
			// happens when it is about to execute.
			return
		}
		p.queue.popMin()
		// Admission just prior to execution: this is EDF's decision point,
		// so the audit record opens here, not at enqueue.
		p.beginObs(now, head.job, head.estimate, head.resubmit)
		if now >= head.job.AbsDeadline() {
			p.reject(now, head.job, "deadline expired while queued")
			continue
		}
		rt, ok := p.Cluster.RuntimeOn(head.estimate, head.job.NumProc)
		if !ok {
			// FreeCount said yes; this cannot fail, but stay safe.
			p.reject(now, head.job, "processors vanished before start")
			continue
		}
		if now+rt > head.job.AbsDeadline() {
			p.reject(now, head.job, "deadline unreachable per runtime estimate")
			continue
		}
		rj, err := p.Cluster.Start(e, head.job, head.estimate)
		if err != nil {
			p.reject(now, head.job, "start failed: "+err.Error())
			continue
		}
		wait := float64(e.Processed() - head.submittedAt)
		if p.Sim != nil {
			p.Sim.AdmitLatencyEvents.Observe(wait)
		}
		p.acceptObs(now, head.job, rj.NodeIDs, wait)
	}
}
