package core

import (
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// Policy is a deadline-constrained job admission control plus scheduler.
// Submit is called at each job's arrival time with the runtime estimate
// the scheduler is allowed to see (the real runtime stays hidden inside
// the job and drives execution only). Completion and rejection outcomes
// flow into the policy's metrics recorder.
type Policy interface {
	Name() string
	Submit(e *sim.Engine, job workload.Job, estimate float64)
}

// NodeSelection chooses how Libra-style policies order suitable nodes.
type NodeSelection int

const (
	// BestFit selects the nodes with the least available processor time
	// after accepting the job (Libra's strategy: saturate nodes).
	BestFit NodeSelection = iota
	// FirstFit selects suitable nodes in index order (the literal reading
	// of LibraRisk's Algorithm 1).
	FirstFit
	// WorstFit selects the nodes with the most available processor time
	// after accepting the job (load levelling; ablation only).
	WorstFit
)

func (s NodeSelection) String() string {
	switch s {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return "unknown-fit"
	}
}
