// Package core implements the paper's contribution: deadline-constrained
// job admission control for clusters, in three flavours — EDF (earliest
// deadline first, space-shared), Libra (deadline-based proportional
// processor share with a total-share admission test and best-fit node
// selection), and LibraRisk (Libra enhanced with a risk-of-deadline-delay
// metric that tolerates inaccurate runtime estimates).
package core

import (
	"math"
)

// epsRemaining guards the deadline-delay metric against a non-positive
// remaining deadline: a job already past its deadline gets an enormous
// (but finite) impact value, which is what eq. (4) intends as the
// remaining deadline approaches zero.
const epsRemaining = 1e-6

// sigmaTolerance is the numeric tolerance for "zero risk": population
// standard deviations below it count as zero. Fluid predictions are exact
// rationals in theory but float arithmetic leaves dust.
const sigmaTolerance = 1e-9

// DeadlineDelay computes the paper's eq. (4): the impact of a delay on a
// job's remaining deadline,
//
//	deadline_delay = (delay + remaining_deadline) / remaining_deadline.
//
// Its minimum and best value is 1 (no delay); it grows with longer delays
// and shorter remaining deadlines, discouraging violations of urgent jobs.
// A non-positive remaining deadline is clamped to a small epsilon.
func DeadlineDelay(delay, remainingDeadline float64) float64 {
	if delay < 0 {
		delay = 0
	}
	rd := math.Max(remainingDeadline, epsRemaining)
	return (delay + rd) / rd
}

// RiskOfDelay computes eqs. (5)-(6): the mean deadline delay µ of the
// given values and the risk σ, their population standard deviation. A
// high σ indicates high uncertainty that jobs on the node avoid deadline
// delays; σ = 0 is ideal.
func RiskOfDelay(deadlineDelays []float64) (mu, sigma float64) {
	n := len(deadlineDelays)
	if n == 0 {
		return 0, 0
	}
	for _, d := range deadlineDelays {
		mu += d
	}
	mu /= float64(n)
	var sq float64
	for _, d := range deadlineDelays {
		diff := d - mu
		sq += diff * diff
	}
	sigma = math.Sqrt(sq / float64(n))
	return mu, sigma
}

// ZeroRisk reports whether sigma is zero within numeric tolerance.
func ZeroRisk(sigma float64) bool { return sigma <= sigmaTolerance }
