package core

import "clustersched/internal/sim"

// Parallel admission scan: at datacenter scale the dominant cost of a
// Libra/LibraRisk arrival is the per-node suitability walk (a rejection
// evaluates a fluid prediction on every node), and under the sharded
// engine that walk happens at a barrier, when every shard worker is
// otherwise idle. The scan fans node evaluation out across the shard pool
// while remaining decision-identical to the sequential walk:
//
//   - Per-node evaluations are pure with respect to shared state — they
//     mutate only the node's own scratch buffers, and each node is
//     evaluated by exactly one worker.
//   - The node range is cut into fixed chunks assigned round-robin
//     (chunk c -> worker c mod W). Each worker appends its fits to its own
//     buffer and records a per-chunk count, so the coordinator can merge
//     by walking chunks in order — reproducing exactly the ascending
//     node-index order of the sequential walk without a sort.
//
// The scan is disabled whenever admission has order-sensitive side
// effects the walk would reorder (auditing, per-decision sim metrics) or
// behaviour-preserving fast paths are disabled for differential testing —
// the parallel scan is itself such a fast path.
const (
	// admitParPrefix is scanned inline by the coordinator before fanning
	// out under FirstFit selection: a shallow accept (the common case on a
	// lightly loaded cluster) finds its NumProc zero-risk nodes here and
	// never pays the fan-out.
	admitParPrefix = 64
	// admitParChunk is the fan-out work unit. Big enough to amortize the
	// chunk bookkeeping, small enough to balance 10k nodes across 8
	// workers even when evaluation cost is skewed.
	admitParChunk = 64
	// admitParMinNodes gates the fan-out: below this the sequential walk
	// wins outright. Kept at the paper's cluster size so the sharded
	// differential tests exercise the parallel path.
	admitParMinNodes = 128
)

// admitScratch holds the reusable buffers of the parallel admission scan.
type admitScratch struct {
	fits    [][]nodeFit
	counts  []int32
	cursors []int
}

func (s *admitScratch) ensure(workers, chunks int) {
	if len(s.fits) < workers {
		s.fits = append(s.fits, make([][]nodeFit, workers-len(s.fits))...)
		s.cursors = make([]int, workers)
	}
	if cap(s.counts) < chunks {
		s.counts = make([]int32, chunks)
	}
	s.counts = s.counts[:chunks]
}

// parallelScan evaluates nodes [lo, hi) across the pool's workers and
// appends the accepted fits to dst in ascending node-index order, exactly
// as the sequential walk would have. eval must be safe to call from
// multiple goroutines for distinct nodes and must not touch state shared
// across nodes.
func parallelScan(pool *sim.ShardPool, sc *admitScratch, lo, hi int, dst []nodeFit, eval func(i int) (nodeFit, bool)) []nodeFit {
	w := pool.Workers()
	chunks := (hi - lo + admitParChunk - 1) / admitParChunk
	sc.ensure(w, chunks)
	pool.Run(func(worker int) {
		buf := sc.fits[worker][:0]
		for ci := worker; ci < chunks; ci += w {
			clo := lo + ci*admitParChunk
			chi := clo + admitParChunk
			if chi > hi {
				chi = hi
			}
			start := len(buf)
			for i := clo; i < chi; i++ {
				if fit, ok := eval(i); ok {
					buf = append(buf, fit)
				}
			}
			sc.counts[ci] = int32(len(buf) - start)
		}
		sc.fits[worker] = buf
	})
	for i := range sc.cursors {
		sc.cursors[i] = 0
	}
	for ci := 0; ci < chunks; ci++ {
		worker := ci % w
		cnt := int(sc.counts[ci])
		cur := sc.cursors[worker]
		dst = append(dst, sc.fits[worker][cur:cur+cnt]...)
		sc.cursors[worker] = cur + cnt
	}
	return dst
}
