package core

import (
	"fmt"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// LibraRisk is the paper's contribution (Algorithm 1): Libra's
// proportional-share execution, but a node is suitable for a new job only
// if its risk of deadline delay σ (eq. 6) is zero after tentatively adding
// the job. The delays entering σ come from a fluid forward simulation of
// the node using everyone's *believed* remaining work, so jobs that have
// silently overrun an underestimate — invisible to Libra's share test —
// surface as predicted delays and poison the node's risk.
type LibraRisk struct {
	Cluster  *cluster.TimeShared
	Recorder *metrics.Recorder
	// Selection orders the zero-risk nodes a job is allocated to.
	// Algorithm 1 walks nodes in index order, so FirstFit is the default.
	Selection NodeSelection
	// SigmaThreshold relaxes the zero-risk test to σ ≤ threshold; the
	// default 0 is the paper's rule. Used by the ablation bench.
	SigmaThreshold float64
	// MeanRule switches the suitability test from σ = 0 (the paper's
	// Algorithm 1) to µ = 1, i.e. *no* predicted deadline delay at all.
	// σ = 0 additionally admits uniformly-delayed configurations — in
	// practice a lone over-estimated job on an empty node — so comparing
	// the two quantifies the value of that forgiveness (ablation).
	MeanRule bool
}

// NewLibraRisk wires a LibraRisk policy to a time-shared cluster.
func NewLibraRisk(c *cluster.TimeShared, rec *metrics.Recorder) *LibraRisk {
	p := &LibraRisk{Cluster: c, Recorder: rec, Selection: FirstFit}
	c.OnJobDone = func(_ *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
	}
	return p
}

// Name implements Policy.
func (p *LibraRisk) Name() string { return "LibraRisk" }

// NodeRisk evaluates one node: the deadline-delay values of all its jobs
// plus the candidate (Algorithm 1 lines 2-7), their mean µ and risk σ.
// The σ here is numerically identical to RiskOfDelay over the same values
// (Welford's single-pass population form), without materializing them.
func (p *LibraRisk) NodeRisk(now float64, n *cluster.PSNode, cand *cluster.Candidate) (mu, sigma float64) {
	preds := n.PredictDelays(now, cand)
	var w sim.Welford
	for _, pr := range preds {
		w.Add(DeadlineDelay(pr.Delay, pr.AbsDeadline-now))
	}
	return w.Mean(), w.StdDevPop()
}

// Submit implements Policy: Algorithm 1.
func (p *LibraRisk) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	if job.NumProc > p.Cluster.Len() {
		p.Recorder.Reject(job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	now := e.Now()
	cand := &cluster.Candidate{JobID: job.ID, RefWork: estimate, AbsDeadline: job.AbsDeadline()}
	zeroRisk := make([]nodeFit, 0, p.Cluster.Len())
	for i := 0; i < p.Cluster.Len(); i++ {
		n := p.Cluster.Node(i)
		mu, sigma := p.NodeRisk(now, n, cand)
		suitable := sigma <= p.SigmaThreshold+sigmaTolerance
		if p.MeanRule {
			suitable = mu <= 1+sigmaTolerance
		}
		if suitable {
			// Record the post-acceptance share so BestFit/WorstFit
			// selections have the same notion of fit Libra uses.
			zeroRisk = append(zeroRisk, nodeFit{id: i, share: n.LibraShareWith(now, estimate, cand.AbsDeadline)})
		}
	}
	if len(zeroRisk) < job.NumProc {
		p.Recorder.Reject(job, fmt.Sprintf("only %d of %d required nodes have zero risk", len(zeroRisk), job.NumProc))
		return
	}
	orderBySelection(zeroRisk, p.Selection)
	ids := make([]int, job.NumProc)
	for i := range ids {
		ids[i] = zeroRisk[i].id
	}
	if _, err := p.Cluster.Submit(e, job, estimate, ids); err != nil {
		p.Recorder.Reject(job, "placement failed: "+err.Error())
	}
}
