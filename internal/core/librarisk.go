package core

import (
	"fmt"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/obs"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// LibraRisk is the paper's contribution (Algorithm 1): Libra's
// proportional-share execution, but a node is suitable for a new job only
// if its risk of deadline delay σ (eq. 6) is zero after tentatively adding
// the job. The delays entering σ come from a fluid forward simulation of
// the node using everyone's *believed* remaining work, so jobs that have
// silently overrun an underestimate — invisible to Libra's share test —
// surface as predicted delays and poison the node's risk.
type LibraRisk struct {
	Cluster  *cluster.TimeShared
	Recorder *metrics.Recorder
	// Selection orders the zero-risk nodes a job is allocated to.
	// Algorithm 1 walks nodes in index order, so FirstFit is the default.
	Selection NodeSelection
	// SigmaThreshold relaxes the zero-risk test to σ ≤ threshold; the
	// default 0 is the paper's rule. Used by the ablation bench.
	SigmaThreshold float64
	// MeanRule switches the suitability test from σ = 0 (the paper's
	// Algorithm 1) to µ = 1, i.e. *no* predicted deadline delay at all.
	// σ = 0 additionally admits uniformly-delayed configurations — in
	// practice a lone over-estimated job on an empty node — so comparing
	// the two quantifies the value of that forgiveness (ablation).
	MeanRule bool
	// DisableFastPath turns off the admission fast paths (the empty-node
	// shortcut and the FirstFit early exit) so the differential tests can
	// prove they are behaviour-preserving.
	DisableFastPath bool

	// obsHooks carries the optional per-run tracer/metrics/audit
	// attachments (see SetObs); all nil by default.
	obsHooks

	// fits, ids and cand are reused across Submit calls so admission does
	// not allocate per arrival.
	fits []nodeFit
	ids  []int
	cand cluster.Candidate

	// pool, when attached (sharded runs), fans the admission node scan out
	// across the shard workers; see SetAdmitPool and admitpar.go.
	pool *sim.ShardPool
	par  admitScratch
	// parNow/parFirstFit stash the scan parameters and evalParH the
	// bound-once evaluator, so the fan-out allocates no closure per arrival.
	parNow      float64
	parFirstFit bool
	evalParH    func(i int) (nodeFit, bool)
}

// SetAdmitPool attaches (or with nil detaches) the worker pool the
// admission scan may fan out on. Implements AdmitParallel.
func (p *LibraRisk) SetAdmitPool(pool *sim.ShardPool) {
	p.pool = pool
	if pool != nil && p.evalParH == nil {
		p.evalParH = p.evalPar
	}
}

// evalPar is the parallel scan's per-node evaluator: the exact sequential
// walk body for one up node, against the parameters stashed by admit. It
// touches only the node's own scratch (see PredictDelaysScratch), so
// distinct nodes evaluate race-free in parallel.
func (p *LibraRisk) evalPar(i int) (nodeFit, bool) {
	n := p.Cluster.Node(i)
	if n.Down() {
		return nodeFit{}, false
	}
	_, sigma, suitable, _ := p.evalNode(p.parNow, n, &p.cand, false)
	if !suitable {
		return nodeFit{}, false
	}
	fit := nodeFit{id: i, sigma: sigma}
	if !p.parFirstFit {
		fit.share = n.LibraShareWith(p.parNow, p.cand.RefWork, p.cand.AbsDeadline)
	}
	return fit, true
}

// NewLibraRisk wires a LibraRisk policy to a time-shared cluster,
// including its failure-recovery hook: a job killed by a node crash is
// immediately resubmitted through Algorithm 1 with its remaining runtime
// and estimate but its original deadline, so the risk metric σ now prices
// node unavailability — the survivors absorbed the dead node's load and
// their predicted delays rise accordingly.
func NewLibraRisk(c *cluster.TimeShared, rec *metrics.Recorder) *LibraRisk {
	p := &LibraRisk{Cluster: c, Recorder: rec, Selection: FirstFit}
	c.OnJobDone = func(_ *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
	}
	c.OnJobKilled = func(e *sim.Engine, kj cluster.KilledJob) {
		rec.Killed(kj.Job.Job)
		job := kj.Job.Job
		job.Runtime = kj.RemainingRuntime
		p.admit(e, job, kj.RemainingEstimate, true)
	}
	return p
}

// Name implements Policy.
func (p *LibraRisk) Name() string { return "LibraRisk" }

// Reset prepares the policy for a fresh run on a reset cluster. LibraRisk
// keeps no cross-arrival state beyond its scratch buffers, so this only
// exists to satisfy the resettable-policy contract.
func (p *LibraRisk) Reset() {}

// NodeRisk evaluates one node: the deadline-delay values of all its jobs
// plus the candidate (Algorithm 1 lines 2-7), their mean µ and risk σ.
// The σ here is numerically identical to RiskOfDelay over the same values
// (Welford's single-pass population form), without materializing a fresh
// []PredictedDelay: the fluid predictions stream out of the node's
// reusable scratch buffer straight into the accumulator, in the same
// ascending-JobID order the allocating path uses.
func (p *LibraRisk) NodeRisk(now float64, n *cluster.PSNode, cand *cluster.Candidate) (mu, sigma float64) {
	var w sim.Welford
	for _, pr := range n.PredictDelaysScratch(now, cand) {
		w.Add(DeadlineDelay(pr.Delay, pr.AbsDeadline-now))
	}
	return w.Mean(), w.StdDevPop()
}

// nodeSuitable applies Algorithm 1's suitability test to one node.
func (p *LibraRisk) nodeSuitable(now float64, n *cluster.PSNode, cand *cluster.Candidate) bool {
	_, _, ok, _ := p.evalNode(now, n, cand, false)
	return ok
}

// evalNode applies Algorithm 1's suitability test to one node, returning
// the µ/σ it computed and whether it ran the fluid simulation at all.
//
// Fast path: an empty node is always suitable under the σ rule, without
// running the fluid simulation — the prediction set is the candidate
// alone, a single observation, whose population standard deviation is
// exactly 0 ≤ any non-negative threshold. The µ rule depends on the
// candidate's own predicted delay, so it always runs the simulation.
// forceRisk (audit mode) always computes the real µ/σ; the decision is
// identical because that single-observation σ is exactly 0.
func (p *LibraRisk) evalNode(now float64, n *cluster.PSNode, cand *cluster.Candidate, forceRisk bool) (mu, sigma float64, suitable, computed bool) {
	if !forceRisk && !p.DisableFastPath && !p.MeanRule && n.NumSlices() == 0 {
		return 0, 0, true, false
	}
	mu, sigma = p.NodeRisk(now, n, cand)
	if p.MeanRule {
		return mu, sigma, mu <= 1+sigmaTolerance, true
	}
	return mu, sigma, sigma <= p.SigmaThreshold+sigmaTolerance, true
}

// reject records a rejection in both the metrics recorder and the
// observability hooks, keeping the audit decision count exactly equal to
// the recorded rejection count.
func (p *LibraRisk) reject(now float64, job workload.Job, reason string) {
	p.Recorder.Reject(job, reason)
	p.rejectObs(now, job, reason)
}

// Submit implements Policy: Algorithm 1.
//
// The node walk carries two fast paths, both behaviour-preserving (the
// differential test in internal/experiment runs paper-scale simulations
// with and without them and asserts identical summaries):
//
//   - FirstFit early exit: Algorithm 1 walks nodes in index order and
//     FirstFit takes the first NumProc zero-risk nodes, so once that many
//     are found the remaining nodes cannot change the outcome and the
//     scan stops. Rejections still scan every node, keeping the recorded
//     rejection reason identical.
//   - Post-acceptance shares are only computed when the selection rule
//     (BestFit/WorstFit) actually orders by them.
func (p *LibraRisk) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	p.arriveObs(e.Now(), job)
	p.admit(e, job, estimate, false)
}

// admit runs Algorithm 1 without registering a new submission — shared by
// Submit and the crash-resubmission hook (resubmit marks the latter in
// the audit log).
func (p *LibraRisk) admit(e *sim.Engine, job workload.Job, estimate float64, resubmit bool) {
	now := e.Now()
	p.beginObs(now, job, estimate, resubmit)
	if job.NumProc > p.Cluster.Len() {
		p.reject(now, job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	p.cand = cluster.Candidate{JobID: job.ID, RefWork: estimate, AbsDeadline: job.AbsDeadline()}
	cand := &p.cand
	firstFit := p.Selection == FirstFit
	auditing := p.auditing()
	zeroRisk := p.fits[:0]
	// Fan the node walk out across the shard pool when attached, unless
	// admission has order-sensitive observers (auditing, per-decision sim
	// metrics) or fast paths are disabled — the parallel scan is itself a
	// behaviour-preserving fast path. Under FirstFit a sequential prefix
	// runs first so a shallow accept never pays the fan-out.
	parFrom := p.Cluster.Len()
	if p.pool != nil && !auditing && p.Sim == nil && !p.DisableFastPath &&
		p.Cluster.Len() >= admitParMinNodes {
		parFrom = 0
		if firstFit {
			parFrom = admitParPrefix
		}
	}
	for i := 0; i < parFrom; i++ {
		n := p.Cluster.Node(i)
		if n.Down() {
			if auditing {
				p.Audit.Node(obs.NodeEval{Node: i, Down: true})
			}
			continue
		}
		mu, sigma, suitable, computed := p.evalNode(now, n, cand, auditing)
		if computed && p.Sim != nil {
			p.Sim.RiskSigma.Observe(sigma)
		}
		if auditing {
			p.Audit.Node(obs.NodeEval{Node: i, Sigma: sigma, Mu: mu, Suitable: suitable})
		}
		if !suitable {
			continue
		}
		fit := nodeFit{id: i, sigma: sigma}
		if !firstFit || p.DisableFastPath {
			// Record the post-acceptance share so BestFit/WorstFit
			// selections have the same notion of fit Libra uses.
			fit.share = n.LibraShareWith(now, estimate, cand.AbsDeadline)
		}
		zeroRisk = append(zeroRisk, fit)
		if firstFit && !p.DisableFastPath && len(zeroRisk) == job.NumProc {
			break
		}
	}
	if parFrom < p.Cluster.Len() && !(firstFit && len(zeroRisk) >= job.NumProc) {
		// Decision-identical to continuing the walk: evaluations are pure,
		// results merge in node-index order, and the first NumProc entries
		// (all FirstFit uses) are exactly the ones the sequential early
		// exit would have stopped at. A rejection evaluates every node on
		// both paths, so rejection reasons and counts match too.
		p.parNow, p.parFirstFit = now, firstFit
		zeroRisk = parallelScan(p.pool, &p.par, parFrom, p.Cluster.Len(), zeroRisk, p.evalParH)
	}
	p.fits = zeroRisk
	if len(zeroRisk) < job.NumProc {
		p.reject(now, job, fmt.Sprintf("only %d of %d required nodes have zero risk", len(zeroRisk), job.NumProc))
		return
	}
	orderBySelection(zeroRisk, p.Selection)
	if cap(p.ids) < job.NumProc {
		p.ids = make([]int, job.NumProc)
	}
	ids := p.ids[:job.NumProc]
	maxSigma := 0.0
	for i := range ids {
		ids[i] = zeroRisk[i].id
		if zeroRisk[i].sigma > maxSigma {
			maxSigma = zeroRisk[i].sigma
		}
	}
	if _, err := p.Cluster.Submit(e, job, estimate, ids); err != nil {
		p.reject(now, job, "placement failed: "+err.Error())
		return
	}
	p.acceptObs(now, job, ids, maxSigma)
}
