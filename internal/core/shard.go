package core

import (
	"context"
	"fmt"
	"math"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// RunSimulationSharded is the space-partitioned counterpart of
// RunSimulationReusing: the global engine e carries only the cross-node
// events (arrivals, faults, monitor ticks), while node update events run
// on the cluster's attached shard engines, advanced concurrently between
// consecutive global events.
//
// The barrier protocol is: peek the next global event's (time, priority)
// key, run every shard up to (strictly below) that key in parallel, apply
// the parked slice completions in sequential order, then process the one
// global event — so every admit decision, fault and monitor sample sees
// exactly the cluster state the sequential engine would have shown it.
// Once the global calendar drains, the shards are drained to completion
// the same way. See DESIGN.md "Sharded execution".
//
// The caller owns the pool (its Workers() must equal the shard count) and
// must have attached the shard engines via cluster.AttachShards.
func RunSimulationSharded(ctx context.Context, e *sim.Engine, c *cluster.TimeShared, pool *sim.ShardPool, p Policy, rec *metrics.Recorder, jobs []workload.Job, inaccuracyPct float64, d *ArrivalDriver) error {
	if err := workload.ValidateAll(jobs); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	shards := c.ShardEngines()
	if len(shards) == 0 {
		return fmt.Errorf("core: sharded run without attached shard engines")
	}
	if pool == nil || pool.Workers() != len(shards) {
		return fmt.Errorf("core: shard pool size does not match %d shards", len(shards))
	}
	d.begin(e, p, jobs, inaccuracyPct)
	if e.MaxEvents == 0 {
		e.MaxEvents = defaultEventBudget
	}
	for _, se := range shards {
		if se.MaxEvents == 0 {
			se.MaxEvents = defaultEventBudget
		}
	}

	errs := make([]error, len(shards))
	busy := make([]bool, len(shards))
	// runPhase drains every shard strictly below the (t, pr) key — or
	// completely, when drain is set — applying parked completions after
	// the workers have joined. The coordinator peeks every shard first:
	// phases where no shard has work skip the pool barrier entirely, and a
	// single busy shard runs inline on the coordinator — both common under
	// light load, where worker wakeups would otherwise dominate.
	runPhase := func(t float64, pr sim.Priority, drain bool) error {
		nbusy, last := 0, -1
		for i, se := range shards {
			st, sp, ok := se.PeekNext()
			busy[i] = ok && (drain || st < t || (st == t && sp < pr))
			if busy[i] {
				nbusy++
				last = i
			}
		}
		if nbusy == 0 {
			return nil
		}
		c.BeginShardPhase()
		if nbusy == 1 {
			se := shards[last]
			if drain {
				se.SetHorizon(math.Inf(1))
				errs[last] = se.RunContext(ctx)
			} else {
				se.SetHorizonKey(t, pr)
				errs[last] = se.Run()
			}
		} else {
			pool.Run(func(w int) {
				if !busy[w] {
					errs[w] = nil
					return
				}
				se := shards[w]
				if drain {
					se.SetHorizon(math.Inf(1))
					errs[w] = se.RunContext(ctx)
				} else {
					se.SetHorizonKey(t, pr)
					errs[w] = se.Run()
				}
			})
		}
		c.EndShardPhase(e)
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	done := ctx.Done()
	for barrier := uint64(0); ; barrier++ {
		if done != nil && barrier&ctxCheckBarrierMask == 0 {
			select {
			case <-done:
				return fmt.Errorf("core: sharded run canceled at t=%.6g after %d barriers: %w",
					e.Now(), barrier, context.Cause(ctx))
			default:
			}
		}
		t, pr, ok := e.PeekNext()
		if !ok {
			break
		}
		if err := runPhase(t, pr, false); err != nil {
			return fmt.Errorf("core: shard phase aborted: %w", err)
		}
		// Step every consecutive global event sharing this exact (t, pr)
		// key behind the one phase. A handler can only schedule strictly
		// later work — node updates carry a forward-progress floor and
		// arrival chains re-arm at or after their own key — so no shard
		// can have gained an event below the key between equal-key steps:
		// the phase the unbatched loop would run for each of them is
		// provably empty. Equal-key events fire in seq order either way,
		// so the batched stream is byte-identical while SWF workloads'
		// same-second arrival runs pay one barrier instead of one each.
		for {
			if _, err := e.Step(); err != nil {
				return fmt.Errorf("core: simulation aborted: %w", err)
			}
			nt, npr, nok := e.PeekNext()
			if !nok || nt != t || npr != pr {
				break
			}
		}
	}
	// The global calendar is empty; whatever the shards still hold (node
	// events of jobs outliving the last arrival) runs to completion now.
	// Applying completions schedules nothing new, so one pass suffices;
	// the loop guards against a model that proves otherwise.
	for c.ShardsPending() > 0 {
		before := c.ShardsPending()
		if err := runPhase(0, 0, true); err != nil {
			return fmt.Errorf("core: shard drain aborted: %w", err)
		}
		if c.ShardsPending() >= before {
			return fmt.Errorf("core: shard drain made no progress at %d pending events", before)
		}
	}
	// Align the global clock with the latest shard event, matching the
	// sequential engine's final Now() (its last event is the last
	// completion when no monitor tick outlives it).
	for _, se := range shards {
		if se.Now() > e.Now() {
			e.AdvanceTo(se.Now())
		}
	}
	rec.Flush()
	return nil
}

// ctxCheckBarrierMask mirrors the engine's ctxCheckMask at barrier
// granularity: the cancellation poll runs every 64 barriers.
const ctxCheckBarrierMask = 63

// AdmitParallel is implemented by policies whose admission node scan can
// fan out across the shard pool at barrier time (Libra and LibraRisk).
// The experiment layer attaches the pool for sharded runs and detaches it
// (nil) afterwards.
type AdmitParallel interface {
	SetAdmitPool(pool *sim.ShardPool)
}
