package core

import (
	"fmt"
	"slices"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/obs"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

// Libra is the deadline-based proportional processor share strategy with
// job admission control (Sherwani et al.): a new job is accepted only if
// every allocated node retains total share ≤ 1 including the new job
// (eqs. 1-2), and nodes are chosen best-fit so they saturate to their
// maximum. Accepted jobs start immediately at their allocated share.
type Libra struct {
	Cluster  *cluster.TimeShared
	Recorder *metrics.Recorder
	// Selection defaults to BestFit, the paper's Libra behaviour.
	Selection NodeSelection
	// DisableFastPath turns off the share-accumulation early exit and the
	// FirstFit scan cutoff so the differential tests can prove they are
	// behaviour-preserving.
	DisableFastPath bool

	// obsHooks carries the optional per-run tracer/metrics/audit
	// attachments (see SetObs); all nil by default.
	obsHooks

	// fits and ids are reused across Submit calls so admission does not
	// allocate per arrival.
	fits []nodeFit
	ids  []int

	// pool, when attached (sharded runs), fans the admission node scan out
	// across the shard workers; see SetAdmitPool and admitpar.go.
	pool *sim.ShardPool
	par  admitScratch
	// parNow/parEstimate/parAbsDL stash the scan parameters and evalParH
	// the bound-once evaluator, so the fan-out allocates no closure per
	// arrival.
	parNow      float64
	parEstimate float64
	parAbsDL    float64
	evalParH    func(i int) (nodeFit, bool)
}

// libraLimit is the admission share ceiling with its float tolerance.
const libraLimit = 1 + 1e-9

// SetAdmitPool attaches (or with nil detaches) the worker pool the
// admission scan may fan out on. Implements AdmitParallel.
func (p *Libra) SetAdmitPool(pool *sim.ShardPool) {
	p.pool = pool
	if pool != nil && p.evalParH == nil {
		p.evalParH = p.evalPar
	}
}

// evalPar is the parallel scan's per-node evaluator: the exact sequential
// walk body for one up node, against the parameters stashed by admit.
// LibraShareWithLimit only reads node state, so distinct nodes evaluate
// race-free in parallel.
func (p *Libra) evalPar(i int) (nodeFit, bool) {
	node := p.Cluster.Node(i)
	if node.Down() {
		return nodeFit{}, false
	}
	s, ok := node.LibraShareWithLimit(p.parNow, p.parEstimate, p.parAbsDL, libraLimit)
	if !ok {
		return nodeFit{}, false
	}
	return nodeFit{id: i, share: s}, true
}

// NewLibra wires a Libra policy to a time-shared cluster and installs its
// completion and failure-recovery hooks: a job killed by a node crash is
// immediately resubmitted through the admission test with its remaining
// runtime and estimate but its original deadline — the crashed node is
// already down, so the share test prices the lost capacity.
func NewLibra(c *cluster.TimeShared, rec *metrics.Recorder) *Libra {
	p := &Libra{Cluster: c, Recorder: rec, Selection: BestFit}
	c.OnJobDone = func(_ *sim.Engine, rj *cluster.RunningJob) {
		rec.Complete(rj.Job, rj.Finish, c.MinRuntime(rj))
	}
	c.OnJobKilled = func(e *sim.Engine, kj cluster.KilledJob) {
		rec.Killed(kj.Job.Job)
		job := kj.Job.Job
		job.Runtime = kj.RemainingRuntime
		// Resubmission, not a new submission: the job is still pending in
		// the recorder and must end with exactly one final outcome.
		p.admit(e, job, kj.RemainingEstimate, true)
	}
	return p
}

// Name implements Policy.
func (p *Libra) Name() string { return "Libra" }

// Reset prepares the policy for a fresh run on a reset cluster. Libra
// keeps no cross-arrival state beyond its scratch buffers, so this only
// exists to satisfy the resettable-policy contract.
func (p *Libra) Reset() {}

// Submit implements Policy: the Libra admission test and best-fit
// placement.
//
// Two behaviour-preserving fast paths (proved by the differential test in
// internal/experiment): the per-node share accumulation aborts as soon as
// the running total exceeds the admission limit — the terms are
// non-negative, so the node is already unsuitable — and under FirstFit
// selection the node walk stops once NumProc suitable nodes are found.
func (p *Libra) Submit(e *sim.Engine, job workload.Job, estimate float64) {
	p.Recorder.Submitted(job)
	p.arriveObs(e.Now(), job)
	p.admit(e, job, estimate, false)
}

// reject records a rejection in both the metrics recorder and the
// observability hooks, keeping the audit decision count exactly equal to
// the recorded rejection count.
func (p *Libra) reject(now float64, job workload.Job, reason string) {
	p.Recorder.Reject(job, reason)
	p.rejectObs(now, job, reason)
}

// admit runs the admission test and placement without registering a new
// submission — shared by Submit and the crash-resubmission hook (resubmit
// marks the latter in the audit log).
func (p *Libra) admit(e *sim.Engine, job workload.Job, estimate float64, resubmit bool) {
	now := e.Now()
	p.beginObs(now, job, estimate, resubmit)
	if job.NumProc > p.Cluster.Len() {
		p.reject(now, job, fmt.Sprintf("needs %d processors, cluster has %d", job.NumProc, p.Cluster.Len()))
		return
	}
	absDL := job.AbsDeadline()
	const limit = libraLimit
	auditing := p.auditing()
	firstFit := p.Selection == FirstFit && !p.DisableFastPath
	suitable := p.fits[:0]
	// Fan the node walk out across the shard pool when attached, unless
	// admission has order-sensitive observers (auditing, per-decision sim
	// metrics) or fast paths are disabled — the parallel scan is itself a
	// behaviour-preserving fast path. Under FirstFit a sequential prefix
	// runs first so a shallow accept never pays the fan-out.
	parFrom := p.Cluster.Len()
	if p.pool != nil && !auditing && p.Sim == nil && !p.DisableFastPath &&
		p.Cluster.Len() >= admitParMinNodes {
		parFrom = 0
		if firstFit {
			parFrom = admitParPrefix
		}
	}
	for i := 0; i < parFrom; i++ {
		if p.Cluster.Node(i).Down() {
			if auditing {
				p.Audit.Node(obs.NodeEval{Node: i, Down: true})
			}
			continue
		}
		var s float64
		var ok bool
		if p.DisableFastPath || auditing {
			// Audit mode computes the full share even past the limit so the
			// log shows the real number; the decision (s ≤ limit) is
			// identical to the early-abort fast path's.
			s = p.Cluster.Node(i).LibraShareWith(now, estimate, absDL)
			ok = s <= limit
		} else {
			s, ok = p.Cluster.Node(i).LibraShareWithLimit(now, estimate, absDL, limit)
		}
		if auditing {
			p.Audit.Node(obs.NodeEval{Node: i, Share: obs.JSONFloat(s), Suitable: ok})
		}
		if ok {
			if p.Sim != nil {
				p.Sim.AdmitShare.Observe(s)
			}
			suitable = append(suitable, nodeFit{id: i, share: s})
			if firstFit && len(suitable) == job.NumProc {
				break
			}
		}
	}
	if parFrom < p.Cluster.Len() && !(firstFit && len(suitable) >= job.NumProc) {
		// Decision-identical to continuing the walk: evaluations are pure,
		// results merge in node-index order, and the first NumProc entries
		// (all FirstFit uses) are exactly the ones the sequential early
		// exit would have stopped at. A rejection evaluates every node on
		// both paths, so rejection reasons and counts match too.
		p.parNow, p.parEstimate, p.parAbsDL = now, estimate, absDL
		suitable = parallelScan(p.pool, &p.par, parFrom, p.Cluster.Len(), suitable, p.evalParH)
	}
	p.fits = suitable
	if len(suitable) < job.NumProc {
		p.reject(now, job, fmt.Sprintf("only %d of %d required nodes can hold the share", len(suitable), job.NumProc))
		return
	}
	orderBySelection(suitable, p.Selection)
	if cap(p.ids) < job.NumProc {
		p.ids = make([]int, job.NumProc)
	}
	ids := p.ids[:job.NumProc]
	maxShare := 0.0
	for i := range ids {
		ids[i] = suitable[i].id
		if suitable[i].share > maxShare {
			maxShare = suitable[i].share
		}
	}
	if _, err := p.Cluster.Submit(e, job, estimate, ids); err != nil {
		// Unreachable with a correct admission test; surface as rejection
		// rather than corrupt the metrics.
		p.reject(now, job, "placement failed: "+err.Error())
		return
	}
	p.acceptObs(now, job, ids, maxShare)
}

// nodeFit pairs a node id with the total share it would carry after
// accepting the candidate job, plus the risk σ LibraRisk evaluated for it
// (0 when not computed — selection never orders by it).
type nodeFit struct {
	id    int
	share float64
	sigma float64
}

// orderBySelection sorts candidate nodes per the fit strategy; ties break
// on node id for determinism. slices.SortFunc rather than sort.Slice: the
// comparators are total orders so the results are identical, and SortFunc
// avoids sort.Slice's reflection-based swapper allocation on a per-arrival
// path.
func orderBySelection(fits []nodeFit, sel NodeSelection) {
	switch sel {
	case BestFit:
		slices.SortFunc(fits, func(a, b nodeFit) int {
			if a.share != b.share {
				if a.share > b.share {
					return -1
				}
				return 1
			}
			return a.id - b.id
		})
	case WorstFit:
		slices.SortFunc(fits, func(a, b nodeFit) int {
			if a.share != b.share {
				if a.share < b.share {
					return -1
				}
				return 1
			}
			return a.id - b.id
		})
	case FirstFit:
		slices.SortFunc(fits, func(a, b nodeFit) int { return a.id - b.id })
	}
}
