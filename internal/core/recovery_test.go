package core

import (
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
)

// TestEDFRequeuesKilledJob crashes the only node mid-run: EDF must requeue
// the job with its remaining runtime and finish it after the repair, and
// the recorder's conservation law must hold throughout.
func TestEDFRequeuesKilledJob(t *testing.T) {
	e, p, rec := newEDFHarness(t, 1)
	p.Submit(e, tsJob(1, 0, 100, 10_000, 1), 100)
	e.At(40, sim.PriorityFault, func(e *sim.Engine) {
		p.Cluster.SetNodeDown(e, 0, true)
	})
	e.At(200, sim.PriorityFault, func(e *sim.Engine) {
		p.Cluster.SetNodeDown(e, 0, false)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if err := rec.ConservationError(); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if s.Met != 1 || s.Killed != 1 {
		t.Fatalf("summary = %+v, want 1 met, 1 killed", s)
	}
	if rec.Kills() != 1 {
		t.Fatalf("Kills = %d", rec.Kills())
	}
	// 40s done before the crash, 60s remain, restarted at the repair:
	// finish = 200 + 60 = 260.
	res := rec.Results()
	if len(res) != 1 || res[0].Finish != 260 {
		t.Fatalf("results = %+v, want finish 260", res)
	}
}

// TestEDFKilledJobWaitsForRepair covers the OnNodeUp hook: with no other
// completion event to re-trigger dispatch, only the repair can restart the
// requeued job.
func TestEDFKilledJobWaitsForRepair(t *testing.T) {
	e, p, rec := newEDFHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 100, 10_000, 2), 100)
	e.At(10, sim.PriorityFault, func(e *sim.Engine) {
		p.Cluster.SetNodeDown(e, 0, true)
	})
	e.At(500, sim.PriorityFault, func(e *sim.Engine) {
		p.Cluster.SetNodeDown(e, 0, false)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if err := rec.ConservationError(); err != nil {
		t.Fatal(err)
	}
	res := rec.Results()
	// The 2-proc job cannot run on the surviving single node; it restarts
	// at the repair with 90s left.
	if len(res) != 1 || res[0].Finish != 590 {
		t.Fatalf("results = %+v, want finish 590", res)
	}
}

func libraCrashHarness(t *testing.T, policy func(*cluster.TimeShared, *metrics.Recorder) Policy) (*sim.Engine, *cluster.TimeShared, *metrics.Recorder, Policy) {
	t.Helper()
	c, err := cluster.NewTimeShared(4, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	return sim.NewEngine(), c, rec, policy(c, rec)
}

// TestLibraResubmitsKilledJob crashes a node under Libra: the killed job
// must re-run admission with its remaining runtime and original deadline,
// land on a surviving node, and complete.
func TestLibraResubmitsKilledJob(t *testing.T) {
	for _, mk := range []struct {
		name string
		new  func(c *cluster.TimeShared, rec *metrics.Recorder) Policy
	}{
		{"Libra", func(c *cluster.TimeShared, rec *metrics.Recorder) Policy { return NewLibra(c, rec) }},
		{"LibraRisk", func(c *cluster.TimeShared, rec *metrics.Recorder) Policy { return NewLibraRisk(c, rec) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			e, c, rec, p := libraCrashHarness(t, mk.new)
			p.Submit(e, tsJob(1, 0, 100, 1000, 1), 100)
			e.At(40, sim.PriorityFault, func(e *sim.Engine) {
				c.SetNodeDown(e, 0, true)
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			rec.Flush()
			if err := rec.ConservationError(); err != nil {
				t.Fatal(err)
			}
			s := rec.Summarize()
			if s.Met != 1 || s.Killed != 1 || s.Rejected != 0 {
				t.Fatalf("summary = %+v, want the killed job re-admitted and met", s)
			}
			// Node 0 is down at resubmission time, so admission must have
			// picked a survivor; finish = 40 + 60 remaining = 100 (alone on
			// the new node, work-conserving full speed).
			res := rec.Results()
			if len(res) != 1 || res[0].Finish != 100 {
				t.Fatalf("results = %+v, want finish 100", res)
			}
		})
	}
}

// TestLibraRejectsResubmissionWhenClusterDown kills every node: the
// resubmitted job has nowhere to go and must be recorded as rejected —
// conservation still balances (submitted = rejected).
func TestLibraRejectsResubmissionWhenClusterDown(t *testing.T) {
	e, c, rec, p := libraCrashHarness(t, func(c *cluster.TimeShared, rec *metrics.Recorder) Policy {
		return NewLibra(c, rec)
	})
	p.Submit(e, tsJob(1, 0, 100, 1000, 1), 100)
	e.At(40, sim.PriorityFault, func(e *sim.Engine) {
		for i := 0; i < c.Len(); i++ {
			c.SetNodeDown(e, i, true)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if err := rec.ConservationError(); err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	// The loop takes nodes down one at a time, so the resubmitted job
	// chases the shrinking cluster: killed once per node, then — with no
	// up node left — rejected.
	if s.Rejected != 1 || s.Killed != 4 {
		t.Fatalf("summary = %+v, want 4 kills then 1 rejection", s)
	}
}

// TestInvariantCheckerCatchesInjectedViolation is the negative test for
// the checker: deliberately breaking job conservation (a completion for a
// job that was never submitted) must surface as a checker error on the
// next processed event.
func TestInvariantCheckerCatchesInjectedViolation(t *testing.T) {
	c, err := cluster.NewTimeShared(2, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := NewLibra(c, rec)
	e := sim.NewEngine()
	chk := InstallInvariantChecker(e, rec, c, nil)
	p.Submit(e, tsJob(1, 0, 100, 1000, 1), 100)
	e.At(10, sim.PriorityDefault, func(e *sim.Engine) {
		// Phantom completion: job 99 never went through Submit.
		rec.Complete(tsJob(99, 0, 1, 10, 1), 10, 1)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if chk.Err() == nil {
		t.Fatal("checker missed the injected conservation violation")
	}
	vs := chk.Violations()
	if len(vs) == 0 {
		t.Fatal("no violations recorded")
	}
}

// TestInvariantCheckerCleanOnHealthyRun is the positive control: the same
// checker over an honest multi-job run reports nothing.
func TestInvariantCheckerCleanOnHealthyRun(t *testing.T) {
	c, err := cluster.NewTimeShared(2, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := NewLibraRisk(c, rec)
	e := sim.NewEngine()
	chk := InstallInvariantChecker(e, rec, c, nil)
	for i := 1; i <= 5; i++ {
		p.Submit(e, tsJob(i, float64(i), 50, 2000, 1), 50)
	}
	e.At(100, sim.PriorityFault, func(e *sim.Engine) { c.SetNodeDown(e, 0, true) })
	e.At(200, sim.PriorityFault, func(e *sim.Engine) { c.SetNodeDown(e, 0, false) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		t.Fatalf("healthy run flagged: %v", err)
	}
	rec.Flush()
	if err := rec.ConservationError(); err != nil {
		t.Fatal(err)
	}
}
