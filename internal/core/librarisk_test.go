package core

import (
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
)

func newRiskHarness(t *testing.T, nodes int) (*sim.Engine, *LibraRisk, *metrics.Recorder) {
	t.Helper()
	c, err := cluster.NewTimeShared(nodes, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	return sim.NewEngine(), NewLibraRisk(c, rec), rec
}

func TestLibraRiskAcceptsFeasibleJob(t *testing.T) {
	e, p, rec := newRiskHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 100)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Met != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestLibraRiskRejectsWhenAcceptanceDelaysExisting(t *testing.T) {
	e, p, rec := newRiskHarness(t, 1)
	// Existing job: share 0.8, zero predicted delay.
	p.Submit(e, tsJob(1, 0, 80, 100, 1), 80)
	// Candidate share 0.5 → someone would be delayed → σ > 0 → reject.
	p.Submit(e, tsJob(2, 0, 50, 100, 1), 50)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 || s.Met != 1 {
		t.Fatalf("summary = %+v, want 1 met + 1 rejected", s)
	}
}

// TestLibraRiskSeesThroughUnderestimate is the paper's headline mechanism:
// the same scenario that fools Libra (TestLibraFooledByUnderestimate) must
// be caught by the risk test, protecting the second job.
func TestLibraRiskSeesThroughUnderestimate(t *testing.T) {
	e, p, rec := newRiskHarness(t, 1)
	// Real 900 s, believed 10 s, deadline 600 s: overruns from t=10 on and
	// is still running when its deadline passes at t=600.
	p.Submit(e, tsJob(1, 0, 900, 600, 1), 10)
	// Submit the competitor at t=650: job 1 is past its deadline yet
	// believed done, so Libra's share test sees an empty node, but the
	// predictor reports a positive delay for job 1, σ > 0, and the new job
	// must be rejected.
	e.At(650, sim.PriorityArrival, func(e *sim.Engine) {
		p.Submit(e, tsJob(2, 650, 300, 320, 1), 300)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 {
		t.Fatalf("summary = %+v: LibraRisk should reject onto a node with a delayed job", s)
	}
}

func TestLibraRiskForgivesPureOverestimateOnEmptyNode(t *testing.T) {
	// estimate 300 > deadline 200, but the node is empty so the candidate
	// is the only job: its deadline-delay is uniform → σ = 0 → accepted.
	// Reality: runtime 100 < deadline 200 → met. Libra would have rejected
	// (share 1.5): this is LibraRisk's tolerance of overestimation.
	e, p, rec := newRiskHarness(t, 1)
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 300)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Met != 1 || s.Rejected != 0 {
		t.Fatalf("summary = %+v, want the overestimated job accepted and met", s)
	}
}

func TestLibraVsRiskOnSameOverestimate(t *testing.T) {
	// The same job Libra rejects outright.
	e, p, rec := newLibraHarness(t, 1)
	p.Submit(e, tsJob(1, 0, 100, 200, 1), 300)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("Libra summary = %+v, want rejection of share 1.5", s)
	}
}

func TestLibraRiskRejectsOversizedJob(t *testing.T) {
	e, p, rec := newRiskHarness(t, 2)
	p.Submit(e, tsJob(1, 0, 10, 100, 3), 10)
	rec.Flush()
	if s := rec.Summarize(); s.Rejected != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestLibraRiskParallelNeedsEnoughZeroRiskNodes(t *testing.T) {
	e, p, rec := newRiskHarness(t, 2)
	// Node 0 and 1 each get a job with share 0.9.
	p.Submit(e, tsJob(1, 0, 90, 100, 2), 90)
	// 2-proc candidate with share 0.5 would delay jobs on both nodes.
	p.Submit(e, tsJob(2, 0, 50, 100, 2), 50)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rec.Flush()
	s := rec.Summarize()
	if s.Rejected != 1 {
		t.Fatalf("summary = %+v, want candidate rejected", s)
	}
}

func TestLibraRiskNodeRiskValues(t *testing.T) {
	e, p, _ := newRiskHarness(t, 1)
	n := p.Cluster.Node(0)
	// Empty node, feasible candidate: µ = 1, σ = 0.
	mu, sigma := p.NodeRisk(e.Now(), n, &cluster.Candidate{JobID: 9, RefWork: 50, AbsDeadline: 100})
	if mu != 1 || !ZeroRisk(sigma) {
		t.Fatalf("empty node: µ=%v σ=%v", mu, sigma)
	}
	// Load the node to share 0.9, then test a candidate that would delay.
	p.Submit(e, tsJob(1, 0, 90, 100, 1), 90)
	mu, sigma = p.NodeRisk(e.Now(), n, &cluster.Candidate{JobID: 10, RefWork: 50, AbsDeadline: 100})
	if ZeroRisk(sigma) {
		t.Fatalf("overloaded node: σ=%v, want positive", sigma)
	}
	if mu <= 1 {
		t.Fatalf("overloaded node: µ=%v, want > 1", mu)
	}
}

func TestLibraRiskSigmaThresholdRelaxation(t *testing.T) {
	eStrict, pStrict, recStrict := newRiskHarness(t, 1)
	eLoose, pLoose, recLoose := newRiskHarness(t, 1)
	pLoose.SigmaThreshold = 100 // effectively accept-anything-with-capacity

	for _, h := range []struct {
		e   *sim.Engine
		p   *LibraRisk
		rec *metrics.Recorder
	}{{eStrict, pStrict, recStrict}, {eLoose, pLoose, recLoose}} {
		h.p.Submit(h.e, tsJob(1, 0, 80, 100, 1), 80)
		h.p.Submit(h.e, tsJob(2, 0, 50, 100, 1), 50)
		if err := h.e.Run(); err != nil {
			t.Fatal(err)
		}
		h.rec.Flush()
	}
	if s := recStrict.Summarize(); s.Rejected != 1 {
		t.Fatalf("strict: %+v", s)
	}
	if s := recLoose.Summarize(); s.Rejected != 0 {
		t.Fatalf("loose threshold should accept: %+v", s)
	}
}

func TestLibraRiskFirstFitDefaultOrdering(t *testing.T) {
	e, p, _ := newRiskHarness(t, 3)
	p.Submit(e, tsJob(1, 0, 10, 100, 1), 10)
	// All nodes zero-risk; FirstFit → node 0.
	if p.Cluster.Node(0).NumSlices() != 1 {
		t.Fatalf("first-fit should pick node 0; slices = %d,%d,%d",
			p.Cluster.Node(0).NumSlices(), p.Cluster.Node(1).NumSlices(), p.Cluster.Node(2).NumSlices())
	}
}
