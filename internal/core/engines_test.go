package core

import (
	"sync"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func midWorkload(t *testing.T) []workload.Job {
	t.Helper()
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 400
	cfg.MaxProcs = 16
	cfg.MeanInterarrival = 1200
	cfg.MeanRuntime = 4000
	cfg.MaxRuntime = 20000
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestHeapAndCalendarEnginesProduceIdenticalResults runs a full
// LibraRisk simulation on both future-event-set implementations and
// demands byte-identical outcomes — the end-to-end version of the
// calendar queue's ordering property.
func TestHeapAndCalendarEnginesProduceIdenticalResults(t *testing.T) {
	jobs := midWorkload(t)
	runWith := func(e *sim.Engine) metrics.Summary {
		c, err := cluster.NewTimeShared(16, 168, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder()
		p := NewLibraRisk(c, rec)
		if err := RunSimulation(e, p, rec, jobs, 100); err != nil {
			t.Fatal(err)
		}
		return rec.Summarize()
	}
	heap := runWith(sim.NewEngine())
	cal := runWith(sim.NewEngineCalendar())
	if heap != cal {
		t.Fatalf("engines disagree:\nheap: %+v\ncal:  %+v", heap, cal)
	}
}

// TestConcurrentSimulationsAreIsolated runs many identical simulations in
// parallel goroutines; any shared mutable state between Engine instances
// would make results diverge or trip the race detector.
func TestConcurrentSimulationsAreIsolated(t *testing.T) {
	jobs := midWorkload(t)
	const workers = 8
	summaries := make([]metrics.Summary, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := cluster.NewTimeShared(16, 168, cluster.DefaultConfig())
			if err != nil {
				t.Error(err)
				return
			}
			rec := metrics.NewRecorder()
			p := NewLibraRisk(c, rec)
			e := sim.NewEngine()
			if err := RunSimulation(e, p, rec, jobs, 100); err != nil {
				t.Error(err)
				return
			}
			summaries[w] = rec.Summarize()
		}()
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if summaries[w] != summaries[0] {
			t.Fatalf("worker %d diverged:\n%+v\n%+v", w, summaries[w], summaries[0])
		}
	}
}
