package core

import (
	"strings"
	"testing"

	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
	"clustersched/internal/workload"
)

func TestMonitorSamplesIdleCluster(t *testing.T) {
	c, err := cluster.NewTimeShared(2, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(c, 10)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	m.Start(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Idle cluster: the monitor takes one sample and stops (nothing else
	// pending), rather than ticking forever.
	if got := len(m.Samples()); got != 1 {
		t.Fatalf("samples = %d, want 1", got)
	}
	s := m.Samples()[0]
	if s.Utilization != 0 || s.RunningJobs != 0 || s.ZeroRiskNodes != 2 {
		t.Fatalf("idle sample = %+v", s)
	}
}

func TestMonitorTracksLoadAndRisk(t *testing.T) {
	c, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := NewLibraRisk(c, rec)
	m, err := NewMonitor(c, 25)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	m.Start(e)
	// An underestimated job that overruns past its deadline: believed 10,
	// real 300, deadline 100. From t≈100 to 300 the node carries a
	// delayed job → σ > 0 in samples from that window.
	p.Submit(e, tsJob(1, 0, 300, 100, 1), 10)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	samples := m.Samples()
	if len(samples) < 5 {
		t.Fatalf("samples = %d", len(samples))
	}
	var sawBusy, sawRisk bool
	for _, s := range samples {
		if s.RunningJobs == 1 && s.Utilization > 0.9 {
			sawBusy = true
		}
		// A lone delayed job has σ = 0 (no spread) but µ > 1 and a
		// positive delayed-job count.
		if s.MeanMu > 1 && s.DelayedJobs > 0 {
			sawRisk = true
		}
	}
	if !sawBusy {
		t.Error("monitor never observed the busy node")
	}
	if !sawRisk {
		t.Error("monitor never observed the poisoned node's delay (µ > 1)")
	}
}

func TestMonitorCSV(t *testing.T) {
	c, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewEngine()
	m.Start(e)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "time,utilization,running,busy_nodes,mean_sigma,mean_mu,delayed_jobs,zero_risk_nodes,down_nodes\n") {
		t.Fatalf("CSV header wrong:\n%s", out)
	}
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("CSV rows = %d, want header + 1 sample", strings.Count(out, "\n")-1)
	}
}

func TestMonitorValidatesInterval(t *testing.T) {
	c, _ := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
	if _, err := NewMonitor(c, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestMonitorLimit(t *testing.T) {
	c, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := NewLibra(c, rec)
	m, err := NewMonitor(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	m.Limit = 3
	e := sim.NewEngine()
	m.Start(e)
	p.Submit(e, tsJob(1, 0, 1000, 5000, 1), 1000)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(m.Samples()); got != 3 {
		t.Fatalf("samples = %d, want limit 3", got)
	}
}

func TestLibraRiskMeanRuleStricterThanSigma(t *testing.T) {
	// The lone-overestimated-job case: σ = 0 admits it, µ > 1 rejects it.
	run := func(meanRule bool) metrics.Summary {
		c, err := cluster.NewTimeShared(1, 168, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder()
		p := NewLibraRisk(c, rec)
		p.MeanRule = meanRule
		e := sim.NewEngine()
		// estimate 300 > deadline 200, real runtime 100.
		p.Submit(e, tsJob(1, 0, 100, 200, 1), 300)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		rec.Flush()
		return rec.Summarize()
	}
	sigma := run(false)
	mu := run(true)
	if sigma.Met != 1 || sigma.Rejected != 0 {
		t.Fatalf("sigma rule: %+v, want forgiving acceptance", sigma)
	}
	if mu.Rejected != 1 {
		t.Fatalf("mean rule: %+v, want strict rejection", mu)
	}
}

func TestLibraRiskMeanRuleOnWorkload(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig()
	cfg.Jobs = 300
	cfg.MaxProcs = 8
	cfg.MeanInterarrival = 500
	cfg.MeanRuntime = 1500
	cfg.MaxRuntime = 10000
	jobs, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err = workload.AssignDeadlines(jobs, workload.DefaultDeadlineConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(meanRule bool) metrics.Summary {
		c, err := cluster.NewTimeShared(8, 168, cluster.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rec := metrics.NewRecorder()
		p := NewLibraRisk(c, rec)
		p.MeanRule = meanRule
		e := sim.NewEngine()
		if err := RunSimulation(e, p, rec, jobs, 100); err != nil {
			t.Fatal(err)
		}
		return rec.Summarize()
	}
	sigma := run(false)
	mu := run(true)
	// The µ rule is strictly more conservative: it can only reject more.
	if mu.Rejected < sigma.Rejected {
		t.Fatalf("µ rule rejected %d < σ rule %d", mu.Rejected, sigma.Rejected)
	}
}

// TestMonitorPooledSampleByteIdentical compares the pool-driven sample
// path against the serial walk on a mid-run cluster carrying the full mix
// of states — idle, busy, delayed and down nodes — at every pool width.
// Samples must match exactly: the fold replays the serial arithmetic in
// node-index order, so even the floating-point rounding is identical.
func TestMonitorPooledSampleByteIdentical(t *testing.T) {
	c, err := cluster.NewTimeShared(16, 168, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	p := NewLibraRisk(c, rec)
	e := sim.NewEngine()
	// A spread of under- and over-estimated jobs: some overrun their
	// deadlines (delayed, µ > 1), some finish early, some nodes stay idle.
	for i := 0; i < 40; i++ {
		real := float64(200 + (i*137)%900)
		est := real * (0.4 + float64(i%4)*0.5)
		deadline := real * 1.2
		p.Submit(e, tsJob(i+1, 0, real, deadline, 1+i%2), est)
	}
	e.SetHorizon(500)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	c.SetNodeDown(e, 3, true)
	now := e.Now() + 10
	for _, k := range []int{2, 3, 4, 8, 16, 32} {
		pool := sim.NewShardPool(k)
		pooled := &Monitor{Cluster: c, Interval: 1, Pool: pool}
		serial := &Monitor{Cluster: c, Interval: 1}
		got := pooled.sample(now)
		want := serial.sample(now)
		pool.Close()
		if got != want {
			t.Errorf("workers=%d: pooled sample diverges\npooled %+v\nserial %+v", k, got, want)
		}
	}
}
