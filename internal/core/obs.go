package core

import (
	"clustersched/internal/obs"
	"clustersched/internal/workload"
)

// obsHooks is the per-run observability attachment every admission policy
// embeds: an event tracer, a pre-resolved metrics bundle, and an audit
// log. All fields default to nil, so a policy with observability off pays
// one pointer comparison per would-be emission and nothing else. The
// experiment layer attaches fresh hooks per run via SetObs and detaches
// them (all nil) before the context is reused.
type obsHooks struct {
	Trace obs.Tracer
	Sim   *obs.SimMetrics
	Audit *obs.AuditLog
}

// SetObs attaches (or with all-nil arguments detaches) the observability
// hooks.
func (o *obsHooks) SetObs(t obs.Tracer, m *obs.SimMetrics, a *obs.AuditLog) {
	o.Trace, o.Sim, o.Audit = t, m, a
}

// arriveObs reports a fresh submission (not a crash resubmission).
func (o *obsHooks) arriveObs(now float64, job workload.Job) {
	if o.Trace != nil {
		o.Trace.Emit(obs.Event{Time: now, Kind: obs.KindArrive, Job: job.ID, Node: -1})
	}
	if o.Sim != nil {
		o.Sim.Submitted.Inc()
	}
}

// beginObs opens the audit record for one admission decision. Every path
// out of the decision must end in rejectObs or an accept emission.
func (o *obsHooks) beginObs(now float64, job workload.Job, estimate float64, resubmit bool) {
	if o.Audit != nil {
		o.Audit.Begin(now, job.ID, job.NumProc, estimate, job.AbsDeadline(), resubmit)
	}
}

// rejectObs reports a rejection and closes the audit record. It does NOT
// touch the metrics Recorder — callers pair it with Recorder.Reject so
// the audit decision count always equals the recorded rejection count.
func (o *obsHooks) rejectObs(now float64, job workload.Job, reason string) {
	if o.Trace != nil {
		o.Trace.Emit(obs.Event{Time: now, Kind: obs.KindReject, Job: job.ID, Node: -1, Detail: reason})
	}
	if o.Sim != nil {
		o.Sim.Rejected.Inc()
	}
	if o.Audit != nil {
		o.Audit.Reject(reason)
	}
}

// acceptObs reports an acceptance and closes the audit record. value is
// the policy's acceptance measure (max σ over the chosen nodes for
// LibraRisk, max admitted share for Libra, queue wait in events for EDF).
func (o *obsHooks) acceptObs(now float64, job workload.Job, chosen []int, value float64) {
	if o.Trace != nil {
		node := -1
		if len(chosen) > 0 {
			node = chosen[0]
		}
		o.Trace.Emit(obs.Event{Time: now, Kind: obs.KindAdmit, Job: job.ID, Node: node, Value: value})
	}
	if o.Sim != nil {
		o.Sim.Admitted.Inc()
	}
	if o.Audit != nil {
		o.Audit.Accept(chosen)
	}
}

// anyObs reports whether any hook is attached (used to gate audit-only
// slow paths that compute real per-node numbers).
func (o *obsHooks) auditing() bool { return o.Audit != nil }
