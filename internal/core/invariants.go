package core

import (
	"clustersched/internal/cluster"
	"clustersched/internal/metrics"
	"clustersched/internal/sim"
)

// RegisterInvariants arms a checker with the model-level invariants shared
// by every policy run: job conservation in the recorder and the cluster's
// structural invariants (no allocation on a down node, non-negative
// remaining work, consistent occupancy accounting). Exactly one of ts/ss
// may be nil. The checker's kernel clock-monotonicity invariant is always
// active; this adds the model layer on top.
func RegisterInvariants(c *sim.InvariantChecker, rec *metrics.Recorder, ts *cluster.TimeShared, ss *cluster.SpaceShared) {
	if rec != nil {
		c.Register("job-conservation", rec.ConservationError)
	}
	switch {
	case ts != nil:
		c.Register("cluster-state", ts.CheckInvariants)
	case ss != nil:
		c.Register("cluster-state", ss.CheckInvariants)
	}
}

// InstallInvariantChecker builds a checker, registers the standard model
// invariants, and installs it on the engine, returning it so the caller
// can collect Err() after the run.
func InstallInvariantChecker(e *sim.Engine, rec *metrics.Recorder, ts *cluster.TimeShared, ss *cluster.SpaceShared) *sim.InvariantChecker {
	c := sim.NewInvariantChecker()
	RegisterInvariants(c, rec, ts, ss)
	e.SetInvariantChecker(c)
	return c
}
