package obs

import (
	"sort"
	"sync"
)

// Options selects which observability layers a sweep collects.
type Options struct {
	Trace   bool
	Metrics bool
	Audit   bool
}

// Any reports whether at least one layer is enabled.
func (o Options) Any() bool { return o.Trace || o.Metrics || o.Audit }

// Run is the per-cell observability bundle: a private tracer, registry
// and audit log for one simulation run on one worker goroutine. Fields
// for disabled layers are nil, and consumers nil-check each one, so the
// bundle composes with the zero-overhead contract.
type Run struct {
	Trace   *Buffer
	Metrics *Registry
	Sim     *SimMetrics
	Audit   *AuditLog

	run string // tag ordering this bundle in the deterministic merge
}

// Sweep coordinates observability across the concurrent workers of a
// parameter sweep. NewRun hands each cell a private unsynchronized
// bundle; Finish banks completed bundles under one lock. Output order is
// deterministic — events and decisions sort by (run tag, sequence), and
// per-run registries are merged in run-tag order at Registry time (float
// summation is not associative, so merging in completion order would leak
// worker scheduling into the last ulp of histogram sums) — so results do
// not depend on worker count or completion order.
type Sweep struct {
	opt Options

	mu        sync.Mutex
	events    []Event
	regs      []taggedRegistry
	decisions []Decision
}

// taggedRegistry is one finished run's registry with the tag that orders
// it during the deterministic merge.
type taggedRegistry struct {
	run string
	reg *Registry
}

// NewSweep returns a collector for the enabled layers. Returns nil when
// no layer is enabled, so callers can carry a nil *Sweep to mean
// "observability off".
func NewSweep(opt Options) *Sweep {
	if !opt.Any() {
		return nil
	}
	return &Sweep{opt: opt}
}

// Options returns the layer selection this sweep was built with.
func (s *Sweep) Options() Options { return s.opt }

// NewRun builds a private bundle for one cell. Safe to call from any
// worker goroutine (no shared state is touched).
func (s *Sweep) NewRun(run, policy string) *Run {
	r := &Run{run: run}
	if s.opt.Trace {
		r.Trace = NewBuffer(run, policy)
	}
	if s.opt.Metrics {
		r.Metrics = NewRegistry()
		r.Sim = NewSimMetrics(r.Metrics)
	}
	if s.opt.Audit {
		r.Audit = NewAuditLog(run, policy)
	}
	return r
}

// Finish banks a completed bundle into the sweep. Call exactly once per
// successful run; discard the bundle without calling Finish when the run
// errored, so partial observations never pollute the output.
func (s *Sweep) Finish(r *Run) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Trace != nil {
		s.events = append(s.events, r.Trace.Events()...)
	}
	if r.Metrics != nil {
		s.regs = append(s.regs, taggedRegistry{run: r.run, reg: r.Metrics})
	}
	if r.Audit != nil {
		s.decisions = append(s.decisions, r.Audit.Decisions()...)
	}
	return nil
}

// Events returns all merged trace events sorted by (run tag, sequence).
func (s *Sweep) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Event(nil), s.events...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Decisions returns all merged audit decisions sorted by (run tag,
// sequence).
func (s *Sweep) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Decision(nil), s.decisions...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Registry merges every finished run's registry in run-tag order and
// returns the result, or nil when metrics were not enabled. The stable
// merge order makes the float sums bit-identical across worker counts.
// Merge errors (histogram bound mismatches) are impossible when every
// registry came from NewSimMetrics and are reported as a panic.
func (s *Sweep) Registry() *Registry {
	if !s.opt.Metrics {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	regs := append([]taggedRegistry(nil), s.regs...)
	sort.SliceStable(regs, func(i, j int) bool { return regs[i].run < regs[j].run })
	merged := NewRegistry()
	for _, tr := range regs {
		if err := merged.Merge(tr.reg); err != nil {
			panic("obs: sweep registries diverged: " + err.Error())
		}
	}
	return merged
}
