package span

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestStageNamesRoundTrip(t *testing.T) {
	names := Names()
	if len(names) != NumStages {
		t.Fatalf("Names() returned %d names, want %d", len(names), NumStages)
	}
	seen := map[string]bool{}
	for i, n := range names {
		if seen[n] {
			t.Fatalf("duplicate stage name %q", n)
		}
		seen[n] = true
		st, ok := ParseStage(n)
		if !ok || st != Stage(i) {
			t.Fatalf("ParseStage(%q) = %v,%v, want %d,true", n, st, ok, i)
		}
		if Stage(i).String() != n {
			t.Fatalf("Stage(%d).String() = %q, want %q", i, Stage(i).String(), n)
		}
	}
	if _, ok := ParseStage("bogus"); ok {
		t.Fatal("ParseStage accepted unknown name")
	}
	if got := Stage(200).String(); got != "unknown" {
		t.Fatalf("out-of-range String() = %q", got)
	}
}

func TestWireDropsZeroStages(t *testing.T) {
	sp := &Span{
		Seq:     7,
		Kind:    "admit",
		Tenant:  "t0",
		Outcome: "accepted",
		Start:   time.Unix(100, 0),
		Total:   3 * time.Millisecond,
	}
	sp.Dur[StageQueue] = 1 * time.Millisecond
	sp.Dur[StageDecide] = 2 * time.Millisecond
	j := sp.Wire()
	if len(j.Stages) != 2 {
		t.Fatalf("Stages has %d entries, want 2: %v", len(j.Stages), j.Stages)
	}
	if j.Stages["queue"] != 0.001 || j.Stages["decide"] != 0.002 {
		t.Fatalf("stage values wrong: %v", j.Stages)
	}
	// The wire form must survive a JSON round trip unchanged.
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var back JSON
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seq != 7 || back.Outcome != "accepted" || back.Stages["decide"] != 0.002 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(64) // 4 sub-rings x 16 slots
	if r.Cap() != 64 {
		t.Fatalf("Cap = %d, want 64", r.Cap())
	}
	const n = 1000
	for i := 0; i < n; i++ {
		r.Record(&Span{Seq: i, Start: time.Unix(int64(i), 0)})
	}
	if got := r.Recorded(); got != n {
		t.Fatalf("Recorded = %d, want %d", got, n)
	}
	snap := r.Snapshot()
	if len(snap) != 64 {
		t.Fatalf("Snapshot holds %d spans after wraparound, want 64", len(snap))
	}
	// Round-robin ring selection keeps exactly the newest 64 records.
	for _, sp := range snap {
		if sp.Seq < n-64 {
			t.Fatalf("snapshot retained stale span seq %d (oldest expected %d)", sp.Seq, n-64)
		}
	}
	// Snapshot is ordered oldest-first.
	for i := 1; i < len(snap); i++ {
		if snap[i].Start.Before(snap[i-1].Start) {
			t.Fatalf("snapshot out of order at %d: %v before %v", i, snap[i].Start, snap[i-1].Start)
		}
	}
}

// TestRecorderConcurrent hammers Record from many goroutines while a
// reader snapshots, and is run under -race in CI: the atomic publish
// discipline must hold.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range r.Snapshot() {
				if sp.Kind != "admit" {
					panic("observed partially published span")
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sp := &Span{Seq: w*perWriter + i, Kind: "admit", Start: time.Unix(int64(i), 0)}
				sp.Dur[StageDecide] = time.Microsecond
				r.Record(sp)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers finish first; then stop the reader.
	for r.Recorded() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Snapshot()); got != r.Cap() {
		t.Fatalf("full ring snapshot has %d spans, want %d", got, r.Cap())
	}
}

// TestNilRecorderZeroAlloc pins the disabled-tracing contract: the hot
// path's span guards — a nil Recorder and a nil *Span — must cost zero
// allocations per request.
func TestNilRecorderZeroAlloc(t *testing.T) {
	var r *Recorder
	var sp *Span
	n := testing.AllocsPerRun(1000, func() {
		r.Record(sp)
		if r.Snapshot() != nil {
			t.Fatal("nil recorder returned spans")
		}
		if r.Cap() != 0 || r.Recorded() != 0 {
			t.Fatal("nil recorder reported capacity")
		}
	})
	if n != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", n)
	}
}
