// Package span provides lightweight per-request tracing for the
// admission serving path. A Span records one request's journey through
// the serving pipeline as a fixed set of contiguous stage durations —
// queue wait, WAL append, the covering group-commit fsync, virtual-time
// advance, policy decide, ack — so that the stages of a finished span
// sum to (approximately) its total wall time and latency can be
// attributed without gaps.
//
// Spans are collected by a Recorder: a lock-free ring buffer of
// atomic.Pointer slots split into a small number of sub-rings to spread
// writer contention. A nil *Recorder is valid and records nothing, so
// the serving hot path pays a single nil check — and zero allocations —
// when tracing is disabled.
//
// The writer side relies on a publication discipline rather than
// locking: a Span is fully populated by exactly one goroutine at a time
// (ownership is handed off through the serving pipeline's channels,
// which establish happens-before), and only after the final field is
// written is the pointer Store'd into a slot. Readers only ever Load
// pointers, so every Span a reader observes is immutable.
package span

import (
	"sort"
	"sync/atomic"
	"time"
)

// Stage identifies one segment of a request's path through the serving
// pipeline. Stages are contiguous in time for a request that reaches
// the apply worker: Prep ends when the request is enqueued, Queue when
// it is dequeued, and so on through Ack. Refused requests (shed, quota,
// queue-full) carry only Prep.
type Stage uint8

const (
	// StagePrep covers handler entry to enqueue: JSON decode,
	// validation, shed-ladder check, quota take.
	StagePrep Stage = iota
	// StageQueue is the bounded-queue wait: enqueue to dequeue by the
	// apply worker (or durable decide worker).
	StageQueue
	// StageGather is the durable group-commit gather window: dequeue to
	// the start of the batch decide. Zero in non-durable mode.
	StageGather
	// StageAppend is the WAL record marshal + Append call for this op.
	// Zero in non-durable mode.
	StageAppend
	// StageAdvance is the virtual-time advance that ran ahead of this
	// op's decision: completions drained serially or via the sharded
	// barrier phases.
	StageAdvance
	// StageDecide is the policy decision + state mutation inside the
	// apply critical section, excluding the advance.
	StageDecide
	// StageCommit is the durability wait: decision made to covered by a
	// group-commit fsync (including deferred-audit write). Zero in
	// non-durable mode.
	StageCommit
	// StageAck is the response path: answer handed back to the HTTP
	// handler to response written.
	StageAck

	// NumStages is the number of stages; Span.Dur is indexed by Stage.
	NumStages int = iota
)

var stageNames = [NumStages]string{
	"prep", "queue", "gather", "append", "advance", "decide", "commit", "ack",
}

// String returns the short lower-case stage name used in metrics and
// wire JSON ("prep", "queue", ...).
func (st Stage) String() string {
	if int(st) < NumStages {
		return stageNames[st]
	}
	return "unknown"
}

// Names returns the stage names in pipeline order. The slice is freshly
// allocated; callers may modify it.
func Names() []string {
	out := make([]string, NumStages)
	copy(out, stageNames[:])
	return out
}

// ParseStage maps a stage name back to its Stage, reporting false for
// unknown names.
func ParseStage(s string) (Stage, bool) {
	for i, n := range stageNames {
		if n == s {
			return Stage(i), true
		}
	}
	return 0, false
}

// Span is one request's trace through the serving pipeline. All fields
// are written before the span is handed to Recorder.Record and never
// mutated afterwards.
type Span struct {
	// Seq is the op sequence number assigned by the apply worker; zero
	// for requests refused before reaching it.
	Seq int
	// Kind is the op kind: "admit" or "node".
	Kind string
	// Tenant is the requesting tenant ("" if the request carried none).
	Tenant string
	// T is the virtual time the op applied at; zero for refusals.
	T float64
	// Outcome classifies how the request left the pipeline: "accepted",
	// "rejected", "applied" (node ops), or a refusal reason —
	// "shed-class", "shed-all", "quota", "queue-full", "draining",
	// "timeout", "wal-failed".
	Outcome string
	// ShedLevel is the shed-ladder level observed at admission time.
	ShedLevel int
	// WALIndex is the WAL record index this op was appended at; zero
	// when not durable or refused.
	WALIndex uint64
	// ShardPhases counts the sharded-advance barrier phases that ran
	// during this op's StageAdvance; zero when unsharded.
	ShardPhases int
	// Start is the wall-clock handler entry time.
	Start time.Time
	// Total is the wall time from handler entry to response written.
	Total time.Duration
	// Dur holds per-stage durations indexed by Stage. Stages that did
	// not run are zero.
	Dur [NumStages]time.Duration
}

// JSON is the wire form of a Span, used by /debug/spans, span JSONL
// files, and cmd/servetrace.
type JSON struct {
	Seq         int                `json:"seq,omitempty"`
	Kind        string             `json:"kind"`
	Tenant      string             `json:"tenant,omitempty"`
	T           float64            `json:"t,omitempty"`
	Outcome     string             `json:"outcome"`
	ShedLevel   int                `json:"shed_level,omitempty"`
	WALIndex    uint64             `json:"wal_index,omitempty"`
	ShardPhases int                `json:"shard_phases,omitempty"`
	StartNano   int64              `json:"start_unix_nano"`
	TotalSec    float64            `json:"total_s"`
	Stages      map[string]float64 `json:"stages,omitempty"`
}

// Wire converts a Span to its JSON wire form. Only stages with nonzero
// duration appear in Stages.
func (sp *Span) Wire() JSON {
	j := JSON{
		Seq:         sp.Seq,
		Kind:        sp.Kind,
		Tenant:      sp.Tenant,
		T:           sp.T,
		Outcome:     sp.Outcome,
		ShedLevel:   sp.ShedLevel,
		WALIndex:    sp.WALIndex,
		ShardPhases: sp.ShardPhases,
		StartNano:   sp.Start.UnixNano(),
		TotalSec:    sp.Total.Seconds(),
	}
	for i, d := range sp.Dur {
		if d > 0 {
			if j.Stages == nil {
				j.Stages = make(map[string]float64, NumStages)
			}
			j.Stages[stageNames[i]] = d.Seconds()
		}
	}
	return j
}

// Payload is the wire shape of the /debug/spans endpoint, shared with
// cmd/servetrace so the analyzer can ingest the endpoint's output
// directly.
type Payload struct {
	// Enabled reports whether span recording is on for this server.
	Enabled bool `json:"enabled"`
	// Count is the number of spans currently held in the ring.
	Count int `json:"count"`
	// Recorded is the total number of spans ever recorded (the ring
	// holds only the most recent Count of them).
	Recorded uint64 `json:"recorded"`
	// Spans is the recent-spans window, oldest first.
	Spans []JSON `json:"spans,omitempty"`
	// SlowestTotal is the slowest-K spans in the ring by total wall
	// time, slowest first.
	SlowestTotal []JSON `json:"slowest_total,omitempty"`
	// SlowestByStage maps each stage name to the slowest-K spans by
	// that stage's duration, slowest first. Stages with no nonzero
	// observations are absent.
	SlowestByStage map[string][]JSON `json:"slowest_by_stage,omitempty"`
}

// subRings is the number of independent rings a Recorder shards its
// slots across. Writers pick a ring round-robin off a shared atomic
// counter, so concurrent recorders mostly hit different cache lines.
const subRings = 4

type ring struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[Span]
}

// Recorder is a lock-free bounded buffer of the most recently recorded
// spans. A nil Recorder is valid: Record is a no-op and Snapshot
// returns nil, so disabled tracing costs one pointer comparison.
type Recorder struct {
	next  atomic.Uint64
	rings [subRings]ring
}

// NewRecorder returns a Recorder holding roughly buffer spans (rounded
// up so each sub-ring is a power of two, minimum 16 slots per ring).
// buffer <= 0 selects the default of 4096.
func NewRecorder(buffer int) *Recorder {
	if buffer <= 0 {
		buffer = 4096
	}
	per := 16
	for per < (buffer+subRings-1)/subRings {
		per <<= 1
	}
	r := &Recorder{}
	for i := range r.rings {
		r.rings[i].slots = make([]atomic.Pointer[Span], per)
	}
	return r
}

// Cap returns the total slot capacity across sub-rings (0 for nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return subRings * len(r.rings[0].slots)
}

// Len returns how many spans the ring currently holds (0 for nil),
// without materializing a snapshot.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.rings {
		p := r.rings[i].pos.Load()
		if p > uint64(len(r.rings[i].slots)) {
			p = uint64(len(r.rings[i].slots))
		}
		n += int(p)
	}
	return n
}

// Recorded returns the total number of spans ever recorded (0 for nil).
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Record publishes a finished span into the ring, overwriting the
// oldest entry of the chosen sub-ring when full. The span must not be
// mutated after this call. Record on a nil Recorder is a no-op.
func (r *Recorder) Record(sp *Span) {
	if r == nil || sp == nil {
		return
	}
	i := r.next.Add(1) - 1
	rg := &r.rings[i%subRings]
	pos := rg.pos.Add(1) - 1
	rg.slots[pos&uint64(len(rg.slots)-1)].Store(sp)
}

// Snapshot returns the spans currently in the ring, oldest first (by
// Start time, ties broken by Seq). Concurrent Record calls may overwrite
// slots while Snapshot runs; each loaded pointer is still a fully
// published, immutable span.
func (r *Recorder) Snapshot() []*Span {
	if r == nil {
		return nil
	}
	out := make([]*Span, 0, r.Cap())
	for i := range r.rings {
		rg := &r.rings[i]
		for j := range rg.slots {
			if sp := rg.slots[j].Load(); sp != nil {
				out = append(out, sp)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].Start.Equal(out[b].Start) {
			return out[a].Start.Before(out[b].Start)
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}
