// Package obs is the observability layer of the simulation core: event
// tracing, streaming metrics, and admission audit logging.
//
// Every layer is opt-in and costs nothing when disabled. Components hold
// their observability hooks in nil-defaulting fields and guard every
// emission with a single nil check, so a run with observability off
// executes exactly the pre-observability instruction stream plus one
// pointer comparison per would-be emission — no allocations, no virtual
// calls (the zero-overhead contract is enforced by
// testing.AllocsPerRun-based tests and the bench-gate CI target).
//
// Three layers, composable independently:
//
//   - Tracer (trace.go): a stream of timestamped simulation events — job
//     lifecycle (arrive, admit/reject, start, finish, kill, deadline
//     miss), node state changes (down/up, degraded/nominal) and injected
//     faults — exportable as Chrome trace_event JSON (chrome://tracing,
//     Perfetto) or line-delimited JSON for programmatic analysis
//     (cmd/tracedump).
//
//   - Registry (metrics.go): counters, gauges and fixed-bucket histograms
//     with no locks on the single-threaded engine path; per-run
//     registries merge across sweep workers and export as Prometheus text
//     format or a JSON snapshot. SimMetrics (simmetrics.go) is the
//     pre-resolved instrument bundle the hot paths use, so emission is a
//     field increment, never a map lookup.
//
//   - AuditLog (audit.go): one record per admission-control decision —
//     the candidate nodes examined, each node's risk σ (LibraRisk) or
//     admission share (Libra), the chosen nodes, and the rejection reason
//     — the per-decision visibility needed to explain *why* one policy
//     beats another, not just by how much.
//
// Sweep (sweep.go) coordinates the three layers across the concurrent
// workers of a parameter sweep: each cell gets a private, unsynchronized
// Run bundle, and completed bundles merge under one lock into
// deterministic, worker-count-independent output.
package obs
