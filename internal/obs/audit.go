package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// JSONFloat is a float64 whose JSON encoding survives non-finite values,
// which encoding/json rejects outright: ±Inf and NaN encode as strings.
// Libra's required-share computation legitimately yields +Inf for a node
// that cannot finish the job before its deadline.
type JSONFloat float64

// MarshalJSON implements json.Marshaler.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both plain numbers
// and the string spellings MarshalJSON produces.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "+Inf":
			*f = JSONFloat(math.Inf(1))
		case "-Inf":
			*f = JSONFloat(math.Inf(-1))
		case "NaN":
			*f = JSONFloat(math.NaN())
		default:
			return fmt.Errorf("obs: invalid non-finite float %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// NodeEval records how one candidate node scored during an admission
// decision. Sigma and Mu are the node's delay distribution parameters
// (LibraRisk); Share is the fluid share the job would need on that node
// (Libra, and LibraRisk in best/worst-fit or exhaustive mode). Suitable
// says whether the node passed the policy's test; Down marks nodes
// skipped because they were crashed.
type NodeEval struct {
	Node     int       `json:"node"`
	Sigma    float64   `json:"sigma"`
	Mu       float64   `json:"mu"`
	Share    JSONFloat `json:"share,omitempty"`
	Suitable bool      `json:"suitable"`
	Down     bool      `json:"down,omitempty"`
}

// Decision is one admission-control decision: the job's requirements,
// every candidate node examined with its score, and the outcome. Seq
// orders decisions within a run; Resubmit marks re-admissions of jobs
// killed by node crashes.
type Decision struct {
	Seq      uint64     `json:"seq"`
	Time     float64    `json:"t"`
	Run      string     `json:"run,omitempty"`
	Policy   string     `json:"policy,omitempty"`
	Job      int        `json:"job"`
	NumProc  int        `json:"numproc"`
	Estimate float64    `json:"estimate"`
	Deadline float64    `json:"deadline"`
	Accepted bool       `json:"accepted"`
	Reason   string     `json:"reason,omitempty"`
	Chosen   []int      `json:"chosen,omitempty"`
	Nodes    []NodeEval `json:"nodes,omitempty"`
	Resubmit bool       `json:"resubmit,omitempty"`
}

// AuditLog accumulates admission decisions for one run. Policies build a
// decision incrementally — Begin, then Node per candidate, then Accept or
// Reject — so the hot path never assembles a record it would throw away.
// Like Buffer, an AuditLog is confined to one run on one goroutine.
type AuditLog struct {
	run       string
	policy    string
	seq       uint64
	cur       Decision
	open      bool
	decisions []Decision
}

// NewAuditLog returns an empty log stamping decisions with the given run
// tag and policy name.
func NewAuditLog(run, policy string) *AuditLog {
	return &AuditLog{run: run, policy: policy}
}

// Begin opens a decision record for one admission attempt.
func (a *AuditLog) Begin(time float64, job, numProc int, estimate, absDeadline float64, resubmit bool) {
	a.seq++
	a.cur = Decision{
		Seq:      a.seq,
		Time:     time,
		Run:      a.run,
		Policy:   a.policy,
		Job:      job,
		NumProc:  numProc,
		Estimate: estimate,
		Deadline: absDeadline,
		Resubmit: resubmit,
	}
	a.open = true
}

// Node appends one candidate evaluation to the open decision.
func (a *AuditLog) Node(ev NodeEval) {
	if !a.open {
		return
	}
	a.cur.Nodes = append(a.cur.Nodes, ev)
}

// Accept closes the open decision as accepted on the given nodes. The
// slice is copied; callers may reuse it.
func (a *AuditLog) Accept(chosen []int) {
	if !a.open {
		return
	}
	a.cur.Accepted = true
	a.cur.Chosen = append([]int(nil), chosen...)
	a.decisions = append(a.decisions, a.cur)
	a.cur = Decision{}
	a.open = false
}

// Reject closes the open decision as rejected for the given reason.
func (a *AuditLog) Reject(reason string) {
	if !a.open {
		return
	}
	a.cur.Accepted = false
	a.cur.Reason = reason
	a.decisions = append(a.decisions, a.cur)
	a.cur = Decision{}
	a.open = false
}

// Decisions returns the recorded decisions in order. The slice aliases
// the log's storage.
func (a *AuditLog) Decisions() []Decision { return a.decisions }

// Len returns the number of recorded decisions.
func (a *AuditLog) Len() int { return len(a.decisions) }

// Drain returns the decisions recorded since the last Drain and empties
// the log without disturbing its sequence numbering, so a long-running
// service can stream decisions to disk incrementally instead of holding
// an unbounded history in memory. The returned slice is owned by the
// caller; the log starts a fresh backing array.
func (a *AuditLog) Drain() []Decision {
	d := a.decisions
	a.decisions = nil
	return d
}

// Reset empties the log and restarts its sequence numbering for a new
// run, keeping the grown storage.
func (a *AuditLog) Reset(run, policy string) {
	a.run, a.policy = run, policy
	a.seq = 0
	a.cur = Decision{}
	a.open = false
	a.decisions = a.decisions[:0]
}

// WriteAuditJSONL writes decisions as line-delimited JSON.
func WriteAuditJSONL(w io.Writer, decisions []Decision) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range decisions {
		if err := enc.Encode(&decisions[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadAuditJSONL parses a line-delimited decision stream written by
// WriteAuditJSONL.
func ReadAuditJSONL(r io.Reader) ([]Decision, error) {
	dec := json.NewDecoder(r)
	var out []Decision
	for {
		var d Decision
		if err := dec.Decode(&d); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: audit line %d: %w", len(out)+1, err)
		}
		out = append(out, d)
	}
}
