package obs

// SimMetrics is the pre-resolved instrument bundle the simulation hot
// paths use. Resolving every instrument once at run setup keeps emission
// to a field increment — no map lookups inside the event loop. Components
// hold a *SimMetrics in a nil-defaulting field and guard each update with
// `if m != nil`, mirroring the Tracer contract.
type SimMetrics struct {
	// Job lifecycle counters.
	Submitted      *Counter
	Admitted       *Counter
	Rejected       *Counter
	Completed      *Counter
	DeadlineMisses *Counter
	Kills          *Counter

	// Node state counters.
	NodeCrashes   *Counter
	NodeRepairs   *Counter
	NodeSlowdowns *Counter

	// Distributions.
	RiskSigma          *Histogram // per-node σ evaluated during LibraRisk admission
	AdmitShare         *Histogram // per-node share admitted by Libra/LibraRisk
	QueueDepth         *Histogram // EDF queue depth sampled at each enqueue
	AdmitLatencyEvents *Histogram // engine events between EDF submit and dispatch
	NodeUtilization    *Histogram // per-node busy fraction at end of run

	// End-of-run gauges (merged across workers by max).
	MaxQueueDepth *Gauge
}

// Standard bucket bounds. Exported so tests and tools can label buckets
// without re-deriving them.
var (
	// RiskSigmaBuckets spans the σ scale: 0 is the LibraRisk admission
	// rule's requirement, and the paper's delay factors put interesting σ
	// mass between 0 and a few tens of seconds.
	RiskSigmaBuckets = []float64{0, 0.5, 1, 2, 4, 8, 16, 32}
	// AdmitShareBuckets covers the (0, 1] share range Libra admits into.
	AdmitShareBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1}
	// QueueDepthBuckets covers EDF backlog depths seen at paper scale.
	QueueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
	// AdmitLatencyBuckets counts engine events between submit and start.
	AdmitLatencyBuckets = []float64{0, 1, 4, 16, 64, 256, 1024, 4096}
	// UtilizationBuckets covers per-node busy fractions.
	UtilizationBuckets = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}
)

// NewSimMetrics registers (or re-resolves) the standard simulation
// instruments on r.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		Submitted:      r.Counter("sim_jobs_submitted_total", "Jobs submitted to admission control."),
		Admitted:       r.Counter("sim_jobs_admitted_total", "Jobs accepted by admission control."),
		Rejected:       r.Counter("sim_jobs_rejected_total", "Jobs rejected by admission control."),
		Completed:      r.Counter("sim_jobs_completed_total", "Jobs whose last slice finished."),
		DeadlineMisses: r.Counter("sim_jobs_deadline_missed_total", "Completed jobs that finished after their deadline."),
		Kills:          r.Counter("sim_jobs_killed_total", "Running jobs torn down by node crashes."),

		NodeCrashes:   r.Counter("sim_node_crashes_total", "Node down transitions."),
		NodeRepairs:   r.Counter("sim_node_repairs_total", "Node up transitions."),
		NodeSlowdowns: r.Counter("sim_node_slowdowns_total", "Node transitions off nominal speed."),

		RiskSigma:          r.Histogram("sim_admission_risk_sigma", "Per-node delay stddev evaluated during LibraRisk admission.", RiskSigmaBuckets),
		AdmitShare:         r.Histogram("sim_admission_share", "Per-node share admitted by Libra/LibraRisk.", AdmitShareBuckets),
		QueueDepth:         r.Histogram("sim_queue_depth", "EDF queue depth sampled at each enqueue.", QueueDepthBuckets),
		AdmitLatencyEvents: r.Histogram("sim_admission_latency_events", "Engine events between EDF submission and dispatch.", AdmitLatencyBuckets),
		NodeUtilization:    r.Histogram("sim_node_utilization", "Per-node busy fraction over the run.", UtilizationBuckets),

		MaxQueueDepth: r.Gauge("sim_queue_depth_max", "Largest EDF queue depth seen."),
	}
}
