package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update golden %s: %v", name, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update to create): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// sampleEvents is a small, fully deterministic trace exercising every
// export branch: a completed span, a killed span, an unfinished span,
// instants with and without job/value/detail, and two run tags.
func sampleEvents() []Event {
	a := NewBuffer("cell000 librarisk", "LibraRisk")
	a.Emit(Event{Time: 0, Kind: KindArrive, Job: 1, Node: -1})
	a.Emit(Event{Time: 0, Kind: KindAdmit, Job: 1, Node: 2, Value: 0.5})
	a.Emit(Event{Time: 0, Kind: KindStart, Job: 1, Node: 2, Value: 120})
	a.Emit(Event{Time: 10, Kind: KindNodeDown, Job: -1, Node: 3})
	a.Emit(Event{Time: 10, Kind: KindFault, Job: -1, Node: 3, Detail: "crash"})
	a.Emit(Event{Time: 90, Kind: KindFinish, Job: 1, Node: 2, Value: 90})
	a.Emit(Event{Time: 95, Kind: KindNodeUp, Job: -1, Node: 3})

	b := NewBuffer("cell001 libra", "Libra")
	b.Emit(Event{Time: 5, Kind: KindArrive, Job: 2, Node: -1})
	b.Emit(Event{Time: 5, Kind: KindReject, Job: 2, Node: -1, Detail: "only 0 of 1 required nodes can hold the share"})
	b.Emit(Event{Time: 6, Kind: KindStart, Job: 3, Node: 0, Value: 60})
	b.Emit(Event{Time: 20, Kind: KindKill, Job: 3, Node: 0, Value: 46})
	b.Emit(Event{Time: 30, Kind: KindStart, Job: 4, Node: 1, Value: 40})

	return append(a.Events(), b.Events()...)
}

func sampleRegistry() *Registry {
	r := NewRegistry()
	m := NewSimMetrics(r)
	m.Submitted.Add(5)
	m.Admitted.Add(3)
	m.Rejected.Add(2)
	m.Completed.Inc()
	m.Kills.Inc()
	m.NodeCrashes.Inc()
	m.NodeRepairs.Inc()
	m.RiskSigma.Observe(0)
	m.RiskSigma.Observe(0.7)
	m.RiskSigma.Observe(100)
	m.AdmitShare.Observe(0.5)
	m.QueueDepth.Observe(3)
	m.NodeUtilization.Observe(0.42)
	m.MaxQueueDepth.Set(3)
	return r
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome_trace.json", buf.Bytes())
	n, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden trace does not validate: %v", err)
	}
	if n == 0 {
		t.Fatal("golden trace is empty")
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.prom", buf.Bytes())
}

func TestMetricsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", buf.Bytes())
	// The JSON snapshot must round-trip through encoding/json.
	var snap []MetricSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not parse: %v", err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip lost events: got %d want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Errorf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestAuditJSONLRoundTrip(t *testing.T) {
	log := NewAuditLog("cell000 librarisk", "LibraRisk")
	log.Begin(12.5, 7, 2, 300, 900, false)
	log.Node(NodeEval{Node: 0, Sigma: 0, Mu: 5, Suitable: true})
	log.Node(NodeEval{Node: 1, Sigma: 2.5, Mu: 8, Suitable: false})
	log.Node(NodeEval{Node: 2, Down: true})
	log.Reject("only 1 of 2 required nodes have zero risk")
	log.Begin(14, 8, 1, 100, 500, true)
	log.Node(NodeEval{Node: 0, Sigma: 0, Mu: 5, Suitable: true})
	log.Accept([]int{0})

	var buf bytes.Buffer
	if err := WriteAuditJSONL(&buf, log.Decisions()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAuditJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d decisions, want 2", len(got))
	}
	if got[0].Accepted || got[0].Reason == "" || len(got[0].Nodes) != 3 {
		t.Errorf("rejection decision malformed: %+v", got[0])
	}
	if !got[1].Accepted || !got[1].Resubmit || len(got[1].Chosen) != 1 {
		t.Errorf("acceptance decision malformed: %+v", got[1])
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Errorf("sequence numbers not contiguous: %d, %d", got[0].Seq, got[1].Seq)
	}
}

func TestBufferResetStableSequence(t *testing.T) {
	b := NewBuffer("run-a", "EDF")
	b.Emit(Event{Time: 1, Kind: KindArrive, Job: 0, Node: -1})
	b.Emit(Event{Time: 2, Kind: KindAdmit, Job: 0, Node: 0})
	first := append([]Event(nil), b.Events()...)

	b.Reset("run-a", "EDF")
	b.Emit(Event{Time: 1, Kind: KindArrive, Job: 0, Node: -1})
	b.Emit(Event{Time: 2, Kind: KindAdmit, Job: 0, Node: 0})
	second := b.Events()

	if len(first) != len(second) {
		t.Fatalf("length mismatch after reset: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("event %d differs after reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// Buckets: ≤1 gets 0.5 and 1; ≤2 gets 1.5; ≤4 gets 3; +Inf gets 100.
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if h.counts[i] != w {
			t.Errorf("bucket %d: got %d want %d", i, h.counts[i], w)
		}
	}
	if h.Count() != 5 || h.Sum() != 106 {
		t.Errorf("count/sum: got %d/%g want 5/106", h.Count(), h.Sum())
	}
}

func TestRegistryMergeCommutative(t *testing.T) {
	build := func(scale float64) *Registry {
		r := NewRegistry()
		m := NewSimMetrics(r)
		m.Submitted.Add(10 * scale)
		m.RiskSigma.Observe(scale)
		m.MaxQueueDepth.Set(scale)
		return r
	}
	ab, ba := NewRegistry(), NewRegistry()
	for _, s := range []float64{1, 2} {
		if err := ab.Merge(build(s)); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []float64{2, 1} {
		if err := ba.Merge(build(s)); err != nil {
			t.Fatal(err)
		}
	}
	var b1, b2 bytes.Buffer
	if err := ab.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := ba.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("merge is order-dependent:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	if got := ab.Gauge("sim_queue_depth_max", "").Value(); got != 2 {
		t.Errorf("gauge merge: got %g want max 2", got)
	}
	if got := ab.Counter("sim_jobs_submitted_total", "").Value(); got != 30 {
		t.Errorf("counter merge: got %g want 30", got)
	}
}

func TestRegistryMergeBoundsMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("h", "", []float64{1, 2})
	b.Histogram("h", "", []float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("expected bounds-mismatch error")
	}
}

func TestSweepDeterministicOrder(t *testing.T) {
	s := NewSweep(Options{Trace: true, Audit: true, Metrics: true})
	// Finish runs out of order; Events/Decisions must still sort by run.
	r2 := s.NewRun("cell002", "Libra")
	r2.Trace.Emit(Event{Time: 9, Kind: KindArrive, Job: 5, Node: -1})
	r2.Audit.Begin(9, 5, 1, 10, 20, false)
	r2.Audit.Accept([]int{0})
	r2.Sim.Submitted.Inc()
	r1 := s.NewRun("cell001", "Libra")
	r1.Trace.Emit(Event{Time: 3, Kind: KindArrive, Job: 4, Node: -1})
	r1.Audit.Begin(3, 4, 1, 10, 20, false)
	r1.Audit.Reject("no")
	r1.Sim.Submitted.Inc()
	if err := s.Finish(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Finish(r1); err != nil {
		t.Fatal(err)
	}
	evs := s.Events()
	if len(evs) != 2 || evs[0].Run != "cell001" || evs[1].Run != "cell002" {
		t.Errorf("events not sorted by run: %+v", evs)
	}
	decs := s.Decisions()
	if len(decs) != 2 || decs[0].Run != "cell001" || decs[1].Run != "cell002" {
		t.Errorf("decisions not sorted by run: %+v", decs)
	}
	if got := s.Registry().Counter("sim_jobs_submitted_total", "").Value(); got != 2 {
		t.Errorf("merged submitted: got %g want 2", got)
	}
}

func TestNewSweepNilWhenDisabled(t *testing.T) {
	if s := NewSweep(Options{}); s != nil {
		t.Fatal("NewSweep with no layers must return nil")
	}
}

func TestKindTextRoundTrip(t *testing.T) {
	for i := Kind(0); i < numKinds; i++ {
		b, err := i.MarshalText()
		if err != nil {
			t.Fatalf("marshal %d: %v", i, err)
		}
		var back Kind
		if err := back.UnmarshalText(b); err != nil {
			t.Fatalf("unmarshal %q: %v", b, err)
		}
		if back != i {
			t.Errorf("round trip %d → %q → %d", i, b, back)
		}
	}
	var k Kind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("expected error for unknown kind name")
	}
	if len(KindNames()) != int(numKinds) {
		t.Errorf("KindNames length %d != %d", len(KindNames()), numKinds)
	}
}

func TestPromFloat(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		0.5:         "0.5",
		1:           "1",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		if got := promFloat(v); got != want {
			t.Errorf("promFloat(%g) = %q, want %q", v, got, want)
		}
	}
	if got := promFloat(math.NaN()); got != "NaN" {
		t.Errorf("promFloat(NaN) = %q", got)
	}
}

func TestValidateChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ValidateChromeTrace(strings.NewReader("not json")); err == nil {
		t.Error("expected parse error")
	}
	bad := `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`
	if _, err := ValidateChromeTrace(strings.NewReader(bad)); err == nil {
		t.Error("expected unknown-phase error")
	}
}

func TestAuditLogDrainKeepsSequence(t *testing.T) {
	a := NewAuditLog("serve", "LibraRisk")
	a.Begin(1, 10, 2, 100, 500, false)
	a.Accept([]int{0, 1})
	a.Begin(2, 11, 1, 50, 300, false)
	a.Reject("no zero-risk node")
	first := a.Drain()
	if len(first) != 2 || a.Len() != 0 {
		t.Fatalf("Drain returned %d decisions, log kept %d; want 2 and 0", len(first), a.Len())
	}
	if first[0].Seq != 1 || first[1].Seq != 2 {
		t.Fatalf("drained seqs = %d,%d; want 1,2", first[0].Seq, first[1].Seq)
	}
	// Decisions after a drain continue the sequence instead of restarting,
	// so a streamed audit file is indistinguishable from an in-memory one.
	a.Begin(3, 12, 1, 60, 400, false)
	a.Accept([]int{2})
	second := a.Drain()
	if len(second) != 1 || second[0].Seq != 3 {
		t.Fatalf("post-drain decision seq = %+v, want one decision with seq 3", second)
	}
	if got := a.Drain(); len(got) != 0 {
		t.Fatalf("empty Drain returned %d decisions", len(got))
	}
}
