package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes events as line-delimited JSON, one Event per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a line-delimited event stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}

// chromeEvent is one record of the Chrome trace_event format (the subset
// chrome://tracing and Perfetto consume).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds, "X" only
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// simSecondsToMicros converts simulated seconds to trace microseconds.
const simSecondsToMicros = 1e6

// WriteChromeTrace renders events in the Chrome trace_event JSON format.
// Each distinct run tag becomes a process (named via "M" metadata);
// within a run, KindStart..KindFinish/KindKill pairs for the same job
// become "X" complete spans on the track (tid) of the job's first node,
// and every other event becomes an "i" instant. Simulated seconds map to
// trace microseconds, so chrome://tracing's millisecond display reads as
// kiloseconds of simulated time.
func WriteChromeTrace(w io.Writer, events []Event) error {
	pids := make(map[string]int)
	var out []chromeEvent
	pidOf := func(run string) int {
		if p, ok := pids[run]; ok {
			return p
		}
		p := len(pids) + 1
		pids[run] = p
		name := run
		if name == "" {
			name = "run"
		}
		out = append(out, chromeEvent{
			Name:  "process_name",
			Phase: "M",
			Pid:   p,
			Args:  map[string]any{"name": name},
		})
		return p
	}

	type spanKey struct {
		run string
		job int
	}
	starts := make(map[spanKey]Event)

	for _, ev := range events {
		pid := pidOf(ev.Run)
		switch ev.Kind {
		case KindStart:
			starts[spanKey{ev.Run, ev.Job}] = ev
		case KindFinish, KindKill:
			k := spanKey{ev.Run, ev.Job}
			if st, ok := starts[k]; ok {
				delete(starts, k)
				args := map[string]any{"job": ev.Job, "end": ev.Kind.String()}
				if ev.Value != 0 {
					args["value"] = ev.Value
				}
				out = append(out, chromeEvent{
					Name:  fmt.Sprintf("job %d", ev.Job),
					Phase: "X",
					Ts:    st.Time * simSecondsToMicros,
					Dur:   (ev.Time - st.Time) * simSecondsToMicros,
					Pid:   pid,
					Tid:   st.Node,
					Args:  args,
				})
				continue
			}
			fallthrough
		default:
			args := map[string]any{}
			if ev.Job >= 0 {
				args["job"] = ev.Job
			}
			if ev.Value != 0 {
				args["value"] = ev.Value
			}
			if ev.Detail != "" {
				args["detail"] = ev.Detail
			}
			tid := ev.Node
			if tid < 0 {
				tid = 0
			}
			out = append(out, chromeEvent{
				Name:  ev.Kind.String(),
				Phase: "i",
				Ts:    ev.Time * simSecondsToMicros,
				Pid:   pid,
				Tid:   tid,
				Scope: "t",
				Args:  args,
			})
		}
	}

	// A start without a matching end (job still running at horizon) still
	// deserves a mark; render it as an instant so nothing is silently lost.
	for _, st := range starts {
		out = append(out, chromeEvent{
			Name:  fmt.Sprintf("job %d (unfinished)", st.Job),
			Phase: "i",
			Ts:    st.Time * simSecondsToMicros,
			Pid:   pids[st.Run],
			Tid:   st.Node,
			Scope: "t",
			Args:  map[string]any{"job": st.Job},
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"}); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace parses a Chrome trace written by WriteChromeTrace
// and returns the number of trace events, rejecting records with unknown
// phases or negative durations. Used by smoke tests and cmd/tracedump.
func ValidateChromeTrace(r io.Reader) (int, error) {
	var t chromeTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return 0, fmt.Errorf("obs: chrome trace: %w", err)
	}
	for i, ev := range t.TraceEvents {
		switch ev.Phase {
		case "X", "i", "M":
		default:
			return 0, fmt.Errorf("obs: chrome trace event %d: unknown phase %q", i, ev.Phase)
		}
		if ev.Dur < 0 {
			return 0, fmt.Errorf("obs: chrome trace event %d: negative duration %g", i, ev.Dur)
		}
	}
	return len(t.TraceEvents), nil
}
