package obs

import "fmt"

// Kind classifies a trace event. The job lifecycle runs arrive →
// admit/reject → start → finish (plus deadline-miss and kill annotations);
// node state changes cover crashes, repairs and speed degradation; Fault
// marks an injected failure-process event distinct from the node
// transition it causes.
type Kind uint8

// The event kinds.
const (
	// KindArrive: a job was submitted to the admission policy.
	KindArrive Kind = iota
	// KindAdmit: admission control accepted the job. Value carries the
	// policy's acceptance measure (max risk σ over the chosen nodes for
	// LibraRisk, max admitted share for Libra, queue wait in events for
	// EDF).
	KindAdmit
	// KindReject: admission control rejected the job; Detail is the
	// rejection reason.
	KindReject
	// KindStart: the cluster began executing the job; Node is the first
	// node of its allocation, Value the admitted estimate.
	KindStart
	// KindFinish: the job's last slice completed; Value is the response
	// time (finish − submit).
	KindFinish
	// KindDeadlineMiss: the job finished after its deadline (emitted in
	// addition to KindFinish); Value is the lateness in seconds.
	KindDeadlineMiss
	// KindKill: a node crash tore the running job down; Value is its
	// remaining real work in reference seconds.
	KindKill
	// KindNodeDown / KindNodeUp: a node crashed / recovered.
	KindNodeDown
	KindNodeUp
	// KindNodeSlow: a node's effective-rate multiplier left nominal;
	// Value is the new factor. KindNodeNominal: it returned to 1.
	KindNodeSlow
	KindNodeNominal
	// KindFault: a fault-injector process fired (crash, straggler episode,
	// correlated outage); Detail names the process. The resulting node
	// transitions are traced separately by the cluster.
	KindFault
	numKinds
)

var kindNames = [numKinds]string{
	"arrive", "admit", "reject", "start", "finish", "deadline-miss",
	"kill", "node-down", "node-up", "node-slow", "node-nominal", "fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalText makes kinds render as their names in JSON output.
func (k Kind) MarshalText() ([]byte, error) {
	if int(k) >= len(kindNames) {
		return nil, fmt.Errorf("obs: unknown kind %d", int(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText parses a kind name, the inverse of MarshalText.
func (k *Kind) UnmarshalText(b []byte) error {
	for i, n := range kindNames {
		if n == string(b) {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown kind %q", b)
}

// KindNames lists every kind name in declaration order, for CLI validation.
func KindNames() []string {
	out := make([]string, len(kindNames))
	copy(out, kindNames[:])
	return out
}

// Event is one trace record. Times are simulated seconds; Seq orders
// events within one run (ties in Time are broken by emission order, which
// the single-goroutine engine makes deterministic). Job and Node are -1
// when not applicable.
type Event struct {
	Seq    uint64  `json:"seq"`
	Time   float64 `json:"t"`
	Kind   Kind    `json:"kind"`
	Job    int     `json:"job"`
	Node   int     `json:"node"`
	Value  float64 `json:"value,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Run    string  `json:"run,omitempty"`
	Policy string  `json:"policy,omitempty"`
}

// Tracer receives trace events. Components hold a Tracer in a
// nil-defaulting field and guard every emission with `if t != nil`, so a
// disabled tracer costs one pointer comparison and nothing else — no
// event construction, no interface call, no allocation.
type Tracer interface {
	Emit(Event)
}

// Buffer is the standard Tracer: it stamps each event with the run tag,
// policy name and a per-run sequence number, and appends it to an
// in-memory slice for export (WriteJSONL, WriteChromeTrace). A Buffer is
// confined to one simulation run on one goroutine; nothing is
// synchronized.
type Buffer struct {
	run    string
	policy string
	seq    uint64
	events []Event
}

// NewBuffer returns an empty buffer stamping events with the given run
// tag and policy name.
func NewBuffer(run, policy string) *Buffer {
	return &Buffer{run: run, policy: policy}
}

// Emit implements Tracer.
func (b *Buffer) Emit(ev Event) {
	b.seq++
	ev.Seq = b.seq
	ev.Run = b.run
	ev.Policy = b.policy
	b.events = append(b.events, ev)
}

// Events returns the buffered events in emission order. The slice aliases
// the buffer's storage; it is valid until the next Emit or Reset.
func (b *Buffer) Events() []Event { return b.events }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// Reset empties the buffer and restarts its sequence numbering for a new
// run, keeping the grown storage. Event IDs are therefore stable across
// reused run contexts: the same run produces the same (Seq, Time, Kind)
// stream whether it executes on a fresh buffer or a reset one.
func (b *Buffer) Reset(run, policy string) {
	b.run, b.policy = run, policy
	b.seq = 0
	b.events = b.events[:0]
}
