package obs

import (
	"strings"
	"testing"
)

func TestCounterVecPrometheusExport(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("serve_tenant_admits_total", "Admits by tenant.", "tenant")
	v.With("zeta").Add(3)
	v.With("alpha").Inc()
	v.With("other").Add(10)
	if v.Len() != 3 {
		t.Fatalf("Len = %d, want 3", v.Len())
	}
	// Idempotent re-registration returns the same family.
	if r.CounterVec("serve_tenant_admits_total", "Admits by tenant.", "tenant") != v {
		t.Fatal("re-registration returned a different vec")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP serve_tenant_admits_total Admits by tenant.
# TYPE serve_tenant_admits_total counter
serve_tenant_admits_total{tenant="alpha"} 1
serve_tenant_admits_total{tenant="other"} 10
serve_tenant_admits_total{tenant="zeta"} 3
`
	if b.String() != want {
		t.Fatalf("prometheus export:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestCounterVecLabelMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("x_total", "", "tenant")
	defer func() {
		if recover() == nil {
			t.Fatal("label mismatch did not panic")
		}
	}()
	r.CounterVec("x_total", "", "user")
}

func TestCounterVecMergeAndSnapshot(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.CounterVec("hits_total", "h", "tenant").With("t0").Add(2)
	b.CounterVec("hits_total", "h", "tenant").With("t0").Add(3)
	b.CounterVec("hits_total", "h", "tenant").With("t1").Add(1)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want 2: %+v", len(snap), snap)
	}
	if snap[0].Name != `hits_total{tenant="t0"}` || snap[0].Value != 5 {
		t.Fatalf("merged child 0 wrong: %+v", snap[0])
	}
	if snap[1].Name != `hits_total{tenant="t1"}` || snap[1].Value != 1 {
		t.Fatalf("merged child 1 wrong: %+v", snap[1])
	}
}

func TestHistogramExemplarExport(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.01, 0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	// No exemplar: output must stay byte-identical to the classic form.
	var plain strings.Builder
	if err := r.WritePrometheus(&plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "#  {") || strings.Contains(plain.String(), "} 0.5 #") {
		t.Fatalf("exemplar leaked into plain output:\n%s", plain.String())
	}

	h.SetExemplar("wal_index", "42", 0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	wantLine := `lat_seconds_bucket{le="1"} 2 # {wal_index="42"} 0.5`
	if !strings.Contains(b.String(), wantLine) {
		t.Fatalf("exemplar missing:\n%s\nwant line: %s", b.String(), wantLine)
	}
	// Exactly one exemplar annotation.
	if strings.Count(b.String(), " # {") != 1 {
		t.Fatalf("expected exactly one exemplar:\n%s", b.String())
	}

	// An exemplar beyond the last bound rides the +Inf bucket.
	h.SetExemplar("wal_index", "99", 5)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `lat_seconds_bucket{le="+Inf"} 2 # {wal_index="99"} 5`) {
		t.Fatalf("+Inf exemplar missing:\n%s", b.String())
	}
}

func TestHistogramAbsorbAndReset(t *testing.T) {
	bounds := []float64{1, 10}
	a, b := NewHistogram(bounds), NewHistogram(bounds)
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	b.SetExemplar("wal_index", "7", 50)
	if err := a.Absorb(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 3 || a.Sum() != 55.5 {
		t.Fatalf("absorb: count %d sum %g, want 3 55.5", a.Count(), a.Sum())
	}
	if _, val, v, ok := a.Exemplar(); !ok || val != "7" || v != 50 {
		t.Fatalf("absorb dropped exemplar: %v %v %v", val, v, ok)
	}
	// Absorb keeps the larger-valued exemplar.
	c := NewHistogram(bounds)
	c.SetExemplar("wal_index", "2", 1)
	if err := a.Absorb(c); err != nil {
		t.Fatal(err)
	}
	if _, val, _, _ := a.Exemplar(); val != "7" {
		t.Fatalf("smaller exemplar displaced larger: %v", val)
	}
	b.Reset()
	if b.Count() != 0 || b.Sum() != 0 {
		t.Fatal("reset did not zero observations")
	}
	if _, _, _, ok := b.Exemplar(); ok {
		t.Fatal("reset kept exemplar")
	}
	// Bound mismatch is an error, not corruption.
	if err := a.Absorb(NewHistogram([]float64{1, 2, 3})); err == nil {
		t.Fatal("absorb accepted mismatched bounds")
	}
}
