package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
)

// Counter is a monotonically increasing metric. Not synchronized: the
// simulation engine is single-goroutine, and sweep workers each own a
// private Registry merged after the fact.
type Counter struct {
	v float64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d float64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a point-in-time metric.
type Gauge struct {
	v float64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Histogram counts observations into fixed buckets chosen at
// construction. Observations beyond the last upper bound land in the
// implicit +Inf bucket. No locks, no dynamic resizing: Observe is a
// linear scan over a handful of bounds and two adds.
//
// A histogram may carry at most one exemplar — a labeled sample value
// (e.g. the WAL index of the slowest recent fsync) attached to the
// bucket that contains it in the Prometheus exposition, OpenMetrics
// style. Exemplars are optional; output is byte-identical to the
// pre-exemplar format when none is set.
type Histogram struct {
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64

	exKey   string
	exVal   string
	exValue float64
	exSet   bool
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// SetExemplar attaches (or replaces) the histogram's exemplar: an
// observed value v annotated with a single label, rendered on v's
// bucket line in the Prometheus exposition. Callers typically pass the
// most interesting recent observation (e.g. the slowest).
func (h *Histogram) SetExemplar(key, val string, v float64) {
	h.exKey, h.exVal, h.exValue, h.exSet = key, val, v, true
}

// Exemplar returns the current exemplar, if any.
func (h *Histogram) Exemplar() (key, val string, v float64, ok bool) {
	return h.exKey, h.exVal, h.exValue, h.exSet
}

// Absorb folds other's observations (and exemplar, preferring the
// larger value) into h. The bucket bounds must match exactly.
func (h *Histogram) Absorb(other *Histogram) error {
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: histogram bucket count mismatch: %d vs %d", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if b != other.bounds[i] {
			return fmt.Errorf("obs: histogram bound %d mismatch: %g vs %g", i, b, other.bounds[i])
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.count += other.count
	if other.exSet && (!h.exSet || other.exValue > h.exValue) {
		h.SetExemplar(other.exKey, other.exVal, other.exValue)
	}
	return nil
}

// Reset zeroes the histogram's observations and drops its exemplar,
// keeping the bucket bounds. Used by scrape-time delta folding: a
// collector histogram is Absorb'ed into an exported one, then Reset.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.count = 0, 0
	h.exKey, h.exVal, h.exValue, h.exSet = "", "", 0, false
}

// NewHistogram returns a standalone (unregistered) histogram with the
// given ascending upper bounds — the building block for collectors that
// aggregate under their own lock and fold into a Registry at scrape.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	return &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
}

// instrumentKind discriminates the registry's instrument table.
type instrumentKind uint8

const (
	kindCounter instrumentKind = iota
	kindGauge
	kindHistogram
	kindCounterVec
)

// CounterVec is a family of counters keyed by the value of a single
// label (e.g. serve_tenant_admits_total{tenant="..."}). Children are
// created on first use; cardinality control is the caller's job (the
// serving layer folds excess tenants into an "other" bucket before the
// label reaches the registry).
type CounterVec struct {
	label    string
	children map[string]*Counter
}

// With returns the child counter for the given label value, creating it
// on first use.
func (v *CounterVec) With(value string) *Counter {
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// Label returns the family's label name.
func (v *CounterVec) Label() string { return v.label }

// Len returns the number of child counters.
func (v *CounterVec) Len() int { return len(v.children) }

// sortedValues returns the child label values in sorted order, the
// deterministic export order.
func (v *CounterVec) sortedValues() []string {
	vals := make([]string, 0, len(v.children))
	for lv := range v.children {
		vals = append(vals, lv)
	}
	sort.Strings(vals)
	return vals
}

// instrument is one registered metric with its metadata.
type instrument struct {
	name string
	help string
	kind instrumentKind
	c    *Counter
	g    *Gauge
	h    *Histogram
	vec  *CounterVec
}

// Registry owns a set of named instruments. Registration is idempotent:
// asking for an existing name of the same kind returns the same
// instrument, so pre-resolved bundles (SimMetrics) and ad-hoc lookups
// compose. Mismatched re-registration panics — it is always a wiring bug.
//
// A Registry is not synchronized; each simulation run owns one and
// completed registries merge across workers via Merge.
type Registry struct {
	by    map[string]*instrument
	order []*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]*instrument)}
}

func (r *Registry) lookup(name, help string, kind instrumentKind) *instrument {
	if in, ok := r.by[name]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: kind}
	r.by[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	in := r.lookup(name, help, kindCounter)
	if in.c == nil {
		in.c = &Counter{}
	}
	return in.c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	in := r.lookup(name, help, kindGauge)
	if in.g == nil {
		in.g = &Gauge{}
	}
	return in.g
}

// Histogram returns the named histogram, creating it on first use with
// the given ascending upper bounds. Later calls ignore the bounds
// argument (the first registration wins).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	in := r.lookup(name, help, kindHistogram)
	if in.h == nil {
		bs := append([]float64(nil), bounds...)
		in.h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
	}
	return in.h
}

// CounterVec returns the named labeled counter family, creating it on
// first use with the given label name. Later calls must pass the same
// label (mismatch panics — it is always a wiring bug).
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	in := r.lookup(name, help, kindCounterVec)
	if in.vec == nil {
		in.vec = &CounterVec{label: label, children: make(map[string]*Counter)}
	}
	if in.vec.label != label {
		panic(fmt.Sprintf("obs: counter vec %q re-registered with label %q (was %q)", name, label, in.vec.label))
	}
	return in.vec
}

// Merge folds other into r: counters and histogram buckets sum, gauges
// take the maximum (the only commutative, worker-order-independent choice
// for point-in-time values). Instruments missing on either side are
// created/ignored as needed; histograms must share bucket bounds.
func (r *Registry) Merge(other *Registry) error {
	for _, in := range other.order {
		switch in.kind {
		case kindCounter:
			r.Counter(in.name, in.help).Add(in.c.v)
		case kindGauge:
			g := r.Gauge(in.name, in.help)
			if in.g.v > g.v {
				g.Set(in.g.v)
			}
		case kindHistogram:
			h := r.Histogram(in.name, in.help, in.h.bounds)
			if err := h.Absorb(in.h); err != nil {
				return fmt.Errorf("%v (histogram %q)", err, in.name)
			}
		case kindCounterVec:
			v := r.CounterVec(in.name, in.help, in.vec.label)
			for lv, c := range in.vec.children {
				v.With(lv).Add(c.v)
			}
		}
	}
	return nil
}

// sorted returns the instruments in name order, the deterministic export
// order regardless of registration interleaving across code paths.
func (r *Registry) sorted() []*instrument {
	out := append([]*instrument(nil), r.order...)
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// promFloat renders a float the way the Prometheus text format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format, instruments in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, in := range r.sorted() {
		typ := "counter"
		switch in.kind {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		case kindCounterVec:
			typ = "counter"
		}
		if in.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.name, typ); err != nil {
			return err
		}
		var err error
		switch in.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, promFloat(in.c.v))
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", in.name, promFloat(in.g.v))
		case kindCounterVec:
			for _, lv := range in.vec.sortedValues() {
				if _, err = fmt.Fprintf(w, "%s{%s=%q} %s\n", in.name, in.vec.label, lv, promFloat(in.vec.children[lv].v)); err != nil {
					return err
				}
			}
		case kindHistogram:
			// The exemplar (if set) rides the first bucket that
			// contains its value, OpenMetrics style.
			exBucket := -1
			if in.h.exSet {
				exBucket = len(in.h.bounds)
				for i, b := range in.h.bounds {
					if in.h.exValue <= b {
						exBucket = i
						break
					}
				}
			}
			exemplar := func(i int) string {
				if i != exBucket {
					return ""
				}
				return fmt.Sprintf(" # {%s=%q} %s", in.h.exKey, in.h.exVal, promFloat(in.h.exValue))
			}
			cum := uint64(0)
			for i, b := range in.h.bounds {
				cum += in.h.counts[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", in.name, promFloat(b), cum, exemplar(i)); err != nil {
					return err
				}
			}
			cum += in.h.counts[len(in.h.bounds)]
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", in.name, cum, exemplar(len(in.h.bounds))); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum %s\n", in.name, promFloat(in.h.sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count %d\n", in.name, in.h.count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// MetricSnapshot is the JSON form of one instrument.
type MetricSnapshot struct {
	Name  string  `json:"name"`
	Type  string  `json:"type"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value,omitempty"`
	// Histogram fields.
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
}

// BucketSnapshot is one non-cumulative histogram bucket in JSON output;
// UpperBound is +Inf for the overflow bucket (rendered as "+Inf").
type BucketSnapshot struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// Snapshot returns the registry's instruments in name order.
func (r *Registry) Snapshot() []MetricSnapshot {
	out := make([]MetricSnapshot, 0, len(r.order))
	for _, in := range r.sorted() {
		s := MetricSnapshot{Name: in.name, Help: in.help}
		switch in.kind {
		case kindCounter:
			s.Type, s.Value = "counter", in.c.v
		case kindGauge:
			s.Type, s.Value = "gauge", in.g.v
		case kindHistogram:
			s.Type, s.Sum, s.Count = "histogram", in.h.sum, in.h.count
			for i, b := range in.h.bounds {
				s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: promFloat(b), Count: in.h.counts[i]})
			}
			s.Buckets = append(s.Buckets, BucketSnapshot{UpperBound: "+Inf", Count: in.h.counts[len(in.h.bounds)]})
		case kindCounterVec:
			// One snapshot entry per child, the full series name
			// embedded so consumers need no label-aware schema.
			for _, lv := range in.vec.sortedValues() {
				out = append(out, MetricSnapshot{
					Name:  fmt.Sprintf("%s{%s=%q}", in.name, in.vec.label, lv),
					Type:  "counter",
					Help:  in.help,
					Value: in.vec.children[lv].v,
				})
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON exports the registry as an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
